// Package repro reproduces "Lower Bounds for Distributed Sketching of
// Maximal Matchings and Maximal Independent Sets" (Assadi, Kol, Oshman,
// PODC 2020) as an executable system.
//
// The library implements the distributed sketching model (internal/core),
// the polylog upper bounds the paper contrasts against — AGM spanning
// forest sketches (internal/agm) and palette-sparsification coloring
// (internal/coloring) — the Behrend/Ruzsa–Szemerédi hard-instance
// machinery (internal/ap3, internal/rsgraph, internal/harddist), the
// Section 4 MM→MIS reduction (internal/misreduce), exact numerical
// verification of the information-theoretic proof chain
// (internal/proofcheck, internal/infotheory), and the analytic bound
// calculator (internal/bounds).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured record, and examples/ for runnable walkthroughs. The
// benchmarks in bench_test.go regenerate every experiment table.
package repro

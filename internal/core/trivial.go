package core

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/graph"
	"repro/internal/rng"
)

// FullGraphProtocol is the trivial Θ(n)-bit upper bound that exists for
// every problem in this model: each player sends its adjacency row as an
// n-bit bitmap, the referee reconstructs G exactly and solves the problem
// centrally. It both calibrates the cost axis of every experiment (the
// paper: "the problem is trivial with sketches of size Θ(n)") and serves
// as a correctness oracle for other protocols.
type FullGraphProtocol[O any] struct {
	// ProtocolName labels the protocol in tables.
	ProtocolName string
	// Solve computes the output from the exactly-reconstructed graph.
	Solve func(g *graph.Graph, coins *rng.PublicCoins) (O, error)
}

// Name implements Protocol.
func (p *FullGraphProtocol[O]) Name() string { return p.ProtocolName }

// Sketch implements Protocol: an n-bit adjacency bitmap.
func (p *FullGraphProtocol[O]) Sketch(view VertexView, _ *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	next := 0
	for u := 0; u < view.N; u++ {
		isNeighbor := next < len(view.Neighbors) && view.Neighbors[next] == u
		if isNeighbor {
			next++
		}
		w.WriteBit(isNeighbor)
	}
	return w, nil
}

// Decode implements Protocol: rebuild G from the bitmaps and solve. The
// referee cross-checks the two copies of every edge and fails loudly on
// inconsistency, which would indicate a corrupted transcript.
func (p *FullGraphProtocol[O]) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) (O, error) {
	var zero O
	g, err := DecodeBitmapGraph(n, sketches)
	if err != nil {
		return zero, err
	}
	return p.Solve(g, coins)
}

// DecodeBitmapGraph reconstructs a graph from n adjacency bitmaps,
// verifying that the two endpoints of every edge agree.
func DecodeBitmapGraph(n int, sketches []*bitio.Reader) (*graph.Graph, error) {
	if len(sketches) != n {
		return nil, fmt.Errorf("core: %d sketches for %d players", len(sketches), n)
	}
	rows := make([][]bool, n)
	for v := 0; v < n; v++ {
		rows[v] = make([]bool, n)
		for u := 0; u < n; u++ {
			b, err := sketches[v].ReadBit()
			if err != nil {
				return nil, fmt.Errorf("core: player %d bitmap: %w", v, err)
			}
			rows[v][u] = b
		}
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if rows[v][v] {
			return nil, fmt.Errorf("core: player %d claims a self loop", v)
		}
		for u := v + 1; u < n; u++ {
			if rows[v][u] != rows[u][v] {
				return nil, fmt.Errorf("core: players %d and %d disagree on edge", v, u)
			}
			if rows[v][u] {
				b.AddEdge(v, u)
			}
		}
	}
	return b.Build(), nil
}

// NewTrivialMatching returns the Θ(n)-bit maximal matching protocol.
func NewTrivialMatching() Protocol[[]graph.Edge] {
	return &FullGraphProtocol[[]graph.Edge]{
		ProtocolName: "trivial-full-graph",
		Solve: func(g *graph.Graph, _ *rng.PublicCoins) ([]graph.Edge, error) {
			return graph.GreedyMaximalMatching(g, nil), nil
		},
	}
}

// NewTrivialMIS returns the Θ(n)-bit maximal independent set protocol.
func NewTrivialMIS() Protocol[[]int] {
	return &FullGraphProtocol[[]int]{
		ProtocolName: "trivial-full-graph",
		Solve: func(g *graph.Graph, _ *rng.PublicCoins) ([]int, error) {
			return graph.GreedyMIS(g, nil), nil
		},
	}
}

// NewTrivialSpanningForest returns the Θ(n)-bit spanning forest protocol.
func NewTrivialSpanningForest() Protocol[[]graph.Edge] {
	return &FullGraphProtocol[[]graph.Edge]{
		ProtocolName: "trivial-full-graph",
		Solve: func(g *graph.Graph, _ *rng.PublicCoins) ([]graph.Edge, error) {
			return g.SpanningForestEdges(), nil
		},
	}
}

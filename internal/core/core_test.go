package core

import (
	"errors"
	"testing"

	"repro/internal/bitio"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestViews(t *testing.T) {
	g := gen.Path(4)
	views := Views(g)
	if len(views) != 4 {
		t.Fatalf("got %d views", len(views))
	}
	if views[1].N != 4 || views[1].ID != 1 || views[1].Degree() != 2 {
		t.Errorf("view 1 = %+v", views[1])
	}
	if views[0].Neighbors[0] != 1 {
		t.Errorf("view 0 neighbors = %v", views[0].Neighbors)
	}
}

func TestTrivialMatchingOnFamilies(t *testing.T) {
	coins := rng.NewPublicCoins(1)
	p := NewTrivialMatching()
	for _, g := range []*graph.Graph{
		gen.Path(7), gen.Cycle(8), gen.Complete(6), gen.Star(5),
		gen.Gnp(20, 0.3, rng.NewSource(2)),
	} {
		res, err := Run(p, g, coins)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !graph.IsMaximalMatching(g, res.Output) {
			t.Errorf("%v: output not a maximal matching", g)
		}
		if res.MaxSketchBits != g.N() {
			t.Errorf("%v: max sketch bits = %d, want n = %d", g, res.MaxSketchBits, g.N())
		}
		if res.TotalSketchBits != g.N()*g.N() {
			t.Errorf("%v: total bits = %d, want n^2", g, res.TotalSketchBits)
		}
	}
}

func TestTrivialMISOnFamilies(t *testing.T) {
	coins := rng.NewPublicCoins(3)
	p := NewTrivialMIS()
	for _, g := range []*graph.Graph{
		gen.Path(9), gen.Complete(5), gen.Grid(4, 4),
		gen.Gnp(25, 0.2, rng.NewSource(4)),
	} {
		res, err := Run(p, g, coins)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsMaximalIndependentSet(g, res.Output) {
			t.Errorf("%v: output not a maximal IS", g)
		}
	}
}

func TestTrivialSpanningForest(t *testing.T) {
	coins := rng.NewPublicCoins(5)
	p := NewTrivialSpanningForest()
	g := gen.Gnp(30, 0.1, rng.NewSource(6))
	res, err := Run(p, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsSpanningForest(g, res.Output) {
		t.Error("output not a spanning forest")
	}
}

func TestPlayerBitsAccounting(t *testing.T) {
	g := gen.Star(5) // degrees 4,1,1,1,1 but bitmap sketches are all n bits
	res, err := Run(NewTrivialMatching(), g, rng.NewPublicCoins(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PlayerBits) != 5 {
		t.Fatalf("PlayerBits has %d entries", len(res.PlayerBits))
	}
	sum := 0
	for _, b := range res.PlayerBits {
		sum += b
		if b != 5 {
			t.Errorf("bitmap sketch %d bits, want n=5", b)
		}
	}
	if sum != res.TotalSketchBits {
		t.Errorf("PlayerBits sum %d != TotalSketchBits %d", sum, res.TotalSketchBits)
	}
}

func TestAvgSketchBits(t *testing.T) {
	r := Result[int]{TotalSketchBits: 30}
	if got := r.AvgSketchBits(10); got != 3 {
		t.Errorf("AvgSketchBits = %v, want 3", got)
	}
	if got := r.AvgSketchBits(0); got != 0 {
		t.Errorf("AvgSketchBits(0) = %v, want 0", got)
	}
}

// faultyProtocol exercises error propagation paths.
type faultyProtocol struct {
	sketchErr bool
}

func (f *faultyProtocol) Name() string { return "faulty" }

func (f *faultyProtocol) Sketch(view VertexView, _ *rng.PublicCoins) (*bitio.Writer, error) {
	if f.sketchErr {
		return nil, errors.New("boom")
	}
	return nil, nil // nil writer must be tolerated
}

func (f *faultyProtocol) Decode(n int, _ []*bitio.Reader, _ *rng.PublicCoins) (int, error) {
	return 0, errors.New("cannot decode")
}

func TestRunPropagatesSketchError(t *testing.T) {
	_, err := Run[int](&faultyProtocol{sketchErr: true}, gen.Path(3), rng.NewPublicCoins(1))
	if err == nil {
		t.Fatal("sketch error not propagated")
	}
}

func TestRunToleratesNilWriterAndPropagatesDecodeError(t *testing.T) {
	res, err := Run[int](&faultyProtocol{}, gen.Path(3), rng.NewPublicCoins(1))
	if err == nil {
		t.Fatal("decode error not propagated")
	}
	if res.MaxSketchBits != 0 {
		t.Errorf("empty sketches reported %d bits", res.MaxSketchBits)
	}
}

func TestDecodeBitmapGraphDetectsDisagreement(t *testing.T) {
	// Player 0 claims edge to 1; player 1 denies it.
	w0, w1 := &bitio.Writer{}, &bitio.Writer{}
	w0.WriteBit(false)
	w0.WriteBit(true)
	w1.WriteBit(false)
	w1.WriteBit(false)
	_, err := DecodeBitmapGraph(2, []*bitio.Reader{bitio.ReaderFor(w0), bitio.ReaderFor(w1)})
	if err == nil {
		t.Error("edge disagreement not detected")
	}
}

func TestDecodeBitmapGraphDetectsSelfLoop(t *testing.T) {
	w0, w1 := &bitio.Writer{}, &bitio.Writer{}
	w0.WriteBit(true) // self loop at 0
	w0.WriteBit(false)
	w1.WriteBit(false)
	w1.WriteBit(false)
	_, err := DecodeBitmapGraph(2, []*bitio.Reader{bitio.ReaderFor(w0), bitio.ReaderFor(w1)})
	if err == nil {
		t.Error("self loop not detected")
	}
}

func TestDecodeBitmapGraphWrongCount(t *testing.T) {
	if _, err := DecodeBitmapGraph(2, nil); err == nil {
		t.Error("sketch-count mismatch not detected")
	}
}

func TestEstimateSuccess(t *testing.T) {
	p := NewTrivialMatching()
	src := rng.NewSource(7)
	stats := EstimateSuccess(p, func(i int) Trial[[]graph.Edge] {
		g := gen.Gnp(12, 0.3, src)
		return Trial[[]graph.Edge]{
			Graph:  g,
			Verify: func(out []graph.Edge) bool { return graph.IsMaximalMatching(g, out) },
		}
	}, 20, rng.NewPublicCoins(9))
	if stats.SuccessRate() != 1.0 {
		t.Errorf("trivial protocol success rate = %v, want 1", stats.SuccessRate())
	}
	if stats.MaxSketchBits != 12 {
		t.Errorf("MaxSketchBits = %d, want 12", stats.MaxSketchBits)
	}
	if stats.AvgSketchBits != 12 {
		t.Errorf("AvgSketchBits = %v, want 12", stats.AvgSketchBits)
	}
}

func TestEstimateSuccessCountsErrorsAsFailures(t *testing.T) {
	stats := EstimateSuccess[int](&faultyProtocol{}, func(i int) Trial[int] {
		return Trial[int]{Graph: gen.Path(2), Verify: func(int) bool { return true }}
	}, 5, rng.NewPublicCoins(1))
	if stats.Successes != 0 {
		t.Errorf("faulty protocol recorded %d successes", stats.Successes)
	}
	if stats.SuccessRate() != 0 {
		t.Errorf("rate = %v", stats.SuccessRate())
	}
}

func TestStatsZeroTrials(t *testing.T) {
	if (Stats{}).SuccessRate() != 0 {
		t.Error("zero-trial rate not 0")
	}
}

func TestRunDeterministicGivenCoins(t *testing.T) {
	g := gen.Gnp(15, 0.4, rng.NewSource(11))
	p := NewTrivialMIS()
	coins := rng.NewPublicCoins(42)
	a, err1 := Run(p, g, coins)
	b, err2 := Run(p, g, coins)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(a.Output) != len(b.Output) {
		t.Fatal("same coins gave different outputs")
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatal("same coins gave different outputs")
		}
	}
}

// Package core implements the paper's distributed graph sketching model
// (Section 2.1).
//
// There are n players, one per vertex of an undirected graph G. Player v
// knows n, its own ID, and its neighbor set N(v) — nothing else. All
// players share public coins with a referee who receives no input. Each
// player simultaneously sends one message (its "sketch") to the referee,
// who must output a solution to the problem at hand. The cost of a
// protocol is the worst-case sketch length in bits.
//
// The package enforces the model structurally: a Protocol's Sketch method
// receives only a VertexView and the public coins, so a player cannot
// possibly consult global information, while Decode sees only the sketches
// and the coins. Lower-bound experiments that reveal extra advice to the
// referee (the paper's Remark 3.6 gives the referee σ and j⋆ for free) do
// so by closing protocol values over that advice — it is never threaded
// through Sketch.
package core

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/graph"
	"repro/internal/rng"
)

// VertexView is the entire input of one player: the number of vertices in
// the graph, the player's vertex ID, and the sorted list of its neighbors.
type VertexView struct {
	N         int
	ID        int
	Neighbors []int
}

// Degree returns the number of neighbors.
func (v VertexView) Degree() int { return len(v.Neighbors) }

// Protocol is a one-round public-coin sketching protocol computing an
// output of type O.
type Protocol[O any] interface {
	// Name identifies the protocol in experiment tables.
	Name() string
	// Sketch computes the message of the player with the given view.
	Sketch(view VertexView, coins *rng.PublicCoins) (*bitio.Writer, error)
	// Decode runs the referee over all n sketches, in vertex order.
	Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) (O, error)
}

// BlockSketcher is the optional columnar fast path of a Protocol: a
// sketcher that can compute the messages of a whole block of players in
// one call, amortizing spec construction and sketch state across the
// block. out[i] must receive exactly the bits Sketch(views[i], coins)
// would produce — block execution is a speed lever, never a semantic
// one. On error it returns the index within views of the failing player.
// The engine layer (engine.BlockBroadcaster via cclique.OneRound)
// forwards shard-sized view slices here when the block path is enabled.
type BlockSketcher interface {
	SketchBlock(views []VertexView, coins *rng.PublicCoins, out []*bitio.Writer) (int, error)
}

// Resilience classifies a referee's confidence in a decode that may have
// run over dropped or corrupted sketches (DESIGN.md § fault model).
//
// The contract protocols must uphold: ResilienceOK is only reported when
// the referee saw no evidence of damage — no missing messages, no parse
// anomalies, no failed checksums, no truncation-capped lists. A degraded
// or failed decode may still return a best-effort output, but it must not
// silently claim full correctness.
type Resilience int

const (
	// ResilienceOK: the decode observed no damage; the output carries the
	// protocol's usual correctness guarantee. This is the zero value, so
	// unfaulted runs report ok without any extra plumbing.
	ResilienceOK Resilience = iota
	// ResilienceDegraded: some sketches were missing or garbled; the
	// referee produced a best-effort output from the surviving material
	// (possibly via fallback sampler instances) with weakened guarantees.
	ResilienceDegraded
	// ResilienceFailed: too much material was lost for any meaningful
	// output, or the decode errored outright.
	ResilienceFailed
)

// String renders the outcome for experiment tables and stats reports.
func (r Resilience) String() string {
	switch r {
	case ResilienceOK:
		return "ok"
	case ResilienceDegraded:
		return "degraded"
	case ResilienceFailed:
		return "failed"
	default:
		return fmt.Sprintf("resilience(%d)", int(r))
	}
}

// Worse returns the more severe of two outcomes.
func (r Resilience) Worse(o Resilience) Resilience {
	if o > r {
		return o
	}
	return r
}

// ResilientProtocol is a one-round Protocol whose referee can additionally
// decode damaged sketch vectors: missing messages (zero bits) and garbled
// bits are detected and worked around where the encoding allows, and the
// Resilience outcome reports how much trust the output deserves.
type ResilientProtocol[O any] interface {
	Protocol[O]
	// DecodeResilient is Decode with graceful degradation. It must not
	// return ResilienceOK unless every sketch parsed cleanly.
	DecodeResilient(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) (O, Resilience, error)
}

// Result reports one protocol execution.
type Result[O any] struct {
	Output O
	// MaxSketchBits is the worst-case per-player message length, the
	// paper's communication cost measure.
	MaxSketchBits int
	// TotalSketchBits is the sum of all message lengths.
	TotalSketchBits int
	// PlayerBits holds each player's message length. The paper's remark
	// after Theorem 1 extends the lower bound from worst-case to average
	// per-player communication; this field lets experiments report both.
	PlayerBits []int
}

// AvgSketchBits returns the mean per-player message length.
func (r Result[O]) AvgSketchBits(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.TotalSketchBits) / float64(n)
}

// Views builds the n player views of a graph.
func Views(g *graph.Graph) []VertexView {
	views := make([]VertexView, g.N())
	for v := 0; v < g.N(); v++ {
		views[v] = VertexView{N: g.N(), ID: v, Neighbors: g.Neighbors(v)}
	}
	return views
}

// Run executes one round of the sketching model: every player sketches
// from its local view, then the referee decodes.
func Run[O any](p Protocol[O], g *graph.Graph, coins *rng.PublicCoins) (Result[O], error) {
	var res Result[O]
	views := Views(g)
	writers := make([]*bitio.Writer, len(views))
	res.PlayerBits = make([]int, len(views))
	for i, view := range views {
		w, err := p.Sketch(view, coins)
		if err != nil {
			return res, fmt.Errorf("core: player %d sketch: %w", i, err)
		}
		if w == nil {
			w = &bitio.Writer{}
		}
		writers[i] = w
		res.PlayerBits[i] = w.Len()
		if w.Len() > res.MaxSketchBits {
			res.MaxSketchBits = w.Len()
		}
		res.TotalSketchBits += w.Len()
	}
	readers := make([]*bitio.Reader, len(writers))
	for i, w := range writers {
		readers[i] = bitio.ReaderFor(w)
	}
	out, err := p.Decode(g.N(), readers, coins)
	if err != nil {
		return res, fmt.Errorf("core: referee decode: %w", err)
	}
	res.Output = out
	return res, nil
}

// Stats aggregates repeated protocol executions over sampled inputs.
type Stats struct {
	Trials        int
	Successes     int
	MaxSketchBits int     // worst case over all trials
	AvgSketchBits float64 // mean of per-trial max
}

// SuccessRate returns the fraction of successful trials.
func (s Stats) SuccessRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Successes) / float64(s.Trials)
}

// Trial describes one input instance for success estimation: the graph and
// an output validator for that graph.
type Trial[O any] struct {
	Graph  *graph.Graph
	Verify func(out O) bool
}

// EstimateSuccess runs the protocol over `trials` sampled inputs,
// validating each output. sample(i) must return the i-th trial; each trial
// uses fresh public coins derived from the given root so that randomized
// protocols are re-randomized per trial. Protocol errors (for instance a
// referee that detects an undecodable sketch) count as failures rather
// than aborting the estimate, matching the model's "errs with probability
// δ" semantics.
func EstimateSuccess[O any](p Protocol[O], sample func(trial int) Trial[O], trials int, coins *rng.PublicCoins) Stats {
	var stats Stats
	stats.Trials = trials
	sum := 0
	for i := 0; i < trials; i++ {
		tr := sample(i)
		res, err := Run(p, tr.Graph, coins.Derive("trial").DeriveIndex(i))
		if res.MaxSketchBits > stats.MaxSketchBits {
			stats.MaxSketchBits = res.MaxSketchBits
		}
		sum += res.MaxSketchBits
		if err != nil {
			continue
		}
		if tr.Verify(res.Output) {
			stats.Successes++
		}
	}
	if trials > 0 {
		stats.AvgSketchBits = float64(sum) / float64(trials)
	}
	return stats
}

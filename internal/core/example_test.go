package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ExampleRun demonstrates the one-round sketching model end to end with
// the trivial full-graph protocol.
func ExampleRun() {
	g := gen.Path(6)
	coins := rng.NewPublicCoins(1)
	res, err := core.Run(core.NewTrivialMatching(), g, coins)
	if err != nil {
		panic(err)
	}
	fmt.Println("maximal:", graph.IsMaximalMatching(g, res.Output))
	fmt.Println("bits per player:", res.MaxSketchBits)
	// Output:
	// maximal: true
	// bits per player: 6
}

// ExampleEstimateSuccess shows the Monte-Carlo harness used by every
// experiment sweep.
func ExampleEstimateSuccess() {
	p := core.NewTrivialMIS()
	stats := core.EstimateSuccess(p, func(i int) core.Trial[[]int] {
		g := gen.Cycle(5 + i%3)
		return core.Trial[[]int]{
			Graph:  g,
			Verify: func(out []int) bool { return graph.IsMaximalIndependentSet(g, out) },
		}
	}, 6, rng.NewPublicCoins(2))
	fmt.Printf("success rate: %.2f\n", stats.SuccessRate())
	// Output:
	// success rate: 1.00
}

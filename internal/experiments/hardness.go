package experiments

import (
	"fmt"
	"math"

	"repro/internal/ap3"
	"repro/internal/bounds"
	"repro/internal/harddist"
	"repro/internal/proofcheck"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// E1RSConstruction reproduces Proposition 2.1 constructively: Behrend /
// greedy 3-AP-free set sizes and the verified (r, t) of the RS graphs
// they induce.
func E1RSConstruction(scale Scale, _ uint64) ([]*Table, error) {
	ms := []int{10, 25, 60, 150}
	if scale == Full {
		ms = append(ms, 400, 1000)
	}
	t := &Table{
		ID:      "E1",
		Title:   "Ruzsa–Szemerédi graphs from 3-AP-free sets (Prop 2.1)",
		Columns: []string{"m", "|Behrend|", "|Greedy|", "r=|Best|", "t", "N", "edges", "induced-verified"},
		Notes: []string{
			"t = N/5 here vs the paper's N/3: a constant from our explicit construction",
			"greedy (Stanley) sets dominate Behrend's at practical m; Behrend wins only asymptotically",
		},
	}
	for _, m := range ms {
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			return nil, err
		}
		verified := "yes"
		if err := rsgraph.Verify(rs); err != nil {
			verified = fmt.Sprintf("NO: %v", err)
		}
		t.AddRow(m, len(ap3.Behrend(m)), len(ap3.Greedy(m)), rs.R(), rs.T(), rs.N(), rs.G.M(), verified)
	}
	return []*Table{t}, nil
}

// E2HardDistribution reproduces Figure 1: the shape of D_MM samples.
func E2HardDistribution(scale Scale, seed uint64) ([]*Table, error) {
	ms := []int{8, 15, 25}
	if scale == Full {
		ms = append(ms, 60)
	}
	t := &Table{
		ID:      "E2",
		Title:   "Samples from the hard distribution D_MM (Fig. 1)",
		Columns: []string{"m", "r", "t=k", "n", "edges", "public", "unique", "survived C", "E[C]=kr/2", "floor kr/3"},
		Notes: []string{
			"survived C counts the special edges alive across all k copies",
		},
	}
	src := rng.NewSource(seed)
	for _, m := range ms {
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			return nil, err
		}
		p := harddist.NewParams(rs)
		inst, err := harddist.Sample(p, src)
		if err != nil {
			return nil, err
		}
		kr := float64(p.K * rs.R())
		t.AddRow(m, rs.R(), p.K, inst.G.N(), inst.G.M(),
			len(inst.PublicVertices()), 2*rs.R()*p.K,
			inst.SurvivedSpecialCount(), kr/2, kr/3)
	}
	return []*Table{t}, nil
}

// E3Claim31 verifies Claim 3.1 over repeated draws, including the exact
// structural bound and the drop-probability ablation.
func E3Claim31(scale Scale, seed uint64) ([]*Table, error) {
	trials, matchings := 10, 15
	ms := []int{10, 20}
	if scale == Full {
		trials, matchings = 40, 40
		ms = append(ms, 40)
	}
	src := rng.NewSource(seed)

	main := &Table{
		ID:      "E3",
		Title:   "Claim 3.1: unique–unique edges forced into every maximal matching",
		Columns: []string{"m", "drop", "trials", "mean C", "mean minUU", "exact-bound violations", "kr/4", "kr/4 met"},
		Notes: []string{
			"exact bound: minUU >= C - (N_RS - 2r), deterministic consequence of induced matchings",
			"the kr/4 threshold needs kr/12 >= N-2r (paper-scale parameters); rows below that scale report the miss honestly",
		},
	}
	for _, m := range ms {
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			return nil, err
		}
		for _, drop := range []float64{0.3, 0.5, 0.7} {
			p := harddist.Params{RS: rs, K: rs.T(), DropProb: drop}
			stats, err := harddist.EstimateClaim31(p, trials, matchings, src)
			if err != nil {
				return nil, err
			}
			threshold := float64(p.K*rs.R()) / 4
			met := stats.Trials - stats.PaperViolations
			main.AddRow(m, drop, stats.Trials, stats.MeanSurvived, stats.MeanMinUU,
				stats.ExactViolations, threshold,
				fmt.Sprintf("%d/%d", met, stats.Trials))
		}
	}

	// Disjoint-matching family: every surviving special edge is forced.
	forced := &Table{
		ID:      "E3b",
		Title:   "Ablation: disjoint-matching RS family forces every surviving special edge",
		Columns: []string{"r", "t=k", "trials", "mean C", "mean minUU", "minUU == C"},
	}
	for _, rt := range [][2]int{{4, 6}, {6, 8}} {
		rs := rsgraph.DisjointMatchings(rt[0], rt[1])
		p := harddist.Params{RS: rs, K: rt[1], DropProb: 0.5}
		stats, err := harddist.EstimateClaim31(p, trials, matchings, src)
		if err != nil {
			return nil, err
		}
		forcedAll := stats.MeanMinUU == stats.MeanSurvived
		forced.AddRow(rt[0], rt[1], stats.Trials, stats.MeanSurvived, stats.MeanMinUU, forcedAll)
	}
	return []*Table{main, forced}, nil
}

// E4InformationChain verifies the Lemma 3.3 → 3.4 → 3.5 chain exactly on
// micro-instances for the whole protocol portfolio.
func E4InformationChain(scale Scale, _ uint64) ([]*Table, error) {
	rsD := rsgraph.DisjointMatchings(1, 2)
	rsB, err := rsgraph.BuildFromAPFreeSet(2, []int{0, 1})
	if err != nil {
		return nil, err
	}
	type family struct {
		name string
		rs   *rsgraph.RSGraph
		k    int
	}
	families := []family{
		{"disjoint r=1 t=2 k=2", rsD, 2},
		{"disjoint r=1 t=3 k=3", rsgraph.DisjointMatchings(1, 3), 3},
	}
	if scale == Full {
		families = append(families, family{"behrend m=2 (r=2 t=2) k=2", rsB, 2})
	} else {
		families = append(families, family{"behrend m=2 (r=2 t=2) k=1", rsB, 1})
	}
	protocols := proofcheck.Portfolio()
	var out []*Table
	for _, fam := range families {
		t := &Table{
			ID:      "E4",
			Title:   "Exact information chain on micro-D_MM: " + fam.name,
			Columns: []string{"protocol", "kr", "I(M;Π|Σ,J)", "H(Π(P))", "ΣI(Mi;ΠUi|Σ,J)", "E|MU|", "Pr[err]", "L3.3", "L3.4", "L3.5", "count"},
			Notes: []string{
				"every inequality computed exactly by enumerating J and all edge-survival outcomes",
				"full-info and fixed-guess meet Lemma 3.5 with equality — the 1/t direct-sum factor is sharp",
			},
		}
		p := harddist.Params{RS: fam.rs, K: fam.k, DropProb: 0.5}
		n := p.N()
		sigma := make([]int, n)
		for i := range sigma {
			sigma[i] = i
		}
		cfg := proofcheck.Config{Params: p, Sigma: sigma}
		for _, proto := range protocols {
			rep, err := proofcheck.VerifyChain(cfg, proto)
			if err != nil {
				return nil, err
			}
			sumIU := 0.0
			l35 := "ok"
			for i, l := range rep.Lemma35 {
				sumIU += rep.IUnique[i]
				if !l.Holds {
					l35 = "VIOLATED"
				}
				_ = i
			}
			t.AddRow(rep.Protocol, rep.KR, rep.ITotal, rep.HPiP, sumIU, rep.EMU, rep.PErr,
				holds(rep.Lemma33.Holds), holds(rep.Lemma34.Holds), l35, holds(rep.Counting.Holds))
		}
		out = append(out, t)
	}
	return out, nil
}

func holds(b bool) string {
	if b {
		return "ok"
	}
	return "VIOLATED"
}

// E5MatchingLowerBound produces (a) the analytic Theorem 1 table and (b)
// the empirical success-vs-budget sweep on D_MM.
func E5MatchingLowerBound(scale Scale, seed uint64) ([]*Table, error) {
	analytic := &Table{
		ID:      "E5a",
		Title:   "Theorem 1 counting bound b ≥ kr/(6(|P|+kN/t)) on the constructive family",
		Columns: []string{"m", "N", "r", "t=k", "n", "bound bits", "bound/√n", "√n"},
		Notes: []string{
			"bound/√n charts the e^{-Θ(√log n)} factor between the bound and √n",
		},
	}
	ms := []int{25, 100, 400}
	if scale == Full {
		ms = append(ms, 1600, 6400)
	}
	rows, err := bounds.Table(ms)
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		analytic.AddRow(ms[i], row.Shape.N, row.Shape.R, row.Shape.T, row.NTotal,
			row.BitsPerPlayer, row.SqrtNRatio, fmt.Sprintf("%.1f", sqrtf(row.NTotal)))
	}

	asym := &Table{
		ID:      "E5b",
		Title:   "Theorem 1 at the paper's asymptotic shape (t = N/3, r = N/e^{c√log N})",
		Columns: []string{"N", "r", "n", "bound bits", "r/36"},
	}
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		shape := bounds.PaperShape(n)
		row, err := bounds.PaperRow(shape)
		if err != nil {
			return nil, err
		}
		asym.AddRow(shape.N, shape.R, row.NTotal, row.BitsPerPlayer, float64(shape.R)/36)
	}

	sweep, err := matchingSweep(scale, seed)
	if err != nil {
		return nil, err
	}
	return []*Table{analytic, asym, sweep}, nil
}

func sqrtf(n int) float64 { return math.Sqrt(float64(n)) }

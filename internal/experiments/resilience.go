package experiments

// E20 is the resilience sweep of ISSUE 2 (there labeled "E13", an ID the
// certificate experiment already owns): drop-rate × corruption-rate grids
// over the AGM one-round forest, the two-round filtering MM, and the
// two-round MIS, all executed through internal/faults. Every fault is
// label-derived from the recorded seed, so the sweep — including exactly
// which messages dropped — reproduces byte-identically at any -workers.

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/agm"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// faultPlan is an extra operator-chosen plan appended to the E20 grid
// (cmd/sketchlab -faults).
var faultPlan faults.Plan

// SetFaultPlan adds a custom fault plan to the E20 resilience sweep
// (cmd/sketchlab -faults). The zero plan adds nothing.
func SetFaultPlan(p faults.Plan) { faultPlan = p }

// resilienceCell aggregates one (protocol, plan) grid cell.
type resilienceCell struct {
	ok, degraded, failed int
	correct              int
	silentWrong          int // verdict ok but output fails external verification
}

// resilienceTrials runs `trials` faulted executions of one protocol.
// makeGraph(i) supplies the i-th input; verify checks the decoded output
// against the true graph — ground truth the referee never sees, used here
// only to audit the verdicts.
func resilienceTrials[O any](
	newProto func() engine.Protocol[O],
	makeGraph func(trial int) *graph.Graph,
	verify func(g *graph.Graph, out O) bool,
	plan faults.Plan, root *rng.PublicCoins, trials int,
) resilienceCell {
	var cell resilienceCell
	for i := 0; i < trials; i++ {
		g := makeGraph(i)
		coins := root.Derive("proto").DeriveIndex(i)
		faultCoins := root.Derive("fault").DeriveIndex(i)
		res, err := faults.Run(context.Background(), newEngine(), newProto(), g, coins, plan, faultCoins)
		verdict := res.Stats.Faults.Resilience
		if err != nil {
			verdict = core.ResilienceFailed
		}
		good := err == nil && verify(g, res.Output)
		switch verdict {
		case core.ResilienceOK:
			cell.ok++
			if !good {
				cell.silentWrong++
			}
		case core.ResilienceDegraded:
			cell.degraded++
		default:
			cell.failed++
		}
		if good {
			cell.correct++
		}
	}
	return cell
}

// E20ResilienceSweep measures protocol degradation under the faults
// layer: a drop × corruption grid plus a straggler-only row (which must
// behave exactly like the clean row — stragglers delay, never damage).
func E20ResilienceSweep(scale Scale, seed uint64) ([]*Table, error) {
	n := 60
	trials := 6
	drops := []float64{0, 0.1}
	corrupts := []float64{0, 0.1}
	if scale == Full {
		n = 150
		trials = 20
		drops = []float64{0, 0.05, 0.15, 0.3}
		corrupts = []float64{0, 0.05, 0.15}
	}
	root := rng.NewPublicCoins(seed ^ 0xe20e20)

	t := &Table{
		ID:    "E20",
		Title: fmt.Sprintf("resilience sweep: faulted runs over n=%d, %d trials/cell", n, trials),
		Columns: []string{"protocol", "drop", "corrupt", "straggle",
			"ok", "degraded", "failed", "correct", "silent-wrong"},
		Notes: []string{
			"verdicts from faults.Run (protocol-layer detection folded with the channel record)",
			"correct = output passes external verification against the true graph",
			"silent-wrong = verdict ok yet verification fails — must be 0 (the resilience contract)",
			"straggle row: delays exercise the worker pool but never alter bits, so it matches the clean row",
			fmt.Sprintf("reproduce: sketchlab -run E20 -seed %d (any -workers; faults are label-derived)", seed),
		},
	}

	gnp := func(label string) func(int) *graph.Graph {
		return func(i int) *graph.Graph {
			return gen.Gnp(n, 3*math.Log(float64(n))/float64(n)*2, root.Derive("g/"+label).DeriveIndex(i).Source())
		}
	}

	type rowRunner func(plan faults.Plan, label string) resilienceCell
	protocols := []struct {
		name string
		run  rowRunner
	}{
		{"agm-forest", func(plan faults.Plan, label string) resilienceCell {
			return resilienceTrials(
				func() engine.Protocol[[]graph.Edge] {
					return &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{})}
				},
				gnp("agm/"+label),
				func(g *graph.Graph, out []graph.Edge) bool { return graph.IsSpanningForest(g, out) },
				plan, root.Derive("agm/"+label), trials)
		}},
		{"agm-forest+backup", func(plan faults.Plan, label string) resilienceCell {
			return resilienceTrials(
				func() engine.Protocol[[]graph.Edge] {
					return &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{BackupReps: 2})}
				},
				gnp("agmb/"+label),
				func(g *graph.Graph, out []graph.Edge) bool { return graph.IsSpanningForest(g, out) },
				plan, root.Derive("agmb/"+label), trials)
		}},
		{"two-round-mm", func(plan faults.Plan, label string) resilienceCell {
			return resilienceTrials(
				func() engine.Protocol[[]graph.Edge] { return matchproto.NewTwoRound() },
				gnp("mm/"+label),
				func(g *graph.Graph, out []graph.Edge) bool { return graph.IsMaximalMatching(g, out) },
				plan, root.Derive("mm/"+label), trials)
		}},
		{"two-round-mis", func(plan faults.Plan, label string) resilienceCell {
			return resilienceTrials(
				func() engine.Protocol[[]int] { return misproto.NewTwoRound() },
				gnp("mis/"+label),
				func(g *graph.Graph, out []int) bool { return graph.IsMaximalIndependentSet(g, out) },
				plan, root.Derive("mis/"+label), trials)
		}},
	}

	addRow := func(name string, plan faults.Plan, cell resilienceCell) {
		t.AddRow(name, plan.DropProb, plan.CorruptProb, plan.StragglerProb,
			cell.ok, cell.degraded, cell.failed,
			fmt.Sprintf("%d/%d", cell.correct, trials), cell.silentWrong)
	}

	for _, proto := range protocols {
		for _, drop := range drops {
			for _, corrupt := range corrupts {
				plan := faults.Plan{DropProb: drop, CorruptProb: corrupt, FlipBits: 3}
				label := fmt.Sprintf("d%g-c%g", drop, corrupt)
				addRow(proto.name, plan, proto.run(plan, label))
			}
		}
		// Straggler-only control row: same inputs and coins as the clean
		// d0-c0 cell, so identical verdict counts prove delays are benign.
		plan := faults.Plan{StragglerProb: 0.2, StragglerDelay: 200 * time.Microsecond}
		addRow(proto.name, plan, proto.run(plan, "d0-c0"))
	}

	if faultPlan.Active() {
		for _, proto := range protocols {
			addRow(proto.name+" (custom)", faultPlan, proto.run(faultPlan, "custom"))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("custom rows from -faults %q", faultPlan))
	}
	return []*Table{t}, nil
}

package experiments

import (
	"fmt"

	"repro/internal/agm"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mst"
	"repro/internal/rng"
)

// E16MSTEstimator reproduces the very first sketching result the paper's
// introduction cites from [AGM'12]: minimum spanning tree weight from
// one round of sketches, via component counts of weight-thresholded
// subgraphs.
func E16MSTEstimator(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x31415926)
	trials := 5
	type cfg struct {
		n    int
		p    float64
		maxW int
	}
	cfgs := []cfg{{40, 0.2, 3}, {60, 0.15, 5}}
	if scale == Full {
		trials = 12
		cfgs = append(cfgs, cfg{100, 0.1, 8}, cfg{150, 0.08, 8})
	}
	t := &Table{
		ID:      "E16",
		Title:   "AGM MST weight estimator (w(MSF) = n + Σ cc(G_≤i) − W·cc(G))",
		Columns: []string{"n", "W", "trials", "exact matches", "mean |est-exact|", "max sketch bits", "trivial n·W bits"},
		Notes: []string{
			"a sketch failure at threshold i<W inflates the estimate; at i=W it deflates it — both surface in |est-exact|",
			"per-vertex cost is W forest sketches: polylog per threshold",
		},
	}
	for _, c := range cfgs {
		// Weighted instances draw from the shared source first (same
		// order as the sequential sweep), then all trials run as one
		// engine batch.
		wgs := make([]*mst.Weighted, trials)
		jobs := make([]engine.Job[int], trials)
		for trial := 0; trial < trials; trial++ {
			g := gen.Gnp(c.n, c.p, src)
			wgs[trial] = mst.RandomWeights(g, c.maxW, src)
			jobs[trial] = oneRoundJob(fmt.Sprintf("mst/n%d/t%d", c.n, trial),
				mst.NewProtocol(wgs[trial], agm.Config{}), g, coins.DeriveIndex(c.n*100+trial))
		}
		results, err := runOneRoundBatch(jobs)
		if err != nil {
			return nil, err
		}
		matches, errSum, maxBits := 0, 0, 0
		for trial, jr := range results {
			if jr.Err != nil {
				return nil, jr.Err
			}
			exact := wgs[trial].ExactMSTWeight()
			if jr.Result.Output == exact {
				matches++
			}
			diff := jr.Result.Output - exact
			if diff < 0 {
				diff = -diff
			}
			errSum += diff
			if jr.Result.Stats.MaxMessageBits > maxBits {
				maxBits = jr.Result.Stats.MaxMessageBits
			}
		}
		t.AddRow(c.n, c.maxW, trials,
			fmt.Sprintf("%d/%d", matches, trials),
			float64(errSum)/float64(trials),
			maxBits, c.n*c.maxW)
	}
	return []*Table{t}, nil
}

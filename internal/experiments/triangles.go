package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/triangles"
)

// E19TriangleCounting measures the subgraph-counting contrast ([2]):
// sample-and-rescale triangle estimation accuracy vs sampling rate.
func E19TriangleCounting(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x41421356)
	trials := 10
	n := 80
	if scale == Full {
		trials = 25
		n = 150
	}
	t := &Table{
		ID:      "E19",
		Title:   "Triangle counting by sample-and-rescale ([2] subgraph counting)",
		Columns: []string{"n", "p", "trials", "exact", "mean estimate", "mean |rel err|", "max sketch bits", "full bits"},
		Notes: []string{
			"unbiased estimator; concentration kicks in once T ≫ p^-3 (visible as the error column falls with p)",
		},
	}
	g := gen.Gnp(n, 0.4, src)
	exact := float64(triangles.Exact(g))
	fullBits := g.MaxDegree() * 8
	for _, p := range []float64{0.2, 0.4, 0.7, 1.0} {
		sum, errSum, maxBits := 0.0, 0.0, 0
		for trial := 0; trial < trials; trial++ {
			res, err := core.Run[float64](triangles.New(p), g,
				coins.DeriveIndex(int(p*100)*1000+trial))
			if err != nil {
				return nil, err
			}
			sum += res.Output
			if exact > 0 {
				errSum += math.Abs(res.Output-exact) / exact
			}
			if res.MaxSketchBits > maxBits {
				maxBits = res.MaxSketchBits
			}
		}
		t.AddRow(n, p, trials, int(exact),
			fmt.Sprintf("%.0f", sum/float64(trials)),
			fmt.Sprintf("%.3f", errSum/float64(trials)),
			maxBits, fullBits)
	}
	return []*Table{t}, nil
}

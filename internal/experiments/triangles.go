package experiments

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/triangles"
)

// E19TriangleCounting measures the subgraph-counting contrast ([2]):
// sample-and-rescale triangle estimation accuracy vs sampling rate.
func E19TriangleCounting(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x41421356)
	trials := 10
	n := 80
	if scale == Full {
		trials = 25
		n = 150
	}
	t := &Table{
		ID:      "E19",
		Title:   "Triangle counting by sample-and-rescale ([2] subgraph counting)",
		Columns: []string{"n", "p", "trials", "exact", "mean estimate", "mean |rel err|", "max sketch bits", "full bits"},
		Notes: []string{
			"unbiased estimator; concentration kicks in once T ≫ p^-3 (visible as the error column falls with p)",
		},
	}
	g := gen.Gnp(n, 0.4, src)
	exact := float64(triangles.Exact(g))
	fullBits := g.MaxDegree() * 8
	for _, p := range []float64{0.2, 0.4, 0.7, 1.0} {
		jobs := make([]engine.Job[float64], trials)
		for trial := 0; trial < trials; trial++ {
			jobs[trial] = oneRoundJob(fmt.Sprintf("tri/p%.1f/t%d", p, trial),
				triangles.New(p), g, coins.DeriveIndex(int(p*100)*1000+trial))
		}
		results, err := runOneRoundBatch(jobs)
		if err != nil {
			return nil, err
		}
		sum, errSum, maxBits := 0.0, 0.0, 0
		for _, jr := range results {
			if jr.Err != nil {
				return nil, jr.Err
			}
			sum += jr.Result.Output
			if exact > 0 {
				errSum += math.Abs(jr.Result.Output-exact) / exact
			}
			if jr.Result.Stats.MaxMessageBits > maxBits {
				maxBits = jr.Result.Stats.MaxMessageBits
			}
		}
		t.AddRow(n, p, trials, int(exact),
			fmt.Sprintf("%.0f", sum/float64(trials)),
			fmt.Sprintf("%.3f", errSum/float64(trials)),
			maxBits, fullBits)
	}
	return []*Table{t}, nil
}

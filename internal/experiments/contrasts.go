package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/degeneracy"
	"repro/internal/densest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparsify"
)

// E17CutSparsifier measures the AGM-style cut sparsifier the paper's
// introduction cites ("cut sparsifiers and approximate min/max cuts
// [2]"): relative cut errors over random cuts, sparsification ratio, and
// the K quality knob.
func E17CutSparsifier(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x27182818)
	cuts := 40
	n := 40
	if scale == Full {
		cuts = 120
		n = 56
	}
	t := &Table{
		ID:      "E17",
		Title:   "AGM cut sparsifier: relative cut error over random cuts",
		Columns: []string{"n", "K", "graph edges", "sparsifier edges", "median err", "p90 err", "max err"},
		Notes: []string{
			"weight 2^i at the shallowest skeleton level retaining the edge (Benczúr–Karger rate matching)",
			"K is the per-level skeleton connectivity: the ε-knob",
		},
	}
	for _, k := range []int{2, 4, 8} {
		g := gen.Gnp(n, 0.4, src)
		res, err := core.Run[*sparsify.Sparsifier](sparsify.New(sparsify.Config{K: k}), g, coins.DeriveIndex(k))
		if err != nil {
			return nil, err
		}
		sp := res.Output
		var rels []float64
		for c := 0; c < cuts; c++ {
			side := make([]bool, g.N())
			for v := range side {
				side[v] = src.Bool()
			}
			truth := sparsify.TrueCut(g, side)
			if truth == 0 {
				continue
			}
			rels = append(rels, math.Abs(sp.CutValue(side)-truth)/truth)
		}
		sort.Float64s(rels)
		t.AddRow(n, k, g.M(), sp.Edges(),
			fmt.Sprintf("%.3f", rels[len(rels)/2]),
			fmt.Sprintf("%.3f", rels[len(rels)*9/10]),
			fmt.Sprintf("%.3f", rels[len(rels)-1]))
	}

	// E17b: the cited application — approximate global min cut from the
	// sparsifier, on a planted-bottleneck topology.
	mc := &Table{
		ID:      "E17b",
		Title:   "Approximate min cut from the sparsifier (planted bottleneck)",
		Columns: []string{"blob size", "planted cut", "true min cut", "sparsifier min cut", "side correct"},
	}
	for _, blob := range []int{8, 12} {
		g := graphBuilderTwoBlobs(blob, 3)
		truth, _ := graph.GlobalMinCut(g)
		res, err := core.Run[*sparsify.Sparsifier](sparsify.New(sparsify.Config{K: 4}), g, coins.Derive("mincut").DeriveIndex(blob))
		if err != nil {
			return nil, err
		}
		est, side := graph.WeightedMinCut(g.N(), res.Output.Weight)
		mc.AddRow(blob, 3, truth, est, len(side) == blob)
	}
	return []*Table{t, mc}, nil
}

// graphBuilderTwoBlobs returns two complete blobs joined by `cut` edges.
func graphBuilderTwoBlobs(blob, cut int) *graph.Graph {
	b := graph.NewBuilder(2 * blob)
	for i := 0; i < blob; i++ {
		for j := i + 1; j < blob; j++ {
			b.AddEdge(i, j)
			b.AddEdge(blob+i, blob+j)
		}
	}
	for c := 0; c < cut; c++ {
		b.AddEdge(c, blob+c)
	}
	return b.Build()
}

// E18DegeneracyDensest measures the remaining two §1 contrast problems:
// graph degeneracy [31] and densest subgraph [22, 48], both with
// sampled-neighborhood sketches.
func E18DegeneracyDensest(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x16180339)
	trials := 8
	ns := []int{80, 160}
	if scale == Full {
		trials = 20
		ns = append(ns, 320)
	}

	deg := &Table{
		ID:      "E18a",
		Title:   "Degeneracy sketches [31]: scaled peeling on sampled neighborhoods",
		Columns: []string{"n", "trials", "mean exact", "mean estimate", "within 2x", "max sketch bits", "n bits"},
		Notes: []string{
			"12 sampled neighbors per vertex — below the mean degree, so the scaled peeling genuinely estimates",
		},
	}
	for _, n := range ns {
		exactSum, estSum, within, maxBits := 0, 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			g := gen.Gnp(n, 0.3, src)
			exact, _ := degeneracy.Exact(g)
			res, err := core.Run[int](&degeneracy.Protocol{SamplesPerVertex: 12}, g, coins.Derive("deg").DeriveIndex(n+trial))
			if err != nil {
				return nil, err
			}
			exactSum += exact
			estSum += res.Output
			if res.MaxSketchBits > maxBits {
				maxBits = res.MaxSketchBits
			}
			if exact > 0 {
				r := float64(res.Output) / float64(exact)
				if r >= 0.5 && r <= 2 {
					within++
				}
			}
		}
		deg.AddRow(n, trials,
			float64(exactSum)/float64(trials), float64(estSum)/float64(trials),
			fmt.Sprintf("%d/%d", within, trials), maxBits, n)
	}

	den := &Table{
		ID:      "E18b",
		Title:   "Densest subgraph sketches [22,48]: rescaled peeling on sampled edges",
		Columns: []string{"n", "sample p", "trials", "mean exact", "mean estimate", "within 1.5x", "max sketch bits"},
		Notes: []string{
			"reference value is Charikar peeling density (2-approx of the optimum)",
		},
	}
	for _, n := range ns {
		p := 0.3
		exactSum, estSum := 0.0, 0.0
		within, maxBits := 0, 0
		for trial := 0; trial < trials; trial++ {
			g := gen.Gnp(n, 0.3, src)
			exact := densest.ExactPeelingDensity(g)
			res, err := core.Run[float64](densest.New(p), g, coins.Derive("den").DeriveIndex(n+trial))
			if err != nil {
				return nil, err
			}
			exactSum += exact
			estSum += res.Output
			if res.MaxSketchBits > maxBits {
				maxBits = res.MaxSketchBits
			}
			if exact > 0 && res.Output >= exact/1.5 && res.Output <= exact*1.5 {
				within++
			}
		}
		den.AddRow(n, p, trials,
			fmt.Sprintf("%.2f", exactSum/float64(trials)),
			fmt.Sprintf("%.2f", estSum/float64(trials)),
			fmt.Sprintf("%d/%d", within, trials), maxBits)
	}
	return []*Table{deg, den}, nil
}

package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/degeneracy"
	"repro/internal/densest"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparsify"
)

// E17CutSparsifier measures the AGM-style cut sparsifier the paper's
// introduction cites ("cut sparsifiers and approximate min/max cuts
// [2]"): relative cut errors over random cuts, sparsification ratio, and
// the K quality knob.
func E17CutSparsifier(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x27182818)
	cuts := 40
	n := 40
	if scale == Full {
		cuts = 120
		n = 56
	}
	t := &Table{
		ID:      "E17",
		Title:   "AGM cut sparsifier: relative cut error over random cuts",
		Columns: []string{"n", "K", "graph edges", "sparsifier edges", "median err", "p90 err", "max err"},
		Notes: []string{
			"weight 2^i at the shallowest skeleton level retaining the edge (Benczúr–Karger rate matching)",
			"K is the per-level skeleton connectivity: the ε-knob",
		},
	}
	// Graphs and cut sides draw from the shared source in the exact
	// order of the sequential sweep (per k: graph, then its cut sides);
	// only then do the sparsifier runs batch through the engine.
	ks := []int{2, 4, 8}
	graphs := make([]*graph.Graph, len(ks))
	sides := make([][][]bool, len(ks))
	jobs := make([]engine.Job[*sparsify.Sparsifier], len(ks))
	for i, k := range ks {
		graphs[i] = gen.Gnp(n, 0.4, src)
		sides[i] = make([][]bool, cuts)
		for c := 0; c < cuts; c++ {
			side := make([]bool, graphs[i].N())
			for v := range side {
				side[v] = src.Bool()
			}
			sides[i][c] = side
		}
		jobs[i] = oneRoundJob(fmt.Sprintf("sparsify/k%d", k),
			sparsify.New(sparsify.Config{K: k}), graphs[i], coins.DeriveIndex(k))
	}
	results, err := runOneRoundBatch(jobs)
	if err != nil {
		return nil, err
	}
	for i, k := range ks {
		if results[i].Err != nil {
			return nil, results[i].Err
		}
		g, sp := graphs[i], results[i].Result.Output
		var rels []float64
		for c := 0; c < cuts; c++ {
			truth := sparsify.TrueCut(g, sides[i][c])
			if truth == 0 {
				continue
			}
			rels = append(rels, math.Abs(sp.CutValue(sides[i][c])-truth)/truth)
		}
		sort.Float64s(rels)
		t.AddRow(n, k, g.M(), sp.Edges(),
			fmt.Sprintf("%.3f", rels[len(rels)/2]),
			fmt.Sprintf("%.3f", rels[len(rels)*9/10]),
			fmt.Sprintf("%.3f", rels[len(rels)-1]))
	}

	// E17b: the cited application — approximate global min cut from the
	// sparsifier, on a planted-bottleneck topology.
	mc := &Table{
		ID:      "E17b",
		Title:   "Approximate min cut from the sparsifier (planted bottleneck)",
		Columns: []string{"blob size", "planted cut", "true min cut", "sparsifier min cut", "side correct"},
	}
	blobs := []int{8, 12}
	mcJobs := make([]engine.Job[*sparsify.Sparsifier], len(blobs))
	for i, blob := range blobs {
		mcJobs[i] = oneRoundJob(fmt.Sprintf("mincut/blob%d", blob),
			sparsify.New(sparsify.Config{K: 4}), graphBuilderTwoBlobs(blob, 3),
			coins.Derive("mincut").DeriveIndex(blob))
	}
	mcResults, err := runOneRoundBatch(mcJobs)
	if err != nil {
		return nil, err
	}
	for i, blob := range blobs {
		if mcResults[i].Err != nil {
			return nil, mcResults[i].Err
		}
		g := mcJobs[i].Graph
		truth, _ := graph.GlobalMinCut(g)
		est, side := graph.WeightedMinCut(g.N(), mcResults[i].Result.Output.Weight)
		mc.AddRow(blob, 3, truth, est, len(side) == blob)
	}
	return []*Table{t, mc}, nil
}

// graphBuilderTwoBlobs returns two complete blobs joined by `cut` edges.
func graphBuilderTwoBlobs(blob, cut int) *graph.Graph {
	b := graph.NewBuilder(2 * blob)
	for i := 0; i < blob; i++ {
		for j := i + 1; j < blob; j++ {
			b.AddEdge(i, j)
			b.AddEdge(blob+i, blob+j)
		}
	}
	for c := 0; c < cut; c++ {
		b.AddEdge(c, blob+c)
	}
	return b.Build()
}

// E18DegeneracyDensest measures the remaining two §1 contrast problems:
// graph degeneracy [31] and densest subgraph [22, 48], both with
// sampled-neighborhood sketches.
func E18DegeneracyDensest(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x16180339)
	trials := 8
	ns := []int{80, 160}
	if scale == Full {
		trials = 20
		ns = append(ns, 320)
	}

	deg := &Table{
		ID:      "E18a",
		Title:   "Degeneracy sketches [31]: scaled peeling on sampled neighborhoods",
		Columns: []string{"n", "trials", "mean exact", "mean estimate", "within 2x", "max sketch bits", "n bits"},
		Notes: []string{
			"12 sampled neighbors per vertex — below the mean degree, so the scaled peeling genuinely estimates",
		},
	}
	for _, n := range ns {
		jobs := make([]engine.Job[int], trials)
		for trial := 0; trial < trials; trial++ {
			jobs[trial] = oneRoundJob(fmt.Sprintf("deg/n%d/t%d", n, trial),
				&degeneracy.Protocol{SamplesPerVertex: 12}, gen.Gnp(n, 0.3, src),
				coins.Derive("deg").DeriveIndex(n+trial))
		}
		results, err := runOneRoundBatch(jobs)
		if err != nil {
			return nil, err
		}
		exactSum, estSum, within, maxBits := 0, 0, 0, 0
		for trial, jr := range results {
			if jr.Err != nil {
				return nil, jr.Err
			}
			exact, _ := degeneracy.Exact(jobs[trial].Graph)
			exactSum += exact
			estSum += jr.Result.Output
			if jr.Result.Stats.MaxMessageBits > maxBits {
				maxBits = jr.Result.Stats.MaxMessageBits
			}
			if exact > 0 {
				r := float64(jr.Result.Output) / float64(exact)
				if r >= 0.5 && r <= 2 {
					within++
				}
			}
		}
		deg.AddRow(n, trials,
			float64(exactSum)/float64(trials), float64(estSum)/float64(trials),
			fmt.Sprintf("%d/%d", within, trials), maxBits, n)
	}

	den := &Table{
		ID:      "E18b",
		Title:   "Densest subgraph sketches [22,48]: rescaled peeling on sampled edges",
		Columns: []string{"n", "sample p", "trials", "mean exact", "mean estimate", "within 1.5x", "max sketch bits"},
		Notes: []string{
			"reference value is Charikar peeling density (2-approx of the optimum)",
		},
	}
	for _, n := range ns {
		p := 0.3
		jobs := make([]engine.Job[float64], trials)
		for trial := 0; trial < trials; trial++ {
			jobs[trial] = oneRoundJob(fmt.Sprintf("den/n%d/t%d", n, trial),
				densest.New(p), gen.Gnp(n, 0.3, src),
				coins.Derive("den").DeriveIndex(n+trial))
		}
		results, err := runOneRoundBatch(jobs)
		if err != nil {
			return nil, err
		}
		exactSum, estSum := 0.0, 0.0
		within, maxBits := 0, 0
		for trial, jr := range results {
			if jr.Err != nil {
				return nil, jr.Err
			}
			exact := densest.ExactPeelingDensity(jobs[trial].Graph)
			exactSum += exact
			estSum += jr.Result.Output
			if jr.Result.Stats.MaxMessageBits > maxBits {
				maxBits = jr.Result.Stats.MaxMessageBits
			}
			if exact > 0 && jr.Result.Output >= exact/1.5 && jr.Result.Output <= exact*1.5 {
				within++
			}
		}
		den.AddRow(n, p, trials,
			fmt.Sprintf("%.2f", exactSum/float64(trials)),
			fmt.Sprintf("%.2f", estSum/float64(trials)),
			fmt.Sprintf("%d/%d", within, trials), maxBits)
	}
	return []*Table{deg, den}, nil
}

package experiments

// E40: the rounds-vs-communication tradeoff the engine's adaptive path
// exists to measure. One-round protocols for maximal matching are stuck
// at Ω(n/log n) bits per player (Theorem 1); with one referee feedback
// round, the two-round filtering protocols get the same guarantee from
// O(√n·polylog n)-bit messages plus a cheap referee downlink. This sweep
// runs both sides through the same engine batches and tabulates the
// split the per-round accounting (RunStats.RoundBits) now exposes:
// player uplink bits vs. referee feedback bits, per protocol, across n.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cclique"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// E40RoundsVsCommunication sweeps rounds vs. total communication:
// one-round bounded-budget matching (AGM-era sampling, budgets √n and n)
// against the adaptive two-round MM and MIS protocols, across n.
func E40RoundsVsCommunication(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x40c0ffee)
	trials := 5
	ns := []int{100, 200, 400}
	if scale == Full {
		trials = 12
		ns = append(ns, 800, 1600)
	}
	t := &Table{
		ID:    "E40",
		Title: "Rounds vs. total communication: one-round budgets against adaptive two-round protocols",
		Columns: []string{
			"n", "protocol", "rounds", "success",
			"max msg bits", "player bits", "feedback bits",
		},
		Notes: []string{
			"player bits = per-run uplink total (max over trials); feedback bits = referee downlink, zero for every one-round protocol",
			"one extra adaptive round buys maximality at O(√n·polylog n) uplink per player — the Section 1.1 contrast, measured",
		},
	}
	eng := newEngine()
	for _, n := range ns {
		g := gen.Gnp(n, 0.3, src)
		sqrtBudget := int(math.Ceil(math.Sqrt(float64(n))))

		type edgeVariant struct {
			name    string
			rounds  int
			derive  string
			build   func() engine.Protocol[[]graph.Edge]
			verify  func([]graph.Edge) bool
			success *int
		}
		variants := []edgeVariant{
			{
				name: fmt.Sprintf("mm-1round-b%d", sqrtBudget), rounds: 1, derive: "e40-sqrt",
				build: func() engine.Protocol[[]graph.Edge] {
					return &cclique.OneRound[[]graph.Edge]{P: &matchproto.EdgeSample{EdgesPerVertex: sqrtBudget}}
				},
				verify: func(out []graph.Edge) bool { return graph.IsMaximalMatching(g, out) },
			},
			{
				name: "mm-1round-full", rounds: 1, derive: "e40-full",
				build: func() engine.Protocol[[]graph.Edge] {
					return &cclique.OneRound[[]graph.Edge]{P: &matchproto.EdgeSample{EdgesPerVertex: n}}
				},
				verify: func(out []graph.Edge) bool { return graph.IsMaximalMatching(g, out) },
			},
			{
				name: "mm-2round-adaptive", rounds: 2, derive: "e40-mm2",
				build: func() engine.Protocol[[]graph.Edge] {
					return matchproto.NewTwoRound()
				},
				verify: func(out []graph.Edge) bool { return graph.IsMaximalMatching(g, out) },
			},
		}
		for vi := range variants {
			v := &variants[vi]
			jobs := make([]engine.Job[[]graph.Edge], trials)
			for trial := range jobs {
				jobs[trial] = engine.Job[[]graph.Edge]{
					Label:    fmt.Sprintf("%s/n%d/t%d", v.name, n, trial),
					Protocol: v.build(),
					Graph:    g,
					Coins:    coins.Derive(v.derive).DeriveIndex(n*100 + trial),
				}
			}
			results, err := engine.RunBatch(context.Background(), eng, jobs)
			if err != nil {
				return nil, err
			}
			ok := 0
			var maxMsg int
			var playerBits, feedbackBits int64
			for _, jr := range results {
				if jr.Err != nil {
					return nil, jr.Err
				}
				if v.verify(jr.Result.Output) {
					ok++
				}
				maxMsg = maxInt(maxMsg, jr.Result.Stats.MaxMessageBits)
				playerBits = maxInt64(playerBits, jr.Result.Stats.TotalBits)
				feedbackBits = maxInt64(feedbackBits, jr.Result.Stats.FeedbackBits)
			}
			t.AddRow(n, v.name, v.rounds, fmt.Sprintf("%d/%d", ok, trials),
				maxMsg, playerBits, feedbackBits)
		}

		// MIS rides the same sweep on its own job type: the adaptive
		// two-round protocol is the paper's second Section 1.1 witness.
		misJobs := make([]engine.Job[[]int], trials)
		for trial := range misJobs {
			misJobs[trial] = engine.Job[[]int]{
				Label:    fmt.Sprintf("mis-2round-adaptive/n%d/t%d", n, trial),
				Protocol: misproto.NewTwoRound(),
				Graph:    g,
				Coins:    coins.Derive("e40-mis2").DeriveIndex(n*100 + trial),
			}
		}
		misResults, err := engine.RunBatch(context.Background(), eng, misJobs)
		if err != nil {
			return nil, err
		}
		misOK := 0
		var misMaxMsg int
		var misPlayerBits, misFeedbackBits int64
		for _, jr := range misResults {
			if jr.Err != nil {
				return nil, jr.Err
			}
			if graph.IsMaximalIndependentSet(g, jr.Result.Output) {
				misOK++
			}
			misMaxMsg = maxInt(misMaxMsg, jr.Result.Stats.MaxMessageBits)
			misPlayerBits = maxInt64(misPlayerBits, jr.Result.Stats.TotalBits)
			misFeedbackBits = maxInt64(misFeedbackBits, jr.Result.Stats.FeedbackBits)
		}
		t.AddRow(n, "mis-2round-adaptive", 2, fmt.Sprintf("%d/%d", misOK, trials),
			misMaxMsg, misPlayerBits, misFeedbackBits)
	}
	return []*Table{t}, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

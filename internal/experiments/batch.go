package experiments

// Engine-batch drivers for the one-round experiment sweeps. Every
// experiment that used to hand-roll a sketch-all-vertices loop (or call
// core.Run / core.EstimateSuccess directly) now routes its trials
// through engine.RunBatch: trials run across the shared worker pool,
// each job sequential inside, so tables are byte-identical for every
// -workers value while inheriting the engine's bit accounting.
//
// The one determinism rule callers must follow: anything drawn from a
// shared rng.Source (graphs, cut sides, weights) must be drawn BEFORE
// batching, in the exact order the sequential sweep drew it. Protocol
// runs consume only their per-job coins, so pre-drawing inputs and then
// batching preserves every byte.

import (
	"context"
	"fmt"

	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// oneRoundJob wraps a one-round sketching protocol as an engine batch
// job via the congested-clique embedding.
func oneRoundJob[O any](label string, p core.Protocol[O], g *graph.Graph, coins *rng.PublicCoins) engine.Job[O] {
	return engine.Job[O]{Label: label, Protocol: &cclique.OneRound[O]{P: p}, Graph: g, Coins: coins}
}

// runOneRoundBatch executes one-round jobs over the shared engine pool.
// Per-job errors stay in the results; the returned error is only a
// context cancellation.
func runOneRoundBatch[O any](jobs []engine.Job[O]) ([]engine.JobResult[O], error) {
	return engine.RunBatch(context.Background(), newEngine(), jobs)
}

// estimateSuccessBatch is core.EstimateSuccess rerouted through
// engine.RunBatch, with identical semantics: per-trial coins are derived
// as coins.Derive("trial").DeriveIndex(i), protocol errors count as
// failures rather than aborting, and errored trials still contribute
// their message bits. build must return a FRESH protocol per call (jobs
// run concurrently); sample(i) is called in trial order before any job
// runs, so shared-source draws stay sequential.
func estimateSuccessBatch[O any](build func() core.Protocol[O], sample func(trial int) core.Trial[O], trials int, coins *rng.PublicCoins) core.Stats {
	var stats core.Stats
	stats.Trials = trials
	trialData := make([]core.Trial[O], trials)
	jobs := make([]engine.Job[O], trials)
	for i := 0; i < trials; i++ {
		trialData[i] = sample(i)
		jobs[i] = oneRoundJob(fmt.Sprintf("trial-%d", i), build(), trialData[i].Graph,
			coins.Derive("trial").DeriveIndex(i))
	}
	results, _ := runOneRoundBatch(jobs)
	sum := 0
	for i, jr := range results {
		maxBits := jr.Result.Stats.MaxMessageBits
		if maxBits > stats.MaxSketchBits {
			stats.MaxSketchBits = maxBits
		}
		sum += maxBits
		if jr.Err != nil {
			continue
		}
		if trialData[i].Verify(jr.Result.Output) {
			stats.Successes++
		}
	}
	if trials > 0 {
		stats.AvgSketchBits = float64(sum) / float64(trials)
	}
	return stats
}

package experiments

import (
	"fmt"

	"repro/internal/agm"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// E13Certificates extends E8 with the other linear-sketch results of
// [AGM'12] the paper cites: k-edge-connectivity certificates peeled from
// one round of sketches, and the dynamic-stream view of the same
// sketches.
func E13Certificates(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0xcafef00d)
	trials := 4
	cuts := 30
	if scale == Full {
		trials = 10
		cuts = 200
	}

	cert := &Table{
		ID:      "E13",
		Title:   "AGM k-edge-connectivity certificates (one round, referee-side peeling)",
		Columns: []string{"n", "k", "trials", "verified", "random cuts preserved", "cert edges", "k(n-1)"},
		Notes: []string{
			"forests F_i are peeled by linear deletion of earlier forests from later sketch groups",
		},
	}
	for _, cfg := range []struct {
		n int
		k int
		p float64
	}{{40, 2, 0.25}, {40, 4, 0.25}, {80, 3, 0.15}} {
		verified, cutOK, cutTotal, edgeSum := 0, 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			g := gen.Gnp(cfg.n, cfg.p, src)
			res, err := core.Run[[]graph.Edge](agm.NewSkeleton(cfg.k, agm.Config{}),
				g, coins.DeriveIndex(cfg.n*100+cfg.k*10+trial))
			if err != nil {
				return nil, err
			}
			if agm.VerifyCertificate(g, res.Output, cfg.k) == nil {
				verified++
			}
			edgeSum += len(res.Output)
			for c := 0; c < cuts; c++ {
				side := make([]bool, cfg.n)
				for v := range side {
					side[v] = src.Bool()
				}
				cutTotal++
				if agm.CutPreserved(g, res.Output, cfg.k, side) {
					cutOK++
				}
			}
		}
		cert.AddRow(cfg.n, cfg.k, trials,
			fmt.Sprintf("%d/%d", verified, trials),
			fmt.Sprintf("%d/%d", cutOK, cutTotal),
			edgeSum/trials, cfg.k*(cfg.n-1))
	}

	stream := &Table{
		ID:      "E13b",
		Title:   "Dynamic-stream linearity: stream-maintained sketches ≡ from-scratch sketches",
		Columns: []string{"n", "inserts", "deletes", "sketches identical", "forest valid"},
	}
	for _, n := range []int{25, 50} {
		g := gen.Gnp(n, 0.3, src)
		s := agm.NewStreamSketcher(n, agm.Config{}, coins.Derive("stream").DeriveIndex(n))
		inserts, deletes := 0, 0
		for _, e := range g.Edges() {
			if err := s.Insert(e.U, e.V); err != nil {
				return nil, err
			}
			inserts++
		}
		var kept []graph.Edge
		for i, e := range g.Edges() {
			if i%4 == 0 {
				if err := s.Delete(e.U, e.V); err != nil {
					return nil, err
				}
				deletes++
			} else {
				kept = append(kept, e)
			}
		}
		final := graph.FromEdges(n, kept)
		identical := true
		p := agm.NewSpanningForest(agm.Config{})
		views := core.Views(final)
		for v := 0; v < n && identical; v++ {
			// Not a run loop: each vertex's direct sketch is compared
			// against the incrementally maintained stream sketch, bit for
			// bit.
			view := views[v]
			direct, err := p.Sketch(view, coins.Derive("stream").DeriveIndex(n))
			if err != nil {
				return nil, err
			}
			streamed := s.Sketch(v)
			if direct.Len() != streamed.Len() {
				identical = false
				break
			}
			db, sb := direct.Bytes(), streamed.Bytes()
			for i := range db {
				if db[i] != sb[i] {
					identical = false
					break
				}
			}
		}
		forest, err := s.SpanningForest(coins.Derive("stream").DeriveIndex(n))
		if err != nil {
			return nil, err
		}
		stream.AddRow(n, inserts, deletes, identical, graph.IsSpanningForest(final, forest))
	}
	return []*Table{cert, stream}, nil
}

// E14BudgetScaling charts how the budget needed to beat the k·r/4 goal
// scales with r across instance sizes — the shape behind Theorem 1: the
// required per-player communication grows linearly in r (≈ r/8 edges for
// the sampling protocol), not polylogarithmically.
func E14BudgetScaling(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0xdecafbad)
	trials := 6
	ms := []int{15, 30, 60}
	if scale == Full {
		trials = 15
		ms = append(ms, 120, 240)
	}
	t := &Table{
		ID:      "E14",
		Title:   "Budget needed for k·r/4 recovery scales with r (Theorem 1's shape)",
		Columns: []string{"m", "r", "n", "threshold budget (edges)", "threshold bits", "r/8", "log2(n)"},
		Notes: []string{
			"threshold budget: smallest edges/vertex winning >= 80% of trials",
			"a polylog-sketchable problem would show a flat threshold; here it tracks r/8",
		},
	}
	for _, m := range ms {
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			return nil, err
		}
		inst, err := harddist.Sample(harddist.Params{RS: rs, K: 8, DropProb: 0.5}, src)
		if err != nil {
			return nil, err
		}
		verify := matchproto.RecoveredSpecialGoal(inst)
		threshold := -1
		idBits := bitsLen(inst.G.N())
		for budget := 1; budget <= rs.R(); budget++ {
			wins := 0
			for trial := 0; trial < trials; trial++ {
				p := &matchproto.SpecialFilter{Instance: inst, EdgesPerVertex: budget}
				res, err := core.Run[[]graph.Edge](p, inst.G,
					coins.Derive("e14").DeriveIndex(m*10000+budget*100+trial))
				if err != nil {
					return nil, err
				}
				if verify(res.Output) {
					wins++
				}
			}
			if wins*10 >= trials*8 {
				threshold = budget
				break
			}
		}
		thrLabel := fmt.Sprintf("%d", threshold)
		bitsLabel := fmt.Sprintf("%d", threshold*idBits)
		if threshold == -1 {
			thrLabel, bitsLabel = ">r", "-"
		}
		t.AddRow(m, rs.R(), inst.G.N(), thrLabel, bitsLabel,
			float64(rs.R())/8, bitsLen(inst.G.N()))
	}

	// Companion: independence is one bit, maximality is the hard part.
	lm := &Table{
		ID:      "E14b",
		Title:   "LocalMinima: independent sets are 1-bit-sketchable; maximality is not",
		Columns: []string{"n", "p", "trials", "independent", "maximal", "sketch bits"},
	}
	for _, n := range []int{60, 120} {
		indep, maximal := 0, 0
		for trial := 0; trial < trials; trial++ {
			g := gen.Gnp(n, 0.1, src)
			res, err := core.Run[[]int](misproto.LocalMinima{}, g, coins.Derive("lm").DeriveIndex(n+trial))
			if err != nil {
				return nil, err
			}
			if graph.IsIndependentSet(g, res.Output) {
				indep++
			}
			if graph.IsMaximalIndependentSet(g, res.Output) {
				maximal++
			}
		}
		lm.AddRow(n, 0.1, trials,
			fmt.Sprintf("%d/%d", indep, trials),
			fmt.Sprintf("%d/%d", maximal, trials), 1)
	}
	return []*Table{t, lm}, nil
}

func bitsLen(n int) int {
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}

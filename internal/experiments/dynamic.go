package experiments

// E50: approximation vs. passes vs. churn on dynamic streams. The
// semi-streaming (1+ε) matching protocol trades referee passes (2⌈1/ε⌉+2)
// for approximation quality; this sweep drives it over the epochs of
// seed-derived churn streams and tabulates, per (churn rate, ε), the
// worst epoch's |M|/|M*| ratio against blossom ground truth plus the
// communication split the adaptive engine accounts per lane. The stream
// itself is maintained incrementally (scalar and columnar paths both),
// and the row's digest column pins that the two checkpoint strategies
// agree at every epoch — the tentpole determinism invariant, surfaced as
// an experiment artifact.

import (
	"context"
	"fmt"

	"repro/internal/dynstream"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// E50DynamicMatching sweeps the semi-streaming matching protocol across
// churn rates and ε, evaluating it at every epoch of each stream.
func E50DynamicMatching(scale Scale, seed uint64) ([]*Table, error) {
	coins := rng.NewPublicCoins(seed ^ 0x50d15c0)
	n, epochs, opsPerEpoch, target := 60, 3, 120, 140
	churns := []float64{0.1, 0.4}
	epsilons := []float64{0.5, 0.25}
	if scale == Full {
		n, epochs, opsPerEpoch, target = 100, 4, 220, 320
		churns = append(churns, 0.7)
		epsilons = append(epsilons, 0.125)
	}
	t := &Table{
		ID:    "E50",
		Title: "Dynamic streams: (1+eps) matching quality vs. passes vs. churn",
		Columns: []string{
			"churn", "eps", "passes", "epochs ok",
			"min ratio", "player bits", "feedback bits", "sketch digest ok",
		},
		Notes: []string{
			"min ratio = worst epoch's |M|/|M*| against blossom ground truth; the protocol guarantees >= 1-eps at every epoch",
			"player/feedback bits = max over epochs of uplink vs. referee downlink totals; passes = 2*ceil(1/eps)+2",
			"sketch digest ok = incremental maintenance (scalar and columnar, Workers=2) matched a from-scratch rebuild at every epoch",
		},
	}
	eng := newEngine()
	for _, churn := range churns {
		stream, err := dynstream.Generate(dynstream.Spec{
			N: n, Epochs: epochs, OpsPerEpoch: opsPerEpoch,
			Pattern: dynstream.PatternChurn, TargetEdges: target, Churn: churn,
			Seed: seed ^ uint64(churn*1000),
		})
		if err != nil {
			return nil, err
		}

		// Maintain the stream's sketches incrementally on both hot paths
		// and compare every checkpoint against a from-scratch rebuild:
		// the epoch-parity invariant, re-proven on the sweep's own data.
		specs := dynstream.Samplers(n, 2, coins.Derive("e50-samplers"))
		digestOK := true
		for _, block := range []bool{false, true} {
			run := dynstream.Process(stream, specs, dynstream.Options{Workers: 2, Block: block})
			if err := dynstream.VerifyEpochParity(run, specs); err != nil {
				digestOK = false
			}
		}

		// Materialize the per-epoch graphs once; every ε variant below
		// is evaluated against the same prefix snapshots.
		graphs := make([]*graph.Graph, epochs)
		for e := 0; e < epochs; e++ {
			graphs[e] = stream.GraphAt(e)
		}

		for _, eps := range epsilons {
			p := dynstream.NewSemiStream(eps)
			jobs := make([]engine.Job[[]graph.Edge], epochs)
			for e := range jobs {
				jobs[e] = engine.Job[[]graph.Edge]{
					Label:    fmt.Sprintf("e50/churn%.1f/eps%g/epoch%d", churn, eps, e),
					Protocol: dynstream.NewSemiStream(eps),
					Graph:    graphs[e],
					Coins:    coins.Derive("e50-run").DeriveIndex(int(churn*10)*1000 + int(1/eps)*100 + e),
				}
			}
			results, err := engine.RunBatch(context.Background(), eng, jobs)
			if err != nil {
				return nil, err
			}
			epochsOK := 0
			minRatio := 1.0
			var playerBits, feedbackBits int64
			for e, jr := range results {
				if jr.Err != nil {
					return nil, jr.Err
				}
				out := jr.Result.Output
				opt := len(graph.MaximumMatching(graphs[e]))
				ratio := 1.0
				if opt > 0 {
					ratio = float64(len(out)) / float64(opt)
				}
				if graph.IsMatching(graphs[e], out) && ratio+1e-9 >= 1-eps {
					epochsOK++
				}
				if ratio < minRatio {
					minRatio = ratio
				}
				playerBits = maxInt64(playerBits, jr.Result.Stats.TotalBits)
				feedbackBits = maxInt64(feedbackBits, jr.Result.Stats.FeedbackBits)
			}
			t.AddRow(fmt.Sprintf("%.1f", churn), fmt.Sprintf("%g", eps), p.Rounds(),
				fmt.Sprintf("%d/%d", epochsOK, epochs), fmt.Sprintf("%.3f", minRatio),
				playerBits, feedbackBits, digestOK)
		}
	}
	return []*Table{t}, nil
}

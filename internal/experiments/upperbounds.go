package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/agm"
	"repro/internal/cclique"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// E8AGMSpanningForest measures the paper's headline contrast: spanning
// forest with polylog-bit sketches.
func E8AGMSpanningForest(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x1234567)
	trials := 8
	ns := []int{64, 128, 256}
	if scale == Full {
		trials = 20
		ns = append(ns, 512, 1024)
	}
	t := &Table{
		ID:      "E8",
		Title:   "AGM spanning forest: polylog sketches where MM/MIS need Ω(√n)",
		Columns: []string{"n", "p", "success", "max sketch bits", "bits/log³n", "trivial n bits"},
		Notes: []string{
			"success = output verified as a spanning forest of G",
			"bits/log³n flat across rows ⇒ O(log³ n) scaling",
		},
	}
	build := func() core.Protocol[[]graph.Edge] { return agm.NewSpanningForest(agm.Config{}) }
	for _, n := range ns {
		prob := 3 * math.Log(float64(n)) / float64(n)
		stats := estimateSuccessBatch[[]graph.Edge](build, func(i int) core.Trial[[]graph.Edge] {
			g := gen.Gnp(n, prob, src)
			return core.Trial[[]graph.Edge]{
				Graph:  g,
				Verify: func(out []graph.Edge) bool { return graph.IsSpanningForest(g, out) },
			}
		}, trials, coins.DeriveIndex(n))
		logN := math.Log2(float64(n))
		t.AddRow(n, fmt.Sprintf("%.3f", prob),
			fmt.Sprintf("%d/%d", stats.Successes, stats.Trials),
			stats.MaxSketchBits,
			float64(stats.MaxSketchBits)/(logN*logN*logN),
			n)
	}

	// Ablation: rounds/reps budget vs success.
	abl := &Table{
		ID:      "E8b",
		Title:   "Ablation: AGM budget (Borůvka rounds × samplers per round)",
		Columns: []string{"rounds", "reps", "success", "max sketch bits"},
	}
	n := 96
	for _, cfg := range []agm.Config{{Rounds: 1, Reps: 1}, {Rounds: 4, Reps: 1}, {Rounds: 10, Reps: 1}, {Rounds: 10, Reps: 3}, {}} {
		cfg := cfg
		stats := estimateSuccessBatch[[]graph.Edge](func() core.Protocol[[]graph.Edge] {
			return agm.NewSpanningForest(cfg)
		}, func(i int) core.Trial[[]graph.Edge] {
			g := gen.Gnp(n, 0.1, src)
			return core.Trial[[]graph.Edge]{
				Graph:  g,
				Verify: func(out []graph.Edge) bool { return graph.IsSpanningForest(g, out) },
			}
		}, trials, coins.Derive("abl").DeriveIndex(cfg.Rounds*10+cfg.Reps))
		label := func(v int, def string) string {
			if v == 0 {
				return def
			}
			return fmt.Sprintf("%d", v)
		}
		abl.AddRow(label(cfg.Rounds, "auto"), label(cfg.Reps, "auto"),
			fmt.Sprintf("%d/%d", stats.Successes, stats.Trials), stats.MaxSketchBits)
	}
	return []*Table{t, abl}, nil
}

// E9BridgeFinding reproduces footnote 1: finding the single bridge
// between two random blobs with O(log²n)-bit sketches.
func E9BridgeFinding(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x7654321)
	trials := 15
	halves := []int{30, 60}
	if scale == Full {
		trials = 40
		halves = append(halves, 150, 400)
	}
	t := &Table{
		ID:      "E9",
		Title:   "Footnote 1: recovering the hidden bridge between two blobs",
		Columns: []string{"n", "success", "max sketch bits", "trivial n bits"},
		Notes: []string{
			"the bridge is locally indistinguishable from other edges at its endpoints;",
			"cancellation of the signed edge-ID sums exposes it to the referee",
		},
	}
	for _, half := range halves {
		bridges := make([]graph.Edge, trials)
		jobs := make([]engine.Job[graph.Edge], trials)
		for trial := 0; trial < trials; trial++ {
			g, bridge := gen.TwoBlobsWithBridge(half, math.Max(0.1, 8/float64(half)), src)
			bridges[trial] = bridge
			jobs[trial] = oneRoundJob(fmt.Sprintf("bridge/h%d/t%d", half, trial),
				agm.NewBridgeFinder(0), g, coins.DeriveIndex(half*1000+trial))
		}
		results, err := runOneRoundBatch(jobs)
		if err != nil {
			return nil, err
		}
		success, maxBits := 0, 0
		for trial, jr := range results {
			// A failed decode counts as a miss and (matching the
			// sequential sweep it replaced) leaves the bit column alone.
			if jr.Err != nil {
				continue
			}
			if jr.Result.Stats.MaxMessageBits > maxBits {
				maxBits = jr.Result.Stats.MaxMessageBits
			}
			if jr.Result.Output == bridges[trial] {
				success++
			}
		}
		t.AddRow(2*half, fmt.Sprintf("%d/%d", success, trials), maxBits, 2*half)
	}
	return []*Table{t}, nil
}

// E10Coloring measures palette sparsification for (Δ+1)-coloring, the
// symmetry-breaking problem the paper contrasts against MM/MIS.
func E10Coloring(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0xfeedbeef)
	trials := 5
	type cfg struct {
		n int
		p float64
	}
	cfgs := []cfg{{100, 0.2}, {200, 0.3}}
	if scale == Full {
		trials = 12
		cfgs = append(cfgs, cfg{400, 0.5}, cfg{800, 0.5})
	}
	t := &Table{
		ID:      "E10",
		Title:   "(Δ+1)-coloring via palette sparsification [ACK19]",
		Columns: []string{"n", "Δ", "list size", "success", "max sketch bits", "full-neighborhood bits"},
		Notes: []string{
			"sketch lists only the conflict neighbors (lists intersecting); savings grow once Δ ≫ log²n",
		},
	}
	for _, c := range cfgs {
		g := gen.Gnp(c.n, c.p, src)
		delta := g.MaxDegree()
		stats := estimateSuccessBatch[[]int](func() core.Protocol[[]int] {
			return coloring.New(coloring.Config{MaxDegree: delta})
		}, func(i int) core.Trial[[]int] {
			return core.Trial[[]int]{
				Graph:  g,
				Verify: func(out []int) bool { return graph.IsProperColoring(g, out, delta+1) },
			}
		}, trials, coins.DeriveIndex(c.n))
		listSize := int(math.Ceil(6 * math.Log(float64(c.n)+1)))
		idBits := int(math.Ceil(math.Log2(float64(c.n))))
		t.AddRow(c.n, delta, listSize,
			fmt.Sprintf("%d/%d", stats.Successes, stats.Trials),
			stats.MaxSketchBits, delta*idBits)
	}

	// Ablation: the list-length factor c in ℓ = c·ln n — the DESIGN.md §4
	// knob. On the complete graph, list coloring from random ℓ-lists is a
	// system-of-distinct-representatives problem with a sharp threshold
	// at ℓ ≈ ln n, the regime ACK19's analysis is built around.
	abl := &Table{
		ID:      "E10b",
		Title:   "Ablation: palette list length ℓ = c·ln n on K_n (threshold at c = 1)",
		Columns: []string{"c", "list size", "success", "max sketch bits"},
	}
	kg := gen.Complete(80)
	kd := kg.MaxDegree()
	for _, c := range []float64{0.5, 1, 2, 4} {
		ls := int(math.Ceil(c * math.Log(float64(kg.N())+1)))
		stats := estimateSuccessBatch[[]int](func() core.Protocol[[]int] {
			return coloring.New(coloring.Config{MaxDegree: kd, ListSize: ls})
		}, func(i int) core.Trial[[]int] {
			return core.Trial[[]int]{
				Graph:  kg,
				Verify: func(out []int) bool { return graph.IsProperColoring(kg, out, kd+1) },
			}
		}, trials, coins.Derive("palette-abl").DeriveIndex(int(c*10)))
		abl.AddRow(c, ls, fmt.Sprintf("%d/%d", stats.Successes, stats.Trials), stats.MaxSketchBits)
	}
	return []*Table{t, abl}, nil
}

// E11TwoRound measures the Section 1.1 remark: with one extra adaptive
// round, MM and MIS drop to O(√n·polylog n)-bit messages.
func E11TwoRound(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x2468ace)
	trials := 6
	ns := []int{100, 200, 400}
	if scale == Full {
		trials = 15
		ns = append(ns, 800, 1600)
	}
	t := &Table{
		ID:      "E11",
		Title:   "Two-round adaptive MM and MIS ([46],[35]): O(√n·polylog) messages",
		Columns: []string{"n", "problem", "success", "round-1 max bits", "round-2 max bits", "√n·log²n", "n (trivial)"},
		Notes: []string{
			"one-round protocols need Ω(√n/e^Θ(√log n)) (Thms 1–2); one extra round reaches the same regime constructively",
		},
	}
	eng := newEngine()
	for _, n := range ns {
		ref := math.Sqrt(float64(n)) * math.Pow(math.Log2(float64(n)+1), 2)
		g := gen.Gnp(n, 0.3, src)

		// All trials of one (n, problem) sweep run as a single engine
		// batch: results come back in job order, and each job carries its
		// own protocol instance and coin sub-stream, so the table is
		// identical for every worker count.
		mmJobs := make([]engine.Job[[]graph.Edge], trials)
		for trial := range mmJobs {
			mmJobs[trial] = engine.Job[[]graph.Edge]{
				Label:    fmt.Sprintf("mm/n%d/t%d", n, trial),
				Protocol: matchproto.NewTwoRound(),
				Graph:    g,
				Coins:    coins.Derive("mm").DeriveIndex(n*100 + trial),
			}
		}
		mmResults, err := engine.RunBatch(context.Background(), eng, mmJobs)
		if err != nil {
			return nil, err
		}
		mmOK := 0
		var mm1, mm2 int
		for _, jr := range mmResults {
			if jr.Err != nil {
				return nil, jr.Err
			}
			if graph.IsMaximalMatching(g, jr.Result.Output) {
				mmOK++
			}
			mm1 = maxInt(mm1, jr.Result.Stats.RoundMaxBits[0])
			mm2 = maxInt(mm2, jr.Result.Stats.RoundMaxBits[1])
		}
		t.AddRow(n, "matching", fmt.Sprintf("%d/%d", mmOK, trials), mm1, mm2, fmt.Sprintf("%.0f", ref), n)

		misJobs := make([]engine.Job[[]int], trials)
		for trial := range misJobs {
			misJobs[trial] = engine.Job[[]int]{
				Label:    fmt.Sprintf("mis/n%d/t%d", n, trial),
				Protocol: misproto.NewTwoRound(),
				Graph:    g,
				Coins:    coins.Derive("mis").DeriveIndex(n*100 + trial),
			}
		}
		misResults, err := engine.RunBatch(context.Background(), eng, misJobs)
		if err != nil {
			return nil, err
		}
		misOK := 0
		var mis1, mis2 int
		for _, jr := range misResults {
			if jr.Err != nil {
				return nil, jr.Err
			}
			if graph.IsMaximalIndependentSet(g, jr.Result.Output) {
				misOK++
			}
			mis1 = maxInt(mis1, jr.Result.Stats.RoundMaxBits[0])
			mis2 = maxInt(mis2, jr.Result.Stats.RoundMaxBits[1])
		}
		t.AddRow(n, "MIS", fmt.Sprintf("%d/%d", misOK, trials), mis1, mis2, fmt.Sprintf("%.0f", ref), n)
	}
	return []*Table{t}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E12BCCEquivalence witnesses the model equivalence of Section 2.1: a
// one-round sketching protocol behaves identically under the broadcast
// congested clique simulator.
func E12BCCEquivalence(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x13579bd)
	trials := 5
	if scale == Full {
		trials = 20
	}
	t := &Table{
		ID:      "E12",
		Title:   "One-round broadcast congested clique ≡ distributed sketching",
		Columns: []string{"protocol", "trials", "identical outputs", "identical max cost"},
	}

	sameEdges := func(a, b []graph.Edge) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	type protoCase struct {
		name string
		p    core.Protocol[[]graph.Edge]
	}
	for _, pc := range []protoCase{
		{"trivial-matching", core.NewTrivialMatching()},
		{"agm-spanning-forest", agm.NewSpanningForest(agm.Config{})},
		{"edge-sample-4", &matchproto.EdgeSample{EdgesPerVertex: 4}},
	} {
		// Graphs are drawn from the shared source first (same order as a
		// sequential sweep), then all BCC simulations run as one engine
		// batch against the direct one-round executions.
		graphs := make([]*graph.Graph, trials)
		jobs := make([]engine.Job[[]graph.Edge], trials)
		for trial := 0; trial < trials; trial++ {
			graphs[trial] = gen.Gnp(40, 0.2, src)
			jobs[trial] = engine.Job[[]graph.Edge]{
				Label:    fmt.Sprintf("%s/t%d", pc.name, trial),
				Protocol: &cclique.OneRound[[]graph.Edge]{P: pc.p},
				Graph:    graphs[trial],
				Coins:    coins.Derive(pc.name).DeriveIndex(trial),
			}
		}
		viaBCC, err := engine.RunBatch(context.Background(), newEngine(), jobs)
		if err != nil {
			return nil, err
		}
		same, sameCost := 0, 0
		for trial := 0; trial < trials; trial++ {
			direct, err := core.Run(pc.p, graphs[trial], coins.Derive(pc.name).DeriveIndex(trial))
			if err != nil {
				return nil, err
			}
			if viaBCC[trial].Err != nil {
				return nil, viaBCC[trial].Err
			}
			if sameEdges(direct.Output, viaBCC[trial].Result.Output) {
				same++
			}
			if direct.MaxSketchBits == viaBCC[trial].Result.Stats.MaxMessageBits {
				sameCost++
			}
		}
		t.AddRow(pc.name, trials, fmt.Sprintf("%d/%d", same, trials), fmt.Sprintf("%d/%d", sameCost, trials))
	}
	return []*Table{t}, nil
}

package experiments

// E60: the connectivity lower bound through the generic lowerbound
// pipeline. The same problem-agnostic Runner that drives the MM/MIS
// obligations samples Yu's layered hidden-permutation instances
// (internal/connlb), checks the construction's exact ground truth
// (2-regularity, components ⇔ composed-permutation cycles) and its
// concentration claim, and evaluates the analytic Ω(log³ n) sketch
// bound at each instance size — the pipeline's first client beyond the
// paper's own theorems.

import (
	"fmt"

	"repro/internal/connlb"
	"repro/internal/lowerbound"
)

// E60ConnectivityLowerBound sweeps the conn-hidden-perm distribution
// over (B, L) shapes through the shared lowerbound.Runner.
func E60ConnectivityLowerBound(scale Scale, seed uint64) ([]*Table, error) {
	type shape struct{ b, l int }
	shapes := []shape{{4, 3}, {8, 4}}
	trials := 6
	if scale == Full {
		shapes = append(shapes, shape{16, 5}, shape{32, 6}, shape{64, 8})
		trials = 40
	}
	t := &Table{
		ID:    "E60",
		Title: "Connectivity hard distribution through the lowerbound pipeline (Yu, arXiv:2007.12323)",
		Columns: []string{
			"B", "L", "n", "trials", "2-regular", "cycles ok", "conc ok",
			"mean comps", "H_B", "Ω(log³n) bits",
		},
		Notes: []string{
			"every column after n is produced by the shared lowerbound.Runner — zero connectivity-specific branches outside internal/connlb",
			"mean comps tracks H_B = E[cycles of a uniform permutation]; conc ok counts trials with comps ≤ 3·H_B",
			"Ω(log³n) bits = the registered conn/omega-log3 bound at n = B·L",
		},
	}
	bound, err := lowerbound.LookupBound("conn/omega-log3")
	if err != nil {
		return nil, err
	}
	for _, s := range shapes {
		rep, err := lowerbound.Runner{Trials: trials}.Run(
			"conn-hidden-perm", lowerbound.Spec{Size: s.b, Aux: s.l}, seed)
		if err != nil {
			return nil, err
		}
		byName := map[string]lowerbound.ObligationSummary{}
		for _, sum := range rep.Obligations {
			byName[sum.Obligation] = sum
		}
		reg, okReg := byName["conn/simple-2-regular"]
		cyc, okCyc := byName["conn/cycle-decomposition"]
		conc, okConc := byName["conn/component-concentration"]
		if !okReg || !okCyc || !okConc {
			return nil, fmt.Errorf("e60: missing conn obligations in report: %v", rep.Obligations)
		}
		meanComps := 0.0
		for _, r := range conc.Reports {
			meanComps += r.Details["components"]
		}
		meanComps /= float64(len(conc.Reports))
		row, err := bound.Evaluate(s.b * s.l)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.b, s.l, s.b*s.l, rep.Trials,
			fmt.Sprintf("%d/%d", reg.Pass, reg.Pass+reg.Fail),
			fmt.Sprintf("%d/%d", cyc.Pass, cyc.Pass+cyc.Fail),
			fmt.Sprintf("%d/%d", conc.Pass, conc.Pass+conc.Fail),
			meanComps, connlb.Harmonic(s.b), row.Bits)
	}
	return []*Table{t}, nil
}

package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// expectedIDs lists the table IDs every full run must produce.
var expectedIDs = []string{
	"E1", "E2", "E3", "E3b", "E4", "E5a", "E5b", "E5c", "E6", "E7", "E8", "E8b",
	"E9", "E10", "E10b", "E11", "E12", "E13", "E13b", "E14", "E14b", "E15",
	"E16", "E17", "E17b", "E18a", "E18b", "E19", "E20", "E40", "E50", "E60",
}

func TestAllSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	var mu sync.Mutex
	seen := map[string]bool{}
	for _, entry := range Registry() {
		entry := entry
		t.Run(entry.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := entry.Run(Small, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				mu.Lock()
				seen[tab.ID] = true
				mu.Unlock()
				if len(tab.Rows) == 0 {
					t.Errorf("%s: empty table", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
					}
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Errorf("%s: render: %v", tab.ID, err)
				}
				if !strings.Contains(buf.String(), tab.ID) {
					t.Errorf("%s: rendering lacks ID header", tab.ID)
				}
			}
		})
	}
	t.Cleanup(func() {
		for _, want := range expectedIDs {
			if !seen[want] {
				t.Errorf("missing table %s", want)
			}
		}
	})
}

func TestNoViolationsReportedAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	// The verification experiments must never report inequality or
	// verifier violations — at any seed, guarding against seed lottery.
	// Only verification-flavored experiments run here; the sweeps measure
	// success rates, where failures are the phenomenon.
	verification := map[string]bool{
		"E1": true, "E3": true, "E4": true, "E6": true, "E12": true, "E13": true,
	}
	for _, seed := range []uint64{7, 42, 20260705} {
		for _, entry := range Registry() {
			if !verification[entry.ID] {
				continue
			}
			entry, seed := entry, seed
			t.Run(fmt.Sprintf("%s/seed%d", entry.ID, seed), func(t *testing.T) {
				t.Parallel()
				tables, err := entry.Run(Small, seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, tab := range tables {
					for _, row := range tab.Rows {
						for _, cell := range row {
							if strings.Contains(cell, "VIOLATED") || strings.Contains(cell, "NO:") {
								t.Errorf("%s: violation cell %q in row %v", tab.ID, cell, row)
							}
						}
					}
				}
			})
		}
	}
}

func TestRegistryOrder(t *testing.T) {
	reg := Registry()
	if len(reg) != 23 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	if reg[0].ID != "E1" || reg[20].ID != "E40" || reg[21].ID != "E50" || reg[22].ID != "E60" {
		t.Errorf("registry order unexpected: %v ... %v, %v, %v", reg[0].ID, reg[20].ID, reg[21].ID, reg[22].ID)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "test",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("wide-cell-content", 0.125)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wide-cell-content") || !strings.Contains(out, "2.5") {
		t.Errorf("rendering lost cells:\n%s", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("note not rendered")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		2.5:    "2.5",
		0.125:  "0.125",
		3.0004: "3",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTrimFloatNegativeZero(t *testing.T) {
	if got := trimFloat(math.Copysign(0, -1)); got != "0" {
		t.Errorf("trimFloat(-0) = %q, want \"0\"", got)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "markdown test",
		Columns: []string{"a", "b|pipe"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x|y", 2)
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"### EX: markdown test",
		`| a | b\|pipe |`,
		"| --- | --- |",
		`| x\|y | 2 |`,
		"*a note*",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/equality"
	"repro/internal/graph"
	"repro/internal/rng"
)

// E15RandomnessHierarchy reproduces the deterministic / private-coin /
// public-coin separation theme of Becker et al. [18] (the paper's
// related-work anchor for the power of public coins in this model) on
// the neighborhood-equality problem: public coins O(log n), private
// coins Θ(√n·log n) (Babai–Kimmel), deterministic Θ(n).
func E15RandomnessHierarchy(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x8badf00d)
	trials := 10
	ns := []int{256, 1024, 4096}
	if scale == Full {
		trials = 30
		ns = append(ns, 16384)
	}
	t := &Table{
		ID:      "E15",
		Title:   "Randomness hierarchy on neighborhood equality ([18] theme)",
		Columns: []string{"n", "protocol", "bits", "equal pairs ok", "unequal pairs ok"},
		Notes: []string{
			"deterministic Θ(n); private-coin ≈ 36·√n (Babai–Kimmel via Reed–Solomon); public-coin 61 bits",
			"private-coin misses stem from sample non-collision (~e^-4) and code-agreement",
		},
	}

	buildPair := func(n int, diff bool, s *rng.Source) *graph.Graph {
		b := graph.NewBuilder(n)
		for u := 2; u < n; u++ {
			if s.Float64() < 0.3 {
				b.AddEdge(0, u)
				b.AddEdge(1, u)
			}
		}
		if !diff {
			return b.Build()
		}
		g := b.Build()
		b2 := graph.NewBuilder(n)
		for _, e := range g.Edges() {
			b2.AddEdge(e.U, e.V)
		}
		for u := 2; u < n; u++ {
			if !g.HasEdge(1, u) {
				b2.AddEdge(1, u)
				break
			}
		}
		return b2.Build()
	}

	protocols := []core.Protocol[bool]{
		equality.Deterministic{},
		&equality.PrivateCode{},
		equality.PublicFingerprint{},
	}
	for _, n := range ns {
		for _, p := range protocols {
			eqOK, neqOK, bits := 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				c := coins.Derive(p.Name()).DeriveIndex(n*1000 + trial)
				eqG := buildPair(n, false, src)
				res, err := core.Run(p, eqG, c)
				if err != nil {
					return nil, err
				}
				if res.Output {
					eqOK++
				}
				if res.MaxSketchBits > bits {
					bits = res.MaxSketchBits
				}
				neqG := buildPair(n, true, src)
				res, err = core.Run(p, neqG, c)
				if err != nil {
					return nil, err
				}
				if !res.Output {
					neqOK++
				}
			}
			t.AddRow(n, p.Name(), bits,
				fmt.Sprintf("%d/%d", eqOK, trials),
				fmt.Sprintf("%d/%d", neqOK, trials))
		}
	}
	return []*Table{t}, nil
}

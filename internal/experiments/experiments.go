// Package experiments produces every table in EXPERIMENTS.md: one
// function per experiment E1–E40 of DESIGN.md, each returning a typed
// Table that cmd/sketchlab renders and bench_test.go regenerates.
//
// The paper (PODC'20, theory) has no numbered tables or measured figures;
// its reproducible artifacts are its construction (Fig. 1), its reduction
// (Fig. 2), its claims/lemmas, and the upper bounds it cites as contrast.
// Each experiment below regenerates one of those artifacts empirically or
// exactly; EXPERIMENTS.md records paper-vs-measured for all of them.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/engine"
)

// engineWorkers is the worker count for engine-backed sweeps; 0 selects
// GOMAXPROCS. The engine's determinism contract means every value renders
// identical tables — the knob only changes wall time.
var engineWorkers int

// SetWorkers configures the execution-engine worker count used by
// engine-backed experiment sweeps (cmd/sketchlab -workers).
func SetWorkers(w int) { engineWorkers = w }

// newEngine returns the shared engine configuration for sweeps.
func newEngine() *engine.Engine { return &engine.Engine{Workers: engineWorkers} }

// Scale selects experiment sizes: Small keeps everything unit-test fast,
// Full is for the CLI and the recorded EXPERIMENTS.md numbers.
type Scale int

// Scale values.
const (
	Small Scale = iota
	Full
)

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "-0" {
		return "0"
	}
	return s
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(t.Columns) - 1
	for _, w := range widths {
		total += w + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	escape := func(cells []string) []string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		return out
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escape(t.Columns), " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escape(row), " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner maps experiment IDs to their functions.
type Runner func(scale Scale, seed uint64) ([]*Table, error)

// Registry returns all experiments keyed by ID, in execution order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1RSConstruction},
		{"E2", E2HardDistribution},
		{"E3", E3Claim31},
		{"E4", E4InformationChain},
		{"E5", E5MatchingLowerBound},
		{"E6", E6MISReduction},
		{"E7", E7MISLowerBound},
		{"E8", E8AGMSpanningForest},
		{"E9", E9BridgeFinding},
		{"E10", E10Coloring},
		{"E11", E11TwoRound},
		{"E12", E12BCCEquivalence},
		{"E13", E13Certificates},
		{"E14", E14BudgetScaling},
		{"E15", E15RandomnessHierarchy},
		{"E16", E16MSTEstimator},
		{"E17", E17CutSparsifier},
		{"E18", E18DegeneracyDensest},
		{"E19", E19TriangleCounting},
		{"E20", E20ResilienceSweep},
		{"E40", E40RoundsVsCommunication},
		{"E50", E50DynamicMatching},
		{"E60", E60ConnectivityLowerBound},
	}
}

// All runs every experiment.
func All(scale Scale, seed uint64) ([]*Table, error) {
	var out []*Table
	for _, entry := range Registry() {
		tables, err := entry.Run(scale, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", entry.ID, err)
		}
		out = append(out, tables...)
	}
	return out, nil
}

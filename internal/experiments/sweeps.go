package experiments

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/misreduce"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// sweepInstance builds the D_MM instance family used by E5c/E6/E7.
func sweepInstance(scale Scale, src *rng.Source) (*harddist.Instance, error) {
	m, k := 60, 8
	if scale == Full {
		m, k = 150, 12
	}
	rs, err := rsgraph.BuildBehrend(m)
	if err != nil {
		return nil, err
	}
	return harddist.Sample(harddist.Params{RS: rs, K: k, DropProb: 0.5}, src)
}

// matchingSweep is E5c: success of budgeted matching protocols on D_MM
// against the Remark 3.6(iv) goal, as the per-player budget grows.
func matchingSweep(scale Scale, seed uint64) (*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x5bd1e995)
	trials := 8
	if scale == Full {
		trials = 20
	}
	inst, err := sweepInstance(scale, src)
	if err != nil {
		return nil, err
	}
	rs := inst.Params.RS
	n := inst.G.N()
	idBits := bitio.UintWidth(n)

	t := &Table{
		ID:      "E5c",
		Title:   "Matching sweep on D_MM: recovered special edges vs per-player budget",
		Columns: []string{"protocol", "edges/vertex", "~bits/player", "goal k·r/4 met", "mean recovered", "needed", "of survived"},
		Notes: []string{
			fmt.Sprintf("instance: m=%d r=%d t=%d k=%d n=%d; referee holds (σ, j⋆) per Remark 3.6", rs.T(), rs.R(), rs.T(), inst.Params.K, n),
			"success transitions only once the budget reaches Θ(r) edges — Theorem 1's prediction",
			fmt.Sprintf("trivial Θ(n)-bit protocol (bits/player = %d) always succeeds", n),
		},
	}
	budgets := []int{1, 2, 4, 8, 16}
	if scale == Full {
		budgets = append(budgets, 32, 64)
	}
	verify := matchproto.RecoveredSpecialGoal(inst)
	for _, budget := range budgets {
		p := &matchproto.SpecialFilter{Instance: inst, EdgesPerVertex: budget}
		met, sum := 0, 0
		for trial := 0; trial < trials; trial++ {
			res, err := core.Run[[]graph.Edge](p, inst.G, coins.Derive("e5").DeriveIndex(trial*100+budget))
			if err != nil {
				return nil, err
			}
			if verify(res.Output) {
				met++
			}
			sum += len(res.Output)
		}
		t.AddRow("special-filter", budget, budget*idBits,
			fmt.Sprintf("%d/%d", met, trials),
			float64(sum)/float64(trials),
			inst.Claim31Threshold(),
			inst.SurvivedSpecialCount())
	}
	// Generic protocols without referee advice, judged on plain
	// maximality in G — they fail the same way (Claim 3.1 forces any
	// maximal matching to contain the special edges the budget cannot
	// surface).
	for _, budget := range []int{1, 4, 16} {
		p := &matchproto.EdgeSample{EdgesPerVertex: budget}
		maximalCount, uuSum := 0, 0
		for trial := 0; trial < trials; trial++ {
			res, err := core.Run[[]graph.Edge](p, inst.G, coins.Derive("e5-generic").DeriveIndex(trial*100+budget))
			if err != nil {
				return nil, err
			}
			if graph.IsMaximalMatching(inst.G, res.Output) {
				maximalCount++
			}
			uuSum += inst.UniqueUniqueEdges(res.Output)
		}
		t.AddRow("edge-sample (no advice)", budget, budget*idBits,
			fmt.Sprintf("maximal %d/%d", maximalCount, trials),
			float64(uuSum)/float64(trials),
			inst.Claim31Threshold(), inst.SurvivedSpecialCount())
	}

	// Trivial protocol row for calibration.
	trivial := core.NewTrivialMatching()
	res, err := core.Run(trivial, inst.G, coins.Derive("e5-trivial"))
	if err != nil {
		return nil, err
	}
	maximal := graph.IsMaximalMatching(inst.G, res.Output)
	uu := inst.UniqueUniqueEdges(res.Output)
	t.AddRow("trivial-full-graph", "all", res.MaxSketchBits,
		fmt.Sprintf("maximal=%v", maximal), float64(uu),
		inst.Claim31Threshold(), inst.SurvivedSpecialCount())
	return t, nil
}

// E6MISReduction reproduces Figure 2 and Lemma 4.1: the MM→MIS reduction
// recovers the surviving special matching from any correct MIS of H.
func E6MISReduction(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0x9e3779b9)
	trials := 10
	if scale == Full {
		trials = 30
	}
	inst, err := sweepInstance(scale, src)
	if err != nil {
		return nil, err
	}
	h := misreduce.BuildH(inst)

	t := &Table{
		ID:      "E6",
		Title:   "MM→MIS reduction (Fig. 2, Lemma 4.1) with a correct MIS oracle",
		Columns: []string{"trial set", "MIS valid", "lemma 4.1 exact", "good-side goal", "paper-rule phantoms", "good edges", "survived"},
		Notes: []string{
			fmt.Sprintf("H has %d vertices, %d edges (2 copies of G + public biclique)", h.N(), h.M()),
			"paper-rule (larger side) phantoms are the error type Section 2.1 explicitly tolerates",
		},
	}
	misValid, lemmaOK, goalOK, phantomRuns, goodSum := 0, 0, 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		mis := graph.GreedyMIS(h, src.Perm(h.N()))
		rec := misreduce.Recover(inst, mis)
		if graph.IsMaximalIndependentSet(h, mis) {
			misValid++
		}
		var lemmaErr error
		switch {
		case rec.LeftPublicEmpty:
			lemmaErr = misreduce.CheckLemma41(inst, mis, true)
		case rec.RightPublicEmpty:
			lemmaErr = misreduce.CheckLemma41(inst, mis, false)
		default:
			lemmaErr = fmt.Errorf("no public-empty side")
		}
		if lemmaErr == nil {
			lemmaOK++
		}
		survived := inst.SurvivedSpecialCount()
		goodTrue := 0
		survivedSet := make(map[graph.Edge]bool)
		for i := 0; i < inst.Params.K; i++ {
			for _, e := range inst.SpecialMatchingSurvived(i) {
				survivedSet[e] = true
			}
		}
		phantoms := 0
		for _, e := range rec.Chosen {
			if !survivedSet[e] {
				phantoms++
			}
		}
		if phantoms > 0 {
			phantomRuns++
		}
		for _, e := range rec.Good {
			if survivedSet[e] {
				goodTrue++
			}
		}
		goodSum += goodTrue
		if float64(goodTrue) >= inst.Claim31Threshold() && goodTrue == len(rec.Good) {
			goalOK++
		}
		_ = survived
	}
	t.AddRow(fmt.Sprintf("greedy MIS × %d", trials),
		fmt.Sprintf("%d/%d", misValid, trials),
		fmt.Sprintf("%d/%d", lemmaOK, trials),
		fmt.Sprintf("%d/%d", goalOK, trials),
		fmt.Sprintf("%d/%d runs", phantomRuns, trials),
		float64(goodSum)/float64(trials),
		inst.SurvivedSpecialCount())

	// End-to-end with the trivial MIS sketching protocol.
	res, err := misreduce.Run(inst, core.NewTrivialMIS(), coins)
	if err != nil {
		return nil, err
	}
	t.AddRow("trivial MIS sketches",
		res.MISValid, "-",
		res.GoalMetGood(),
		fmt.Sprintf("%d edges", res.PhantomEdges),
		res.GoodTrueEdges,
		inst.SurvivedSpecialCount())
	return []*Table{t}, nil
}

// E7MISLowerBound sweeps budgeted MIS protocols through the reduction:
// Theorem 2's prediction that o(r)-bit MIS sketches cannot power the
// recovery.
func E7MISLowerBound(scale Scale, seed uint64) ([]*Table, error) {
	src := rng.NewSource(seed)
	coins := rng.NewPublicCoins(seed ^ 0xabcdef12)
	trials := 5
	if scale == Full {
		trials = 15
	}
	inst, err := sweepInstance(scale, src)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E7",
		Title:   "MIS sweep through the reduction: good-side recovery vs per-player budget",
		Columns: []string{"neighbors/vertex", "~bits/G-vertex", "MIS valid", "good-side goal", "mean good edges", "needed"},
		Notes: []string{
			"bits/G-vertex is 2× the per-H-vertex sketch (each G vertex simulates two copies)",
			"the trivial row sends the full H adjacency bitmap",
		},
	}
	n2 := 2 * inst.G.N()
	idBits := bitio.UintWidth(n2)
	budgets := []int{1, 4, 16, 64}
	if scale == Full {
		budgets = append(budgets, 256)
	}
	for _, budget := range budgets {
		valid, goal, goodSum := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			res, err := misreduce.Run(inst,
				&misproto.NeighborSample{NeighborsPerVertex: budget},
				coins.Derive("e7").DeriveIndex(trial*1000+budget))
			if err != nil {
				return nil, err
			}
			if res.MISValid {
				valid++
			}
			if res.GoalMetGood() {
				goal++
			}
			goodSum += res.GoodTrueEdges
		}
		t.AddRow(budget, 2*budget*idBits,
			fmt.Sprintf("%d/%d", valid, trials),
			fmt.Sprintf("%d/%d", goal, trials),
			float64(goodSum)/float64(trials),
			inst.Claim31Threshold())
	}
	res, err := misreduce.Run(inst, core.NewTrivialMIS(), coins.Derive("e7-trivial"))
	if err != nil {
		return nil, err
	}
	t.AddRow("trivial", res.PerGVertexBits,
		res.MISValid,
		res.GoalMetGood(),
		res.GoodTrueEdges,
		inst.Claim31Threshold())
	return []*Table{t}, nil
}

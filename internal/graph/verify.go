package graph

// This file holds the output verifiers used by every experiment. The
// paper's protocols are allowed to err (Section 2.1: a matching protocol
// may output edges not in the graph, or a non-maximal matching), so the
// harness never trusts a protocol's own bookkeeping — it re-checks outputs
// with these functions.

// IsVertexDisjoint reports whether no two edges in the list share an
// endpoint. It does not consult any graph, matching the paper's note that
// an erring protocol can output "edges" that do not exist.
func IsVertexDisjoint(edges []Edge) bool {
	seen := make(map[int]bool, 2*len(edges))
	for _, e := range edges {
		if seen[e.U] || seen[e.V] || e.U == e.V {
			return false
		}
		seen[e.U] = true
		seen[e.V] = true
	}
	return true
}

// IsMatching reports whether edges form a matching of g: every edge exists
// in g and no two edges share an endpoint.
func IsMatching(g *Graph, edges []Edge) bool {
	if !IsVertexDisjoint(edges) {
		return false
	}
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// IsMaximalMatching reports whether edges form a maximal matching of g:
// a matching such that every edge of g has at least one matched endpoint.
func IsMaximalMatching(g *Graph, edges []Edge) bool {
	if !IsMatching(g, edges) {
		return false
	}
	matched := make([]bool, g.N())
	for _, e := range edges {
		matched[e.U] = true
		matched[e.V] = true
	}
	for u := 0; u < g.N(); u++ {
		if matched[u] {
			continue
		}
		for _, v := range g.adj[u] {
			if !matched[v] {
				return false
			}
		}
	}
	return true
}

// IsIndependentSet reports whether set is an independent set of g (no two
// members adjacent). Duplicate or out-of-range members invalidate the set.
func IsIndependentSet(g *Graph, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		if v < 0 || v >= g.N() || in[v] {
			return false
		}
		in[v] = true
	}
	for _, v := range set {
		for _, u := range g.adj[v] {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether set is a maximal independent set
// of g: independent, and every vertex outside it has a neighbor inside it.
func IsMaximalIndependentSet(g *Graph, set []int) bool {
	if !IsIndependentSet(g, set) {
		return false
	}
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.adj[v] {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// IsSpanningForest reports whether edges form a spanning forest of g: all
// edges exist in g, the edge set is acyclic, and it has exactly
// n - #components(g) edges (hence spans every component).
func IsSpanningForest(g *Graph, edges []Edge) bool {
	uf := newUnionFind(g.N())
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			return false
		}
		if !uf.union(e.U, e.V) {
			return false // cycle
		}
	}
	_, comps := g.Components()
	return len(edges) == g.N()-comps
}

// IsProperColoring reports whether colors (indexed by vertex) assigns
// different colors to every pair of adjacent vertices and uses colors in
// [0, maxColors). Pass maxColors <= 0 to skip the range check.
func IsProperColoring(g *Graph, colors []int, maxColors int) bool {
	if len(colors) != g.N() {
		return false
	}
	for v, c := range colors {
		if maxColors > 0 && (c < 0 || c >= maxColors) {
			return false
		}
		for _, u := range g.adj[v] {
			if colors[u] == c {
				return false
			}
		}
	}
	return true
}

// unionFind is a standard disjoint-set forest with union by rank and path
// halving.
type unionFind struct {
	parent []int
	rank   []byte
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]byte, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting false when they were already
// in the same set.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

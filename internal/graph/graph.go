// Package graph provides the undirected graph type shared by every
// subsystem in this repository, together with verifiers and reference
// algorithms for the combinatorial objects the paper studies: matchings,
// maximal matchings, independent sets, maximal independent sets, spanning
// forests and proper colorings.
//
// Vertices are integers in [0, n). Graphs are simple (no loops, no
// parallel edges) and immutable once built; use Builder to construct them.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge, normalized so that U < V.
type Edge struct {
	U, V int
}

// NewEdge returns the normalized edge {u, v}. It panics when u == v, since
// graphs here are simple.
func NewEdge(u, v int) Edge {
	switch {
	case u == v:
		panic(fmt.Sprintf("graph: self loop at %d", u))
	case u < v:
		return Edge{U: u, V: v}
	default:
		return Edge{U: v, V: u}
	}
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: %d is not an endpoint of %v", x, e))
	}
}

// Graph is an immutable simple undirected graph with sorted adjacency
// lists.
type Graph struct {
	n   int
	m   int
	adj [][]int
}

// Builder accumulates edges for a Graph. The zero value is unusable; call
// NewBuilder.
type Builder struct {
	n   int
	adj [][]int
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, adj: make([][]int, n)}
}

// AddEdge records the undirected edge {u, v}. Duplicate insertions are
// deduplicated at Build time. It panics on out-of-range endpoints or self
// loops.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self loop at %d", u))
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

// AddEdges records each edge in the slice.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
}

// Build finalizes the graph: adjacency lists are sorted and deduplicated.
// The builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, adj: b.adj}
	b.adj = nil
	for v := range g.adj {
		lst := g.adj[v]
		sort.Ints(lst)
		out := lst[:0]
		for i, u := range lst {
			if i == 0 || u != lst[i-1] {
				out = append(out, u)
			}
		}
		g.adj[v] = out
		g.m += len(out)
	}
	g.m /= 2
	return g
}

// FromEdges builds a graph on n vertices with the given edge set.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	b.AddEdges(edges)
	return b.Build()
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns a copy of v's sorted neighbor list.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// EachNeighbor calls fn for every neighbor of v in ascending order,
// without allocating. fn must not retain or mutate graph state.
func (g *Graph) EachNeighbor(v int, fn func(u int)) {
	for _, u := range g.adj[v] {
		fn(u)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	lst := g.adj[u]
	i := sort.SearchInts(lst, v)
	return i < len(lst) && lst[i] == v
}

// Edges returns all edges, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	return out
}

// Relabel returns the graph with vertex v renamed to perm[v]. perm must be
// a permutation of [0, n).
func (g *Graph) Relabel(perm []int) (*Graph, error) {
	if len(perm) != g.n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), g.n)
	}
	seen := make([]bool, g.n)
	for _, p := range perm {
		if p < 0 || p >= g.n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation of [0,%d)", g.n)
		}
		seen[p] = true
	}
	b := NewBuilder(g.n)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				b.AddEdge(perm[u], perm[v])
			}
		}
	}
	return b.Build(), nil
}

// Union returns the union of g and h, which must have the same vertex
// count.
func Union(g, h *Graph) (*Graph, error) {
	if g.n != h.n {
		return nil, fmt.Errorf("graph: union of mismatched sizes %d and %d", g.n, h.n)
	}
	b := NewBuilder(g.n)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for _, e := range h.Edges() {
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), nil
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabeled to [0, len(vertices)), along with the mapping from new labels
// back to the original ones (the input slice, sorted and deduplicated).
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	keep := append([]int(nil), vertices...)
	sort.Ints(keep)
	out := keep[:0]
	for i, v := range keep {
		if i == 0 || v != keep[i-1] {
			out = append(out, v)
		}
	}
	keep = out
	index := make(map[int]int, len(keep))
	for i, v := range keep {
		index[v] = i
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, u := range g.adj[v] {
			if j, ok := index[u]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), keep
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.m)
}

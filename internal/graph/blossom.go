package graph

// Maximum matching in general graphs via Edmonds' blossom algorithm,
// in the classic O(V³) base-array formulation. Used by
// MaximumMatchingSize so the experiment harness can compare protocol
// outputs against true optima on arbitrary graphs, not just bipartite or
// enumerable ones.

// MaximumMatching returns a maximum-cardinality matching of g.
func MaximumMatching(g *Graph) []Edge {
	n := g.N()
	bs := &blossomState{
		g:     g,
		match: make([]int, n),
		p:     make([]int, n),
		base:  make([]int, n),
		used:  make([]bool, n),
	}
	for i := range bs.match {
		bs.match[i] = -1
	}
	// Greedy warm start reduces the number of augmentation phases.
	for v := 0; v < n; v++ {
		if bs.match[v] != -1 {
			continue
		}
		g.EachNeighbor(v, func(u int) {
			if bs.match[v] == -1 && bs.match[u] == -1 {
				bs.match[v] = u
				bs.match[u] = v
			}
		})
	}
	for v := 0; v < n; v++ {
		if bs.match[v] == -1 {
			bs.findPath(v)
		}
	}
	var out []Edge
	for v := 0; v < n; v++ {
		if bs.match[v] > v {
			out = append(out, Edge{U: v, V: bs.match[v]})
		}
	}
	return out
}

type blossomState struct {
	g     *Graph
	match []int
	p     []int  // alternating-tree parent of inner vertices
	base  []int  // current blossom base of each vertex
	used  []bool // outer ("even") vertices, already queued
	queue []int
}

// findPath grows an alternating tree from free vertex root, contracting
// blossoms as it goes, and augments if it reaches a free vertex.
func (b *blossomState) findPath(root int) {
	n := b.g.N()
	for i := 0; i < n; i++ {
		b.p[i] = -1
		b.base[i] = i
		b.used[i] = false
	}
	b.used[root] = true
	b.queue = append(b.queue[:0], root)

	for qi := 0; qi < len(b.queue); qi++ {
		v := b.queue[qi]
		done := false
		b.g.EachNeighbor(v, func(to int) {
			if done {
				return
			}
			if b.base[v] == b.base[to] || b.match[v] == to {
				return
			}
			if to == root || (b.match[to] != -1 && b.p[b.match[to]] != -1) {
				// Outer-outer edge: contract the blossom around the cycle.
				curBase := b.lca(v, to)
				inBlossom := make([]bool, n)
				b.markPath(v, curBase, to, inBlossom)
				b.markPath(to, curBase, v, inBlossom)
				for i := 0; i < n; i++ {
					if inBlossom[b.base[i]] {
						b.base[i] = curBase
						if !b.used[i] {
							b.used[i] = true
							b.queue = append(b.queue, i)
						}
					}
				}
			} else if b.p[to] == -1 {
				b.p[to] = v
				if b.match[to] == -1 {
					b.augment(to)
					done = true
					return
				}
				b.used[b.match[to]] = true
				b.queue = append(b.queue, b.match[to])
			}
		})
		if done {
			return
		}
	}
}

// lca finds the common blossom base of two outer vertices by walking
// their base chains toward the root.
func (b *blossomState) lca(a, c int) int {
	seen := make([]bool, b.g.N())
	v := a
	for {
		v = b.base[v]
		seen[v] = true
		if b.match[v] == -1 {
			break
		}
		v = b.p[b.match[v]]
	}
	v = c
	for {
		v = b.base[v]
		if seen[v] {
			return v
		}
		v = b.p[b.match[v]]
	}
}

// markPath marks the blossom bases on the path from v down to the common
// base and rewires parents through the cycle edge.
func (b *blossomState) markPath(v, curBase, child int, inBlossom []bool) {
	for b.base[v] != curBase {
		inBlossom[b.base[v]] = true
		inBlossom[b.base[b.match[v]]] = true
		b.p[v] = child
		child = b.match[v]
		v = b.p[b.match[v]]
	}
}

// augment flips matched and unmatched edges along the alternating path
// ending at free vertex v.
func (b *blossomState) augment(v int) {
	for v != -1 {
		pv := b.p[v]
		next := b.match[pv]
		b.match[v] = pv
		b.match[pv] = v
		v = next
	}
}

package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := path(3)
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, "p3",
		map[int]string{1: `color="red"`},
		map[Edge]string{NewEdge(0, 1): `style="bold"`})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "p3" {`,
		`1 [color="red"];`,
		`0 -- 1 [style="bold"];`,
		`1 -- 2;`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTNilMaps(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, complete(3), "k3", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "--"); got != 3 {
		t.Errorf("K3 DOT has %d edges, want 3", got)
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	g := cycle(5)
	vc := map[int]string{3: "a", 1: "b", 4: "c"}
	var a, b bytes.Buffer
	if err := WriteDOT(&a, g, "c", vc, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteDOT(&b, g, "c", vc, nil); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("DOT output not deterministic")
	}
}

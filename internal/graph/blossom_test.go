package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMaximumMatchingKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", NewBuilder(5).Build(), 0},
		{"single edge", FromEdges(2, []Edge{{0, 1}}), 1},
		{"P4", path(4), 2},
		{"P5", path(5), 2},
		{"C5 (odd cycle)", cycle(5), 2},
		{"C6", cycle(6), 3},
		{"K4", complete(4), 2},
		{"K5", complete(5), 2},
		{"K7", complete(7), 3},
		{"star", FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := MaximumMatching(c.g)
			if !IsMatching(c.g, m) {
				t.Fatalf("output %v not a matching", m)
			}
			if len(m) != c.want {
				t.Errorf("size %d, want %d", len(m), c.want)
			}
		})
	}
}

func TestMaximumMatchingPetersen(t *testing.T) {
	// The Petersen graph has a perfect matching; it is also the classic
	// blossom stress case (odd cycles everywhere).
	b := NewBuilder(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	for _, e := range outer {
		b.AddEdge(e[0], e[1])
	}
	for _, e := range inner {
		b.AddEdge(e[0], e[1])
	}
	for i := 0; i < 5; i++ {
		b.AddEdge(i, i+5)
	}
	g := b.Build()
	m := MaximumMatching(g)
	if !IsMatching(g, m) || len(m) != 5 {
		t.Errorf("Petersen: matching size %d, want 5 (perfect)", len(m))
	}
}

func TestMaximumMatchingTwoTrianglesBridge(t *testing.T) {
	// Two triangles joined by an edge: maximum matching is 3 and needs
	// the bridge or careful triangle choices.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	m := MaximumMatching(g)
	if !IsMatching(g, m) || len(m) != 3 {
		t.Errorf("size %d, want 3", len(m))
	}
}

func TestMaximumMatchingBlossomChain(t *testing.T) {
	// A chain of odd cycles sharing cut vertices — forces repeated
	// contraction. Triangles 0-1-2, 2-3-4, 4-5-6: n=7, max matching 3.
	b := NewBuilder(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}, {4, 5}, {5, 6}, {6, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	m := MaximumMatching(g)
	if !IsMatching(g, m) || len(m) != 3 {
		t.Errorf("size %d, want 3", len(m))
	}
}

func TestMaximumMatchingAgainstExhaustiveQuick(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.NewSource(seed)
		n := 4 + src.Intn(8)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		m := MaximumMatching(g)
		if !IsMatching(g, m) {
			return false
		}
		best := 0
		for _, mm := range AllMaximalMatchings(g, 1<<22) {
			if len(mm) > best {
				best = len(mm)
			}
		}
		return len(m) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMaximumMatchingAgainstBipartite(t *testing.T) {
	// On bipartite graphs, blossom must agree with augmenting-path.
	src := rng.NewSource(11)
	for trial := 0; trial < 30; trial++ {
		a, b := 3+src.Intn(6), 3+src.Intn(6)
		builder := NewBuilder(a + b)
		for i := 0; i < a; i++ {
			for j := a; j < a+b; j++ {
				if src.Float64() < 0.4 {
					builder.AddEdge(i, j)
				}
			}
		}
		g := builder.Build()
		side, ok := g.Bipartition()
		if !ok {
			t.Fatal("bipartite graph not bipartite")
		}
		if got, want := len(MaximumMatching(g)), bipartiteMaxMatching(g, side); got != want {
			t.Fatalf("blossom %d != hopcroft %d", got, want)
		}
	}
}

func BenchmarkMaximumMatchingN100(b *testing.B) {
	src := rng.NewSource(1)
	builder := NewBuilder(100)
	for i := 0; i < 400; i++ {
		u, v := src.Intn(100), src.Intn(100)
		if u != v {
			builder.AddEdge(u, v)
		}
	}
	g := builder.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximumMatching(g)
	}
}

package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestGreedyMaximalMatchingPath(t *testing.T) {
	g := path(4)
	m := GreedyMaximalMatching(g, nil)
	if !IsMaximalMatching(g, m) {
		t.Fatalf("greedy output %v is not a maximal matching", m)
	}
	if len(m) != 2 {
		t.Errorf("identity-order greedy on P4 found %d edges, want 2", len(m))
	}
}

func TestGreedyMaximalMatchingAdversarialOrder(t *testing.T) {
	g := path(4)
	// Order starting from vertex 1 matches {1,0} first then {2,3}: size 2.
	// Order picking the middle edge: start at 1 with neighbor order by
	// position — put 2 before 0 so {1,2} is chosen, leaving 0 and 3
	// unmatched: size 1.
	m := GreedyMaximalMatching(g, []int{1, 2, 0, 3})
	if !IsMaximalMatching(g, m) {
		t.Fatalf("output %v not maximal", m)
	}
	if len(m) != 1 {
		t.Errorf("adversarial order found %d edges, want 1 ({1,2})", len(m))
	}
}

func TestGreedyMaximalMatchingEdgeOrder(t *testing.T) {
	g := path(4)
	m := GreedyMaximalMatchingEdgeOrder(4, g.Edges())
	if !IsMaximalMatching(g, m) {
		t.Fatalf("edge-order greedy output %v invalid", m)
	}
	m2 := GreedyMaximalMatchingEdgeOrder(4, []Edge{{1, 2}, {0, 1}, {2, 3}})
	if len(m2) != 1 || m2[0] != (Edge{1, 2}) {
		t.Errorf("edge-order greedy = %v, want [{1 2}]", m2)
	}
}

func TestGreedyMISComplete(t *testing.T) {
	g := complete(5)
	s := GreedyMIS(g, nil)
	if len(s) != 1 {
		t.Errorf("MIS of K5 has size %d, want 1", len(s))
	}
	if !IsMaximalIndependentSet(g, s) {
		t.Error("greedy MIS invalid on K5")
	}
}

func TestGreedyMISEmptyGraph(t *testing.T) {
	g := NewBuilder(4).Build()
	s := GreedyMIS(g, nil)
	if len(s) != 4 {
		t.Errorf("MIS of empty graph has size %d, want 4", len(s))
	}
}

func TestGreedyColoringUsesAtMostDeltaPlusOne(t *testing.T) {
	src := rng.NewSource(5)
	for trial := 0; trial < 30; trial++ {
		n := 4 + src.Intn(25)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		c := GreedyColoring(g, src.Perm(n))
		if !IsProperColoring(g, c, g.MaxDegree()+1) {
			t.Fatalf("coloring exceeds Δ+1 or improper on trial %d", trial)
		}
	}
}

func TestBipartition(t *testing.T) {
	if _, ok := cycle(5).Bipartition(); ok {
		t.Error("odd cycle reported bipartite")
	}
	side, ok := cycle(6).Bipartition()
	if !ok {
		t.Fatal("even cycle reported non-bipartite")
	}
	for i := 0; i < 6; i++ {
		if side[i] == side[(i+1)%6] {
			t.Fatal("bipartition puts adjacent vertices on same side")
		}
	}
}

func TestMaximumMatchingSizeBipartite(t *testing.T) {
	// Perfect matching in K_{3,3}.
	b := NewBuilder(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	if got := MaximumMatchingSize(b.Build()); got != 3 {
		t.Errorf("K33 max matching = %d, want 3", got)
	}
	if got := MaximumMatchingSize(path(5)); got != 2 {
		t.Errorf("P5 max matching = %d, want 2", got)
	}
}

func TestMaximumMatchingSizeNonBipartite(t *testing.T) {
	if got := MaximumMatchingSize(cycle(5)); got != 2 {
		t.Errorf("C5 max matching = %d, want 2", got)
	}
	if got := MaximumMatchingSize(complete(4)); got != 2 {
		t.Errorf("K4 max matching = %d, want 2", got)
	}
}

func TestMaximumMatchingAtLeastGreedy(t *testing.T) {
	src := rng.NewSource(9)
	for trial := 0; trial < 20; trial++ {
		n := 4 + src.Intn(8)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		greedy := len(GreedyMaximalMatching(g, src.Perm(n)))
		max := MaximumMatchingSize(g)
		if max < greedy {
			t.Fatalf("maximum %d < greedy %d", max, greedy)
		}
		if 2*greedy < max {
			t.Fatalf("greedy %d below half of maximum %d", greedy, max)
		}
	}
}

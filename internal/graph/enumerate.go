package graph

// Exhaustive enumerators for tiny instances. The information-theoretic
// verification in internal/proofcheck and the exact Claim 3.1 check need
// the complete set of maximal matchings / maximal independent sets of
// micro graphs; these enumerators provide them with an explicit work cap
// so a mistakenly-large input fails fast instead of hanging.

// AllMaximalMatchings returns every (inclusion-)maximal matching of g.
// The search explores at most maxSteps recursion nodes and returns nil if
// the cap is exceeded.
func AllMaximalMatchings(g *Graph, maxSteps int) [][]Edge {
	edges := g.Edges()
	matched := make([]bool, g.N())
	steps := 0
	var cur []Edge
	var out [][]Edge
	ok := true

	// isMaximal checks that no remaining edge can extend cur.
	isMaximal := func() bool {
		for _, e := range edges {
			if !matched[e.U] && !matched[e.V] {
				return false
			}
		}
		return true
	}

	var rec func(i int)
	rec = func(i int) {
		if !ok {
			return
		}
		steps++
		if steps > maxSteps {
			ok = false
			return
		}
		if i == len(edges) {
			if isMaximal() {
				m := make([]Edge, len(cur))
				copy(m, cur)
				out = append(out, m)
			}
			return
		}
		e := edges[i]
		// Branch 1: include e if possible.
		if !matched[e.U] && !matched[e.V] {
			matched[e.U], matched[e.V] = true, true
			cur = append(cur, e)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			matched[e.U], matched[e.V] = false, false
		}
		// Branch 2: exclude e.
		rec(i + 1)
	}
	rec(0)
	if !ok {
		return nil
	}
	return dedupMatchings(out)
}

// dedupMatchings removes duplicate matchings (the include/exclude search
// can revisit the same set through different paths only if pruning is
// loose; dedup keeps the contract simple).
func dedupMatchings(ms [][]Edge) [][]Edge {
	seen := make(map[string]bool, len(ms))
	var out [][]Edge
	for _, m := range ms {
		key := matchingKey(m)
		if !seen[key] {
			seen[key] = true
			out = append(out, m)
		}
	}
	return out
}

func matchingKey(m []Edge) string {
	// Edges are generated in a fixed global order by the enumerator, so a
	// positional encoding suffices.
	buf := make([]byte, 0, len(m)*8)
	for _, e := range m {
		buf = append(buf,
			byte(e.U), byte(e.U>>8), byte(e.U>>16), byte(e.U>>24),
			byte(e.V), byte(e.V>>8), byte(e.V>>16), byte(e.V>>24))
	}
	return string(buf)
}

// AllMaximalIndependentSets returns every maximal independent set of g.
// The search explores at most maxSteps recursion nodes and returns nil if
// the cap is exceeded.
func AllMaximalIndependentSets(g *Graph, maxSteps int) [][]int {
	n := g.N()
	state := make([]int8, n) // 0 undecided, 1 in, -1 out
	steps := 0
	ok := true
	var out [][]int

	canAdd := func(v int) bool {
		for _, u := range g.adj[v] {
			if state[u] == 1 {
				return false
			}
		}
		return true
	}

	var rec func(v int)
	rec = func(v int) {
		if !ok {
			return
		}
		steps++
		if steps > maxSteps {
			ok = false
			return
		}
		if v == n {
			// Verify maximality: every "out" vertex must be dominated.
			for x := 0; x < n; x++ {
				if state[x] == 1 {
					continue
				}
				dominated := false
				for _, u := range g.adj[x] {
					if state[u] == 1 {
						dominated = true
						break
					}
				}
				if !dominated {
					return
				}
			}
			var set []int
			for x := 0; x < n; x++ {
				if state[x] == 1 {
					set = append(set, x)
				}
			}
			out = append(out, set)
			return
		}
		if canAdd(v) {
			state[v] = 1
			rec(v + 1)
		}
		state[v] = -1
		rec(v + 1)
		state[v] = 0
	}
	rec(0)
	if !ok {
		return nil
	}
	return out
}

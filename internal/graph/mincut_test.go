package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGlobalMinCutKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want float64
	}{
		{"path", path(5), 1},
		{"cycle", cycle(6), 2},
		{"K4", complete(4), 3},
		{"K6", complete(6), 5},
		{"disconnected", FromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}}), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, side := GlobalMinCut(c.g)
			if got != c.want {
				t.Errorf("min cut = %v, want %v", got, c.want)
			}
			if c.want > 0 && (len(side) == 0 || len(side) == c.g.N()) {
				t.Errorf("degenerate side %v", side)
			}
			// Verify the reported side achieves the reported value.
			if got < maxCutValue {
				in := make(map[int]bool)
				for _, v := range side {
					in[v] = true
				}
				val := 0.0
				for _, e := range c.g.Edges() {
					if in[e.U] != in[e.V] {
						val++
					}
				}
				if val != got {
					t.Errorf("reported side cuts %v, value says %v", val, got)
				}
			}
		})
	}
}

func TestGlobalMinCutTwoBlobsBridge(t *testing.T) {
	b := NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
			b.AddEdge(5+i, 5+j)
		}
	}
	b.AddEdge(0, 5)
	got, side := GlobalMinCut(b.Build())
	if got != 1 {
		t.Fatalf("min cut = %v, want 1 (the bridge)", got)
	}
	if len(side) != 5 {
		t.Errorf("side size %d, want 5", len(side))
	}
}

func TestWeightedMinCut(t *testing.T) {
	// Triangle with one heavy edge: min cut isolates the vertex whose two
	// incident edges are lightest.
	weights := map[Edge]float64{
		{U: 0, V: 1}: 10,
		{U: 1, V: 2}: 1,
		{U: 0, V: 2}: 1,
	}
	got, side := WeightedMinCut(3, weights)
	if got != 2 {
		t.Errorf("weighted min cut = %v, want 2", got)
	}
	if len(side) != 1 || side[0] != 2 {
		t.Errorf("side = %v, want [2]", side)
	}
}

func TestMinCutTinyGraphs(t *testing.T) {
	if v, side := WeightedMinCut(1, nil); v != maxCutValue || side != nil {
		t.Error("single vertex should report no cut")
	}
	if v, _ := WeightedMinCut(2, map[Edge]float64{{U: 0, V: 1}: 3}); v != 3 {
		t.Errorf("two-vertex cut = %v, want 3", v)
	}
}

func TestMinCutAgainstBruteForceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.NewSource(seed)
		n := 3 + src.Intn(8)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		got, _ := GlobalMinCut(g)
		// Brute force over all 2^(n-1)-1 proper cuts containing vertex 0
		// on side A.
		best := maxCutValue
		for mask := 0; mask < 1<<uint(n-1); mask++ {
			side := make([]bool, n)
			side[0] = true
			nonTrivial := false
			for v := 1; v < n; v++ {
				side[v] = mask&(1<<uint(v-1)) != 0
				if !side[v] {
					nonTrivial = true
				}
			}
			if !nonTrivial {
				continue
			}
			val := 0.0
			for _, e := range g.Edges() {
				if side[e.U] != side[e.V] {
					val++
				}
			}
			if val < best {
				best = val
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGlobalMinCutN60(b *testing.B) {
	src := rng.NewSource(1)
	builder := NewBuilder(60)
	for i := 0; i < 300; i++ {
		u, v := src.Intn(60), src.Intn(60)
		if u != v {
			builder.AddEdge(u, v)
		}
	}
	g := builder.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlobalMinCut(g)
	}
}

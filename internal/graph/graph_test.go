package graph

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestNewEdgeNormalizes(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Errorf("NewEdge(5,2) = %v, want {2 5}", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Error("Other endpoint lookup wrong")
	}
}

func TestNewEdgePanicsOnLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEdge(3,3) did not panic")
		}
	}()
	NewEdge(3, 3)
}

func TestEdgeOtherPanicsOnNonEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Other(9) did not panic")
		}
	}()
	NewEdge(1, 2).Other(9)
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.M() != 2 {
		t.Errorf("M() = %d, want 2", g.M())
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestHasEdge(t *testing.T) {
	g := path(4)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, false}, {2, 3, true},
		{3, 3, false}, {-1, 0, false}, {0, 99, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := complete(4)
	edges := g.Edges()
	if len(edges) != 6 {
		t.Fatalf("K4 has %d edges, want 6", len(edges))
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	}) {
		t.Error("Edges() not sorted")
	}
}

func TestDegreesAndMaxDegree(t *testing.T) {
	g := path(5)
	wantDeg := []int{1, 2, 2, 2, 1}
	for v, want := range wantDeg {
		if got := g.Degree(v); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if NewBuilder(0).Build().MaxDegree() != 0 {
		t.Error("empty graph MaxDegree != 0")
	}
}

func TestEachNeighborMatchesNeighbors(t *testing.T) {
	g := complete(6)
	for v := 0; v < 6; v++ {
		var got []int
		g.EachNeighbor(v, func(u int) { got = append(got, u) })
		if !reflect.DeepEqual(got, g.Neighbors(v)) {
			t.Errorf("EachNeighbor(%d) = %v != Neighbors %v", v, got, g.Neighbors(v))
		}
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	g := path(3)
	n1 := g.Neighbors(1)
	n1[0] = 999
	if got := g.Neighbors(1); got[0] == 999 {
		t.Error("Neighbors exposes internal state")
	}
}

func TestRelabel(t *testing.T) {
	g := path(4) // 0-1-2-3
	perm := []int{3, 2, 1, 0}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	// Edge {0,1} becomes {3,2}, etc. — still a path.
	for _, e := range []Edge{{2, 3}, {1, 2}, {0, 1}} {
		if !h.HasEdge(e.U, e.V) {
			t.Errorf("relabeled graph missing edge %v", e)
		}
	}
	if h.M() != g.M() {
		t.Errorf("relabel changed edge count: %d != %d", h.M(), g.M())
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := path(3)
	if _, err := g.Relabel([]int{0, 1}); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := g.Relabel([]int{0, 0, 1}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := g.Relabel([]int{0, 1, 3}); err == nil {
		t.Error("out-of-range perm accepted")
	}
}

func TestRelabelPreservesDegreesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.NewSource(seed)
		n := 2 + src.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		perm := src.Perm(n)
		h, err := g.Relabel(perm)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != h.Degree(perm[v]) {
				return false
			}
		}
		return h.M() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	a := FromEdges(4, []Edge{{0, 1}})
	b := FromEdges(4, []Edge{{0, 1}, {2, 3}})
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.M() != 2 {
		t.Errorf("union M = %d, want 2", u.M())
	}
	if _, err := Union(a, FromEdges(5, nil)); err == nil {
		t.Error("mismatched union accepted")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := complete(5)
	sub, mapping := g.InducedSubgraph([]int{4, 1, 3, 1})
	if sub.N() != 3 {
		t.Fatalf("induced N = %d, want 3 (dedup)", sub.N())
	}
	if !reflect.DeepEqual(mapping, []int{1, 3, 4}) {
		t.Errorf("mapping = %v, want [1 3 4]", mapping)
	}
	if sub.M() != 3 {
		t.Errorf("induced K3 has %d edges, want 3", sub.M())
	}
}

func TestInducedSubgraphDropsOutsideEdges(t *testing.T) {
	g := path(5)
	sub, _ := g.InducedSubgraph([]int{0, 2, 4})
	if sub.M() != 0 {
		t.Errorf("independent-set induced subgraph has %d edges, want 0", sub.M())
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	g := b.Build()
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("component of 0,1,2 differs")
	}
	if comp[3] == comp[0] || comp[3] == comp[4] {
		t.Error("isolated vertex 3 shares a component")
	}
	if comp[4] != comp[5] {
		t.Error("4 and 5 in different components")
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if !path(4).IsConnected() {
		t.Error("path not connected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(5)
	d := g.BFSDistances(0)
	if !reflect.DeepEqual(d, []int{0, 1, 2, 3, 4}) {
		t.Errorf("distances = %v", d)
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	d = b.Build().BFSDistances(0)
	if d[2] != -1 {
		t.Errorf("unreachable distance = %d, want -1", d[2])
	}
}

func TestSpanningForestEdges(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0) // cycle
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.Build()
	forest := g.SpanningForestEdges()
	if !IsSpanningForest(g, forest) {
		t.Errorf("SpanningForestEdges output fails verification: %v", forest)
	}
}

func TestString(t *testing.T) {
	if got := path(3).String(); got != "graph{n=3 m=2}" {
		t.Errorf("String() = %q", got)
	}
}

package graph

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the graph in Graphviz DOT format, with optional vertex
// highlighting (e.g. an independent set) and edge highlighting (e.g. a
// matching). Nil highlight arguments are fine. Used by the examples and
// handy when debugging hard-distribution instances.
func WriteDOT(w io.Writer, g *Graph, name string, vertexClass map[int]string, edgeClass map[Edge]string) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n", name); err != nil {
		return err
	}
	// Deterministic vertex order for stable output.
	classes := make([]int, 0, len(vertexClass))
	for v := range vertexClass {
		classes = append(classes, v)
	}
	sort.Ints(classes)
	for _, v := range classes {
		if _, err := fmt.Fprintf(w, "  %d [%s];\n", v, vertexClass[v]); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		attr := ""
		if a, ok := edgeClass[e]; ok {
			attr = " [" + a + "]"
		}
		if _, err := fmt.Fprintf(w, "  %d -- %d%s;\n", e.U, e.V, attr); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestAllMaximalMatchingsPath(t *testing.T) {
	// P4 = 0-1-2-3 has maximal matchings {01,23} and {12}.
	ms := AllMaximalMatchings(path(4), 1<<16)
	if len(ms) != 2 {
		t.Fatalf("P4 has %d maximal matchings, want 2: %v", len(ms), ms)
	}
	for _, m := range ms {
		if !IsMaximalMatching(path(4), m) {
			t.Errorf("enumerated matching %v not maximal", m)
		}
	}
}

func TestAllMaximalMatchingsTriangle(t *testing.T) {
	ms := AllMaximalMatchings(cycle(3), 1<<16)
	if len(ms) != 3 {
		t.Fatalf("K3 has %d maximal matchings, want 3", len(ms))
	}
}

func TestAllMaximalMatchingsEmptyGraph(t *testing.T) {
	ms := AllMaximalMatchings(NewBuilder(3).Build(), 1<<10)
	if len(ms) != 1 || len(ms[0]) != 0 {
		t.Errorf("empty graph maximal matchings = %v, want [[]]", ms)
	}
}

func TestAllMaximalMatchingsCap(t *testing.T) {
	if got := AllMaximalMatchings(complete(8), 10); got != nil {
		t.Error("cap exceeded but result non-nil")
	}
}

func TestAllMaximalISPath(t *testing.T) {
	// P4: maximal independent sets are {0,2}, {0,3}, {1,3}.
	sets := AllMaximalIndependentSets(path(4), 1<<16)
	if len(sets) != 3 {
		t.Fatalf("P4 has %d maximal IS, want 3: %v", len(sets), sets)
	}
	for _, s := range sets {
		if !IsMaximalIndependentSet(path(4), s) {
			t.Errorf("enumerated set %v not a maximal IS", s)
		}
	}
}

func TestAllMaximalISComplete(t *testing.T) {
	sets := AllMaximalIndependentSets(complete(5), 1<<16)
	if len(sets) != 5 {
		t.Fatalf("K5 has %d maximal IS, want 5", len(sets))
	}
	for _, s := range sets {
		if len(s) != 1 {
			t.Errorf("K5 maximal IS %v has size != 1", s)
		}
	}
}

func TestAllMaximalISCap(t *testing.T) {
	if got := AllMaximalIndependentSets(complete(20), 10); got != nil {
		t.Error("cap exceeded but result non-nil")
	}
}

func TestEnumerationConsistentWithGreedy(t *testing.T) {
	// Every greedy outcome must appear in the exhaustive enumeration.
	src := rng.NewSource(3)
	for trial := 0; trial < 20; trial++ {
		n := 3 + src.Intn(5)
		b := NewBuilder(n)
		for i := 0; i < n+2; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		all := AllMaximalMatchings(g, 1<<20)
		if all == nil {
			t.Fatal("enumeration cap hit on tiny graph")
		}
		keys := make(map[string]bool, len(all))
		for _, m := range all {
			keys[canonicalMatchingKey(m)] = true
		}
		for rep := 0; rep < 10; rep++ {
			m := GreedyMaximalMatching(g, src.Perm(n))
			if !keys[canonicalMatchingKey(m)] {
				t.Fatalf("greedy matching %v missing from enumeration", m)
			}
		}
	}
}

// canonicalMatchingKey sorts edges before encoding so matchings compare
// set-wise.
func canonicalMatchingKey(m []Edge) string {
	cp := append([]Edge(nil), m...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && (cp[j].U < cp[j-1].U || (cp[j].U == cp[j-1].U && cp[j].V < cp[j-1].V)); j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return matchingKey(cp)
}

func TestAllMaximalISMatchesKnownCounts(t *testing.T) {
	// C5 has 5 maximal independent sets (each of size 2).
	sets := AllMaximalIndependentSets(cycle(5), 1<<16)
	if len(sets) != 5 {
		t.Errorf("C5 maximal IS count = %d, want 5", len(sets))
	}
	// Star K_{1,4}: {center} and {all leaves}.
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, i)
	}
	sets = AllMaximalIndependentSets(b.Build(), 1<<16)
	if len(sets) != 2 {
		t.Errorf("star maximal IS count = %d, want 2", len(sets))
	}
}

package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestIsVertexDisjoint(t *testing.T) {
	cases := []struct {
		name  string
		edges []Edge
		want  bool
	}{
		{"empty", nil, true},
		{"single", []Edge{{0, 1}}, true},
		{"disjoint", []Edge{{0, 1}, {2, 3}}, true},
		{"shared", []Edge{{0, 1}, {1, 2}}, false},
		{"loop", []Edge{{2, 2}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := IsVertexDisjoint(c.edges); got != c.want {
				t.Errorf("got %v, want %v", got, c.want)
			}
		})
	}
}

func TestIsMatching(t *testing.T) {
	g := path(4)
	if !IsMatching(g, []Edge{{0, 1}, {2, 3}}) {
		t.Error("valid matching rejected")
	}
	if IsMatching(g, []Edge{{0, 2}}) {
		t.Error("non-edge accepted (the paper's 'phantom edge' error type)")
	}
	if IsMatching(g, []Edge{{0, 1}, {1, 2}}) {
		t.Error("overlapping edges accepted")
	}
}

func TestIsMaximalMatching(t *testing.T) {
	g := path(4) // 0-1-2-3
	if !IsMaximalMatching(g, []Edge{{1, 2}}) {
		t.Error("{1,2} is maximal in P4 but was rejected")
	}
	if IsMaximalMatching(g, []Edge{{0, 1}}) {
		t.Error("{0,1} is not maximal in P4 (2-3 extends it) but was accepted")
	}
	if !IsMaximalMatching(g, []Edge{{0, 1}, {2, 3}}) {
		t.Error("perfect matching rejected")
	}
	empty := NewBuilder(3).Build()
	if !IsMaximalMatching(empty, nil) {
		t.Error("empty matching not maximal in empty graph")
	}
	if IsMaximalMatching(g, nil) {
		t.Error("empty matching maximal in P4")
	}
}

func TestIsIndependentSet(t *testing.T) {
	g := path(4)
	if !IsIndependentSet(g, []int{0, 2}) {
		t.Error("valid IS rejected")
	}
	if IsIndependentSet(g, []int{0, 1}) {
		t.Error("adjacent pair accepted")
	}
	if IsIndependentSet(g, []int{0, 0}) {
		t.Error("duplicate member accepted")
	}
	if IsIndependentSet(g, []int{-1}) || IsIndependentSet(g, []int{7}) {
		t.Error("out-of-range member accepted")
	}
	if !IsIndependentSet(g, nil) {
		t.Error("empty set rejected")
	}
}

func TestIsMaximalIndependentSet(t *testing.T) {
	g := path(4) // 0-1-2-3
	if !IsMaximalIndependentSet(g, []int{0, 2}) {
		t.Error("{0,2} rejected")
	}
	if !IsMaximalIndependentSet(g, []int{1, 3}) {
		t.Error("{1,3} rejected")
	}
	if IsMaximalIndependentSet(g, []int{0}) {
		t.Error("{0} accepted but 2,3 are undominated")
	}
	// {0,3} dominates 1 (via 0) and 2 (via 3), so it is maximal in P4.
	if !IsMaximalIndependentSet(g, []int{0, 3}) {
		t.Error("{0,3} is maximal in P4 but was rejected")
	}
}

func TestIsSpanningForest(t *testing.T) {
	g := cycle(4)
	if !IsSpanningForest(g, []Edge{{0, 1}, {1, 2}, {2, 3}}) {
		t.Error("valid spanning tree rejected")
	}
	if IsSpanningForest(g, []Edge{{0, 1}, {1, 2}, {2, 3}, NewEdge(3, 0)}) {
		t.Error("cycle accepted")
	}
	if IsSpanningForest(g, []Edge{{0, 1}, {1, 2}}) {
		t.Error("non-spanning accepted")
	}
	if IsSpanningForest(g, []Edge{{0, 2}, {0, 1}, {2, 3}}) {
		t.Error("non-edge accepted")
	}
	// Forest across components.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	h := b.Build()
	if !IsSpanningForest(h, []Edge{{0, 1}, {2, 3}}) {
		t.Error("valid 3-component forest rejected")
	}
}

func TestIsProperColoring(t *testing.T) {
	g := cycle(4)
	if !IsProperColoring(g, []int{0, 1, 0, 1}, 2) {
		t.Error("valid 2-coloring rejected")
	}
	if IsProperColoring(g, []int{0, 0, 1, 1}, 2) {
		t.Error("improper coloring accepted")
	}
	if IsProperColoring(g, []int{0, 1, 0, 2}, 2) {
		t.Error("out-of-palette color accepted")
	}
	if !IsProperColoring(g, []int{0, 1, 0, 5}, 0) {
		t.Error("maxColors<=0 should skip range check")
	}
	if IsProperColoring(g, []int{0, 1, 0}, 2) {
		t.Error("wrong-length coloring accepted")
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	if !uf.union(0, 1) || !uf.union(1, 2) {
		t.Fatal("fresh unions reported cycle")
	}
	if uf.union(0, 2) {
		t.Error("cycle not detected")
	}
	if uf.find(0) != uf.find(2) {
		t.Error("0 and 2 not merged")
	}
	if uf.find(3) == uf.find(0) {
		t.Error("3 spuriously merged")
	}
}

func TestVerifiersAgainstGreedyRandom(t *testing.T) {
	src := rng.NewSource(77)
	for trial := 0; trial < 50; trial++ {
		n := 5 + src.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		order := src.Perm(n)
		if m := GreedyMaximalMatching(g, order); !IsMaximalMatching(g, m) {
			t.Fatalf("greedy MM output invalid on trial %d", trial)
		}
		if s := GreedyMIS(g, order); !IsMaximalIndependentSet(g, s) {
			t.Fatalf("greedy MIS output invalid on trial %d", trial)
		}
		if c := GreedyColoring(g, order); !IsProperColoring(g, c, g.MaxDegree()+1) {
			t.Fatalf("greedy coloring invalid on trial %d", trial)
		}
		if f := g.SpanningForestEdges(); !IsSpanningForest(g, f) {
			t.Fatalf("spanning forest invalid on trial %d", trial)
		}
	}
}

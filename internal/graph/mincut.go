package graph

// Global minimum cut via the Stoer–Wagner algorithm (O(V³) dense
// implementation). The weighted form lets experiment E17 compare a cut
// sparsifier's weighted min cut against the true graph's — the
// "approximate min/max cuts" application the paper cites from [2].

// GlobalMinCut returns the value of a minimum cut of g with unit edge
// weights, and one side of an optimal cut. For disconnected graphs the
// value is 0. Graphs with fewer than 2 vertices have no cut; the value
// is reported as +infinity-like maximal float and a nil side.
func GlobalMinCut(g *Graph) (float64, []int) {
	weights := make(map[Edge]float64, g.M())
	for _, e := range g.Edges() {
		weights[e] = 1
	}
	return WeightedMinCut(g.N(), weights)
}

// WeightedMinCut returns the minimum-cut value and one side for the
// weighted graph given by the (positive) weight map over n vertices.
func WeightedMinCut(n int, weights map[Edge]float64) (float64, []int) {
	if n < 2 {
		return maxCutValue, nil
	}
	// Dense weight matrix; merged vertices accumulate.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for e, wt := range weights {
		w[e.U][e.V] += wt
		w[e.V][e.U] += wt
	}
	// groups[i] lists the original vertices merged into node i.
	groups := make([][]int, n)
	active := make([]int, n)
	for i := 0; i < n; i++ {
		groups[i] = []int{i}
		active[i] = i
	}

	best := maxCutValue
	var bestSide []int
	for len(active) > 1 {
		// Minimum cut phase: maximum adjacency order.
		inA := make(map[int]bool, len(active))
		weightTo := make(map[int]float64, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			// Pick the most tightly connected non-member.
			sel, selW := -1, -1.0
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weightTo[v] > selW {
					sel, selW = v, weightTo[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weightTo[v] += w[sel][v]
				}
			}
		}
		// Cut-of-the-phase: the last added node against the rest.
		last := order[len(order)-1]
		cut := 0.0
		for _, v := range active {
			if v != last {
				cut += w[last][v]
			}
		}
		if cut < best {
			best = cut
			bestSide = append([]int(nil), groups[last]...)
		}
		// Merge last into second-to-last.
		prev := order[len(order)-2]
		groups[prev] = append(groups[prev], groups[last]...)
		for _, v := range active {
			if v != last && v != prev {
				w[prev][v] += w[last][v]
				w[v][prev] = w[prev][v]
			}
		}
		// Remove last from active.
		out := active[:0]
		for _, v := range active {
			if v != last {
				out = append(out, v)
			}
		}
		active = out
	}
	return best, bestSide
}

// maxCutValue is a sentinel larger than any real cut this repository
// simulates.
const maxCutValue = 1e18

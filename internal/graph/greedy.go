package graph

// Reference sequential algorithms. These are the ground-truth producers
// used to validate sketching protocols and to sample "adversarial" maximal
// matchings in the Claim 3.1 experiments.

// GreedyMaximalMatching scans edges in the induced order of vertexOrder
// (each vertex proposes to its first unmatched neighbor in vertexOrder
// position) and returns a maximal matching. Passing nil uses the identity
// order.
func GreedyMaximalMatching(g *Graph, vertexOrder []int) []Edge {
	order := vertexOrder
	if order == nil {
		order = make([]int, g.N())
		for i := range order {
			order[i] = i
		}
	}
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	matched := make([]bool, g.N())
	var matching []Edge
	for _, v := range order {
		if matched[v] {
			continue
		}
		best := -1
		for _, u := range g.adj[v] {
			if !matched[u] && (best == -1 || pos[u] < pos[best]) {
				best = u
			}
		}
		if best != -1 {
			matched[v] = true
			matched[best] = true
			matching = append(matching, NewEdge(v, best))
		}
	}
	return matching
}

// GreedyMaximalMatchingEdgeOrder adds edges in the given order whenever
// both endpoints are free, then returns the resulting maximal matching of
// the subgraph formed by those edges. When edges covers E(g), the result
// is a maximal matching of g.
func GreedyMaximalMatchingEdgeOrder(n int, edges []Edge) []Edge {
	matched := make([]bool, n)
	var matching []Edge
	for _, e := range edges {
		if !matched[e.U] && !matched[e.V] {
			matched[e.U] = true
			matched[e.V] = true
			matching = append(matching, e)
		}
	}
	return matching
}

// GreedyMIS adds vertices in the given order whenever none of their
// neighbors is already in the set, producing a maximal independent set.
// Passing nil uses the identity order.
func GreedyMIS(g *Graph, vertexOrder []int) []int {
	order := vertexOrder
	if order == nil {
		order = make([]int, g.N())
		for i := range order {
			order[i] = i
		}
	}
	blocked := make([]bool, g.N())
	inSet := make([]bool, g.N())
	var set []int
	for _, v := range order {
		if blocked[v] {
			continue
		}
		inSet[v] = true
		set = append(set, v)
		blocked[v] = true
		for _, u := range g.adj[v] {
			blocked[u] = true
		}
	}
	return set
}

// GreedyColoring assigns each vertex, in the given order, the smallest
// color not used by an already-colored neighbor. It uses at most
// MaxDegree+1 colors. Passing nil uses the identity order.
func GreedyColoring(g *Graph, vertexOrder []int) []int {
	order := vertexOrder
	if order == nil {
		order = make([]int, g.N())
		for i := range order {
			order[i] = i
		}
	}
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.MaxDegree()+2)
	for _, v := range order {
		for _, u := range g.adj[v] {
			if c := colors[u]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		for _, u := range g.adj[v] {
			if cu := colors[u]; cu >= 0 {
				used[cu] = false
			}
		}
	}
	return colors
}

// MaximumMatchingSize returns the size of a maximum matching of g:
// augmenting-path search on bipartite graphs, Edmonds' blossom algorithm
// (blossom.go) on general graphs.
func MaximumMatchingSize(g *Graph) int {
	if side, ok := g.Bipartition(); ok {
		return bipartiteMaxMatching(g, side)
	}
	return len(MaximumMatching(g))
}

// Bipartition 2-colors the graph if possible, returning side[v] in {0,1}.
func (g *Graph) Bipartition() (side []byte, ok bool) {
	side = make([]byte, g.n)
	color := make([]int8, g.n)
	for i := range color {
		color[i] = -1
	}
	var queue []int
	for s := 0; s < g.n; s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.adj[v] {
				if color[u] == -1 {
					color[u] = 1 - color[v]
					queue = append(queue, u)
				} else if color[u] == color[v] {
					return nil, false
				}
			}
		}
	}
	for v := range color {
		side[v] = byte(color[v])
	}
	return side, true
}

// bipartiteMaxMatching runs simple augmenting-path matching from the
// side-0 vertices.
func bipartiteMaxMatching(g *Graph, side []byte) int {
	match := make([]int, g.n)
	for i := range match {
		match[i] = -1
	}
	var visited []bool
	var try func(v int) bool
	try = func(v int) bool {
		for _, u := range g.adj[v] {
			if visited[u] {
				continue
			}
			visited[u] = true
			if match[u] == -1 || try(match[u]) {
				match[u] = v
				match[v] = u
				return true
			}
		}
		return false
	}
	size := 0
	for v := 0; v < g.n; v++ {
		if side[v] != 0 || match[v] != -1 {
			continue
		}
		visited = make([]bool, g.n)
		if try(v) {
			size++
		}
	}
	return size
}

package graph

// Components returns, for every vertex, the ID of its connected component,
// plus the number of components. Component IDs are assigned in order of
// the smallest vertex they contain.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.adj[x] {
				if comp[u] == -1 {
					comp[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has at most one connected
// component.
func (g *Graph) IsConnected() bool {
	_, c := g.Components()
	return c <= 1
}

// BFSDistances returns the distance from src to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[x] {
			if dist[u] == -1 {
				dist[u] = dist[x] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// SpanningForestEdges returns a spanning forest of g (one BFS tree per
// component) as an edge list.
func (g *Graph) SpanningForestEdges() []Edge {
	visited := make([]bool, g.n)
	var forest []Edge
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if visited[v] {
			continue
		}
		visited[v] = true
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[x] {
				if !visited[u] {
					visited[u] = true
					forest = append(forest, NewEdge(x, u))
					queue = append(queue, u)
				}
			}
		}
	}
	return forest
}

package hashing

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/rng"
)

func TestDeterministicForSameSource(t *testing.T) {
	a := New(3, rng.NewSource(1))
	b := New(3, rng.NewSource(1))
	for x := uint64(0); x < 50; x++ {
		if a.Hash(x) != b.Hash(x) {
			t.Fatalf("same-seed families disagree at %d", x)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(2, rng.NewSource(1))
	b := New(2, rng.NewSource(2))
	same := 0
	for x := uint64(0); x < 100; x++ {
		if a.Hash(x) == b.Hash(x) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agree on %d of 100 points", same)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, ...) did not panic")
		}
	}()
	New(0, rng.NewSource(1))
}

func TestHashRangeBounds(t *testing.T) {
	f := New(2, rng.NewSource(3))
	for _, n := range []int{1, 2, 7, 100} {
		for x := uint64(0); x < 200; x++ {
			v := f.HashRange(x, n)
			if v < 0 || v >= n {
				t.Fatalf("HashRange(%d, %d) = %d out of range", x, n, v)
			}
		}
	}
}

func TestHashRangeUniformity(t *testing.T) {
	const n = 8
	const points = 80000
	f := NewPairwise(rng.NewSource(17))
	counts := make([]int, n)
	for x := uint64(0); x < points; x++ {
		counts[f.HashRange(x, n)]++
	}
	want := float64(points) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d has %d points, want ~%.0f", v, c, want)
		}
	}
}

func TestPairwiseIndependenceEmpirical(t *testing.T) {
	// Over many independently drawn pairwise families, (h(0), h(1))
	// restricted to parity should be uniform over {0,1}^2.
	counts := [4]int{}
	const trials = 40000
	src := rng.NewSource(23)
	for i := 0; i < trials; i++ {
		f := NewPairwise(src)
		a := f.Hash(0) & 1
		b := f.Hash(1) & 1
		counts[a<<1|b]++
	}
	want := float64(trials) / 4
	for pat, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pattern %02b count %d, want ~%.0f", pat, c, want)
		}
	}
}

func TestLevelDistribution(t *testing.T) {
	// Pr[Level(x) >= l] should be ~2^-l.
	const maxLevel = 10
	const points = 1 << 17
	f := New(2, rng.NewSource(31))
	atLeast := make([]int, maxLevel+1)
	for x := uint64(0); x < points; x++ {
		l := f.Level(x, maxLevel)
		if l < 0 || l > maxLevel {
			t.Fatalf("Level out of range: %d", l)
		}
		for i := 0; i <= l; i++ {
			atLeast[i]++
		}
	}
	for l := 1; l <= 6; l++ {
		want := float64(points) / float64(uint64(1)<<uint(l))
		got := float64(atLeast[l])
		if math.Abs(got-want) > 8*math.Sqrt(want) {
			t.Errorf("Pr[level >= %d]: got %.0f points, want ~%.0f", l, got, want)
		}
	}
}

func TestLevelMonotoneThresholds(t *testing.T) {
	f := New(2, rng.NewSource(5))
	// Level must be a deterministic function of the hash value.
	for x := uint64(0); x < 1000; x++ {
		l1 := f.Level(x, 20)
		l2 := f.Level(x, 20)
		if l1 != l2 {
			t.Fatal("Level is not deterministic")
		}
	}
}

// levelByScan is the original threshold-scan Level: the largest l in
// [1, maxLevel] with h < P>>l. The closed form in Level must agree with
// it on every input.
func levelByScan(f *Family, x uint64, maxLevel int) int {
	h := f.Hash(x)
	for l := maxLevel; l >= 1; l-- {
		if h < field.P>>uint(l) {
			return l
		}
	}
	return 0
}

func TestLevelMatchesThresholdScan(t *testing.T) {
	f := New(2, rng.NewSource(97))
	for _, maxLevel := range []int{1, 2, 10, 27, 54, 60, 61, 64} {
		for x := uint64(0); x < 4096; x++ {
			got, want := f.Level(x, maxLevel), levelByScan(f, x, maxLevel)
			if got != want {
				t.Fatalf("Level(%d, %d) = %d, scan reference = %d (hash %d)",
					x, maxLevel, got, want, f.Hash(x))
			}
		}
	}
	// Force the boundary hash values directly through a constant family:
	// h(x) = x for the identity polynomial (coeffs {0, 1}).
	id := &Family{coeffs: []field.Elem{0, 1}}
	for _, h := range []uint64{0, 1, 2, 3, (1 << 60) - 2, (1 << 60) - 1, 1 << 60,
		uint64(field.P) >> 1, uint64(field.P) - 2, uint64(field.P) - 1} {
		for _, maxLevel := range []int{1, 30, 60, 61} {
			got, want := id.Level(h, maxLevel), levelByScan(id, h, maxLevel)
			if got != want {
				t.Fatalf("Level(h=%d, %d) = %d, scan reference = %d", h, maxLevel, got, want)
			}
		}
	}
}

func BenchmarkHashPairwise(b *testing.B) {
	f := NewPairwise(rng.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = f.Hash(uint64(i))
	}
}

func BenchmarkHashK8(b *testing.B) {
	f := New(8, rng.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = f.Hash(uint64(i))
	}
}

// TestLevelBlockMatchesLevel proves the batched level computation is
// identical to per-element Level calls, for the pairwise fast path and
// the general fallback, across the clamp edge cases.
func TestLevelBlockMatchesLevel(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		f := New(k, rng.NewSource(uint64(100+k)))
		xs := make([]uint64, 500)
		src := rng.NewSource(7)
		for i := range xs {
			xs[i] = src.Uint64() >> uint(i%50)
		}
		for _, maxLevel := range []int{0, 1, 5, 28, 60} {
			out := make([]int32, len(xs))
			f.LevelBlock(xs, maxLevel, out)
			for i, x := range xs {
				if want := f.Level(x, maxLevel); int(out[i]) != want {
					t.Fatalf("k=%d maxLevel=%d: LevelBlock(%d) = %d, want %d", k, maxLevel, x, out[i], want)
				}
			}
		}
	}
}

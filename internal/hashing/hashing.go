// Package hashing provides k-wise independent hash families over
// GF(2^61-1), seeded from public coins.
//
// A degree-(k-1) polynomial with uniform coefficients is a k-wise
// independent function family; these are the standard building block for
// the ℓ₀-samplers in package l0 and the sampling decisions in the AGM and
// coloring sketches.
package hashing

import (
	"math/bits"

	"repro/internal/field"
	"repro/internal/rng"
)

// Family is a k-wise independent hash function h: [2^61-1] -> [2^61-1].
type Family struct {
	coeffs []field.Elem
}

// New draws a fresh k-wise independent function from the given source.
// k must be at least 1.
func New(k int, src *rng.Source) *Family {
	if k < 1 {
		panic("hashing: k must be >= 1")
	}
	coeffs := make([]field.Elem, k)
	for i := range coeffs {
		coeffs[i] = field.Reduce(src.Uint64())
	}
	// A zero leading coefficient only reduces the effective degree; that
	// is fine for independence (uniform coefficients include zero).
	return &Family{coeffs: coeffs}
}

// NewPairwise draws a 2-wise independent function.
func NewPairwise(src *rng.Source) *Family { return New(2, src) }

// Hash evaluates the function at x.
func (f *Family) Hash(x uint64) uint64 {
	return uint64(field.EvalPoly(f.coeffs, field.Reduce(x)))
}

// HashRange maps x uniformly-ish into [0, n) by reducing the field output.
// The bias is at most n/P, negligible for the ranges used here.
func (f *Family) HashRange(x uint64, n int) int {
	if n <= 0 {
		panic("hashing: HashRange with non-positive n")
	}
	return int(f.Hash(x) % uint64(n))
}

// Level returns the sampling level of x: the largest ℓ in [0, maxLevel]
// such that h(x) falls in the top 2^-ℓ fraction of the field, giving
// Pr[Level >= ℓ] ≈ 2^-ℓ. Used for geometric subsampling in ℓ₀-samplers.
func (f *Family) Level(x uint64, maxLevel int) int {
	h := f.Hash(x)
	// The level-ℓ threshold is P>>ℓ = 2^(61-ℓ)-1, and h < 2^m-1 exactly
	// when bits.Len64(h+1) <= m, so the largest qualifying ℓ is
	// 61 - Len(h+1) — a closed form for the former maxLevel-step
	// threshold scan (hashing_test.go checks the equivalence).
	l := 61 - bits.Len64(h+1)
	if l > maxLevel {
		l = maxLevel
	}
	if l < 1 {
		return 0
	}
	return l
}

// LevelBlock computes Level for every element of xs into out (equal
// lengths), hoisting the coefficient loads out of the loop for the
// pairwise families the ℓ₀-samplers use. Results are identical to
// per-element Level calls; only the cost differs. Allocation-free.
func (f *Family) LevelBlock(xs []uint64, maxLevel int, out []int32) {
	if len(xs) != len(out) {
		panic("hashing: LevelBlock length mismatch")
	}
	if len(f.coeffs) != 2 {
		for i, x := range xs {
			out[i] = int32(f.Level(x, maxLevel))
		}
		return
	}
	// Degree-1 Horner, fused: h = c0 + c1·Reduce(x).
	c0, c1 := f.coeffs[0], f.coeffs[1]
	for i, x := range xs {
		h := uint64(field.Add(field.Mul(c1, field.Reduce(x)), c0))
		l := 61 - bits.Len64(h+1)
		if l > maxLevel {
			l = maxLevel
		}
		if l < 1 {
			l = 0
		}
		out[i] = int32(l)
	}
}

// Package sparsify implements AGM-style cut sparsification from one
// round of sketches [Ahn–Guha–McGregor, PODS'12], cited by the paper's
// introduction ("cut sparsifiers and approximate min/max cuts [2]").
//
// Construction: a public hash assigns every edge a geometric level
// (Pr[level ≥ i] = 2^-i), giving nested subsamples G_0 ⊇ G_1 ⊇ ... For
// each level the referee peels a k-edge-connectivity skeleton from that
// level's sketches. A skeleton retains the edges of locally weak
// (≤ k-connected) regions, so the first (shallowest) level whose
// skeleton retains an edge estimates the edge's strength class: strength
// ≈ k·2^i there, where the effective sampling rate 2^-i matches the
// Benczúr–Karger rate k/strength. The sparsifier therefore weights each
// edge 2^i for the shallowest retaining level i; strong-region edges
// enter only at deep levels with large weights, standing in for the many
// parallel paths sampled away.
//
// Quality is measured, not assumed: experiment E17 reports relative cut
// errors over random cuts. Per-vertex cost is L·k forest sketches
// (polylog each) for L = O(log n) levels.
package sparsify

import (
	"fmt"

	"repro/internal/agm"
	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashing"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Config sizes the sparsifier.
type Config struct {
	// Levels is the number of subsampling levels; 0 selects
	// ceil(log2(n))+1.
	Levels int
	// K is the per-level skeleton connectivity parameter; 0 selects 4.
	K int
	// Forest configures the underlying forest sketches.
	Forest agm.Config
}

func (c Config) withDefaults(n int) Config {
	if c.Levels == 0 {
		c.Levels = bitio.UintWidth(n) + 1
	}
	if c.K == 0 {
		c.K = 4
	}
	return c
}

// Sparsifier is the weighted output graph.
type Sparsifier struct {
	N      int
	Weight map[graph.Edge]float64
}

// CutValue returns the sparsifier's weight across the given cut.
func (s *Sparsifier) CutValue(side []bool) float64 {
	total := 0.0
	for e, w := range s.Weight {
		if side[e.U] != side[e.V] {
			total += w
		}
	}
	return total
}

// Edges returns the number of sparsifier edges.
func (s *Sparsifier) Edges() int { return len(s.Weight) }

// TrueCut returns the unweighted cut value of g.
func TrueCut(g *graph.Graph, side []bool) float64 {
	total := 0.0
	for _, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			total++
		}
	}
	return total
}

// Protocol is the one-round sparsifier protocol.
type Protocol struct {
	cfg Config
}

var _ core.Protocol[*Sparsifier] = (*Protocol)(nil)

// New returns the protocol.
func New(cfg Config) *Protocol { return &Protocol{cfg: cfg} }

// Name implements core.Protocol.
func (p *Protocol) Name() string { return "agm-cut-sparsifier" }

// edgeLevel computes the public geometric level of an edge.
func edgeLevel(n, u, v, maxLevel int, coins *rng.PublicCoins) int {
	fam := hashing.NewPairwise(coins.Derive("sparsify-level").Source())
	e := graph.NewEdge(u, v)
	return fam.Level(uint64(e.U)*uint64(n)+uint64(e.V), maxLevel)
}

// skeletons builds the per-level skeleton protocols (distinct coins per
// level live inside the skeleton's own derivation, so one shared
// instance per level suffices).
func (p *Protocol) skeletons(n int) (Config, []*agm.SkeletonProtocol) {
	cfg := p.cfg.withDefaults(n)
	out := make([]*agm.SkeletonProtocol, cfg.Levels)
	for i := range out {
		out[i] = agm.NewSkeleton(cfg.K, cfg.Forest)
	}
	return cfg, out
}

// Sketch implements core.Protocol: for each level, delegate to the
// skeleton protocol on the level-filtered view.
func (p *Protocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	cfg, skels := p.skeletons(view.N)
	w := &bitio.Writer{}
	for i := 0; i < cfg.Levels; i++ {
		var nbrs []int
		for _, u := range view.Neighbors {
			if edgeLevel(view.N, view.ID, u, cfg.Levels-1, coins) >= i {
				nbrs = append(nbrs, u)
			}
		}
		sub := core.VertexView{N: view.N, ID: view.ID, Neighbors: nbrs}
		sw, err := skels[i].Sketch(sub, coins.Derive("sparsify").DeriveIndex(i))
		if err != nil {
			return nil, fmt.Errorf("sparsify: level %d: %w", i, err)
		}
		w.WriteBytes(sw.Bytes())
		w.WriteUvarint(uint64(sw.Len()))
	}
	return w, nil
}

// Decode implements core.Protocol.
func (p *Protocol) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) (*Sparsifier, error) {
	cfg, skels := p.skeletons(n)
	sp := &Sparsifier{N: n, Weight: make(map[graph.Edge]float64)}
	for i := 0; i < cfg.Levels; i++ {
		// Re-slice each vertex's level-i segment. Sketch wrote the
		// payload bytes followed by the payload bit length.
		levelReaders := make([]*bitio.Reader, n)
		for v := 0; v < n; v++ {
			// The payload was byte-aligned by WriteBytes; read its bytes
			// then its true bit length.
			r := sketches[v]
			start := r.Remaining()
			_ = start
			// First pass: we must know the byte count; recover it from
			// the recorded bit length after the payload. To keep the
			// format simple the payload is stored byte-aligned, so scan:
			// read bytes until the uvarint... — instead the encoder
			// recorded the length after the payload precisely because
			// both sides know the skeleton sketch length is deterministic
			// given (n, cfg): reconstruct it.
			expected := skeletonBits(n, cfg)
			payload, err := r.ReadBytes((expected + 7) / 8)
			if err != nil {
				return nil, fmt.Errorf("sparsify: vertex %d level %d payload: %w", v, i, err)
			}
			recorded, err := r.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("sparsify: vertex %d level %d length: %w", v, i, err)
			}
			if int(recorded) != expected {
				return nil, fmt.Errorf("sparsify: vertex %d level %d: length %d, want %d",
					v, i, recorded, expected)
			}
			levelReaders[v] = bitio.NewReader(payload, expected)
		}
		forestEdges, err := skels[i].Decode(n, levelReaders, coins.Derive("sparsify").DeriveIndex(i))
		if err != nil {
			return nil, fmt.Errorf("sparsify: level %d decode: %w", i, err)
		}
		weight := float64(uint64(1) << uint(i))
		for _, e := range forestEdges {
			// Shallowest retaining level wins: levels run in increasing
			// order and the first assignment sticks.
			if _, ok := sp.Weight[e]; !ok {
				sp.Weight[e] = weight
			}
		}
	}
	return sp, nil
}

// Verify implements protocol.Sketcher: a structurally sound sparsifier
// supports only actual edges of g with weights ≥ 1 (each weight is 2^i
// for the shallowest retaining level i). Size is the support size and
// Value the total weight — approximation quality over random cuts is
// measured by experiment E17, not audited here.
func (p *Protocol) Verify(g *graph.Graph, out *Sparsifier) protocol.Outcome {
	o := protocol.Outcome{Kind: "sparsifier", Checked: true}
	if out == nil || out.N != g.N() {
		return o
	}
	o.Size = out.Edges()
	valid := true
	for e, w := range out.Weight {
		o.Value += w
		if !g.HasEdge(e.U, e.V) || w < 1 {
			valid = false
		}
	}
	o.Valid = valid
	return o
}

// skeletonBits returns the deterministic bit length of one skeleton
// sketch for an n-vertex graph under cfg.
func skeletonBits(n int, cfg Config) int {
	f := cfg.Forest
	// Mirror agm.Config.withDefaults.
	rounds := f.Rounds
	if rounds == 0 {
		rounds = 2*bitio.UintWidth(n+1) + 4
	}
	reps := f.Reps
	if reps == 0 {
		reps = 3
	}
	// Mirror l0.NewSpec level count for universe n².
	levels := 2
	for u := uint64(n) * uint64(n); u > 0; u >>= 1 {
		levels++
	}
	perSketch := levels * 3 * 61
	return cfg.K * rounds * reps * perSketch
}

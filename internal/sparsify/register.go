package sparsify

// Wire registration. The documented defaults (log n levels, k = 4,
// default forest config) cost hundreds of kilobits per vertex — fine for
// the offline experiments, excessive for a wire smoke spec — so the
// registry pins a smoke-scale configuration: three levels, 2-connected
// skeletons, short forests.

import (
	"repro/internal/agm"
	"repro/internal/graph"
	"repro/internal/protocol"
)

func registryConfig() Config {
	return Config{Levels: 3, K: 2, Forest: agm.Config{Rounds: 6, Reps: 1}}
}

func init() {
	protocol.RegisterSketcher("agm-cut-sparsifier", func(g *graph.Graph) protocol.Sketcher[*Sparsifier] {
		return New(registryConfig())
	})
}

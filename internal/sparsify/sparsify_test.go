package sparsify

import (
	"math"
	"testing"

	"repro/internal/agm"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func runSparsifier(t *testing.T, g *graph.Graph, cfg Config, seed uint64) *Sparsifier {
	t.Helper()
	res, err := core.Run[*Sparsifier](New(cfg), g, rng.NewPublicCoins(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res.Output
}

func TestSparsifierEdgesAreRealEdges(t *testing.T) {
	g := gen.Gnp(36, 0.3, rng.NewSource(1))
	sp := runSparsifier(t, g, Config{}, 2)
	for e := range sp.Weight {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("sparsifier contains phantom edge %v", e)
		}
	}
	if sp.Edges() == 0 {
		t.Fatal("empty sparsifier for a connected-ish graph")
	}
}

func TestSparsifierSmallerThanDenseGraph(t *testing.T) {
	g := gen.Gnp(48, 0.6, rng.NewSource(3))
	cfg := Config{K: 3, Levels: 5}
	sp := runSparsifier(t, g, cfg, 4)
	if sp.Edges() >= g.M() {
		t.Errorf("sparsifier has %d edges, graph has %d — no sparsification", sp.Edges(), g.M())
	}
}

func TestSparsifierCutAccuracy(t *testing.T) {
	src := rng.NewSource(5)
	g := gen.Gnp(40, 0.4, src)
	sp := runSparsifier(t, g, Config{}, 6)
	// Random cuts: relative error should be moderate (this is a measured-
	// quality construction; E17 reports the full distribution).
	bad := 0
	const cuts = 40
	for c := 0; c < cuts; c++ {
		side := make([]bool, g.N())
		for v := range side {
			side[v] = src.Bool()
		}
		truth := TrueCut(g, side)
		if truth == 0 {
			continue
		}
		est := sp.CutValue(side)
		rel := math.Abs(est-truth) / truth
		if rel > 0.75 {
			bad++
		}
	}
	if bad > cuts/4 {
		t.Errorf("%d/%d random cuts off by more than 75%%", bad, cuts)
	}
}

func TestSparsifierPreservesSmallCutsExactly(t *testing.T) {
	// Two dense blobs joined by 2 edges: the bottleneck cut must be
	// represented (skeletons keep all edges of small cuts at level 0).
	b := graph.NewBuilder(16)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			b.AddEdge(i, j)
			b.AddEdge(8+i, 8+j)
		}
	}
	b.AddEdge(0, 8)
	b.AddEdge(1, 9)
	g := b.Build()
	sp := runSparsifier(t, g, Config{K: 3}, 7)
	side := make([]bool, 16)
	for v := 8; v < 16; v++ {
		side[v] = true
	}
	if got := sp.CutValue(side); got < 2 {
		t.Errorf("bottleneck cut weighted %v, want >= 2", got)
	}
	// The level-0 skeleton keeps both bridge-ish edges themselves.
	if _, ok := sp.Weight[graph.NewEdge(0, 8)]; !ok {
		t.Error("cut edge (0,8) missing from sparsifier")
	}
	if _, ok := sp.Weight[graph.NewEdge(1, 9)]; !ok {
		t.Error("cut edge (1,9) missing from sparsifier")
	}
}

func TestSparsifierApproximatesGlobalMinCut(t *testing.T) {
	// The cited application: approximate min cut from the sparsifier.
	// Two blobs with a planted 3-edge cut.
	b := graph.NewBuilder(20)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
			b.AddEdge(10+i, 10+j)
		}
	}
	b.AddEdge(0, 10)
	b.AddEdge(1, 11)
	b.AddEdge(2, 12)
	g := b.Build()
	truth, _ := graph.GlobalMinCut(g)
	if truth != 3 {
		t.Fatalf("planted min cut = %v, want 3", truth)
	}
	sp := runSparsifier(t, g, Config{K: 4}, 11)
	est, side := graph.WeightedMinCut(g.N(), sp.Weight)
	if est < truth*0.5 || est > truth*2 {
		t.Errorf("sparsifier min cut %v vs true %v — outside 2x", est, truth)
	}
	// The optimal side should separate the blobs.
	if len(side) != 10 {
		t.Errorf("min-cut side size %d, want 10 (one blob)", len(side))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(64)
	if c.Levels != 7 || c.K != 4 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestSkeletonBitsMatchesActual(t *testing.T) {
	// The decoder depends on the deterministic sketch length; pin it.
	n := 20
	cfg := Config{K: 2}.withDefaults(n)
	p := agm.NewSkeleton(cfg.K, cfg.Forest)
	g := gen.Gnp(n, 0.3, rng.NewSource(8))
	views := core.Views(g)
	view := views[0]
	w, err := p.Sketch(view, rng.NewPublicCoins(9))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.Len(), skeletonBits(n, cfg); got != want {
		t.Fatalf("actual skeleton sketch %d bits, predicted %d", got, want)
	}
}

func TestEdgeLevelConsistentAndGeometric(t *testing.T) {
	coins := rng.NewPublicCoins(10)
	n := 100
	atLeast1 := 0
	total := 0
	for u := 0; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			a := edgeLevel(n, u, v, 8, coins)
			b := edgeLevel(n, v, u, 8, coins)
			if a != b {
				t.Fatal("edge level differs by endpoint order")
			}
			total++
			if a >= 1 {
				atLeast1++
			}
		}
	}
	// Pr[level >= 1] ≈ 1/2.
	frac := float64(atLeast1) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("Pr[level >= 1] ≈ %v, want ~0.5", frac)
	}
}

// Package client is the typed client for the refereed daemon
// (internal/server). It speaks the binary wire format end to end —
// RunSpec frames out, RunReport frames back — so a remote run returns
// the same decoded transcript object a local engine.Run would produce.
//
// Transient failures (network errors, 429, 502, 503, 504) are retried
// with exponential backoff; when the daemon sheds load with a
// Retry-After hint (the 429 its queue timeout produces), that hint
// replaces the exponential delay for the attempt — the server knows
// how saturated it is better than a client-side schedule does.
// Deterministic failures — a 400 for a spec the daemon rejects, a 500
// for a protocol failing mid-run — are not retried: the engine is
// deterministic, so resubmitting an identical spec can only fail
// identically.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/wire"
)

// Config carries the client's knobs; the zero value plus a BaseURL is a
// working client.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient overrides the transport. nil means http.DefaultClient.
	HTTPClient *http.Client
	// Retries is the number of re-attempts after the first try on a
	// transient failure. 0 means 3; negative disables retries.
	Retries int
	// Backoff is the delay before the first retry; it doubles per
	// attempt. 0 means 100ms.
	Backoff time.Duration
	// Sleep overrides the inter-retry wait, for tests. nil means a
	// context-aware time.Sleep.
	Sleep func(context.Context, time.Duration) error
}

// Client dispatches runs to a refereed daemon.
type Client struct {
	cfg Config
}

// New builds a Client, applying defaults for zero Config fields.
func New(cfg Config) *Client {
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepCtx
	}
	return &Client{cfg: cfg}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// maxRetryAfter caps how long a server's Retry-After hint can stall
// the retry loop; a daemon advertising more than this is treated as if
// it had said this much.
const maxRetryAfter = 30 * time.Second

// StatusError is a non-2xx daemon response.
type StatusError struct {
	Code int
	Body string
	// RetryAfter is the daemon's Retry-After hint (zero when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("refereed: status %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// parseRetryAfter reads a Retry-After header's delay-seconds form,
// clamped to [0, maxRetryAfter]. The HTTP-date form and garbage both
// yield 0 — the caller falls back to its exponential schedule.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// Retryable reports whether a daemon status is worth re-attempting:
// 429 (shed load), 502/503 (daemon down or draining), 504 (budget
// exceeded on an oversubscribed host). Everything else is
// deterministic — by the engine's determinism contract an identical
// resubmission fails identically — which is also why the cluster
// coordinator uses this split to decide between failing over to
// another backend and returning the error as-is.
func Retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// post sends body to path, retrying transient failures with exponential
// backoff, and returns the response body of the first 2xx answer.
func (c *Client) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			// A Retry-After hint from the previous response overrides the
			// exponential delay for this attempt; the schedule itself
			// still advances so a daemon that stops hinting is backed
			// off from progressively.
			delay := backoff
			if se, ok := lastErr.(*StatusError); ok && se.RetryAfter > 0 {
				delay = se.RetryAfter
			}
			if err := c.cfg.Sleep(ctx, delay); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		resp, err := c.do(ctx, path, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if se, ok := err.(*StatusError); ok && !Retryable(se.Code) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, fmt.Errorf("refereed: %d attempts failed, last: %w", c.cfg.Retries+1, lastErr)
}

func (c *Client) do(ctx context.Context, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, &StatusError{
			Code:       resp.StatusCode,
			Body:       string(data),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	return data, nil
}

// Run executes one spec on the daemon and returns its full report,
// transcript included.
func (c *Client) Run(ctx context.Context, spec wire.RunSpec) (*wire.RunReport, error) {
	data, err := c.post(ctx, "/v1/run", wire.EncodeRunSpec(spec))
	if err != nil {
		return nil, err
	}
	return wire.DecodeRunReport(data)
}

// RunBatch executes specs on the daemon as one batch and returns the
// per-spec stats and outcomes (no transcripts ride along).
func (c *Client) RunBatch(ctx context.Context, specs []wire.RunSpec) ([]wire.BatchItem, error) {
	data, err := c.post(ctx, "/v1/batch", wire.EncodeBatchSpec(specs))
	if err != nil {
		return nil, err
	}
	return wire.DecodeBatchReport(data)
}

// Health describes a live daemon.
type Health struct {
	Status      string   `json:"status"`
	WireVersion int      `json:"wire_version"`
	Protocols   []string `json:"protocols"`
}

// Health checks daemon liveness and wire-version compatibility.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.getJSON(ctx, "/v1/healthz", &h); err != nil {
		return nil, err
	}
	if h.WireVersion != wire.Version {
		return nil, fmt.Errorf("refereed: daemon speaks wire version %d, this build speaks %d", h.WireVersion, wire.Version)
	}
	return &h, nil
}

// CacheStats mirrors the daemon's result-cache counters.
type CacheStats struct {
	Enabled   bool    `json:"enabled"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	MaxBytes  int64   `json:"max_bytes"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats mirrors the daemon's GET /v1/stats body.
type Stats struct {
	Status        string     `json:"status"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	MaxConcurrent int        `json:"max_concurrent"`
	Cache         CacheStats `json:"cache"`
}

// Stats fetches the daemon's operational counters (cache hit/miss/
// eviction totals and occupancy) — what cmd/loadgen samples before and
// after a run to report the cache hit rate of its own traffic.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var s Stats
	if err := c.getJSON(ctx, "/v1/stats", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// getJSON fetches one JSON endpoint without retries (liveness and
// stats probes want the current truth, not an eventually-successful
// one).
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Body: string(data)}
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("refereed: malformed %s response: %w", path, err)
	}
	return nil
}

package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// flakyHandler fails the first failures requests with status, then
// behaves as a minimal daemon for /v1/run.
func flakyHandler(t *testing.T, failures int32, status int) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failures {
			http.Error(w, "injected failure", status)
			return
		}
		spec, err := wire.DecodeRunSpec(mustReadAll(t, r))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		report, err := wire.ExecuteSpec(r.Context(), spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(wire.EncodeRunReport(report))
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func mustReadAll(t *testing.T, r *http.Request) []byte {
	t.Helper()
	data := make([]byte, 0, 512)
	buf := make([]byte, 512)
	for {
		n, err := r.Body.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			return data
		}
	}
}

// recordingSleeper captures backoff delays instead of sleeping.
type recordingSleeper struct{ delays []time.Duration }

func (s *recordingSleeper) sleep(ctx context.Context, d time.Duration) error {
	s.delays = append(s.delays, d)
	return ctx.Err()
}

// TestRetrySucceedsAfterTransientFailures checks fail-twice-then-succeed
// recovery and exponential backoff growth.
func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	ts, calls := flakyHandler(t, 2, http.StatusServiceUnavailable)
	sleeper := &recordingSleeper{}
	c := client.New(client.Config{BaseURL: ts.URL, Backoff: 10 * time.Millisecond, Sleep: sleeper.sleep})
	spec := wire.SmokeSpecs(1)[0]
	report, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	local, err := wire.ExecuteSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if report.Digest() != local.Digest() {
		t.Fatal("recovered run returned a different transcript")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests reached the daemon, want 3", got)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(sleeper.delays) != len(want) {
		t.Fatalf("slept %v, want %v", sleeper.delays, want)
	}
	for i := range want {
		if sleeper.delays[i] != want[i] {
			t.Fatalf("backoff %d was %v, want %v (must double per attempt)", i, sleeper.delays[i], want[i])
		}
	}
}

// TestNoRetryOnDeterministicFailure checks that a 400 — and a 500, a
// deterministic execution failure — is surfaced immediately: the engine
// is deterministic, so an identical resubmission cannot do better.
func TestNoRetryOnDeterministicFailure(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusInternalServerError} {
		ts, calls := flakyHandler(t, 100, status)
		c := client.New(client.Config{BaseURL: ts.URL, Sleep: (&recordingSleeper{}).sleep})
		_, err := c.Run(context.Background(), wire.SmokeSpecs(1)[0])
		var se *client.StatusError
		if !errors.As(err, &se) || se.Code != status {
			t.Fatalf("status %d: got %v, want StatusError", status, err)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("status %d: %d requests, want 1 (no retries)", status, got)
		}
	}
}

// TestRetriesExhausted checks the terminal error after persistent
// transient failures.
func TestRetriesExhausted(t *testing.T) {
	ts, calls := flakyHandler(t, 100, http.StatusBadGateway)
	c := client.New(client.Config{BaseURL: ts.URL, Retries: 2, Sleep: (&recordingSleeper{}).sleep})
	_, err := c.Run(context.Background(), wire.SmokeSpecs(1)[0])
	if err == nil {
		t.Fatal("persistent 502s should fail")
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Fatalf("terminal error %v should wrap the last StatusError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (1 try + 2 retries)", got)
	}
}

// TestRetryClassification is the status-code contract in one table:
// transient statuses (429, 502, 503, 504) are retried until the budget
// runs out; deterministic ones (400, 404, 422, 500) fail fast on the
// first response — the engine is deterministic, so an identical
// resubmission cannot do better.
func TestRetryClassification(t *testing.T) {
	cases := []struct {
		status    int
		wantCalls int32
	}{
		{http.StatusTooManyRequests, 3},
		{http.StatusBadGateway, 3},
		{http.StatusServiceUnavailable, 3},
		{http.StatusGatewayTimeout, 3},
		{http.StatusBadRequest, 1},
		{http.StatusNotFound, 1},
		{http.StatusUnprocessableEntity, 1},
		{http.StatusInternalServerError, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprint(tc.status), func(t *testing.T) {
			ts, calls := flakyHandler(t, 100, tc.status)
			c := client.New(client.Config{BaseURL: ts.URL, Retries: 2, Sleep: (&recordingSleeper{}).sleep})
			_, err := c.Run(context.Background(), wire.SmokeSpecs(1)[0])
			var se *client.StatusError
			if !errors.As(err, &se) || se.Code != tc.status {
				t.Fatalf("error %v, want StatusError %d", err, tc.status)
			}
			if got := calls.Load(); got != tc.wantCalls {
				t.Fatalf("%d requests reached the daemon, want %d", got, tc.wantCalls)
			}
		})
	}
}

// TestRetryAfterHonored checks that a 429's Retry-After hint replaces
// the exponential delay for the following attempt — and that an absurd
// hint is clamped rather than obeyed.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "7")
			http.Error(w, "queue full", http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Retry-After", "86400") // absurd: clamp, don't obey
			http.Error(w, "queue full", http.StatusTooManyRequests)
		default:
			http.Error(w, "still full", http.StatusTooManyRequests)
		}
	}))
	t.Cleanup(ts.Close)
	sleeper := &recordingSleeper{}
	c := client.New(client.Config{BaseURL: ts.URL, Retries: 3, Backoff: 10 * time.Millisecond, Sleep: sleeper.sleep})
	_, err := c.Run(context.Background(), wire.SmokeSpecs(1)[0])
	if err == nil {
		t.Fatal("persistent 429s should fail")
	}
	want := []time.Duration{
		7 * time.Second,       // server hint
		30 * time.Second,      // clamped absurd hint
		40 * time.Millisecond, // no hint: exponential schedule, advanced twice
	}
	if len(sleeper.delays) != len(want) {
		t.Fatalf("slept %v, want %v", sleeper.delays, want)
	}
	for i := range want {
		if sleeper.delays[i] != want[i] {
			t.Fatalf("delay %d was %v, want %v", i, sleeper.delays[i], want[i])
		}
	}
}

// TestContextCancelMidBackoff cancels the context during the
// Retry-After wait itself and checks the loop stops without another
// request.
func TestContextCancelMidBackoff(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "5")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	c := client.New(client.Config{BaseURL: ts.URL, Retries: 10, Sleep: func(ctx context.Context, d time.Duration) error {
		if d != 5*time.Second {
			t.Errorf("mid-backoff delay %v, want the 5s hint", d)
		}
		cancel() // the user gives up while the client is waiting out the hint
		return ctx.Err()
	}})
	_, err := c.Run(ctx, wire.SmokeSpecs(1)[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests after cancel, want 1", got)
	}
}

// TestRetryOnConnectionError checks that network-level failures (a
// daemon that is not up yet) are retried too — the CI smoke job leans
// on this while refereed boots.
func TestRetryOnConnectionError(t *testing.T) {
	ts, _ := flakyHandler(t, 0, 0)
	url := ts.URL
	ts.Close() // now the port refuses connections
	sleeper := &recordingSleeper{}
	c := client.New(client.Config{BaseURL: url, Retries: 2, Sleep: sleeper.sleep})
	_, err := c.Run(context.Background(), wire.SmokeSpecs(1)[0])
	if err == nil {
		t.Fatal("closed port should fail")
	}
	if len(sleeper.delays) != 2 {
		t.Fatalf("slept %v, want 2 retries for connection errors", sleeper.delays)
	}
}

// TestContextCancelStopsRetries checks that a dead context cuts the
// retry loop off instead of burning the full budget.
func TestContextCancelStopsRetries(t *testing.T) {
	ts, calls := flakyHandler(t, 100, http.StatusServiceUnavailable)
	ctx, cancel := context.WithCancel(context.Background())
	c := client.New(client.Config{BaseURL: ts.URL, Retries: 50, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}})
	_, err := c.Run(ctx, wire.SmokeSpecs(1)[0])
	if err == nil {
		t.Fatal("canceled context should fail")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests after cancel, want 1", got)
	}
}

// TestHealthRejectsWireVersionSkew checks that a daemon speaking a
// different wire version is refused up front with a clear error.
func TestHealthRejectsWireVersionSkew(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "wire_version": wire.Version + 1})
	}))
	t.Cleanup(ts.Close)
	c := client.New(client.Config{BaseURL: ts.URL})
	_, err := c.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("version skew surfaced as %v", err)
	}
}

package bounds

import (
	"math"
	"testing"
)

func TestShapeValid(t *testing.T) {
	cases := []struct {
		shape RSShape
		ok    bool
	}{
		{RSShape{N: 10, R: 2, T: 3}, true},
		{RSShape{N: 10, R: 5, T: 1}, true},
		{RSShape{N: 10, R: 6, T: 1}, false},
		{RSShape{N: 0, R: 1, T: 1}, false},
		{RSShape{N: 10, R: 0, T: 1}, false},
	}
	for _, c := range cases {
		if err := c.shape.Valid(); (err == nil) != c.ok {
			t.Errorf("Valid(%+v) err = %v, want ok=%v", c.shape, err, c.ok)
		}
	}
}

func TestLowerBoundFormula(t *testing.T) {
	// Hand-computed: N=100, r=10, t=20, k=20.
	// n = 100-20+400 = 480; info = 200/6; |P| = 80; unique = 20*100/20 = 100.
	// b = (200/6)/180.
	row, err := LowerBound(RSShape{N: 100, R: 10, T: 20}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if row.NTotal != 480 {
		t.Errorf("NTotal = %d, want 480", row.NTotal)
	}
	want := (200.0 / 6) / 180
	if math.Abs(row.BitsPerPlayer-want) > 1e-12 {
		t.Errorf("BitsPerPlayer = %v, want %v", row.BitsPerPlayer, want)
	}
	if math.Abs(row.SqrtNRatio-want/math.Sqrt(480)) > 1e-12 {
		t.Errorf("SqrtNRatio = %v", row.SqrtNRatio)
	}
}

func TestLowerBoundRejectsBadInput(t *testing.T) {
	if _, err := LowerBound(RSShape{N: 10, R: 2, T: 2}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := LowerBound(RSShape{N: 2, R: 2, T: 1}, 1); err == nil {
		t.Error("invalid shape accepted")
	}
}

func TestPaperParamsApproachR36(t *testing.T) {
	// With k = t and t = N/3: b = (t·r/6)/((N-2r) + N) → r/36 as r/N → 0.
	shape := RSShape{N: 3 * 100000, R: 50, T: 100000}
	row, err := PaperRow(shape)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(shape.R) / 36
	if math.Abs(row.BitsPerPlayer-want)/want > 0.01 {
		t.Errorf("bound = %v, want ≈ r/36 = %v", row.BitsPerPlayer, want)
	}
}

func TestBoundGrowsWithM(t *testing.T) {
	rows, err := Table([]int{50, 200, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].BitsPerPlayer <= rows[i-1].BitsPerPlayer {
			t.Errorf("bound not increasing: m index %d: %v <= %v",
				i, rows[i].BitsPerPlayer, rows[i-1].BitsPerPlayer)
		}
	}
	// The bound is sub-√n: ratio strictly below 1 and decreasing in n.
	for _, r := range rows {
		if r.SqrtNRatio >= 1 {
			t.Errorf("bound exceeds √n at m-row %+v", r)
		}
	}
}

func TestBehrendShapeConsistent(t *testing.T) {
	s := BehrendShape(25)
	if s.N != 122 || s.T != 25 {
		t.Errorf("shape = %+v", s)
	}
	if err := s.Valid(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperShape(t *testing.T) {
	s := PaperShape(3000)
	if s.T != 1000 {
		t.Errorf("T = %d, want 1000", s.T)
	}
	if s.R < 1 || 2*s.R > s.N {
		t.Errorf("R = %d out of range", s.R)
	}
	if err := s.Valid(); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeMonotone(t *testing.T) {
	if Envelope(0.5) != 1 {
		t.Error("Envelope below 1 not clamped")
	}
	prev := 0.0
	for _, x := range []float64{10, 100, 1e4, 1e8} {
		e := Envelope(x)
		if e <= prev {
			t.Errorf("Envelope not increasing at %v", x)
		}
		prev = e
	}
	// Sub-polynomial: the exponent ratio ln(Envelope(x))/ln(x) = c/√ln x
	// must decrease toward 0 (the crossover against any fixed x^ε lies at
	// astronomically large x, so compare exponents, not values).
	r1 := math.Log(Envelope(1e6)) / math.Log(1e6)
	r2 := math.Log(Envelope(1e12)) / math.Log(1e12)
	if r2 >= r1 {
		t.Errorf("exponent ratio not decreasing: %v -> %v", r1, r2)
	}
}

func TestMISBound(t *testing.T) {
	if MISBound(10) != 5 {
		t.Error("MIS bound is half the matching bound")
	}
}

func TestTablePropagatesErrors(t *testing.T) {
	if _, err := Table([]int{0}); err == nil {
		t.Error("m=0 accepted")
	}
}

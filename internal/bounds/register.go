package bounds

// Registration of the analytic lower-bound calculators with the
// lowerbound registry. cmd/lbcalc renders its tables by evaluating these
// bounds, so the formulas live here exactly once.

import (
	"repro/internal/lowerbound"
)

func shapeParams(row Row) map[string]float64 {
	return map[string]float64{
		"N": float64(row.Shape.N),
		"k": float64(row.K),
		"n": float64(row.NTotal),
		"r": float64(row.Shape.R),
		"t": float64(row.Shape.T),
	}
}

func init() {
	lowerbound.RegisterBound(lowerbound.NewBound(
		"mm/theorem-1", "AKO20 Theorem 1 (constructive Behrend family, k = t)",
		func(m int) (lowerbound.BoundRow, error) {
			row, err := PaperRow(BehrendShape(m))
			if err != nil {
				return lowerbound.BoundRow{}, err
			}
			return lowerbound.BoundRow{
				Bits:    row.BitsPerPlayer,
				Formula: "k·r / (6·(|P| + k·N/t))",
				Params:  shapeParams(row),
			}, nil
		}))

	lowerbound.RegisterBound(lowerbound.NewBound(
		"mis/theorem-2", "AKO20 Theorem 2 (MIS via the §4 reduction)",
		func(m int) (lowerbound.BoundRow, error) {
			row, err := PaperRow(BehrendShape(m))
			if err != nil {
				return lowerbound.BoundRow{}, err
			}
			return lowerbound.BoundRow{
				Bits:    MISBound(row.BitsPerPlayer),
				Formula: "theorem-1 / 2",
				Params:  shapeParams(row),
			}, nil
		}))

	lowerbound.RegisterBound(lowerbound.NewBound(
		"mm/theorem-1-asymptotic", "AKO20 Proposition 2.1 shape (t = N/3, r = N/e^{c√log N})",
		func(n int) (lowerbound.BoundRow, error) {
			shape := PaperShape(n)
			row, err := PaperRow(shape)
			if err != nil {
				return lowerbound.BoundRow{}, err
			}
			p := shapeParams(row)
			p["r_over_36"] = float64(shape.R) / 36
			return lowerbound.BoundRow{
				Bits:    row.BitsPerPlayer,
				Formula: "k·r / (6·(|P| + k·N/t)) at t = N/3",
				Params:  p,
			}, nil
		}))
}

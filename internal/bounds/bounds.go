// Package bounds evaluates the paper's lower-bound formulas exactly: the
// counting step at the end of Theorem 1, the instance parameters of
// D_MM, and the asymptotic envelopes of Proposition 2.1.
//
// The chain ends with
//
//	k·r/6 ≤ I(M_J;Π|Σ,J) ≤ |P|·b + k·N·b/t,
//
// giving b ≥ k·r / (6·(|P| + k·N/t)) with |P| = N − 2r. With the paper's
// k = t this is b ≥ k·r/(6·(N−2r+N·k/t)) ≥ r/12N·k ≈ r/36 for t = N/3 —
// and since N = Θ(√n), the headline Ω(√n / e^Θ(√log n)).
package bounds

import (
	"fmt"
	"math"

	"repro/internal/ap3"
)

// RSShape describes an (r, t)-RS graph on N vertices.
type RSShape struct {
	N, R, T int
}

// Valid reports whether the shape is structurally possible.
func (s RSShape) Valid() error {
	switch {
	case s.N <= 0 || s.R <= 0 || s.T <= 0:
		return fmt.Errorf("bounds: non-positive shape %+v", s)
	case 2*s.R > s.N:
		return fmt.Errorf("bounds: matching size %d exceeds N/2 = %d", s.R, s.N/2)
	}
	return nil
}

// Row is one row of the Theorem 1 parameter table.
type Row struct {
	// Shape is the base RS graph.
	Shape RSShape
	// K is the copy count (the paper: K = T).
	K int
	// NTotal is n = N - 2r + 2rK, the vertex count of D_MM instances.
	NTotal int
	// InfoNeed is k·r/6, the information the referee must receive.
	InfoNeed float64
	// PublicBudget is |P| = N - 2r, the public players' per-bit capacity
	// multiplier.
	PublicBudget int
	// UniqueBudget is k·N/t, the unique players' effective multiplier
	// after the direct-sum division by t.
	UniqueBudget float64
	// BitsPerPlayer is the resulting lower bound on worst-case sketch
	// size: k·r / (6·(|P| + k·N/t)).
	BitsPerPlayer float64
	// SqrtNRatio is BitsPerPlayer / √NTotal, charting the e^-Θ(√log n)
	// factor between the bound and √n.
	SqrtNRatio float64
}

// LowerBound computes the Theorem 1 counting bound for an RS shape and
// copy count.
func LowerBound(shape RSShape, k int) (Row, error) {
	if err := shape.Valid(); err != nil {
		return Row{}, err
	}
	if k < 1 {
		return Row{}, fmt.Errorf("bounds: k must be positive, got %d", k)
	}
	row := Row{
		Shape:        shape,
		K:            k,
		NTotal:       shape.N - 2*shape.R + 2*shape.R*k,
		InfoNeed:     float64(k) * float64(shape.R) / 6,
		PublicBudget: shape.N - 2*shape.R,
		UniqueBudget: float64(k) * float64(shape.N) / float64(shape.T),
	}
	row.BitsPerPlayer = row.InfoNeed / (float64(row.PublicBudget) + row.UniqueBudget)
	row.SqrtNRatio = row.BitsPerPlayer / math.Sqrt(float64(row.NTotal))
	return row, nil
}

// PaperRow evaluates the bound for the paper's exact parameterization of
// a base RS graph: k = t.
func PaperRow(shape RSShape) (Row, error) {
	return LowerBound(shape, shape.T)
}

// BehrendShape returns the shape realized by this repository's
// constructive RS family (package rsgraph): t = m matchings of size
// |ap3.Best(m)| on N = 5m-3 vertices.
func BehrendShape(m int) RSShape {
	return RSShape{N: 5*m - 3, R: len(ap3.Best(m)), T: m}
}

// PaperShape returns the asymptotic shape quoted in Proposition 2.1 for
// an N-vertex RS graph: t = N/3 and r = N/e^{c√(ln N)} with Behrend's
// constant c = 2√(2·ln 2).
func PaperShape(n int) RSShape {
	r := float64(n) / Envelope(float64(n))
	if r < 1 {
		r = 1
	}
	return RSShape{N: n, R: int(r), T: n / 3}
}

// Envelope returns e^{c·√(ln x)} with Behrend's constant c = 2√(2·ln 2):
// the sub-polynomial factor separating the bound from √n.
func Envelope(x float64) float64 {
	if x <= 1 {
		return 1
	}
	c := 2 * math.Sqrt(2*math.Log(2))
	return math.Exp(c * math.Sqrt(math.Log(x)))
}

// MISBound transfers a matching bound through the Section 4 reduction:
// an MIS protocol with b-bit sketches yields a matching protocol with
// 2b-bit sketches, so the MIS lower bound is half the matching bound.
func MISBound(matching float64) float64 { return matching / 2 }

// Table evaluates PaperRow over the constructive family for a list of m
// parameters.
func Table(ms []int) ([]Row, error) {
	rows := make([]Row, 0, len(ms))
	for _, m := range ms {
		row, err := PaperRow(BehrendShape(m))
		if err != nil {
			return nil, fmt.Errorf("bounds: m=%d: %w", m, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

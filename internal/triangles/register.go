package triangles

// Wire registration: a wire spec carries only a graph, so the sampling
// probability is pinned to 1/2 — dense enough to keep the estimate
// informative at smoke scale, sparse enough that the sketches actually
// subsample.

import (
	"repro/internal/graph"
	"repro/internal/protocol"
)

const registrySampleProb = 0.5

func init() {
	protocol.RegisterSketcher("triangle-count-sketch", func(g *graph.Graph) protocol.Sketcher[float64] {
		return New(registrySampleProb)
	})
}

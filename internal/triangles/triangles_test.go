package triangles

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestExactKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.NewBuilder(4).Build(), 0},
		{"path", gen.Path(5), 0},
		{"triangle", gen.Cycle(3), 1},
		{"C4", gen.Cycle(4), 0},
		{"K4", gen.Complete(4), 4},
		{"K5", gen.Complete(5), 10},
		{"K6", gen.Complete(6), 20},
		{"bipartite", gen.CompleteBipartite(3, 4), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Exact(c.g); got != c.want {
				t.Errorf("Exact = %d, want %d", got, c.want)
			}
		})
	}
}

func TestExactAgainstBruteForceQuick(t *testing.T) {
	f := func(seed uint64, nSeed uint8) bool {
		src := rng.NewSource(seed)
		n := 3 + int(nSeed%12)
		g := gen.Gnp(n, 0.4, src)
		brute := 0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c) {
						brute++
					}
				}
			}
		}
		return Exact(g) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSketchFullSamplingExact(t *testing.T) {
	src := rng.NewSource(1)
	coins := rng.NewPublicCoins(2)
	for trial := 0; trial < 10; trial++ {
		g := gen.Gnp(30, 0.3, src)
		res, err := core.Run[float64](New(1.0), g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if int(res.Output+0.5) != Exact(g) {
			t.Errorf("p=1 estimate %v != exact %d", res.Output, Exact(g))
		}
	}
}

func TestSketchConcentratesOnTriangleRichGraphs(t *testing.T) {
	src := rng.NewSource(3)
	g := gen.Gnp(100, 0.4, src) // ~ C(100,3)·0.064 ≈ 10k triangles
	exact := float64(Exact(g))
	coins := rng.NewPublicCoins(4)
	within := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		res, err := core.Run[float64](New(0.5), g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Output-exact) <= 0.3*exact {
			within++
		}
	}
	if within < trials*8/10 {
		t.Errorf("estimate within 30%% in %d/%d trials (exact %v)", within, trials, exact)
	}
}

func TestSketchRejectsBadProbability(t *testing.T) {
	g := gen.Cycle(3)
	for _, p := range []float64{0, -1, 1.5} {
		if _, err := core.Run[float64](New(p), g, rng.NewPublicCoins(5)); err == nil {
			t.Errorf("probability %v accepted", p)
		}
	}
}

func TestSketchSavesBits(t *testing.T) {
	g := gen.Gnp(200, 0.5, rng.NewSource(6))
	res, err := core.Run[float64](New(0.2), g, rng.NewPublicCoins(7))
	if err != nil {
		t.Fatal(err)
	}
	fullBits := g.MaxDegree() * 8
	if res.MaxSketchBits >= fullBits/2 {
		t.Errorf("sampled sketch %d bits vs full %d", res.MaxSketchBits, fullBits)
	}
}

func TestEstimatorUnbiasedEmpirically(t *testing.T) {
	// Mean over many independent sampling seeds should approach the
	// truth.
	src := rng.NewSource(8)
	g := gen.Gnp(60, 0.3, src)
	exact := float64(Exact(g))
	if exact == 0 {
		t.Skip("no triangles; reseed")
	}
	sum := 0.0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		res, err := core.Run[float64](New(0.4), g, rng.NewPublicCoins(uint64(trial)+1000))
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Output
	}
	mean := sum / trials
	if math.Abs(mean-exact) > 0.15*exact {
		t.Errorf("empirical mean %v vs exact %v — bias beyond sampling noise", mean, exact)
	}
}

func BenchmarkExactN200(b *testing.B) {
	g := gen.Gnp(200, 0.2, rng.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(g)
	}
}

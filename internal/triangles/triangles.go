// Package triangles implements subgraph (triangle) counting in the
// distributed sketching model, after Ahn–Guha–McGregor [2] — the
// "subgraph counting" entry in the paper's list of polylog-sketchable
// problems.
//
// The estimator is sample-and-rescale: a public hash keeps each edge
// with probability p (both endpoints agree on the decision), every
// vertex reports its surviving incident edges, and the referee counts
// triangles in the sampled graph and rescales by p^-3. The estimate is
// unbiased; its concentration needs the triangle count to dominate p^-3
// (measured, not assumed — experiment E19 reports the error
// distribution). Exact counting is provided as the reference.
package triangles

import (
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashing"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Exact returns the number of triangles in g, by neighborhood
// intersection over each edge's lower-degree endpoint (O(Σ deg²)).
func Exact(g *graph.Graph) int {
	count := 0
	for _, e := range g.Edges() { // e.U < e.V
		a, b := e.U, e.V
		if g.Degree(a) > g.Degree(b) {
			a, b = b, a
		}
		g.EachNeighbor(a, func(w int) {
			// Count each triangle once, via its largest vertex: require
			// w above both edge endpoints.
			if w > e.V && g.HasEdge(b, w) {
				count++
			}
		})
	}
	return count
}

// Protocol is the sample-and-rescale estimator. Output is the estimated
// triangle count.
type Protocol struct {
	// SampleProb is the public edge-sampling probability in (0, 1].
	SampleProb float64
}

var _ core.Protocol[float64] = (*Protocol)(nil)

// New returns the estimator.
func New(sampleProb float64) *Protocol { return &Protocol{SampleProb: sampleProb} }

// Name implements core.Protocol.
func (p *Protocol) Name() string { return "triangle-count-sketch" }

// keeps is the public per-edge sampling decision.
func keeps(n, u, v int, prob float64, coins *rng.PublicCoins) bool {
	fam := hashing.NewPairwise(coins.Derive("triangle-sample").Source())
	e := graph.NewEdge(u, v)
	return float64(fam.Hash(uint64(e.U)*uint64(n)+uint64(e.V))%1000000)/1000000 < prob
}

// Sketch implements core.Protocol.
func (p *Protocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if p.SampleProb <= 0 || p.SampleProb > 1 {
		return nil, fmt.Errorf("triangles: sample probability %v outside (0,1]", p.SampleProb)
	}
	w := &bitio.Writer{}
	idWidth := bitio.UintWidth(view.N)
	var kept []int
	for _, u := range view.Neighbors {
		if keeps(view.N, view.ID, u, p.SampleProb, coins) {
			kept = append(kept, u)
		}
	}
	w.WriteUvarint(uint64(len(kept)))
	for _, u := range kept {
		w.WriteUint(uint64(u), idWidth)
	}
	return w, nil
}

// Decode implements core.Protocol.
func (p *Protocol) Decode(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) (float64, error) {
	idWidth := bitio.UintWidth(n)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		k, err := sketches[v].ReadUvarint()
		if err != nil {
			return 0, fmt.Errorf("triangles: sketch %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := sketches[v].ReadUint(idWidth)
			if err != nil {
				return 0, fmt.Errorf("triangles: sketch %d: %w", v, err)
			}
			if int(u) != v && int(u) < n {
				b.AddEdge(v, int(u))
			}
		}
	}
	sampled := Exact(b.Build())
	scale := 1 / (p.SampleProb * p.SampleProb * p.SampleProb)
	return float64(sampled) * scale, nil
}

// Verify implements protocol.Sketcher. The estimator is unbiased but
// noisy, so the audit is a coarse band: the estimate must land within a
// factor 2 of the exact count (with one triangle of absolute slack, so
// near-triangle-free graphs do not flap). Size rounds the estimate.
func (p *Protocol) Verify(g *graph.Graph, out float64) protocol.Outcome {
	exact := float64(Exact(g))
	lo, hi := exact/2-1, 2*exact+1
	return protocol.Outcome{
		Kind:    "value",
		Size:    int(math.Round(out)),
		Value:   out,
		Checked: true,
		Valid:   out >= lo && out <= hi,
	}
}

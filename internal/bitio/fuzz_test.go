package bitio

import (
	"bytes"
	"testing"
)

// FuzzUvarintRoundTrip checks write/read symmetry for arbitrary values.
func FuzzUvarintRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(127))
	f.Add(uint64(1) << 40)
	f.Fuzz(func(t *testing.T, v uint64) {
		if v == ^uint64(0) {
			v-- // encoder stores v+1
		}
		var w Writer
		w.WriteUvarint(v)
		got, err := ReaderFor(&w).ReadUvarint()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	})
}

// FuzzReaderNeverPanics feeds arbitrary byte soup to every reader method;
// readers must fail gracefully, never panic or over-read.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff, 0x00, 0xa5}, uint8(20))
	f.Fuzz(func(t *testing.T, data []byte, ops uint8) {
		r := NewReader(data, len(data)*8)
		for i := uint8(0); i < ops%32; i++ {
			switch i % 4 {
			case 0:
				_, _ = r.ReadBit()
			case 1:
				_, _ = r.ReadUint(int(i) % 65)
			case 2:
				_, _ = r.ReadUvarint()
			case 3:
				_, _ = r.ReadBytes(int(i) % 5)
			}
			if r.Remaining() < 0 {
				t.Fatal("reader over-consumed")
			}
		}
	})
}

// FuzzMixedStream writes a deterministic interpretation of the fuzz input
// and requires exact read-back.
func FuzzMixedStream(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var w Writer
		for _, b := range data {
			width := int(b%64) + 1
			w.WriteUint(uint64(b), width)
			w.WriteBit(b&1 == 1)
		}
		w.WriteBytes(data)
		r := ReaderFor(&w)
		for _, b := range data {
			width := int(b%64) + 1
			v, err := r.ReadUint(width)
			if err != nil {
				t.Fatal(err)
			}
			want := uint64(b)
			if width < 64 {
				want &= (1 << uint(width)) - 1
			}
			if v != want {
				t.Fatalf("uint mismatch: %d != %d (width %d)", v, want, width)
			}
			bit, err := r.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			if bit != (b&1 == 1) {
				t.Fatal("bit mismatch")
			}
		}
		got, err := r.ReadBytes(len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("bytes mismatch")
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bits left over", r.Remaining())
		}
	})
}

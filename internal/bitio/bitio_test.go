package bitio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	var w Writer
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got, want := w.Len(), len(pattern); got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	r := ReaderFor(&w)
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit #%d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %v, want %v", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err != ErrShortMessage {
		t.Errorf("read past end: err = %v, want ErrShortMessage", err)
	}
}

func TestWriteReadUint(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
	}{
		{0, 0},
		{0, 1},
		{1, 1},
		{5, 3},
		{255, 8},
		{1 << 30, 31},
		{math.MaxUint64, 64},
		{0xdeadbeefcafe, 48},
	}
	var w Writer
	for _, c := range cases {
		w.WriteUint(c.v, c.width)
	}
	r := ReaderFor(&w)
	for _, c := range cases {
		got, err := r.ReadUint(c.width)
		if err != nil {
			t.Fatalf("ReadUint(%d): %v", c.width, err)
		}
		if got != c.v {
			t.Errorf("ReadUint(%d) = %d, want %d", c.width, got, c.v)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining() = %d, want 0", r.Remaining())
	}
}

func TestUintWidthMasksValue(t *testing.T) {
	var w Writer
	w.WriteUint(0xff, 4) // only low 4 bits should be kept
	r := ReaderFor(&w)
	got, err := r.ReadUint(4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xf {
		t.Errorf("got %#x, want 0xf", got)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 2, 3, 7, 8, 127, 128, 1 << 20, math.MaxUint64 - 1}
	var w Writer
	for _, v := range values {
		w.WriteUvarint(v)
	}
	r := ReaderFor(&w)
	for _, want := range values {
		got, err := r.ReadUvarint()
		if err != nil {
			t.Fatalf("ReadUvarint: %v", err)
		}
		if got != want {
			t.Errorf("uvarint round trip = %d, want %d", got, want)
		}
	}
}

func TestUvarintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		if v == math.MaxUint64 {
			v-- // WriteUvarint stores v+1 internally
		}
		var w Writer
		w.WriteUvarint(v)
		got, err := ReaderFor(&w).ReadUvarint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintCostIsLogarithmic(t *testing.T) {
	for _, v := range []uint64{0, 1, 100, 1 << 40} {
		var w Writer
		w.WriteUvarint(v)
		bound := 2*64 + 1
		if v+1 > 0 {
			bound = 2*bitsLen(v+1) - 1
		}
		if w.Len() != bound {
			t.Errorf("uvarint(%d) cost %d bits, want %d", v, w.Len(), bound)
		}
	}
}

func bitsLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

func TestWriteReadBytes(t *testing.T) {
	var w Writer
	w.WriteBit(true) // misalign on purpose
	payload := []byte{0x00, 0xff, 0x5a, 0xa5}
	w.WriteBytes(payload)
	r := ReaderFor(&w)
	if _, err := r.ReadBit(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("ReadBytes = %x, want %x", got, payload)
	}
}

func TestReadErrors(t *testing.T) {
	var w Writer
	w.WriteUint(3, 2)
	r := ReaderFor(&w)
	if _, err := r.ReadUint(3); err != ErrShortMessage {
		t.Errorf("short ReadUint err = %v, want ErrShortMessage", err)
	}
	if _, err := r.ReadUint(65); err == nil {
		t.Error("ReadUint(65) succeeded, want error")
	}
	if _, err := r.ReadBytes(1); err != ErrShortMessage {
		t.Errorf("short ReadBytes err = %v, want ErrShortMessage", err)
	}
	empty := NewReader(nil, 0)
	if _, err := empty.ReadUvarint(); err != ErrShortMessage {
		t.Errorf("empty ReadUvarint err = %v, want ErrShortMessage", err)
	}
}

func TestUintWidth(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := UintWidth(c.n); got != c.want {
			t.Errorf("UintWidth(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMixedStreamRoundTripQuick(t *testing.T) {
	f := func(a uint64, b byte, c bool, widthSeed uint8) bool {
		width := int(widthSeed%64) + 1
		a &= (1 << uint(width)) - 1
		var w Writer
		w.WriteUint(a, width)
		w.WriteBit(c)
		w.WriteBytes([]byte{b})
		w.WriteUvarint(a)
		r := ReaderFor(&w)
		ga, err1 := r.ReadUint(width)
		gc, err2 := r.ReadBit()
		gb, err3 := r.ReadBytes(1)
		gv, err4 := r.ReadUvarint()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return ga == a && gc == c && gb[0] == b && gv == a && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendConcatenatesExactBits(t *testing.T) {
	// Property: for arbitrary bit strings a, b the appended writer holds
	// exactly the bits of a followed by the bits of b, with no padding.
	f := func(abits, bbits []bool) bool {
		var a, b Writer
		for _, bit := range abits {
			a.WriteBit(bit)
		}
		for _, bit := range bbits {
			b.WriteBit(bit)
		}
		var w Writer
		w.Append(&a)
		w.Append(&b)
		if w.Len() != len(abits)+len(bbits) {
			return false
		}
		r := ReaderFor(&w)
		for _, want := range append(append([]bool(nil), abits...), bbits...) {
			got, err := r.ReadBit()
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendUnalignedOffsets(t *testing.T) {
	// Cross every source length against every destination offset around
	// the 64-bit chunk boundary Append reads in.
	for dstOff := 0; dstOff < 9; dstOff++ {
		for srcLen := 0; srcLen < 140; srcLen++ {
			var src Writer
			for i := 0; i < srcLen; i++ {
				src.WriteBit(i%3 == 0)
			}
			var w Writer
			for i := 0; i < dstOff; i++ {
				w.WriteBit(true)
			}
			w.Append(&src)
			if w.Len() != dstOff+srcLen {
				t.Fatalf("off=%d len=%d: Len()=%d", dstOff, srcLen, w.Len())
			}
			r := ReaderFor(&w)
			for i := 0; i < dstOff; i++ {
				if got, _ := r.ReadBit(); !got {
					t.Fatalf("off=%d len=%d: prefix bit %d clobbered", dstOff, srcLen, i)
				}
			}
			for i := 0; i < srcLen; i++ {
				got, err := r.ReadBit()
				if err != nil || got != (i%3 == 0) {
					t.Fatalf("off=%d len=%d: bit %d = %v (err %v)", dstOff, srcLen, i, got, err)
				}
			}
		}
	}
}

package bitio

// Ownership-transfer writers for the block sketching fast path. Sealing a
// round normally copies every message's bits into transcript-owned
// buffers — the immutability guarantee — which at n = 10⁴ re-moves ~60 MB
// of sketch bytes per AGM run. An owned writer makes the copy
// unnecessary without weakening the guarantee: the producer declares up
// front that it will not retain the writer after handing it to the
// engine, so the transcript may take the buffer itself (Detach) and the
// writer is left empty. Plain writers (which protocols may legally
// retain) and pooled writers (which are recycled) keep the copy path.

// NewOwnedWriter returns an empty writer whose buffer the transcript may
// steal at seal time. The producer must not use the writer after handing
// it to the engine. Release is a no-op for owned writers.
func NewOwnedWriter() *Writer { return &Writer{owned: true} }

// Owned reports whether the writer's buffer may be stolen at seal time.
func (w *Writer) Owned() bool { return w.owned }

// Detach surrenders the writer's buffer: it returns the written bits
// (packed into exactly ⌈nbit/8⌉ bytes) and the bit count, leaving the
// writer empty and un-owned. Only the transcript's seal path calls this;
// after Detach nothing aliases the returned buffer.
func (w *Writer) Detach() ([]byte, int) {
	buf, nbit := w.Bytes(), w.nbit
	w.buf, w.nbit, w.owned = nil, 0, false
	return buf, nbit
}

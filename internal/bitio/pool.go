package bitio

import "sync"

// Writer pooling for the sketch hot path. A protocol run allocates one
// Writer — and grows one byte buffer — per (round, vertex) broadcast;
// the engine seals rounds by copying every message's bits into the
// transcript, after which the Writer is garbage. Pooled writers close
// that loop: broadcast paths acquire with NewPooledWriter, the engine
// calls Release once the round is sealed, and the buffer is reused by a
// later vertex instead of being re-grown from nil.
//
// Contract: a pooled writer must not be retained by its producer after
// it has been handed to the engine (the engine owns its release). Code
// that needs to keep a writer — or doesn't know who will release it —
// uses plain &Writer{} values, for which Release is a no-op; pooling is
// purely opt-in and never changes any transcript bit.

var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// NewPooledWriter returns an empty writer drawn from the scratch pool.
// It behaves exactly like &Writer{} except that Release recycles it.
func NewPooledWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.pooled = true
	return w
}

// Release returns a pooled writer's buffer to the scratch pool; for
// writers not obtained from NewPooledWriter it does nothing. The writer
// must not be used after Release.
func Release(w *Writer) {
	if w == nil || !w.pooled {
		return
	}
	w.Reset()
	w.pooled = false
	writerPool.Put(w)
}

// Reset empties the writer, keeping its buffer capacity for reuse. The
// retained bytes need no scrubbing here: growth (grow) zeroes every byte
// it reveals, so stale capacity contents can never reach Bytes().
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

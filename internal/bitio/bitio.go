// Package bitio provides bit-granular encoding and decoding of sketch
// messages.
//
// The distributed sketching model measures communication cost in bits, so
// every protocol in this repository serializes its messages through a
// Writer and deserializes through a Reader. Writer tracks the exact number
// of bits appended, which the simulator reports as the per-player sketch
// size.
package bitio

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrShortMessage is returned by Reader methods when a read runs past the
// end of the encoded message.
var ErrShortMessage = errors.New("bitio: read past end of message")

// Writer accumulates a bit string. The zero value is an empty writer ready
// for use.
type Writer struct {
	buf  []byte
	nbit int
	// pooled marks writers drawn from the scratch pool (pool.go), so
	// Release recycles exactly those and is a no-op for plain values.
	pooled bool
	// owned marks writers whose buffer the producer relinquishes at seal
	// time (NewOwnedWriter/Detach): the engine's transcript may steal it
	// instead of copying. Plain and pooled writers are never stolen from.
	owned bool
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the written bits packed into bytes (final byte zero-padded).
// The returned slice aliases the writer's internal buffer.
func (w *Writer) Bytes() []byte { return w.buf[:(w.nbit+7)/8] }

// grow extends the buffer's length to at least need bytes, in one step.
// Revealed bytes are always zero: fresh allocations come zeroed, and
// re-sliced spare capacity (left dirty by Reset) is cleared explicitly, so
// the invariant "every byte at or past the bit frontier is zero" — which
// WriteBit/WriteUint rely on when OR-ing into partial bytes — holds no
// matter how the buffer got here.
func (w *Writer) grow(need int) {
	n := len(w.buf)
	if need <= n {
		return
	}
	if need <= cap(w.buf) {
		w.buf = w.buf[:need]
		clear(w.buf[n:need])
		return
	}
	newCap := 2 * cap(w.buf)
	if newCap < need {
		newCap = need
	}
	buf := make([]byte, need, newCap)
	copy(buf, w.buf)
	w.buf = buf
}

// Grow pre-extends the buffer to hold `width` more bits beyond the current
// frontier, without writing any. A producer that knows its exact message
// size calls Grow once and every subsequent Write* appends without a
// growth check — the block sketching path's zero-realloc contract.
func (w *Writer) Grow(width int) {
	if width < 0 {
		panic(fmt.Sprintf("bitio: invalid Grow width %d", width))
	}
	w.grow((w.nbit + width + 7) / 8)
}

// WriteZeros appends `width` zero bits in O(growth) time: the buffer is
// bulk-extended (grow guarantees revealed bytes are zero) and only the bit
// counter advances. Sketch serializers use it for the long all-zero cell
// runs above a sketch's touched levels, where the bits are known to be
// zero without looking at them.
func (w *Writer) WriteZeros(width int) {
	if width < 0 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	w.grow((w.nbit + width + 7) / 8)
	w.nbit += width
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	idx, off := w.nbit/8, uint(w.nbit%8)
	if idx == len(w.buf) {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[idx] |= 1 << off
	}
	w.nbit++
}

// WriteUint appends the low `width` bits of v, least significant bit first.
// Width must be in [0, 64].
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	// Grow the buffer to hold the new bits (no-op after a precise Grow).
	w.grow((w.nbit + width + 7) / 8)
	off := uint(w.nbit % 8)
	idx := w.nbit / 8
	w.nbit += width
	// Fill the partial byte, then whole bytes.
	if off != 0 {
		w.buf[idx] |= byte(v << off)
		consumed := 8 - int(off)
		if width <= consumed {
			return
		}
		v >>= uint(consumed)
		width -= consumed
		idx++
	}
	for width > 0 {
		w.buf[idx] = byte(v)
		v >>= 8
		width -= 8
		idx++
	}
}

// WriteUvarint appends v using a self-delimiting Elias-gamma-style code:
// the bit length of v+1 in unary, then the value. Costs 2*floor(log2(v+1))+1
// bits.
func (w *Writer) WriteUvarint(v uint64) {
	n := bits.Len64(v + 1) // >= 1
	for i := 0; i < n-1; i++ {
		w.WriteBit(false)
	}
	w.WriteBit(true)
	w.WriteUint(v+1, n-1) // high bit implicit
}

// FlipBit inverts the bit at position pos, which must be in [0, Len()).
// Fault-injection layers use it to corrupt an already-written message
// in place without changing its length.
func (w *Writer) FlipBit(pos int) {
	if pos < 0 || pos >= w.nbit {
		panic(fmt.Sprintf("bitio: FlipBit position %d out of range [0,%d)", pos, w.nbit))
	}
	w.buf[pos/8] ^= 1 << uint(pos%8)
}

// WriteBytes appends the given bytes verbatim (8 bits per byte).
func (w *Writer) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteUint(uint64(b), 8)
	}
}

// Append appends every bit of o to w, without any padding or framing: the
// result is the exact bit string "w then o". Protocols that concatenate
// independently-produced sub-sketches into one message (e.g. one forest
// sketch per weight threshold) use it to keep the combined length equal to
// the sum of the parts.
func (w *Writer) Append(o *Writer) {
	r := ReaderFor(o)
	for rem := o.Len(); rem > 0; {
		k := rem
		if k > 64 {
			k = 64
		}
		v, _ := r.ReadUint(k)
		w.WriteUint(v, k)
		rem -= k
	}
}

// Reader consumes a bit string produced by Writer.
type Reader struct {
	buf  []byte
	nbit int
	pos  int
}

// NewReader returns a reader over the first nbit bits of buf.
func NewReader(buf []byte, nbit int) *Reader {
	return &Reader{buf: buf, nbit: nbit}
}

// ReaderFor returns a reader over everything written to w.
func ReaderFor(w *Writer) *Reader { return NewReader(w.Bytes(), w.Len()) }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit consumes and returns one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrShortMessage
	}
	idx, off := r.pos/8, uint(r.pos%8)
	r.pos++
	return r.buf[idx]&(1<<off) != 0, nil
}

// ReadUint consumes `width` bits and returns them as an unsigned integer,
// least significant bit first.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitio: invalid width %d", width)
	}
	if r.Remaining() < width {
		return 0, ErrShortMessage
	}
	var v uint64
	got := 0
	off := uint(r.pos % 8)
	idx := r.pos / 8
	r.pos += width
	if off != 0 {
		v = uint64(r.buf[idx] >> off)
		got = 8 - int(off)
		idx++
	}
	for got < width {
		v |= uint64(r.buf[idx]) << uint(got)
		got += 8
		idx++
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	return v, nil
}

// ReadUvarint consumes a value written by WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b {
			break
		}
		zeros++
		if zeros > 64 {
			return 0, fmt.Errorf("bitio: malformed uvarint")
		}
	}
	low, err := r.ReadUint(zeros)
	if err != nil {
		return 0, err
	}
	return (1<<uint(zeros) | low) - 1, nil
}

// ReadBytes consumes n bytes written by WriteBytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if r.Remaining() < 8*n {
		return nil, ErrShortMessage
	}
	out := make([]byte, n)
	for i := range out {
		v, _ := r.ReadUint(8)
		out[i] = byte(v)
	}
	return out, nil
}

// UintWidth returns the number of bits needed to represent values in
// [0, n-1]; it is 0 when n <= 1.
func UintWidth(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

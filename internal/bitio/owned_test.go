package bitio

import (
	"bytes"
	"math/rand"
	"testing"
)

// writeMixed drives a deterministic mixed write sequence against w,
// interleaving WriteUint, WriteBit, and — when zeros is set — WriteZeros
// runs, so the block-path primitives are exercised against the classic
// bit-at-a-time encoding.
func writeMixed(w *Writer, seed int64, zeros bool) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < 200; i++ {
		switch r.Intn(4) {
		case 0:
			w.WriteBit(r.Intn(2) == 1)
		case 1:
			width := r.Intn(65)
			w.WriteUint(r.Uint64(), width)
		case 2:
			n := r.Intn(300)
			if zeros {
				w.WriteZeros(n)
			} else {
				for j := 0; j < n; j++ {
					w.WriteBit(false)
				}
			}
		case 3:
			w.WriteUvarint(r.Uint64() >> uint(r.Intn(64)))
		}
	}
}

// TestWriteZerosMatchesBitLoop proves WriteZeros is bit-identical to the
// equivalent WriteBit(false) loop across mixed, unaligned streams.
func TestWriteZerosMatchesBitLoop(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		fast, slow := &Writer{}, &Writer{}
		writeMixed(fast, seed, true)
		writeMixed(slow, seed, false)
		if fast.Len() != slow.Len() || !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Fatalf("seed %d: WriteZeros diverges from bit loop (%d vs %d bits)", seed, fast.Len(), slow.Len())
		}
	}
}

// TestGrowPreservesBits proves pre-growing (at any point in the stream)
// never changes the written bits, and that a precise Grow makes the
// subsequent writes allocation-free.
func TestGrowPreservesBits(t *testing.T) {
	plain := &Writer{}
	writeMixed(plain, 3, true)

	grown := &Writer{}
	grown.Grow(plain.Len())
	writeMixed(grown, 3, true)
	if grown.Len() != plain.Len() || !bytes.Equal(grown.Bytes(), plain.Bytes()) {
		t.Fatal("Grow changed written bits")
	}

	// Mid-stream Grow.
	mid := &Writer{}
	mid.WriteUint(0xdead, 13)
	mid.Grow(4096)
	mid.WriteUint(0xbeef, 17)
	ref := &Writer{}
	ref.WriteUint(0xdead, 13)
	ref.WriteUint(0xbeef, 17)
	if mid.Len() != ref.Len() || !bytes.Equal(mid.Bytes(), ref.Bytes()) {
		t.Fatal("mid-stream Grow changed written bits")
	}
}

// TestGrowThenWriteDoesNotAllocate pins the zero-realloc contract the
// block sketch path depends on: after one precise Grow, appending the
// declared number of bits performs no allocation.
func TestGrowThenWriteDoesNotAllocate(t *testing.T) {
	w := &Writer{}
	const words = 64
	avg := testing.AllocsPerRun(100, func() {
		w.Reset()
		w.Grow(words * 61)
		for i := 0; i < words; i++ {
			w.WriteUint(uint64(i)*0x9e3779b97f4a7c15, 61)
		}
	})
	if avg != 0 {
		t.Fatalf("Grow+WriteUint allocates %v times per run, want 0", avg)
	}
}

// TestResetReuseAfterDirtyBuffer proves that a writer whose recycled
// capacity holds stale nonzero bytes still produces clean bits: grow
// scrubs every byte it reveals.
func TestResetReuseAfterDirtyBuffer(t *testing.T) {
	w := &Writer{}
	for i := 0; i < 100; i++ {
		w.WriteUint(^uint64(0), 64) // all-ones garbage
	}
	w.Reset()
	w.WriteZeros(777)
	w.WriteUint(5, 3)
	ref := &Writer{}
	ref.WriteZeros(777)
	ref.WriteUint(5, 3)
	if w.Len() != ref.Len() || !bytes.Equal(w.Bytes(), ref.Bytes()) {
		t.Fatal("dirty recycled capacity leaked into the bit stream")
	}
}

// TestOwnedDetach pins the ownership-transfer contract: Detach returns
// exactly the written bytes and bit count, and empties the writer.
func TestOwnedDetach(t *testing.T) {
	w := NewOwnedWriter()
	if !w.Owned() {
		t.Fatal("NewOwnedWriter not owned")
	}
	w.Grow(1000) // over-grown: Detach must still trim to written bytes
	w.WriteUint(0x1234, 13)
	want := append([]byte(nil), w.Bytes()...)
	buf, nbit := w.Detach()
	if nbit != 13 || !bytes.Equal(buf, want) || len(buf) != 2 {
		t.Fatalf("Detach = (%x, %d), want (%x, 13) with 2 bytes", buf, nbit, want)
	}
	if w.Owned() || w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Detach left the writer non-empty or owned")
	}
	// Release must be a no-op for owned writers (they are not pooled).
	v := NewOwnedWriter()
	v.WriteBit(true)
	Release(v)
	if v.Len() != 1 {
		t.Fatal("Release mutated an owned writer")
	}
}

package coloring

// Wire registration: the promised Δ is taken from the actual input graph
// (the standard formulation assumes Δ is known to all parties), list
// size and referee attempts stay at their documented defaults.

import (
	"repro/internal/graph"
	"repro/internal/protocol"
)

func init() {
	protocol.RegisterSketcher("palette-sparsification", func(g *graph.Graph) protocol.Sketcher[[]int] {
		return New(Config{MaxDegree: g.MaxDegree()})
	})
}

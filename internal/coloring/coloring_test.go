package coloring

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func run(t *testing.T, g *graph.Graph, cfg Config, coins *rng.PublicCoins) ([]int, int) {
	t.Helper()
	cfg.MaxDegree = g.MaxDegree()
	res, err := core.Run[[]int](New(cfg), g, coins)
	if err != nil {
		t.Fatalf("coloring failed on %v: %v", g, err)
	}
	return res.Output, res.MaxSketchBits
}

func TestColorsSimpleFamilies(t *testing.T) {
	coins := rng.NewPublicCoins(1)
	for name, g := range map[string]*graph.Graph{
		"path":  gen.Path(10),
		"cycle": gen.Cycle(9),
		"star":  gen.Star(12),
		"grid":  gen.Grid(5, 5),
	} {
		colors, _ := run(t, g, Config{}, coins.Derive(name))
		if !graph.IsProperColoring(g, colors, g.MaxDegree()+1) {
			t.Errorf("%s: improper or out-of-palette coloring", name)
		}
	}
}

func TestColorsRandomGraphs(t *testing.T) {
	coins := rng.NewPublicCoins(2)
	src := rng.NewSource(3)
	for trial := 0; trial < 10; trial++ {
		g := gen.Gnp(80, 0.15, src)
		colors, _ := run(t, g, Config{}, coins.DeriveIndex(trial))
		if !graph.IsProperColoring(g, colors, g.MaxDegree()+1) {
			t.Errorf("trial %d: improper coloring", trial)
		}
	}
}

func TestColorsDenseGraph(t *testing.T) {
	// Dense regime where lists are far smaller than the palette.
	coins := rng.NewPublicCoins(4)
	g := gen.Gnp(150, 0.5, rng.NewSource(5))
	colors, _ := run(t, g, Config{}, coins)
	if !graph.IsProperColoring(g, colors, g.MaxDegree()+1) {
		t.Error("dense graph coloring improper")
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	coins := rng.NewPublicCoins(6)
	for _, n := range []int{1, 4} {
		g := graph.NewBuilder(n).Build()
		res, err := core.Run[[]int](New(Config{MaxDegree: 0}), g, coins)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !graph.IsProperColoring(g, res.Output, 1) {
			t.Errorf("n=%d: empty graph not colored with single color", n)
		}
	}
}

func TestDegreePromiseViolationDetected(t *testing.T) {
	g := gen.Star(5)
	_, err := core.Run[[]int](New(Config{MaxDegree: 1}), g, rng.NewPublicCoins(7))
	if err == nil {
		t.Error("degree promise violation not reported")
	}
}

func TestListsAreSharedKnowledge(t *testing.T) {
	// Palette much larger than the list so lists are proper subsets.
	p := New(Config{MaxDegree: 500})
	coins := rng.NewPublicCoins(8)
	a := p.list(100, 7, coins)
	b := p.list(100, 7, coins)
	if len(a) != len(b) {
		t.Fatal("same vertex produced different list sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same vertex produced different lists")
		}
	}
	c := p.list(100, 8, coins)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("distinct vertices got identical lists (suspicious)")
	}
}

func TestListSizeCappedAtPalette(t *testing.T) {
	p := New(Config{MaxDegree: 2, ListSize: 100})
	l := p.list(10, 0, rng.NewPublicCoins(9))
	if len(l) != 3 {
		t.Errorf("list size %d, want 3 (palette size)", len(l))
	}
	for _, c := range l {
		if c < 0 || c > 2 {
			t.Errorf("color %d outside palette", c)
		}
	}
}

func TestListsWithinPalette(t *testing.T) {
	p := New(Config{MaxDegree: 50})
	coins := rng.NewPublicCoins(10)
	for v := 0; v < 30; v++ {
		seen := make(map[int]bool)
		for _, c := range p.list(200, v, coins) {
			if c < 0 || c > 50 {
				t.Fatalf("color %d outside palette", c)
			}
			if seen[c] {
				t.Fatalf("duplicate color %d in list of %d", c, v)
			}
			seen[c] = true
		}
	}
}

func TestSketchOmitsNonConflictingNeighbors(t *testing.T) {
	// With tiny lists in a huge palette, most neighbors do not conflict,
	// so sketches must be much smaller than degree * log n bits.
	g := gen.Complete(60) // Δ = 59, palette of 60
	cfg := Config{MaxDegree: 59, ListSize: 3, Attempts: 2}
	p := New(cfg)
	view := core.Views(g)[0]
	w, err := p.Sketch(view, rng.NewPublicCoins(11))
	if err != nil {
		t.Fatal(err)
	}
	fullBits := view.Degree() * bitsFor(60)
	if w.Len() >= fullBits {
		t.Errorf("sketch %d bits, full neighborhood would be %d; no sparsification happened", w.Len(), fullBits)
	}
}

func bitsFor(n int) int {
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}

func TestSuccessRateAcceptable(t *testing.T) {
	src := rng.NewSource(12)
	g := gen.Gnp(100, 0.25, src)
	p := New(Config{MaxDegree: g.MaxDegree()})
	stats := core.EstimateSuccess[[]int](p, func(i int) core.Trial[[]int] {
		return core.Trial[[]int]{
			Graph:  g,
			Verify: func(out []int) bool { return graph.IsProperColoring(g, out, g.MaxDegree()+1) },
		}
	}, 10, rng.NewPublicCoins(13))
	if stats.SuccessRate() < 0.9 {
		t.Errorf("coloring success rate %.2f", stats.SuccessRate())
	}
}

func BenchmarkColoringN200(b *testing.B) {
	g := gen.Gnp(200, 0.3, rng.NewSource(1))
	p := New(Config{MaxDegree: g.MaxDegree()})
	coins := rng.NewPublicCoins(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run[[]int](p, g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

// Package coloring implements the (Δ+1)-vertex-coloring sketches of
// Assadi, Chen and Khanna [SODA'19] via palette sparsification — the
// problem the paper singles out (Section 1.1) as the closest symmetry-
// breaking cousin of maximal matching/MIS that nevertheless admits
// O(log³ n)-bit sketches, in sharp contrast to Theorems 1 and 2.
//
// Palette sparsification: every vertex v draws a random list L(v) of
// Θ(log n) colors from the palette [Δ+1] using public coins keyed by its
// ID, so every party can reconstruct every list. ACK19 prove that w.h.p.
// G admits a proper coloring with each v colored from L(v); moreover only
// edges whose endpoints' lists intersect can ever conflict, and each
// vertex has O(log² n) such neighbors in expectation when Δ ≫ log² n.
// Hence the sketch of v is just the list of its conflict neighbors —
// O(log³ n) bits — and the referee list-colors the conflict graph.
//
// The referee here finds the list coloring with randomized greedy plus
// restarts and a most-constrained-first heuristic; ACK19 guarantee
// existence, and at the scales this repository simulates the search
// succeeds with high empirical probability (tracked by experiment E10).
package coloring

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Config parameterizes the protocol.
type Config struct {
	// MaxDegree is the promised maximum degree Δ of the input graph. The
	// palette is [0, MaxDegree+1). Required (the standard formulation
	// assumes Δ is known to all parties).
	MaxDegree int
	// ListSize is the per-vertex palette sample size; 0 selects
	// ceil(6·ln n) capped at Δ+1.
	ListSize int
	// Attempts is the number of randomized referee restarts; 0 selects 50.
	Attempts int
}

// Protocol is the palette sparsification sketching protocol. Its output
// is a color per vertex in [0, Δ+1).
//
// Protocol values memoize the publicly-derivable color lists per
// (n, coins) pair — every party would compute identical lists, so the
// simulator derives each once. The memo is mutex-guarded: the execution
// engine sketches a round's vertices concurrently.
type Protocol struct {
	cfg Config

	mu   sync.Mutex
	memo struct {
		n     int
		seed  uint64
		lists [][]int
	}
}

var _ core.Protocol[[]int] = (*Protocol)(nil)

// New returns the protocol for graphs of maximum degree cfg.MaxDegree.
func New(cfg Config) *Protocol { return &Protocol{cfg: cfg} }

// Name implements core.Protocol.
func (p *Protocol) Name() string { return "palette-sparsification" }

func (p *Protocol) listSize(n int) int {
	ls := p.cfg.ListSize
	if ls == 0 {
		ls = int(math.Ceil(6 * math.Log(float64(n)+1)))
	}
	if ls > p.cfg.MaxDegree+1 {
		ls = p.cfg.MaxDegree + 1
	}
	if ls < 1 {
		ls = 1
	}
	return ls
}

// list reconstructs vertex v's color list from public coins: a uniform
// sample (without replacement) of listSize colors from [Δ+1]. Any party
// can compute any vertex's list; the memo avoids rederiving a list the
// simulator has already produced for these coins.
func (p *Protocol) list(n, v int, coins *rng.PublicCoins) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.memo.n != n || p.memo.seed != coins.Seed() {
		p.memo.n = n
		p.memo.seed = coins.Seed()
		p.memo.lists = make([][]int, n)
	}
	if cached := p.memo.lists[v]; cached != nil {
		return cached
	}
	p.memo.lists[v] = p.deriveList(n, v, coins)
	return p.memo.lists[v]
}

func (p *Protocol) deriveList(n, v int, coins *rng.PublicCoins) []int {
	src := coins.Derive("palette").DeriveIndex(v).Source()
	palette := p.cfg.MaxDegree + 1
	ls := p.listSize(n)
	picked := make(map[int]bool, ls)
	out := make([]int, 0, ls)
	for len(out) < ls && len(out) < palette {
		c := src.Intn(palette)
		if !picked[c] {
			picked[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// Sketch implements core.Protocol: vertex v reports the neighbors whose
// lists intersect its own.
func (p *Protocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if view.Degree() > p.cfg.MaxDegree {
		return nil, fmt.Errorf("coloring: vertex %d has degree %d > promised Δ=%d",
			view.ID, view.Degree(), p.cfg.MaxDegree)
	}
	own := p.list(view.N, view.ID, coins)
	ownSet := make(map[int]bool, len(own))
	for _, c := range own {
		ownSet[c] = true
	}
	var conflicts []int
	for _, u := range view.Neighbors {
		for _, c := range p.list(view.N, u, coins) {
			if ownSet[c] {
				conflicts = append(conflicts, u)
				break
			}
		}
	}
	w := &bitio.Writer{}
	idWidth := bitio.UintWidth(view.N)
	w.WriteUvarint(uint64(len(conflicts)))
	for _, u := range conflicts {
		w.WriteUint(uint64(u), idWidth)
	}
	return w, nil
}

// Decode implements core.Protocol: rebuild the conflict graph and search
// for a proper list coloring.
func (p *Protocol) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) ([]int, error) {
	idWidth := bitio.UintWidth(n)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		k, err := sketches[v].ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("coloring: sketch %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := sketches[v].ReadUint(idWidth)
			if err != nil {
				return nil, fmt.Errorf("coloring: sketch %d: %w", v, err)
			}
			if int(u) != v && int(u) < n {
				b.AddEdge(v, int(u))
			}
		}
	}
	conflict := b.Build()

	lists := make([][]int, n)
	for v := 0; v < n; v++ {
		lists[v] = p.list(n, v, coins)
	}
	attempts := p.cfg.Attempts
	if attempts == 0 {
		attempts = 50
	}
	searchSrc := coins.Derive("referee-search").Source()
	for a := 0; a < attempts; a++ {
		colors, ok := tryListColoring(conflict, lists, searchSrc, a%2 == 1)
		if ok {
			return colors, nil
		}
	}
	return nil, fmt.Errorf("coloring: no list coloring found in %d attempts", attempts)
}

// Verify implements protocol.Sketcher: the coloring must assign every
// vertex a palette color distinct from all its neighbors'. Size reports
// the number of distinct colors used.
func (p *Protocol) Verify(g *graph.Graph, out []int) protocol.Outcome {
	o := protocol.Outcome{Kind: "coloring", Checked: true}
	if len(out) != g.N() {
		return o
	}
	distinct := make(map[int]bool, len(out))
	valid := true
	for v, c := range out {
		if c < 0 || c > p.cfg.MaxDegree {
			valid = false
		}
		distinct[c] = true
		g.EachNeighbor(v, func(u int) {
			if out[u] == c {
				valid = false
			}
		})
	}
	o.Size = len(distinct)
	o.Valid = valid
	return o
}

// tryListColoring performs one randomized greedy pass over the conflict
// graph. When constrainedFirst is set, vertices are dynamically picked by
// fewest currently-available colors (DSATUR-style); otherwise a uniform
// random order is used. Each vertex gets a uniformly random available
// color, which empirically spreads color usage far better than
// least-index.
func tryListColoring(conflict *graph.Graph, lists [][]int, src *rng.Source, constrainedFirst bool) ([]int, bool) {
	n := conflict.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	available := func(v int) []int {
		blocked := make(map[int]bool)
		conflict.EachNeighbor(v, func(u int) {
			if colors[u] >= 0 {
				blocked[colors[u]] = true
			}
		})
		var avail []int
		for _, c := range lists[v] {
			if !blocked[c] {
				avail = append(avail, c)
			}
		}
		return avail
	}

	if !constrainedFirst {
		for _, v := range src.Perm(n) {
			avail := available(v)
			if len(avail) == 0 {
				return nil, false
			}
			colors[v] = avail[src.Intn(len(avail))]
		}
		return colors, true
	}

	// Most-constrained-first: repeatedly color the uncolored vertex with
	// the fewest available colors.
	remaining := n
	for remaining > 0 {
		bestV, bestAvail := -1, []int(nil)
		for v := 0; v < n; v++ {
			if colors[v] >= 0 {
				continue
			}
			avail := available(v)
			if len(avail) == 0 {
				return nil, false
			}
			if bestV == -1 || len(avail) < len(bestAvail) {
				bestV, bestAvail = v, avail
			}
		}
		colors[bestV] = bestAvail[src.Intn(len(bestAvail))]
		remaining--
	}
	return colors, true
}

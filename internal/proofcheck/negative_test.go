package proofcheck

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/rsgraph"
)

// cheatingProtocol violates the model: its players send nothing, yet its
// referee outputs the true surviving special edges — which is only
// possible by peeking at hidden state. The proof-chain verifier must
// catch this as a Lemma 3.3 violation (the referee "knows" more than the
// transcript carries), demonstrating that the checks are live, not
// vacuous.
type cheatingProtocol struct {
	// oracle leaks the current instance to the referee, bypassing the
	// messages entirely.
	oracle *harddist.Instance
}

func (c *cheatingProtocol) Name() string { return "cheating" }

func (c *cheatingProtocol) PublicMessages(inst *harddist.Instance) []string {
	c.oracle = inst // the cheat: smuggle the instance to the referee
	return make([]string, len(inst.PublicVertices()))
}

func (c *cheatingProtocol) UniqueMessages(inst *harddist.Instance, _ int) []string {
	return make([]string, inst.Params.RS.N())
}

func (c *cheatingProtocol) Output(view RefereeView) []graph.Edge {
	var out []graph.Edge
	for i := 0; i < view.Params.K; i++ {
		out = append(out, c.oracle.SpecialMatchingSurvived(i)...)
	}
	return out
}

func TestVerifierCatchesCheating(t *testing.T) {
	// kr must exceed 2 so the cheat overwhelms Lemma 3.3's "+1" slack:
	// the violation needs E|MU| = kr/2 > 1.
	rs := rsgraph.DisjointMatchings(2, 2)
	p := harddist.Params{RS: rs, K: 2, DropProb: 0.5}
	n := p.N()
	sigma := make([]int, n)
	for i := range sigma {
		sigma[i] = i
	}
	rep, err := VerifyChain(Config{Params: p, Sigma: sigma}, &cheatingProtocol{})
	if err != nil {
		t.Fatal(err)
	}
	// Zero communication, zero error, yet E|MU| = kr/2 > 0: the soundness
	// inequality H(M|Π,J) <= 1 + Pr[err]·kr + (kr − E|MU|) must break,
	// because H(M|Π,J) = kr for silent messages.
	if rep.PErr != 0 {
		t.Fatalf("cheater recorded error rate %v, expected perfect output", rep.PErr)
	}
	if rep.EMU <= 1.5 {
		t.Fatalf("cheater's E|MU| = %v, want kr/2 = %v", rep.EMU, rep.KR/2)
	}
	if rep.Lemma33.Holds {
		t.Error("Lemma 3.3 verified for a protocol whose referee peeks at hidden state — the checker is vacuous")
	}
	if rep.AllHold() {
		t.Error("AllHold passed for the cheating protocol")
	}
	// The information-decomposition inequalities (3.4, 3.5) only concern
	// the messages, which really are silent — they should still hold.
	if !rep.Lemma34.Holds {
		t.Error("Lemma 3.4 should hold (messages are genuinely empty)")
	}
	for i, l := range rep.Lemma35 {
		if !l.Holds {
			t.Errorf("Lemma 3.5 copy %d should hold (messages are empty)", i)
		}
	}
}

// tamperedReport checks that AllHold reflects each component.
func TestAllHoldComponents(t *testing.T) {
	ok := LemmaCheck{Holds: true}
	bad := LemmaCheck{Holds: false}
	cases := []struct {
		rep  ChainReport
		want bool
	}{
		{ChainReport{Lemma33: ok, Lemma34: ok, Counting: ok, Lemma35: []LemmaCheck{ok}}, true},
		{ChainReport{Lemma33: bad, Lemma34: ok, Counting: ok, Lemma35: []LemmaCheck{ok}}, false},
		{ChainReport{Lemma33: ok, Lemma34: bad, Counting: ok, Lemma35: []LemmaCheck{ok}}, false},
		{ChainReport{Lemma33: ok, Lemma34: ok, Counting: bad, Lemma35: []LemmaCheck{ok}}, false},
		{ChainReport{Lemma33: ok, Lemma34: ok, Counting: ok, Lemma35: []LemmaCheck{ok, bad}}, false},
	}
	for i, c := range cases {
		if got := c.rep.AllHold(); got != c.want {
			t.Errorf("case %d: AllHold = %v, want %v", i, got, c.want)
		}
	}
}

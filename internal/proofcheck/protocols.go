package proofcheck

import (
	"strings"

	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/rsgraph"
)

// This file holds the micro-protocol portfolio. Several are designed to
// meet individual lemmas of the chain with equality:
//
//   - FullInfo meets Lemma 3.5 with equality (I = H(Π(U_i))/t = r) and
//     drives ITotal to its maximum kr;
//   - CopyZero isolates a single copy's contribution;
//   - FixedGuess meets Lemma 3.5 with equality from the other side
//     (reveals r bits but only the 1/t fraction that matters, I = r/t);
//   - PublicAll shows public players alone carry zero information about
//     the special matchings;
//   - Silent is the zero baseline.

func init() {
	RegisterProtocol(FullInfo{})
	RegisterProtocol(Silent{})
	RegisterProtocol(PublicAll{})
	RegisterProtocol(CopyZero{})
	RegisterProtocol(FixedGuess{J0: 0})
	RegisterProtocol(FirstSlot{})
}

// slotRef identifies edge x of matching j.
type slotRef struct{ j, x int }

// incidentSlots lists the slots incident on RS vertex v in (j, x) order.
func incidentSlots(rs *rsgraph.RSGraph, v int) []slotRef {
	var out []slotRef
	for j, m := range rs.Matchings {
		for x, e := range m {
			if e.U == v || e.V == v {
				out = append(out, slotRef{j: j, x: x})
			}
		}
	}
	return out
}

// bitsFor renders survival bits for the given slots of one copy.
func bitsFor(inst *harddist.Instance, copy int, slots []slotRef) string {
	var sb strings.Builder
	for _, s := range slots {
		if inst.Survived(copy, s.j, s.x) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// emptyMessages returns n empty messages.
func emptyMessages(n int) []string { return make([]string, n) }

// readSlotBit reads, from the referee's view, the survival bit of slot
// (j, x) in the given copy as reported by unique player (copy, rsVertex),
// assuming the FullInfo per-player layout restricted to `slots`.
func readSlotBit(view RefereeView, copy, rsVertex int, slots []slotRef, want slotRef) (bool, bool) {
	msg := view.Unique[copy][rsVertex]
	for pos, s := range slots {
		if s == want {
			if pos >= len(msg) {
				return false, false
			}
			return msg[pos] == '1', true
		}
	}
	return false, false
}

// FullInfo: every unique player reports the survival bit of each of its
// incident slots; public players are silent. The referee reads the
// special slots' bits from their endpoints and claims the survivors.
// Zero error, E|M^U| = kr·(1-drop), ITotal = kr.
type FullInfo struct{}

// Name implements Protocol.
func (FullInfo) Name() string { return "full-info" }

// PublicMessages implements Protocol.
func (FullInfo) PublicMessages(inst *harddist.Instance) []string {
	return emptyMessages(len(inst.PublicVertices()))
}

// UniqueMessages implements Protocol.
func (FullInfo) UniqueMessages(inst *harddist.Instance, copy int) []string {
	rs := inst.Params.RS
	out := make([]string, rs.N())
	for v := 0; v < rs.N(); v++ {
		out[v] = bitsFor(inst, copy, incidentSlots(rs, v))
	}
	return out
}

// Output implements Protocol.
func (FullInfo) Output(view RefereeView) []graph.Edge {
	rs := view.Params.RS
	var claims []graph.Edge
	for i := 0; i < view.Params.K; i++ {
		for x, rsEdge := range rs.Matchings[view.JStar] {
			slots := incidentSlots(rs, rsEdge.U)
			alive, ok := readSlotBit(view, i, rsEdge.U, slots, slotRef{j: view.JStar, x: x})
			if ok && alive {
				claims = append(claims, view.SpecialFull[i][x])
			}
		}
	}
	return claims
}

// Silent: nobody communicates, the referee claims nothing. The zero
// baseline: ITotal = 0, E|M^U| = 0, error 0.
type Silent struct{}

// Name implements Protocol.
func (Silent) Name() string { return "silent" }

// PublicMessages implements Protocol.
func (Silent) PublicMessages(inst *harddist.Instance) []string {
	return emptyMessages(len(inst.PublicVertices()))
}

// UniqueMessages implements Protocol.
func (Silent) UniqueMessages(inst *harddist.Instance, _ int) []string {
	return emptyMessages(inst.Params.RS.N())
}

// Output implements Protocol.
func (Silent) Output(RefereeView) []graph.Edge { return nil }

// PublicAll: public players report every survival bit they see (all
// copies of all their incident slots); unique players are silent. Since
// special slots have both endpoints in V⋆, no public player is incident
// on one, so ITotal must come out exactly 0 — public knowledge alone
// carries nothing about M_J.
type PublicAll struct{}

// Name implements Protocol.
func (PublicAll) Name() string { return "public-all" }

// PublicMessages implements Protocol.
func (PublicAll) PublicMessages(inst *harddist.Instance) []string {
	rs := inst.Params.RS
	rsPub := inst.RSPublicVertices()
	out := make([]string, len(rsPub))
	for p, v := range rsPub {
		var sb strings.Builder
		slots := incidentSlots(rs, v)
		for i := 0; i < inst.Params.K; i++ {
			sb.WriteString(bitsFor(inst, i, slots))
		}
		out[p] = sb.String()
	}
	return out
}

// UniqueMessages implements Protocol.
func (PublicAll) UniqueMessages(inst *harddist.Instance, _ int) []string {
	return emptyMessages(inst.Params.RS.N())
}

// Output implements Protocol.
func (PublicAll) Output(RefereeView) []graph.Edge { return nil }

// CopyZero: only copy 0's unique players report (FullInfo layout); the
// referee claims copy 0's surviving special edges. Isolates one copy:
// ITotal = I(M_{0,J};Π(U_0)|J) = r, E|M^U| = r·(1-drop).
type CopyZero struct{}

// Name implements Protocol.
func (CopyZero) Name() string { return "copy-zero" }

// PublicMessages implements Protocol.
func (CopyZero) PublicMessages(inst *harddist.Instance) []string {
	return emptyMessages(len(inst.PublicVertices()))
}

// UniqueMessages implements Protocol.
func (CopyZero) UniqueMessages(inst *harddist.Instance, copy int) []string {
	if copy != 0 {
		return emptyMessages(inst.Params.RS.N())
	}
	return FullInfo{}.UniqueMessages(inst, 0)
}

// Output implements Protocol.
func (CopyZero) Output(view RefereeView) []graph.Edge {
	rs := view.Params.RS
	var claims []graph.Edge
	for x, rsEdge := range rs.Matchings[view.JStar] {
		slots := incidentSlots(rs, rsEdge.U)
		alive, ok := readSlotBit(view, 0, rsEdge.U, slots, slotRef{j: view.JStar, x: x})
		if ok && alive {
			claims = append(claims, view.SpecialFull[0][x])
		}
	}
	return claims
}

// FixedGuess: unique players bet on matching J0 and report only its
// slots' bits. When J = J0 (probability 1/t) the referee learns
// everything; otherwise nothing. The sharp witness for Lemma 3.5's
// direct-sum factor: H(Π(U_i)) = r revealed bits, yet
// I(M_{i,J};Π(U_i)|J) = r/t exactly.
type FixedGuess struct {
	// J0 is the guessed matching index.
	J0 int
}

// Name implements Protocol.
func (p FixedGuess) Name() string { return "fixed-guess" }

// PublicMessages implements Protocol.
func (p FixedGuess) PublicMessages(inst *harddist.Instance) []string {
	return emptyMessages(len(inst.PublicVertices()))
}

// UniqueMessages implements Protocol.
func (p FixedGuess) UniqueMessages(inst *harddist.Instance, copy int) []string {
	rs := inst.Params.RS
	out := make([]string, rs.N())
	for v := 0; v < rs.N(); v++ {
		var guessed []slotRef
		for _, s := range incidentSlots(rs, v) {
			if s.j == p.J0 {
				guessed = append(guessed, s)
			}
		}
		out[v] = bitsFor(inst, copy, guessed)
	}
	return out
}

// Output implements Protocol.
func (p FixedGuess) Output(view RefereeView) []graph.Edge {
	if view.JStar != p.J0 {
		return nil
	}
	rs := view.Params.RS
	var claims []graph.Edge
	for i := 0; i < view.Params.K; i++ {
		for x, rsEdge := range rs.Matchings[p.J0] {
			var guessed []slotRef
			for _, s := range incidentSlots(rs, rsEdge.U) {
				if s.j == p.J0 {
					guessed = append(guessed, s)
				}
			}
			alive, ok := readSlotBit(view, i, rsEdge.U, guessed, slotRef{j: p.J0, x: x})
			if ok && alive {
				claims = append(claims, view.SpecialFull[i][x])
			}
		}
	}
	return claims
}

// FirstSlot: each unique player reports the survival bit of only its
// first incident slot — a 1-bit protocol giving partial, player-local
// information.
type FirstSlot struct{}

// Name implements Protocol.
func (FirstSlot) Name() string { return "first-slot" }

// PublicMessages implements Protocol.
func (FirstSlot) PublicMessages(inst *harddist.Instance) []string {
	return emptyMessages(len(inst.PublicVertices()))
}

// UniqueMessages implements Protocol.
func (FirstSlot) UniqueMessages(inst *harddist.Instance, copy int) []string {
	rs := inst.Params.RS
	out := make([]string, rs.N())
	for v := 0; v < rs.N(); v++ {
		slots := incidentSlots(rs, v)
		if len(slots) > 0 {
			out[v] = bitsFor(inst, copy, slots[:1])
		}
	}
	return out
}

// Output implements Protocol.
func (FirstSlot) Output(view RefereeView) []graph.Edge {
	rs := view.Params.RS
	var claims []graph.Edge
	for i := 0; i < view.Params.K; i++ {
		for x, rsEdge := range rs.Matchings[view.JStar] {
			want := slotRef{j: view.JStar, x: x}
			for _, endpoint := range []int{rsEdge.U, rsEdge.V} {
				slots := incidentSlots(rs, endpoint)
				if len(slots) == 0 || slots[0] != want {
					continue
				}
				if alive, ok := readSlotBit(view, i, endpoint, slots[:1], want); ok && alive {
					claims = append(claims, view.SpecialFull[i][x])
				}
				break
			}
		}
	}
	return claims
}

package proofcheck

import (
	"math"
	"testing"

	"repro/internal/harddist"
	"repro/internal/infotheory"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// microConfigs returns enumerable configurations over two RS families and
// a couple of permutations.
func microConfigs(t *testing.T) []Config {
	t.Helper()
	var cfgs []Config

	disjoint := rsgraph.DisjointMatchings(1, 2) // r=1, t=2, N=4
	behrend, err := rsgraph.BuildFromAPFreeSet(2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	} // r=2, t=2, N=7

	for _, rs := range []*rsgraph.RSGraph{disjoint, behrend} {
		for _, k := range []int{1, 2} {
			p := harddist.Params{RS: rs, K: k, DropProb: 0.5}
			if k*rs.T()*rs.R() > MaxBits {
				continue
			}
			n := p.N()
			identity := make([]int, n)
			for i := range identity {
				identity[i] = i
			}
			shuffled := rng.NewSource(uint64(n)).Perm(n)
			cfgs = append(cfgs,
				Config{Params: p, Sigma: identity},
				Config{Params: p, Sigma: shuffled},
			)
		}
	}
	return cfgs
}

func allProtocols() []Protocol {
	return []Protocol{
		FullInfo{}, Silent{}, PublicAll{}, CopyZero{},
		FixedGuess{J0: 0}, FixedGuess{J0: 1}, FirstSlot{},
	}
}

func TestChainHoldsForAllProtocolsAndConfigs(t *testing.T) {
	for ci, cfg := range microConfigs(t) {
		for _, p := range allProtocols() {
			rep, err := VerifyChain(cfg, p)
			if err != nil {
				t.Fatalf("config %d, %s: %v", ci, p.Name(), err)
			}
			if !rep.AllHold() {
				t.Errorf("config %d, %s: chain violated: 3.3=%+v 3.4=%+v 3.5=%+v count=%+v",
					ci, p.Name(), rep.Lemma33, rep.Lemma34, rep.Lemma35, rep.Counting)
			}
		}
	}
}

func TestFullInfoExtractsEverything(t *testing.T) {
	for _, cfg := range microConfigs(t) {
		rep, err := VerifyChain(cfg, FullInfo{})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(rep.ITotal, rep.KR) {
			t.Errorf("full-info ITotal = %v, want kr = %v", rep.ITotal, rep.KR)
		}
		if rep.PErr != 0 {
			t.Errorf("full-info errs with probability %v", rep.PErr)
		}
		if !approx(rep.EMU, rep.KR/2) {
			t.Errorf("full-info E|MU| = %v, want kr/2 = %v", rep.EMU, rep.KR/2)
		}
		// Lemma 3.5 is tight: I(M_i;Π(U_i)|J) = r = H(Π(U_i))/t.
		for i, l := range rep.Lemma35 {
			if !l.Tight {
				t.Errorf("full-info lemma 3.5 not tight for copy %d: %v vs %v", i, l.LHS, l.RHS)
			}
		}
	}
}

func TestSilentIsZero(t *testing.T) {
	for _, cfg := range microConfigs(t) {
		rep, err := VerifyChain(cfg, Silent{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ITotal != 0 || rep.EMU != 0 || rep.PErr != 0 {
			t.Errorf("silent: ITotal=%v EMU=%v PErr=%v", rep.ITotal, rep.EMU, rep.PErr)
		}
		if !approx(rep.HMGivenPi, rep.KR) {
			t.Errorf("silent: H(M|Π,J) = %v, want kr = %v", rep.HMGivenPi, rep.KR)
		}
	}
}

func TestPublicPlayersKnowNothingAboutSpecialMatchings(t *testing.T) {
	// The structural heart of the hard distribution: special slots have
	// both endpoints in V⋆, so public messages are independent of M_J.
	for _, cfg := range microConfigs(t) {
		rep, err := VerifyChain(cfg, PublicAll{})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(rep.ITotal, 0) {
			t.Errorf("public-all leaked %v bits about M_J", rep.ITotal)
		}
		if rep.HPiP == 0 && cfg.Params.RS.N() > 2*cfg.Params.RS.R() && cfg.Params.RS.G.MaxDegree() > 1 {
			t.Error("public players sent nothing despite having incident edges")
		}
	}
}

func TestCopyZeroIsolatesOneCopy(t *testing.T) {
	for _, cfg := range microConfigs(t) {
		rep, err := VerifyChain(cfg, CopyZero{})
		if err != nil {
			t.Fatal(err)
		}
		r := float64(cfg.Params.RS.R())
		if !approx(rep.ITotal, r) {
			t.Errorf("copy-zero ITotal = %v, want r = %v", rep.ITotal, r)
		}
		if !approx(rep.IUnique[0], r) {
			t.Errorf("copy-zero I_0 = %v, want %v", rep.IUnique[0], r)
		}
		for i := 1; i < cfg.Params.K; i++ {
			if !approx(rep.IUnique[i], 0) {
				t.Errorf("copy-zero I_%d = %v, want 0", i, rep.IUnique[i])
			}
		}
	}
}

func TestFixedGuessMeetsDirectSumExactly(t *testing.T) {
	// The sharp witness for Lemma 3.5: revealing the r bits of one fixed
	// matching yields exactly r/t bits about M_J — the 1/t direct-sum
	// factor is real, not slack.
	for _, cfg := range microConfigs(t) {
		rep, err := VerifyChain(cfg, FixedGuess{J0: 0})
		if err != nil {
			t.Fatal(err)
		}
		r, tt, k := float64(cfg.Params.RS.R()), float64(cfg.Params.RS.T()), float64(cfg.Params.K)
		if !approx(rep.ITotal, k*r/tt) {
			t.Errorf("fixed-guess ITotal = %v, want k·r/t = %v", rep.ITotal, k*r/tt)
		}
		for i, l := range rep.Lemma35 {
			if !approx(rep.IUnique[i], r/tt) {
				t.Errorf("fixed-guess I_%d = %v, want r/t = %v", i, rep.IUnique[i], r/tt)
			}
			if !l.Tight {
				t.Errorf("fixed-guess lemma 3.5 not tight for copy %d", i)
			}
		}
	}
}

func TestFirstSlotPartialInformation(t *testing.T) {
	for _, cfg := range microConfigs(t) {
		rep, err := VerifyChain(cfg, FirstSlot{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.PErr != 0 {
			t.Errorf("first-slot claimed a dead edge with probability %v", rep.PErr)
		}
		if rep.MaxUniqueBits > 1 {
			t.Errorf("first-slot sent %d bits per player", rep.MaxUniqueBits)
		}
		// On micro families every special edge is some endpoint's first
		// incident slot, so even this 1-bit protocol can extract up to
		// the full kr — the counting bound k·N·b/t stays consistent
		// because k·N/t ≥ kr there. What must hold: positive information
		// within the envelope.
		if rep.ITotal <= 0 || rep.ITotal > rep.KR+1e-9 {
			t.Errorf("first-slot ITotal = %v, want in (0, %v]", rep.ITotal, rep.KR)
		}
	}
}

func TestVerifyChainRejectsOversizedConfigs(t *testing.T) {
	rs := rsgraph.DisjointMatchings(3, 3) // 9 bits per copy
	p := harddist.Params{RS: rs, K: 3, DropProb: 0.5}
	n := p.N()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	if _, err := VerifyChain(Config{Params: p, Sigma: identity}, Silent{}); err == nil {
		t.Error("27-bit configuration accepted")
	}
}

func TestSilentEntropyMatchesBinaryEntropyUnderBias(t *testing.T) {
	// With drop probability q, the survival bits are iid Bernoulli(1-q),
	// so H(M_J | Σ, J) = kr·h(1-q) exactly; the silent protocol's
	// H(M|Π,Σ,J) must equal it.
	rs := rsgraph.DisjointMatchings(2, 2)
	p := harddist.Params{RS: rs, K: 2, DropProb: 0.3}
	n := p.N()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	rep, err := VerifyChain(Config{Params: p, Sigma: identity}, Silent{})
	if err != nil {
		t.Fatal(err)
	}
	want := rep.KR * infotheory.BinaryEntropy(0.7)
	if !approx(rep.HMGivenPi, want) {
		t.Errorf("H(M|Π,J) = %v, want kr·h(0.7) = %v", rep.HMGivenPi, want)
	}
}

func TestChainUnderBiasedDrop(t *testing.T) {
	// The inequality chain is distribution-generic in the drop rate; the
	// uniform-support equality kr only holds at 1/2, so check the raw
	// inequalities at 0.3.
	rs := rsgraph.DisjointMatchings(1, 2)
	p := harddist.Params{RS: rs, K: 2, DropProb: 0.3}
	n := p.N()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	cfg := Config{Params: p, Sigma: identity}
	for _, proto := range allProtocols() {
		rep, err := VerifyChain(cfg, proto)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Lemma34.Holds {
			t.Errorf("%s: lemma 3.4 fails under biased drop", proto.Name())
		}
		for i, l := range rep.Lemma35 {
			if !l.Holds {
				t.Errorf("%s: lemma 3.5 fails for copy %d under biased drop", proto.Name(), i)
			}
		}
	}
}

func BenchmarkVerifyChainFullInfo(b *testing.B) {
	rs, err := rsgraph.BuildFromAPFreeSet(2, []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	p := harddist.Params{RS: rs, K: 2, DropProb: 0.5}
	n := p.N()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	cfg := Config{Params: p, Sigma: identity}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyChain(cfg, FullInfo{}); err != nil {
			b.Fatal(err)
		}
	}
}

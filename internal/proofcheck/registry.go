package proofcheck

// Protocol registry: the micro-protocol portfolio self-registers from
// init() (see protocols.go), the same way internal/protocol registers
// sketching protocols. Callers that used to hand-maintain
// []Protocol{...} lists — the E4 experiment, the informationchain
// example, the mm-dmm-micro obligations — iterate Portfolio() instead,
// so adding a protocol is a one-line registration, not an N-site edit.

import (
	"fmt"
	"sort"
	"sync"
)

var (
	protoMu   sync.RWMutex
	protocols = map[string]Protocol{}
)

// RegisterProtocol adds a protocol to the portfolio. It is meant to be
// called from init() and panics on empty or duplicate names.
func RegisterProtocol(p Protocol) {
	if p == nil || p.Name() == "" {
		panic("proofcheck: RegisterProtocol with nil or unnamed protocol")
	}
	protoMu.Lock()
	defer protoMu.Unlock()
	if _, dup := protocols[p.Name()]; dup {
		panic(fmt.Sprintf("proofcheck: duplicate protocol %q", p.Name()))
	}
	protocols[p.Name()] = p
}

// LookupProtocol resolves a registered protocol name.
func LookupProtocol(name string) (Protocol, error) {
	protoMu.RLock()
	p, ok := protocols[name]
	protoMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("proofcheck: unknown protocol %q (known: %v)", name, ProtocolNames())
	}
	return p, nil
}

// ProtocolNames returns the sorted registered protocol names.
func ProtocolNames() []string {
	protoMu.RLock()
	defer protoMu.RUnlock()
	names := make([]string, 0, len(protocols))
	for name := range protocols {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Portfolio returns every registered protocol, sorted by name — the
// deterministic iteration order used by experiments and obligations.
func Portfolio() []Protocol {
	protoMu.RLock()
	defer protoMu.RUnlock()
	out := make([]Protocol, 0, len(protocols))
	for _, p := range protocols {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

package proofcheck

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/rsgraph"
)

// These fixtures mirror internal/faults' channel-fault modes inside the
// information-theoretic checker: a channel that drops or garbles the
// unique messages destroys the information the soundness chain accounts
// for, so a referee that still answers perfectly must be cheating — and
// Lemma 3.3 has to flag it. The XOR-mask channel is the contrast: a
// bijective corruption is information-preserving, and a referee adapted
// to the mask passes the whole chain.

// faultyChannel wraps an inner protocol and applies a per-message
// transform to every unique message in transit. When oracle is set, the
// referee ignores the (damaged) transcript and reads the hidden instance
// instead — the "impossibly lucky" referee the checker must reject.
type faultyChannel struct {
	name    string
	inner   Protocol
	garble  func(msg string) string
	oracle  bool
	decode  func(view RefereeView) []graph.Edge
	instRef *harddist.Instance
}

func (c *faultyChannel) Name() string { return c.name }

func (c *faultyChannel) PublicMessages(inst *harddist.Instance) []string {
	if c.oracle {
		c.instRef = inst // the cheat, as in cheatingProtocol
	}
	return c.inner.PublicMessages(inst)
}

func (c *faultyChannel) UniqueMessages(inst *harddist.Instance, copy int) []string {
	msgs := c.inner.UniqueMessages(inst, copy)
	out := make([]string, len(msgs))
	for i, m := range msgs {
		out[i] = c.garble(m)
	}
	return out
}

func (c *faultyChannel) Output(view RefereeView) []graph.Edge {
	if c.oracle {
		var out []graph.Edge
		for i := 0; i < view.Params.K; i++ {
			out = append(out, c.instRef.SpecialMatchingSurvived(i)...)
		}
		return out
	}
	return c.decode(view)
}

// flipBits inverts every survival bit of a message — the string-model
// analogue of bitio.Writer.FlipBit at every position (an all-ones mask).
func flipBits(msg string) string {
	var sb strings.Builder
	for i := 0; i < len(msg); i++ {
		if msg[i] == '1' {
			sb.WriteByte('0')
		} else {
			sb.WriteByte('1')
		}
	}
	return sb.String()
}

func faultedConfig(t *testing.T) Config {
	t.Helper()
	rs := rsgraph.DisjointMatchings(2, 2)
	p := harddist.Params{RS: rs, K: 2, DropProb: 0.5}
	sigma := make([]int, p.N())
	for i := range sigma {
		sigma[i] = i
	}
	return Config{Params: p, Sigma: sigma}
}

// TestVerifierCatchesDroppedChannel: the channel drops every unique
// message (internal/faults' drop mode at probability 1), yet the referee
// still outputs the exact survivors. The transcript carries zero bits
// about M, so H(M|Π,J) = kr and Lemma 3.3's soundness inequality must
// break.
func TestVerifierCatchesDroppedChannel(t *testing.T) {
	cfg := faultedConfig(t)
	p := &faultyChannel{
		name:   "full-info+drop-all",
		inner:  FullInfo{},
		garble: func(string) string { return "" },
		oracle: true,
	}
	rep, err := VerifyChain(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PErr != 0 {
		t.Fatalf("oracle referee recorded error rate %v", rep.PErr)
	}
	if rep.Lemma33.Holds {
		t.Error("Lemma 3.3 verified although the channel dropped every unique message")
	}
	if rep.AllHold() {
		t.Error("AllHold passed for the dropped-channel protocol")
	}
	// The dropped messages are genuinely empty, so the per-message
	// decomposition lemmas still hold — only soundness breaks.
	if !rep.Lemma34.Holds {
		t.Error("Lemma 3.4 should hold for empty messages")
	}
}

// TestVerifierCatchesGarbledChannel: the channel replaces every unique
// message by a constant of the same length (heavy corruption that
// destroys all content while keeping the framing plausible). A constant
// transcript carries zero information, so a perfect referee again breaks
// Lemma 3.3 — the checker is not fooled by messages that merely LOOK
// well-formed.
func TestVerifierCatchesGarbledChannel(t *testing.T) {
	cfg := faultedConfig(t)
	p := &faultyChannel{
		name:   "full-info+garble-const",
		inner:  FullInfo{},
		garble: func(msg string) string { return strings.Repeat("1", len(msg)) },
		oracle: true,
	}
	rep, err := VerifyChain(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PErr != 0 {
		t.Fatalf("oracle referee recorded error rate %v", rep.PErr)
	}
	if rep.ITotal != 0 {
		t.Errorf("constant transcript reported ITotal = %v, want 0", rep.ITotal)
	}
	if rep.Lemma33.Holds {
		t.Error("Lemma 3.3 verified although the transcript is constant")
	}
	if rep.AllHold() {
		t.Error("AllHold passed for the garbled-channel protocol")
	}
}

// TestXORMaskChannelPreservesChain: the contrast fixture. The channel
// XORs every unique message with an all-ones mask — a bijective,
// information-preserving corruption — and the referee is adapted to
// un-mask before decoding. No hidden state, perfect output, and the full
// chain must verify: what the lemmas bound is information, not syntax.
func TestXORMaskChannelPreservesChain(t *testing.T) {
	cfg := faultedConfig(t)
	p := &faultyChannel{
		name:   "full-info+xor-mask",
		inner:  FullInfo{},
		garble: flipBits,
		decode: func(view RefereeView) []graph.Edge {
			unmasked := view
			unmasked.Unique = make([][]string, len(view.Unique))
			for i, msgs := range view.Unique {
				unmasked.Unique[i] = make([]string, len(msgs))
				for v, m := range msgs {
					unmasked.Unique[i][v] = flipBits(m)
				}
			}
			return FullInfo{}.Output(unmasked)
		},
	}
	rep, err := VerifyChain(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PErr != 0 {
		t.Fatalf("masked referee recorded error rate %v, want perfect output", rep.PErr)
	}
	if !rep.AllHold() {
		t.Errorf("chain should verify for a bijective mask: %+v", rep)
	}

	// Sanity: the masked transcript carries exactly as much information as
	// the unmasked FullInfo baseline.
	base, err := VerifyChain(cfg, FullInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ITotal != base.ITotal {
		t.Errorf("mask changed ITotal: %v vs baseline %v", rep.ITotal, base.ITotal)
	}
}

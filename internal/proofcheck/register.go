package proofcheck

// Registration of the enumerable micro-D_MM distribution and the exact
// information-chain obligations (Lemmas 3.3–3.5, the Theorem 1 counting
// step, and a Fact 2.2 instrument). Each chain obligation verifies its
// inequality for every protocol in the registered portfolio, recording
// per-protocol LHS/RHS values. Names, claims and detail keys are pinned
// by internal/lowerbound/testdata/mm-dmm-micro_seed42.json, recorded
// before this package was migrated onto the registry.

import (
	"fmt"
	"strconv"

	"repro/internal/harddist"
	"repro/internal/infotheory"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// MicroInstance is one sampled micro-D_MM configuration: disjoint r=1
// matchings with k = t and a uniformly drawn relabeling σ — small enough
// that VerifyChain enumerates every (j⋆, survival) outcome exactly.
type MicroInstance struct {
	// Cfg is the proof-checker configuration (parameters + σ).
	Cfg Config
}

// N implements lowerbound.Instance.
func (mi *MicroInstance) N() int { return mi.Cfg.Params.N() }

// microDMM samples MicroInstances: Spec.Size is t (= k), bounded so the
// exact enumeration stays within MaxBits survival bits.
type microDMM struct{}

func (microDMM) Name() string  { return "mm-dmm-micro" }
func (microDMM) Paper() string { return "AKO20 §3.2 (enumerable micro D_MM)" }

func (microDMM) Validate(spec lowerbound.Spec) error {
	t := spec.Size
	if t < 2 {
		return fmt.Errorf("mm-dmm-micro: t must be ≥ 2, got %d", t)
	}
	if t*t > MaxBits {
		return fmt.Errorf("mm-dmm-micro: k·t·r = %d survival bits exceeds the exact-enumeration cap %d (t ≤ %d)",
			t*t, MaxBits, 4)
	}
	if spec.Aux != 0 {
		return fmt.Errorf("mm-dmm-micro: aux parameter is unused, got %d", spec.Aux)
	}
	return nil
}

func (microDMM) SmokeSpec() lowerbound.Spec { return lowerbound.Spec{Size: 2} }

func (microDMM) Sample(spec lowerbound.Spec, src *rng.Source) (lowerbound.Instance, error) {
	t := spec.Size
	params := harddist.Params{RS: rsgraph.DisjointMatchings(1, t), K: t, DropProb: 0.5}
	sigma := src.Perm(params.N())
	return &MicroInstance{Cfg: Config{Params: params, Sigma: sigma}}, nil
}

// chainCheck adapts a per-protocol ChainReport extractor into an
// obligation check that sweeps the whole registered portfolio.
func chainCheck(extract func(rep ChainReport, details map[string]float64) bool) func(lowerbound.Instance, *rng.Source) lowerbound.Report {
	return func(inst lowerbound.Instance, _ *rng.Source) lowerbound.Report {
		mi, err := lowerbound.Convert[*MicroInstance](inst)
		if err != nil {
			return lowerbound.Report{Notes: []string{err.Error()}}
		}
		rep := lowerbound.Report{Pass: true, Details: map[string]float64{}}
		for _, p := range Portfolio() {
			chain, err := VerifyChain(mi.Cfg, p)
			if err != nil {
				return lowerbound.Report{Notes: []string{err.Error()}}
			}
			if !extract(chain, rep.Details) {
				rep.Pass = false
			}
		}
		return rep
	}
}

func init() {
	lowerbound.RegisterDistribution(microDMM{})

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mm/lemma-3.3-soundness",
		"AKO20 Lemma 3.3: H(M_J|Π,Σ,J) ≤ 1 + Perr·kr + (kr − E|M^U|)",
		"mm-dmm-micro", lowerbound.SevExact,
		chainCheck(func(rep ChainReport, d map[string]float64) bool {
			d["lhs."+rep.Protocol] = rep.Lemma33.LHS
			d["rhs."+rep.Protocol] = rep.Lemma33.RHS
			return rep.Lemma33.Holds
		})))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mm/lemma-3.4-decomposition",
		"AKO20 Lemma 3.4: I(M_J;Π|Σ,J) ≤ H(Π(P)) + Σ_i I(M_i,J;Π(U_i)|Σ,J)",
		"mm-dmm-micro", lowerbound.SevExact,
		chainCheck(func(rep ChainReport, d map[string]float64) bool {
			d["lhs."+rep.Protocol] = rep.Lemma34.LHS
			d["rhs."+rep.Protocol] = rep.Lemma34.RHS
			return rep.Lemma34.Holds
		})))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mm/lemma-3.5-direct-sum",
		"AKO20 Lemma 3.5: I(M_i,J;Π(U_i)|Σ,J) ≤ H(Π(U_i))/t",
		"mm-dmm-micro", lowerbound.SevExact,
		chainCheck(func(rep ChainReport, d map[string]float64) bool {
			ok := true
			for i, l := range rep.Lemma35 {
				d["lhs."+rep.Protocol+"."+strconv.Itoa(i)] = l.LHS
				d["rhs."+rep.Protocol+"."+strconv.Itoa(i)] = l.RHS
				ok = ok && l.Holds
			}
			return ok
		})))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mm/theorem-1-counting",
		"AKO20 Theorem 1 counting: I(M_J;Π|Σ,J) ≤ |P|·b_P + k·N·b_U/t",
		"mm-dmm-micro", lowerbound.SevExact,
		chainCheck(func(rep ChainReport, d map[string]float64) bool {
			d["lhs."+rep.Protocol] = rep.Counting.LHS
			d["rhs."+rep.Protocol] = rep.Counting.RHS
			return rep.Counting.Holds
		})))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mm/fact-2.2-instrument",
		"AKO20 Fact 2.2 / Props 2.3–2.4: the chain's information quantities obey the standard entropy facts",
		"mm-dmm-micro", lowerbound.SevExact,
		func(inst lowerbound.Instance, src *rng.Source) lowerbound.Report {
			mi, err := lowerbound.Convert[*MicroInstance](inst)
			if err != nil {
				return lowerbound.Report{Notes: []string{err.Error()}}
			}
			chainViolations := 0
			for _, p := range Portfolio() {
				chain, err := VerifyChain(mi.Cfg, p)
				if err != nil {
					return lowerbound.Report{Notes: []string{err.Error()}}
				}
				// 0 ≤ I(M_J;Π|Σ,J) ≤ H(M_J) ≤ kr and H(M_J|Π,Σ,J) ∈ [0, kr]:
				// direct consequences of Fact 2.2 on the real chain.
				if chain.ITotal < -factTol || chain.ITotal > chain.KR+factTol {
					chainViolations++
				}
				if chain.HMGivenPi < -factTol || chain.HMGivenPi > chain.KR+factTol {
					chainViolations++
				}
			}
			// Exercise the reusable checkers on structured random joints
			// drawn from this obligation's private stream.
			const jointTrials = 8
			factViolations, propViolations := 0, 0
			for i := 0; i < jointTrials; i++ {
				jc := infotheory.RandomJointDFuncOfC(src)
				factViolations += len(infotheory.Fact22Violations(jc))
				if !infotheory.Proposition23Holds(jc) {
					propViolations++
				}
				jbc := infotheory.RandomJointDFuncOfBC(src)
				factViolations += len(infotheory.Fact22Violations(jbc))
				if !infotheory.Proposition24Holds(jbc) {
					propViolations++
				}
			}
			return lowerbound.Report{
				Pass: chainViolations == 0 && factViolations == 0 && propViolations == 0,
				Details: map[string]float64{
					"chain_violations":  float64(chainViolations),
					"fact22_violations": float64(factViolations),
					"joints_checked":    2 * jointTrials,
					"prop_violations":   float64(propViolations),
				},
			}
		}))
}

// factTol mirrors infotheory's inequality tolerance.
const factTol = 1e-9

// Package proofcheck verifies the paper's information-theoretic argument
// (Section 3.2) numerically, to machine precision, on micro-instances of
// the hard distribution D_MM whose randomness is small enough to
// enumerate exhaustively.
//
// For a fixed relabeling σ and a fixed deterministic protocol π in the
// paper's augmented public/unique-player model, the remaining randomness
// of D_MM is the special index J (uniform over [t]) and the k·t·r edge
// survival indicators. Enumerating all of it yields the exact joint
// distribution of (J, M_{1,J},...,M_{k,J}, Π(P), Π(U_1),...,Π(U_k)), from
// which every quantity in the paper's chain is computed exactly:
//
//	Lemma 3.3 (soundness of the referee):
//	    H(M_J | Π, Σ=σ, J) ≤ 1 + Pr[O=0]·kr + (kr − E|M^U_π|)
//	Lemma 3.4 (public/unique decomposition):
//	    I(M_J ; Π | Σ=σ, J) ≤ H(Π(P)) + Σ_i I(M_{i,J} ; Π(U_i) | Σ=σ, J)
//	Lemma 3.5 (direct sum over the t matchings):
//	    I(M_{i,J} ; Π(U_i) | Σ=σ, J) ≤ H(Π(U_i)) / t
//	Counting (end of Theorem 1):
//	    H(Π(P)) ≤ |P|·b_P   and   H(Π(U_i)) ≤ N·b_{U,i}
//
// Every protocol below is checked against all four; several are designed
// to meet individual inequalities with equality, pinning the analysis as
// tight rather than merely valid.
package proofcheck

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/infotheory"
)

// Config fixes the enumerable micro-family.
type Config struct {
	// Params carries the RS graph, K and DropProb; Params.RS must be tiny
	// (K·T·R total survival bits ≤ MaxBits).
	Params harddist.Params
	// Sigma is the fixed relabeling permutation (the chain is verified
	// conditioned on Σ = σ, which is how the paper's proofs operate).
	Sigma []int
}

// MaxBits caps the enumerable survival-indicator count.
const MaxBits = 16

// RefereeView is everything the referee legitimately sees: the messages,
// plus the advice σ and j⋆ that Remark 3.6 grants for free (exposed here
// through the label maps and special slots derived from them). Protocol
// outputs may use nothing else — in particular, no survival indicators.
type RefereeView struct {
	// Params echoes the configuration (K, RS shape, DropProb).
	Params harddist.Params
	// JStar is the revealed special index.
	JStar int
	// SpecialFull[i] is copy i's full special matching in G labels.
	SpecialFull [][]graph.Edge
	// Public[p] is the message of the p-th public player.
	Public []string
	// Unique[i][v] is the message of unique player (i, v), indexed by RS
	// vertex v.
	Unique [][]string
}

// Protocol is a deterministic protocol in the augmented player model.
// Messages are arbitrary strings whose length in bytes is treated as the
// bit-length (micro protocols use one byte per bit for legibility).
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// PublicMessages returns one message per public player.
	PublicMessages(inst *harddist.Instance) []string
	// UniqueMessages returns one message per unique player of the copy,
	// indexed by RS vertex.
	UniqueMessages(inst *harddist.Instance, copy int) []string
	// Output is the referee: it claims a set of surviving special edges.
	Output(view RefereeView) []graph.Edge
}

// LemmaCheck is one verified inequality.
type LemmaCheck struct {
	LHS, RHS float64
	Holds    bool
	Tight    bool // |LHS-RHS| < tolerance
}

const tol = 1e-9

func check(lhs, rhs float64) LemmaCheck {
	return LemmaCheck{
		LHS:   lhs,
		RHS:   rhs,
		Holds: lhs <= rhs+tol,
		Tight: math.Abs(lhs-rhs) < 1e-6,
	}
}

// ChainReport carries every exactly-computed quantity for one protocol on
// one micro-configuration.
type ChainReport struct {
	Protocol string
	KR       float64 // k·r
	// ITotal is I(M_{1,J},...,M_{k,J} ; Π | Σ=σ, J).
	ITotal float64
	// HMGivenPi is H(M_J | Π, Σ=σ, J).
	HMGivenPi float64
	// PErr is Pr[O = 0] (referee claimed a non-surviving edge).
	PErr float64
	// EMU is E|M^U_π| (expected number of claimed unique–unique edges).
	EMU float64
	// HPiP is H(Π(P)), the joint entropy of the public messages.
	HPiP float64
	// HPiU[i] is H(Π(U_i)).
	HPiU []float64
	// IUnique[i] is I(M_{i,J} ; Π(U_i) | Σ=σ, J).
	IUnique []float64
	// MaxPublicBits / MaxUniqueBits are worst-case message lengths.
	MaxPublicBits, MaxUniqueBits int

	Lemma33 LemmaCheck // H(M|Π,J) ≤ 1 + PErr·kr + (kr − EMU)
	Lemma34 LemmaCheck // ITotal ≤ HPiP + Σ IUnique
	Lemma35 []LemmaCheck
	// Counting is ITotal ≤ |P|·bP + k·N·bU/t, the final chain step.
	Counting LemmaCheck
}

// AllHold reports whether every inequality verified.
func (r ChainReport) AllHold() bool {
	ok := r.Lemma33.Holds && r.Lemma34.Holds && r.Counting.Holds
	for _, l := range r.Lemma35 {
		ok = ok && l.Holds
	}
	return ok
}

// VerifyChain enumerates the micro-distribution and checks the chain for
// one protocol.
func VerifyChain(cfg Config, p Protocol) (ChainReport, error) {
	var rep ChainReport
	rep.Protocol = p.Name()
	params := cfg.Params
	if err := params.Validate(); err != nil {
		return rep, err
	}
	rs := params.RS
	k, t, r := params.K, rs.T(), rs.R()
	bits := k * t * r
	if bits > MaxBits {
		return rep, fmt.Errorf("proofcheck: %d survival bits exceed enumerable cap %d", bits, MaxBits)
	}
	rep.KR = float64(k * r)
	keep := 1 - params.DropProb

	// Joint variables: 0 = J; 1..k = M_{i,J} (packed r bits);
	// k+1 = Π(P) id; k+2..2k+1 = Π(U_i) ids.
	joint := infotheory.NewJoint(2*k + 2)
	pubIntern := infotheory.NewInterner()
	uniqIntern := make([]*infotheory.Interner, k)
	for i := range uniqIntern {
		uniqIntern[i] = infotheory.NewInterner()
	}

	nRS := rs.N()
	survive := make([][][]bool, k)
	for i := range survive {
		survive[i] = make([][]bool, t)
		for j := range survive[i] {
			survive[i][j] = make([]bool, r)
		}
	}
	outcome := make([]int, 2*k+2)

	var sumErr, sumMU, totalMass float64

	for jStar := 0; jStar < t; jStar++ {
		for mask := 0; mask < 1<<uint(bits); mask++ {
			// Unpack mask into survive and compute its probability.
			weight := 1.0 / float64(t)
			idx := 0
			for i := 0; i < k; i++ {
				for j := 0; j < t; j++ {
					for x := 0; x < r; x++ {
						alive := mask&(1<<uint(idx)) != 0
						survive[i][j][x] = alive
						if alive {
							weight *= keep
						} else {
							weight *= 1 - keep
						}
						idx++
					}
				}
			}
			if weight == 0 {
				continue
			}
			inst, err := harddist.Build(params, jStar, cfg.Sigma, survive)
			if err != nil {
				return rep, err
			}

			// Messages.
			pub := p.PublicMessages(inst)
			if len(pub) != nRS-2*r {
				return rep, fmt.Errorf("proofcheck: %s returned %d public messages, want %d",
					p.Name(), len(pub), nRS-2*r)
			}
			view := RefereeView{
				Params: params,
				JStar:  jStar,
				Public: pub,
				Unique: make([][]string, k),
			}
			for i := 0; i < k; i++ {
				view.SpecialFull = append(view.SpecialFull, inst.SpecialMatchingFull(i))
				um := p.UniqueMessages(inst, i)
				if len(um) != nRS {
					return rep, fmt.Errorf("proofcheck: %s returned %d unique messages for copy %d, want %d",
						p.Name(), len(um), i, nRS)
				}
				view.Unique[i] = um
				for _, m := range um {
					if len(m) > rep.MaxUniqueBits {
						rep.MaxUniqueBits = len(m)
					}
				}
			}
			for _, m := range pub {
				if len(m) > rep.MaxPublicBits {
					rep.MaxPublicBits = len(m)
				}
			}

			// Referee output, correctness and |M^U|.
			claims := p.Output(view)
			correct := true
			mu := 0
			if !graph.IsVertexDisjoint(claims) {
				correct = false
			}
			survivedSpecial := make(map[graph.Edge]bool)
			for i := 0; i < k; i++ {
				for _, e := range inst.SpecialMatchingSurvived(i) {
					survivedSpecial[e] = true
				}
			}
			for _, e := range claims {
				if !inst.IsPublic(e.U) && !inst.IsPublic(e.V) {
					mu++
				}
				if !survivedSpecial[e] {
					correct = false
				}
			}
			if !correct {
				sumErr += weight
			}
			sumMU += weight * float64(mu)
			totalMass += weight

			// Joint outcome.
			outcome[0] = jStar
			for i := 0; i < k; i++ {
				packed := 0
				for x := 0; x < r; x++ {
					if survive[i][jStar][x] {
						packed |= 1 << uint(x)
					}
				}
				outcome[1+i] = packed
			}
			outcome[k+1] = pubIntern.ID(strings.Join(pub, "\x00"))
			for i := 0; i < k; i++ {
				outcome[k+2+i] = uniqIntern[i].ID(strings.Join(view.Unique[i], "\x00"))
			}
			joint.Add(outcome, weight)
		}
	}

	rep.PErr = sumErr / totalMass
	rep.EMU = sumMU / totalMass

	jVar := []int{0}
	mVars := make([]int, k)
	piVars := []int{k + 1}
	for i := 0; i < k; i++ {
		mVars[i] = 1 + i
		piVars = append(piVars, k+2+i)
	}
	rep.ITotal = joint.MutualInfo(mVars, piVars, jVar)
	rep.HMGivenPi = joint.CondEntropy(mVars, append(append([]int(nil), piVars...), jVar...))
	rep.HPiP = joint.Entropy(k + 1)
	rep.HPiU = make([]float64, k)
	rep.IUnique = make([]float64, k)
	rep.Lemma35 = make([]LemmaCheck, k)
	sumIU := 0.0
	sumHU := 0.0
	for i := 0; i < k; i++ {
		rep.HPiU[i] = joint.Entropy(k + 2 + i)
		rep.IUnique[i] = joint.MutualInfo([]int{1 + i}, []int{k + 2 + i}, jVar)
		rep.Lemma35[i] = check(rep.IUnique[i], rep.HPiU[i]/float64(t))
		sumIU += rep.IUnique[i]
		sumHU += rep.HPiU[i]
	}

	rep.Lemma33 = check(rep.HMGivenPi, 1+rep.PErr*rep.KR+(rep.KR-rep.EMU))
	rep.Lemma34 = check(rep.ITotal, rep.HPiP+sumIU)
	// Counting step: messages of at most b bits have entropy at most b
	// per player (joint ≤ sum), so
	//   ITotal ≤ |P|·bP + k·N·bU / t.
	numPublic := float64(nRS - 2*r)
	countRHS := numPublic*float64(rep.MaxPublicBits) +
		float64(k)*float64(nRS)*float64(rep.MaxUniqueBits)/float64(t)
	rep.Counting = check(rep.ITotal, countRHS)
	return rep, nil
}

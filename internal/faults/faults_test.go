package faults

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/agm"
	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// testPlan is the reference fault plan used by the golden tests: every
// fault kind active at once.
var testPlan = Plan{
	DropProb:       0.15,
	CorruptProb:    0.15,
	FlipBits:       3,
	StragglerProb:  0.2,
	StragglerDelay: 100 * time.Microsecond,
}

// sequentialFaulted is an independent reference executor: a plain
// vertex-order loop applying the injector, with none of the engine's
// sharding machinery. The golden test compares every Workers setting
// against it.
func sequentialFaulted(t *testing.T, p engine.Broadcaster, g *graph.Graph, plan Plan, coins, faultCoins *rng.PublicCoins) *engine.Transcript {
	t.Helper()
	views := core.Views(g)
	inj := NewInjector(context.Background(), p, plan, faultCoins)
	tr := engine.NewTranscript()
	for round := 0; round < p.Rounds(); round++ {
		msgs := make([]*bitio.Writer, len(views))
		for v := range views {
			w, err := inj.Broadcast(round, views[v], tr, coins)
			if err != nil {
				t.Fatalf("reference broadcast round %d vertex %d: %v", round, v, err)
			}
			msgs[v] = w
		}
		tr.SealRound(msgs)
		fb, err := inj.Feedback(round, tr, coins)
		if err != nil {
			t.Fatalf("reference feedback after round %d: %v", round, err)
		}
		tr.SealFeedback(fb)
		bitio.Release(fb)
	}
	return tr
}

// transcriptBits flattens a transcript into per-(round, vertex) bit
// strings for byte-exact comparison.
func transcriptBits(t *testing.T, tr *engine.Transcript, n int) []string {
	t.Helper()
	var out []string
	for round := 0; round < tr.Rounds(); round++ {
		for v := 0; v < n; v++ {
			var sb strings.Builder
			r := tr.Message(round, v)
			for r.Remaining() > 0 {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatalf("round %d vertex %d: %v", round, v, err)
				}
				if b {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			out = append(out, sb.String())
		}
	}
	return out
}

// goldenFaulted checks the extended determinism contract for one
// protocol: the faulted transcript at Workers ∈ {1, 2, 8} is byte-
// identical to the sequential reference, and the Resilience verdict and
// fault accounting are identical too.
func goldenFaulted[O any](t *testing.T, newProto func() engine.Protocol[O], g *graph.Graph, plan Plan) {
	t.Helper()
	coins := rng.NewPublicCoins(101)
	faultCoins := rng.NewPublicCoins(202).Derive("faults")

	ref := sequentialFaulted(t, newProto(), g, plan, coins, faultCoins)
	refBits := transcriptBits(t, ref, g.N())

	var wantStats *engine.FaultStats
	for _, workers := range []int{1, 2, 8} {
		eng := &engine.Engine{Workers: workers, ShardSize: 3}

		inj := NewInjector(context.Background(), newProto(), plan, faultCoins)
		tr, _, err := eng.Execute(context.Background(), inj, g, coins)
		if err != nil {
			t.Fatalf("workers=%d: execute: %v", workers, err)
		}
		gotBits := transcriptBits(t, tr, g.N())
		if len(gotBits) != len(refBits) {
			t.Fatalf("workers=%d: %d messages, reference has %d", workers, len(gotBits), len(refBits))
		}
		for i := range refBits {
			if gotBits[i] != refBits[i] {
				t.Fatalf("workers=%d: message %d differs from sequential reference", workers, i)
			}
		}

		res, err := Run(context.Background(), eng, newProto(), g, coins, plan, faultCoins)
		if err != nil {
			t.Fatalf("workers=%d: run: %v", workers, err)
		}
		fs := res.Stats.Faults
		if !fs.Injected {
			t.Fatalf("workers=%d: faults not marked injected", workers)
		}
		if wantStats == nil {
			wantStats = &fs
			if fs.Dropped == 0 || fs.Corrupted == 0 || fs.Straggled == 0 {
				t.Fatalf("plan injected nothing of some kind: %+v", fs)
			}
			continue
		}
		if fs != *wantStats {
			t.Errorf("workers=%d: fault stats %+v, want %+v", workers, fs, *wantStats)
		}
	}
}

func TestGoldenFaultedAGMForest(t *testing.T) {
	g := gen.Gnp(48, 0.2, rng.NewSource(7))
	goldenFaulted(t, func() engine.Protocol[[]graph.Edge] {
		return &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{BackupReps: 2})}
	}, g, testPlan)
}

func TestGoldenFaultedTwoRoundMM(t *testing.T) {
	g := gen.Gnp(48, 0.2, rng.NewSource(7))
	goldenFaulted(t, func() engine.Protocol[[]graph.Edge] {
		return matchproto.NewTwoRound()
	}, g, testPlan)
}

func TestGoldenFaultedTwoRoundMIS(t *testing.T) {
	g := gen.Gnp(48, 0.2, rng.NewSource(7))
	goldenFaulted(t, func() engine.Protocol[[]int] {
		return misproto.NewTwoRound()
	}, g, testPlan)
}

// TestStragglerOnlyPreservesBits: a plan that only delays must yield a
// transcript byte-identical to the unfaulted run and an ok verdict.
func TestStragglerOnlyPreservesBits(t *testing.T) {
	g := gen.Gnp(40, 0.25, rng.NewSource(3))
	coins := rng.NewPublicCoins(11)
	faultCoins := rng.NewPublicCoins(12).Derive("faults")
	plan := Plan{StragglerProb: 0.5, StragglerDelay: 50 * time.Microsecond}

	clean, _, err := (&engine.Engine{Workers: 2}).Execute(context.Background(), matchproto.NewTwoRound(), g, coins)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(context.Background(), matchproto.NewTwoRound(), plan, faultCoins)
	faulted, _, err := (&engine.Engine{Workers: 2}).Execute(context.Background(), inj, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	want := transcriptBits(t, clean, g.N())
	got := transcriptBits(t, faulted, g.N())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("straggler-only plan changed message %d", i)
		}
	}

	res, err := Run(context.Background(), &engine.Engine{Workers: 2}, matchproto.NewTwoRound(), g, coins, plan, faultCoins)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Faults.Straggled == 0 {
		t.Error("expected straggled broadcasts")
	}
	if res.Stats.Faults.Resilience != core.ResilienceOK {
		t.Errorf("straggler-only run verdict %s, want ok", res.Stats.Faults.Resilience)
	}
	if !graph.IsMaximalMatching(g, res.Output) {
		t.Error("straggler-only run output not a maximal matching")
	}
}

// TestStragglerCancellation: a huge delay must not stall cancellation —
// the injector's sleep is interruptible and the engine checks the context
// between vertices.
func TestStragglerCancellation(t *testing.T) {
	g := gen.Gnp(32, 0.3, rng.NewSource(5))
	coins := rng.NewPublicCoins(21)
	faultCoins := rng.NewPublicCoins(22).Derive("faults")
	plan := Plan{StragglerProb: 1, StragglerDelay: time.Hour}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, &engine.Engine{Workers: 2}, matchproto.NewTwoRound(), g, coins, plan, faultCoins)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

// TestDropEverything: DropProb 1 must empty every message and be fully
// accounted; the referee reports failed, never a silent wrong answer.
func TestDropEverything(t *testing.T) {
	g := gen.Gnp(24, 0.3, rng.NewSource(9))
	coins := rng.NewPublicCoins(31)
	faultCoins := rng.NewPublicCoins(32).Derive("faults")
	plan := Plan{DropProb: 1}

	res, err := Run(context.Background(), &engine.Engine{Workers: 2}, matchproto.NewTwoRound(), g, coins, plan, faultCoins)
	if err != nil && res.Stats.Faults.Resilience != core.ResilienceFailed {
		t.Fatalf("errored run classified %s, want failed", res.Stats.Faults.Resilience)
	}
	if err == nil {
		if res.Stats.Faults.Dropped != 2*g.N() {
			t.Errorf("dropped %d messages, want %d", res.Stats.Faults.Dropped, 2*g.N())
		}
		if res.Stats.Faults.Resilience != core.ResilienceFailed {
			t.Errorf("verdict %s, want failed", res.Stats.Faults.Resilience)
		}
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("drop=0.1,corrupt=0.05,flip=4,straggle=0.01,delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{DropProb: 0.1, CorruptProb: 0.05, FlipBits: 4, StragglerProb: 0.01, StragglerDelay: 2 * time.Millisecond}
	if plan != want {
		t.Errorf("ParsePlan = %+v, want %+v", plan, want)
	}
	if p, err := ParsePlan(""); err != nil || p.Active() {
		t.Errorf("empty plan: %+v, %v", p, err)
	}
	for _, bad := range []string{"drop=2", "nope=1", "flip=0", "delay=-1s", "drop"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// TestEvaluateMatchesTranscript: the referee-side record must agree with
// what the injector visibly did to the transcript.
func TestEvaluateMatchesTranscript(t *testing.T) {
	g := gen.Gnp(30, 0.3, rng.NewSource(13))
	coins := rng.NewPublicCoins(41)
	faultCoins := rng.NewPublicCoins(42).Derive("faults")
	plan := Plan{DropProb: 0.3}

	p := matchproto.NewTwoRound()
	inj := NewInjector(context.Background(), p, plan, faultCoins)
	tr, _, err := (&engine.Engine{Workers: 2}).Execute(context.Background(), inj, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	rec := plan.Evaluate(faultCoins, tr, g.N())
	empties := 0
	for round := 0; round < tr.Rounds(); round++ {
		for v := 0; v < g.N(); v++ {
			if tr.BitLen(round, v) == 0 {
				empties++
			}
		}
	}
	// Every derived drop left a zero-bit message (legitimate messages in
	// both MM rounds always carry at least the count bit).
	if rec.Dropped != empties {
		t.Errorf("record says %d drops, transcript has %d empty messages", rec.Dropped, empties)
	}
	if rec.Dropped == 0 {
		t.Error("plan with DropProb 0.3 dropped nothing")
	}
}

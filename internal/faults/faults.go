// Package faults injects deterministic, seed-derived channel faults into
// sketching-protocol executions.
//
// The paper's model (Section 2.1) assumes every player's message reaches
// the referee intact. The implemented upper bounds, however, are
// randomized protocols whose ℓ₀-samplers already tolerate an internal
// failure probability δ — so it is natural to ask how each protocol
// degrades when the channel itself misbehaves. This package perturbs an
// execution at three points:
//
//   - drop: player v's round-r broadcast is replaced by an empty message,
//   - corruption: k bits of the broadcast are flipped before the round
//     seals, so players in later rounds and the referee see the same
//     corrupted transcript,
//   - straggler: the broadcast is delayed by a configurable duration,
//     exercising the engine's worker pool and context cancellation. A
//     straggler never changes any bit of the transcript.
//
// Every fault decision is drawn from rng.PublicCoins sub-streams labeled
// fault/drop/<round>/<v>, fault/corrupt/<round>/<v>, fault/flip/<round>/<v>
// and fault/straggle/<round>/<v>. Because the labels depend only on the
// (round, vertex) coordinate — never on scheduling — a fixed (protocol,
// graph, coins, Plan, fault coins) tuple reproduces the identical faulted
// transcript at ANY engine.Workers setting, extending the engine's
// determinism contract to adversarial runs. The same property lets the
// referee re-derive the exact fault sites from the public fault coins
// (Plan.Evaluate), which models a channel whose damage is authenticated
// (e.g. MAC'd frames): the referee always knows WHERE the channel
// misbehaved, while the protocol-level resilience decoders additionally
// detect damage from the message contents alone.
package faults

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
)

// Plan configures which faults are injected and how hard.
// The zero value injects nothing.
type Plan struct {
	// DropProb is the per-(round, vertex) probability that the broadcast
	// is replaced by an empty message. Drops take precedence over
	// corruption: a dropped message is never also corrupted.
	DropProb float64
	// CorruptProb is the per-(round, vertex) probability that FlipBits
	// bit positions of the broadcast are flipped. Empty messages cannot
	// be corrupted.
	CorruptProb float64
	// FlipBits is the number of flip injections per corrupted message
	// (positions are drawn with replacement, so an even number of hits
	// on the same position cancels). Zero means the default of 3.
	FlipBits int
	// StragglerProb is the per-(round, vertex) probability that the
	// broadcast is delayed by StragglerDelay.
	StragglerProb float64
	// StragglerDelay is the artificial delay of a straggling broadcast.
	// Zero means the default of 1ms.
	StragglerDelay time.Duration

	// FeedbackDropProb and FeedbackCorruptProb extend the plan to the
	// referee's per-round feedback broadcasts (engine.Adaptive). They
	// follow the player-message conventions: a dropped feedback seals as
	// an empty slot, a corrupted one has FlipBits bit positions flipped
	// before sealing (drops take precedence), and decisions come from the
	// labeled sub-streams fault/fb-drop/<round>/0 and
	// fault/fb-corrupt/<round>/0 (fault/fb-flip/<round>/0 for positions).
	// Both default to zero — feedback rounds untouched — so plans recorded
	// before feedback existed reproduce their committed faulted
	// transcripts bit for bit.
	FeedbackDropProb    float64
	FeedbackCorruptProb float64
}

// Active reports whether the plan injects any faults at all.
func (p Plan) Active() bool {
	return p.DropProb > 0 || p.CorruptProb > 0 || p.StragglerProb > 0 ||
		p.FeedbackDropProb > 0 || p.FeedbackCorruptProb > 0
}

func (p Plan) flipBits() int {
	if p.FlipBits <= 0 {
		return 3
	}
	return p.FlipBits
}

func (p Plan) stragglerDelay() time.Duration {
	if p.StragglerDelay <= 0 {
		return time.Millisecond
	}
	return p.StragglerDelay
}

// String renders the plan in the -faults flag syntax.
func (p Plan) String() string {
	if !p.Active() {
		return "none"
	}
	var parts []string
	if p.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.DropProb))
	}
	if p.CorruptProb > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g,flip=%d", p.CorruptProb, p.flipBits()))
	}
	if p.StragglerProb > 0 {
		parts = append(parts, fmt.Sprintf("straggle=%g,delay=%s", p.StragglerProb, p.stragglerDelay()))
	}
	if p.FeedbackDropProb > 0 {
		parts = append(parts, fmt.Sprintf("fbdrop=%g", p.FeedbackDropProb))
	}
	if p.FeedbackCorruptProb > 0 {
		parts = append(parts, fmt.Sprintf("fbcorrupt=%g", p.FeedbackCorruptProb))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the sketchlab -faults flag syntax: a comma-separated
// list of key=value pairs with keys drop, corrupt, flip, straggle, delay,
// fbdrop, fbcorrupt,
// e.g. "drop=0.1,corrupt=0.05,flip=4,straggle=0.01,delay=2ms,fbdrop=0.2".
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return p, fmt.Errorf("faults: bad plan element %q (want key=value)", part)
		}
		switch key {
		case "drop", "corrupt", "straggle", "fbdrop", "fbcorrupt":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("faults: bad probability %q for %s", val, key)
			}
			switch key {
			case "drop":
				p.DropProb = f
			case "corrupt":
				p.CorruptProb = f
			case "straggle":
				p.StragglerProb = f
			case "fbdrop":
				p.FeedbackDropProb = f
			case "fbcorrupt":
				p.FeedbackCorruptProb = f
			}
		case "flip":
			k, err := strconv.Atoi(val)
			if err != nil || k < 1 {
				return p, fmt.Errorf("faults: bad flip count %q", val)
			}
			p.FlipBits = k
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return p, fmt.Errorf("faults: bad delay %q", val)
			}
			p.StragglerDelay = d
		default:
			return p, fmt.Errorf("faults: unknown plan key %q", key)
		}
	}
	return p, nil
}

// coin evaluates one Bernoulli fault decision from its labeled sub-stream.
// Deriving by label makes the decision a pure function of (coins, kind,
// round, vertex) — independent of scheduling order.
func coin(coins *rng.PublicCoins, kind string, round, v int, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return coins.Derive(fmt.Sprintf("fault/%s/%d/%d", kind, round, v)).Source().Float64() < prob
}

// flipPositions returns the k bit positions (with replacement) flipped in
// the round-r broadcast of vertex v, given its message length in bits.
// kind is "flip" for player messages and "fb-flip" for referee feedback,
// keeping the two lanes on independent labeled streams.
func flipPositions(coins *rng.PublicCoins, kind string, round, v, msgBits, k int) []int {
	src := coins.Derive(fmt.Sprintf("fault/%s/%d/%d", kind, round, v)).Source()
	pos := make([]int, k)
	for i := range pos {
		pos[i] = src.Intn(msgBits)
	}
	return pos
}

// Injector wraps an engine.Broadcaster and applies a Plan's faults to
// every broadcast. It is safe for concurrent use by the engine's worker
// pool: all fault decisions are pure label-derived functions, and the
// straggler sleep is interruptible via the injector's context.
type Injector struct {
	inner engine.Broadcaster
	plan  Plan
	coins *rng.PublicCoins
	done  <-chan struct{} // interrupts straggler sleeps
}

// NewInjector wraps inner with the plan's faults. Fault coins must be a
// sub-stream independent from the protocol's own coins (derive them with a
// distinct label); ctx bounds straggler sleeps so cancellation is prompt.
func NewInjector(ctx context.Context, inner engine.Broadcaster, plan Plan, faultCoins *rng.PublicCoins) *Injector {
	return &Injector{inner: inner, plan: plan, coins: faultCoins, done: ctx.Done()}
}

// Name identifies the faulted protocol in stats reports.
func (i *Injector) Name() string { return i.inner.Name() + "+faults" }

// Rounds forwards the wrapped protocol's round count.
func (i *Injector) Rounds() int { return i.inner.Rounds() }

// Broadcast runs the wrapped broadcast and perturbs its result according
// to the plan. Corruption is applied to the writer before the engine seals
// the round, so every later-round player and the referee observe the same
// corrupted transcript — the faulted run stays a valid execution of the
// sketching model over a damaged channel.
func (i *Injector) Broadcast(round int, view core.VertexView, t *engine.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if coin(i.coins, "straggle", round, view.ID, i.plan.StragglerProb) {
		timer := time.NewTimer(i.plan.stragglerDelay())
		select {
		case <-timer.C:
		case <-i.done:
			timer.Stop()
			// The engine checks ctx between vertices; returning the
			// unfaulted broadcast here keeps partial transcripts
			// bit-consistent if the round still seals.
		}
	}
	w, err := i.inner.Broadcast(round, view, t, coins)
	if err != nil {
		return w, err
	}
	if coin(i.coins, "drop", round, view.ID, i.plan.DropProb) {
		// The inner message is discarded unread; recycle its scratch
		// buffer now since the engine will only ever see the empty stand-in.
		bitio.Release(w)
		return &bitio.Writer{}, nil
	}
	if w != nil && w.Len() > 0 && coin(i.coins, "corrupt", round, view.ID, i.plan.CorruptProb) {
		for _, pos := range flipPositions(i.coins, "flip", round, view.ID, w.Len(), i.plan.flipBits()) {
			w.FlipBit(pos)
		}
	}
	return w, nil
}

// BroadcastBlock keeps the injector on the engine's columnar fast path:
// the inner protocol computes the whole block (through its own block
// path when it has one), then the plan's faults are applied message by
// message. Every fault decision is label-derived from (round, view.ID)
// alone, so the faulted transcript is bit-identical to the scalar
// Broadcast path's — block boundaries cannot shift any coin stream.
// Straggler sleeps happen before the inner computation, preserving the
// scalar path's "delay then broadcast" ordering per message.
func (i *Injector) BroadcastBlock(round int, views []core.VertexView, t *engine.Transcript, coins *rng.PublicCoins, out []*bitio.Writer) (int, error) {
	for _, view := range views {
		if coin(i.coins, "straggle", round, view.ID, i.plan.StragglerProb) {
			timer := time.NewTimer(i.plan.stragglerDelay())
			select {
			case <-timer.C:
			case <-i.done:
				timer.Stop()
			}
		}
	}
	if bb, ok := i.inner.(engine.BlockBroadcaster); ok {
		if bad, err := bb.BroadcastBlock(round, views, t, coins, out); err != nil {
			return bad, err
		}
	} else {
		for idx, view := range views {
			w, err := i.inner.Broadcast(round, view, t, coins)
			if err != nil {
				return idx, err
			}
			out[idx] = w
		}
	}
	for idx, view := range views {
		w := out[idx]
		if coin(i.coins, "drop", round, view.ID, i.plan.DropProb) {
			bitio.Release(w)
			out[idx] = &bitio.Writer{}
			continue
		}
		if w != nil && w.Len() > 0 && coin(i.coins, "corrupt", round, view.ID, i.plan.CorruptProb) {
			for _, pos := range flipPositions(i.coins, "flip", round, view.ID, w.Len(), i.plan.flipBits()) {
				w.FlipBit(pos)
			}
		}
	}
	return 0, nil
}

// Feedback makes the Injector adaptive whenever its inner protocol is,
// forwarding the referee's feedback and perturbing it under the plan's
// feedback-fault knobs before the engine seals it — exactly the player
// pipeline, one lane down. For a non-adaptive inner protocol the inner
// feedback is nil; the fault coins are still consulted (a channel drops
// frames without asking whether they were empty), which keeps
// Plan.Evaluate a pure function of (coins, transcript) with no knowledge
// of the protocol's adaptivity.
func (i *Injector) Feedback(round int, t *engine.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	var w *bitio.Writer
	if ap, ok := i.inner.(engine.Adaptive); ok {
		var err error
		w, err = ap.Feedback(round, t, coins)
		if err != nil {
			return w, err
		}
	}
	if coin(i.coins, "fb-drop", round, 0, i.plan.FeedbackDropProb) {
		bitio.Release(w)
		return &bitio.Writer{}, nil
	}
	if w != nil && w.Len() > 0 && coin(i.coins, "fb-corrupt", round, 0, i.plan.FeedbackCorruptProb) {
		for _, pos := range flipPositions(i.coins, "fb-flip", round, 0, w.Len(), i.plan.flipBits()) {
			w.FlipBit(pos)
		}
	}
	return w, nil
}

// Record is the deterministic account of which faults a plan injected
// into a sealed transcript, re-derived from the public fault coins.
type Record struct {
	Dropped           int
	Corrupted         int
	FlippedBits       int
	Straggled         int
	FeedbackDropped   int
	FeedbackCorrupted int
}

// Clean reports whether no message content was damaged (stragglers do not
// count: they only delay, never alter bits).
func (r Record) Clean() bool {
	return r.Dropped == 0 && r.Corrupted == 0 &&
		r.FeedbackDropped == 0 && r.FeedbackCorrupted == 0
}

// Evaluate re-derives the fault record over the sealed rounds of a
// transcript. Because every decision is label-derived, this reproduces
// exactly what an Injector with the same plan and coins did during the
// run — the referee-side view of an authenticated channel. Corruption of
// a message is determined from its sealed length: drops leave zero bits
// (so the corrupt coin, even if it fired, had nothing to flip), and
// corruption preserves length.
func (p Plan) Evaluate(faultCoins *rng.PublicCoins, t *engine.Transcript, n int) Record {
	var rec Record
	if t == nil || !p.Active() {
		return rec
	}
	for round := 0; round < t.Rounds(); round++ {
		for v := 0; v < n; v++ {
			if coin(faultCoins, "straggle", round, v, p.StragglerProb) {
				rec.Straggled++
			}
			if coin(faultCoins, "drop", round, v, p.DropProb) {
				rec.Dropped++
				continue
			}
			if t.BitLen(round, v) > 0 && coin(faultCoins, "corrupt", round, v, p.CorruptProb) {
				rec.Corrupted++
				rec.FlippedBits += p.flipBits()
			}
		}
		// The referee's feedback lane mirrors the player conventions:
		// drops count whenever the coin fired (a dropped feedback seals
		// empty, exactly as the Injector left it), corruption only where
		// the sealed feedback has bits to flip — so the record matches the
		// Injector's actions without knowing whether the protocol was
		// adaptive at all.
		if coin(faultCoins, "fb-drop", round, 0, p.FeedbackDropProb) {
			rec.FeedbackDropped++
			continue
		}
		if t.FeedbackBitLen(round) > 0 && coin(faultCoins, "fb-corrupt", round, 0, p.FeedbackCorruptProb) {
			rec.FeedbackCorrupted++
			rec.FlippedBits += p.flipBits()
		}
	}
	return rec
}

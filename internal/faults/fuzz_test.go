package faults

import (
	"testing"

	"repro/internal/agm"
	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// FuzzTranscriptCorruption feeds arbitrary bit flips — not just the
// plan-shaped faults of the Injector — into a sealed AGM spanning-forest
// transcript and checks the resilient referee's contract: it either
// returns a correct forest, or reports degraded/failed, or errors. It
// must never panic and never return an ok verdict with a wrong forest.
//
// The fuzz input is consumed in 3-byte chunks (vertex, position-hi,
// position-lo), so the corpus explores both single-bit damage and heavy
// multi-vertex damage.
func FuzzTranscriptCorruption(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{3, 0, 17, 3, 0, 17}) // double flip on one position cancels
	f.Add([]byte{1, 0, 5, 7, 1, 200, 11, 0, 42})

	const n = 12
	g := gen.Gnp(n, 0.4, rng.NewSource(99))
	views := core.Views(g)
	cfg := agm.Config{BackupReps: 2}

	f.Fuzz(func(t *testing.T, data []byte) {
		coins := rng.NewPublicCoins(7)
		p := agm.NewSpanningForest(cfg)
		writers := make([]*bitio.Writer, n)
		for v := 0; v < n; v++ {
			view := views[v]
			w, err := p.Sketch(view, coins)
			if err != nil {
				t.Fatalf("sketch vertex %d: %v", v, err)
			}
			writers[v] = w
		}
		for i := 0; i+2 < len(data); i += 3 {
			v := int(data[i]) % n
			if writers[v].Len() == 0 {
				continue
			}
			pos := (int(data[i+1])<<8 | int(data[i+2])) % writers[v].Len()
			writers[v].FlipBit(pos)
		}
		tr := engine.NewTranscript()
		tr.SealRound(writers)

		readers := make([]*bitio.Reader, n)
		for v := 0; v < n; v++ {
			readers[v] = tr.Message(0, v)
		}
		out, verdict, err := p.DecodeResilient(n, readers, coins)
		if err != nil {
			if verdict == core.ResilienceOK {
				t.Fatalf("error %v with ok verdict", err)
			}
			return
		}
		if verdict == core.ResilienceOK && !graph.IsSpanningForest(g, out) {
			t.Fatalf("ok verdict but output is not a spanning forest of g: %v", out)
		}
	})
}

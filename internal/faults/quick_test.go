package faults

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// neverSilentlyOK is the resilience contract as a randomized property:
// for any graph and any (bounded) fault plan, a run whose verdict is ok
// must produce an output that passes external verification. Degraded and
// failed runs may be wrong — that is what the verdicts are for — but a
// silent wrong answer is a contract violation.
func neverSilentlyOK[O any](t *testing.T, newProto func() engine.Protocol[O], verify func(*graph.Graph, O) bool) {
	t.Helper()
	f := func(gs, fs uint64, dropB, corB uint8) bool {
		n := 20 + int(gs%16)
		g := gen.Gnp(n, 0.25, rng.NewSource(gs))
		plan := Plan{
			DropProb:    float64(dropB%40) / 100, // 0 .. 0.39
			CorruptProb: float64(corB%40) / 100,
			FlipBits:    1 + int(corB%4),
		}
		coins := rng.NewPublicCoins(gs ^ 0x9e3779b9)
		faultCoins := rng.NewPublicCoins(fs).Derive("faults")
		res, err := Run(context.Background(), &engine.Engine{Workers: 2}, newProto(), g, coins, plan, faultCoins)
		if err != nil {
			// Errors must be classified failed, never ok.
			return res.Stats.Faults.Resilience == core.ResilienceFailed
		}
		if res.Stats.Faults.Resilience == core.ResilienceOK {
			return verify(g, res.Output)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickMMNeverSilentlyOK(t *testing.T) {
	neverSilentlyOK(t,
		func() engine.Protocol[[]graph.Edge] { return matchproto.NewTwoRound() },
		func(g *graph.Graph, out []graph.Edge) bool { return graph.IsMaximalMatching(g, out) })
}

func TestQuickMISNeverSilentlyOK(t *testing.T) {
	neverSilentlyOK(t,
		func() engine.Protocol[[]int] { return misproto.NewTwoRound() },
		func(g *graph.Graph, out []int) bool { return graph.IsMaximalIndependentSet(g, out) })
}

// TestQuickCleanPlansStayOK: with no drop/corrupt probability the verdict
// is always ok and the output always verifies, for any seed — the faults
// layer must be a strict no-op on clean plans.
func TestQuickCleanPlansStayOK(t *testing.T) {
	f := func(gs uint64, straggle bool) bool {
		n := 20 + int(gs%16)
		g := gen.Gnp(n, 0.25, rng.NewSource(gs))
		plan := Plan{}
		if straggle {
			plan.StragglerProb = 0.3
			plan.StragglerDelay = 10000 // 10µs
		}
		coins := rng.NewPublicCoins(gs ^ 0x51ed270b)
		faultCoins := rng.NewPublicCoins(gs + 1).Derive("faults")
		res, err := Run(context.Background(), &engine.Engine{Workers: 2}, matchproto.NewTwoRound(), g, coins, plan, faultCoins)
		if err != nil {
			return false
		}
		return res.Stats.Faults.Resilience == core.ResilienceOK &&
			graph.IsMaximalMatching(g, res.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

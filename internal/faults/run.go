package faults

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ResilientProtocol is a multi-round engine.Protocol whose referee can
// decode a damaged transcript with graceful degradation. It is the
// transcript-level analogue of core.ResilientProtocol; cclique.OneRound
// lifts the latter into this interface automatically.
type ResilientProtocol[O any] interface {
	engine.Protocol[O]
	// DecodeResilient is Decode over a possibly-damaged transcript. It
	// must not report core.ResilienceOK unless every message of every
	// round parsed cleanly.
	DecodeResilient(n int, transcript *engine.Transcript, coins *rng.PublicCoins) (O, core.Resilience, error)
}

// Run executes p on g under the plan's faults: the engine's sharded
// broadcast phase runs with an Injector wrapped around p, then the referee
// decodes — through DecodeResilient when p implements ResilientProtocol[O],
// plain Decode otherwise. The returned stats carry the re-derived fault
// record and the folded Resilience verdict.
//
// Verdict folding applies two independent layers:
//
//  1. protocol layer: the resilience decoder's own damage detection
//     (checksums, parse anomalies, truncation caps) — genuine referee-side
//     detection from message contents alone;
//  2. channel layer: the fault record re-derived from the public fault
//     coins (an authenticated channel's view). Any dropped or corrupted
//     message demotes an ok verdict to degraded, so a run whose damage
//     slipped past the protocol layer is never reported ok.
//
// faultCoins must be independent of the protocol's coins (derive them
// under a distinct label) so that injecting faults never perturbs the
// protocol's own randomness.
func Run[O any](ctx context.Context, e *engine.Engine, p engine.Protocol[O], g *graph.Graph, coins *rng.PublicCoins, plan Plan, faultCoins *rng.PublicCoins) (engine.Result[O], error) {
	res, _, err := RunWithTranscript(ctx, e, p, g, coins, plan, faultCoins)
	return res, err
}

// RunWithTranscript is Run, additionally returning the sealed (faulted)
// transcript the referee decoded, so the service layer can ship the exact
// damaged transcript to remote callers. On error the partial transcript
// is still returned.
func RunWithTranscript[O any](ctx context.Context, e *engine.Engine, p engine.Protocol[O], g *graph.Graph, coins *rng.PublicCoins, plan Plan, faultCoins *rng.PublicCoins) (engine.Result[O], *engine.Transcript, error) {
	start := time.Now()
	inj := NewInjector(ctx, p, plan, faultCoins)
	transcript, stats, err := e.Execute(ctx, inj, g, coins)

	rec := plan.Evaluate(faultCoins, transcript, g.N())
	stats.Faults = engine.FaultStats{
		Injected:          plan.Active(),
		Dropped:           rec.Dropped,
		Corrupted:         rec.Corrupted,
		FlippedBits:       rec.FlippedBits,
		Straggled:         rec.Straggled,
		FeedbackDropped:   rec.FeedbackDropped,
		FeedbackCorrupted: rec.FeedbackCorrupted,
	}

	res := engine.Result[O]{Stats: *stats}
	if err != nil {
		res.Stats.Faults.Resilience = core.ResilienceFailed
		res.Stats.TotalWall = time.Since(start)
		return res, transcript, err
	}

	decodeStart := time.Now()
	var out O
	verdict := core.ResilienceOK
	if rp, ok := any(p).(ResilientProtocol[O]); ok {
		out, verdict, err = rp.DecodeResilient(g.N(), transcript, coins)
	} else {
		out, err = p.Decode(g.N(), transcript, coins)
	}
	res.Stats.DecodeWall = time.Since(decodeStart)
	res.Stats.TotalWall = time.Since(start)
	if err != nil {
		res.Stats.Faults.Resilience = core.ResilienceFailed
		return res, transcript, fmt.Errorf("faults: decode: %w", err)
	}
	if !rec.Clean() {
		verdict = verdict.Worse(core.ResilienceDegraded)
	}
	res.Output = out
	res.Stats.Faults.Resilience = verdict
	return res, transcript, nil
}

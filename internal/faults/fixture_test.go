package faults

import (
	"bufio"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/agm"
	"repro/internal/cclique"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// updateFixtures regenerates the committed faulted-transcript fixtures.
// They were recorded from the pre-optimization sketch path; regenerating
// is only legitimate for a deliberate wire-format change, never to
// "fix" a drifting optimization.
var updateFixtures = flag.Bool("update-fixtures", false, "rewrite testdata faulted-transcript fixtures")

// faultedFixture pins one faulted execution whose transcript is committed
// under testdata/. A nil plan selects the reference testPlan.
type faultedFixture struct {
	name     string
	newProto func() engine.Broadcaster
	n        int
	plan     *Plan
}

// TestGoldenFaultedFixtureTranscripts asserts byte-for-byte equality of
// faulted transcripts (drop + corruption + stragglers, the reference
// testPlan — plus the feedback-only plans of the adaptive downlink
// fixtures) with the committed fixtures at Workers ∈ {1, 2, 8}. The
// transcripts of adaptive protocols additionally pin the referee
// feedback lane through <name>.feedback sidecars.
func TestGoldenFaultedFixtureTranscripts(t *testing.T) {
	g := gen.Gnp(48, 0.2, rng.NewSource(7))
	fbDropPlan := Plan{FeedbackDropProb: 1}
	fbCorruptPlan := Plan{FeedbackCorruptProb: 1, FlipBits: 3}
	cases := []faultedFixture{
		{
			name: "faulted-agm-forest-backup",
			n:    g.N(),
			newProto: func() engine.Broadcaster {
				return &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{BackupReps: 2})}
			},
		},
		{
			name:     "faulted-mm-tworound",
			n:        g.N(),
			newProto: func() engine.Broadcaster { return matchproto.NewTwoRound() },
		},
		{
			name:     "faulted-mis-tworound",
			n:        g.N(),
			newProto: func() engine.Broadcaster { return misproto.NewTwoRound() },
		},
		{
			name:     "fb-dropped-mm-tworound",
			n:        g.N(),
			newProto: func() engine.Broadcaster { return matchproto.NewTwoRound() },
			plan:     &fbDropPlan,
		},
		{
			name:     "fb-corrupt-mis-tworound",
			n:        g.N(),
			newProto: func() engine.Broadcaster { return misproto.NewTwoRound() },
			plan:     &fbCorruptPlan,
		},
	}
	coins := rng.NewPublicCoins(101)
	faultCoins := rng.NewPublicCoins(202).Derive("faults")
	for _, fc := range cases {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			plan := testPlan
			if fc.plan != nil {
				plan = *fc.plan
			}
			path := filepath.Join("testdata", fc.name+".golden")
			exec := func(workers int) *engine.Transcript {
				inj := NewInjector(context.Background(), fc.newProto(), plan, faultCoins)
				eng := &engine.Engine{Workers: workers, ShardSize: 3}
				tr, _, err := eng.Execute(context.Background(), inj, g, coins)
				if err != nil {
					t.Fatal(err)
				}
				return tr
			}
			fbPath := filepath.Join("testdata", fc.name+".feedback")
			if *updateFixtures {
				tr := exec(1)
				writeFaultedFixture(t, path, tr, fc.n)
				if fb := flattenFaultedFeedback(t, tr); fb != nil {
					writeFixtureLines(t, fbPath, fb)
				}
			}
			want := readFaultedFixture(t, path)
			wantFB := readOptionalFixture(t, fbPath)
			for _, workers := range []int{1, 2, 8} {
				tr := exec(workers)
				got := flattenFaultedTranscript(t, tr, fc.n)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d messages, fixture has %d", workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: faulted transcript message %d drifted from committed fixture:\n got %s\nwant %s",
							workers, i, got[i], want[i])
					}
				}
				gotFB := flattenFaultedFeedback(t, tr)
				if len(gotFB) != len(wantFB) {
					t.Fatalf("workers=%d: %d feedback rounds, sidecar fixture has %d", workers, len(gotFB), len(wantFB))
				}
				for i := range wantFB {
					if gotFB[i] != wantFB[i] {
						t.Fatalf("workers=%d: faulted feedback round %d drifted from committed fixture:\n got %s\nwant %s",
							workers, i, gotFB[i], wantFB[i])
					}
				}
			}
		})
	}
}

// flattenFaultedTranscript renders "round vertex nbit hex" lines, bits
// packed LSB-first exactly as bitio.Writer lays them out.
func flattenFaultedTranscript(t *testing.T, tr *engine.Transcript, n int) []string {
	t.Helper()
	var out []string
	for round := 0; round < tr.Rounds(); round++ {
		for v := 0; v < n; v++ {
			nbit := tr.BitLen(round, v)
			r := tr.Message(round, v)
			buf := make([]byte, (nbit+7)/8)
			for i := 0; i < nbit; i++ {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatalf("round %d vertex %d bit %d: %v", round, v, i, err)
				}
				if b {
					buf[i/8] |= 1 << uint(i%8)
				}
			}
			out = append(out, fmt.Sprintf("%d %d %d %s", round, v, nbit, hex.EncodeToString(buf)))
		}
	}
	return out
}

// flattenFaultedFeedback renders the transcript's referee feedback lane
// as "round nbit hex" sidecar lines, or nil when every round's feedback
// is empty (the non-adaptive case, which needs no sidecar fixture).
func flattenFaultedFeedback(t *testing.T, tr *engine.Transcript) []string {
	t.Helper()
	var out []string
	any := false
	for round := 0; round < tr.Rounds(); round++ {
		nbit := tr.FeedbackBitLen(round)
		buf := make([]byte, (nbit+7)/8)
		if nbit > 0 {
			any = true
			r := tr.Feedback(round)
			for i := 0; i < nbit; i++ {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatalf("feedback round %d bit %d: %v", round, i, err)
				}
				if b {
					buf[i/8] |= 1 << uint(i%8)
				}
			}
		}
		out = append(out, fmt.Sprintf("%d %d %s", round, nbit, hex.EncodeToString(buf)))
	}
	if !any {
		return nil
	}
	return out
}

// writeFixtureLines writes pre-rendered fixture lines.
func writeFixtureLines(t *testing.T, path string, lines []string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// readOptionalFixture reads a fixture's lines, or nil when the file does
// not exist (non-adaptive fixtures have no feedback sidecar).
func readOptionalFixture(t *testing.T, path string) []string {
	t.Helper()
	if _, err := os.Stat(path); err != nil {
		return nil
	}
	return readFaultedFixture(t, path)
}

func writeFaultedFixture(t *testing.T, path string, tr *engine.Transcript, n int) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, line := range flattenFaultedTranscript(t, tr, n) {
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func readFaultedFixture(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing fixture %s (generate with -update-fixtures ONLY from a known-good tree): %v", path, err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

package protocol_test

import (
	"bufio"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynstream"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/rng"

	// Register the migrated protocols so Build resolves them.
	// (dynstream above registers semistream-matching from its init too.)
	_ "repro/internal/agm"
	_ "repro/internal/coloring"
	_ "repro/internal/degeneracy"
	_ "repro/internal/densest"
	_ "repro/internal/equality"
	_ "repro/internal/matchproto"
	_ "repro/internal/misproto"
	_ "repro/internal/mst"
	_ "repro/internal/sparsify"
	_ "repro/internal/triangles"
)

// updateFixtures regenerates the committed golden transcripts. The three
// fixtures for palette-sparsification, triangle-count and mst-weight were
// recorded from the pre-migration per-package run loops; they must only
// ever be regenerated for a deliberate, documented format change — they
// exist so that the migration onto the protocol registry (and any future
// refactor behind it) cannot silently move a single sketch bit.
var updateFixtures = flag.Bool("update-fixtures", false, "rewrite testdata transcript fixtures")

// fixtureCase pins one registry-built protocol execution whose full
// transcript is committed under testdata/. Graph and coin seeds match the
// corresponding wire.SmokeSpecs entries, so the same fixtures also pin
// the service parity sweep.
type fixtureCase struct {
	label    string // fixture file name, sans .golden
	protocol string // registered protocol name
	g        *graph.Graph
	coins    *rng.PublicCoins
}

func protocolFixtureCases() []fixtureCase {
	return []fixtureCase{
		{label: "palette-sparsification", protocol: "palette-sparsification",
			g: gen.Gnp(40, 0.2, rng.NewSource(31)), coins: rng.NewPublicCoins(32)},
		{label: "triangle-count", protocol: "triangle-count-sketch",
			g: gen.Gnp(40, 0.3, rng.NewSource(33)), coins: rng.NewPublicCoins(34)},
		{label: "mst-weight", protocol: "mst-weight",
			g: gen.Gnp(24, 0.25, rng.NewSource(35)), coins: rng.NewPublicCoins(36)},
		{label: "agm-cut-sparsifier", protocol: "agm-cut-sparsifier",
			g: gen.Gnp(30, 0.3, rng.NewSource(37)), coins: rng.NewPublicCoins(38)},
		{label: "densest-subgraph-sketch", protocol: "densest-subgraph-sketch",
			g: gen.Gnp(40, 0.3, rng.NewSource(39)), coins: rng.NewPublicCoins(40)},
		{label: "degeneracy-sketch", protocol: "degeneracy-sketch",
			g: gen.Gnp(40, 0.3, rng.NewSource(41)), coins: rng.NewPublicCoins(42)},
		{label: "agm-components", protocol: "agm-components",
			g: gen.Gnp(40, 0.25, rng.NewSource(43)), coins: rng.NewPublicCoins(44)},
		{label: "equality-public-coin", protocol: "equality-public-coin",
			g: gen.Gnp(40, 0.3, rng.NewSource(45)), coins: rng.NewPublicCoins(46)},
	}
}

// TestGoldenFixtureTranscripts asserts, for every registered one-round
// protocol and Workers ∈ {1, 2, 8}, byte-for-byte equality of the full
// transcript with the fixture committed under testdata/. Because the
// protocol instance comes from the registry builder, this also pins the
// builder's configuration (weights seed, sampling rate, forest config).
func TestGoldenFixtureTranscripts(t *testing.T) {
	for _, fc := range protocolFixtureCases() {
		fc := fc
		t.Run(fc.label, func(t *testing.T) {
			path := filepath.Join("testdata", fc.label+".golden")
			if *updateFixtures {
				writeTranscriptFixture(t, path, execFixture(t, fc, 1), fc.g.N())
			}
			want := readTranscriptFixture(t, path)
			for _, workers := range []int{1, 2, 8} {
				got := flattenTranscript(t, execFixture(t, fc, workers), fc.g.N())
				compareTranscriptLines(t, fmt.Sprintf("%s workers=%d", fc.label, workers), got, want)
			}
		})
	}
}

// twoRoundFixtureCases pins the adaptive two-round protocols through
// their registry builders. The fixtures were recorded from the
// pre-migration tree (private memo-locked driver loops inside matchproto
// and misproto), so they are the byte-level contract the migration onto
// the engine's referee-feedback path must preserve: every player message
// of both rounds AND the decoded outcome, at Workers ∈ {1, 2, 8}. Graph
// and coin seeds match the corresponding wire.SmokeSpecs entries.
func twoRoundFixtureCases() []fixtureCase {
	return []fixtureCase{
		{label: "mm-tworound", protocol: "mm-tworound",
			g: gen.Gnp(50, 0.3, rng.NewSource(13)), coins: rng.NewPublicCoins(14)},
		{label: "mis-tworound", protocol: "mis-tworound",
			g: gen.Gnp(50, 0.25, rng.NewSource(15)), coins: rng.NewPublicCoins(16)},
	}
}

// TestGoldenTwoRoundFixtures asserts byte-for-byte equality of the
// two-round protocols' player transcripts plus their decoded outcomes
// against the committed pre-migration fixtures, for Workers ∈ {1, 2, 8}.
// Only player messages are pinned here — the post-migration transcripts
// additionally carry a referee feedback lane, pinned separately by
// TestGoldenTwoRoundFeedback.
func TestGoldenTwoRoundFixtures(t *testing.T) {
	for _, fc := range twoRoundFixtureCases() {
		fc := fc
		t.Run(fc.label, func(t *testing.T) {
			path := filepath.Join("testdata", fc.label+".golden")
			if *updateFixtures {
				tr, out := execOutcomeFixture(t, fc, 1)
				lines := append(flattenTranscript(t, tr, fc.g.N()), outcomeLine(out))
				writeFixtureLines(t, path, lines)
			}
			want := readTranscriptFixture(t, path)
			for _, workers := range []int{1, 2, 8} {
				tr, out := execOutcomeFixture(t, fc, workers)
				got := append(flattenTranscript(t, tr, fc.g.N()), outcomeLine(out))
				compareTranscriptLines(t, fmt.Sprintf("%s workers=%d", fc.label, workers), got, want)
			}
		})
	}
}

// TestGoldenTwoRoundFeedback pins the post-migration referee feedback of
// the adaptive two-round protocols, byte for byte at Workers ∈ {1, 2, 8},
// against sidecar fixtures (<label>.feedback, "round nbit hex" lines).
// The sidecars were recorded when the feedback lane was introduced; the
// player goldens above stay untouched pre-migration bytes. Structure is
// asserted too: the referee speaks after round 1 (non-empty feedback) and
// is silent after the final round.
func TestGoldenTwoRoundFeedback(t *testing.T) {
	for _, fc := range twoRoundFixtureCases() {
		fc := fc
		t.Run(fc.label, func(t *testing.T) {
			path := filepath.Join("testdata", fc.label+".feedback")
			if *updateFixtures {
				writeFixtureLines(t, path, flattenFeedback(t, execFixture(t, fc, 1)))
			}
			want := readTranscriptFixture(t, path)
			for _, workers := range []int{1, 2, 8} {
				tr := execFixture(t, fc, workers)
				if tr.FeedbackBitLen(0) == 0 {
					t.Fatalf("workers=%d: no referee feedback after round 1", workers)
				}
				if tr.FeedbackBitLen(1) != 0 {
					t.Fatalf("workers=%d: referee spoke after the final round", workers)
				}
				got := flattenFeedback(t, tr)
				compareTranscriptLines(t, fmt.Sprintf("%s feedback workers=%d", fc.label, workers), got, want)
			}
		})
	}
}

// semiStreamFixtureCases pins the multi-pass semi-streaming matching
// protocol: once on a static Gnp graph and once on the final epoch of a
// dyn-churn dynamic stream (the same graph wire.BuildGraph materializes
// for the "semistream-matching-dyn" smoke spec). Graph and coin seeds
// match the corresponding wire.SmokeSpecs entries.
func semiStreamFixtureCases() []fixtureCase {
	dyn, err := dynstream.Generate(dynstream.Spec{
		N: 40, Epochs: 4, OpsPerEpoch: 50,
		Pattern: dynstream.PatternChurn, TargetEdges: 80, Churn: 0.3, Seed: 49,
	})
	if err != nil {
		panic(err)
	}
	return []fixtureCase{
		{label: "semistream-matching", protocol: "semistream-matching",
			g: gen.Gnp(40, 0.25, rng.NewSource(47)), coins: rng.NewPublicCoins(48)},
		{label: "semistream-matching-dyn", protocol: "semistream-matching",
			g: dyn.FinalGraph(), coins: rng.NewPublicCoins(50)},
	}
}

// TestGoldenSemiStreamFixtures pins the multi-pass protocol's player
// transcripts and decoded outcomes byte for byte at Workers ∈ {1, 2, 8}.
// Unlike the two-round fixtures these span 2⌈1/ε⌉+2 passes, so they are
// the regression anchor for the engine's multi-round feedback scheduling
// as much as for the protocol itself.
func TestGoldenSemiStreamFixtures(t *testing.T) {
	for _, fc := range semiStreamFixtureCases() {
		fc := fc
		t.Run(fc.label, func(t *testing.T) {
			path := filepath.Join("testdata", fc.label+".golden")
			if *updateFixtures {
				tr, out := execOutcomeFixture(t, fc, 1)
				lines := append(flattenTranscript(t, tr, fc.g.N()), outcomeLine(out))
				writeFixtureLines(t, path, lines)
			}
			want := readTranscriptFixture(t, path)
			for _, workers := range []int{1, 2, 8} {
				tr, out := execOutcomeFixture(t, fc, workers)
				got := append(flattenTranscript(t, tr, fc.g.N()), outcomeLine(out))
				compareTranscriptLines(t, fmt.Sprintf("%s workers=%d", fc.label, workers), got, want)
			}
		})
	}
}

// TestGoldenSemiStreamFeedback pins the referee's per-pass feedback of
// the semi-streaming protocol against sidecar fixtures. Structurally the
// referee speaks after every pass except the last (it feeds the running
// matching and active-vertex set forward), unlike the two-round
// protocols where it speaks exactly once.
func TestGoldenSemiStreamFeedback(t *testing.T) {
	for _, fc := range semiStreamFixtureCases() {
		fc := fc
		t.Run(fc.label, func(t *testing.T) {
			path := filepath.Join("testdata", fc.label+".feedback")
			if *updateFixtures {
				writeFixtureLines(t, path, flattenFeedback(t, execFixture(t, fc, 1)))
			}
			want := readTranscriptFixture(t, path)
			for _, workers := range []int{1, 2, 8} {
				tr := execFixture(t, fc, workers)
				for round := 0; round < tr.Rounds()-1; round++ {
					if tr.FeedbackBitLen(round) == 0 {
						t.Fatalf("workers=%d: no referee feedback after pass %d", workers, round)
					}
				}
				if tr.FeedbackBitLen(tr.Rounds()-1) != 0 {
					t.Fatalf("workers=%d: referee spoke after the final pass", workers)
				}
				got := flattenFeedback(t, tr)
				compareTranscriptLines(t, fmt.Sprintf("%s feedback workers=%d", fc.label, workers), got, want)
			}
		})
	}
}

// flattenFeedback renders one "round nbit hex" line per round of the
// transcript's referee feedback lane (same bit packing as player lines).
func flattenFeedback(t *testing.T, tr *engine.Transcript) []string {
	t.Helper()
	var out []string
	for round := 0; round < tr.Rounds(); round++ {
		nbit := tr.FeedbackBitLen(round)
		buf := make([]byte, (nbit+7)/8)
		if nbit > 0 {
			r := tr.Feedback(round)
			for i := 0; i < nbit; i++ {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatalf("feedback round %d bit %d: %v", round, i, err)
				}
				if b {
					buf[i/8] |= 1 << uint(i%8)
				}
			}
		}
		out = append(out, fmt.Sprintf("%d %d %s", round, nbit, hex.EncodeToString(buf)))
	}
	return out
}

// outcomeLine renders a decoded Outcome as one canonical fixture line.
func outcomeLine(o protocol.Outcome) string {
	return fmt.Sprintf("outcome %s %d %g %t %t", o.Kind, o.Size, o.Value, o.Checked, o.Valid)
}

func execOutcomeFixture(t *testing.T, fc fixtureCase, workers int) (*engine.Transcript, protocol.Outcome) {
	t.Helper()
	p, err := protocol.Build(fc.protocol, fc.g)
	if err != nil {
		t.Fatal(err)
	}
	eng := &engine.Engine{Workers: workers, ShardSize: 3}
	res, tr, err := engine.RunWithTranscript(context.Background(), eng, p, fc.g, fc.coins)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res.Output
}

func writeFixtureLines(t *testing.T, path string, lines []string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func execFixture(t *testing.T, fc fixtureCase, workers int) *engine.Transcript {
	t.Helper()
	p, err := protocol.Build(fc.protocol, fc.g)
	if err != nil {
		t.Fatal(err)
	}
	eng := &engine.Engine{Workers: workers, ShardSize: 3}
	tr, _, err := eng.Execute(context.Background(), p, fc.g, fc.coins)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// flattenTranscript renders a transcript as one canonical line per
// (round, vertex): "round vertex nbit hex" with bits packed LSB-first
// exactly as bitio.Writer lays them out (same format as the engine and
// faults fixtures).
func flattenTranscript(t *testing.T, tr *engine.Transcript, n int) []string {
	t.Helper()
	var out []string
	for round := 0; round < tr.Rounds(); round++ {
		for v := 0; v < n; v++ {
			nbit := tr.BitLen(round, v)
			r := tr.Message(round, v)
			buf := make([]byte, (nbit+7)/8)
			for i := 0; i < nbit; i++ {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatalf("round %d vertex %d bit %d: %v", round, v, i, err)
				}
				if b {
					buf[i/8] |= 1 << uint(i%8)
				}
			}
			out = append(out, fmt.Sprintf("%d %d %d %s", round, v, nbit, hex.EncodeToString(buf)))
		}
	}
	return out
}

func writeTranscriptFixture(t *testing.T, path string, tr *engine.Transcript, n int) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, line := range flattenTranscript(t, tr, n) {
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func readTranscriptFixture(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing fixture %s (generate with -update-fixtures ONLY from a known-good tree): %v", path, err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func compareTranscriptLines(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d transcript messages, fixture has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: transcript message %d drifted from committed fixture:\n got %s\nwant %s",
				label, i, got[i], want[i])
		}
	}
}

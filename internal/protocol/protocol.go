// Package protocol is the single abstraction every sketching protocol in
// this repository runs behind. The paper's whole argument is a contrast
// between one fixed model — every player sends one message from its local
// view and public coins, a referee decodes — and many protocols run
// inside it: polylog upper bounds (AGM forests, palette sparsification,
// subgraph counting, sparsifiers, densest subgraph, degeneracy) versus
// the Ω(n^(1/2−ε)) lower bound for maximal matching and MIS. One model,
// many protocols means one contract, many implementations.
//
// The contract is Sketcher: a one-round core protocol plus a Verify
// method folding its typed output into the uniform Outcome the wire
// carries. Lift adapts a Sketcher to engine.Protocol[Outcome] (via the
// congested-clique one-round embedding), so every protocol inherits the
// engine's worker sharding, bit accounting, transcript sealing, fault
// injection, and the refereed remote path for free. Multi-round
// protocols (matchproto, misproto) skip Sketcher and adapt directly via
// Adapt.
//
// Protocols self-register from their own packages (init() + Register),
// so the wire registry is the set of imported protocol packages rather
// than a hand-maintained map.
package protocol

import (
	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Outcome summarizes a referee's decoded output in a protocol-agnostic
// shape the wire can carry: the output's kind and size, plus — when the
// protocol's verifier knows a ground truth — whether the output passed
// verification against the actual input graph. (The verifier runs on the
// daemon, which holds the graph; the model's referee of course never
// sees it. Valid is service-level auditing, not part of the sketching
// model.)
type Outcome struct {
	// Kind names the output shape: "edges", "vertices", "count",
	// "value", "coloring", "sparsifier", or "decision".
	Kind string `json:"kind"`
	// Size is the output's cardinality (edge count, vertex count, the
	// counted value itself for "count", the number of distinct colors for
	// "coloring", the support size for "sparsifier").
	Size int `json:"size"`
	// Value carries numeric outputs that are not cardinalities: the
	// estimate itself for "value" outcomes, the total edge weight for
	// "sparsifier". Zero for purely combinatorial kinds.
	Value float64 `json:"value,omitempty"`
	// Checked reports whether a ground-truth verifier ran.
	Checked bool `json:"checked"`
	// Valid is the verifier's verdict (false when Checked is false).
	Valid bool `json:"valid"`
}

// Sketcher is the uniform one-round protocol contract: the core
// Sketch/Decode pair (one message per player from its local view, a
// referee decoding all messages) plus a verifier folding the typed
// output into the wire's Outcome, judged against the actual input graph
// where a ground truth is computable.
type Sketcher[O any] interface {
	core.Protocol[O]
	// Verify summarizes out as an Outcome. It runs outside the sketching
	// model (it may inspect g); implementations must be deterministic.
	Verify(g *graph.Graph, out O) Outcome
}

// adapted lifts a typed engine protocol to engine.Protocol[Outcome] so
// that heterogeneous protocols (edge outputs, vertex sets, counts,
// estimates) can share one executor, one batch, and one wire shape.
type adapted[T any] struct {
	inner   engine.Protocol[T]
	outcome func(T) Outcome
}

// resilientDecoder is faults.ResilientProtocol's extra method, declared
// structurally so this package need not import faults (whose tests
// exercise protocol packages that import this one). A test in
// protocol_test asserts the interfaces stay in sync.
type resilientDecoder[T any] interface {
	DecodeResilient(n int, t *engine.Transcript, coins *rng.PublicCoins) (T, core.Resilience, error)
}

// adaptiveFeedback is engine.Adaptive's extra method, declared
// structurally (like resilientDecoder) so the check works against any
// inner protocol type. A test in protocol_test asserts the interfaces
// stay in sync.
type adaptiveFeedback interface {
	Feedback(round int, t *engine.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error)
}

func (a *adapted[T]) Name() string { return a.inner.Name() }
func (a *adapted[T]) Rounds() int  { return a.inner.Rounds() }

func (a *adapted[T]) Broadcast(round int, view core.VertexView, t *engine.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	return a.inner.Broadcast(round, view, t, coins)
}

// BroadcastBlock forwards the inner protocol's columnar path when it has
// one (cclique.OneRound always does) and otherwise falls back to
// per-view Broadcast calls — byte-identical to the engine's own scalar
// loop, so adapting a protocol never changes which bits a block
// execution produces.
func (a *adapted[T]) BroadcastBlock(round int, views []core.VertexView, t *engine.Transcript, coins *rng.PublicCoins, out []*bitio.Writer) (int, error) {
	if bb, ok := a.inner.(engine.BlockBroadcaster); ok {
		return bb.BroadcastBlock(round, views, t, coins, out)
	}
	for i, view := range views {
		w, err := a.inner.Broadcast(round, view, t, coins)
		if err != nil {
			return i, err
		}
		out[i] = w
	}
	return 0, nil
}

// Feedback forwards the inner protocol's referee feedback when it is
// adaptive. For a non-adaptive inner protocol it returns a nil writer,
// which the engine seals as an empty feedback slot — bit-identical (and
// stats-identical) to not implementing engine.Adaptive at all, so the
// unconditional forwarding method is digest-neutral for every wrapped
// one-round protocol.
func (a *adapted[T]) Feedback(round int, t *engine.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if ap, ok := a.inner.(adaptiveFeedback); ok {
		return ap.Feedback(round, t, coins)
	}
	return nil, nil
}

func (a *adapted[T]) Decode(n int, t *engine.Transcript, coins *rng.PublicCoins) (Outcome, error) {
	out, err := a.inner.Decode(n, t, coins)
	if err != nil {
		return Outcome{}, err
	}
	return a.outcome(out), nil
}

// DecodeResilient forwards to the inner protocol's resilient decode when
// it has one, with the same strict-decode fallback semantics as
// cclique.OneRound: a clean strict decode reports ok (faults.Run's
// channel-record folding still demotes it when faults were injected).
func (a *adapted[T]) DecodeResilient(n int, t *engine.Transcript, coins *rng.PublicCoins) (Outcome, core.Resilience, error) {
	if rp, ok := a.inner.(resilientDecoder[T]); ok {
		out, verdict, err := rp.DecodeResilient(n, t, coins)
		if err != nil {
			return Outcome{}, verdict, err
		}
		return a.outcome(out), verdict, nil
	}
	out, err := a.inner.Decode(n, t, coins)
	if err != nil {
		return Outcome{}, core.ResilienceFailed, err
	}
	return a.outcome(out), core.ResilienceOK, nil
}

// Adapt lifts a multi-round engine protocol with an explicit outcome
// summarizer. Prefer Lift for one-round Sketchers.
func Adapt[T any](p engine.Protocol[T], outcome func(T) Outcome) engine.Protocol[Outcome] {
	return &adapted[T]{inner: p, outcome: outcome}
}

// EdgesOutcome returns the outcome summarizer for edge-set outputs;
// verify may be nil (the outcome is then reported unchecked).
func EdgesOutcome(g *graph.Graph, verify func(*graph.Graph, []graph.Edge) bool) func([]graph.Edge) Outcome {
	return func(out []graph.Edge) Outcome {
		o := Outcome{Kind: "edges", Size: len(out)}
		if verify != nil {
			o.Checked, o.Valid = true, verify(g, out)
		}
		return o
	}
}

// VerticesOutcome returns the outcome summarizer for vertex-set outputs;
// verify may be nil.
func VerticesOutcome(g *graph.Graph, verify func(*graph.Graph, []int) bool) func([]int) Outcome {
	return func(out []int) Outcome {
		o := Outcome{Kind: "vertices", Size: len(out)}
		if verify != nil {
			o.Checked, o.Valid = true, verify(g, out)
		}
		return o
	}
}

// CountOutcome returns the outcome summarizer for count outputs; verify
// may be nil.
func CountOutcome(g *graph.Graph, verify func(*graph.Graph, int) bool) func(int) Outcome {
	return func(out int) Outcome {
		o := Outcome{Kind: "count", Size: out}
		if verify != nil {
			o.Checked, o.Valid = true, verify(g, out)
		}
		return o
	}
}

// Lift embeds a one-round Sketcher into the broadcast congested clique
// (cclique.OneRound) and folds its output through its own Verify. The
// result is a full engine protocol: sharded execution, sealed
// transcripts, fault injection, and the wire all work unchanged.
func Lift[O any](s Sketcher[O], g *graph.Graph) engine.Protocol[Outcome] {
	return Adapt[O](&cclique.OneRound[O]{P: s}, func(out O) Outcome {
		return s.Verify(g, out)
	})
}

package protocol_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cclique"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/triangles"
)

// TestAdaptedImplementsResilientProtocol pins the structural contract the
// adapter relies on: protocol.Adapt's result must satisfy
// faults.ResilientProtocol[Outcome] (the adapter forwards DecodeResilient
// through a locally-declared mirror of that interface, because importing
// faults from package protocol would be an import cycle). If the faults
// interface ever changes shape, this assertion fails to compile the
// forwarding away silently.
func TestAdaptedImplementsResilientProtocol(t *testing.T) {
	p := protocol.Adapt[[]graph.Edge](&cclique.OneRound[[]graph.Edge]{}, nil)
	if _, ok := p.(faults.ResilientProtocol[protocol.Outcome]); !ok {
		t.Fatal("protocol.Adapt result does not implement faults.ResilientProtocol[Outcome]; " +
			"the resilientDecoder mirror in protocol.go has drifted from faults.ResilientProtocol")
	}
}

// TestRegisterRejectsBadInput checks the registration programming-error
// panics: empty name, nil builder, duplicate name.
func TestRegisterRejectsBadInput(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	dummy := func(g *graph.Graph) protocol.Sketcher[float64] { return triangles.New(0.5) }
	expectPanic("empty name", func() { protocol.RegisterSketcher("", dummy) })
	expectPanic("nil builder", func() { protocol.Register("protocol-test-nil", nil) })
	protocol.RegisterSketcher("protocol-test-dup", dummy)
	expectPanic("duplicate", func() { protocol.RegisterSketcher("protocol-test-dup", dummy) })
}

// TestLookupUnknownListsKnown checks the error message for an unknown
// name carries the registered names, so a wire client's typo is
// self-diagnosing.
func TestLookupUnknownListsKnown(t *testing.T) {
	_, err := protocol.Lookup("no-such-protocol")
	if err == nil {
		t.Fatal("expected error for unknown protocol")
	}
	if !strings.Contains(err.Error(), "mst-weight") {
		t.Errorf("error should list known protocols, got: %v", err)
	}
	if _, err := protocol.Build("no-such-protocol", gen.Gnp(8, 0.5, rng.NewSource(1))); err == nil {
		t.Fatal("Build should propagate the lookup error")
	}
}

// TestLiftRunsSketcherEndToEnd checks that a registry-built protocol
// executes through the engine and reports the Sketcher's own Verify
// verdict in the outcome.
func TestLiftRunsSketcherEndToEnd(t *testing.T) {
	g := gen.Gnp(30, 0.4, rng.NewSource(5))
	p, err := protocol.Build("triangle-count-sketch", g)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Name(), "triangle-count-sketch/bcc"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
	res, err := engine.Run[protocol.Outcome](
		context.Background(), &engine.Engine{Workers: 2}, p, g, rng.NewPublicCoins(6))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output
	if out.Kind != "value" {
		t.Errorf("Kind = %q, want %q", out.Kind, "value")
	}
	if !out.Checked {
		t.Error("outcome should be checked: triangles has an exact verifier")
	}
	if out.Value <= 0 {
		t.Errorf("Value = %v, want a positive triangle estimate", out.Value)
	}
}

package protocol

// The registry maps wire protocol names to builders. Protocol packages
// self-register from init() (see their register.go files), so the set of
// available protocols is exactly the set of imported packages — there is
// no central map to keep in sync. Package wire re-exports the lookups;
// importing a protocol package anywhere in a binary makes it reachable
// over the wire.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Builder constructs a FRESH protocol instance for one run on g.
// Protocol values memoize per-run state, so instances are never shared
// across executions; the graph parameter feeds graph-derived parameters
// (promised max degree, edge weights) and the outcome verifier.
type Builder func(g *graph.Graph) engine.Protocol[Outcome]

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register adds a named builder. It is meant to be called from protocol
// packages' init() functions and panics on empty or duplicate names —
// both are programming errors a test catches immediately.
func Register(name string, build Builder) {
	if name == "" || build == nil {
		panic("protocol: Register with empty name or nil builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("protocol: duplicate registration of %q", name))
	}
	registry[name] = build
}

// RegisterSketcher registers a one-round Sketcher under name, lifting it
// through Lift at build time.
func RegisterSketcher[O any](name string, build func(g *graph.Graph) Sketcher[O]) {
	Register(name, func(g *graph.Graph) engine.Protocol[Outcome] {
		return Lift[O](build(g), g)
	})
}

// Lookup resolves a registered name.
func Lookup(name string) (Builder, error) {
	registryMu.RLock()
	build, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q (known: %v)", name, Names())
	}
	return build, nil
}

// Build constructs a fresh instance of the named protocol for g.
func Build(name string, g *graph.Graph) (engine.Protocol[Outcome], error) {
	build, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return build(g), nil
}

// Names returns the sorted registered names.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

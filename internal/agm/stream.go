package agm

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/graph"
	"repro/internal/l0"
	"repro/internal/rng"
)

// StreamSketcher maintains the AGM vertex sketches under a dynamic edge
// stream (insertions and deletions). Linearity makes this free: an
// insertion adds the edge's contribution to both endpoint sketches, a
// deletion subtracts it, and after any prefix of the stream the sketches
// are bit-identical to sketching the current graph from scratch — the
// connection to dynamic graph streams that the paper's related-work
// discussion leans on ([1], "dynamic streams").
type StreamSketcher struct {
	n       int
	cfg     Config
	sps     []l0.Spec
	perVert [][]*l0.Sketch
	present map[uint64]bool
}

// NewStreamSketcher prepares sketches for an n-vertex evolving graph,
// using the same public coins a ForestProtocol referee would.
func NewStreamSketcher(n int, cfg Config, coins *rng.PublicCoins) *StreamSketcher {
	cfg = cfg.withDefaults(n)
	sps := specs(n, cfg, coins)
	perVert := make([][]*l0.Sketch, n)
	for v := range perVert {
		perVert[v] = make([]*l0.Sketch, len(sps))
		for i, sp := range sps {
			perVert[v][i] = sp.NewSketch()
		}
	}
	return &StreamSketcher{
		n:       n,
		cfg:     cfg,
		sps:     sps,
		perVert: perVert,
		present: make(map[uint64]bool),
	}
}

// Insert adds edge {u, v}. Inserting a present edge is an error (the
// model is a simple graph).
func (s *StreamSketcher) Insert(u, v int) error { return s.update(u, v, +1) }

// Delete removes edge {u, v}. Deleting an absent edge is an error.
func (s *StreamSketcher) Delete(u, v int) error { return s.update(u, v, -1) }

func (s *StreamSketcher) update(u, v int, dir int64) error {
	if u == v || u < 0 || v < 0 || u >= s.n || v >= s.n {
		return fmt.Errorf("agm: stream update (%d,%d) out of range", u, v)
	}
	idx := edgeIndex(s.n, u, v)
	if dir > 0 && s.present[idx] {
		return fmt.Errorf("agm: stream insert of present edge (%d,%d)", u, v)
	}
	if dir < 0 && !s.present[idx] {
		return fmt.Errorf("agm: stream delete of absent edge (%d,%d)", u, v)
	}
	s.present[idx] = dir > 0
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	for i, sp := range s.sps {
		sp.Update(s.perVert[lo][i], idx, dir)  // smaller endpoint: +1 per edge
		sp.Update(s.perVert[hi][i], idx, -dir) // larger endpoint: -1
	}
	return nil
}

// Edges returns the number of currently present edges.
func (s *StreamSketcher) Edges() int {
	count := 0
	for _, p := range s.present {
		if p {
			count++
		}
	}
	return count
}

// Sketch serializes vertex v's current sketch in exactly the
// ForestProtocol wire format.
func (s *StreamSketcher) Sketch(v int) *bitio.Writer {
	w := &bitio.Writer{}
	for _, sk := range s.perVert[v] {
		sk.Write(w)
	}
	return w
}

// SpanningForest decodes a spanning forest of the current graph from the
// maintained sketches, exactly as the one-round referee would. The
// sketcher remains usable afterwards (decoding works on serialized
// copies).
func (s *StreamSketcher) SpanningForest(coins *rng.PublicCoins) ([]graph.Edge, error) {
	p := NewSpanningForest(s.cfg)
	readers := make([]*bitio.Reader, s.n)
	for v := 0; v < s.n; v++ {
		readers[v] = bitio.ReaderFor(s.Sketch(v))
	}
	return p.Decode(s.n, readers, coins)
}

package agm

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// resetSpecCache empties the process-wide spec memo so a test can force a
// from-scratch derivation.
func resetSpecCache() {
	specCache.Lock()
	specCache.m = nil
	specCache.Unlock()
}

// TestMemoizedSpecsMatchFresh is the memoization soundness check: a cached
// stack must be indistinguishable — parameter for parameter — from one
// derived from scratch with the same (universe, count, coin subtree).
func TestMemoizedSpecsMatchFresh(t *testing.T) {
	coins := rng.NewPublicCoins(77)
	const universe, count = 50 * 50, 12

	resetSpecCache()
	memoized := derivedSpecs(universe, count, coins.Derive("agm"))
	fresh := deriveSpecsFresh(universe, count, coins.Derive("agm"))

	if len(memoized) != len(fresh) {
		t.Fatalf("stack sizes differ: %d vs %d", len(memoized), len(fresh))
	}
	for i := range memoized {
		if !reflect.DeepEqual(memoized[i], fresh[i]) {
			t.Errorf("spec %d: memoized and fresh derivations differ", i)
		}
	}

	// A repeat lookup must serve the identical cached slice, not re-derive.
	again := derivedSpecs(universe, count, coins.Derive("agm"))
	if &again[0] != &memoized[0] {
		t.Error("second lookup did not hit the cache")
	}

	// Distinct coin subtrees must not collide in the cache.
	other := derivedSpecs(universe, count, coins.Derive("agm-backup"))
	if reflect.DeepEqual(other[0], memoized[0]) {
		t.Error("different coin subtree produced an identical spec (key collision?)")
	}
}

// TestMemoizedSpecsSketchIdentically exercises the memo at the behavior
// level: sketches built under cached specs serialize and sample exactly as
// sketches built under a fresh derivation.
func TestMemoizedSpecsSketchIdentically(t *testing.T) {
	coins := rng.NewPublicCoins(78)
	const universe, count = 30 * 30, 6

	resetSpecCache()
	memoized := derivedSpecs(universe, count, coins.Derive("agm"))
	fresh := deriveSpecsFresh(universe, count, coins.Derive("agm"))

	updates := []struct {
		idx   uint64
		delta int64
	}{{3, 1}, {77, -1}, {415, 1}, {3, -1}, {899, 1}, {77, 1}}
	for i := range memoized {
		ma, fa := memoized[i].NewSketch(), fresh[i].NewSketch()
		for _, u := range updates {
			memoized[i].Update(ma, u.idx, u.delta)
			fresh[i].Update(fa, u.idx, u.delta)
		}
		var wm, wf bitio.Writer
		ma.Write(&wm)
		fa.Write(&wf)
		if wm.Len() != wf.Len() || !bytes.Equal(wm.Bytes(), wf.Bytes()) {
			t.Fatalf("spec %d: memoized and fresh sketches serialize differently", i)
		}
		mi, mv, mok := memoized[i].Sample(ma)
		fi, fv, fok := fresh[i].Sample(fa)
		if mi != fi || mv != fv || mok != fok {
			t.Fatalf("spec %d: samples diverge: (%d,%d,%v) vs (%d,%d,%v)", i, mi, mv, mok, fi, fv, fok)
		}
	}
}

// TestSpecCacheTranscriptStability runs the full forest protocol three
// times — cold cache, cold cache again, warm cache — and demands
// byte-identical per-player messages, so memoization can never leak into
// the transcript.
func TestSpecCacheTranscriptStability(t *testing.T) {
	g := gen.Gnp(40, 0.2, rng.NewSource(5))
	coins := rng.NewPublicCoins(6)
	p := NewSpanningForest(Config{BackupReps: 2})
	views := core.Views(g)

	capture := func() [][]byte {
		out := make([][]byte, len(views))
		for v, view := range views {
			w, err := p.Sketch(view, coins)
			if err != nil {
				t.Fatalf("sketch %d: %v", v, err)
			}
			out[v] = append([]byte(nil), w.Bytes()...)
			bitio.Release(w)
		}
		return out
	}

	resetSpecCache()
	cold1 := capture()
	resetSpecCache()
	cold2 := capture()
	warm := capture()

	for v := range cold1 {
		if !bytes.Equal(cold1[v], cold2[v]) {
			t.Fatalf("vertex %d: two cold-cache runs disagree", v)
		}
		if !bytes.Equal(cold1[v], warm[v]) {
			t.Fatalf("vertex %d: warm-cache run disagrees with cold run", v)
		}
	}

	// And the decoded output must be a spanning forest either way.
	res, err := core.Run[[]graph.Edge](p, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsSpanningForest(g, res.Output) {
		t.Fatal("decoded output is not a spanning forest")
	}
}

// BenchmarkAGMSketchVertex measures the per-vertex sketching cost of the
// forest protocol — the engine's hot path — with the spec cache warm, as
// it is for all but the first vertex of a run.
func BenchmarkAGMSketchVertex(b *testing.B) {
	g := gen.Gnp(1000, 0.01, rng.NewSource(1))
	coins := rng.NewPublicCoins(2)
	p := NewSpanningForest(Config{})
	views := core.Views(g)
	warm := views[0]
	if _, err := p.Sketch(warm, coins); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := views[i%len(views)]
		w, err := p.Sketch(view, coins)
		if err != nil {
			b.Fatal(err)
		}
		bitio.Release(w)
	}
}

package agm

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// BridgeProtocol implements footnote 1 of the paper: the input graph is
// promised to consist of two (internally well-connected) blobs joined by a
// single bridge edge, and the referee must output that bridge.
//
// Each vertex sends (a) up to c·log n uniformly sampled incident edges,
// from which the referee recovers the two-blob partition w.h.p., and (b)
// the signed sum s_w = Σ_{z∈N(w), z>w} id(w,z) − Σ_{z∈N(w), z<w} id(w,z)
// with id(u,v) = min·n + max. Summing s_w over the vertices of one blob
// cancels every internal edge and leaves ±id(bridge), which identifies
// the bridge exactly — even though neither endpoint of the bridge can
// distinguish it locally from its other edges.
type BridgeProtocol struct {
	// SamplesPerVertex is the number of incident-edge samples, 0 meaning
	// 4·ceil(log2 n) + 4.
	SamplesPerVertex int
}

var _ core.Protocol[graph.Edge] = (*BridgeProtocol)(nil)

// NewBridgeFinder returns the footnote-1 protocol.
func NewBridgeFinder(samplesPerVertex int) *BridgeProtocol {
	return &BridgeProtocol{SamplesPerVertex: samplesPerVertex}
}

// Name implements core.Protocol.
func (p *BridgeProtocol) Name() string { return "footnote1-bridge" }

func (p *BridgeProtocol) samples(n int) int {
	if p.SamplesPerVertex > 0 {
		return p.SamplesPerVertex
	}
	return 4*bitio.UintWidth(n+1) + 4
}

// Sketch implements core.Protocol.
func (p *BridgeProtocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	idWidth := bitio.UintWidth(view.N)

	// (a) Sampled incident edges. Sampling coins are derived per vertex
	// from the public coins; the referee does not need to re-derive them,
	// it just reads the sampled neighbor IDs.
	src := coins.Derive("bridge-sample").DeriveIndex(view.ID).Source()
	k := p.samples(view.N)
	if k > view.Degree() {
		k = view.Degree()
	}
	w.WriteUvarint(uint64(k))
	perm := src.Perm(view.Degree())
	for i := 0; i < k; i++ {
		w.WriteUint(uint64(view.Neighbors[perm[i]]), idWidth)
	}

	// (b) Signed edge-ID sum. |s_w| < deg · n² fits well inside int64 for
	// the graph sizes this model simulates; encode sign + magnitude.
	var s int64
	for _, z := range view.Neighbors {
		id := int64(edgeIndex(view.N, view.ID, z))
		if z > view.ID {
			s += id
		} else {
			s -= id
		}
	}
	neg := s < 0
	if neg {
		s = -s
	}
	w.WriteBit(neg)
	w.WriteUvarint(uint64(s))
	return w, nil
}

// Decode implements core.Protocol.
func (p *BridgeProtocol) Decode(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) (graph.Edge, error) {
	idWidth := bitio.UintWidth(n)
	sampledBuilder := graph.NewBuilder(n)
	sums := make([]int64, n)
	for v := 0; v < n; v++ {
		r := sketches[v]
		k, err := r.ReadUvarint()
		if err != nil {
			return graph.Edge{}, fmt.Errorf("agm: bridge sketch %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				return graph.Edge{}, fmt.Errorf("agm: bridge sketch %d: %w", v, err)
			}
			if int(u) < n && int(u) != v {
				sampledBuilder.AddEdge(v, int(u))
			}
		}
		neg, err := r.ReadBit()
		if err != nil {
			return graph.Edge{}, err
		}
		mag, err := r.ReadUvarint()
		if err != nil {
			return graph.Edge{}, err
		}
		sums[v] = int64(mag)
		if neg {
			sums[v] = -sums[v]
		}
	}
	sampled := sampledBuilder.Build()
	return recoverBridge(n, sampled, sums, nil)
}

// tryCutSum sums s_w over the vertices of one candidate side. When exactly
// one true edge crosses the candidate cut, the internal terms cancel and
// ±id(bridge) remains; id = min·n + max (edgeIndex), so the quotient is
// the smaller endpoint.
func tryCutSum(n int, sums []int64, side []int) (graph.Edge, bool) {
	var total int64
	for _, v := range side {
		total += sums[v]
	}
	if total < 0 {
		total = -total
	}
	if total == 0 {
		return graph.Edge{}, false
	}
	u := int(total / int64(n))
	v := int(total % int64(n))
	if u < v && v < n {
		return graph.Edge{U: u, V: v}, true
	}
	return graph.Edge{}, false
}

// recoverBridge runs the cut-sum recovery over the sampled graph.
// damaged, when non-nil, marks vertices whose sketches were lost or
// garbled: candidate sides containing damaged vertices have meaningless
// sums, so clean sides are tried first and damaged-side decodes are
// skipped entirely — the total over all vertices is 0, hence every cut
// can be summed from whichever side survived intact.
func recoverBridge(n int, sampled *graph.Graph, sums []int64, damaged []bool) (graph.Edge, error) {
	sideClean := func(side []int) bool {
		if damaged == nil {
			return true
		}
		for _, v := range side {
			if damaged[v] {
				return false
			}
		}
		return true
	}

	comp, count := sampled.Components()
	if count >= 2 {
		// Bridge not among the samples: the sampled components separate
		// the blobs (w.h.p. each blob's samples keep it connected).
		for c := 0; c < count; c++ {
			var side []int
			for v := 0; v < n; v++ {
				if comp[v] == c {
					side = append(side, v)
				}
			}
			if !sideClean(side) {
				continue
			}
			if e, ok := tryCutSum(n, sums, side); ok {
				return e, nil
			}
		}
		return graph.Edge{}, fmt.Errorf("agm: no cut sum decoded across %d sampled components", count)
	}

	// The samples happened to include the bridge, so the sampled graph is
	// connected. The bridge is then a cut edge of the sampled graph:
	// remove each candidate cut edge, split into two sides, and let the
	// sum test confirm the true bridge.
	for _, cand := range cutEdges(sampled) {
		side := sideWithout(sampled, cand)
		if !sideClean(side) {
			// The cut can be summed from either shore; fall back to the
			// complement when this one holds damaged vertices.
			in := make([]bool, n)
			for _, v := range side {
				in[v] = true
			}
			side = side[:0]
			for v := 0; v < n; v++ {
				if !in[v] {
					side = append(side, v)
				}
			}
			if !sideClean(side) {
				continue
			}
		}
		if e, ok := tryCutSum(n, sums, side); ok {
			return e, nil
		}
	}
	return graph.Edge{}, fmt.Errorf("agm: connected sample with no verifiable cut edge")
}

// cutEdges returns the bridges of g by Tarjan's low-link algorithm
// (iterative to avoid deep recursion on large paths).
func cutEdges(g *graph.Graph) []graph.Edge {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	parentOf := make([]int, n)
	for i := range disc {
		disc[i] = -1
		parentOf[i] = -1
	}
	var bridges []graph.Edge
	timer := 0
	type frame struct {
		v, idx int
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{v: s}}
		disc[s], low[s] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nbrs := g.Neighbors(f.v)
			if f.idx < len(nbrs) {
				u := nbrs[f.idx]
				f.idx++
				if disc[u] == -1 {
					parentOf[u] = f.v
					disc[u], low[u] = timer, timer
					timer++
					stack = append(stack, frame{v: u})
				} else if u != parentOf[f.v] {
					if disc[u] < low[f.v] {
						low[f.v] = disc[u]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parentOf[f.v]; p != -1 {
				if low[f.v] < low[p] {
					low[p] = low[f.v]
				}
				if low[f.v] > disc[p] {
					bridges = append(bridges, graph.NewEdge(p, f.v))
				}
			}
		}
	}
	return bridges
}

// sideWithout returns the vertices reachable from cand.U when cand is
// removed from g.
func sideWithout(g *graph.Graph, cand graph.Edge) []int {
	visited := make([]bool, g.N())
	visited[cand.U] = true
	queue := []int{cand.U}
	side := []int{cand.U}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.EachNeighbor(x, func(u int) {
			if visited[u] {
				return
			}
			if x == cand.U && u == cand.V || x == cand.V && u == cand.U {
				return
			}
			visited[u] = true
			side = append(side, u)
			queue = append(queue, u)
		})
	}
	return side
}

package agm

// This file is the referee-side graceful-degradation layer for the AGM
// protocols (DESIGN.md § fault model). Each DecodeResilient detects
// missing (zero-bit) and garbled per-vertex sketches from the message
// contents alone — tolerant fixed-width parsing keeps sections aligned,
// field-range checks catch most corruption, and the BackupReps checksums
// catch in-range bit flips — then decodes a best-effort output from the
// surviving material, reporting a core.Resilience verdict. The contract:
// ResilienceOK is returned only when every sketch parsed perfectly.

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/l0"
	"repro/internal/rng"
)

var (
	_ core.ResilientProtocol[[]graph.Edge] = (*ForestProtocol)(nil)
	_ core.ResilientProtocol[[]graph.Edge] = (*SkeletonProtocol)(nil)
	_ core.ResilientProtocol[graph.Edge]   = (*BridgeProtocol)(nil)
)

// backupSpecs derives the fallback sampler stack from a coin subtree
// disjoint from the primary one, so backup samplers are fully independent
// re-derived ℓ₀ instances. Memoized like specs (speccache.go): the
// disjoint "agm-backup" subtree seed keys a separate cache entry.
func backupSpecs(n int, cfg Config, coins *rng.PublicCoins) []l0.Spec {
	return derivedSpecs(uint64(n)*uint64(n), cfg.Rounds*cfg.BackupReps, coins.Derive("agm-backup"))
}

// foldChecksum chains per-sketch checksums into a stack checksum.
func foldChecksum(h, cs uint32) uint32 { return h*0x01000193 ^ cs }

// stackChecksum folds the checksums of a sketch stack.
func stackChecksum(stack []*l0.Sketch) uint32 {
	var h uint32
	for _, sk := range stack {
		h = foldChecksum(h, sk.Checksum())
	}
	return h
}

// readStackTolerant deserializes one sampler stack, always consuming
// exactly the stack's fixed bit size so that whatever follows (checksums,
// backup stacks) stays aligned. valid reports whether every element was
// canonical; err is non-nil only when the message is too short.
func readStackTolerant(r *bitio.Reader, sps []l0.Spec) (stack []*l0.Sketch, valid bool, err error) {
	stack = make([]*l0.Sketch, len(sps))
	valid = true
	for i, sp := range sps {
		sk, ok, err := sp.ReadSketchTolerant(r)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			valid = false
		}
		stack[i] = sk
	}
	return stack, valid, nil
}

// zeroStack returns the all-zero sampler stack: the sketch a vertex with
// no usable message is replaced by. Linearly it behaves like a vertex
// whose incidence vector is zero — its edges survive un-cancelled in its
// neighbors' sketches, so they remain recoverable, but the forest may no
// longer reach the vertex itself.
func zeroStack(sps []l0.Spec) []*l0.Sketch {
	stack := make([]*l0.Sketch, len(sps))
	for i, sp := range sps {
		stack[i] = sp.NewSketch()
	}
	return stack
}

// readResilientVertex parses one vertex's forest message: the primary
// stack, and under BackupReps the two checksums and the backup stack.
// A short message (drops, truncation) yields neither stack; corruption
// preserves length, so a damaged primary still leaves the backup section
// readable at its fixed offset.
func readResilientVertex(r *bitio.Reader, cfg Config, sps, bsps []l0.Spec) (primary, backup []*l0.Sketch, pGood, bGood bool) {
	if r == nil || r.Remaining() == 0 {
		return nil, nil, false, false
	}
	stack, ok, err := readStackTolerant(r, sps)
	if err != nil {
		return nil, nil, false, false
	}
	primary, pGood = stack, ok
	if cfg.BackupReps == 0 {
		return primary, nil, pGood, false
	}
	cs, err := r.ReadUint(32)
	if err != nil {
		return primary, nil, false, false
	}
	if uint32(cs) != stackChecksum(stack) {
		pGood = false
	}
	bstack, bok, err := readStackTolerant(r, bsps)
	if err != nil {
		return primary, nil, pGood, false
	}
	bcs, err := r.ReadUint(32)
	if err != nil || uint32(bcs) != stackChecksum(bstack) {
		bok = false
	}
	return primary, bstack, pGood, bok
}

// DecodeResilient implements core.ResilientProtocol for the spanning
// forest. Strategy: when every primary stack is intact, decode exactly as
// Decode does and report ok. Otherwise pick whichever stack family
// (primary, or the re-derived backup samplers when BackupReps > 0) lost
// fewer vertices, replace the losses by zero sketches, and run Borůvka
// over the survivors — a degraded forest that may miss the damaged
// vertices. When more than half the vertices are unusable the verdict is
// failed (the best-effort forest is still returned).
func (p *ForestProtocol) DecodeResilient(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) ([]graph.Edge, core.Resilience, error) {
	cfg := p.cfg.withDefaults(n)
	sps := specs(n, cfg, coins)
	var bsps []l0.Spec
	if cfg.BackupReps > 0 {
		bsps = backupSpecs(n, cfg, coins)
	}

	primary := make([][]*l0.Sketch, n)
	backup := make([][]*l0.Sketch, n)
	pBad, bBad := 0, 0
	for v := 0; v < n; v++ {
		pv, bv, pGood, bGood := readResilientVertex(sketches[v], cfg, sps, bsps)
		if pGood {
			primary[v] = pv
		} else {
			pBad++
		}
		if bGood {
			backup[v] = bv
		} else {
			bBad++
		}
	}

	if pBad == 0 {
		forest, err := boruvka(n, cfg, sps, primary)
		if err != nil {
			return nil, core.ResilienceFailed, err
		}
		return forest, core.ResilienceOK, nil
	}

	stacks, useSps, useCfg, holes := primary, sps, cfg, pBad
	if cfg.BackupReps > 0 && bBad < pBad {
		useCfg.Reps = cfg.BackupReps
		stacks, useSps, holes = backup, bsps, bBad
	}
	for v := 0; v < n; v++ {
		if stacks[v] == nil {
			stacks[v] = zeroStack(useSps)
		}
	}
	verdict := core.ResilienceDegraded
	if 2*holes > n {
		verdict = core.ResilienceFailed
	}
	forest, err := boruvka(n, useCfg, useSps, stacks)
	if err != nil {
		return nil, core.ResilienceFailed, err
	}
	return forest, verdict, nil
}

// DecodeResilient implements core.ResilientProtocol for the k-forest
// skeleton. The skeleton encoding carries no checksums or backup stack;
// resilience is limited to tolerant parsing — a vertex whose message is
// missing, truncated, or holds non-canonical field elements is replaced
// by zero sketches in every group — so in-range bit flips can go
// undetected here (faults.Run's channel record still demotes such runs).
func (p *SkeletonProtocol) DecodeResilient(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) ([]graph.Edge, core.Resilience, error) {
	if p.K < 1 {
		return nil, core.ResilienceFailed, fmt.Errorf("agm: skeleton needs K >= 1, got %d", p.K)
	}
	cfgs, groups := p.groupSpecs(n, coins)
	perGroup := make([][][]*l0.Sketch, p.K)
	for g := range perGroup {
		perGroup[g] = make([][]*l0.Sketch, n)
	}
	holes := 0
	for v := 0; v < n; v++ {
		r := sketches[v]
		good := r != nil && r.Remaining() > 0
		var stacks [][]*l0.Sketch
		if good {
			stacks = make([][]*l0.Sketch, p.K)
			for g, sps := range groups {
				stack, ok, err := readStackTolerant(r, sps)
				if err != nil || !ok {
					good = false
					break
				}
				stacks[g] = stack
			}
			if good && r.Remaining() != 0 {
				good = false // trailing garbage: treat the vertex as damaged
			}
		}
		if !good {
			holes++
			for g, sps := range groups {
				perGroup[g][v] = zeroStack(sps)
			}
			continue
		}
		for g := range groups {
			perGroup[g][v] = stacks[g]
		}
	}

	var certificate []graph.Edge
	var removed []graph.Edge
	for g := 0; g < p.K; g++ {
		sps := groups[g]
		for _, e := range removed {
			idx := edgeIndex(n, e.U, e.V)
			for i, sp := range sps {
				sp.Update(perGroup[g][e.U][i], idx, -1)
				sp.Update(perGroup[g][e.V][i], idx, +1)
			}
		}
		forest, err := boruvka(n, cfgs[g], sps, perGroup[g])
		if err != nil {
			return certificate, core.ResilienceFailed, err
		}
		certificate = append(certificate, forest...)
		removed = append(removed, forest...)
	}
	switch {
	case holes == 0:
		return certificate, core.ResilienceOK, nil
	case 2*holes > n:
		return certificate, core.ResilienceFailed, nil
	default:
		return certificate, core.ResilienceDegraded, nil
	}
}

// DecodeResilient implements core.ResilientProtocol for the bridge
// finder. Vertices whose sketches are missing or unparsable are excluded
// from the sampled graph and marked damaged; recoverBridge then only
// trusts cut sums over fully clean sides — the signed sums total zero
// over all vertices, so any cut can be summed from whichever shore
// survived intact (the re-derived fallback the encoding supports for
// free). If every decodable side holds damage, the decode fails.
func (p *BridgeProtocol) DecodeResilient(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) (graph.Edge, core.Resilience, error) {
	idWidth := bitio.UintWidth(n)
	sampledBuilder := graph.NewBuilder(n)
	sums := make([]int64, n)
	damaged := make([]bool, n)
	anomalies := 0
	for v := 0; v < n; v++ {
		r := sketches[v]
		if r == nil || r.Remaining() == 0 {
			damaged[v] = true
			continue
		}
		k, err := r.ReadUvarint()
		if err != nil {
			damaged[v] = true
			continue
		}
		parsed := true
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				damaged[v] = true
				parsed = false
				break
			}
			if int(u) < n && int(u) != v {
				sampledBuilder.AddEdge(v, int(u))
			} else {
				anomalies++ // invalid sampled neighbor: note it, keep going
			}
		}
		if !parsed {
			continue
		}
		neg, err := r.ReadBit()
		if err != nil {
			damaged[v] = true
			continue
		}
		mag, err := r.ReadUvarint()
		if err != nil {
			damaged[v] = true
			continue
		}
		if r.Remaining() != 0 {
			anomalies++ // longer than its own header declared
		}
		sums[v] = int64(mag)
		if neg {
			sums[v] = -sums[v]
		}
	}

	holes := 0
	for _, d := range damaged {
		if d {
			holes++
		}
	}
	e, err := recoverBridge(n, sampledBuilder.Build(), sums, damaged)
	if err != nil {
		return graph.Edge{}, core.ResilienceFailed, err
	}
	if holes == 0 && anomalies == 0 {
		return e, core.ResilienceOK, nil
	}
	return e, core.ResilienceDegraded, nil
}

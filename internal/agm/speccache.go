package agm

// Spec memoization for the sketch hot path. The pre-optimization Sketch
// called specs(view.N, cfg, coins) once per vertex, so the n vertices of
// one run re-derived the identical hash families and fingerprint tables
// n times; the referee then derived them once more. Deriving a spec
// stack is a pure function of (universe, stack size, coin subtree seed) —
// rng.PublicCoins is itself a pure function of its seed — so the stacks
// are memoized process-wide under exactly that key. A cache hit returns
// the same immutable []l0.Spec value a fresh derivation would produce,
// bit for bit; specs_test.go asserts the equivalence.

import (
	"sync"

	"repro/internal/l0"
	"repro/internal/rng"
)

// specCacheMaxEntries bounds the cache. One entry for an n=10k forest
// run holds ~100 specs whose window tables total ~1.6 MiB, so the bound
// caps worst-case memory near 100 MiB while keeping every stack of any
// realistic sweep (a sweep revisits few (n, cfg, seed) keys, many times
// each) resident. Eviction drops the whole map: entries are pure
// derivations, so losing them costs only re-derivation.
const specCacheMaxEntries = 64

// specKey identifies one derived sampler stack.
type specKey struct {
	universe uint64
	count    int
	seed     uint64
}

var specCache struct {
	sync.Mutex
	m map[specKey][]l0.Spec
}

// derivedSpecs returns count sampler specs over the given universe,
// derived from root.DeriveIndex(0..count-1) — memoized process-wide.
func derivedSpecs(universe uint64, count int, root *rng.PublicCoins) []l0.Spec {
	key := specKey{universe: universe, count: count, seed: root.Seed()}
	specCache.Lock()
	if cached, ok := specCache.m[key]; ok {
		specCache.Unlock()
		return cached
	}
	specCache.Unlock()

	// Derive outside the lock: stacks for large n are expensive, and the
	// derivation is deterministic, so two racing derivations of the same
	// key produce interchangeable values.
	out := deriveSpecsFresh(universe, count, root)

	specCache.Lock()
	if specCache.m == nil || len(specCache.m) >= specCacheMaxEntries {
		specCache.m = make(map[specKey][]l0.Spec)
	}
	specCache.m[key] = out
	specCache.Unlock()
	return out
}

// deriveSpecsFresh is the uncached derivation, kept separate so tests can
// compare memoized stacks against a from-scratch derivation.
func deriveSpecsFresh(universe uint64, count int, root *rng.PublicCoins) []l0.Spec {
	out := make([]l0.Spec, count)
	for i := range out {
		out[i] = l0.NewSpec(universe, root.DeriveIndex(i))
	}
	return out
}

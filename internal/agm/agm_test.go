package agm

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestEdgeIndexRoundTrip(t *testing.T) {
	n := 37
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			idx := edgeIndex(n, u, v)
			if idx != edgeIndex(n, v, u) {
				t.Fatal("edgeIndex not symmetric")
			}
			e, err := edgeFromIndex(n, idx)
			if err != nil {
				t.Fatal(err)
			}
			if e.U != u || e.V != v {
				t.Fatalf("round trip (%d,%d) -> %v", u, v, e)
			}
		}
	}
}

func TestEdgeFromIndexRejectsInvalid(t *testing.T) {
	// Diagonal (u == v) and out-of-range values must be rejected.
	if _, err := edgeFromIndex(10, 0); err == nil {
		t.Error("index 0 decodes to (0,0) and must be rejected")
	}
	if _, err := edgeFromIndex(10, 10*10); err == nil {
		t.Error("out-of-universe index accepted")
	}
	if _, err := edgeFromIndex(10, 5*10+3); err == nil {
		t.Error("u > v index accepted")
	}
}

func TestSpanningForestSmallGraphs(t *testing.T) {
	coins := rng.NewPublicCoins(1)
	p := NewSpanningForest(Config{})
	for name, g := range map[string]*graph.Graph{
		"path":      gen.Path(10),
		"cycle":     gen.Cycle(12),
		"complete":  gen.Complete(8),
		"star":      gen.Star(9),
		"two-comps": graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}}),
		"empty":     graph.NewBuilder(5).Build(),
	} {
		res, err := core.Run[[]graph.Edge](p, g, coins.Derive(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graph.IsSpanningForest(g, res.Output) {
			t.Errorf("%s: output is not a spanning forest (%d edges)", name, len(res.Output))
		}
	}
}

func TestSpanningForestSuccessRate(t *testing.T) {
	p := NewSpanningForest(Config{})
	src := rng.NewSource(7)
	stats := core.EstimateSuccess[[]graph.Edge](p, func(i int) core.Trial[[]graph.Edge] {
		g := gen.Gnp(60, 0.08, src)
		return core.Trial[[]graph.Edge]{
			Graph:  g,
			Verify: func(out []graph.Edge) bool { return graph.IsSpanningForest(g, out) },
		}
	}, 25, rng.NewPublicCoins(3))
	if stats.SuccessRate() < 0.9 {
		t.Errorf("AGM success rate %.2f below 0.9", stats.SuccessRate())
	}
}

func TestSpanningForestSketchSizePolylog(t *testing.T) {
	// The headline contrast: sketch size must scale polylogarithmically,
	// far below the n-bit trivial sketch for moderately large n.
	coins := rng.NewPublicCoins(5)
	p := NewSpanningForest(Config{})
	src := rng.NewSource(9)
	g := gen.Gnp(300, 0.05, src)
	res, err := core.Run[[]graph.Edge](p, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log2(float64(g.N()))
	// Generous constant: c * log^3 n bits.
	bound := int(900 * logN * logN * logN)
	if res.MaxSketchBits > bound {
		t.Errorf("sketch %d bits exceeds %d = O(log^3 n) envelope", res.MaxSketchBits, bound)
	}
	if res.MaxSketchBits == 0 {
		t.Error("empty sketches")
	}
}

func TestComponentCount(t *testing.T) {
	coins := rng.NewPublicCoins(11)
	p := NewComponentCount(Config{})
	b := graph.NewBuilder(12)
	// Three components: a triangle, a path of 4, an edge; plus 3 isolated.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(7, 8)
	g := b.Build()
	res, err := core.Run[int](p, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != 6 {
		t.Errorf("component count = %d, want 6", res.Output)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(100)
	if c.Rounds <= 0 || c.Reps <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	c2 := Config{Rounds: 5, Reps: 1}.withDefaults(100)
	if c2.Rounds != 5 || c2.Reps != 1 {
		t.Errorf("explicit config overridden: %+v", c2)
	}
}

func TestSpanningForestLowBudgetDegrades(t *testing.T) {
	// With a single round and rep, large graphs should often fail to
	// complete a forest — evidence the rounds actually matter (ablation).
	p := NewSpanningForest(Config{Rounds: 1, Reps: 1})
	src := rng.NewSource(13)
	stats := core.EstimateSuccess[[]graph.Edge](p, func(i int) core.Trial[[]graph.Edge] {
		g := gen.Gnp(40, 0.2, src)
		return core.Trial[[]graph.Edge]{
			Graph:  g,
			Verify: func(out []graph.Edge) bool { return graph.IsSpanningForest(g, out) },
		}
	}, 20, rng.NewPublicCoins(17))
	if stats.SuccessRate() > 0.5 {
		t.Errorf("1-round AGM succeeded %.2f of the time; expected degradation", stats.SuccessRate())
	}
}

func TestBridgeFinder(t *testing.T) {
	root := rng.NewPublicCoins(19)
	src := rng.NewSource(21)
	p := NewBridgeFinder(0)
	successes := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		g, bridge := gen.TwoBlobsWithBridge(40, 0.3, src)
		res, err := core.Run[graph.Edge](p, g, root.DeriveIndex(i))
		if err != nil {
			continue
		}
		if res.Output == bridge {
			successes++
		}
	}
	if successes < trials*9/10 {
		t.Errorf("bridge recovered in %d/%d trials", successes, trials)
	}
}

func TestBridgeFinderSketchSize(t *testing.T) {
	src := rng.NewSource(23)
	g, _ := gen.TwoBlobsWithBridge(100, 0.2, src)
	res, err := core.Run[graph.Edge](NewBridgeFinder(0), g, rng.NewPublicCoins(25))
	if err != nil {
		t.Fatal(err)
	}
	// O(log^2 n) bits: k = O(log n) edges of log n bits each plus the sum.
	logN := math.Log2(float64(g.N()))
	bound := int(40 * logN * logN)
	if res.MaxSketchBits > bound {
		t.Errorf("bridge sketch %d bits exceeds %d", res.MaxSketchBits, bound)
	}
}

func TestCutEdges(t *testing.T) {
	// Path: every edge is a bridge.
	if got := cutEdges(gen.Path(5)); len(got) != 4 {
		t.Errorf("P5 has %d bridges, want 4", len(got))
	}
	// Cycle: no bridges.
	if got := cutEdges(gen.Cycle(5)); len(got) != 0 {
		t.Errorf("C5 has %d bridges, want 0", len(got))
	}
	// Two triangles joined by one edge: exactly that edge.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	b.AddEdge(2, 3)
	got := cutEdges(b.Build())
	if len(got) != 1 || got[0] != graph.NewEdge(2, 3) {
		t.Errorf("bridges = %v, want [{2 3}]", got)
	}
}

func TestSideWithout(t *testing.T) {
	g := gen.Path(5)
	side := sideWithout(g, graph.NewEdge(1, 2))
	if len(side) != 2 {
		t.Errorf("side = %v, want {0,1}", side)
	}
}

func BenchmarkSpanningForestN100(b *testing.B) {
	g := gen.Gnp(100, 0.1, rng.NewSource(1))
	p := NewSpanningForest(Config{})
	coins := rng.NewPublicCoins(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run[[]graph.Edge](p, g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBridgeFinderN200(b *testing.B) {
	g, _ := gen.TwoBlobsWithBridge(100, 0.2, rng.NewSource(3))
	p := NewBridgeFinder(0)
	coins := rng.NewPublicCoins(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run[graph.Edge](p, g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

package agm

// Wire registration: the four AGM-sketch wire protocols self-register so
// that importing this package (directly or via any protocol that builds
// on the forest sketches) makes them executable through wire.ExecuteSpec
// and the refereed daemon.

import (
	"repro/internal/cclique"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/protocol"
)

func init() {
	protocol.Register("agm-forest", func(g *graph.Graph) engine.Protocol[protocol.Outcome] {
		return protocol.Adapt[[]graph.Edge](
			&cclique.OneRound[[]graph.Edge]{P: NewSpanningForest(Config{})},
			protocol.EdgesOutcome(g, graph.IsSpanningForest))
	})
	protocol.Register("agm-forest-backup", func(g *graph.Graph) engine.Protocol[protocol.Outcome] {
		return protocol.Adapt[[]graph.Edge](
			&cclique.OneRound[[]graph.Edge]{P: NewSpanningForest(Config{BackupReps: 2})},
			protocol.EdgesOutcome(g, graph.IsSpanningForest))
	})
	protocol.Register("agm-skeleton", func(g *graph.Graph) engine.Protocol[protocol.Outcome] {
		return protocol.Adapt[[]graph.Edge](
			&cclique.OneRound[[]graph.Edge]{P: NewSkeleton(2, Config{})},
			protocol.EdgesOutcome(g, nil))
	})
	protocol.Register("agm-components", func(g *graph.Graph) engine.Protocol[protocol.Outcome] {
		return protocol.Adapt[int](
			&cclique.OneRound[int]{P: NewComponentCount(Config{})},
			protocol.CountOutcome(g, func(g *graph.Graph, out int) bool {
				_, count := g.Components()
				return out == count
			}))
	})
}

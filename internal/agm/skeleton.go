package agm

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/l0"
	"repro/internal/rng"
)

// SkeletonProtocol is the AGM k-edge-connectivity certificate [AGM,
// SODA'12], another of the paper's Section 1 contrast points ("minimum
// spanning trees and edge connectivity [1]"). Every vertex sends k
// independent groups of forest sketches; the referee peels spanning
// forests F_1, ..., F_k, where F_i spans G minus the earlier forests'
// edges. The peeling needs no extra rounds: sketches are linear, so the
// referee deletes an edge from a later group by updating both endpoint
// sketches itself.
//
// The union H = F_1 ∪ ... ∪ F_k is a sparse certificate: every cut of
// value ≤ k-1 in G has exactly its value in H, and every larger cut has
// ≥ k edges in H. Hence G is k-edge-connected iff H is.
type SkeletonProtocol struct {
	// K is the number of forests (the connectivity threshold to certify).
	K int
	// Forest configures each forest group.
	Forest Config
}

var _ core.Protocol[[]graph.Edge] = (*SkeletonProtocol)(nil)

// NewSkeleton returns the k-forest certificate protocol.
func NewSkeleton(k int, cfg Config) *SkeletonProtocol {
	return &SkeletonProtocol{K: k, Forest: cfg}
}

// Name implements core.Protocol.
func (p *SkeletonProtocol) Name() string { return fmt.Sprintf("agm-skeleton-%d", p.K) }

// groupSpecs derives each forest group's samplers from disjoint coin
// subtrees.
func (p *SkeletonProtocol) groupSpecs(n int, coins *rng.PublicCoins) ([]Config, [][]l0.Spec) {
	cfg := p.Forest.withDefaults(n)
	groups := make([][]l0.Spec, p.K)
	cfgs := make([]Config, p.K)
	for g := range groups {
		groups[g] = specs(n, cfg, coins.Derive("skeleton").DeriveIndex(g))
		cfgs[g] = cfg
	}
	return cfgs, groups
}

// Sketch implements core.Protocol.
func (p *SkeletonProtocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("agm: skeleton needs K >= 1, got %d", p.K)
	}
	w := bitio.NewPooledWriter()
	_, groups := p.groupSpecs(view.N, coins)
	for _, sps := range groups {
		for _, sp := range sps {
			sk := sp.AcquireSketch()
			for _, u := range view.Neighbors {
				delta := int64(1)
				if view.ID > u {
					delta = -1
				}
				sp.Update(sk, edgeIndex(view.N, view.ID, u), delta)
			}
			sk.Write(w)
			l0.ReleaseSketch(sk)
		}
	}
	return w, nil
}

// Decode implements core.Protocol: peel k forests, deleting each forest's
// edges from the later groups by linear updates.
func (p *SkeletonProtocol) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) ([]graph.Edge, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("agm: skeleton needs K >= 1, got %d", p.K)
	}
	cfgs, groups := p.groupSpecs(n, coins)
	perGroup := make([][][]*l0.Sketch, p.K)
	for g, sps := range groups {
		pv, err := readVertexSketches(n, sps, sketches)
		if err != nil {
			return nil, fmt.Errorf("agm: skeleton group %d: %w", g, err)
		}
		perGroup[g] = pv
	}

	var certificate []graph.Edge
	var removed []graph.Edge
	for g := 0; g < p.K; g++ {
		// Delete all previously-extracted edges from this group.
		sps := groups[g]
		for _, e := range removed {
			idx := edgeIndex(n, e.U, e.V)
			for i, sp := range sps {
				// Edge (u,v) contributed +1 at u (u < v) and -1 at v.
				sp.Update(perGroup[g][e.U][i], idx, -1)
				sp.Update(perGroup[g][e.V][i], idx, +1)
			}
		}
		forest, err := boruvka(n, cfgs[g], sps, perGroup[g])
		if err != nil {
			return nil, fmt.Errorf("agm: skeleton group %d: %w", g, err)
		}
		certificate = append(certificate, forest...)
		removed = append(removed, forest...)
	}
	return certificate, nil
}

// VerifyCertificate checks the k-forest certificate property against the
// true graph: every certificate edge is a G-edge, the certificate
// decomposes into forests, and for the global min cut semantics it
// suffices that each cut of G has min(cutG, k) certificate edges — here
// verified on vertex-singleton cuts and on the components structure:
// connectivity of H must match connectivity of G. Full cut enumeration is
// exponential; CutPreserved spot-checks random cuts instead.
func VerifyCertificate(g *graph.Graph, cert []graph.Edge, k int) error {
	for _, e := range cert {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("agm: certificate edge %v not in G", e)
		}
	}
	seen := make(map[graph.Edge]bool, len(cert))
	for _, e := range cert {
		if seen[e] {
			return fmt.Errorf("agm: duplicate certificate edge %v", e)
		}
		seen[e] = true
	}
	hb := graph.NewBuilder(g.N())
	for _, e := range cert {
		hb.AddEdge(e.U, e.V)
	}
	h := hb.Build()
	_, gComps := g.Components()
	_, hComps := h.Components()
	if gComps != hComps {
		return fmt.Errorf("agm: certificate has %d components, G has %d", hComps, gComps)
	}
	// Singleton cuts: deg_H(v) must be min(deg_G(v), ..) at least
	// min(k, deg_G(v)).
	for v := 0; v < g.N(); v++ {
		want := g.Degree(v)
		if want > k {
			want = k
		}
		if h.Degree(v) < want {
			return fmt.Errorf("agm: vertex %d has certificate degree %d < min(k, deg) = %d",
				v, h.Degree(v), want)
		}
	}
	return nil
}

// CutPreserved checks min(cut_G(S), k) <= cut_H(S) for one vertex subset.
func CutPreserved(g *graph.Graph, cert []graph.Edge, k int, side []bool) bool {
	inCert := make(map[graph.Edge]bool, len(cert))
	for _, e := range cert {
		inCert[e] = true
	}
	cutG, cutH := 0, 0
	for _, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			cutG++
			if inCert[e] {
				cutH++
			}
		}
	}
	want := cutG
	if want > k {
		want = k
	}
	return cutH >= want
}

// Package agm implements the Ahn–Guha–McGregor graph sketches [AGM,
// SODA'12] in the distributed sketching model: every vertex sends an
// O(polylog n)-bit linear sketch of its signed edge-incidence vector, and
// the referee recovers a spanning forest by running Borůvka's algorithm on
// merged sketches.
//
// This is the paper's headline contrast (Section 1): spanning forest —
// and with it connectivity — needs only polylog(n)-bit sketches, while
// Theorem 1 and 2 show maximal matching and MIS need Ω(√n / e^Θ(√log n)).
//
// The incidence vector of vertex v assigns edge {u,v} (indexed as
// min·n+max) the value +1 when v < u and -1 when v > u. Summing the
// vectors of a component's vertices cancels every internal edge and leaves
// exactly the component's boundary edges, so an ℓ₀-sample of the sum is a
// uniform-ish outgoing edge — precisely what Borůvka needs.
package agm

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/l0"
	"repro/internal/rng"
)

// Config controls the sketch dimensions.
type Config struct {
	// Rounds is the number of Borůvka rounds; each consumes fresh sampler
	// randomness. 0 selects 2·ceil(log2 n) + 4.
	Rounds int
	// Reps is the number of independent samplers per round, boosting the
	// per-component success probability. 0 selects 3.
	Reps int
	// BackupReps, when positive, appends a resilient tail to every
	// sketch: a 32-bit checksum of the primary sampler stack, a second
	// fully independent stack of Rounds×BackupReps samplers derived from
	// fresh coins, and that stack's checksum. DecodeResilient uses the
	// checksums to detect in-range bit corruption and falls back to the
	// backup stack when primaries are damaged (resilient.go). The default
	// 0 keeps the classic AGM encoding, and the strict Decode ignores the
	// tail entirely, so enabling it never changes clean-run outputs.
	BackupReps int
}

// withDefaults resolves zero fields for an n-vertex graph.
func (c Config) withDefaults(n int) Config {
	if c.Rounds == 0 {
		c.Rounds = 2*bitio.UintWidth(n+1) + 4
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

// edgeIndex maps edge {u,v} to its universe index min·n+max.
func edgeIndex(n, u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)*uint64(n) + uint64(v)
}

// edgeFromIndex inverts edgeIndex, validating the decoded endpoints.
func edgeFromIndex(n int, idx uint64) (graph.Edge, error) {
	u := int(idx / uint64(n))
	v := int(idx % uint64(n))
	if u < 0 || v < 0 || u >= n || v >= n || u >= v {
		return graph.Edge{}, fmt.Errorf("agm: index %d decodes to invalid edge (%d,%d)", idx, u, v)
	}
	return graph.Edge{U: u, V: v}, nil
}

// specs derives the (round × rep) sampler specifications from public
// coins; players and referee call this identically. The derivation is
// memoized per (n, cfg, coin seed) — see speccache.go — so the n vertices
// of one run share a single derivation instead of each repeating it.
func specs(n int, cfg Config, coins *rng.PublicCoins) []l0.Spec {
	return derivedSpecs(uint64(n)*uint64(n), cfg.Rounds*cfg.Reps, coins.Derive("agm"))
}

// ForestProtocol is the one-round AGM spanning forest protocol.
type ForestProtocol struct {
	cfg Config
}

var _ core.Protocol[[]graph.Edge] = (*ForestProtocol)(nil)

// NewSpanningForest returns the spanning forest protocol.
func NewSpanningForest(cfg Config) *ForestProtocol {
	return &ForestProtocol{cfg: cfg}
}

// Name implements core.Protocol.
func (p *ForestProtocol) Name() string { return "agm-spanning-forest" }

// Sketch implements core.Protocol: the vertex serializes one ℓ₀-sketch of
// its incidence vector per (round, rep), plus — under BackupReps — the
// checksummed backup tail described on Config.
func (p *ForestProtocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	cfg := p.cfg.withDefaults(view.N)
	w := bitio.NewPooledWriter()
	if cfg.BackupReps > 0 {
		pcs := writeIncidenceStack(w, specs(view.N, cfg, coins), view, true)
		w.WriteUint(uint64(pcs), 32)
		bcs := writeIncidenceStack(w, backupSpecs(view.N, cfg, coins), view, true)
		w.WriteUint(uint64(bcs), 32)
	} else {
		// The classic encoding carries no checksum, so none is computed:
		// hashing every cell of every sketch is a measurable fraction of
		// the per-vertex cost at large n.
		writeIncidenceStack(w, specs(view.N, cfg, coins), view, false)
	}
	return w, nil
}

// writeIncidenceStack sketches the view's incidence vector under every
// spec, appends the serializations, and — when withChecksum is set —
// returns the folded checksum of the stack. The per-spec scratch sketch
// comes from the l0 pool: its contents are fully serialized into w before
// release, so pooling is invisible in the bits.
func writeIncidenceStack(w *bitio.Writer, sps []l0.Spec, view core.VertexView, withChecksum bool) uint32 {
	var cs uint32
	for _, sp := range sps {
		sk := sp.AcquireSketch()
		for _, u := range view.Neighbors {
			delta := int64(1)
			if view.ID > u {
				delta = -1
			}
			sp.Update(sk, edgeIndex(view.N, view.ID, u), delta)
		}
		sk.Write(w)
		if withChecksum {
			cs = foldChecksum(cs, sk.Checksum())
		}
		l0.ReleaseSketch(sk)
	}
	return cs
}

// Decode implements core.Protocol: Borůvka over merged sketches.
func (p *ForestProtocol) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) ([]graph.Edge, error) {
	cfg := p.cfg.withDefaults(n)
	sps := specs(n, cfg, coins)
	perVertex, err := readVertexSketches(n, sps, sketches)
	if err != nil {
		return nil, err
	}
	return boruvka(n, cfg, sps, perVertex)
}

// readVertexSketches deserializes every vertex's sampler stack.
func readVertexSketches(n int, sps []l0.Spec, sketches []*bitio.Reader) ([][]*l0.Sketch, error) {
	perVertex := make([][]*l0.Sketch, n)
	for v := 0; v < n; v++ {
		perVertex[v] = make([]*l0.Sketch, len(sps))
		for i, sp := range sps {
			sk, err := sp.ReadSketch(sketches[v])
			if err != nil {
				return nil, fmt.Errorf("agm: vertex %d sampler %d: %w", v, i, err)
			}
			perVertex[v][i] = sk
		}
	}
	return perVertex, nil
}

// boruvka recovers a spanning forest from per-vertex sampler stacks,
// merging sketches as components join. It consumes perVertex.
func boruvka(n int, cfg Config, sps []l0.Spec, perVertex [][]*l0.Sketch) ([]graph.Edge, error) {
	// Component state: parent pointers plus the merged sketch stack of
	// each root.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	compSketch := perVertex // roots own their merged sketches

	var forest []graph.Edge
	for round := 0; round < cfg.Rounds; round++ {
		// Collect current roots.
		var roots []int
		for v := 0; v < n; v++ {
			if find(v) == v {
				roots = append(roots, v)
			}
		}
		if len(roots) == 1 {
			break
		}
		merged := false
		for _, root := range roots {
			if find(root) != root {
				continue // merged earlier this round
			}
			for rep := 0; rep < cfg.Reps; rep++ {
				i := round*cfg.Reps + rep
				idx, _, ok := sps[i].Sample(compSketch[root][i])
				if !ok {
					continue
				}
				e, err := edgeFromIndex(n, idx)
				if err != nil {
					continue // fingerprint slip; treat as failed sample
				}
				ru, rv := find(e.U), find(e.V)
				if ru == rv {
					continue // stale or internal (should have cancelled)
				}
				forest = append(forest, e)
				// Merge smaller-rooted into larger is irrelevant; merge rv
				// into ru and add sketches.
				parent[rv] = ru
				for j := range compSketch[ru] {
					if err := compSketch[ru][j].Add(compSketch[rv][j]); err != nil {
						return nil, fmt.Errorf("agm: merge: %w", err)
					}
				}
				compSketch[rv] = nil
				merged = true
				break
			}
		}
		if !merged && round > 0 {
			// No component can make progress with the remaining samplers;
			// later rounds use fresh ones, so keep going unless every
			// component's boundary is empty (forest complete).
			allZero := true
			for _, root := range roots {
				if find(root) != root {
					continue
				}
				i := round * cfg.Reps
				if !compSketch[root][i].IsZero() {
					allZero = false
					break
				}
			}
			if allZero {
				break
			}
		}
	}
	return forest, nil
}

// ComponentsProtocol counts connected components via the spanning forest.
type ComponentsProtocol struct {
	forest *ForestProtocol
}

var _ core.Protocol[int] = (*ComponentsProtocol)(nil)

// NewComponentCount returns a protocol whose output is the number of
// connected components of the input graph.
func NewComponentCount(cfg Config) *ComponentsProtocol {
	return &ComponentsProtocol{forest: NewSpanningForest(cfg)}
}

// Name implements core.Protocol.
func (p *ComponentsProtocol) Name() string { return "agm-component-count" }

// Sketch implements core.Protocol.
func (p *ComponentsProtocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	return p.forest.Sketch(view, coins)
}

// Decode implements core.Protocol.
func (p *ComponentsProtocol) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) (int, error) {
	forest, err := p.forest.Decode(n, sketches, coins)
	if err != nil {
		return 0, err
	}
	return n - len(forest), nil
}

package agm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSkeletonK1IsSpanningForest(t *testing.T) {
	g := gen.Gnp(50, 0.15, rng.NewSource(1))
	p := NewSkeleton(1, Config{})
	res, err := core.Run[[]graph.Edge](p, g, rng.NewPublicCoins(2))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsSpanningForest(g, res.Output) {
		t.Error("k=1 skeleton is not a spanning forest")
	}
}

func TestSkeletonCertificateProperties(t *testing.T) {
	src := rng.NewSource(3)
	coins := rng.NewPublicCoins(4)
	for trial := 0; trial < 5; trial++ {
		g := gen.Gnp(40, 0.3, src)
		k := 3
		res, err := core.Run[[]graph.Edge](NewSkeleton(k, Config{}), g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCertificate(g, res.Output, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Size bound: at most k spanning forests.
		if len(res.Output) > k*(g.N()-1) {
			t.Errorf("certificate has %d edges > k(n-1)", len(res.Output))
		}
	}
}

func TestSkeletonPreservesRandomCuts(t *testing.T) {
	src := rng.NewSource(5)
	g := gen.Gnp(36, 0.3, src)
	k := 4
	res, err := core.Run[[]graph.Edge](NewSkeleton(k, Config{}), g, rng.NewPublicCoins(6))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		side := make([]bool, g.N())
		for v := range side {
			side[v] = src.Bool()
		}
		if !CutPreserved(g, res.Output, k, side) {
			t.Fatalf("random cut %d not preserved", trial)
		}
	}
}

func TestSkeletonDistinguishesConnectivity(t *testing.T) {
	// A graph with a 2-edge cut: the k=3 certificate must retain exactly
	// that 2-edge cut (so the referee can detect non-3-edge-connectivity).
	b := graph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
			b.AddEdge(6+i, 6+j)
		}
	}
	b.AddEdge(0, 6)
	b.AddEdge(1, 7)
	g := b.Build()
	res, err := core.Run[[]graph.Edge](NewSkeleton(3, Config{}), g, rng.NewPublicCoins(7))
	if err != nil {
		t.Fatal(err)
	}
	side := make([]bool, 12)
	for v := 6; v < 12; v++ {
		side[v] = true
	}
	crossing := 0
	for _, e := range res.Output {
		if side[e.U] != side[e.V] {
			crossing++
		}
	}
	if crossing != 2 {
		t.Errorf("certificate crosses the 2-cut %d times, want exactly 2", crossing)
	}
}

func TestSkeletonRejectsBadK(t *testing.T) {
	g := gen.Path(4)
	if _, err := core.Run[[]graph.Edge](NewSkeleton(0, Config{}), g, rng.NewPublicCoins(8)); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestVerifyCertificateCatchesViolations(t *testing.T) {
	g := gen.Cycle(6)
	// Phantom edge.
	if err := VerifyCertificate(g, []graph.Edge{{U: 0, V: 3}}, 1); err == nil {
		t.Error("phantom edge accepted")
	}
	// Duplicate edge.
	if err := VerifyCertificate(g, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}}, 1); err == nil {
		t.Error("duplicate accepted")
	}
	// Disconnecting certificate.
	if err := VerifyCertificate(g, []graph.Edge{{U: 0, V: 1}}, 1); err == nil {
		t.Error("disconnected certificate accepted")
	}
}

func TestStreamSketcherMatchesFromScratch(t *testing.T) {
	// Insert all edges, delete a few: the final sketches must be
	// bit-identical to sketching the final graph directly.
	n := 30
	coins := rng.NewPublicCoins(9)
	src := rng.NewSource(10)
	full := gen.Gnp(n, 0.3, src)

	s := NewStreamSketcher(n, Config{}, coins)
	for _, e := range full.Edges() {
		if err := s.Insert(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	var deleted []graph.Edge
	for i, e := range full.Edges() {
		if i%3 == 0 {
			if err := s.Delete(e.U, e.V); err != nil {
				t.Fatal(err)
			}
			deleted = append(deleted, e)
		}
	}
	isDeleted := make(map[graph.Edge]bool)
	for _, e := range deleted {
		isDeleted[e] = true
	}
	fb := graph.NewBuilder(n)
	for _, e := range full.Edges() {
		if !isDeleted[e] {
			fb.AddEdge(e.U, e.V)
		}
	}
	final := fb.Build()
	if s.Edges() != final.M() {
		t.Fatalf("stream tracks %d edges, graph has %d", s.Edges(), final.M())
	}

	p := NewSpanningForest(Config{})
	views := core.Views(final)
	for v := 0; v < n; v++ {
		view := views[v]
		direct, err := p.Sketch(view, coins)
		if err != nil {
			t.Fatal(err)
		}
		streamed := s.Sketch(v)
		if direct.Len() != streamed.Len() {
			t.Fatalf("vertex %d: sketch lengths differ (%d vs %d)", v, direct.Len(), streamed.Len())
		}
		db, sb := direct.Bytes(), streamed.Bytes()
		for i := range db {
			if db[i] != sb[i] {
				t.Fatalf("vertex %d: sketches differ at byte %d — linearity broken", v, i)
			}
		}
	}

	forest, err := s.SpanningForest(coins)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsSpanningForest(final, forest) {
		t.Error("stream-decoded forest invalid for the post-deletion graph")
	}
}

func TestStreamSketcherRejectsBadUpdates(t *testing.T) {
	s := NewStreamSketcher(5, Config{}, rng.NewPublicCoins(11))
	if err := s.Insert(0, 0); err == nil {
		t.Error("self loop accepted")
	}
	if err := s.Insert(0, 9); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := s.Delete(0, 1); err == nil {
		t.Error("deleting absent edge accepted")
	}
	if err := s.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(1, 0); err == nil {
		t.Error("double insert accepted")
	}
	if err := s.Delete(1, 0); err != nil {
		t.Errorf("legit delete rejected: %v", err)
	}
	if s.Edges() != 0 {
		t.Errorf("edge count = %d after cancel, want 0", s.Edges())
	}
}

func BenchmarkSkeletonK3N60(b *testing.B) {
	g := gen.Gnp(60, 0.2, rng.NewSource(1))
	p := NewSkeleton(3, Config{})
	coins := rng.NewPublicCoins(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run[[]graph.Edge](p, g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamUpdate(b *testing.B) {
	s := NewStreamSketcher(1000, Config{}, rng.NewPublicCoins(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % 999
		if i%2 == 0 {
			_ = s.Insert(u, u+1)
		} else {
			_ = s.Delete(u, u+1)
		}
	}
}

package agm

// Columnar sketching for the AGM protocols: core.BlockSketcher
// implementations that compute a whole shard of per-vertex messages
// through the l0.Bank fast path. Per-vertex costs the scalar path pays
// once per (vertex, spec) — sketch state setup, per-update term
// derivation, byte-at-a-time serialization growth — are amortized across
// a block of lanes:
//
//   - each vertex's ±1 incidence updates are gathered once per block and
//     replayed against every spec through Spec.UpdateBlock,
//   - messages are written into ownership-transferring writers
//     (bitio.NewOwnedWriter) pre-grown to the encoding's exact fixed
//     size, so serialization never reallocates and sealing steals the
//     buffer instead of copying it.
//
// The bits are identical to the scalar Sketch path's (block_test.go
// proves it per protocol; wire/block_parity_test.go proves whole
// transcripts and digests match across every registered protocol), so
// block execution is invisible to referees, checksums, and fault plans.

import (
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/l0"
	"repro/internal/rng"
)

var (
	_ core.BlockSketcher = (*ForestProtocol)(nil)
	_ core.BlockSketcher = (*ComponentsProtocol)(nil)
	_ core.BlockSketcher = (*SkeletonProtocol)(nil)
)

// blockLanes is the number of vertices banked per chunk. Large enough to
// amortize the per-spec bank reset and keep the spec's pow-table rows
// cache-hot across lanes, small enough that the bank's working set
// (3 slices × lanes × ~30 levels × 8 bytes ≈ 1 MB) stays in L2.
const blockLanes = 128

// blockArena is the reusable scratch of one SketchBlock call: the bank,
// the gathered update list, and the per-lane checksum accumulators.
type blockArena struct {
	bank *l0.Bank
	upd  l0.BlockUpdates
	cs   []uint32
}

var arenaPool = sync.Pool{New: func() any { return &blockArena{bank: l0.NewBank()} }}

// gather collects every vertex's incidence updates — the same
// (index, delta) stream writeIncidenceStack feeds Spec.Update, with the
// ±1 encoded as a sign flag — once per chunk.
func (a *blockArena) gather(n int, chunk []core.VertexView) {
	a.upd.Reset()
	for i, view := range chunk {
		for _, u := range view.Neighbors {
			a.upd.Add(i, edgeIndex(n, view.ID, u), view.ID > u)
		}
	}
}

// writeStack appends one sampler stack to every lane's writer, exactly
// mirroring writeIncidenceStack per lane: specs in order, each spec's
// cells in level order. With withChecksum the per-lane stack checksums
// accumulate into a.cs (reset here), matching foldChecksum over
// Sketch.Checksum by l0.Bank.LaneChecksum's construction.
func (a *blockArena) writeStack(ws []*bitio.Writer, sps []l0.Spec, withChecksum bool) {
	if withChecksum {
		if cap(a.cs) < len(ws) {
			a.cs = make([]uint32, len(ws))
		} else {
			a.cs = a.cs[:len(ws)]
		}
		clear(a.cs)
	}
	for _, sp := range sps {
		a.bank.Reset(sp.Levels(), len(ws))
		sp.UpdateBlock(a.bank, &a.upd)
		for lane, w := range ws {
			a.bank.WriteLane(w, lane)
			if withChecksum {
				a.cs[lane] = foldChecksum(a.cs[lane], a.bank.LaneChecksum(lane))
			}
		}
	}
}

// stackBits returns the fixed serialized size of one sampler stack.
func stackBits(sps []l0.Spec) int {
	bits := 0
	for _, sp := range sps {
		bits += sp.Levels() * 3 * 61
	}
	return bits
}

// newOwnedBlock fills ws with ownership-transferring writers pre-grown
// to the encoding's fixed size, so every subsequent write lands in
// already-reserved capacity.
func newOwnedBlock(ws []*bitio.Writer, msgBits int) {
	for i := range ws {
		w := bitio.NewOwnedWriter()
		w.Grow(msgBits)
		ws[i] = w
	}
}

// SketchBlock implements core.BlockSketcher for the spanning forest:
// per chunk of blockLanes vertices, gather the incidence updates once,
// then stream the primary stack (and under BackupReps the checksums and
// backup stack) through the bank into pre-grown owned writers.
func (p *ForestProtocol) SketchBlock(views []core.VertexView, coins *rng.PublicCoins, out []*bitio.Writer) (int, error) {
	if len(views) == 0 {
		return 0, nil
	}
	n := views[0].N
	cfg := p.cfg.withDefaults(n)
	primary := specs(n, cfg, coins)
	var backup []l0.Spec
	msgBits := stackBits(primary)
	if cfg.BackupReps > 0 {
		backup = backupSpecs(n, cfg, coins)
		msgBits += 32 + stackBits(backup) + 32
	}
	a := arenaPool.Get().(*blockArena)
	defer arenaPool.Put(a)
	for lo := 0; lo < len(views); lo += blockLanes {
		hi := min(lo+blockLanes, len(views))
		ws := out[lo:hi]
		newOwnedBlock(ws, msgBits)
		a.gather(n, views[lo:hi])
		if cfg.BackupReps > 0 {
			a.writeStack(ws, primary, true)
			for i, w := range ws {
				w.WriteUint(uint64(a.cs[i]), 32)
			}
			a.writeStack(ws, backup, true)
			for i, w := range ws {
				w.WriteUint(uint64(a.cs[i]), 32)
			}
		} else {
			a.writeStack(ws, primary, false)
		}
	}
	return 0, nil
}

// SketchBlock implements core.BlockSketcher by delegating to the forest
// sketch, exactly as the scalar Sketch does.
func (p *ComponentsProtocol) SketchBlock(views []core.VertexView, coins *rng.PublicCoins, out []*bitio.Writer) (int, error) {
	return p.forest.SketchBlock(views, coins, out)
}

// SketchBlock implements core.BlockSketcher for the k-forest skeleton:
// the K groups' stacks stream through the bank in group order, matching
// the scalar Sketch's encoding lane for lane.
func (p *SkeletonProtocol) SketchBlock(views []core.VertexView, coins *rng.PublicCoins, out []*bitio.Writer) (int, error) {
	if len(views) == 0 {
		return 0, nil
	}
	if p.K < 1 {
		return 0, fmt.Errorf("agm: skeleton needs K >= 1, got %d", p.K)
	}
	n := views[0].N
	_, groups := p.groupSpecs(n, coins)
	msgBits := 0
	for _, sps := range groups {
		msgBits += stackBits(sps)
	}
	a := arenaPool.Get().(*blockArena)
	defer arenaPool.Put(a)
	for lo := 0; lo < len(views); lo += blockLanes {
		hi := min(lo+blockLanes, len(views))
		ws := out[lo:hi]
		newOwnedBlock(ws, msgBits)
		a.gather(n, views[lo:hi])
		for _, sps := range groups {
			a.writeStack(ws, sps, false)
		}
	}
	return 0, nil
}

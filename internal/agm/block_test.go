package agm

import (
	"bytes"
	"testing"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rng"
)

// blockSketcherProtocols enumerates the AGM protocols with a columnar
// path, paired with their scalar Sketch for equivalence checking.
func blockSketcherProtocols() map[string]interface {
	Sketch(core.VertexView, *rng.PublicCoins) (*bitio.Writer, error)
	SketchBlock([]core.VertexView, *rng.PublicCoins, []*bitio.Writer) (int, error)
} {
	return map[string]interface {
		Sketch(core.VertexView, *rng.PublicCoins) (*bitio.Writer, error)
		SketchBlock([]core.VertexView, *rng.PublicCoins, []*bitio.Writer) (int, error)
	}{
		"forest":        NewSpanningForest(Config{Rounds: 4, Reps: 2}),
		"forest-backup": NewSpanningForest(Config{Rounds: 4, Reps: 2, BackupReps: 1}),
		"components":    NewComponentCount(Config{Rounds: 4, Reps: 2}),
		"skeleton":      NewSkeleton(2, Config{Rounds: 3, Reps: 2}),
	}
}

// TestSketchBlockMatchesSketch proves the columnar path emits exactly
// the scalar path's bits for every AGM block sketcher, at a block size
// that exercises both full and partial blockLanes chunks.
func TestSketchBlockMatchesSketch(t *testing.T) {
	const n = 150 // > blockLanes, not a multiple of it
	g := gen.Gnp(n, 0.05, rng.NewSource(21))
	views := core.Views(g)
	coins := rng.NewPublicCoins(33)
	for name, p := range blockSketcherProtocols() {
		t.Run(name, func(t *testing.T) {
			out := make([]*bitio.Writer, len(views))
			if bad, err := p.SketchBlock(views, coins, out); err != nil {
				t.Fatalf("SketchBlock failed at view %d: %v", bad, err)
			}
			for v, view := range views {
				want, err := p.Sketch(view, coins)
				if err != nil {
					t.Fatalf("vertex %d scalar sketch: %v", v, err)
				}
				if out[v] == nil {
					t.Fatalf("vertex %d: block path left a nil writer", v)
				}
				if out[v].Len() != want.Len() {
					t.Fatalf("vertex %d: block %d bits, scalar %d bits", v, out[v].Len(), want.Len())
				}
				if !bytes.Equal(out[v].Bytes(), want.Bytes()) {
					t.Fatalf("vertex %d: block and scalar sketch bytes differ", v)
				}
				bitio.Release(want)
			}
		})
	}
}

// TestSketchBlockSubslices proves arbitrary shard boundaries do not
// change any bit: sketching views in two uneven sub-blocks matches the
// single whole-range call vertex for vertex.
func TestSketchBlockSubslices(t *testing.T) {
	const n = 90
	g := gen.Gnp(n, 0.08, rng.NewSource(27))
	views := core.Views(g)
	coins := rng.NewPublicCoins(35)
	p := NewSpanningForest(Config{Rounds: 4, Reps: 2, BackupReps: 1})

	whole := make([]*bitio.Writer, n)
	if _, err := p.SketchBlock(views, coins, whole); err != nil {
		t.Fatal(err)
	}
	split := make([]*bitio.Writer, n)
	cut := 37
	if _, err := p.SketchBlock(views[:cut], coins, split[:cut]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SketchBlock(views[cut:], coins, split[cut:]); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if !bytes.Equal(whole[v].Bytes(), split[v].Bytes()) {
			t.Fatalf("vertex %d: shard boundary at %d changed the sketch", v, cut)
		}
	}
}

// TestSkeletonSketchBlockValidation mirrors the scalar K validation.
func TestSkeletonSketchBlockValidation(t *testing.T) {
	g := gen.Gnp(10, 0.3, rng.NewSource(1))
	views := core.Views(g)
	p := NewSkeleton(0, Config{})
	out := make([]*bitio.Writer, len(views))
	if _, err := p.SketchBlock(views, rng.NewPublicCoins(1), out); err == nil {
		t.Fatal("SketchBlock accepted K = 0")
	}
}

package connlb

import (
	"testing"
	"testing/quick"

	"repro/internal/lowerbound"
	"repro/internal/rng"
)

// Instance legality across random specs: every sampled instance is a
// simple 2-regular graph whose components are exactly the composed
// permutation's cycles — the two exact obligations, property-tested over
// the whole admissible spec range.
func TestInstanceLegalityQuick(t *testing.T) {
	f := func(seed uint64, bRaw, lRaw uint8) bool {
		spec := lowerbound.Spec{Size: 2 + int(bRaw%40), Aux: MinLayers + int(lRaw%6)}
		if err := (hiddenPerm{}).Validate(spec); err != nil {
			t.Fatalf("admissible spec rejected: %v", err)
		}
		inst, err := (hiddenPerm{}).Sample(spec, rng.NewSource(seed))
		if err != nil {
			t.Fatal(err)
		}
		ci := inst.(*Instance)
		if ci.N() != spec.Size*spec.Aux {
			return false
		}
		for _, name := range []string{"conn/simple-2-regular", "conn/cycle-decomposition"} {
			ob, err := lowerbound.LookupObligation(name)
			if err != nil {
				t.Fatal(err)
			}
			if rep := ob.Check(inst, rng.NewSource(seed+1)); !rep.Pass {
				t.Logf("%s failed on B=%d L=%d: %+v", name, spec.Size, spec.Aux, rep)
				return false
			}
		}
		total := 0
		for _, l := range ci.CycleLengths {
			total += l
		}
		return total == ci.Blocks && len(ci.CycleLengths) == ci.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []lowerbound.Spec{
		{Size: 1},
		{Size: 0},
		{Size: -3},
		{Size: 8, Aux: 1},
		{Size: 8, Aux: 2},
		{Size: 8, Aux: -1},
	}
	for _, spec := range bad {
		if err := (hiddenPerm{}).Validate(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if err := (hiddenPerm{}).Validate(lowerbound.Spec{Size: 8}); err != nil {
		t.Errorf("default-layer spec rejected: %v", err)
	}
}

// The distribution and its obligations run end-to-end through the shared
// Runner with zero connectivity-specific branches in lowerbound.
func TestRunnerEndToEnd(t *testing.T) {
	rep, err := lowerbound.Runner{Trials: 4}.Run("conn-hidden-perm", lowerbound.Spec{Size: 16, Aux: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Obligations) != 3 {
		t.Fatalf("expected 3 conn obligations, got %d", len(rep.Obligations))
	}
	if !rep.AllExactHold() {
		t.Errorf("exact obligations failed: %+v", rep.Obligations)
	}
}

func TestOmegaLog3Bound(t *testing.T) {
	b, err := lowerbound.LookupBound("conn/omega-log3")
	if err != nil {
		t.Fatal(err)
	}
	row, err := b.Evaluate(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if row.Bits != 1000 { // log2(1024)³ = 10³
		t.Errorf("log₂(1024)³ = %v, want 1000", row.Bits)
	}
	if _, err := b.Evaluate(1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestHarmonic(t *testing.T) {
	if h := Harmonic(1); h != 1 {
		t.Errorf("H_1 = %v", h)
	}
	if h := Harmonic(4); h < 2.08 || h > 2.09 { // 1 + 1/2 + 1/3 + 1/4 = 2.0833…
		t.Errorf("H_4 = %v", h)
	}
}

// Package connlb is the first non-matching client of the lowerbound
// pipeline: Yu's hard distribution for distributed sketching of graph
// connectivity (arXiv:2007.12323), which forces Ω(log³ n)-bit sketches.
//
// The sampled family is the layered hidden-permutation construction at
// the core of that bound: B vertices per layer, L ≥ 3 layers arranged in
// a ring, and a uniform permutation matching between consecutive layers.
// Every vertex sees exactly two matching edges — locally the instance
// looks identical everywhere — yet global connectivity is decided by the
// cycle structure of the composed permutation, which no player can see.
// The registered obligations check the construction's ground truth
// exactly (2-regularity; components ⇔ composed-permutation cycles) and
// its concentration behaviour (the component count behaves like the
// cycle count of a uniform permutation, ≈ ln B ≪ n), all through the
// same problem-agnostic Runner the matching pipeline uses.
package connlb

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/rng"
)

// MinLayers is the smallest ring length that keeps the instance a simple
// graph: with two layers both matchings would connect the same layer
// pair and could collide on an edge.
const MinLayers = 3

// DefaultLayers is the ring length used when Spec.Aux is 0.
const DefaultLayers = 4

// Instance is one sampled hidden-permutation instance.
type Instance struct {
	// G is the union of the L layer matchings on B·L vertices; vertex
	// l·B+p is position p of layer l.
	G *graph.Graph
	// Blocks is B, the number of vertices per layer.
	Blocks int
	// Layers is L, the number of layers in the ring.
	Layers int
	// Perms[l][p] is the layer-(l+1 mod L) position matched to position p
	// of layer l.
	Perms [][]int
	// Composed is the ring composition π_{L-1} ∘ … ∘ π_0, whose cycles
	// are the ground-truth connected components.
	Composed []int
	// Cycles is the cycle count of Composed — the exact number of
	// connected components of G.
	Cycles int
	// CycleLengths holds the length of the cycle through each composed-
	// permutation cycle, one entry per cycle in discovery order.
	CycleLengths []int
}

// N implements lowerbound.Instance.
func (inst *Instance) N() int { return inst.G.N() }

// hiddenPerm samples Instances: Spec.Size is B, Spec.Aux is L (0 selects
// DefaultLayers).
type hiddenPerm struct{}

// Name implements lowerbound.HardDistribution.
func (hiddenPerm) Name() string { return "conn-hidden-perm" }

// Paper implements lowerbound.HardDistribution.
func (hiddenPerm) Paper() string { return "Yu, arXiv:2007.12323 (Ω(log³ n) connectivity sketching)" }

// Validate implements lowerbound.HardDistribution.
func (hiddenPerm) Validate(spec lowerbound.Spec) error {
	if spec.Size < 2 {
		return fmt.Errorf("conn-hidden-perm: block size B must be ≥ 2, got %d", spec.Size)
	}
	if spec.Aux != 0 && spec.Aux < MinLayers {
		return fmt.Errorf("conn-hidden-perm: layer count L must be ≥ %d (or 0 for the default %d), got %d",
			MinLayers, DefaultLayers, spec.Aux)
	}
	return nil
}

// SmokeSpec implements lowerbound.HardDistribution.
func (hiddenPerm) SmokeSpec() lowerbound.Spec { return lowerbound.Spec{Size: 8, Aux: MinLayers} }

// Sample implements lowerbound.HardDistribution.
func (hiddenPerm) Sample(spec lowerbound.Spec, src *rng.Source) (lowerbound.Instance, error) {
	b, l := spec.Size, spec.Aux
	if l == 0 {
		l = DefaultLayers
	}
	perms := make([][]int, l)
	builder := graph.NewBuilder(b * l)
	for layer := 0; layer < l; layer++ {
		perms[layer] = src.Perm(b)
		next := (layer + 1) % l
		for p, q := range perms[layer] {
			builder.AddEdge(layer*b+p, next*b+q)
		}
	}
	composed := make([]int, b)
	for p := range composed {
		q := p
		for layer := 0; layer < l; layer++ {
			q = perms[layer][q]
		}
		composed[p] = q
	}
	cycles, lengths := cycleDecomposition(composed)
	return &Instance{
		G:            builder.Build(),
		Blocks:       b,
		Layers:       l,
		Perms:        perms,
		Composed:     composed,
		Cycles:       cycles,
		CycleLengths: lengths,
	}, nil
}

// cycleDecomposition counts the cycles of a permutation and returns
// their lengths in discovery order.
func cycleDecomposition(perm []int) (int, []int) {
	seen := make([]bool, len(perm))
	var lengths []int
	for start := range perm {
		if seen[start] {
			continue
		}
		length := 0
		for p := start; !seen[p]; p = perm[p] {
			seen[p] = true
			length++
		}
		lengths = append(lengths, length)
	}
	return len(lengths), lengths
}

// Harmonic returns H_b = Σ_{i=1..b} 1/i, the expected cycle count of a
// uniform permutation of b elements.
func Harmonic(b int) float64 {
	h := 0.0
	for i := 1; i <= b; i++ {
		h += 1 / float64(i)
	}
	return h
}

// concentrationSlack multiplies the expected cycle count in the WHP
// obligation: the cycle count of a uniform permutation is a sum of
// independent indicators (Feller coupling), so exceeding 3·H_B has
// probability e^{-Ω(H_B)}.
const concentrationSlack = 3

func convert(inst lowerbound.Instance) (*Instance, *lowerbound.Report) {
	ci, err := lowerbound.Convert[*Instance](inst)
	if err != nil {
		return nil, &lowerbound.Report{Notes: []string{err.Error()}}
	}
	return ci, nil
}

func init() {
	lowerbound.RegisterDistribution(hiddenPerm{})

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"conn/simple-2-regular",
		"Yu §2: the layered instance is a simple 2-regular graph on B·L vertices (B·L edges)",
		"conn-hidden-perm", lowerbound.SevExact,
		func(inst lowerbound.Instance, _ *rng.Source) lowerbound.Report {
			ci, bad := convert(inst)
			if bad != nil {
				return *bad
			}
			minDeg, maxDeg := math.MaxInt, 0
			for v := 0; v < ci.G.N(); v++ {
				d := ci.G.Degree(v)
				if d < minDeg {
					minDeg = d
				}
				if d > maxDeg {
					maxDeg = d
				}
			}
			wantN := ci.Blocks * ci.Layers
			return lowerbound.Report{
				Pass: ci.G.N() == wantN && ci.G.M() == wantN && minDeg == 2 && maxDeg == 2,
				Details: map[string]float64{
					"edges":   float64(ci.G.M()),
					"max_deg": float64(maxDeg),
					"min_deg": float64(minDeg),
					"n":       float64(ci.G.N()),
				},
			}
		}))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"conn/cycle-decomposition",
		"Yu §2: connected components are exactly the cycles of the composed permutation, each of size L·(cycle length)",
		"conn-hidden-perm", lowerbound.SevExact,
		func(inst lowerbound.Instance, _ *rng.Source) lowerbound.Report {
			ci, bad := convert(inst)
			if bad != nil {
				return *bad
			}
			comp, count := ci.G.Components()
			sizes := make(map[int]int)
			for _, c := range comp {
				sizes[c]++
			}
			// Each permutation cycle of length ℓ must appear as one graph
			// component of size L·ℓ; compare the size multisets.
			wantSizes := make(map[int]int)
			for _, l := range ci.CycleLengths {
				wantSizes[ci.Layers*l]++
			}
			gotSizes := make(map[int]int)
			for _, s := range sizes {
				gotSizes[s]++
			}
			match := count == ci.Cycles && len(gotSizes) == len(wantSizes)
			if match {
				for size, n := range wantSizes {
					if gotSizes[size] != n {
						match = false
					}
				}
			}
			return lowerbound.Report{
				Pass: match,
				Details: map[string]float64{
					"components":  float64(count),
					"perm_cycles": float64(ci.Cycles),
				},
			}
		}))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"conn/component-concentration",
		"Yu §2: the component count behaves like the cycle count of a uniform permutation — ≈ H_B, and ≤ 3·H_B w.h.p.",
		"conn-hidden-perm", lowerbound.SevWHP,
		func(inst lowerbound.Instance, _ *rng.Source) lowerbound.Report {
			ci, bad := convert(inst)
			if bad != nil {
				return *bad
			}
			expected := Harmonic(ci.Blocks)
			ceiling := concentrationSlack * expected
			return lowerbound.Report{
				Pass: float64(ci.Cycles) <= ceiling,
				Details: map[string]float64{
					"ceiling":       ceiling,
					"components":    float64(ci.Cycles),
					"expected_ln_b": expected,
					"fraction_of_n": float64(ci.Cycles) / float64(ci.G.N()),
				},
			}
		}))

	lowerbound.RegisterBound(lowerbound.NewBound(
		"conn/omega-log3", "Yu, arXiv:2007.12323, Theorem 1: connectivity sketches need Ω(log³ n) bits",
		func(n int) (lowerbound.BoundRow, error) {
			if n < 2 {
				return lowerbound.BoundRow{}, fmt.Errorf("conn/omega-log3: n must be ≥ 2, got %d", n)
			}
			lg := math.Log2(float64(n))
			return lowerbound.BoundRow{
				Bits:    lg * lg * lg,
				Formula: "log₂(n)³",
				Params:  map[string]float64{"log2_n": lg},
			}, nil
		}))
}

package degeneracy

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestExactKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.NewBuilder(5).Build(), 0},
		{"single edge", graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}), 1},
		{"path", gen.Path(10), 1},
		{"tree (star)", gen.Star(8), 1},
		{"cycle", gen.Cycle(9), 2},
		{"K5", gen.Complete(5), 4},
		{"grid", gen.Grid(4, 4), 2},
		{"K33", gen.CompleteBipartite(3, 3), 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, order := Exact(c.g)
			if got != c.want {
				t.Errorf("degeneracy = %d, want %d", got, c.want)
			}
			if len(order) != c.g.N() {
				t.Errorf("peeling order has %d vertices, want %d", len(order), c.g.N())
			}
		})
	}
}

func TestExactPeelingOrderProperty(t *testing.T) {
	// Property: at its removal, every vertex has residual degree <= d(G).
	f := func(seed uint64, nSeed uint8) bool {
		src := rng.NewSource(seed)
		n := 3 + int(nSeed%25)
		g := gen.Gnp(n, 0.3, src)
		d, order := Exact(g)
		removed := make([]bool, n)
		pos := make(map[int]int)
		for i, v := range order {
			pos[v] = i
		}
		for _, v := range order {
			residual := 0
			g.EachNeighbor(v, func(u int) {
				if !removed[u] {
					residual++
				}
			})
			if residual > d {
				return false
			}
			removed[v] = true
		}
		// Also: d is achieved — the subgraph induced by the last vertices
		// with deg >= d... minimal check: some vertex had residual == d.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestExactMatchesMinDegreeUpperBound(t *testing.T) {
	// d(G) >= m/n (average degree / 2) and d(G) <= maxDeg.
	src := rng.NewSource(5)
	for trial := 0; trial < 20; trial++ {
		g := gen.Gnp(30, 0.3, src)
		d, _ := Exact(g)
		if g.N() > 0 && d > g.MaxDegree() {
			t.Fatalf("degeneracy %d exceeds max degree %d", d, g.MaxDegree())
		}
		if 2*d < g.M()/g.N() {
			t.Fatalf("degeneracy %d below half average degree", d)
		}
	}
}

func TestSketchEstimateAccuracy(t *testing.T) {
	src := rng.NewSource(7)
	coins := rng.NewPublicCoins(8)
	within := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		g := gen.Gnp(80, 0.15, src)
		exact, _ := Exact(g)
		res, err := core.Run[int](New(), g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if exact == 0 {
			continue
		}
		ratio := float64(res.Output) / float64(exact)
		if ratio >= 0.4 && ratio <= 2.5 {
			within++
		}
	}
	if within < trials*8/10 {
		t.Errorf("estimate within [0.4, 2.5]× exact in only %d/%d trials", within, trials)
	}
}

func TestSketchExactWhenBudgetCoversDegree(t *testing.T) {
	// When every vertex samples its full neighborhood, peeling is exact.
	src := rng.NewSource(9)
	coins := rng.NewPublicCoins(10)
	for trial := 0; trial < 10; trial++ {
		g := gen.Gnp(30, 0.2, src)
		exact, _ := Exact(g)
		res, err := core.Run[int](&Protocol{SamplesPerVertex: 1 << 20}, g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != exact {
			t.Errorf("full-budget estimate %d != exact %d", res.Output, exact)
		}
	}
}

func TestSketchSizeLogarithmic(t *testing.T) {
	g := gen.Gnp(400, 0.3, rng.NewSource(11))
	res, err := core.Run[int](New(), g, rng.NewPublicCoins(12))
	if err != nil {
		t.Fatal(err)
	}
	// degree (uvarint) + 4·(log n + 1) neighbor ids of ~9 bits.
	if res.MaxSketchBits > 800 {
		t.Errorf("sketch %d bits, want O(log² n) ≈ hundreds", res.MaxSketchBits)
	}
	if res.MaxSketchBits >= g.N() {
		t.Errorf("sketch %d bits not below trivial n", res.MaxSketchBits)
	}
}

func BenchmarkExactN1000(b *testing.B) {
	g := gen.Gnp(1000, 0.02, rng.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(g)
	}
}

func BenchmarkSketchN200(b *testing.B) {
	g := gen.Gnp(200, 0.1, rng.NewSource(2))
	coins := rng.NewPublicCoins(3)
	p := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run[int](p, g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

// Package degeneracy implements approximate graph degeneracy in the
// distributed sketching model, after Farach-Colton and Tsai [31] — one of
// the problems the paper's introduction lists as efficiently sketchable.
//
// The degeneracy d(G) is the largest minimum degree over all subgraphs,
// computed exactly by the peeling (k-core) order. The sketching protocol
// sends, per vertex, its degree plus c·log n uniformly sampled incident
// edges; the referee peels the sampled multigraph with degree counts
// scaled by the per-vertex sampling rate, giving a constant-factor
// estimate w.h.p. at O(log² n)-bit sketches.
package degeneracy

import (
	"container/heap"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Exact returns the degeneracy of g and its peeling order, by the
// classic O(n + m) bucket peeling.
func Exact(g *graph.Graph) (int, []int) {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	order := make([]int, 0, n)
	degeneracy := 0
	cur := 0
	for len(order) < n && cur < len(buckets) {
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale entry; the fresh one lives in its own bucket
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		g.EachNeighbor(v, func(u int) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		})
	}
	return degeneracy, order
}

// Protocol is the sketching estimator. Output is the estimated
// degeneracy.
type Protocol struct {
	// SamplesPerVertex is the incident-edge sample budget; 0 selects
	// 4·ceil(log2(n+1)).
	SamplesPerVertex int
}

var _ core.Protocol[int] = (*Protocol)(nil)

// New returns the estimator with default budget.
func New() *Protocol { return &Protocol{} }

// Name implements core.Protocol.
func (p *Protocol) Name() string { return "degeneracy-sketch" }

func (p *Protocol) samples(n int) int {
	if p.SamplesPerVertex > 0 {
		return p.SamplesPerVertex
	}
	return 4 * (bitio.UintWidth(n+1) + 1)
}

// Sketch implements core.Protocol: degree + sampled neighbors.
func (p *Protocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	w.WriteUvarint(uint64(view.Degree()))
	k := p.samples(view.N)
	if k > view.Degree() {
		k = view.Degree()
	}
	src := coins.Derive("degeneracy").DeriveIndex(view.ID).Source()
	perm := src.Perm(view.Degree())
	idWidth := bitio.UintWidth(view.N)
	w.WriteUvarint(uint64(k))
	for i := 0; i < k; i++ {
		w.WriteUint(uint64(view.Neighbors[perm[i]]), idWidth)
	}
	return w, nil
}

// Decode implements core.Protocol: peel the sampled graph using scaled
// degree estimates. Each vertex's true degree is known exactly (it was
// sent); what sampling loses is which neighbors remain, so the referee
// tracks, per vertex, the fraction of its sampled neighbors already
// peeled and scales its true degree accordingly.
func (p *Protocol) Decode(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) (int, error) {
	idWidth := bitio.UintWidth(n)
	trueDeg := make([]int, n)
	samples := make([][]int, n)
	for v := 0; v < n; v++ {
		d, err := sketches[v].ReadUvarint()
		if err != nil {
			return 0, fmt.Errorf("degeneracy: sketch %d: %w", v, err)
		}
		trueDeg[v] = int(d)
		k, err := sketches[v].ReadUvarint()
		if err != nil {
			return 0, fmt.Errorf("degeneracy: sketch %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := sketches[v].ReadUint(idWidth)
			if err != nil {
				return 0, fmt.Errorf("degeneracy: sketch %d: %w", v, err)
			}
			if int(u) != v && int(u) < n {
				samples[v] = append(samples[v], int(u))
			}
		}
	}
	// Reverse index: who sampled v.
	sampledBy := make([][]int, n)
	for v := 0; v < n; v++ {
		for _, u := range samples[v] {
			sampledBy[u] = append(sampledBy[u], v)
		}
	}

	// Peel by estimated residual degree using a priority queue. Estimated
	// residual degree of v = trueDeg[v] · (surviving sampled neighbors /
	// total sampled neighbors), or the exact residual when the vertex
	// sampled its full neighborhood.
	peeled := make([]bool, n)
	lostSamples := make([]int, n)
	estimate := func(v int) float64 {
		total := len(samples[v])
		if total == 0 {
			return 0
		}
		frac := float64(total-lostSamples[v]) / float64(total)
		return float64(trueDeg[v]) * frac
	}
	pq := &vertexHeap{}
	heap.Init(pq)
	for v := 0; v < n; v++ {
		heap.Push(pq, vertexPriority{v: v, priority: estimate(v)})
	}
	best := 0.0
	for pq.Len() > 0 {
		top := heap.Pop(pq).(vertexPriority)
		v := top.v
		if peeled[v] {
			continue
		}
		cur := estimate(v)
		if cur < top.priority-1e-9 {
			heap.Push(pq, vertexPriority{v: v, priority: cur})
			continue // stale entry
		}
		peeled[v] = true
		if cur > best {
			best = cur
		}
		for _, u := range sampledBy[v] {
			if !peeled[u] {
				lostSamples[u]++
				heap.Push(pq, vertexPriority{v: u, priority: estimate(u)})
			}
		}
	}
	return int(best + 0.5), nil
}

// Verify implements protocol.Sketcher: the estimator promises a
// constant-factor approximation w.h.p., audited as a factor-2 band
// around the exact peeling degeneracy (one unit of absolute slack for
// near-empty graphs).
func (p *Protocol) Verify(g *graph.Graph, out int) protocol.Outcome {
	exact, _ := Exact(g)
	return protocol.Outcome{
		Kind:    "count",
		Size:    out,
		Checked: true,
		Valid:   2*out >= exact-2 && out <= 2*exact+1,
	}
}

type vertexPriority struct {
	v        int
	priority float64
}

type vertexHeap []vertexPriority

func (h vertexHeap) Len() int            { return len(h) }
func (h vertexHeap) Less(i, j int) bool  { return h[i].priority < h[j].priority }
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(vertexPriority)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

package degeneracy

// Wire registration: the default per-vertex sample budget
// (4·(log2(n+1)+1), a pure function of n) keeps the spec free of extra
// parameters.

import (
	"repro/internal/graph"
	"repro/internal/protocol"
)

func init() {
	protocol.RegisterSketcher("degeneracy-sketch", func(g *graph.Graph) protocol.Sketcher[int] {
		return New()
	})
}

package misreduce

// Registration of the Section 4 MM→MIS reduction as a derived hard
// distribution: sample a D_MM instance, build H (two copies of G plus a
// complete public biclique), and check the reduction's structure, the
// Lemma 4.1 survival equivalence, and the recovery goal. Names, claims
// and detail keys are pinned by
// internal/lowerbound/testdata/mis-reduction_seed42.json, recorded
// before this package was migrated onto the registry.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// ReductionInstance pairs a sampled D_MM instance with its reduction
// graph H.
type ReductionInstance struct {
	// MM is the underlying matching instance.
	MM *harddist.Instance
	// H is the MIS-side graph built by BuildH.
	H *graph.Graph
}

// N implements lowerbound.Instance: the vertex count of H.
func (ri *ReductionInstance) N() int { return ri.H.N() }

// misReduction samples ReductionInstances over the Behrend family;
// Spec.Size is the Behrend parameter m of the underlying D_MM instance.
type misReduction struct{}

func (misReduction) Name() string  { return "mis-reduction" }
func (misReduction) Paper() string { return "AKO20 §4 (MM→MIS reduction)" }

func (misReduction) Validate(spec lowerbound.Spec) error {
	if spec.Size < 2 {
		return fmt.Errorf("mis-reduction: Behrend parameter m must be ≥ 2, got %d", spec.Size)
	}
	if spec.Aux != 0 {
		return fmt.Errorf("mis-reduction: aux parameter is unused, got %d", spec.Aux)
	}
	return nil
}

func (misReduction) SmokeSpec() lowerbound.Spec { return lowerbound.Spec{Size: 8} }

func (misReduction) Sample(spec lowerbound.Spec, src *rng.Source) (lowerbound.Instance, error) {
	rs, err := rsgraph.BuildBehrend(spec.Size)
	if err != nil {
		return nil, err
	}
	inst, err := harddist.Sample(harddist.NewParams(rs), src)
	if err != nil {
		return nil, err
	}
	return &ReductionInstance{MM: inst, H: BuildH(inst)}, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func init() {
	lowerbound.RegisterDistribution(misReduction{})

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mis/h-structure",
		"AKO20 §4: H is two copies of G plus a complete public biclique",
		"mis-reduction", lowerbound.SevExact,
		func(inst lowerbound.Instance, _ *rng.Source) lowerbound.Report {
			ri, err := lowerbound.Convert[*ReductionInstance](inst)
			if err != nil {
				return lowerbound.Report{Notes: []string{err.Error()}}
			}
			p := len(ri.MM.PublicVertices())
			expected := 2*ri.MM.G.M() + p*p
			return lowerbound.Report{
				Pass: ri.H.N() == 2*ri.MM.G.N() && ri.H.M() == expected,
				Details: map[string]float64{
					"edges_h":        float64(ri.H.M()),
					"expected_edges": float64(expected),
					"n_h":            float64(ri.H.N()),
				},
			}
		}))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mis/lemma-4.1-good-side",
		"AKO20 Lemma 4.1: on a public-free side, survival ⇔ not both copies in the IS",
		"mis-reduction", lowerbound.SevExact,
		func(inst lowerbound.Instance, src *rng.Source) lowerbound.Report {
			ri, err := lowerbound.Convert[*ReductionInstance](inst)
			if err != nil {
				return lowerbound.Report{Notes: []string{err.Error()}}
			}
			mis := graph.GreedyMIS(ri.H, src.Perm(ri.H.N()))
			maximal := graph.IsMaximalIndependentSet(ri.H, mis)
			rec := Recover(ri.MM, mis)
			goodExists := rec.LeftPublicEmpty || rec.RightPublicEmpty
			violated := false
			if goodExists {
				if err := CheckLemma41(ri.MM, mis, rec.GoodLeft); err != nil {
					violated = true
				}
			}
			return lowerbound.Report{
				Pass: maximal && goodExists && !violated,
				Details: map[string]float64{
					"good_exists": b2f(goodExists),
					"good_left":   b2f(rec.GoodLeft),
					"left_pairs":  float64(len(rec.Left)),
					"maximal":     b2f(maximal),
					"right_pairs": float64(len(rec.Right)),
					"violations":  b2f(violated),
				},
			}
		}))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mis/recovery-goal",
		"AKO20 Remark 3.6(iv): the good side recovers ≥ kr/4 true special edges with no phantoms",
		"mis-reduction", lowerbound.SevWHP,
		func(inst lowerbound.Instance, src *rng.Source) lowerbound.Report {
			ri, err := lowerbound.Convert[*ReductionInstance](inst)
			if err != nil {
				return lowerbound.Report{Notes: []string{err.Error()}}
			}
			mis := graph.GreedyMIS(ri.H, src.Perm(ri.H.N()))
			rec := Recover(ri.MM, mis)
			goodExists := rec.LeftPublicEmpty || rec.RightPublicEmpty
			survived := make(map[graph.Edge]bool)
			for i := 0; i < ri.MM.Params.K; i++ {
				for _, e := range ri.MM.SpecialMatchingSurvived(i) {
					survived[e] = true
				}
			}
			goodTrue, goodPhantom := 0, 0
			for _, e := range rec.Good {
				if survived[e] {
					goodTrue++
				} else {
					goodPhantom++
				}
			}
			threshold := ri.MM.Claim31Threshold()
			return lowerbound.Report{
				Pass: goodExists && goodPhantom == 0 && float64(goodTrue) >= threshold,
				Details: map[string]float64{
					"good_phantom": float64(goodPhantom),
					"good_true":    float64(goodTrue),
					"threshold":    threshold,
				},
			}
		}))
}

package misreduce

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/misproto"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

func sampleInstance(t testing.TB, m, k int, seed uint64) *harddist.Instance {
	t.Helper()
	rs, err := rsgraph.BuildBehrend(m)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := harddist.Sample(harddist.Params{RS: rs, K: k, DropProb: 0.5}, rng.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestBuildHStructure(t *testing.T) {
	inst := sampleInstance(t, 10, 5, 1)
	n := inst.G.N()
	h := BuildH(inst)
	if h.N() != 2*n {
		t.Fatalf("H has %d vertices, want %d", h.N(), 2*n)
	}
	// Both copies contain G's edges.
	for _, e := range inst.G.Edges() {
		if !h.HasEdge(e.U, e.V) {
			t.Fatalf("left copy missing edge %v", e)
		}
		if !h.HasEdge(n+e.U, n+e.V) {
			t.Fatalf("right copy missing edge %v", e)
		}
	}
	// Full biclique between public copies, including self pairs.
	pub := inst.PublicVertices()
	for _, u := range pub {
		for _, v := range pub {
			if !h.HasEdge(u, n+v) {
				t.Fatalf("missing red edge (%dℓ, %dr)", u, v)
			}
		}
	}
	// No red edges touching unique vertices.
	for i := 0; i < inst.Params.K; i++ {
		for _, u := range inst.UniqueVertices(i) {
			h.EachNeighbor(u, func(w int) {
				if w >= n {
					t.Fatalf("unique left copy %d has cross edge to %d", u, w)
				}
			})
		}
	}
	// Expected edge count: 2|E(G)| + |P|^2 (self pairs included, u-v and
	// v-u collapse into the same undirected edge... they do not: (uℓ,vr)
	// and (vℓ,ur) are distinct undirected edges for u != v).
	want := 2*inst.G.M() + len(pub)*len(pub)
	if h.M() != want {
		t.Errorf("H has %d edges, want %d", h.M(), want)
	}
}

func TestMISCannotKeepBothPublicSides(t *testing.T) {
	inst := sampleInstance(t, 8, 4, 2)
	h := BuildH(inst)
	// Exercise several genuine maximal IS of H.
	src := rng.NewSource(3)
	for trial := 0; trial < 20; trial++ {
		mis := graph.GreedyMIS(h, src.Perm(h.N()))
		if !graph.IsMaximalIndependentSet(h, mis) {
			t.Fatal("greedy MIS invalid")
		}
		rec := Recover(inst, mis)
		if !rec.LeftPublicEmpty && !rec.RightPublicEmpty {
			t.Fatal("maximal IS intersects public vertices on both sides of the biclique")
		}
		if rec.Good == nil {
			t.Fatal("no good side despite one public side being empty")
		}
	}
}

func TestLemma41OnGoodSide(t *testing.T) {
	// The core of Theorem 2: for any maximal IS of H, the public-empty
	// side's unique copies encode the survival pattern exactly.
	inst := sampleInstance(t, 10, 10, 4)
	h := BuildH(inst)
	src := rng.NewSource(5)
	for trial := 0; trial < 20; trial++ {
		mis := graph.GreedyMIS(h, src.Perm(h.N()))
		rec := Recover(inst, mis)
		var err error
		switch {
		case rec.LeftPublicEmpty:
			err = CheckLemma41(inst, mis, true)
		case rec.RightPublicEmpty:
			err = CheckLemma41(inst, mis, false)
		default:
			t.Fatal("no public-empty side")
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestGoodSideRecoversExactlySurvivedEdges(t *testing.T) {
	inst := sampleInstance(t, 10, 10, 6)
	h := BuildH(inst)
	src := rng.NewSource(7)
	survived := make(map[graph.Edge]bool)
	for i := 0; i < inst.Params.K; i++ {
		for _, e := range inst.SpecialMatchingSurvived(i) {
			survived[e] = true
		}
	}
	for trial := 0; trial < 10; trial++ {
		mis := graph.GreedyMIS(h, src.Perm(h.N()))
		rec := Recover(inst, mis)
		if len(rec.Good) != len(survived) {
			t.Fatalf("good side has %d edges, survived %d", len(rec.Good), len(survived))
		}
		for _, e := range rec.Good {
			if !survived[e] {
				t.Fatalf("good side contains phantom %v", e)
			}
		}
	}
}

func TestRunWithTrivialMIS(t *testing.T) {
	inst := sampleInstance(t, 12, 12, 8)
	res, err := Run(inst, core.NewTrivialMIS(), rng.NewPublicCoins(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.MISValid {
		t.Fatal("trivial MIS protocol produced invalid MIS on H")
	}
	if !res.GoalMetGood() {
		t.Errorf("good-side goal unmet: %d true edges, threshold %.1f, %d phantoms",
			res.GoodTrueEdges, res.Threshold, res.GoodPhantomEdges)
	}
	if res.PerGVertexBits != 2*2*inst.G.N() {
		t.Errorf("per-G-vertex bits = %d, want %d (2·|V(H)|)", res.PerGVertexBits, 4*inst.G.N())
	}
}

func TestRunWithLowBudgetMISFails(t *testing.T) {
	inst := sampleInstance(t, 12, 12, 10)
	res, err := Run(inst, &misproto.NeighborSample{NeighborsPerVertex: 1}, rng.NewPublicCoins(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.MISValid && res.GoalMetGood() {
		t.Error("1-neighbor-budget MIS met the reduction goal; hard instance is not hard")
	}
}

func TestChosenSideContainsAllSurvivedEdges(t *testing.T) {
	// Both sides always contain every surviving edge (independence is
	// unconditional), so the paper's larger-side rule never loses true
	// edges — it can only add phantoms.
	inst := sampleInstance(t, 10, 10, 12)
	res, err := Run(inst, core.NewTrivialMIS(), rng.NewPublicCoins(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueEdges != inst.SurvivedSpecialCount() {
		t.Errorf("chosen side has %d true edges, survived %d", res.TrueEdges, inst.SurvivedSpecialCount())
	}
}

func BenchmarkReductionTrivialMIS(b *testing.B) {
	rs, err := rsgraph.BuildBehrend(10)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := harddist.Sample(harddist.Params{RS: rs, K: 10, DropProb: 0.5}, rng.NewSource(1))
	if err != nil {
		b.Fatal(err)
	}
	coins := rng.NewPublicCoins(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(inst, core.NewTrivialMIS(), coins); err != nil {
			b.Fatal(err)
		}
	}
}

// Package misreduce implements the paper's Section 4 reduction from
// maximal matching on the hard distribution D_MM to maximal independent
// set, the engine behind Theorem 2.
//
// Given G ~ D_MM on n vertices, the players build H on 2n vertices: two
// disjoint copies G^ℓ and G^r of G, plus a complete bipartite "red" graph
// between the public ℓ-copies and the public r-copies (public vertices
// know one another per Remark 3.6(iii), so each can emit its red edges
// locally). A maximal IS of H cannot contain public vertices on both
// sides; on a side whose public copies are absent, Lemma 4.1 makes the IS
// membership of the unique copies reveal exactly which special-matching
// edges survived the random drop — which is the matching the referee must
// output, so an MIS protocol with b-bit sketches yields a matching
// protocol with 2b-bit sketches, and Theorem 1's bound transfers.
package misreduce

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/rng"
)

// BuildH constructs the reduction graph on 2n vertices: G-vertex u maps
// to uℓ = u and ur = n + u.
func BuildH(inst *harddist.Instance) *graph.Graph {
	n := inst.G.N()
	b := graph.NewBuilder(2 * n)
	for _, e := range inst.G.Edges() {
		b.AddEdge(e.U, e.V)     // left copy
		b.AddEdge(n+e.U, n+e.V) // right copy
	}
	pub := inst.PublicVertices()
	for _, u := range pub {
		for _, v := range pub {
			// Red edges (uℓ, vr) for every ordered pair, including u = v;
			// the builder deduplicates the symmetric duplicates.
			b.AddEdge(u, n+v)
		}
	}
	return b.Build()
}

// Recovery is the outcome of decoding a (claimed) maximal IS of H.
type Recovery struct {
	// Left and Right are the pre-images of Mℓ and Mr: for each special
	// pair (u,v), the side claims the edge when not both of its copies
	// are in the IS.
	Left, Right []graph.Edge
	// LeftPublicEmpty / RightPublicEmpty report S ∩ Pℓ = ∅ / S ∩ Pr = ∅.
	LeftPublicEmpty, RightPublicEmpty bool
	// Chosen is the larger of Left and Right — the referee's output,
	// following the paper's step 4 (ties go left). This side can contain
	// "phantom" pairs that never survived the drop; the paper's Section
	// 2.1 explicitly allows matching protocols this error type, and its
	// Theorem 1 is proven robust to it precisely so this reduction works.
	Chosen []graph.Edge
	// ChosenLeft reports which side was chosen.
	ChosenLeft bool
	// Good is the recovery from a side whose public copies are absent
	// from the IS (preferring left) — the side on which Lemma 4.1 is an
	// exact iff. Nil when neither side qualifies (only possible when the
	// IS was not a correct maximal IS of H).
	Good []graph.Edge
	// GoodLeft reports which side Good came from.
	GoodLeft bool
}

// Recover runs the referee's steps 3–4 on an alleged maximal IS of H.
func Recover(inst *harddist.Instance, mis []int) Recovery {
	n := inst.G.N()
	inSet := make(map[int]bool, len(mis))
	for _, v := range mis {
		inSet[v] = true
	}
	var rec Recovery
	rec.LeftPublicEmpty, rec.RightPublicEmpty = true, true
	for _, p := range inst.PublicVertices() {
		if inSet[p] {
			rec.LeftPublicEmpty = false
		}
		if inSet[n+p] {
			rec.RightPublicEmpty = false
		}
	}
	for i := 0; i < inst.Params.K; i++ {
		for _, e := range inst.SpecialMatchingFull(i) {
			if !(inSet[e.U] && inSet[e.V]) {
				rec.Left = append(rec.Left, e)
			}
			if !(inSet[n+e.U] && inSet[n+e.V]) {
				rec.Right = append(rec.Right, e)
			}
		}
	}
	if len(rec.Left) >= len(rec.Right) {
		rec.Chosen, rec.ChosenLeft = rec.Left, true
	} else {
		rec.Chosen, rec.ChosenLeft = rec.Right, false
	}
	switch {
	case rec.LeftPublicEmpty:
		rec.Good, rec.GoodLeft = rec.Left, true
	case rec.RightPublicEmpty:
		rec.Good, rec.GoodLeft = rec.Right, false
	}
	return rec
}

// CheckLemma41 verifies Lemma 4.1 on a side of H whose public copies are
// disjoint from the given maximal IS: for every special pair (u,v), the
// edge survived the drop iff not both copies are in the IS. It returns an
// error describing the first violation. Pass left=false to check the
// right side. The caller must ensure the IS is maximal in H and the
// side's public intersection is empty — exactly the lemma's hypotheses.
func CheckLemma41(inst *harddist.Instance, mis []int, left bool) error {
	n := inst.G.N()
	offset := 0
	if !left {
		offset = n
	}
	inSet := make(map[int]bool, len(mis))
	for _, v := range mis {
		inSet[v] = true
	}
	for i := 0; i < inst.Params.K; i++ {
		full := inst.SpecialMatchingFull(i)
		for x, e := range full {
			survived := inst.Survived(i, inst.JStar, x)
			bothIn := inSet[offset+e.U] && inSet[offset+e.V]
			if survived == bothIn {
				return fmt.Errorf("misreduce: lemma 4.1 violated at copy %d edge %v: survived=%v, bothIn=%v",
					i, e, survived, bothIn)
			}
		}
	}
	return nil
}

// Result reports one execution of the full reduction.
type Result struct {
	Recovery Recovery
	// TrueEdges counts chosen edges that are true surviving special edges
	// of G.
	TrueEdges int
	// PhantomEdges counts chosen edges that did not survive (the error
	// type the paper's Section 2.1 explicitly allows matching protocols
	// to make, and which this reduction can produce on the non-empty
	// public side).
	PhantomEdges int
	// GoodTrueEdges / GoodPhantomEdges are the same counts for the
	// public-empty ("good") side, where Lemma 4.1 is exact.
	GoodTrueEdges, GoodPhantomEdges int
	// Threshold is k·r/4, the Remark 3.6(iv) goal.
	Threshold float64
	// MISValid reports whether the MIS protocol's output was a genuine
	// maximal independent set of H.
	MISValid bool
	// PerGVertexBits is the per-G-vertex communication: each G-vertex
	// simulates its two H-copies, so this is twice the max per-H-vertex
	// sketch.
	PerGVertexBits int
}

// GoalMet reports the paper-rule success per Remark 3.6(iv): at least
// k·r/4 true surviving special edges recovered and no phantom edges.
func (r Result) GoalMet() bool {
	return r.PhantomEdges == 0 && float64(r.TrueEdges) >= r.Threshold
}

// GoalMetGood is GoalMet evaluated on the good (public-empty) side.
func (r Result) GoalMetGood() bool {
	return r.Recovery.Good != nil && r.GoodPhantomEdges == 0 &&
		float64(r.GoodTrueEdges) >= r.Threshold
}

// Run executes the reduction end-to-end: build H, run the MIS sketching
// protocol on it, recover the matching. The 2× cost accounting follows
// the paper: vertex u of G simulates both uℓ and ur.
func Run(inst *harddist.Instance, misProtocol core.Protocol[[]int], coins *rng.PublicCoins) (Result, error) {
	h := BuildH(inst)
	res, err := core.Run(misProtocol, h, coins)
	if err != nil {
		return Result{}, fmt.Errorf("misreduce: MIS protocol: %w", err)
	}
	out := Result{
		Recovery:       Recover(inst, res.Output),
		Threshold:      inst.Claim31Threshold(),
		MISValid:       graph.IsMaximalIndependentSet(h, res.Output),
		PerGVertexBits: 2 * res.MaxSketchBits,
	}
	survived := make(map[graph.Edge]bool)
	for i := 0; i < inst.Params.K; i++ {
		for _, e := range inst.SpecialMatchingSurvived(i) {
			survived[e] = true
		}
	}
	for _, e := range out.Recovery.Chosen {
		if survived[e] {
			out.TrueEdges++
		} else {
			out.PhantomEdges++
		}
	}
	for _, e := range out.Recovery.Good {
		if survived[e] {
			out.GoodTrueEdges++
		} else {
			out.GoodPhantomEdges++
		}
	}
	return out, nil
}

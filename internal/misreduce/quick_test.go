package misreduce

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// Property: for every sampled instance and every greedy maximal IS of H,
// (a) at least one public side is empty, (b) Lemma 4.1 holds exactly on
// that side, and (c) the good side equals the surviving special edges.
func TestReductionInvariantsQuick(t *testing.T) {
	f := func(seed uint64, mSeed, kSeed uint8) bool {
		m := 4 + int(mSeed%8)
		k := 1 + int(kSeed%4)
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			return false
		}
		inst, err := harddist.Sample(harddist.Params{RS: rs, K: k, DropProb: 0.5}, rng.NewSource(seed))
		if err != nil {
			return false
		}
		h := BuildH(inst)
		src := rng.NewSource(seed ^ 0x777)
		mis := graph.GreedyMIS(h, src.Perm(h.N()))
		rec := Recover(inst, mis)
		if !rec.LeftPublicEmpty && !rec.RightPublicEmpty {
			return false
		}
		if err := CheckLemma41(inst, mis, rec.GoodLeft); err != nil {
			return false
		}
		survived := make(map[graph.Edge]bool)
		count := 0
		for i := 0; i < k; i++ {
			for _, e := range inst.SpecialMatchingSurvived(i) {
				survived[e] = true
				count++
			}
		}
		if len(rec.Good) != count {
			return false
		}
		for _, e := range rec.Good {
			if !survived[e] {
				return false
			}
		}
		// Both sides always contain every surviving edge.
		for _, side := range [][]graph.Edge{rec.Left, rec.Right} {
			found := 0
			for _, e := range side {
				if survived[e] {
					found++
				}
			}
			if found != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: H's structure — degree of a public ℓ-copy is its G-degree
// plus |P| (biclique including the self pair); unique copies keep their
// G-degree exactly.
func TestHDegreesQuick(t *testing.T) {
	f := func(seed uint64, mSeed uint8) bool {
		m := 4 + int(mSeed%8)
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			return false
		}
		inst, err := harddist.Sample(harddist.Params{RS: rs, K: 2, DropProb: 0.5}, rng.NewSource(seed))
		if err != nil {
			return false
		}
		h := BuildH(inst)
		n := inst.G.N()
		pubCount := len(inst.PublicVertices())
		for _, v := range inst.PublicVertices() {
			if h.Degree(v) != inst.G.Degree(v)+pubCount {
				return false
			}
			if h.Degree(n+v) != inst.G.Degree(v)+pubCount {
				return false
			}
		}
		for i := 0; i < 2; i++ {
			for _, v := range inst.UniqueVertices(i) {
				if h.Degree(v) != inst.G.Degree(v) || h.Degree(n+v) != inst.G.Degree(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

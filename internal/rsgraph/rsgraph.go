// Package rsgraph constructs (r,t)-Ruzsa–Szemerédi graphs: graphs whose
// edge set partitions into t induced matchings, each of size r.
//
// These graphs are the combinatorial engine of the paper's hard
// distribution D_MM (Section 3.1): because each matching is induced, a
// maximal matching that reaches the matching's vertices must use the
// matching's own edges, yet a player cannot tell which of the t matchings
// is the special one.
//
// The main constructor follows the original Ruzsa–Szemerédi recipe driven
// by a 3-AP-free set S ⊆ [0, m) (package ap3): vertices are two disjoint
// blocks A (values x+s) and B (values x+2s), and matching M_x, for
// x ∈ [0, m), consists of the edges {A(x+s), B(x+2s)} for s ∈ S. The
// 3-AP-freeness of S makes every M_x induced. This yields t = m matchings
// of size r = |S| on N = 5m-3 vertices — the same (r, t) shape as the
// paper's Proposition 2.1 up to the constant in t (N/5 here vs N/3 there).
package rsgraph

import (
	"fmt"

	"repro/internal/ap3"
	"repro/internal/graph"
)

// RSGraph is a graph together with a partition of its edges into induced
// matchings of equal size.
type RSGraph struct {
	// G is the underlying simple graph.
	G *graph.Graph
	// Matchings holds the edge partition: t slices of r edges each.
	Matchings [][]graph.Edge
}

// N returns the number of vertices.
func (rs *RSGraph) N() int { return rs.G.N() }

// T returns the number of induced matchings.
func (rs *RSGraph) T() int { return len(rs.Matchings) }

// R returns the size of each induced matching (0 for an empty family).
func (rs *RSGraph) R() int {
	if len(rs.Matchings) == 0 {
		return 0
	}
	return len(rs.Matchings[0])
}

// MatchingVertices returns the 2r vertices incident on matching j.
func (rs *RSGraph) MatchingVertices(j int) []int {
	m := rs.Matchings[j]
	out := make([]int, 0, 2*len(m))
	for _, e := range m {
		out = append(out, e.U, e.V)
	}
	return out
}

// BuildBehrend constructs the Behrend-based RS graph with parameter m:
// t = m induced matchings of size r = |ap3.Best(m)| on N = 5m-3 vertices.
func BuildBehrend(m int) (*RSGraph, error) {
	if m < 1 {
		return nil, fmt.Errorf("rsgraph: m must be positive, got %d", m)
	}
	return BuildFromAPFreeSet(m, ap3.Best(m))
}

// BuildFromAPFreeSet constructs the RS graph for an arbitrary 3-AP-free
// set S ⊆ [0, m). The set is validated.
func BuildFromAPFreeSet(m int, s []int) (*RSGraph, error) {
	if !ap3.IsAPFree(s) {
		return nil, fmt.Errorf("rsgraph: set is not 3-AP-free")
	}
	for _, v := range s {
		if v < 0 || v >= m {
			return nil, fmt.Errorf("rsgraph: set element %d outside [0,%d)", v, m)
		}
	}
	// Vertex layout: A-block holds values in [0, 2m-1) at ids [0, 2m-1);
	// B-block holds values in [0, 3m-2) at ids [2m-1, 5m-3).
	aSize := 2*m - 1
	bSize := 3*m - 2
	n := aSize + bSize
	b := graph.NewBuilder(n)
	matchings := make([][]graph.Edge, m)
	for x := 0; x < m; x++ {
		edges := make([]graph.Edge, 0, len(s))
		for _, sv := range s {
			u := x + sv           // A value
			v := aSize + x + 2*sv // B vertex id
			b.AddEdge(u, v)
			edges = append(edges, graph.NewEdge(u, v))
		}
		matchings[x] = edges
	}
	rs := &RSGraph{G: b.Build(), Matchings: matchings}
	return rs, nil
}

// DisjointMatchings constructs the trivial (r,t)-RS graph made of t
// vertex-disjoint matchings of size r on N = 2rt vertices. Every matching
// is vacuously induced. This family lacks the vertex sharing that makes
// the Behrend-based family hard, and is used for ablations and as a
// free-parameter instance generator for scaled experiments.
func DisjointMatchings(r, t int) *RSGraph {
	b := graph.NewBuilder(2 * r * t)
	matchings := make([][]graph.Edge, t)
	for j := 0; j < t; j++ {
		edges := make([]graph.Edge, 0, r)
		base := 2 * r * j
		for i := 0; i < r; i++ {
			u, v := base+2*i, base+2*i+1
			b.AddEdge(u, v)
			edges = append(edges, graph.NewEdge(u, v))
		}
		matchings[j] = edges
	}
	return &RSGraph{G: b.Build(), Matchings: matchings}
}

// Verify checks the full RS property: every matching has the common size,
// matchings are pairwise edge-disjoint, they cover E(G), each is a valid
// matching of G, and each is induced (the subgraph induced by a matching's
// vertices contains exactly the matching's edges).
func Verify(rs *RSGraph) error {
	if len(rs.Matchings) == 0 {
		if rs.G.M() != 0 {
			return fmt.Errorf("rsgraph: no matchings but %d edges", rs.G.M())
		}
		return nil
	}
	r := len(rs.Matchings[0])
	seen := make(map[graph.Edge]int, rs.G.M())
	for j, m := range rs.Matchings {
		if len(m) != r {
			return fmt.Errorf("rsgraph: matching %d has size %d, want %d", j, len(m), r)
		}
		if !graph.IsMatching(rs.G, m) {
			return fmt.Errorf("rsgraph: matching %d is not a matching of G", j)
		}
		for _, e := range m {
			if prev, dup := seen[e]; dup {
				return fmt.Errorf("rsgraph: edge %v in matchings %d and %d", e, prev, j)
			}
			seen[e] = j
		}
		if err := verifyInduced(rs.G, m, j); err != nil {
			return err
		}
	}
	if len(seen) != rs.G.M() {
		return fmt.Errorf("rsgraph: matchings cover %d edges, graph has %d", len(seen), rs.G.M())
	}
	return nil
}

// verifyInduced checks that the subgraph induced by m's endpoints has
// exactly m's edges.
func verifyInduced(g *graph.Graph, m []graph.Edge, j int) error {
	inMatching := make(map[graph.Edge]bool, len(m))
	vertices := make([]int, 0, 2*len(m))
	for _, e := range m {
		inMatching[e] = true
		vertices = append(vertices, e.U, e.V)
	}
	inSet := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		inSet[v] = true
	}
	for _, v := range vertices {
		var badEdge *graph.Edge
		g.EachNeighbor(v, func(u int) {
			if badEdge != nil || !inSet[u] {
				return
			}
			e := graph.NewEdge(v, u)
			if !inMatching[e] {
				badEdge = &e
			}
		})
		if badEdge != nil {
			return fmt.Errorf("rsgraph: matching %d not induced: extra edge %v", j, *badEdge)
		}
	}
	return nil
}

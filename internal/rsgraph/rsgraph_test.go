package rsgraph

import (
	"testing"

	"repro/internal/ap3"
	"repro/internal/graph"
)

func TestBuildBehrendSmall(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 10, 25, 60} {
		rs, err := BuildBehrend(m)
		if err != nil {
			t.Fatalf("BuildBehrend(%d): %v", m, err)
		}
		if got, want := rs.N(), 5*m-3; got != want {
			t.Errorf("m=%d: N = %d, want %d", m, got, want)
		}
		if got, want := rs.T(), m; got != want {
			t.Errorf("m=%d: T = %d, want %d", m, got, want)
		}
		if got, want := rs.R(), len(ap3.Best(m)); got != want {
			t.Errorf("m=%d: R = %d, want %d", m, got, want)
		}
		if err := Verify(rs); err != nil {
			t.Errorf("m=%d: Verify: %v", m, err)
		}
	}
}

func TestBuildBehrendRejectsBadM(t *testing.T) {
	if _, err := BuildBehrend(0); err == nil {
		t.Error("BuildBehrend(0) accepted")
	}
}

func TestBuildFromAPFreeSetRejectsBadSets(t *testing.T) {
	if _, err := BuildFromAPFreeSet(10, []int{1, 3, 5}); err == nil {
		t.Error("AP set accepted")
	}
	if _, err := BuildFromAPFreeSet(5, []int{0, 7}); err == nil {
		t.Error("out-of-range set accepted")
	}
}

func TestBuildFromAPFreeSetEdgeCount(t *testing.T) {
	// Each (x, s) pair contributes a distinct edge, so M = m * |S|.
	m := 12
	s := ap3.Greedy(m)
	rs, err := BuildFromAPFreeSet(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rs.G.M(), m*len(s); got != want {
		t.Errorf("edge count = %d, want %d", got, want)
	}
}

func TestInducedPropertyDependsOnAPFreeness(t *testing.T) {
	// Sanity check of the construction math itself: if we force an AP set
	// through the construction internals, induced-ness must break for some
	// m. We emulate by building with a valid set and then adding an AP
	// element manually through a second builder.
	m := 10
	apSet := []int{1, 3, 5} // 3-AP
	aSize := 2*m - 1
	b := graph.NewBuilder(aSize + 3*m - 2)
	matchings := make([][]graph.Edge, m)
	for x := 0; x < m; x++ {
		var edges []graph.Edge
		for _, sv := range apSet {
			u, v := x+sv, aSize+x+2*sv
			b.AddEdge(u, v)
			edges = append(edges, graph.NewEdge(u, v))
		}
		matchings[x] = edges
	}
	rs := &RSGraph{G: b.Build(), Matchings: matchings}
	if err := Verify(rs); err == nil {
		t.Error("construction over an AP set still verified as induced; the verifier or the construction argument is broken")
	}
}

func TestDisjointMatchings(t *testing.T) {
	rs := DisjointMatchings(4, 7)
	if rs.N() != 2*4*7 || rs.T() != 7 || rs.R() != 4 {
		t.Fatalf("bad parameters: N=%d T=%d R=%d", rs.N(), rs.T(), rs.R())
	}
	if err := Verify(rs); err != nil {
		t.Fatal(err)
	}
	if rs.G.MaxDegree() != 1 {
		t.Errorf("disjoint matchings max degree = %d, want 1", rs.G.MaxDegree())
	}
}

func TestMatchingVertices(t *testing.T) {
	rs := DisjointMatchings(3, 2)
	vs := rs.MatchingVertices(1)
	if len(vs) != 6 {
		t.Fatalf("MatchingVertices returned %d vertices, want 6", len(vs))
	}
	seen := make(map[int]bool)
	for _, v := range vs {
		if seen[v] {
			t.Fatalf("duplicate vertex %d", v)
		}
		seen[v] = true
		if v < 6 || v >= 12 {
			t.Errorf("vertex %d outside matching-1 block [6,12)", v)
		}
	}
}

func TestVerifyCatchesCorruptions(t *testing.T) {
	fresh := func() *RSGraph { return DisjointMatchings(2, 3) }

	rs := fresh()
	rs.Matchings[0] = rs.Matchings[0][:1] // size mismatch
	if Verify(rs) == nil {
		t.Error("size mismatch not caught")
	}

	rs = fresh()
	rs.Matchings[1] = rs.Matchings[0] // duplicate edges + coverage gap
	if Verify(rs) == nil {
		t.Error("duplicated matching not caught")
	}

	rs = fresh()
	rs.Matchings[0] = []graph.Edge{graph.NewEdge(0, 5), graph.NewEdge(1, 4)} // not edges of G
	if Verify(rs) == nil {
		t.Error("phantom edges not caught")
	}

	// Non-induced: build a path 0-1-2-3 and claim {01, 23} is an induced
	// matching — it is not, because edge 1-2 connects its vertices.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	bad := &RSGraph{
		G: g,
		Matchings: [][]graph.Edge{
			{{U: 0, V: 1}, {U: 2, V: 3}},
			{{U: 1, V: 2}},
		},
	}
	if err := Verify(bad); err == nil {
		t.Error("non-induced matching not caught")
	} else if bad.Matchings[0][0] != (graph.Edge{U: 0, V: 1}) {
		t.Error("verify mutated input")
	}
}

func TestVerifyRaggedSizesCaught(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	rs := &RSGraph{G: g, Matchings: [][]graph.Edge{{{U: 0, V: 1}}, {{U: 2, V: 3}}}}
	if err := Verify(rs); err != nil {
		t.Errorf("two (1,2)-matchings should verify: %v", err)
	}
}

func TestEmptyRSGraph(t *testing.T) {
	rs := &RSGraph{G: graph.NewBuilder(3).Build()}
	if err := Verify(rs); err != nil {
		t.Errorf("empty RS graph failed: %v", err)
	}
	if rs.R() != 0 || rs.T() != 0 {
		t.Error("empty RS graph has nonzero R or T")
	}
}

func TestBehrendInducedExhaustive(t *testing.T) {
	// Directly re-verify induced-ness with an independent method: for each
	// matching, the induced subgraph on its vertices must have exactly r
	// edges.
	rs, err := BuildBehrend(15)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < rs.T(); j++ {
		sub, _ := rs.G.InducedSubgraph(rs.MatchingVertices(j))
		if sub.M() != rs.R() {
			t.Errorf("matching %d: induced subgraph has %d edges, want %d", j, sub.M(), rs.R())
		}
		if sub.MaxDegree() > 1 {
			t.Errorf("matching %d: induced subgraph has degree-%d vertex", j, sub.MaxDegree())
		}
	}
}

func BenchmarkBuildBehrend100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildBehrend(100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyBehrend60(b *testing.B) {
	rs, err := BuildBehrend(60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(rs); err != nil {
			b.Fatal(err)
		}
	}
}

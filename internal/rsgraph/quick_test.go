package rsgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/ap3"
	"repro/internal/rng"
)

// Property: the construction yields a verified RS graph for every
// 3-AP-free subset drawn at random (random subsets of the greedy set stay
// AP-free), at every m.
func TestConstructionAlwaysInducedQuick(t *testing.T) {
	f := func(seed uint64, mSeed uint8) bool {
		m := 3 + int(mSeed%25)
		base := ap3.Greedy(m)
		src := rng.NewSource(seed)
		var subset []int
		for _, v := range base {
			if src.Bool() {
				subset = append(subset, v)
			}
		}
		if len(subset) == 0 {
			subset = base[:1]
		}
		rs, err := BuildFromAPFreeSet(m, subset)
		if err != nil {
			return false
		}
		return Verify(rs) == nil && rs.R() == len(subset) && rs.T() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: edge count is exactly m·|S| — every (x, s) pair yields a
// distinct edge (the uniqueness that underpins the edge partition).
func TestEdgeCountExactQuick(t *testing.T) {
	f := func(mSeed, takeSeed uint8) bool {
		m := 3 + int(mSeed%30)
		base := ap3.Greedy(m)
		take := 1 + int(takeSeed)%len(base)
		rs, err := BuildFromAPFreeSet(m, base[:take])
		if err != nil {
			return false
		}
		return rs.G.M() == m*take
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: in the disjoint family, matching j's vertices occupy exactly
// the block [2rj, 2r(j+1)).
func TestDisjointBlocksQuick(t *testing.T) {
	f := func(rSeed, tSeed uint8) bool {
		r := 1 + int(rSeed%6)
		tt := 1 + int(tSeed%6)
		rs := DisjointMatchings(r, tt)
		if Verify(rs) != nil {
			return false
		}
		for j := 0; j < tt; j++ {
			for _, v := range rs.MatchingVertices(j) {
				if v < 2*r*j || v >= 2*r*(j+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package infotheory computes exact Shannon quantities — entropy,
// conditional entropy, mutual information, conditional mutual information
// — over explicitly enumerated joint distributions.
//
// It is the measurement instrument for package proofcheck, which
// re-derives the paper's Lemma 3.3 → 3.4 → 3.5 chain numerically on
// micro-instances of the hard distribution: the joint distribution over
// (J, survival indicators, player messages) is enumerable there, so every
// inequality in Section 3.2 can be checked to machine precision rather
// than trusted.
package infotheory

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Joint is a distribution over tuples of discrete variables. Outcomes are
// int vectors of fixed arity; probabilities need not be normalized until
// queried (queries normalize on the fly).
type Joint struct {
	arity int
	prob  map[string]float64
	total float64
}

// NewJoint returns an empty joint distribution over `arity` variables.
func NewJoint(arity int) *Joint {
	if arity < 1 {
		panic("infotheory: arity must be positive")
	}
	return &Joint{arity: arity, prob: make(map[string]float64)}
}

// Arity returns the number of variables.
func (j *Joint) Arity() int { return j.arity }

// Add accumulates probability mass p on the outcome.
func (j *Joint) Add(outcome []int, p float64) {
	if len(outcome) != j.arity {
		panic(fmt.Sprintf("infotheory: outcome arity %d, want %d", len(outcome), j.arity))
	}
	if p < 0 {
		panic("infotheory: negative probability")
	}
	j.prob[encode(outcome)] += p
	j.total += p
}

// Mass returns the total accumulated (unnormalized) mass.
func (j *Joint) Mass() float64 { return j.total }

// Support returns the number of distinct outcomes with positive mass.
func (j *Joint) Support() int { return len(j.prob) }

func encode(outcome []int) string {
	var sb strings.Builder
	for i, v := range outcome {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	return sb.String()
}

// project returns the marginal mass function over the selected variable
// indices.
func (j *Joint) project(vars []int) map[string]float64 {
	out := make(map[string]float64)
	buf := make([]string, len(vars))
	for key, p := range j.prob {
		fields := strings.Split(key, ",")
		for i, v := range vars {
			buf[i] = fields[v]
		}
		out[strings.Join(buf, ",")] += p
	}
	return out
}

// Entropy returns H(X_vars) in bits.
func (j *Joint) Entropy(vars ...int) float64 {
	j.checkVars(vars)
	if j.total == 0 {
		return 0
	}
	h := 0.0
	for _, p := range j.project(vars) {
		q := p / j.total
		if q > 0 {
			h -= q * math.Log2(q)
		}
	}
	return h
}

// CondEntropy returns H(X_vars | X_given) in bits.
func (j *Joint) CondEntropy(vars, given []int) float64 {
	if len(given) == 0 {
		return j.Entropy(vars...)
	}
	both := append(append([]int(nil), vars...), given...)
	return j.Entropy(both...) - j.Entropy(given...)
}

// MutualInfo returns I(X_a ; X_b | X_given) in bits, clamped at 0 to
// absorb floating-point noise (mutual information is non-negative).
func (j *Joint) MutualInfo(a, b, given []int) float64 {
	// I(A;B|C) = H(A|C) - H(A|B,C)
	bGiven := append(append([]int(nil), b...), given...)
	mi := j.CondEntropy(a, given) - j.CondEntropy(a, bGiven)
	if mi < 0 && mi > -1e-9 {
		return 0
	}
	return mi
}

func (j *Joint) checkVars(vars []int) {
	for _, v := range vars {
		if v < 0 || v >= j.arity {
			panic(fmt.Sprintf("infotheory: variable %d outside arity %d", v, j.arity))
		}
	}
}

// BinaryEntropy returns H(p) = -p·log2(p) - (1-p)·log2(1-p).
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// EntropyOf returns the entropy in bits of an unnormalized mass vector.
func EntropyOf(masses []float64) float64 {
	total := 0.0
	for _, m := range masses {
		if m < 0 {
			panic("infotheory: negative mass")
		}
		total += m
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, m := range masses {
		if m > 0 {
			q := m / total
			h -= q * math.Log2(q)
		}
	}
	return h
}

// ChernoffLowerTail bounds Pr[X <= (1-δ)μ] <= exp(-δ²μ/2) for a sum X of
// independent 0/1 variables with mean μ.
func ChernoffLowerTail(mu, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	if delta > 1 {
		delta = 1
	}
	return math.Exp(-delta * delta * mu / 2)
}

// Interner assigns small integer ids to strings, for packing message
// transcripts into Joint outcomes.
type Interner struct {
	ids map[string]int
}

// NewInterner returns an empty interner.
func NewInterner() *Interner { return &Interner{ids: make(map[string]int)} }

// ID returns the id for s, allocating the next id on first sight.
func (in *Interner) ID(s string) int {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := len(in.ids)
	in.ids[s] = id
	return id
}

// Len returns the number of distinct strings seen.
func (in *Interner) Len() int { return len(in.ids) }

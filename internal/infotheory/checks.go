package infotheory

// Reusable obligation helpers: the textbook entropy facts the paper's
// Fact 2.2 collects, and the two conditioning propositions (2.3, 2.4)
// its Section 3.2 leans on. The lowerbound obligations and this
// package's own property tests share these checkers, so a claim is
// stated in exactly one place.

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// factTol absorbs floating-point noise in the inequality checks.
const factTol = 1e-9

// Fact22Violations checks Fact 2.2's standard entropy facts on every
// variable pair of the joint — H(A) ≥ 0, conditioning reduces entropy
// (H(A|B) ≤ H(A)), the chain rule H(A,B) = H(B) + H(A|B), and
// I(A;B) ≥ 0 — returning one message per violated inequality.
func Fact22Violations(j *Joint) []string {
	var out []string
	for a := 0; a < j.Arity(); a++ {
		ha := j.Entropy(a)
		if ha < -factTol {
			out = append(out, fmt.Sprintf("H(X%d) = %v < 0", a, ha))
		}
		for b := 0; b < j.Arity(); b++ {
			if a == b {
				continue
			}
			cond := j.CondEntropy([]int{a}, []int{b})
			if cond > ha+factTol {
				out = append(out, fmt.Sprintf("H(X%d|X%d) = %v > H(X%d) = %v", a, b, cond, a, ha))
			}
			if joint := j.Entropy(a, b); math.Abs(joint-(j.Entropy(b)+cond)) > 1e-6 {
				out = append(out, fmt.Sprintf("chain rule: H(X%d,X%d) = %v ≠ H(X%d) + H(X%d|X%d)", a, b, joint, b, a, b))
			}
			if mi := j.MutualInfo([]int{a}, []int{b}, nil); mi < -factTol {
				out = append(out, fmt.Sprintf("I(X%d;X%d) = %v < 0", a, b, mi))
			}
		}
	}
	return out
}

// Proposition23Holds checks Proposition 2.3 on an (A, B, C, D) joint
// satisfying A ⊥ D | C: then I(A;B|C) ≤ I(A;B|C,D).
func Proposition23Holds(j *Joint) bool {
	return j.MutualInfo([]int{0}, []int{1}, []int{2}) <=
		j.MutualInfo([]int{0}, []int{1}, []int{2, 3})+factTol
}

// Proposition24Holds checks Proposition 2.4 on an (A, B, C, D) joint
// satisfying A ⊥ D | B, C: then I(A;B|C) ≥ I(A;B|C,D).
func Proposition24Holds(j *Joint) bool {
	return j.MutualInfo([]int{0}, []int{1}, []int{2}) >=
		j.MutualInfo([]int{0}, []int{1}, []int{2, 3})-factTol
}

// RandomJointDFuncOfC builds a random (A, B, C, D) joint with D = f(C),
// which guarantees A ⊥ D | C (in fact X ⊥ D | C for every X) — the
// hypothesis of Proposition 2.3.
func RandomJointDFuncOfC(src *rng.Source) *Joint {
	j := NewJoint(4)
	f := [3]int{src.Intn(2), src.Intn(2), src.Intn(2)}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 3; c++ {
				if src.Intn(5) == 0 {
					continue // sparsify support
				}
				j.Add([]int{a, b, c, f[c]}, src.Float64()+0.05)
			}
		}
	}
	if j.Support() == 0 {
		j.Add([]int{0, 0, 0, f[0]}, 1)
	}
	return j
}

// RandomJointDFuncOfBC builds a random (A, B, C, D) joint with
// D = f(B, C), guaranteeing A ⊥ D | B, C — the hypothesis of
// Proposition 2.4.
func RandomJointDFuncOfBC(src *rng.Source) *Joint {
	j := NewJoint(4)
	var f [2][3]int
	for b := range f {
		for c := range f[b] {
			f[b][c] = src.Intn(2)
		}
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 3; c++ {
				if src.Intn(5) == 0 {
					continue
				}
				j.Add([]int{a, b, c, f[b][c]}, src.Float64()+0.05)
			}
		}
	}
	if j.Support() == 0 {
		j.Add([]int{0, 0, 0, f[0][0]}, 1)
	}
	return j
}

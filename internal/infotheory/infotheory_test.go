package infotheory

import (
	"math"
	"testing"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestEntropyUniform(t *testing.T) {
	j := NewJoint(1)
	for v := 0; v < 8; v++ {
		j.Add([]int{v}, 1)
	}
	if h := j.Entropy(0); !approx(h, 3) {
		t.Errorf("H(uniform-8) = %v, want 3", h)
	}
}

func TestEntropyDeterministic(t *testing.T) {
	j := NewJoint(1)
	j.Add([]int{7}, 5)
	if h := j.Entropy(0); h != 0 {
		t.Errorf("H(point mass) = %v", h)
	}
}

func TestEntropyUnnormalizedInvariance(t *testing.T) {
	a, b := NewJoint(1), NewJoint(1)
	a.Add([]int{0}, 1)
	a.Add([]int{1}, 3)
	b.Add([]int{0}, 10)
	b.Add([]int{1}, 30)
	if !approx(a.Entropy(0), b.Entropy(0)) {
		t.Error("entropy depends on normalization")
	}
	if !approx(a.Entropy(0), BinaryEntropy(0.25)) {
		t.Errorf("H = %v, want H(1/4) = %v", a.Entropy(0), BinaryEntropy(0.25))
	}
}

func TestIndependentVariables(t *testing.T) {
	// X uniform 2, Y uniform 4, independent.
	j := NewJoint(2)
	for x := 0; x < 2; x++ {
		for y := 0; y < 4; y++ {
			j.Add([]int{x, y}, 1)
		}
	}
	if h := j.Entropy(0, 1); !approx(h, 3) {
		t.Errorf("H(X,Y) = %v, want 3", h)
	}
	if mi := j.MutualInfo([]int{0}, []int{1}, nil); !approx(mi, 0) {
		t.Errorf("I(X;Y) = %v, want 0", mi)
	}
	if ce := j.CondEntropy([]int{0}, []int{1}); !approx(ce, 1) {
		t.Errorf("H(X|Y) = %v, want 1", ce)
	}
}

func TestPerfectlyCorrelated(t *testing.T) {
	j := NewJoint(2)
	for x := 0; x < 4; x++ {
		j.Add([]int{x, x}, 1)
	}
	if mi := j.MutualInfo([]int{0}, []int{1}, nil); !approx(mi, 2) {
		t.Errorf("I(X;X) = %v, want 2", mi)
	}
	if ce := j.CondEntropy([]int{0}, []int{1}); !approx(ce, 0) {
		t.Errorf("H(X|X) = %v, want 0", ce)
	}
}

func TestXORTriple(t *testing.T) {
	// Z = X xor Y with X,Y independent fair bits: pairwise independent,
	// jointly dependent. The classic CMI check: I(X;Y) = 0 but
	// I(X;Y|Z) = 1.
	j := NewJoint(3)
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			j.Add([]int{x, y, x ^ y}, 1)
		}
	}
	if mi := j.MutualInfo([]int{0}, []int{1}, nil); !approx(mi, 0) {
		t.Errorf("I(X;Y) = %v, want 0", mi)
	}
	if mi := j.MutualInfo([]int{0}, []int{1}, []int{2}); !approx(mi, 1) {
		t.Errorf("I(X;Y|Z) = %v, want 1", mi)
	}
	if mi := j.MutualInfo([]int{0, 1}, []int{2}, nil); !approx(mi, 1) {
		t.Errorf("I(X,Y;Z) = %v, want 1", mi)
	}
}

func TestChainRuleIdentity(t *testing.T) {
	// H(A,B) = H(A) + H(B|A) on an arbitrary distribution.
	j := NewJoint(2)
	j.Add([]int{0, 0}, 0.5)
	j.Add([]int{0, 1}, 0.25)
	j.Add([]int{1, 0}, 0.125)
	j.Add([]int{1, 1}, 0.125)
	lhs := j.Entropy(0, 1)
	rhs := j.Entropy(0) + j.CondEntropy([]int{1}, []int{0})
	if !approx(lhs, rhs) {
		t.Errorf("chain rule violated: %v vs %v", lhs, rhs)
	}
}

func TestConditioningReducesEntropy(t *testing.T) {
	j := NewJoint(2)
	j.Add([]int{0, 0}, 3)
	j.Add([]int{0, 1}, 1)
	j.Add([]int{1, 0}, 1)
	j.Add([]int{1, 1}, 3)
	if j.CondEntropy([]int{0}, []int{1}) > j.Entropy(0)+eps {
		t.Error("H(A|B) > H(A)")
	}
}

func TestMutualInfoNonNegativeClamp(t *testing.T) {
	j := NewJoint(2)
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			j.Add([]int{x, y}, 1.0/9)
		}
	}
	if mi := j.MutualInfo([]int{0}, []int{1}, nil); mi < 0 {
		t.Errorf("clamp failed: %v", mi)
	}
}

func TestAddPanics(t *testing.T) {
	j := NewJoint(2)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"wrong arity", func() { j.Add([]int{1}, 1) }},
		{"negative mass", func() { j.Add([]int{1, 2}, -1) }},
		{"bad var", func() { j.Entropy(5) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestBinaryEntropy(t *testing.T) {
	if !approx(BinaryEntropy(0.5), 1) {
		t.Error("H(1/2) != 1")
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Error("H(0) or H(1) != 0")
	}
	if !approx(BinaryEntropy(0.25), 0.8112781244591328) {
		t.Errorf("H(1/4) = %v", BinaryEntropy(0.25))
	}
}

func TestEntropyOf(t *testing.T) {
	if !approx(EntropyOf([]float64{1, 1, 1, 1}), 2) {
		t.Error("EntropyOf uniform-4 != 2")
	}
	if EntropyOf(nil) != 0 {
		t.Error("EntropyOf(nil) != 0")
	}
	if EntropyOf([]float64{0, 5, 0}) != 0 {
		t.Error("EntropyOf point mass != 0")
	}
}

func TestChernoffLowerTail(t *testing.T) {
	if p := ChernoffLowerTail(100, 0.5); p > math.Exp(-12) {
		t.Errorf("tail bound too weak: %v", p)
	}
	if ChernoffLowerTail(100, 0) != 1 {
		t.Error("delta=0 should give trivial bound")
	}
	if ChernoffLowerTail(10, 2) != ChernoffLowerTail(10, 1) {
		t.Error("delta should clamp at 1")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.ID("hello")
	b := in.ID("world")
	if a == b {
		t.Error("distinct strings share id")
	}
	if in.ID("hello") != a {
		t.Error("repeat lookup changed id")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d", in.Len())
	}
}

func TestSupportAndMass(t *testing.T) {
	j := NewJoint(1)
	j.Add([]int{1}, 0.5)
	j.Add([]int{1}, 0.5)
	j.Add([]int{2}, 1)
	if j.Support() != 2 {
		t.Errorf("Support = %d", j.Support())
	}
	if !approx(j.Mass(), 2) {
		t.Errorf("Mass = %v", j.Mass())
	}
}

func TestDataProcessingInequality(t *testing.T) {
	// Z = f(Y) (drop one bit): I(X;Z) <= I(X;Y).
	j := NewJoint(3)
	// X two bits; Y = X; Z = low bit of Y.
	for x := 0; x < 4; x++ {
		j.Add([]int{x, x, x & 1}, 1)
	}
	ixy := j.MutualInfo([]int{0}, []int{1}, nil)
	ixz := j.MutualInfo([]int{0}, []int{2}, nil)
	if ixz > ixy+eps {
		t.Errorf("DPI violated: I(X;Z)=%v > I(X;Y)=%v", ixz, ixy)
	}
}

package infotheory

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomJoint builds a random 3-variable joint distribution with small
// alphabets from a seed.
func randomJoint(seed uint64) *Joint {
	src := rng.NewSource(seed)
	j := NewJoint(3)
	a := 2 + src.Intn(3)
	b := 2 + src.Intn(3)
	c := 2 + src.Intn(3)
	for x := 0; x < a; x++ {
		for y := 0; y < b; y++ {
			for z := 0; z < c; z++ {
				if src.Intn(4) > 0 { // leave some holes
					j.Add([]int{x, y, z}, src.Float64()+0.01)
				}
			}
		}
	}
	if j.Support() == 0 {
		j.Add([]int{0, 0, 0}, 1)
	}
	return j
}

// Property: entropies are non-negative and monotone under adding
// variables: H(A) <= H(A,B).
func TestEntropyMonotoneQuick(t *testing.T) {
	f := func(seed uint64) bool {
		j := randomJoint(seed)
		hA := j.Entropy(0)
		hAB := j.Entropy(0, 1)
		hABC := j.Entropy(0, 1, 2)
		return hA >= -tolQ && hA <= hAB+tolQ && hAB <= hABC+tolQ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

const tolQ = 1e-9

// Property: conditioning reduces entropy — H(A|B) <= H(A); conditioning
// on more reduces further: H(A|B,C) <= H(A|B).
func TestConditioningReducesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		j := randomJoint(seed)
		hA := j.Entropy(0)
		hAgB := j.CondEntropy([]int{0}, []int{1})
		hAgBC := j.CondEntropy([]int{0}, []int{1, 2})
		return hAgB <= hA+tolQ && hAgBC <= hAgB+tolQ && hAgBC >= -tolQ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: mutual information is non-negative and symmetric.
func TestMutualInfoSymmetricQuick(t *testing.T) {
	f := func(seed uint64) bool {
		j := randomJoint(seed)
		iAB := j.MutualInfo([]int{0}, []int{1}, nil)
		iBA := j.MutualInfo([]int{1}, []int{0}, nil)
		if iAB < 0 || iBA < 0 {
			return false
		}
		return abs(iAB-iBA) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: chain rule for mutual information (the paper's Fact 2.2-(5)):
// I(A,B;C) = I(A;C) + I(B;C|A).
func TestChainRuleMIQuick(t *testing.T) {
	f := func(seed uint64) bool {
		j := randomJoint(seed)
		lhs := j.MutualInfo([]int{0, 1}, []int{2}, nil)
		rhs := j.MutualInfo([]int{0}, []int{2}, nil) + j.MutualInfo([]int{1}, []int{2}, []int{0})
		return abs(lhs-rhs) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: H(A,B) = H(A) + H(B|A) (the paper's Fact 2.2-(4)).
func TestChainRuleEntropyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		j := randomJoint(seed)
		lhs := j.Entropy(0, 1)
		rhs := j.Entropy(0) + j.CondEntropy([]int{1}, []int{0})
		return abs(lhs-rhs) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the paper's Proposition 2.3 precondition-free weakening —
// I(A;B|C) >= 0 always, and data processing on deterministic functions:
// merging B into (B,C) cannot lose information: I(A;B) <= I(A;B,C).
func TestMoreVariablesMoreInfoQuick(t *testing.T) {
	f := func(seed uint64) bool {
		j := randomJoint(seed)
		iAB := j.MutualInfo([]int{0}, []int{1}, nil)
		iABC := j.MutualInfo([]int{0}, []int{1, 2}, nil)
		return iAB <= iABC+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package infotheory

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// These tests verify the paper's Propositions 2.3 and 2.4 numerically —
// the two conditioning inequalities its Section 3.2 leans on — by
// constructing joints that satisfy the required conditional independence
// structurally and checking the claimed directions.

// jointWithDFuncOfC builds (A, B, C, D) with D = f(C), which guarantees
// A ⊥ D | C (and in fact X ⊥ D | C for every X).
func jointWithDFuncOfC(seed uint64) *Joint {
	src := rng.NewSource(seed)
	j := NewJoint(4)
	f := [3]int{src.Intn(2), src.Intn(2), src.Intn(2)}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 3; c++ {
				if src.Intn(5) == 0 {
					continue // sparsify support
				}
				j.Add([]int{a, b, c, f[c]}, src.Float64()+0.05)
			}
		}
	}
	if j.Support() == 0 {
		j.Add([]int{0, 0, 0, f[0]}, 1)
	}
	return j
}

// jointWithDFuncOfBC builds (A, B, C, D) with D = f(B, C), guaranteeing
// A ⊥ D | B, C.
func jointWithDFuncOfBC(seed uint64) *Joint {
	src := rng.NewSource(seed)
	j := NewJoint(4)
	var f [2][3]int
	for b := range f {
		for c := range f[b] {
			f[b][c] = src.Intn(2)
		}
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 3; c++ {
				if src.Intn(5) == 0 {
					continue
				}
				j.Add([]int{a, b, c, f[b][c]}, src.Float64()+0.05)
			}
		}
	}
	if j.Support() == 0 {
		j.Add([]int{0, 0, 0, f[0][0]}, 1)
	}
	return j
}

// Proposition 2.3: if A ⊥ D | C then I(A;B|C) ≤ I(A;B|C,D).
func TestProposition23Quick(t *testing.T) {
	f := func(seed uint64) bool {
		j := jointWithDFuncOfC(seed)
		lhs := j.MutualInfo([]int{0}, []int{1}, []int{2})
		rhs := j.MutualInfo([]int{0}, []int{1}, []int{2, 3})
		return lhs <= rhs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Proposition 2.4: if A ⊥ D | B,C then I(A;B|C) ≥ I(A;B|C,D).
func TestProposition24Quick(t *testing.T) {
	f := func(seed uint64) bool {
		j := jointWithDFuncOfBC(seed)
		lhs := j.MutualInfo([]int{0}, []int{1}, []int{2})
		rhs := j.MutualInfo([]int{0}, []int{1}, []int{2, 3})
		return lhs >= rhs-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Without the independence hypotheses, both directions can fail — the
// propositions are not vacuous. Witnesses: the XOR triple.
func TestPropositionsNeedTheirHypotheses(t *testing.T) {
	// I(A;B|C) vs I(A;B): take C = A xor B (violates A ⊥ C | ∅... we use
	// variable layout (A, B, dummy, D) with D = A xor B, so A ⊥̸ D | C).
	j := NewJoint(4)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			j.Add([]int{a, b, 0, a ^ b}, 1)
		}
	}
	lhs := j.MutualInfo([]int{0}, []int{1}, []int{2})    // I(A;B|C)=0
	rhs := j.MutualInfo([]int{0}, []int{1}, []int{2, 3}) // I(A;B|C,D)=1
	if !(lhs < rhs) {
		t.Errorf("xor witness broken: lhs=%v rhs=%v", lhs, rhs)
	}
	// Here D = A xor B satisfies neither hypothesis pattern relative to
	// Prop 2.4 (A ⊥ D | B,C fails), and indeed the 2.4 direction
	// reverses: lhs < rhs.
}

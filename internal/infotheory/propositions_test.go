package infotheory

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// These tests verify the paper's Propositions 2.3 and 2.4 numerically —
// the two conditioning inequalities its Section 3.2 leans on — using the
// exported joint builders and checkers from checks.go (shared with the
// mm/fact-2.2-instrument obligation).

// Proposition 2.3: if A ⊥ D | C then I(A;B|C) ≤ I(A;B|C,D).
func TestProposition23Quick(t *testing.T) {
	f := func(seed uint64) bool {
		return Proposition23Holds(RandomJointDFuncOfC(rng.NewSource(seed)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Proposition 2.4: if A ⊥ D | B,C then I(A;B|C) ≥ I(A;B|C,D).
func TestProposition24Quick(t *testing.T) {
	f := func(seed uint64) bool {
		return Proposition24Holds(RandomJointDFuncOfBC(rng.NewSource(seed)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The structured random joints also satisfy every Fact 2.2 inequality —
// the checker itself must report no violations on well-formed joints.
func TestFact22OnRandomJointsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.NewSource(seed)
		if v := Fact22Violations(RandomJointDFuncOfC(src)); len(v) > 0 {
			t.Logf("violations: %v", v)
			return false
		}
		if v := Fact22Violations(RandomJointDFuncOfBC(src)); len(v) > 0 {
			t.Logf("violations: %v", v)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Without the independence hypotheses, both directions can fail — the
// propositions are not vacuous. Witnesses: the XOR triple.
func TestPropositionsNeedTheirHypotheses(t *testing.T) {
	// Variable layout (A, B, dummy, D) with D = A xor B: A ⊥̸ D | C, and
	// the Prop 2.4 direction reverses (lhs < rhs).
	j := NewJoint(4)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			j.Add([]int{a, b, 0, a ^ b}, 1)
		}
	}
	lhs := j.MutualInfo([]int{0}, []int{1}, []int{2})    // I(A;B|C)=0
	rhs := j.MutualInfo([]int{0}, []int{1}, []int{2, 3}) // I(A;B|C,D)=1
	if !(lhs < rhs) {
		t.Errorf("xor witness broken: lhs=%v rhs=%v", lhs, rhs)
	}
	if Proposition24Holds(j) {
		t.Error("Proposition24Holds accepted the xor witness, which violates its hypothesis and conclusion")
	}
}

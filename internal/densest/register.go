package densest

// Wire registration: the budget-driven default sampling probability
// (min(1, 8·log2(n+1)/√n), a pure function of n) keeps the spec free of
// extra parameters.

import (
	"repro/internal/graph"
	"repro/internal/protocol"
)

func init() {
	protocol.RegisterSketcher("densest-subgraph-sketch", func(g *graph.Graph) protocol.Sketcher[float64] {
		return New(0)
	})
}

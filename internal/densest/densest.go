// Package densest implements approximate densest-subgraph sketching
// after Bhattacharya et al. [22] and McGregor et al. [48], two more
// entries in the paper's list of polylog-sketchable problems.
//
// The density of S ⊆ V is |E(S)|/|S|; the maximum over S is within a
// factor 2 of the peak value seen by Charikar's peeling (repeatedly
// delete a minimum-degree vertex). The sketching estimator samples each
// edge with a public probability p, peels the sampled graph, and rescales
// by 1/p — for p ≥ c·log n/ d*(G) the estimate concentrates, and the
// sketches cost O(log² n) bits per vertex.
package densest

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashing"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// ExactPeelingDensity returns max over the peeling sequence of
// |E(S)|/|S| — Charikar's 2-approximation of the maximum density, which
// serves as the reference value (exact maximum density requires flow).
func ExactPeelingDensity(g *graph.Graph) float64 {
	return peelingDensity(g, nil)
}

// peelingDensity runs Charikar peeling; if weights is non-nil, each
// surviving edge counts weights[e] instead of 1.
func peelingDensity(g *graph.Graph, weight map[graph.Edge]float64) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	deg := make([]float64, n)
	edges := 0.0
	for _, e := range g.Edges() {
		w := 1.0
		if weight != nil {
			w = weight[e]
		}
		deg[e.U] += w
		deg[e.V] += w
		edges += w
	}
	removed := make([]bool, n)
	alive := n
	best := 0.0
	for alive > 0 {
		if d := edges / float64(alive); d > best {
			best = d
		}
		// Find the minimum-degree alive vertex (O(n²) total; fine for the
		// scales the sketching model simulates).
		min := -1
		for v := 0; v < n; v++ {
			if !removed[v] && (min == -1 || deg[v] < deg[min]) {
				min = v
			}
		}
		removed[min] = true
		alive--
		g.EachNeighbor(min, func(u int) {
			if !removed[u] {
				w := 1.0
				if weight != nil {
					w = weight[graph.NewEdge(min, u)]
				}
				deg[u] -= w
				edges -= w
			}
		})
	}
	return best
}

// Protocol is the sketching estimator: every vertex reports the sampled
// subset of its incident edges under a public edge-sampling hash, the
// referee peels the sampled graph and rescales. Output is the estimated
// maximum density.
type Protocol struct {
	// SampleProb is the edge-sampling probability; 0 selects
	// min(1, 8·log2(n+1)/√n) — a budget-driven default that keeps
	// sketches near O(√·) on dense graphs while staying exact on sparse
	// ones. For the contrast experiments, set it explicitly.
	SampleProb float64
}

var _ core.Protocol[float64] = (*Protocol)(nil)

// New returns the estimator with default sampling.
func New(sampleProb float64) *Protocol { return &Protocol{SampleProb: sampleProb} }

// Name implements core.Protocol.
func (p *Protocol) Name() string { return "densest-subgraph-sketch" }

func (p *Protocol) prob(n int) float64 {
	if p.SampleProb > 0 {
		return p.SampleProb
	}
	pr := 8 * float64(bitio.UintWidth(n+1))
	sqrt := 1.0
	for sqrt*sqrt < float64(n) {
		sqrt++
	}
	pr /= sqrt
	if pr > 1 {
		pr = 1
	}
	return pr
}

// keeps reports the public sampling decision for an edge; both endpoints
// (and the referee) agree because it is a function of public coins and
// the edge identity alone.
func keeps(n, u, v int, prob float64, coins *rng.PublicCoins) bool {
	fam := hashing.NewPairwise(coins.Derive("densest-sample").Source())
	e := graph.NewEdge(u, v)
	idx := uint64(e.U)*uint64(n) + uint64(e.V)
	// Map the hash to [0,1).
	return float64(fam.Hash(idx)%1000000)/1000000 < prob
}

// Sketch implements core.Protocol.
func (p *Protocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	prob := p.prob(view.N)
	idWidth := bitio.UintWidth(view.N)
	var sampled []int
	for _, u := range view.Neighbors {
		if keeps(view.N, view.ID, u, prob, coins) {
			sampled = append(sampled, u)
		}
	}
	w.WriteUvarint(uint64(len(sampled)))
	for _, u := range sampled {
		w.WriteUint(uint64(u), idWidth)
	}
	return w, nil
}

// Decode implements core.Protocol.
func (p *Protocol) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) (float64, error) {
	idWidth := bitio.UintWidth(n)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		k, err := sketches[v].ReadUvarint()
		if err != nil {
			return 0, fmt.Errorf("densest: sketch %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := sketches[v].ReadUint(idWidth)
			if err != nil {
				return 0, fmt.Errorf("densest: sketch %d: %w", v, err)
			}
			if int(u) != v && int(u) < n {
				b.AddEdge(v, int(u))
			}
		}
	}
	sampled := b.Build()
	prob := p.prob(n)
	return peelingDensity(sampled, nil) / prob, nil
}

// Verify implements protocol.Sketcher. The audit band is coarse by
// design — peeling is itself a 2-approximation and sampling adds noise —
// so the estimate must land within a factor 2 of the peeling reference,
// with one unit of absolute slack for near-empty graphs.
func (p *Protocol) Verify(g *graph.Graph, out float64) protocol.Outcome {
	exact := ExactPeelingDensity(g)
	return protocol.Outcome{
		Kind:    "value",
		Size:    int(out + 0.5),
		Value:   out,
		Checked: true,
		Valid:   out >= exact/2-1 && out <= 2*exact+1,
	}
}

package densest

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestExactPeelingKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"empty", graph.NewBuilder(4).Build(), 0},
		{"single edge", graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}), 0.5},
		{"triangle", gen.Cycle(3), 1},
		{"K4", gen.Complete(4), 1.5},
		{"K5", gen.Complete(5), 2},
		{"path", gen.Path(5), 4.0 / 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := ExactPeelingDensity(c.g)
			if math.Abs(got-c.want) > 1e-9 {
				t.Errorf("density = %v, want %v", got, c.want)
			}
		})
	}
}

func TestExactPeelingFindsPlantedClique(t *testing.T) {
	// Sparse background + K10: density must reach at least (10-1)/2 = 4.5
	// from the clique (peeling is a 2-approx so >= 4.5/... the clique
	// itself survives peeling to give >= 45/10).
	src := rng.NewSource(1)
	b := graph.NewBuilder(60)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := 0; i < 60; i++ {
		u, v := src.Intn(60), src.Intn(60)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	if d := ExactPeelingDensity(g); d < 4.0 {
		t.Errorf("planted K10 density %v, want >= 4", d)
	}
}

func TestSketchFullSamplingIsExact(t *testing.T) {
	src := rng.NewSource(2)
	coins := rng.NewPublicCoins(3)
	for trial := 0; trial < 10; trial++ {
		g := gen.Gnp(40, 0.2, src)
		exact := ExactPeelingDensity(g)
		res, err := core.Run[float64](New(1.0), g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Output-exact) > 1e-9 {
			t.Errorf("p=1 estimate %v != exact %v", res.Output, exact)
		}
	}
}

func TestSketchEstimateConcentrates(t *testing.T) {
	src := rng.NewSource(5)
	coins := rng.NewPublicCoins(6)
	g := gen.Gnp(120, 0.3, src) // dense: density ~ 18
	exact := ExactPeelingDensity(g)
	within := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		res, err := core.Run[float64](New(0.5), g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Output >= exact*0.6 && res.Output <= exact*1.6 {
			within++
		}
	}
	if within < trials*8/10 {
		t.Errorf("estimate within 1.6x in %d/%d trials (exact %v)", within, trials, exact)
	}
}

func TestSketchSavesBitsOnDenseGraphs(t *testing.T) {
	g := gen.Gnp(300, 0.5, rng.NewSource(7))
	res, err := core.Run[float64](New(0.1), g, rng.NewPublicCoins(8))
	if err != nil {
		t.Fatal(err)
	}
	fullBits := g.MaxDegree() * 9
	if res.MaxSketchBits >= fullBits/3 {
		t.Errorf("sampled sketch %d bits, full would be %d — sampling saved nothing", res.MaxSketchBits, fullBits)
	}
}

func TestSamplingIsConsistentAcrossEndpoints(t *testing.T) {
	// Both endpoints of an edge must make the same sampling decision, or
	// the referee would see asymmetric reports.
	coins := rng.NewPublicCoins(9)
	n := 50
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			a := keeps(n, u, v, 0.5, coins)
			b := keeps(n, v, u, 0.5, coins)
			if a != b {
				t.Fatalf("endpoints disagree on edge (%d,%d)", u, v)
			}
		}
	}
}

func BenchmarkExactPeelingN200(b *testing.B) {
	g := gen.Gnp(200, 0.2, rng.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactPeelingDensity(g)
	}
}

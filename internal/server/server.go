// Package server is the refereed daemon: an HTTP front end that accepts
// wire.RunSpec frames, executes them through the in-process engine, and
// returns wire.RunReport frames. The daemon adds no semantics of its own
// — by the engine's determinism contract and the wire codec's
// canonicality, a spec dispatched here yields the byte-identical
// transcript a local engine.Run would, which the parity tests and the CI
// smoke sweep check digest-for-digest.
//
// Endpoints:
//
//	POST /v1/run     one RunSpec frame in, one RunReport frame out
//	                 (JSON report, sans transcript, under Accept: application/json)
//	POST /v1/batch   one batch-spec frame in, one batch-report frame out
//	                 (stats and outcomes only — no transcripts)
//	GET  /v1/healthz liveness plus the protocol registry
//	GET  /v1/stats   operational counters: result-cache hits, misses,
//	                 evictions, occupancy, and uptime
//
// Operational behavior lives here, deliberately apart from execution:
// a semaphore bounds simultaneous executions (waiters queue until their
// QueueTimeout expires — shed with 429 + Retry-After — or the request
// context dies), every execution runs under a per-request timeout, and
// each request emits one structured log line.
//
// When Config.CacheBytes is set, results are memoized in a
// digest-keyed LRU: the key is the canonical spec encoding
// (wire.SpecCacheKey), which by the determinism contract is a content
// address for the result, so a hit serves stored bytes that are
// byte-identical to a fresh execution's response.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/wire"
)

// maxBodyBytes bounds request bodies. Specs are a few hundred bytes;
// even a large batch stays far under this.
const maxBodyBytes = 1 << 20

// Config carries the daemon's operational knobs.
type Config struct {
	// MaxConcurrent bounds simultaneous spec executions; requests beyond
	// it queue until a slot frees or their context dies. 0 means
	// GOMAXPROCS.
	MaxConcurrent int
	// Timeout is the per-request execution budget. 0 means one minute.
	Timeout time.Duration
	// QueueTimeout bounds how long a request may wait for an execution
	// slot. A request still queued when it expires is shed with 429 and
	// a Retry-After hint, telling well-behaved clients (internal/client
	// honors the header) to come back rather than pile onto a saturated
	// daemon. 0 means wait as long as the request context allows.
	QueueTimeout time.Duration
	// CacheBytes is the result-cache byte budget. When > 0, successful
	// executions are memoized under their spec's content address and
	// identical specs are served from memory without re-executing.
	// 0 disables memoization.
	CacheBytes int64
	// Logger receives one structured record per request. nil means
	// slog.Default().
	Logger *slog.Logger
}

// Cached result values are tagged with their richness: full entries
// carry stats+outcome+transcript (populated by /v1/run and servable
// everywhere), summary entries carry stats+outcome only (populated by
// /v1/batch, where transcripts never materialize).
const (
	cacheSummary byte = 0
	cacheFull    byte = 1
)

// Server handles the referee service endpoints. It is an http.Handler;
// use Serve for a managed listener with graceful shutdown.
type Server struct {
	cfg     Config
	log     *slog.Logger
	sem     chan struct{}
	mux     *http.ServeMux
	results *cache.LRU // nil when memoization is disabled
	started time.Time
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	if cfg.CacheBytes > 0 {
		s.results = cache.New(cfg.CacheBytes)
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// statusWriter records the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP dispatches to the v1 endpoints and logs every request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Duration("elapsed", time.Since(start)),
		slog.String("remote", r.RemoteAddr),
	)
}

// acquire claims an execution slot, queueing until one frees, the
// queue timeout expires, or ctx dies. On success it returns the
// release func and status 0; otherwise release is nil and status is
// the HTTP code to shed with: 429 (queue timeout — the daemon is
// saturated, retry later) or 503 (the request died while queued).
func (s *Server) acquire(ctx context.Context) (release func(), status int) {
	var timeout <-chan time.Time
	if s.cfg.QueueTimeout > 0 {
		t := time.NewTimer(s.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	case <-timeout:
		return nil, http.StatusTooManyRequests
	case <-ctx.Done():
		return nil, http.StatusServiceUnavailable
	}
}

// shed writes the queue-rejection response for a non-zero acquire
// status. A 429 carries Retry-After: the queue just proved itself full
// for a whole QueueTimeout, so a comparable wait (at least a second)
// is the honest hint.
func (s *Server) shed(w http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests {
		secs := int(s.cfg.QueueTimeout / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		fail(w, status, "execution queue full for %v; retry after %ds", s.cfg.QueueTimeout, secs)
		return
	}
	fail(w, status, "canceled while queued for an execution slot")
}

// fail writes a plain-text error response.
func fail(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// readBody drains a request body under the size cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

// wantsJSON reports whether the client asked for the JSON form of the
// response instead of the binary frame.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// execStatus maps an execution failure to a response status: timeouts
// and shutdown cancellations are retryable (504/503), everything else —
// a spec the registry rejects, a protocol failing mid-run — is a
// deterministic 4xx/5xx the client must not retry.
func execStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	spec, err := wire.DecodeRunSpec(body)
	if err != nil {
		fail(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		fail(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	// Cache fast path: a full entry under this spec's content address
	// is served without queueing for an execution slot at all — the
	// stored bytes re-frame under this request's spec echo into exactly
	// the response a fresh execution would produce.
	var key string
	if s.results != nil {
		key = wire.SpecCacheKey(spec)
		if val, ok := s.results.Get(key); ok && val[0] == cacheFull {
			frame := wire.EncodeRunReportForSpec(spec, val[1:])
			report, err := wire.DecodeRunReport(frame)
			if err != nil {
				fail(w, http.StatusInternalServerError, "corrupt cached result for %q: %v", spec.Label, err)
				return
			}
			s.serveRun(w, r, frame, report, true)
			return
		}
	}
	release, errStatus := s.acquire(r.Context())
	if errStatus != 0 {
		s.shed(w, errStatus)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	report, err := wire.ExecuteSpec(ctx, spec)
	if err != nil {
		fail(w, execStatus(err), "execute %q: %v", spec.Label, err)
		return
	}
	if s.results != nil {
		s.results.Put(key, append([]byte{cacheFull}, wire.EncodeResultPayload(report)...))
	}
	s.serveRun(w, r, wire.EncodeRunReport(report), report, false)
}

// serveRun writes a /v1/run response from an encoded report frame and
// its decoded form — one response path for the fresh and cached cases,
// so both transports emit byte-identical frames by construction.
func (s *Server) serveRun(w http.ResponseWriter, r *http.Request, frame []byte, report *wire.RunReport, cached bool) {
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "run",
		slog.String("label", report.Spec.Label),
		slog.String("protocol", report.Spec.Protocol),
		slog.String("digest", report.Digest()),
		slog.String("resilience", report.Stats.Faults.Resilience.String()),
		slog.Bool("cached", cached),
	)
	if wantsJSON(r) {
		writeJSON(w, wire.ReportToJSON(report, false))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	specs, err := wire.DecodeBatchSpec(body)
	if err != nil {
		fail(w, http.StatusBadRequest, "decode batch: %v", err)
		return
	}
	// Per-item cache lookup: items whose spec address is already cached
	// (full or summary — a batch item only needs the stats+outcome
	// prefix) are answered from memory; only the misses execute.
	items := make([]wire.BatchItem, len(specs))
	missSpecs := specs
	missIdx := make([]int, 0, len(specs))
	if s.results != nil {
		missSpecs = missSpecs[:0:0]
		for i, spec := range specs {
			items[i].Label = spec.Label
			if val, ok := s.results.Get(wire.SpecCacheKey(spec)); ok {
				stats, outcome, err := wire.DecodeResultSummary(val[1:])
				if err == nil {
					items[i].Stats = stats
					items[i].Outcome = outcome
					continue
				}
			}
			missSpecs = append(missSpecs, spec)
			missIdx = append(missIdx, i)
		}
	}
	hits := len(specs) - len(missSpecs)
	if len(missSpecs) > 0 {
		release, errStatus := s.acquire(r.Context())
		if errStatus != 0 {
			s.shed(w, errStatus)
			return
		}
		defer release()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		// The batch runs on one slot: engine.RunBatch already parallelizes
		// across jobs internally, so letting it also multiply against the
		// request limiter would oversubscribe the host.
		missItems := wire.ExecuteBatch(ctx, &engine.Engine{}, missSpecs)
		if err := ctx.Err(); err != nil {
			fail(w, execStatus(err), "execute batch: %v", err)
			return
		}
		if s.results == nil {
			items = missItems
		} else {
			for j, it := range missItems {
				items[missIdx[j]] = it
				if it.Err == "" {
					val := append([]byte{cacheSummary}, wire.EncodeResultSummary(&it.Stats, it.Outcome)...)
					s.results.PutIfAbsent(wire.SpecCacheKey(missSpecs[j]), val)
				}
			}
		}
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "batch",
		slog.Int("specs", len(specs)), slog.Int("cached", hits))
	if wantsJSON(r) {
		writeJSON(w, wire.BatchToJSON(items))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wire.EncodeBatchReport(items))
}

// healthInfo is the healthz response body.
type healthInfo struct {
	Status      string   `json:"status"`
	WireVersion int      `json:"wire_version"`
	Protocols   []string `json:"protocols"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, healthInfo{Status: "ok", WireVersion: wire.Version, Protocols: wire.Protocols()})
}

// CacheStats is the result-cache section of the stats response.
type CacheStats struct {
	Enabled bool `json:"enabled"`
	cache.Stats
	HitRate float64 `json:"hit_rate"`
}

// StatsInfo is the GET /v1/stats response body.
type StatsInfo struct {
	Status        string     `json:"status"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	MaxConcurrent int        `json:"max_concurrent"`
	Cache         CacheStats `json:"cache"`
}

// Stats snapshots the daemon's operational counters — the same body
// GET /v1/stats serves.
func (s *Server) Stats() StatsInfo {
	info := StatsInfo{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		MaxConcurrent: s.cfg.MaxConcurrent,
	}
	if s.results != nil {
		st := s.results.Stats()
		info.Cache = CacheStats{Enabled: true, Stats: st, HitRate: st.HitRate()}
	}
	return info
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Serve runs the daemon on ln until ctx is canceled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// grace to finish, and stragglers are cut off after it. Returns nil on
// a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("shutting down", slog.Duration("grace", grace))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if err != nil {
		// Grace expired with requests still in flight; cut them off.
		srv.Close()
	}
	<-errc // drain http.ErrServerClosed from the Serve goroutine
	return err
}

// Package server is the refereed daemon: an HTTP front end that accepts
// wire.RunSpec frames, executes them through the in-process engine, and
// returns wire.RunReport frames. The daemon adds no semantics of its own
// — by the engine's determinism contract and the wire codec's
// canonicality, a spec dispatched here yields the byte-identical
// transcript a local engine.Run would, which the parity tests and the CI
// smoke sweep check digest-for-digest.
//
// Endpoints:
//
//	POST /v1/run     one RunSpec frame in, one RunReport frame out
//	                 (JSON report, sans transcript, under Accept: application/json)
//	POST /v1/batch   one batch-spec frame in, one batch-report frame out
//	                 (stats and outcomes only — no transcripts)
//	GET  /v1/healthz liveness plus the protocol registry
//
// Operational behavior lives here, deliberately apart from execution:
// a semaphore bounds simultaneous executions (waiters queue until the
// request context dies), every execution runs under a per-request
// timeout, and each request emits one structured log line.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

// maxBodyBytes bounds request bodies. Specs are a few hundred bytes;
// even a large batch stays far under this.
const maxBodyBytes = 1 << 20

// Config carries the daemon's operational knobs.
type Config struct {
	// MaxConcurrent bounds simultaneous spec executions; requests beyond
	// it queue until a slot frees or their context dies. 0 means
	// GOMAXPROCS.
	MaxConcurrent int
	// Timeout is the per-request execution budget. 0 means one minute.
	Timeout time.Duration
	// Logger receives one structured record per request. nil means
	// slog.Default().
	Logger *slog.Logger
}

// Server handles the referee service endpoints. It is an http.Handler;
// use Serve for a managed listener with graceful shutdown.
type Server struct {
	cfg Config
	log *slog.Logger
	sem chan struct{}
	mux *http.ServeMux
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		cfg: cfg,
		log: cfg.Logger,
		sem: make(chan struct{}, cfg.MaxConcurrent),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s
}

// statusWriter records the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP dispatches to the v1 endpoints and logs every request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Duration("elapsed", time.Since(start)),
		slog.String("remote", r.RemoteAddr),
	)
}

// acquire claims an execution slot, queueing until one frees or ctx
// dies. The returned release must be called iff ok.
func (s *Server) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-ctx.Done():
		return nil, false
	}
}

// fail writes a plain-text error response.
func fail(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// readBody drains a request body under the size cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

// wantsJSON reports whether the client asked for the JSON form of the
// response instead of the binary frame.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// execStatus maps an execution failure to a response status: timeouts
// and shutdown cancellations are retryable (504/503), everything else —
// a spec the registry rejects, a protocol failing mid-run — is a
// deterministic 4xx/5xx the client must not retry.
func execStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	spec, err := wire.DecodeRunSpec(body)
	if err != nil {
		fail(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		fail(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	release, ok := s.acquire(r.Context())
	if !ok {
		fail(w, http.StatusServiceUnavailable, "canceled while queued for an execution slot")
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	report, err := wire.ExecuteSpec(ctx, spec)
	if err != nil {
		fail(w, execStatus(err), "execute %q: %v", spec.Label, err)
		return
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "run",
		slog.String("label", spec.Label),
		slog.String("protocol", spec.Protocol),
		slog.String("digest", report.Digest()),
		slog.String("resilience", report.Stats.Faults.Resilience.String()),
	)
	if wantsJSON(r) {
		writeJSON(w, wire.ReportToJSON(report, false))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wire.EncodeRunReport(report))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	specs, err := wire.DecodeBatchSpec(body)
	if err != nil {
		fail(w, http.StatusBadRequest, "decode batch: %v", err)
		return
	}
	release, ok := s.acquire(r.Context())
	if !ok {
		fail(w, http.StatusServiceUnavailable, "canceled while queued for an execution slot")
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	// The batch runs on one slot: engine.RunBatch already parallelizes
	// across jobs internally, so letting it also multiply against the
	// request limiter would oversubscribe the host.
	items := wire.ExecuteBatch(ctx, &engine.Engine{}, specs)
	if err := ctx.Err(); err != nil {
		fail(w, execStatus(err), "execute batch: %v", err)
		return
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "batch", slog.Int("specs", len(specs)))
	if wantsJSON(r) {
		writeJSON(w, wire.BatchToJSON(items))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wire.EncodeBatchReport(items))
}

// healthInfo is the healthz response body.
type healthInfo struct {
	Status      string   `json:"status"`
	WireVersion int      `json:"wire_version"`
	Protocols   []string `json:"protocols"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, healthInfo{Status: "ok", WireVersion: wire.Version, Protocols: wire.Protocols()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Serve runs the daemon on ln until ctx is canceled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// grace to finish, and stragglers are cut off after it. Returns nil on
// a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("shutting down", slog.Duration("grace", grace))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if err != nil {
		// Grace expired with requests still in flight; cut them off.
		srv.Close()
	}
	<-errc // drain http.ErrServerClosed from the Serve goroutine
	return err
}

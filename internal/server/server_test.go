package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/wire"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg server.Config) (*httptest.Server, *client.Client) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	ts := httptest.NewServer(server.New(cfg))
	t.Cleanup(ts.Close)
	return ts, client.New(client.Config{BaseURL: ts.URL})
}

// TestGoldenParityLocalVsRemote is the service's non-negotiable
// invariant: for every committed fixture spec — one per registered
// protocol, plus three faulted — the transcript obtained through
// refereed over loopback HTTP is byte-identical to the local engine
// run, at Workers 1 and 8 on either side.
func TestGoldenParityLocalVsRemote(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	for _, spec := range wire.SmokeSpecs(1) {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			local, err := wire.ExecuteSpec(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			localBytes := wire.EncodeTranscript(local.Transcript)
			for _, workers := range []int{1, 8} {
				remoteSpec := spec
				remoteSpec.Workers = workers
				remote, err := c.Run(context.Background(), remoteSpec)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wire.EncodeTranscript(remote.Transcript), localBytes) {
					t.Fatalf("workers=%d: remote transcript differs from local run", workers)
				}
				if remote.Digest() != wire.TranscriptDigest(local.Transcript) {
					t.Fatalf("workers=%d: digest drifted", workers)
				}
				if remote.Stats.Faults.Resilience != local.Stats.Faults.Resilience {
					t.Fatalf("workers=%d: resilience %v != local %v",
						workers, remote.Stats.Faults.Resilience, local.Stats.Faults.Resilience)
				}
			}
		})
	}
}

// TestConcurrentRunsUnderLimiter slams the daemon with more simultaneous
// /v1/run requests than it has execution slots; all must succeed, agree
// on the digest, and never exceed the limiter (checked under -race).
func TestConcurrentRunsUnderLimiter(t *testing.T) {
	const clients = 20
	_, c := newTestServer(t, server.Config{MaxConcurrent: 4})
	spec := wire.SmokeSpecs(2)[3] // mm-tworound
	want, err := wire.ExecuteSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := want.Digest()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			report, err := c.Run(context.Background(), spec)
			if err != nil {
				errs <- err
				return
			}
			if got := report.Digest(); got != wantDigest {
				errs <- fmt.Errorf("digest %s, want %s", got, wantDigest)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGracefulShutdown starts Serve on a real listener, opens requests,
// cancels the serve context mid-flight, and checks that in-flight work
// drains cleanly while new connections are refused.
func TestGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{MaxConcurrent: 8, Logger: quietLogger()})
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 10*time.Second) }()

	c := client.New(client.Config{BaseURL: "http://" + ln.Addr().String(), Retries: -1})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}

	const inflight = 6
	spec := wire.SmokeSpecs(4)[0]
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := c.Run(context.Background(), spec)
			results <- err
		}()
	}
	// Let the requests reach the daemon, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()

	for i := 0; i < inflight; i++ {
		if err := <-results; err != nil {
			// A request may lose the race with the listener closing;
			// that surfaces as a connection error, never a corrupt
			// response.
			if !strings.Contains(err.Error(), "connection") && !strings.Contains(err.Error(), "EOF") {
				t.Errorf("in-flight request failed oddly: %v", err)
			}
		}
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after graceful drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("daemon still answering after shutdown")
	}
}

// TestBatchEndpoint checks /v1/batch matches per-spec local execution
// and reports per-item errors instead of failing the whole batch.
func TestBatchEndpoint(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	specs := append(wire.SmokeSpecs(1)[:3],
		wire.RunSpec{Label: "bogus", Protocol: "no-such", Graph: wire.GraphSpec{Kind: "gnp", N: 4, P: 0.5}})
	items, err := c.RunBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(specs) {
		t.Fatalf("got %d items, want %d", len(items), len(specs))
	}
	for i, spec := range specs[:3] {
		if items[i].Err != "" {
			t.Fatalf("item %d: %s", i, items[i].Err)
		}
		local, err := wire.ExecuteSpec(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if items[i].Stats.TotalBits != local.Stats.TotalBits {
			t.Fatalf("item %d: TotalBits %d != local %d", i, items[i].Stats.TotalBits, local.Stats.TotalBits)
		}
		if items[i].Outcome != local.Outcome {
			t.Fatalf("item %d: outcome %+v != local %+v", i, items[i].Outcome, local.Outcome)
		}
	}
	if items[3].Err == "" || !strings.Contains(items[3].Err, "unknown protocol") {
		t.Fatalf("bogus spec not reported: %+v", items[3])
	}
}

// TestHealthz checks liveness, the advertised wire version, and the
// protocol registry listing.
func TestHealthz(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.WireVersion != wire.Version {
		t.Fatalf("unexpected health: %+v", h)
	}
	if len(h.Protocols) < 6 {
		t.Fatalf("registry advertises only %v", h.Protocols)
	}
}

// TestRunJSONResponse checks the Accept: application/json form of
// /v1/run: a ReportJSON with stats, outcome, resilience, and digest but
// no transcript — the same shape sketchlab -json emits.
func TestRunJSONResponse(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	spec := wire.SmokeSpecs(1)[7] // faulted mis-tworound
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(wire.EncodeRunSpec(spec)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var j wire.ReportJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	local, err := wire.ExecuteSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.Digest != local.Digest() {
		t.Fatalf("digest %s != local %s", j.Digest, local.Digest())
	}
	if j.Resilience != local.Stats.Faults.Resilience.String() {
		t.Fatalf("resilience %q != local %q", j.Resilience, local.Stats.Faults.Resilience)
	}
	if len(j.Transcript) != 0 {
		t.Fatal("JSON response should omit the transcript")
	}
}

// TestCacheHitServesIdenticalBytes runs the same spec twice against a
// caching daemon (under two labels and worker counts, the two
// result-neutral fields) and checks that the second response is served
// from the cache yet byte-identical in every result-bearing way.
func TestCacheHitServesIdenticalBytes(t *testing.T) {
	ts, c := newTestServer(t, server.Config{CacheBytes: 1 << 20})
	spec := wire.SmokeSpecs(1)[3] // mm-tworound
	first, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	respec := spec
	respec.Label = "same-run-different-name"
	respec.Workers = 8
	second, err := c.Run(context.Background(), respec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Digest() != first.Digest() {
		t.Fatal("cached transcript digest drifted")
	}
	if !bytes.Equal(wire.EncodeTranscript(second.Transcript), wire.EncodeTranscript(first.Transcript)) {
		t.Fatal("cached transcript bytes drifted")
	}
	if second.Spec.Label != respec.Label {
		t.Fatalf("cached response echoes label %q, want the request's %q", second.Spec.Label, respec.Label)
	}
	if second.Stats.TotalBits != first.Stats.TotalBits || second.Outcome != first.Outcome {
		t.Fatal("cached stats/outcome drifted")
	}
	stats := fetchStats(t, ts.URL)
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 || stats.Cache.Entries != 1 {
		t.Fatalf("cache counters %+v, want 1 hit / 1 miss / 1 entry", stats.Cache)
	}
}

// TestBatchUsesCache checks both directions of batch memoization: a
// /v1/run-populated full entry answers a batch item, and a batch-run
// summary is itself cached for the next batch.
func TestBatchUsesCache(t *testing.T) {
	ts, c := newTestServer(t, server.Config{CacheBytes: 1 << 20})
	specs := wire.SmokeSpecs(1)[:4]
	if _, err := c.Run(context.Background(), specs[0]); err != nil {
		t.Fatal(err)
	}
	want := make([]wire.BatchItem, len(specs))
	for i, spec := range specs {
		local, err := wire.ExecuteSpec(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = wire.BatchItem{Label: spec.Label, Stats: local.Stats, Outcome: local.Outcome}
	}
	check := func(items []wire.BatchItem, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(specs) {
			t.Fatalf("%d items, want %d", len(items), len(specs))
		}
		for i := range items {
			if items[i].Err != "" {
				t.Fatalf("item %d: %s", i, items[i].Err)
			}
			if items[i].Label != want[i].Label ||
				items[i].Stats.TotalBits != want[i].Stats.TotalBits ||
				items[i].Outcome != want[i].Outcome {
				t.Fatalf("item %d drifted: %+v", i, items[i])
			}
		}
	}
	check(c.RunBatch(context.Background(), specs))
	st := fetchStats(t, ts.URL)
	if st.Cache.Hits != 1 { // the run-populated full entry
		t.Fatalf("first batch: %d hits, want 1 (from the /v1/run entry)", st.Cache.Hits)
	}
	check(c.RunBatch(context.Background(), specs))
	st = fetchStats(t, ts.URL)
	if st.Cache.Hits != 1+int64(len(specs)) {
		t.Fatalf("second batch: %d hits, want %d (every item cached)", st.Cache.Hits, 1+len(specs))
	}
}

func fetchStats(t *testing.T, base string) server.StatsInfo {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status %d", resp.StatusCode)
	}
	var info server.StatsInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestStatsDisabledCache checks the stats endpoint's shape when
// memoization is off, through both raw HTTP and the typed client.
func TestStatsDisabledCache(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	st := fetchStats(t, ts.URL)
	if st.Status != "ok" || st.Cache.Enabled {
		t.Fatalf("stats %+v, want ok with cache disabled", st)
	}
	cs, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Status != "ok" || cs.Cache.Enabled || cs.MaxConcurrent != st.MaxConcurrent {
		t.Fatalf("client stats %+v disagree with raw stats %+v", cs, st)
	}
}

// TestQueueTimeoutSheds429WithRetryAfter saturates a one-slot daemon
// with a deliberately slow run (full-probability stragglers at 10ms per
// message, sequential, so ≥600ms), then checks a queued request is shed
// with 429 and a Retry-After hint instead of waiting forever.
func TestQueueTimeoutSheds429WithRetryAfter(t *testing.T) {
	ts, c := newTestServer(t, server.Config{MaxConcurrent: 1, QueueTimeout: 100 * time.Millisecond})
	slow := wire.SmokeSpecs(1)[0]
	slow.Workers = 1
	slow.Faults = wire.FaultSpec{Straggle: 1, DelayNS: int64(10 * time.Millisecond), Seed: 9}
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), slow)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the slow run claim the only slot
	resp, err := http.Post(ts.URL+"/v1/run", "application/octet-stream",
		bytes.NewReader(wire.EncodeRunSpec(wire.SmokeSpecs(1)[3])))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued request got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow run failed: %v", err)
	}
}

// and invalid specs are 400s (which the client must not retry), and
// wrong methods are rejected.
func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post("/v1/run", []byte("not a frame")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frame: status %d, want 400", resp.StatusCode)
	}
	bad := wire.SmokeSpecs(1)[0]
	bad.Workers = -3
	if resp := post("/v1/run", wire.EncodeRunSpec(bad)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/v1/batch", []byte{0xde, 0xad}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage batch: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestRequestTimeout checks that an execution exceeding the per-request
// budget comes back 504 — retryable, in case the daemon was merely
// oversubscribed.
func TestRequestTimeout(t *testing.T) {
	_, c := newTestServer(t, server.Config{Timeout: time.Nanosecond})
	_, err := c.Run(context.Background(), wire.SmokeSpecs(1)[0])
	if err == nil {
		t.Fatal("nanosecond budget should not finish a run")
	}
	if !strings.Contains(err.Error(), "504") && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("timeout surfaced as %v, want a 504", err)
	}
}

package matchproto

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/rng"
)

// SpecialFilter is the strongest fair candidate for D_MM instances under
// the paper's Remark 3.6: the referee is handed σ and j⋆ for free (so it
// knows exactly which 2rk vertex slots host the special matchings and
// which vertex pairs are potential special edges), players send random
// incident edges exactly as in EdgeSample, and the referee simply keeps
// every reported edge that belongs to some M^RS_{i,j⋆}.
//
// Its output is always a valid matching between unique vertices, so its
// success against the Remark 3.6(iv) goal (recover ≥ k·r/4 special edges)
// isolates precisely the quantity the lower bound controls: how many
// special-edge survival bits reach the referee per sketch bit. Theorem 1
// says no protocol — including this advice-assisted one — can win with
// o(r) bits per player.
type SpecialFilter struct {
	// Instance supplies the referee advice (σ, j⋆). Players never touch
	// it: Sketch is budget-driven only.
	Instance *harddist.Instance
	// EdgesPerVertex is the per-player report budget.
	EdgesPerVertex int
}

var _ core.Protocol[[]graph.Edge] = (*SpecialFilter)(nil)

// Name implements core.Protocol.
func (p *SpecialFilter) Name() string {
	return fmt.Sprintf("special-filter-%d", p.EdgesPerVertex)
}

// Sketch implements core.Protocol. Identical to EdgeSample: the advice is
// referee-side only.
func (p *SpecialFilter) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	return sampleSketch(view, p.EdgesPerVertex, coins), nil
}

// Decode implements core.Protocol: keep reported edges that are special
// slots of some copy.
func (p *SpecialFilter) Decode(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) ([]graph.Edge, error) {
	reported, err := readSampledEdges(n, sketches)
	if err != nil {
		return nil, err
	}
	special := make(map[graph.Edge]bool)
	for i := 0; i < p.Instance.Params.K; i++ {
		for _, e := range p.Instance.SpecialMatchingFull(i) {
			special[e] = true
		}
	}
	var out []graph.Edge
	for _, e := range reported {
		if special[e] {
			out = append(out, e)
		}
	}
	return out, nil
}

// RecoveredSpecialGoal returns the Remark 3.6(iv) success verifier for an
// instance: the output must be a set of true surviving special edges of
// size at least k·r/4. It is the success predicate for experiments E5/E7.
func RecoveredSpecialGoal(inst *harddist.Instance) func([]graph.Edge) bool {
	threshold := inst.Claim31Threshold()
	special := make(map[graph.Edge]bool)
	for i := 0; i < inst.Params.K; i++ {
		for _, e := range inst.SpecialMatchingSurvived(i) {
			special[e] = true
		}
	}
	return func(out []graph.Edge) bool {
		if !graph.IsVertexDisjoint(out) {
			return false
		}
		count := 0
		for _, e := range out {
			if !special[e] {
				return false // phantom or non-special edge
			}
			count++
		}
		return float64(count) >= threshold
	}
}

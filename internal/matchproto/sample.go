// Package matchproto collects maximal-matching protocols for the
// distributed sketching model: the candidates whose failure the paper's
// Theorem 1 predicts at sub-√n sketch sizes, the trivial Θ(n)-bit
// protocol that succeeds, and the two-round adaptive O(√n·polylog n)
// protocol the paper cites as sitting just above the one-round lower
// bound.
package matchproto

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// sampleSketch writes up to `budget` uniformly-sampled distinct neighbors
// of the view, preceded by their count. Sampling coins are private to the
// conceptual player but derived deterministically from the public coins
// and the vertex ID so runs are reproducible.
func sampleSketch(view core.VertexView, budget int, coins *rng.PublicCoins) *bitio.Writer {
	w := bitio.NewPooledWriter()
	idWidth := bitio.UintWidth(view.N)
	k := budget
	if k > view.Degree() {
		k = view.Degree()
	}
	if k < 0 {
		k = 0
	}
	w.WriteUvarint(uint64(k))
	src := coins.Derive("edge-sample").DeriveIndex(view.ID).Source()
	perm := src.Perm(view.Degree())
	for i := 0; i < k; i++ {
		w.WriteUint(uint64(view.Neighbors[perm[i]]), idWidth)
	}
	return w
}

// readSampledEdges reconstructs the reported edge set: edge {u,v} is known
// to the referee if either endpoint reported it.
func readSampledEdges(n int, sketches []*bitio.Reader) ([]graph.Edge, error) {
	idWidth := bitio.UintWidth(n)
	seen := make(map[graph.Edge]bool)
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		k, err := sketches[v].ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("matchproto: sketch %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := sketches[v].ReadUint(idWidth)
			if err != nil {
				return nil, fmt.Errorf("matchproto: sketch %d: %w", v, err)
			}
			if int(u) == v || int(u) >= n {
				return nil, fmt.Errorf("matchproto: sketch %d reports invalid neighbor %d", v, u)
			}
			e := graph.NewEdge(v, int(u))
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	return edges, nil
}

// readSampledEdgesTolerant is readSampledEdges with per-vertex damage
// tolerance for faulted transcripts: a sketch that is empty, truncated,
// or reports invalid neighbors contributes what it can and is counted in
// badVertices instead of failing the whole decode. On an undamaged
// transcript it returns exactly readSampledEdges' result with
// badVertices == 0 — players always write at least the count bit and
// never an invalid neighbor — so clean runs are unaffected.
func readSampledEdgesTolerant(n int, sketches []*bitio.Reader) (edges []graph.Edge, badVertices int) {
	idWidth := bitio.UintWidth(n)
	seen := make(map[graph.Edge]bool)
	for v := 0; v < n; v++ {
		r := sketches[v]
		bad := false
		if r == nil || r.Remaining() == 0 {
			badVertices++
			continue
		}
		k, err := r.ReadUvarint()
		if err != nil {
			badVertices++
			continue
		}
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				bad = true
				break
			}
			if int(u) == v || int(u) >= n {
				bad = true
				continue
			}
			e := graph.NewEdge(v, int(u))
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
		if r.Remaining() != 0 {
			bad = true // longer than its own count declared
		}
		if bad {
			badVertices++
		}
	}
	return edges, badVertices
}

// EdgeSample is the bounded-budget candidate protocol: every vertex
// reports EdgesPerVertex random incident edges and the referee outputs a
// greedy maximal matching of the reported subgraph. Its output is always
// a matching of G, but it stops being maximal once the budget is too
// small to surface all of G's structure — exactly the failure mode
// Theorem 1 forces on D_MM for any budget below ~r bits.
type EdgeSample struct {
	// EdgesPerVertex is the per-player report budget in edges; the bit
	// cost is EdgesPerVertex·ceil(log2 n) + O(log) for the count.
	EdgesPerVertex int
}

var _ core.Protocol[[]graph.Edge] = (*EdgeSample)(nil)

// Name implements core.Protocol.
func (p *EdgeSample) Name() string {
	return fmt.Sprintf("edge-sample-%d", p.EdgesPerVertex)
}

// Sketch implements core.Protocol.
func (p *EdgeSample) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	return sampleSketch(view, p.EdgesPerVertex, coins), nil
}

// Decode implements core.Protocol.
func (p *EdgeSample) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) ([]graph.Edge, error) {
	edges, err := readSampledEdges(n, sketches)
	if err != nil {
		return nil, err
	}
	order := coins.Derive("referee-order").Source().Perm(len(edges))
	shuffled := make([]graph.Edge, len(edges))
	for i, j := range order {
		shuffled[i] = edges[j]
	}
	return graph.GreedyMaximalMatchingEdgeOrder(n, shuffled), nil
}

package matchproto

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Prefix is the deterministic bounded-budget candidate: every vertex
// sends the first Bits entries of its adjacency-bitmap row. The referee
// learns edge {u,v} iff u < Bits or v < Bits (one endpoint's row covers
// the other's column), reconstructs that partial graph, and outputs a
// greedy maximal matching of it. Edges entirely inside the unseen suffix
// make the output non-maximal, so success decays as Bits shrinks — a
// deterministic companion to EdgeSample in the Theorem 1 sweeps.
type Prefix struct {
	// Bits is the per-player budget; each player sends min(Bits, n) bits.
	Bits int
}

var _ core.Protocol[[]graph.Edge] = (*Prefix)(nil)

// Name implements core.Protocol.
func (p *Prefix) Name() string { return fmt.Sprintf("prefix-%d", p.Bits) }

// Sketch implements core.Protocol.
func (p *Prefix) Sketch(view core.VertexView, _ *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	cols := p.Bits
	if cols > view.N {
		cols = view.N
	}
	next := 0
	for u := 0; u < cols; u++ {
		for next < len(view.Neighbors) && view.Neighbors[next] < u {
			next++
		}
		w.WriteBit(next < len(view.Neighbors) && view.Neighbors[next] == u)
	}
	return w, nil
}

// Decode implements core.Protocol.
func (p *Prefix) Decode(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) ([]graph.Edge, error) {
	cols := p.Bits
	if cols > n {
		cols = n
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for u := 0; u < cols; u++ {
			bit, err := sketches[v].ReadBit()
			if err != nil {
				return nil, fmt.Errorf("matchproto: prefix sketch %d: %w", v, err)
			}
			if bit && u != v {
				b.AddEdge(v, u)
			}
		}
	}
	return graph.GreedyMaximalMatching(b.Build(), nil), nil
}

package matchproto

import (
	"testing"

	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

func TestEdgeSampleOutputIsAlwaysAMatching(t *testing.T) {
	coins := rng.NewPublicCoins(1)
	src := rng.NewSource(2)
	for _, budget := range []int{0, 1, 3, 100} {
		p := &EdgeSample{EdgesPerVertex: budget}
		for trial := 0; trial < 10; trial++ {
			g := gen.Gnp(30, 0.2, src)
			res, err := core.Run[[]graph.Edge](p, g, coins.DeriveIndex(trial*10+budget))
			if err != nil {
				t.Fatal(err)
			}
			if !graph.IsMatching(g, res.Output) {
				t.Fatalf("budget %d: output not a matching of G", budget)
			}
		}
	}
}

func TestEdgeSampleFullBudgetIsMaximal(t *testing.T) {
	coins := rng.NewPublicCoins(3)
	src := rng.NewSource(4)
	p := &EdgeSample{EdgesPerVertex: 1 << 20}
	for trial := 0; trial < 10; trial++ {
		g := gen.Gnp(30, 0.3, src)
		res, err := core.Run[[]graph.Edge](p, g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsMaximalMatching(g, res.Output) {
			t.Fatal("full-budget edge sample not maximal")
		}
	}
}

func TestEdgeSampleZeroBudgetEmptyOutput(t *testing.T) {
	g := gen.Complete(10)
	res, err := core.Run[[]graph.Edge](&EdgeSample{}, g, rng.NewPublicCoins(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Errorf("zero budget produced %d edges", len(res.Output))
	}
	if graph.IsMaximalMatching(g, res.Output) {
		t.Error("empty matching reported maximal on K10")
	}
}

func TestEdgeSampleSketchBitsScaleWithBudget(t *testing.T) {
	g := gen.Complete(64)
	coins := rng.NewPublicCoins(6)
	small, err := core.Run[[]graph.Edge](&EdgeSample{EdgesPerVertex: 2}, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	big, err := core.Run[[]graph.Edge](&EdgeSample{EdgesPerVertex: 20}, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if big.MaxSketchBits <= small.MaxSketchBits {
		t.Errorf("bits did not grow with budget: %d vs %d", small.MaxSketchBits, big.MaxSketchBits)
	}
	// 2 neighbors of 6 bits each plus a count: well under 32 bits.
	if small.MaxSketchBits > 32 {
		t.Errorf("budget-2 sketch unexpectedly large: %d bits", small.MaxSketchBits)
	}
}

func TestPrefixDeterministicAndPartial(t *testing.T) {
	g := gen.Path(10)
	coins := rng.NewPublicCoins(7)
	full, err := core.Run[[]graph.Edge](&Prefix{Bits: 10}, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalMatching(g, full.Output) {
		t.Error("full prefix not maximal")
	}
	// Prefix of 0 bits sees nothing.
	empty, err := core.Run[[]graph.Edge](&Prefix{Bits: 0}, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Output) != 0 {
		t.Error("zero-bit prefix produced edges")
	}
	// Intermediate prefix: a matching of G, maybe not maximal.
	half, err := core.Run[[]graph.Edge](&Prefix{Bits: 5}, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMatching(g, half.Output) {
		t.Error("half prefix output not a matching")
	}
}

func TestPrefixSeesEdgeIfEitherEndpointCovered(t *testing.T) {
	// Edge {1, 9}: with Bits=2, vertex 9's row covers column 1, so the
	// referee learns the edge even though vertex 1's row misses column 9.
	g := graph.FromEdges(10, []graph.Edge{{U: 1, V: 9}})
	res, err := core.Run[[]graph.Edge](&Prefix{Bits: 2}, g, rng.NewPublicCoins(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != (graph.Edge{U: 1, V: 9}) {
		t.Errorf("output = %v, want the single edge", res.Output)
	}
}

func sampleInstance(t testing.TB, m, k int, seed uint64) *harddist.Instance {
	t.Helper()
	rs, err := rsgraph.BuildBehrend(m)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := harddist.Sample(harddist.Params{RS: rs, K: k, DropProb: 0.5}, rng.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSpecialFilterHighBudgetSucceeds(t *testing.T) {
	inst := sampleInstance(t, 12, 12, 9)
	p := &SpecialFilter{Instance: inst, EdgesPerVertex: 1 << 20}
	res, err := core.Run[[]graph.Edge](p, inst.G, rng.NewPublicCoins(10))
	if err != nil {
		t.Fatal(err)
	}
	verify := RecoveredSpecialGoal(inst)
	if !verify(res.Output) {
		t.Errorf("full-budget special filter failed: %d edges recovered, threshold %.1f",
			len(res.Output), inst.Claim31Threshold())
	}
	if len(res.Output) != inst.SurvivedSpecialCount() {
		t.Errorf("recovered %d special edges, survived %d", len(res.Output), inst.SurvivedSpecialCount())
	}
}

func TestSpecialFilterLowBudgetFails(t *testing.T) {
	// The budget must be well below r for the failure regime: at m=60 the
	// AP-free set has 16 elements, so unique vertices have ~8 surviving
	// incident edges and a 1-edge report surfaces each special edge with
	// probability ≈ 1-(1-1/8)^2 ≈ 0.23 < 1/2, below the k·r/4 threshold.
	inst := sampleInstance(t, 60, 8, 11)
	if inst.Params.RS.R() < 12 {
		t.Fatalf("test premise broken: r = %d too small", inst.Params.RS.R())
	}
	p := &SpecialFilter{Instance: inst, EdgesPerVertex: 1}
	res, err := core.Run[[]graph.Edge](p, inst.G, rng.NewPublicCoins(12))
	if err != nil {
		t.Fatal(err)
	}
	if RecoveredSpecialGoal(inst)(res.Output) {
		t.Error("1-edge budget met the k·r/4 goal; the hard distribution is not hard")
	}
}

func TestSpecialFilterOutputsOnlyTrueSpecialEdges(t *testing.T) {
	inst := sampleInstance(t, 10, 6, 13)
	p := &SpecialFilter{Instance: inst, EdgesPerVertex: 5}
	res, err := core.Run[[]graph.Edge](p, inst.G, rng.NewPublicCoins(14))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsVertexDisjoint(res.Output) {
		t.Error("special filter output not vertex disjoint")
	}
	for _, e := range res.Output {
		if !inst.G.HasEdge(e.U, e.V) {
			t.Errorf("output contains non-edge %v", e)
		}
	}
}

func TestRecoveredSpecialGoalRejectsPhantoms(t *testing.T) {
	inst := sampleInstance(t, 10, 6, 15)
	verify := RecoveredSpecialGoal(inst)
	// A non-surviving special pair is a phantom.
	var phantom *graph.Edge
	for i := 0; i < inst.Params.K && phantom == nil; i++ {
		survived := make(map[graph.Edge]bool)
		for _, e := range inst.SpecialMatchingSurvived(i) {
			survived[e] = true
		}
		for _, e := range inst.SpecialMatchingFull(i) {
			if !survived[e] {
				ec := e
				phantom = &ec
				break
			}
		}
	}
	if phantom == nil {
		t.Skip("all special edges survived; reseed")
	}
	if verify([]graph.Edge{*phantom}) {
		t.Error("phantom edge accepted")
	}
}

func TestTwoRoundMaximalOnRandomGraphs(t *testing.T) {
	src := rng.NewSource(16)
	coins := rng.NewPublicCoins(17)
	p := NewTwoRound()
	successes := 0
	const trials = 15
	for i := 0; i < trials; i++ {
		g := gen.Gnp(80, 0.15, src)
		res, err := cclique.Run[[]graph.Edge](p, g, coins.DeriveIndex(i))
		if err != nil {
			t.Fatal(err)
		}
		if graph.IsMaximalMatching(g, res.Output) {
			successes++
		}
	}
	if successes < trials*9/10 {
		t.Errorf("two-round MM maximal in %d/%d trials", successes, trials)
	}
}

func TestTwoRoundMessageSizeSublinear(t *testing.T) {
	g := gen.Gnp(400, 0.3, rng.NewSource(18))
	res, err := cclique.Run[[]graph.Edge](NewTwoRound(), g, rng.NewPublicCoins(19))
	if err != nil {
		t.Fatal(err)
	}
	// Max degree ~120, full neighborhood would be ~120·9 > 1000 bits;
	// two-round must stay well below the n-bit trivial sketch.
	if res.MaxMessageBits >= g.N() {
		t.Errorf("two-round message %d bits >= n = %d", res.MaxMessageBits, g.N())
	}
	if len(res.RoundMaxBits) != 2 {
		t.Fatalf("expected 2 rounds, got %d", len(res.RoundMaxBits))
	}
}

func TestTwoRoundAlwaysOutputsMatching(t *testing.T) {
	src := rng.NewSource(20)
	coins := rng.NewPublicCoins(21)
	for i := 0; i < 10; i++ {
		g := gen.Gnp(50, 0.4, src)
		res, err := cclique.Run[[]graph.Edge](NewTwoRound(), g, coins.DeriveIndex(i))
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsMatching(g, res.Output) {
			t.Fatal("two-round output not a matching")
		}
	}
}

func BenchmarkEdgeSampleN200(b *testing.B) {
	g := gen.Gnp(200, 0.1, rng.NewSource(1))
	p := &EdgeSample{EdgesPerVertex: 10}
	coins := rng.NewPublicCoins(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run[[]graph.Edge](p, g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoRoundN200(b *testing.B) {
	g := gen.Gnp(200, 0.1, rng.NewSource(3))
	coins := rng.NewPublicCoins(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cclique.Run[[]graph.Edge](NewTwoRound(), g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

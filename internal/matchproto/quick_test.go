package matchproto

import (
	"testing"
	"testing/quick"

	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Property: EdgeSample's output is a matching of G for every graph,
// budget and coin seed — the protocol may be non-maximal but never
// invalid.
func TestEdgeSampleAlwaysMatchingQuick(t *testing.T) {
	f := func(seed uint64, nSeed, budgetSeed uint8, p8 uint8) bool {
		src := rng.NewSource(seed)
		n := 2 + int(nSeed%40)
		p := float64(p8%100) / 100
		g := gen.Gnp(n, p, src)
		budget := int(budgetSeed % 20)
		proto := &EdgeSample{EdgesPerVertex: budget}
		res, err := core.Run[[]graph.Edge](proto, g, rng.NewPublicCoins(seed^0xabc))
		if err != nil {
			return false
		}
		return graph.IsMatching(g, res.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Prefix output is a matching and its sketch is exactly
// min(Bits, n) bits per player.
func TestPrefixCostExactQuick(t *testing.T) {
	f := func(seed uint64, nSeed, bitsSeed uint8) bool {
		src := rng.NewSource(seed)
		n := 2 + int(nSeed%30)
		g := gen.Gnp(n, 0.3, src)
		bits := int(bitsSeed % 40)
		proto := &Prefix{Bits: bits}
		res, err := core.Run[[]graph.Edge](proto, g, rng.NewPublicCoins(seed))
		if err != nil {
			return false
		}
		want := bits
		if want > n {
			want = n
		}
		return graph.IsMatching(g, res.Output) && res.MaxSketchBits == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the two-round protocol's output is a matching of G (it may
// rarely miss maximality under caps, never validity).
func TestTwoRoundAlwaysMatchingQuick(t *testing.T) {
	f := func(seed uint64, nSeed uint8) bool {
		src := rng.NewSource(seed)
		n := 4 + int(nSeed%40)
		g := gen.Gnp(n, 0.3, src)
		res, err := cclique.Run[[]graph.Edge](NewTwoRound(), g, rng.NewPublicCoins(seed^0x9))
		if err != nil {
			return false
		}
		return graph.IsMatching(g, res.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: greedy matchings are 1/2-approximate — combined with the
// blossom optimum this pins both reference implementations against each
// other.
func TestGreedyHalfApproxQuick(t *testing.T) {
	f := func(seed uint64, nSeed uint8) bool {
		src := rng.NewSource(seed)
		n := 4 + int(nSeed%25)
		g := gen.Gnp(n, 0.3, src)
		greedy := graph.GreedyMaximalMatching(g, src.Perm(n))
		opt := graph.MaximumMatchingSize(g)
		return 2*len(greedy) >= opt && len(greedy) <= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

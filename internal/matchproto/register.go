package matchproto

// Wire registration: the two-round maximal-matching protocol (the upper
// bound side of the paper's MM story) self-registers for wire execution.

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/protocol"
)

func init() {
	protocol.Register("mm-tworound", func(g *graph.Graph) engine.Protocol[protocol.Outcome] {
		return protocol.Adapt[[]graph.Edge](NewTwoRound(), protocol.EdgesOutcome(g, graph.IsMaximalMatching))
	})
}

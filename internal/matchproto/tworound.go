package matchproto

import (
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TwoRound is the adaptive O(√n·polylog n) maximal matching protocol the
// paper credits to the filtering technique of Lattanzi et al. [46]
// (Section 1.1: "if one allows only one extra round of sketching, then
// both problems admit adaptive sketches of size O(n^{1/2})").
//
// Round 1: every vertex broadcasts ~√n random incident edges. The referee
// computes the greedy matching M₁ of the round-1 graph and broadcasts it
// back as its feedback message (engine.Adaptive) — the adaptive model's
// downlink, which replaces every party privately re-deriving M₁ from the
// full transcript.
// Round 2: every vertex still unmatched under the fed-back M₁ broadcasts
// its edges to other unmatched vertices (capped at Cap). The referee
// augments M₁ greedily with the round-2 edges. Filtering makes the
// residual graph sparse, so round-2 messages stay near √n as well; the
// cap is a safety valve whose violations surface as (measured) failures,
// never as silent wrong answers beyond non-maximality.
//
// The struct is stateless: the shared round-1 derivation that used to be
// a mutex-guarded memo now travels through the transcript's sealed
// feedback lane, computed once, single-threaded, at the round barrier.
type TwoRound struct {
	// SamplesPerVertex is the round-1 budget in edges; 0 selects ⌈√n⌉.
	SamplesPerVertex int
	// Cap bounds round-2 reports in edges; 0 selects ⌈4·√n·log2(n+1)⌉.
	Cap int
}

var (
	_ cclique.Protocol[[]graph.Edge] = (*TwoRound)(nil)
	_ engine.Adaptive                = (*TwoRound)(nil)
)

// NewTwoRound returns the protocol with default budgets.
func NewTwoRound() *TwoRound { return &TwoRound{} }

// Name implements cclique.Protocol.
func (p *TwoRound) Name() string { return "two-round-filtering-mm" }

// Rounds implements cclique.Protocol.
func (p *TwoRound) Rounds() int { return 2 }

func (p *TwoRound) samples(n int) int {
	if p.SamplesPerVertex > 0 {
		return p.SamplesPerVertex
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

func (p *TwoRound) capEdges(n int) int {
	if p.Cap > 0 {
		return p.Cap
	}
	return int(math.Ceil(4 * math.Sqrt(float64(n)) * math.Log2(float64(n)+1)))
}

// round1Matching computes the canonical greedy matching of the round-1
// broadcasts — the referee-side derivation behind the feedback message.
// Parsing is tolerant so that a faulted round-1 transcript (dropped or
// corrupted sketches) never aborts the run: damaged sketches contribute
// what they can and are counted in r1bad, which DecodeResilient folds
// into its verdict. On clean transcripts tolerance changes nothing.
func (p *TwoRound) round1Matching(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, int) {
	sketches := make([]*bitio.Reader, n)
	for v := 0; v < n; v++ {
		sketches[v] = transcript.Message(0, v)
	}
	edges, r1bad := readSampledEdgesTolerant(n, sketches)
	order := coins.Derive("2r-order").Source().Perm(len(edges))
	shuffled := make([]graph.Edge, len(edges))
	for i, j := range order {
		shuffled[i] = edges[j]
	}
	return graph.GreedyMaximalMatchingEdgeOrder(n, shuffled), r1bad
}

// Feedback implements engine.Adaptive: after round 1 seals, the referee
// broadcasts M₁ as an edge list (count, then both endpoints at id width,
// in greedy order). After the final round the referee is silent.
func (p *TwoRound) Feedback(round int, transcript *cclique.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if round != 0 {
		return nil, nil
	}
	n := transcript.Players(0)
	m1, _ := p.round1Matching(n, transcript, coins)
	w := bitio.NewPooledWriter()
	idWidth := bitio.UintWidth(n)
	w.WriteUvarint(uint64(len(m1)))
	for _, e := range m1 {
		w.WriteUint(uint64(e.U), idWidth)
		w.WriteUint(uint64(e.V), idWidth)
	}
	return w, nil
}

// edgeListsEqual reports element-wise equality of two edge lists.
func edgeListsEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readMatchingFeedback parses the round-1 feedback broadcast back into
// the fed-back edge list and the matched-vertex mask every party derives
// from it. Parsing is tolerant (truncation stops, out-of-range entries
// are skipped) so that a faulted feedback message degrades the run
// instead of aborting it; ok reports whether every declared entry parsed
// cleanly. On the referee's own clean feedback the edges round-trip
// exactly.
func readMatchingFeedback(n int, r *bitio.Reader) (edges []graph.Edge, matched []bool, ok bool) {
	matched = make([]bool, n)
	ok = true
	if r == nil {
		return nil, matched, false
	}
	k, err := r.ReadUvarint()
	if err != nil {
		return nil, matched, false
	}
	idWidth := bitio.UintWidth(n)
	for i := uint64(0); i < k; i++ {
		u, err := r.ReadUint(idWidth)
		if err != nil {
			return edges, matched, false
		}
		v, err := r.ReadUint(idWidth)
		if err != nil {
			return edges, matched, false
		}
		if int(u) >= n || int(v) >= n || u == v {
			ok = false
			continue
		}
		edges = append(edges, graph.NewEdge(int(u), int(v)))
		matched[u] = true
		matched[v] = true
	}
	if r.Remaining() != 0 {
		ok = false
	}
	return edges, matched, ok
}

// Broadcast implements cclique.Protocol. Round-2 players read M₁ from
// the referee's sealed feedback (Transcript.Feedback) rather than
// re-deriving it from the full round-1 transcript.
func (p *TwoRound) Broadcast(round int, view core.VertexView, transcript *cclique.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	switch round {
	case 0:
		return sampleSketch(view, p.samples(view.N), coins), nil
	case 1:
		_, matched, _ := readMatchingFeedback(view.N, transcript.Feedback(0))
		w := bitio.NewPooledWriter()
		if matched[view.ID] {
			w.WriteUvarint(0)
			return w, nil
		}
		var residual []int
		for _, u := range view.Neighbors {
			if !matched[u] {
				residual = append(residual, u)
			}
		}
		capEdges := p.capEdges(view.N)
		if len(residual) > capEdges {
			// Safety valve: report a random subset. May cost maximality;
			// the experiment counts that as a failure.
			src := coins.Derive("2r-cap").DeriveIndex(view.ID).Source()
			src.Shuffle(len(residual), func(i, j int) { residual[i], residual[j] = residual[j], residual[i] })
			residual = residual[:capEdges]
		}
		idWidth := bitio.UintWidth(view.N)
		w.WriteUvarint(uint64(len(residual)))
		for _, u := range residual {
			w.WriteUint(uint64(u), idWidth)
		}
		return w, nil
	default:
		return nil, fmt.Errorf("matchproto: unexpected round %d", round)
	}
}

// Decode implements cclique.Protocol. The referee interprets round-2
// reports against the M₁ it broadcast as feedback — the sealed feedback
// is what the players actually acted on, so decoding against it keeps
// referee and players consistent even over a damaged feedback channel.
func (p *TwoRound) Decode(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, error) {
	fed, matched, _ := readMatchingFeedback(n, transcript.Feedback(0))
	m1 := graph.GreedyMaximalMatchingEdgeOrder(n, fed)
	idWidth := bitio.UintWidth(n)
	var residualEdges []graph.Edge
	seen := make(map[graph.Edge]bool)
	for v := 0; v < n; v++ {
		r := transcript.Message(1, v)
		k, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("matchproto: round-2 message %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				return nil, fmt.Errorf("matchproto: round-2 message %d: %w", v, err)
			}
			if int(u) == v || int(u) >= n || matched[v] || matched[int(u)] {
				continue
			}
			e := graph.NewEdge(v, int(u))
			if !seen[e] {
				seen[e] = true
				residualEdges = append(residualEdges, e)
			}
		}
	}
	m2 := graph.GreedyMaximalMatchingEdgeOrder(n, residualEdges)
	return append(m1, m2...), nil
}

// DecodeResilient is Decode with graceful degradation over damaged
// transcripts, satisfying faults.ResilientProtocol. The referee augments
// M₁ with whatever round-2 material parses, and classifies the run:
//
//   - ok: every message of both rounds parsed cleanly, the feedback
//     matched the referee's own recomputation, and no residual list was
//     at the cap — the output carries the protocol's guarantee (a maximal
//     matching whenever the cap was not binding);
//   - degraded: some sketches were missing/garbled (skipped), the sealed
//     feedback diverged from the recomputed M₁ (a damaged downlink), or a
//     residual list hit the cap (possible truncation, so maximality may
//     be lost); the output is still a valid greedy matching of the
//     surviving reports;
//   - failed: more than half the vertices were damaged in either round.
//
// In-range bit flips that forge plausible neighbor IDs are undetectable
// from message contents alone; faults.Run's channel-record folding
// covers that case, so a faulted run is never reported ok end to end.
func (p *TwoRound) DecodeResilient(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, core.Resilience, error) {
	// Decode against the sealed feedback (what the players saw), but
	// recompute the true M₁ from round 1 to both count damaged sketches
	// and detect a perturbed downlink: the referee knows exactly what it
	// broadcast, so any divergence is detected damage.
	fed, matched, fbOK := readMatchingFeedback(n, transcript.Feedback(0))
	trueM1, r1bad := p.round1Matching(n, transcript, coins)
	fbDamaged := !fbOK || !edgeListsEqual(fed, trueM1)
	m1 := graph.GreedyMaximalMatchingEdgeOrder(n, fed)
	idWidth := bitio.UintWidth(n)
	capEdges := p.capEdges(n)
	r2bad, capHits := 0, 0
	var residualEdges []graph.Edge
	seen := make(map[graph.Edge]bool)
	for v := 0; v < n; v++ {
		r := transcript.Message(1, v)
		bad := false
		if r == nil || r.Remaining() == 0 {
			r2bad++
			continue
		}
		k, err := r.ReadUvarint()
		if err != nil {
			r2bad++
			continue
		}
		if matched[v] && k != 0 {
			bad = true // matched vertices broadcast an empty report
		}
		if int64(k) >= int64(capEdges) {
			capHits++ // at (or corrupted past) the cap: possible truncation
		}
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				bad = true
				break
			}
			if int(u) == v || int(u) >= n {
				bad = true
				continue
			}
			if matched[v] || matched[int(u)] {
				continue
			}
			e := graph.NewEdge(v, int(u))
			if !seen[e] {
				seen[e] = true
				residualEdges = append(residualEdges, e)
			}
		}
		if r.Remaining() != 0 {
			bad = true // longer than its own count declared
		}
		if bad {
			r2bad++
		}
	}
	m2 := graph.GreedyMaximalMatchingEdgeOrder(n, residualEdges)
	out := append(m1, m2...)
	switch {
	case 2*r1bad > n || 2*r2bad > n:
		return out, core.ResilienceFailed, nil
	case r1bad > 0 || r2bad > 0 || capHits > 0 || fbDamaged:
		return out, core.ResilienceDegraded, nil
	default:
		return out, core.ResilienceOK, nil
	}
}

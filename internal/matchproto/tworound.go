package matchproto

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TwoRound is the adaptive O(√n·polylog n) maximal matching protocol the
// paper credits to the filtering technique of Lattanzi et al. [46]
// (Section 1.1: "if one allows only one extra round of sketching, then
// both problems admit adaptive sketches of size O(n^{1/2})").
//
// Round 1: every vertex broadcasts ~√n random incident edges. All parties
// deterministically compute the greedy matching M₁ of the round-1 graph.
// Round 2: every vertex still unmatched broadcasts its edges to other
// unmatched vertices (capped at Cap). The referee augments M₁ greedily
// with the round-2 edges. Filtering makes the residual graph sparse, so
// round-2 messages stay near √n as well; the cap is a safety valve whose
// violations surface as (measured) failures, never as silent wrong
// answers beyond non-maximality.
type TwoRound struct {
	// SamplesPerVertex is the round-1 budget in edges; 0 selects ⌈√n⌉.
	SamplesPerVertex int
	// Cap bounds round-2 reports in edges; 0 selects ⌈4·√n·log2(n+1)⌉.
	Cap int

	// memo caches the shared round-1 matching for the current transcript:
	// every party computes the identical value, so the simulator derives
	// it once. The mutex makes the memo safe under the concurrent
	// execution engine; the cached value is a pure function of the
	// transcript and coins, so locking cannot change any bit.
	memo struct {
		sync.Mutex
		transcript *cclique.Transcript
		m1         []graph.Edge
		matched    []bool
		r1bad      int // round-1 vertices with damaged sketches
	}
}

var _ cclique.Protocol[[]graph.Edge] = (*TwoRound)(nil)

// NewTwoRound returns the protocol with default budgets.
func NewTwoRound() *TwoRound { return &TwoRound{} }

// Name implements cclique.Protocol.
func (p *TwoRound) Name() string { return "two-round-filtering-mm" }

// Rounds implements cclique.Protocol.
func (p *TwoRound) Rounds() int { return 2 }

func (p *TwoRound) samples(n int) int {
	if p.SamplesPerVertex > 0 {
		return p.SamplesPerVertex
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

func (p *TwoRound) capEdges(n int) int {
	if p.Cap > 0 {
		return p.Cap
	}
	return int(math.Ceil(4 * math.Sqrt(float64(n)) * math.Log2(float64(n)+1)))
}

// round1Matching reconstructs the canonical greedy matching of the
// round-1 broadcasts; every party computes the identical result. Parsing
// is tolerant so that a faulted round-1 transcript (dropped or corrupted
// sketches) never aborts the run: damaged sketches contribute what they
// can and are counted in the memoized r1bad, which DecodeResilient folds
// into its verdict. On clean transcripts tolerance changes nothing.
func (p *TwoRound) round1Matching(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, []bool, error) {
	m1, matched, _ := p.round1MatchingDamage(n, transcript, coins)
	return m1, matched, nil
}

func (p *TwoRound) round1MatchingDamage(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, []bool, int) {
	p.memo.Lock()
	defer p.memo.Unlock()
	if p.memo.transcript == transcript {
		return p.memo.m1, p.memo.matched, p.memo.r1bad
	}
	sketches := make([]*bitio.Reader, n)
	for v := 0; v < n; v++ {
		sketches[v] = transcript.Message(0, v)
	}
	edges, r1bad := readSampledEdgesTolerant(n, sketches)
	order := coins.Derive("2r-order").Source().Perm(len(edges))
	shuffled := make([]graph.Edge, len(edges))
	for i, j := range order {
		shuffled[i] = edges[j]
	}
	m1 := graph.GreedyMaximalMatchingEdgeOrder(n, shuffled)
	matched := make([]bool, n)
	for _, e := range m1 {
		matched[e.U] = true
		matched[e.V] = true
	}
	p.memo.transcript = transcript
	p.memo.m1, p.memo.matched, p.memo.r1bad = m1, matched, r1bad
	return m1, matched, r1bad
}

// Broadcast implements cclique.Protocol.
func (p *TwoRound) Broadcast(round int, view core.VertexView, transcript *cclique.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	switch round {
	case 0:
		return sampleSketch(view, p.samples(view.N), coins), nil
	case 1:
		_, matched, err := p.round1Matching(view.N, transcript, coins)
		if err != nil {
			return nil, err
		}
		w := bitio.NewPooledWriter()
		if matched[view.ID] {
			w.WriteUvarint(0)
			return w, nil
		}
		var residual []int
		for _, u := range view.Neighbors {
			if !matched[u] {
				residual = append(residual, u)
			}
		}
		capEdges := p.capEdges(view.N)
		if len(residual) > capEdges {
			// Safety valve: report a random subset. May cost maximality;
			// the experiment counts that as a failure.
			src := coins.Derive("2r-cap").DeriveIndex(view.ID).Source()
			src.Shuffle(len(residual), func(i, j int) { residual[i], residual[j] = residual[j], residual[i] })
			residual = residual[:capEdges]
		}
		idWidth := bitio.UintWidth(view.N)
		w.WriteUvarint(uint64(len(residual)))
		for _, u := range residual {
			w.WriteUint(uint64(u), idWidth)
		}
		return w, nil
	default:
		return nil, fmt.Errorf("matchproto: unexpected round %d", round)
	}
}

// Decode implements cclique.Protocol.
func (p *TwoRound) Decode(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, error) {
	m1, matched, err := p.round1Matching(n, transcript, coins)
	if err != nil {
		return nil, err
	}
	idWidth := bitio.UintWidth(n)
	var residualEdges []graph.Edge
	seen := make(map[graph.Edge]bool)
	for v := 0; v < n; v++ {
		r := transcript.Message(1, v)
		k, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("matchproto: round-2 message %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				return nil, fmt.Errorf("matchproto: round-2 message %d: %w", v, err)
			}
			if int(u) == v || int(u) >= n || matched[v] || matched[int(u)] {
				continue
			}
			e := graph.NewEdge(v, int(u))
			if !seen[e] {
				seen[e] = true
				residualEdges = append(residualEdges, e)
			}
		}
	}
	m2 := graph.GreedyMaximalMatchingEdgeOrder(n, residualEdges)
	return append(m1, m2...), nil
}

// DecodeResilient is Decode with graceful degradation over damaged
// transcripts, satisfying faults.ResilientProtocol. The referee augments
// M₁ with whatever round-2 material parses, and classifies the run:
//
//   - ok: every message of both rounds parsed cleanly and no residual
//     list was at the cap — the output carries the protocol's guarantee
//     (a maximal matching whenever the cap was not binding);
//   - degraded: some sketches were missing/garbled (skipped) or a
//     residual list hit the cap (possible truncation, so maximality may
//     be lost); the output is still a valid greedy matching of the
//     surviving reports;
//   - failed: more than half the vertices were damaged in either round.
//
// In-range bit flips that forge plausible neighbor IDs are undetectable
// from message contents alone; faults.Run's channel-record folding
// covers that case, so a faulted run is never reported ok end to end.
func (p *TwoRound) DecodeResilient(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, core.Resilience, error) {
	m1, matched, r1bad := p.round1MatchingDamage(n, transcript, coins)
	idWidth := bitio.UintWidth(n)
	capEdges := p.capEdges(n)
	r2bad, capHits := 0, 0
	var residualEdges []graph.Edge
	seen := make(map[graph.Edge]bool)
	for v := 0; v < n; v++ {
		r := transcript.Message(1, v)
		bad := false
		if r == nil || r.Remaining() == 0 {
			r2bad++
			continue
		}
		k, err := r.ReadUvarint()
		if err != nil {
			r2bad++
			continue
		}
		if matched[v] && k != 0 {
			bad = true // matched vertices broadcast an empty report
		}
		if int64(k) >= int64(capEdges) {
			capHits++ // at (or corrupted past) the cap: possible truncation
		}
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				bad = true
				break
			}
			if int(u) == v || int(u) >= n {
				bad = true
				continue
			}
			if matched[v] || matched[int(u)] {
				continue
			}
			e := graph.NewEdge(v, int(u))
			if !seen[e] {
				seen[e] = true
				residualEdges = append(residualEdges, e)
			}
		}
		if r.Remaining() != 0 {
			bad = true // longer than its own count declared
		}
		if bad {
			r2bad++
		}
	}
	m2 := graph.GreedyMaximalMatchingEdgeOrder(n, residualEdges)
	out := append(m1, m2...)
	switch {
	case 2*r1bad > n || 2*r2bad > n:
		return out, core.ResilienceFailed, nil
	case r1bad > 0 || r2bad > 0 || capHits > 0:
		return out, core.ResilienceDegraded, nil
	default:
		return out, core.ResilienceOK, nil
	}
}

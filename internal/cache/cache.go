// Package cache is a size-bounded, least-recently-used result cache for
// the referee service. Keys are content addresses — in the daemon they
// are canonical wire.RunSpec encodings, so two requests share an entry
// iff they describe bit-identical executions — and values are opaque
// byte slices (encoded result payloads).
//
// The determinism contract is what makes memoization correct here:
// a seed-only spec fully determines its transcript, so serving a stored
// result is indistinguishable from re-executing. The cache therefore
// needs no invalidation story at all — entries only ever leave under
// byte-budget pressure, oldest-use first.
//
// The implementation is a classic map + intrusive doubly-linked list
// under one mutex: O(1) Get/Put, and the per-entry accounting charges
// key and value bytes plus a fixed overhead so the configured budget
// approximates real memory, not just payload mass.
package cache

import "sync"

// entryOverhead approximates the per-entry bookkeeping cost (map slot,
// list node, headers) charged against the byte budget on top of the key
// and value lengths.
const entryOverhead = 64

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes over the cache's lifetime.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries removed under byte-budget pressure
	// (replacing an existing key is not an eviction).
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe current occupancy; Bytes includes the
	// per-entry overhead charge, so Bytes <= MaxBytes always holds.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// node is one entry in the intrusive LRU list. The list is circular
// with a sentinel root: root.next is the most recently used entry,
// root.prev the least.
type node struct {
	key        string
	val        []byte
	prev, next *node
}

// LRU is a thread-safe least-recently-used byte cache. The zero value
// is not usable; construct with New.
type LRU struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*node
	root    node // sentinel

	hits, misses, evictions int64
}

// New builds an LRU holding at most maxBytes of charged entry mass.
// maxBytes <= 0 yields a cache that stores nothing (every Put is a
// no-op, every Get a miss) — callers can keep one code path and treat
// "disabled" as a zero budget.
func New(maxBytes int64) *LRU {
	c := &LRU{max: maxBytes, entries: make(map[string]*node)}
	c.root.prev = &c.root
	c.root.next = &c.root
	return c
}

// cost is the byte-budget charge for one entry.
func cost(key string, val []byte) int64 {
	return int64(len(key)) + int64(len(val)) + entryOverhead
}

// unlink removes n from the use list.
func (c *LRU) unlink(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

// pushFront inserts n as the most recently used entry.
func (c *LRU) pushFront(n *node) {
	n.prev = &c.root
	n.next = c.root.next
	n.prev.next = n
	n.next.prev = n
}

// Get returns the value stored under key and marks it most recently
// used. The returned slice is the stored one — callers must not mutate
// it (the daemon only ever writes it to responses).
func (c *LRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.unlink(n)
	c.pushFront(n)
	return n.val, true
}

// Contains reports whether key is cached without touching recency or
// the hit/miss counters.
func (c *LRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put stores val under key as the most recently used entry, replacing
// any previous value, then evicts least-recently-used entries until the
// byte budget holds. A single entry larger than the whole budget is not
// stored at all.
func (c *LRU) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

// PutIfAbsent stores val under key only when the key is not already
// cached, and reports whether it stored. The daemon uses it to record
// batch summaries without ever downgrading a richer entry (one that
// also carries a transcript) stored under the same spec address.
func (c *LRU) PutIfAbsent(key string, val []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return false
	}
	c.putLocked(key, val)
	return true
}

func (c *LRU) putLocked(key string, val []byte) {
	charge := cost(key, val)
	if charge > c.max {
		return
	}
	if n, ok := c.entries[key]; ok {
		c.bytes += int64(len(val)) - int64(len(n.val))
		n.val = val
		c.unlink(n)
		c.pushFront(n)
	} else {
		n := &node{key: key, val: val}
		c.entries[key] = n
		c.pushFront(n)
		c.bytes += charge
	}
	for c.bytes > c.max {
		oldest := c.root.prev
		c.unlink(oldest)
		delete(c.entries, oldest.key)
		c.bytes -= cost(oldest.key, oldest.val)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.max,
	}
}

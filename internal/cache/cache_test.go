package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutRoundtrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", []byte("alpha"))
	got, ok := c.Get("a")
	if !ok || string(got) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	c.Put("a", []byte("alpha-2"))
	got, _ = c.Get("a")
	if string(got) != "alpha-2" {
		t.Fatalf("replacement not visible: %q", got)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 || s.Evictions != 0 {
		t.Fatalf("stats %+v, want 2 hits / 1 miss / 1 entry / 0 evictions", s)
	}
}

// TestEvictionOrderIsLRU fills the cache past its budget and checks
// that the least-recently-USED entry goes first — a Get must refresh
// recency, not just insertion order.
func TestEvictionOrderIsLRU(t *testing.T) {
	// Each entry charges 1 (key) + 10 (val) + overhead; budget fits 3.
	per := cost("k", make([]byte, 10))
	c := New(3 * per)
	val := make([]byte, 10)
	c.Put("a", val)
	c.Put("b", val)
	c.Put("c", val)
	c.Get("a") // refresh a: LRU order is now b, c, a
	c.Put("d", val)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%s should have survived", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats %+v, want 1 eviction / 3 entries", s)
	}
}

func TestBudgetHolds(t *testing.T) {
	c := New(1024)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("key-%03d", i), make([]byte, 64))
	}
	s := c.Stats()
	if s.Bytes > s.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d", s.Bytes, s.MaxBytes)
	}
	if s.Entries == 0 || s.Evictions == 0 {
		t.Fatalf("stats %+v, want occupancy and evictions", s)
	}
}

// TestOversizeEntryRejected checks that a value larger than the whole
// budget is dropped rather than wiping the cache to make room.
func TestOversizeEntryRejected(t *testing.T) {
	c := New(256)
	c.Put("small", []byte("x"))
	c.Put("huge", make([]byte, 1024))
	if c.Contains("huge") {
		t.Fatal("oversize entry should not be stored")
	}
	if !c.Contains("small") {
		t.Fatal("oversize Put must not evict existing entries")
	}
}

func TestPutIfAbsent(t *testing.T) {
	c := New(1 << 20)
	if !c.PutIfAbsent("a", []byte("first")) {
		t.Fatal("absent key should store")
	}
	if c.PutIfAbsent("a", []byte("second")) {
		t.Fatal("present key should not be replaced")
	}
	got, _ := c.Get("a")
	if string(got) != "first" {
		t.Fatalf("value %q, want the original", got)
	}
}

func TestZeroBudgetStoresNothing(t *testing.T) {
	c := New(0)
	c.Put("a", []byte("x"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-budget cache returned a hit")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty stats should report 0 hit rate")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("hit rate %g, want 0.75", got)
	}
}

// TestConcurrentAccess hammers the cache from many goroutines; run
// under -race this checks the locking discipline, and the final byte
// accounting must still respect the budget.
func TestConcurrentAccess(t *testing.T) {
	c := New(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%40)
				if i%3 == 0 {
					c.Put(k, make([]byte, 32))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes > s.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d after concurrent use", s.Bytes, s.MaxBytes)
	}
	if s.Hits+s.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

package l0

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/field"
	"repro/internal/rng"
)

// naiveUpdate replicates the pre-optimization Spec.Update: one full
// square-and-multiply fingerprint exponentiation per level, no window
// table, no hoisting. It is the reference the optimized hot path must
// match bit for bit.
func naiveUpdate(sp Spec, sk *Sketch, index uint64, delta int64) {
	lvl := sp.hash.Level(index, sp.levels-1)
	for l := 0; l <= lvl; l++ {
		w := elemFromSigned(delta)
		sk.cells[l].valSum = field.Add(sk.cells[l].valSum, w)
		sk.cells[l].idxSum = field.Add(sk.cells[l].idxSum, field.Mul(w, field.Reduce(index)))
		sk.cells[l].fpSum = field.Add(sk.cells[l].fpSum, field.Mul(w, field.Pow(sp.z, index+1)))
	}
}

// TestHoistedUpdateMatchesNaivePath: the hoisted, window-table update
// must serialize to exactly the bytes of the per-level naive
// exponentiation path, across many indices, deltas, and universes.
func TestHoistedUpdateMatchesNaivePath(t *testing.T) {
	for _, universe := range []uint64{8, 256, 1 << 12, 1 << 20} {
		sp := NewSpec(universe, rng.NewPublicCoins(universe))
		fast, naive := sp.NewSketch(), sp.NewSketch()
		src := rng.NewSource(universe ^ 0xabc)
		for i := 0; i < 500; i++ {
			idx := uint64(src.Intn(int(universe)))
			delta := int64(src.Intn(7)) - 3
			sp.Update(fast, idx, delta)
			naiveUpdate(sp, naive, idx, delta)
		}
		var wf, wn bitio.Writer
		fast.Write(&wf)
		naive.Write(&wn)
		if wf.Len() != wn.Len() {
			t.Fatalf("universe %d: %d bits vs naive %d", universe, wf.Len(), wn.Len())
		}
		fb, nb := wf.Bytes(), wn.Bytes()
		for i := range fb {
			if fb[i] != nb[i] {
				t.Fatalf("universe %d: sketch byte %d = %#x, naive path has %#x", universe, i, fb[i], nb[i])
			}
		}
		// Sampling must agree too (table-served recovery vs naive chain).
		fi, fv, fok := sp.Sample(fast)
		ni, nv, nok := sp.Sample(naive)
		if fi != ni || fv != nv || fok != nok {
			t.Fatalf("universe %d: Sample (%d,%d,%v) vs naive (%d,%d,%v)", universe, fi, fv, fok, ni, nv, nok)
		}
	}
}

// TestAcquireSketchZeroAndReuse: pooled sketches must come back all-zero
// and behave exactly like freshly allocated ones.
func TestAcquireSketchZeroAndReuse(t *testing.T) {
	sp := NewSpec(1024, rng.NewPublicCoins(3))
	sk := sp.AcquireSketch()
	if !sk.IsZero() || len(sk.cells) != sp.Levels() {
		t.Fatalf("acquired sketch: zero=%v levels=%d want %d", sk.IsZero(), len(sk.cells), sp.Levels())
	}
	sp.Update(sk, 77, 1)
	ReleaseSketch(sk)
	// Re-acquire (likely the same buffer) — must be zeroed again.
	sk2 := sp.AcquireSketch()
	if !sk2.IsZero() {
		t.Fatal("re-acquired sketch not zeroed")
	}
	sp.Update(sk2, 11, -2)
	fresh := sp.NewSketch()
	sp.Update(fresh, 11, -2)
	var wp, wf bitio.Writer
	sk2.Write(&wp)
	fresh.Write(&wf)
	if wp.Len() != wf.Len() {
		t.Fatalf("pooled sketch %d bits, fresh %d", wp.Len(), wf.Len())
	}
	pb, fb := wp.Bytes(), wf.Bytes()
	for i := range pb {
		if pb[i] != fb[i] {
			t.Fatalf("pooled sketch byte %d differs from fresh", i)
		}
	}
	ReleaseSketch(sk2)

	// A smaller-universe spec must get a correctly sized zero sketch even
	// when the pool holds a larger buffer.
	small := NewSpec(8, rng.NewPublicCoins(4))
	sk3 := small.AcquireSketch()
	if len(sk3.cells) != small.Levels() || !sk3.IsZero() {
		t.Fatalf("small acquire: levels=%d want %d zero=%v", len(sk3.cells), small.Levels(), sk3.IsZero())
	}
	ReleaseSketch(sk3)
}

// BenchmarkL0Update measures the sketch-construction hot path: one
// Spec.Update (level hash + hoisted windowed fingerprint power + per-
// level cell updates) over a 2^27-ish universe, the size an n=10k AGM
// run uses.
func BenchmarkL0Update(b *testing.B) {
	const universe = 10000 * 10000
	sp := NewSpec(universe, rng.NewPublicCoins(1))
	sk := sp.NewSketch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Update(sk, uint64(i)%universe, 1)
	}
}

// BenchmarkL0UpdateNaive is the pre-optimization reference: per-level
// naive exponentiation, for the EXPERIMENTS.md before/after table.
func BenchmarkL0UpdateNaive(b *testing.B) {
	const universe = 10000 * 10000
	sp := NewSpec(universe, rng.NewPublicCoins(1))
	sk := sp.NewSketch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveUpdate(sp, sk, uint64(i)%universe, 1)
	}
}

// BenchmarkL0Sample measures referee-side recovery over a mostly-filled
// sketch (cached inversion + table-served fingerprint check).
func BenchmarkL0Sample(b *testing.B) {
	sp := NewSpec(1<<20, rng.NewPublicCoins(2))
	sk := sp.NewSketch()
	src := rng.NewSource(3)
	for i := 0; i < 64; i++ {
		sp.Update(sk, uint64(src.Intn(1<<20)), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Sample(sk)
	}
}

package l0

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/field"
	"repro/internal/rng"
)

func testZ(seed uint64) field.Elem {
	z := field.Reduce(rng.NewSource(seed).Uint64())
	if z == 0 {
		z = 1
	}
	return z
}

// upd updates a cell with the naive fingerprint term z^{index+1} —
// OneSparse.Update takes the already-exponentiated term so that
// Spec.Update can hoist the exponentiation out of its per-level loop.
func upd(o *OneSparse, index uint64, delta int64, z field.Elem) {
	o.Update(index, delta, field.Pow(z, index+1))
}

func TestOneSparseExactRecovery(t *testing.T) {
	z := testZ(1)
	for _, c := range []struct {
		index uint64
		delta int64
	}{
		{0, 1}, {5, -1}, {1000, 7}, {0, -3}, {1 << 30, 1},
	} {
		var o OneSparse
		upd(&o, c.index, c.delta, z)
		idx, v, ok := o.Recover(1<<31, z)
		if !ok {
			t.Errorf("recovery failed for (%d,%d)", c.index, c.delta)
			continue
		}
		if idx != c.index || v != c.delta {
			t.Errorf("recovered (%d,%d), want (%d,%d)", idx, v, c.index, c.delta)
		}
	}
}

func TestOneSparseZeroVector(t *testing.T) {
	z := testZ(2)
	var o OneSparse
	if !o.IsZero() {
		t.Error("fresh cell not zero")
	}
	if _, _, ok := o.Recover(100, z); ok {
		t.Error("recovered from zero vector")
	}
	// Cancellation back to zero.
	upd(&o, 7, 3, z)
	upd(&o, 7, -3, z)
	if !o.IsZero() {
		t.Error("cancelled cell not zero")
	}
}

func TestOneSparseRejectsTwoSparse(t *testing.T) {
	z := testZ(3)
	rejected := 0
	const trials = 200
	src := rng.NewSource(4)
	for i := 0; i < trials; i++ {
		var o OneSparse
		a, b := uint64(src.Intn(1000)), uint64(src.Intn(1000))
		if a == b {
			continue
		}
		upd(&o, a, 1, z)
		upd(&o, b, 1, z)
		if _, _, ok := o.Recover(1000, z); !ok {
			rejected++
		}
	}
	if rejected < trials-5 {
		t.Errorf("two-sparse vectors accepted too often: %d/%d rejected", rejected, trials)
	}
}

func TestOneSparseMixedSignsCancelSum(t *testing.T) {
	// +1 and -1 at different indices: value sum is zero but the vector is
	// 2-sparse. Recovery must fail rather than divide by zero.
	z := testZ(5)
	var o OneSparse
	upd(&o, 3, 1, z)
	upd(&o, 9, -1, z)
	if _, _, ok := o.Recover(100, z); ok {
		t.Error("recovered from a ±1 pair with zero value sum")
	}
	if o.IsZero() {
		t.Error("nonzero vector reported zero")
	}
}

func TestOneSparseLinearity(t *testing.T) {
	z := testZ(6)
	var a, b OneSparse
	upd(&a, 10, 2, z)
	upd(&b, 10, 3, z)
	upd(&b, 20, 1, z)
	upd(&b, 20, -1, z) // cancels
	a.Add(b)
	idx, v, ok := a.Recover(100, z)
	if !ok || idx != 10 || v != 5 {
		t.Errorf("merged recovery = (%d,%d,%v), want (10,5,true)", idx, v, ok)
	}
}

func TestOneSparseSerializationRoundTrip(t *testing.T) {
	z := testZ(7)
	var o OneSparse
	upd(&o, 42, -5, z)
	var w bitio.Writer
	o.write(&w)
	if w.Len() != 3*61 {
		t.Errorf("cell is %d bits, want %d", w.Len(), 3*61)
	}
	got, err := readOneSparse(bitio.ReaderFor(&w))
	if err != nil {
		t.Fatal(err)
	}
	if got != o {
		t.Errorf("round trip: got %+v want %+v", got, o)
	}
}

func TestReadOneSparseRejectsOutOfRange(t *testing.T) {
	var w bitio.Writer
	w.WriteUint(field.P, 61) // not a valid element
	w.WriteUint(0, 61)
	w.WriteUint(0, 61)
	if _, err := readOneSparse(bitio.ReaderFor(&w)); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestSignedEmbedding(t *testing.T) {
	for _, v := range []int64{0, 1, -1, maxMagnitude, -maxMagnitude} {
		got, ok := signedFromElem(elemFromSigned(v))
		if !ok || got != v {
			t.Errorf("embedding round trip of %d = (%d,%v)", v, got, ok)
		}
	}
	if _, ok := signedFromElem(field.Elem(maxMagnitude + 1)); ok {
		t.Error("oversized magnitude accepted")
	}
}

func TestSamplerRecoversSingleton(t *testing.T) {
	coins := rng.NewPublicCoins(11)
	sp := NewSpec(1024, coins)
	sk := sp.NewSketch()
	sp.Update(sk, 77, 1)
	idx, v, ok := sp.Sample(sk)
	if !ok || idx != 77 || v != 1 {
		t.Errorf("Sample = (%d,%d,%v), want (77,1,true)", idx, v, ok)
	}
}

func TestSamplerZeroVector(t *testing.T) {
	sp := NewSpec(256, rng.NewPublicCoins(12))
	sk := sp.NewSketch()
	if !sk.IsZero() {
		t.Error("fresh sketch not zero")
	}
	if _, _, ok := sp.Sample(sk); ok {
		t.Error("sampled from zero vector")
	}
	sp.Update(sk, 5, 4)
	sp.Update(sk, 5, -4)
	if !sk.IsZero() {
		t.Error("cancelled sketch not zero")
	}
}

func TestSamplerSuccessProbabilityOnDenseVectors(t *testing.T) {
	// Over independent specs, sampling a vector with many nonzeros should
	// succeed with constant probability and always return a true support
	// coordinate with the right value.
	const trials = 300
	root := rng.NewPublicCoins(13)
	support := map[uint64]int64{}
	for i := uint64(0); i < 40; i++ {
		support[i*25] = int64(1 + i%3)
	}
	successes := 0
	for trial := 0; trial < trials; trial++ {
		sp := NewSpec(1024, root.DeriveIndex(trial))
		sk := sp.NewSketch()
		for idx, v := range support {
			sp.Update(sk, idx, v)
		}
		if idx, v, ok := sp.Sample(sk); ok {
			successes++
			want, inSupport := support[idx]
			if !inSupport || v != want {
				t.Fatalf("sampled (%d,%d) not in support", idx, v)
			}
		}
	}
	if successes < trials/4 {
		t.Errorf("sampler succeeded %d/%d, want at least %d", successes, trials, trials/4)
	}
}

func TestSamplerLinearityMatchesDirectSketch(t *testing.T) {
	sp := NewSpec(512, rng.NewPublicCoins(14))
	a, b, direct := sp.NewSketch(), sp.NewSketch(), sp.NewSketch()
	updatesA := map[uint64]int64{1: 1, 2: -1, 3: 2}
	updatesB := map[uint64]int64{2: 1, 3: -2, 9: 5}
	for i, v := range updatesA {
		sp.Update(a, i, v)
		sp.Update(direct, i, v)
	}
	for i, v := range updatesB {
		sp.Update(b, i, v)
		sp.Update(direct, i, v)
	}
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	// a now sketches {1:1, 9:5} (2 cancels to 0? no: 2:-1+1=0, 3:2-2=0).
	ia, va, oka := sp.Sample(a)
	id, vd, okd := sp.Sample(direct)
	if oka != okd || ia != id || va != vd {
		t.Errorf("merged (%d,%d,%v) != direct (%d,%d,%v)", ia, va, oka, id, vd, okd)
	}
	if oka {
		if ia != 1 && ia != 9 {
			t.Errorf("sampled index %d outside residual support {1,9}", ia)
		}
	}
}

func TestSamplerAddLevelMismatch(t *testing.T) {
	spA := NewSpec(16, rng.NewPublicCoins(15))
	spB := NewSpec(1<<20, rng.NewPublicCoins(16))
	if err := spA.NewSketch().Add(spB.NewSketch()); err == nil {
		t.Error("level mismatch not detected")
	}
}

func TestSamplerUpdatePanicsOutsideUniverse(t *testing.T) {
	sp := NewSpec(8, rng.NewPublicCoins(17))
	defer func() {
		if recover() == nil {
			t.Error("out-of-universe update did not panic")
		}
	}()
	sp.Update(sp.NewSketch(), 8, 1)
}

func TestSketchSerializationRoundTrip(t *testing.T) {
	sp := NewSpec(1024, rng.NewPublicCoins(18))
	sk := sp.NewSketch()
	for i := uint64(0); i < 30; i++ {
		sp.Update(sk, i*7%1024, int64(i%5)-2)
	}
	var w bitio.Writer
	sk.Write(&w)
	if w.Len() != sk.BitLen() {
		t.Errorf("serialized %d bits, BitLen says %d", w.Len(), sk.BitLen())
	}
	got, err := sp.ReadSketch(bitio.ReaderFor(&w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sk.cells {
		if got.cells[i] != sk.cells[i] {
			t.Fatalf("cell %d differs after round trip", i)
		}
	}
}

func TestSpecSharedCoinsInterchangeable(t *testing.T) {
	// A player and the referee deriving specs from the same coins must be
	// able to exchange sketches.
	coins := rng.NewPublicCoins(19)
	player := NewSpec(100, coins.Derive("x"))
	referee := NewSpec(100, coins.Derive("x"))
	sk := player.NewSketch()
	player.Update(sk, 55, 1)
	var w bitio.Writer
	sk.Write(&w)
	got, err := referee.ReadSketch(bitio.ReaderFor(&w))
	if err != nil {
		t.Fatal(err)
	}
	idx, v, ok := referee.Sample(got)
	if !ok || idx != 55 || v != 1 {
		t.Errorf("referee sampled (%d,%d,%v)", idx, v, ok)
	}
}

func BenchmarkUpdate(b *testing.B) {
	sp := NewSpec(1<<20, rng.NewPublicCoins(1))
	sk := sp.NewSketch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Update(sk, uint64(i)&(1<<20-1), 1)
	}
}

func BenchmarkSample(b *testing.B) {
	sp := NewSpec(1<<20, rng.NewPublicCoins(2))
	sk := sp.NewSketch()
	for i := uint64(0); i < 100; i++ {
		sp.Update(sk, i*997, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Sample(sk)
	}
}

// Package l0 implements ℓ₀-sampling linear sketches over signed integer
// vectors, the building block of the AGM graph sketches (package agm).
//
// A OneSparse cell exactly recovers a vector with at most one nonzero
// coordinate and detects (with high probability, via a polynomial
// fingerprint) that a vector has more than one. A Sampler stacks
// OneSparse cells over geometrically subsampled index sets, so that for
// any nonzero vector some level is 1-sparse with constant probability and
// a uniform-ish nonzero coordinate can be recovered.
//
// Everything is linear: sketches of two vectors can be added cell-wise to
// obtain the sketch of the sum, which is exactly what lets the AGM referee
// merge vertex sketches into component sketches with all internal edges
// cancelling.
package l0

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/field"
	"repro/internal/hashing"
	"repro/internal/rng"
)

// maxMagnitude bounds the |value| a OneSparse cell will report when
// mapping a field element back to a signed integer. Graph sketches only
// use ±1 deltas with bounded accumulation, so a small bound suffices and
// everything above it is treated as "not one-sparse".
const maxMagnitude = 1 << 20

// OneSparse is a linear sketch that recovers vectors with exactly one
// nonzero coordinate: it maintains in GF(p) the value sum, the
// index-weighted sum and a fingerprint sum Σ w_i·z^{i+1}.
type OneSparse struct {
	valSum field.Elem // Σ w_i
	idxSum field.Elem // Σ w_i · i
	fpSum  field.Elem // Σ w_i · z^{i+1}
}

// Update adds delta at the given index. fpTerm is the already-
// exponentiated fingerprint point z^{index+1} (z^{i+1} rather than z^i so
// that index 0 still contributes to the fingerprint): a sketch stacks one
// cell per subsampling level and an index at level ℓ updates ℓ+1 cells,
// so the caller hoists the single exponentiation out of the per-level
// loop — see Spec.Update — instead of paying a full square-and-multiply
// chain per cell.
func (o *OneSparse) Update(index uint64, delta int64, fpTerm field.Elem) {
	w := elemFromSigned(delta)
	o.valSum = field.Add(o.valSum, w)
	o.idxSum = field.Add(o.idxSum, field.Mul(w, field.Reduce(index)))
	o.fpSum = field.Add(o.fpSum, field.Mul(w, fpTerm))
}

// Add merges another cell into o (vector addition).
func (o *OneSparse) Add(other OneSparse) {
	o.valSum = field.Add(o.valSum, other.valSum)
	o.idxSum = field.Add(o.idxSum, other.idxSum)
	o.fpSum = field.Add(o.fpSum, other.fpSum)
}

// IsZero reports whether the cell is consistent with the all-zero vector.
func (o *OneSparse) IsZero() bool {
	return o.valSum == 0 && o.idxSum == 0 && o.fpSum == 0
}

// Recover returns (index, value) if the sketched vector has exactly one
// nonzero coordinate in [0, universe). The fingerprint makes a false
// positive on a >1-sparse vector occur with probability at most
// universe/p over the choice of z.
func (o *OneSparse) Recover(universe uint64, z field.Elem) (index uint64, value int64, ok bool) {
	return o.recover(universe, func(e uint64) field.Elem { return field.Pow(z, e) })
}

// recover is Recover with the fingerprint exponentiation abstracted, so
// Spec.Sample can serve it from the spec's fixed-base window table while
// the z-taking API keeps the naive chain. Value sums are inverted through
// field.CachedInv: they are small signed multiplicities here (the
// signedFromElem guard has already passed), exactly the case the
// inverse cache serves without a full Fermat chain.
func (o *OneSparse) recover(universe uint64, powZ func(uint64) field.Elem) (index uint64, value int64, ok bool) {
	if o.IsZero() || o.valSum == 0 {
		return 0, 0, false
	}
	v, ok := signedFromElem(o.valSum)
	if !ok {
		return 0, 0, false
	}
	idx := field.Mul(o.idxSum, field.CachedInv(o.valSum))
	if uint64(idx) >= universe {
		return 0, 0, false
	}
	if field.Mul(o.valSum, powZ(uint64(idx)+1)) != o.fpSum {
		return 0, 0, false
	}
	return uint64(idx), v, true
}

// write serializes the cell (3 × 61 bits).
func (o *OneSparse) write(w *bitio.Writer) {
	w.WriteUint(uint64(o.valSum), 61)
	w.WriteUint(uint64(o.idxSum), 61)
	w.WriteUint(uint64(o.fpSum), 61)
}

// readOneSparse deserializes a cell.
func readOneSparse(r *bitio.Reader) (OneSparse, error) {
	var o OneSparse
	for _, dst := range []*field.Elem{&o.valSum, &o.idxSum, &o.fpSum} {
		v, err := r.ReadUint(61)
		if err != nil {
			return o, err
		}
		if v >= field.P {
			return o, errors.New("l0: field element out of range")
		}
		*dst = field.Elem(v)
	}
	return o, nil
}

// elemFromSigned embeds a signed integer into GF(p).
func elemFromSigned(v int64) field.Elem {
	if v >= 0 {
		return field.Reduce(uint64(v))
	}
	return field.Neg(field.Reduce(uint64(-v)))
}

// signedFromElem inverts elemFromSigned for |v| <= maxMagnitude.
func signedFromElem(e field.Elem) (int64, bool) {
	if uint64(e) <= maxMagnitude {
		return int64(e), true
	}
	if uint64(e) >= field.P-maxMagnitude {
		return -int64(field.P - uint64(e)), true
	}
	return 0, false
}

// Spec fixes the public randomness of one ℓ₀-sampler instance: the index
// universe, the number of subsampling levels, the level hash and the
// fingerprint point. Two parties constructing a Spec from the same public
// coins obtain interchangeable sketches.
type Spec struct {
	universe uint64
	levels   int
	hash     *hashing.Family
	z        field.Elem
	// zpow is the fixed-base window table for z, shared by every copy of
	// this Spec (specs are passed by value; the table is immutable after
	// NewSpec, so sharing across the engine's workers is safe). It turns
	// the per-update fingerprint exponentiation into a handful of
	// multiplies. nil only for zero-value Specs, which fall back to the
	// naive chain.
	zpow *field.PowTable
}

// NewSpec derives a sampler specification from public coins. Levels
// covers the universe: level ℓ subsamples indices with probability 2^-ℓ.
func NewSpec(universe uint64, coins *rng.PublicCoins) Spec {
	levels := 2
	for u := universe; u > 0; u >>= 1 {
		levels++
	}
	src := coins.Derive("l0-spec").Source()
	z := field.Reduce(src.Uint64())
	if z == 0 {
		z = 1
	}
	return Spec{
		universe: universe,
		levels:   levels,
		hash:     hashing.New(2, coins.Derive("l0-hash").Source()),
		z:        z,
		zpow:     field.NewPowTable(z),
	}
}

// powZ returns z^e through the window table when available.
func (sp Spec) powZ(e uint64) field.Elem {
	if sp.zpow != nil {
		return sp.zpow.Pow(e)
	}
	return field.Pow(sp.z, e)
}

// Universe returns the index universe size.
func (sp Spec) Universe() uint64 { return sp.universe }

// Levels returns the number of subsampling levels.
func (sp Spec) Levels() int { return sp.levels }

// Sketch is the linear ℓ₀-sampling sketch of one vector under a Spec.
type Sketch struct {
	cells []OneSparse
}

// NewSketch returns the all-zero sketch.
func (sp Spec) NewSketch() *Sketch {
	return &Sketch{cells: make([]OneSparse, sp.levels)}
}

// sketchPool recycles Sketch scratch buffers for the serialize-and-
// discard hot path (a vertex sketches its incidence vector under ~100
// specs per run, writes each sketch out, and has no further use for the
// cells). Pooling is invisible in the transcript: AcquireSketch always
// hands back an all-zero sketch, and pooled sketches are plain value
// buffers with no identity.
var sketchPool = sync.Pool{New: func() any { return new(Sketch) }}

// AcquireSketch returns an all-zero sketch for sp from the scratch pool.
// Callers that release it with ReleaseSketch after serializing avoid one
// cell-slice allocation per (vertex, spec) pair; callers that forget only
// lose the reuse, never correctness.
func (sp Spec) AcquireSketch() *Sketch {
	sk := sketchPool.Get().(*Sketch)
	if cap(sk.cells) < sp.levels {
		sk.cells = make([]OneSparse, sp.levels)
		return sk
	}
	sk.cells = sk.cells[:sp.levels]
	sk.Reset()
	return sk
}

// ReleaseSketch returns a sketch obtained from AcquireSketch to the
// scratch pool. The sketch must not be used afterwards.
func ReleaseSketch(sk *Sketch) {
	if sk != nil {
		sketchPool.Put(sk)
	}
}

// Reset zeroes every cell, keeping the allocation.
func (sk *Sketch) Reset() {
	for i := range sk.cells {
		sk.cells[i] = OneSparse{}
	}
}

// Update adds delta to the vector coordinate at index. The fingerprint
// power z^{index+1} is computed exactly once per call — through the
// fixed-base window table — and reused by every level the index
// participates in; the pre-optimization path paid one full
// square-and-multiply chain per level.
func (sp Spec) Update(sk *Sketch, index uint64, delta int64) {
	if index >= sp.universe {
		panic(fmt.Sprintf("l0: index %d outside universe %d", index, sp.universe))
	}
	lvl := sp.hash.Level(index, sp.levels-1)
	fpTerm := sp.powZ(index + 1)
	// Index participates in levels 0..lvl.
	for l := 0; l <= lvl; l++ {
		sk.cells[l].Update(index, delta, fpTerm)
	}
}

// Add merges another sketch into sk. Both must stem from the same Spec.
func (sk *Sketch) Add(other *Sketch) error {
	if len(sk.cells) != len(other.cells) {
		return fmt.Errorf("l0: merging sketches with %d and %d levels", len(sk.cells), len(other.cells))
	}
	for i := range sk.cells {
		sk.cells[i].Add(other.cells[i])
	}
	return nil
}

// Sample attempts to recover one nonzero coordinate of the sketched
// vector. It scans levels from the most aggressive subsampling down,
// returning the first successful one-sparse recovery. For a nonzero
// vector it succeeds with constant probability over the Spec's coins; for
// the zero vector it reports ok = false (and zero = true via IsZero).
func (sp Spec) Sample(sk *Sketch) (index uint64, value int64, ok bool) {
	for l := len(sk.cells) - 1; l >= 0; l-- {
		if idx, v, ok := sk.cells[l].recover(sp.universe, sp.powZ); ok {
			return idx, v, true
		}
	}
	return 0, 0, false
}

// IsZero reports whether every cell is consistent with the zero vector.
func (sk *Sketch) IsZero() bool {
	for i := range sk.cells {
		if !sk.cells[i].IsZero() {
			return false
		}
	}
	return true
}

// BitLen returns the serialized size of the sketch in bits.
func (sk *Sketch) BitLen() int { return len(sk.cells) * 3 * 61 }

// Write serializes the sketch.
func (sk *Sketch) Write(w *bitio.Writer) {
	for i := range sk.cells {
		sk.cells[i].write(w)
	}
}

// ReadSketch deserializes a sketch produced under sp.
func (sp Spec) ReadSketch(r *bitio.Reader) (*Sketch, error) {
	sk := sp.NewSketch()
	for i := range sk.cells {
		cell, err := readOneSparse(r)
		if err != nil {
			return nil, fmt.Errorf("l0: level %d: %w", i, err)
		}
		sk.cells[i] = cell
	}
	return sk, nil
}

// ReadSketchTolerant deserializes a sketch while tolerating corrupted
// elements: it always consumes exactly BitLen() bits (keeping the reader
// aligned for whatever follows, unlike ReadSketch which stops at the
// first bad element), zeroing any cell whose serialized elements are not
// canonical field values and reporting valid = false for such damage.
// The error is non-nil only when the message is too short to hold the
// full encoding.
func (sp Spec) ReadSketchTolerant(r *bitio.Reader) (sk *Sketch, valid bool, err error) {
	sk = sp.NewSketch()
	valid = true
	for i := range sk.cells {
		var cell OneSparse
		cellOK := true
		for _, dst := range []*field.Elem{&cell.valSum, &cell.idxSum, &cell.fpSum} {
			v, err := r.ReadUint(61)
			if err != nil {
				return nil, false, err
			}
			if v >= field.P {
				cellOK = false
				continue
			}
			*dst = field.Elem(v)
		}
		if !cellOK {
			cell = OneSparse{}
			valid = false
		}
		sk.cells[i] = cell
	}
	return sk, valid, nil
}

// checksumOffset and checksumPrime are the FNV-1a parameters of the
// sketch checksum, shared between the per-cell Sketch form and the
// columnar Bank form (bank.go) so the two serializations stay
// checksum-compatible by construction.
const (
	checksumOffset = 0xcbf29ce484222325
	checksumPrime  = 0x00000100000001b3
)

// checksumMix folds one field element (as 8 little-endian bytes) into a
// running FNV-1a state.
func checksumMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= checksumPrime
		v >>= 8
	}
	return h
}

// Checksum digests the sketch's cells into 32 bits (an FNV-1a-style fold
// over the canonical field elements). Resilient encodings append it after
// a sketch stack so the referee can detect in-range bit flips that a
// plain range check cannot.
func (sk *Sketch) Checksum() uint32 {
	h := uint64(checksumOffset)
	for i := range sk.cells {
		h = checksumMix(h, uint64(sk.cells[i].valSum))
		h = checksumMix(h, uint64(sk.cells[i].idxSum))
		h = checksumMix(h, uint64(sk.cells[i].fpSum))
	}
	return uint32(h) ^ uint32(h>>32)
}

package l0

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/rng"
)

// bankUpdate describes one ±1 update of one lane for the equivalence
// tests.
type bankUpdate struct {
	lane  int
	index uint64
	neg   bool
}

func randBankUpdates(r *rand.Rand, lanes int, universe uint64, m int) []bankUpdate {
	ups := make([]bankUpdate, m)
	for i := range ups {
		ups[i] = bankUpdate{
			lane:  r.Intn(lanes),
			index: r.Uint64() % universe,
			neg:   r.Intn(2) == 1,
		}
	}
	return ups
}

// TestBankMatchesScalar proves the columnar path is bit-identical to the
// scalar path: for random ±1 update sequences, every lane's WriteLane
// bytes equal the bytes of a per-lane Sketch fed through Spec.Update, and
// LaneChecksum equals Sketch.Checksum.
func TestBankMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	bank := NewBank()
	var upd BlockUpdates
	for trial := 0; trial < 10; trial++ {
		universe := uint64(100 + r.Intn(100_000_000))
		sp := NewSpec(universe, rng.NewPublicCoins(uint64(trial)))
		lanes := 1 + r.Intn(130)
		ups := randBankUpdates(r, lanes, universe, r.Intn(4*lanes+1))

		bank.Reset(sp.Levels(), lanes)
		upd.Reset()
		for _, u := range ups {
			upd.Add(u.lane, u.index, u.neg)
		}
		sp.UpdateBlock(bank, &upd)

		scalar := make([]*Sketch, lanes)
		for l := range scalar {
			scalar[l] = sp.NewSketch()
		}
		for _, u := range ups {
			delta := int64(1)
			if u.neg {
				delta = -1
			}
			sp.Update(scalar[u.lane], u.index, delta)
		}

		for l := 0; l < lanes; l++ {
			var wb, ws bitio.Writer
			bank.WriteLane(&wb, l)
			scalar[l].Write(&ws)
			if wb.Len() != ws.Len() {
				t.Fatalf("trial %d lane %d: block %d bits, scalar %d bits", trial, l, wb.Len(), ws.Len())
			}
			if !bytes.Equal(wb.Bytes(), ws.Bytes()) {
				t.Fatalf("trial %d lane %d: serialized bytes differ", trial, l)
			}
			if got, want := bank.LaneChecksum(l), scalar[l].Checksum(); got != want {
				t.Fatalf("trial %d lane %d: LaneChecksum %#x, scalar Checksum %#x", trial, l, got, want)
			}
		}
	}
}

// TestBankResetReshape reuses one bank across shrinking and growing
// geometries and checks the zero invariant survives each reshape: after
// Reset every lane serializes as the all-zero sketch.
func TestBankResetReshape(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	sp := NewSpec(1_000_000, rng.NewPublicCoins(3))
	bank := NewBank()
	var upd BlockUpdates
	zero := sp.NewSketch()
	var wz bitio.Writer
	zero.Write(&wz)
	for _, lanes := range []int{64, 5, 128, 1, 64} {
		// Dirty the bank, then reshape and verify it reads all-zero.
		bank.Reset(sp.Levels(), lanes)
		upd.Reset()
		for _, u := range randBankUpdates(r, lanes, sp.Universe(), 3*lanes) {
			upd.Add(u.lane, u.index, u.neg)
		}
		sp.UpdateBlock(bank, &upd)

		bank.Reset(sp.Levels(), lanes)
		for l := 0; l < lanes; l++ {
			var w bitio.Writer
			bank.WriteLane(&w, l)
			if !bytes.Equal(w.Bytes(), wz.Bytes()) {
				t.Fatalf("lanes %d lane %d: Reset left nonzero cells", lanes, l)
			}
			if got, want := bank.LaneChecksum(l), zero.Checksum(); got != want {
				t.Fatalf("lanes %d lane %d: zero checksum %#x, want %#x", lanes, l, got, want)
			}
		}
	}
}

// TestBankAddLaneMatchesSketchAdd checks the columnar merge against
// Sketch.Add.
func TestBankAddLaneMatchesSketchAdd(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	sp := NewSpec(10_000_000, rng.NewPublicCoins(7))
	bank := NewBank()
	bank.Reset(sp.Levels(), 2)
	var upd BlockUpdates
	ups := randBankUpdates(r, 2, sp.Universe(), 40)
	for _, u := range ups {
		upd.Add(u.lane, u.index, u.neg)
	}
	sp.UpdateBlock(bank, &upd)

	a, b := sp.NewSketch(), sp.NewSketch()
	for _, u := range ups {
		delta := int64(1)
		if u.neg {
			delta = -1
		}
		if u.lane == 0 {
			sp.Update(a, u.index, delta)
		} else {
			sp.Update(b, u.index, delta)
		}
	}
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	bank.AddLane(0, 1)
	var wb, ws bitio.Writer
	bank.WriteLane(&wb, 0)
	a.Write(&ws)
	if !bytes.Equal(wb.Bytes(), ws.Bytes()) {
		t.Fatal("AddLane result differs from Sketch.Add")
	}
}

// TestUpdateBlockZeroAlloc pins the full banked update + serialize cycle
// at zero allocations per run once scratch has reached its high-water
// mark. Deliberately no sync.Pool anywhere in this path: the bank, the
// update list, and the writer are all caller-owned, so the guarantee is
// strict rather than GC-dependent.
func TestUpdateBlockZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	sp := NewSpec(100_000_000, rng.NewPublicCoins(11))
	const lanes = 128
	ups := randBankUpdates(r, lanes, sp.Universe(), 8*lanes)
	bank := NewBank()
	var upd BlockUpdates
	w := bitio.NewOwnedWriter()
	cycle := func() {
		bank.Reset(sp.Levels(), lanes)
		upd.Reset()
		for _, u := range ups {
			upd.Add(u.lane, u.index, u.neg)
		}
		sp.UpdateBlock(bank, &upd)
		w.Reset()
		w.Grow(lanes * sp.Levels() * 3 * 61)
		for l := 0; l < lanes; l++ {
			bank.WriteLane(w, l)
		}
	}
	cycle() // warm buffers to the high-water mark
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("blocked update cycle allocates %v times per run, want 0", avg)
	}
}

// benchBankSetup builds a realistic block: 128 lanes at average degree 8
// over the n = 10⁴ edge-index universe, matching the engine's AGM load.
func benchBankSetup() (Spec, []bankUpdate) {
	r := rand.New(rand.NewSource(41))
	sp := NewSpec(10000*10000, rng.NewPublicCoins(13))
	return sp, randBankUpdates(r, 128, sp.Universe(), 128*8)
}

// BenchmarkBankUpdate measures the full banked cycle — gather, batched
// update, serialize — per ℓ₀ update.
func BenchmarkBankUpdate(b *testing.B) {
	sp, ups := benchBankSetup()
	bank := NewBank()
	var upd BlockUpdates
	w := bitio.NewOwnedWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Reset(sp.Levels(), 128)
		upd.Reset()
		for _, u := range ups {
			upd.Add(u.lane, u.index, u.neg)
		}
		sp.UpdateBlock(bank, &upd)
		w.Reset()
		for l := 0; l < 128; l++ {
			bank.WriteLane(w, l)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
}

// BenchmarkL0UpdateBlock measures just the batched update scatter (no
// serialization), the direct counterpart of BenchmarkL0Update.
func BenchmarkL0UpdateBlock(b *testing.B) {
	sp, ups := benchBankSetup()
	bank := NewBank()
	var upd BlockUpdates
	upd.Reset()
	for _, u := range ups {
		upd.Add(u.lane, u.index, u.neg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Reset(sp.Levels(), 128)
		sp.UpdateBlock(bank, &upd)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
}

// BenchmarkBankUpdateScalarLoop is the scalar reference for the same
// load: per-lane pooled sketches fed through Spec.Update and serialized
// cell by cell.
func BenchmarkBankUpdateScalarLoop(b *testing.B) {
	sp, ups := benchBankSetup()
	var w bitio.Writer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sketches := make([]*Sketch, 128)
		for l := range sketches {
			sketches[l] = sp.AcquireSketch()
		}
		for _, u := range ups {
			delta := int64(1)
			if u.neg {
				delta = -1
			}
			sp.Update(sketches[u.lane], u.index, delta)
		}
		w.Reset()
		for _, sk := range sketches {
			sk.Write(&w)
			ReleaseSketch(sk)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
}

package l0

// Columnar sketch state for the block execution path. The scalar hot
// path builds one heap Sketch per (vertex, spec): an []OneSparse whose
// cells are updated through per-call pointer chasing and serialized cell
// by cell. A Bank instead holds the one-sparse cells of a whole block of
// vertices ("lanes") as parallel field-element slices, so a spec's
// updates for the entire block run as tight loops over flat arrays:
//
//   - the per-update terms (Reduce(index), z^{index+1}, the sampling
//     level) are computed for the whole block by the batched field
//     kernels (field.ReduceBlock, PowTable.PowBlock, hashing.LevelBlock)
//     before any cell is touched, and
//   - the scatter into levels 0..ℓ is a contiguous AddScalarBlock per
//     component, because lanes are stored level-contiguously.
//
// Bit-compatibility: a lane of the bank holds exactly the cells the
// scalar Spec.Update would produce for the same update sequence
// (bank_test.go proves byte equality of the serializations and equality
// of the checksums), so swapping the bank in is transcript-invisible.
//
// Everything here is allocation-free in steady state: buffers grow to
// the block's high-water mark and are reused; Reset scrubs only the
// cells the previous spec actually touched (tracked per lane by top).

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/field"
)

// Bank is the struct-of-arrays sketch state of one block of vertices
// under one Spec: lanes × levels one-sparse cells, stored lane-major so
// each lane's level range is contiguous. The zero value is ready for use
// after Reset.
type Bank struct {
	levels, lanes int
	// val/idx/fp hold cell component c of lane l, level v at
	// [l*levels + v] — the columnar split of OneSparse{valSum, idxSum,
	// fpSum}.
	val, idx, fp []field.Elem
	// top[l] is lane l's touched-level watermark: cells at levels >=
	// top[l] are untouched since the last Reset and therefore zero. It
	// bounds both the serialization's explicit cell writes and the next
	// Reset's scrub.
	top []int32
}

// NewBank returns an empty bank. Reset gives it its geometry.
func NewBank() *Bank { return &Bank{} }

// Reset prepares the bank for a fresh block of `lanes` sketches with
// `levels` cells each: every cell reads zero afterwards. Cost is
// proportional to the cells the previous use touched (plus reallocation
// when the geometry outgrows the buffers), not to the full geometry.
func (b *Bank) Reset(levels, lanes int) {
	// Scrub under the OLD geometry: the invariant is that every element
	// within the buffers' capacity is zero except those recorded by top.
	for lane := 0; lane < b.lanes; lane++ {
		if t := int(b.top[lane]); t > 0 {
			base := lane * b.levels
			clear(b.val[base : base+t])
			clear(b.idx[base : base+t])
			clear(b.fp[base : base+t])
			b.top[lane] = 0
		}
	}
	need := levels * lanes
	if cap(b.val) < need {
		b.val = make([]field.Elem, need)
		b.idx = make([]field.Elem, need)
		b.fp = make([]field.Elem, need)
	} else {
		b.val = b.val[:need]
		b.idx = b.idx[:need]
		b.fp = b.fp[:need]
	}
	if cap(b.top) < lanes {
		b.top = make([]int32, lanes)
	} else {
		b.top = b.top[:lanes]
	}
	b.levels, b.lanes = levels, lanes
}

// Levels returns the per-lane cell count of the current geometry.
func (b *Bank) Levels() int { return b.levels }

// Lanes returns the lane count of the current geometry.
func (b *Bank) Lanes() int { return b.lanes }

// addRange adds (v, i, f) to lane's cells at levels 0..lvl — the scatter
// of one ±1 update whose index sampled to level lvl.
func (b *Bank) addRange(lane int, lvl int32, v, i, f field.Elem) {
	base := lane * b.levels
	end := base + int(lvl) + 1
	field.AddScalarBlock(b.val[base:end], v)
	field.AddScalarBlock(b.idx[base:end], i)
	field.AddScalarBlock(b.fp[base:end], f)
	if lvl+1 > b.top[lane] {
		b.top[lane] = lvl + 1
	}
}

// AddLane merges lane src into lane dst cell-wise — the columnar form of
// Sketch.Add, for referee-side merging over banked state.
func (b *Bank) AddLane(dst, src int) {
	db, sb := dst*b.levels, src*b.levels
	field.AddBlock(b.val[db:db+b.levels], b.val[sb:sb+b.levels])
	field.AddBlock(b.idx[db:db+b.levels], b.idx[sb:sb+b.levels])
	field.AddBlock(b.fp[db:db+b.levels], b.fp[sb:sb+b.levels])
	if b.top[src] > b.top[dst] {
		b.top[dst] = b.top[src]
	}
}

// WriteLane serializes one lane exactly as Sketch.Write serializes the
// equivalent sketch: 3 × 61 bits per cell in level order. Cells above
// the lane's watermark are zero by the Reset invariant, so they are
// emitted as one bulk zero run instead of 183 bits at a time — at sketch
// densities (a handful of touched levels out of ~30) that removes most
// per-cell serialization work.
func (b *Bank) WriteLane(w *bitio.Writer, lane int) {
	base := lane * b.levels
	t := int(b.top[lane])
	for l := base; l < base+t; l++ {
		w.WriteUint(uint64(b.val[l]), 61)
		w.WriteUint(uint64(b.idx[l]), 61)
		w.WriteUint(uint64(b.fp[l]), 61)
	}
	w.WriteZeros((b.levels - t) * 3 * 61)
}

// LaneChecksum digests one lane with the same FNV-1a fold as
// Sketch.Checksum, zero cells included, so banked and scalar encodings
// produce identical resilient checksums.
func (b *Bank) LaneChecksum(lane int) uint32 {
	base := lane * b.levels
	h := uint64(checksumOffset)
	for l := base; l < base+b.levels; l++ {
		h = checksumMix(h, uint64(b.val[l]))
		h = checksumMix(h, uint64(b.idx[l]))
		h = checksumMix(h, uint64(b.fp[l]))
	}
	return uint32(h) ^ uint32(h>>32)
}

// BlockUpdates collects the ±1 updates of a whole block of vertices —
// (lane, index, sign) columns — so one gathered list drives every spec's
// UpdateBlock. The struct also carries the per-spec scratch columns
// (levels, fingerprint terms, reduced indexes) that UpdateBlock fills;
// all columns grow to the block's high-water mark and are reused.
type BlockUpdates struct {
	index []uint64
	neg   []bool
	lane  []int32

	// Scratch recomputed by each UpdateBlock call.
	lvl  []int32
	fpT  []field.Elem
	idxT []field.Elem
	exp  []uint64
}

// Reset empties the update list, keeping capacity.
func (u *BlockUpdates) Reset() {
	u.index = u.index[:0]
	u.neg = u.neg[:0]
	u.lane = u.lane[:0]
}

// Add appends one ±1 update: delta +1 when negative is false, −1 when
// true, at the given index, for the given lane of the bank.
func (u *BlockUpdates) Add(lane int, index uint64, negative bool) {
	u.index = append(u.index, index)
	u.neg = append(u.neg, negative)
	u.lane = append(u.lane, int32(lane))
}

// Len returns the number of collected updates.
func (u *BlockUpdates) Len() int { return len(u.index) }

// ensureScratch sizes the scratch columns for m updates.
func (u *BlockUpdates) ensureScratch(m int) {
	if cap(u.lvl) < m {
		u.lvl = make([]int32, m)
		u.fpT = make([]field.Elem, m)
		u.idxT = make([]field.Elem, m)
		u.exp = make([]uint64, m)
	}
	u.lvl = u.lvl[:m]
	u.fpT = u.fpT[:m]
	u.idxT = u.idxT[:m]
	u.exp = u.exp[:m]
}

// UpdateBlock applies every collected ±1 update to the bank — the
// batched equivalent of one Spec.Update call per (lane, index, delta)
// triple, bit-identical by the exactness of the field ops:
//
//	w = ±1, so w·Reduce(i) is Reduce(i) or Neg(Reduce(i)) and
//	w·z^{i+1} is z^{i+1} or Neg(z^{i+1}) — no per-level multiplies at
//	all, where the scalar path pays two Muls per touched level.
//
// The sampling levels, fingerprint powers, and reduced indexes are
// computed for the whole block up front by the batched kernels, then a
// single scatter pass adds each update's terms to its lane's contiguous
// level range. The bank must have been Reset with this Spec's level
// count and a lane count covering every update's lane. Allocation-free
// after the scratch columns reach the block's high-water mark.
func (sp Spec) UpdateBlock(b *Bank, u *BlockUpdates) {
	m := u.Len()
	if m == 0 {
		return
	}
	if b.levels != sp.levels {
		panic(fmt.Sprintf("l0: UpdateBlock bank has %d levels, spec has %d", b.levels, sp.levels))
	}
	for _, ix := range u.index {
		if ix >= sp.universe {
			panic(fmt.Sprintf("l0: index %d outside universe %d", ix, sp.universe))
		}
	}
	u.ensureScratch(m)
	field.ReduceBlock(u.idxT, u.index)
	for i, ix := range u.index {
		u.exp[i] = ix + 1
	}
	if sp.zpow != nil {
		sp.zpow.PowBlock(u.fpT, u.exp)
	} else {
		for i, e := range u.exp {
			u.fpT[i] = field.Pow(sp.z, e)
		}
	}
	sp.hash.LevelBlock(u.index, sp.levels-1, u.lvl)
	for i := 0; i < m; i++ {
		vT, iT, fT := field.Elem(1), u.idxT[i], u.fpT[i]
		if u.neg[i] {
			vT = field.Elem(field.P - 1)
			iT = field.Neg(iT)
			fT = field.Neg(fT)
		}
		b.addRange(int(u.lane[i]), u.lvl[i], vT, iT, fT)
	}
}

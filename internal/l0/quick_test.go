package l0

import (
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/rng"
)

// Property: linearity. For any two update sequences, sketch(A) merged
// with sketch(B) equals sketch(A++B), cell for cell.
func TestLinearityQuick(t *testing.T) {
	f := func(seed uint64, nA, nB uint8) bool {
		coins := rng.NewPublicCoins(seed)
		sp := NewSpec(256, coins)
		src := rng.NewSource(seed ^ 0xabc)
		a, b, direct := sp.NewSketch(), sp.NewSketch(), sp.NewSketch()
		apply := func(sk *Sketch, count int) {
			for i := 0; i < count; i++ {
				idx := uint64(src.Intn(256))
				delta := int64(src.Intn(7)) - 3
				sp.Update(sk, idx, delta)
				sp.Update(direct, idx, delta)
			}
		}
		apply(a, int(nA%20))
		apply(b, int(nB%20))
		if err := a.Add(b); err != nil {
			return false
		}
		for i := range a.cells {
			if a.cells[i] != direct.cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a sampled coordinate is always a true support coordinate
// with its true value (no false recoveries), over random sparse vectors.
func TestSampleSoundnessQuick(t *testing.T) {
	f := func(seed uint64, sparsity uint8) bool {
		coins := rng.NewPublicCoins(seed)
		sp := NewSpec(512, coins)
		src := rng.NewSource(seed ^ 0x123)
		sk := sp.NewSketch()
		vec := make(map[uint64]int64)
		for i := 0; i < int(sparsity%40); i++ {
			idx := uint64(src.Intn(512))
			delta := int64(src.Intn(5)) - 2
			vec[idx] += delta
			sp.Update(sk, idx, delta)
		}
		idx, v, ok := sp.Sample(sk)
		if !ok {
			return true // failure to sample is allowed; wrong samples are not
		}
		return vec[idx] == v && v != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: serialization round trip is exact for any update sequence.
func TestSerializationQuick(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		coins := rng.NewPublicCoins(seed)
		sp := NewSpec(128, coins)
		src := rng.NewSource(seed)
		sk := sp.NewSketch()
		for i := 0; i < int(n%30); i++ {
			sp.Update(sk, uint64(src.Intn(128)), int64(src.Intn(3))-1)
		}
		var w bitio.Writer
		sk.Write(&w)
		got, err := sp.ReadSketch(bitio.ReaderFor(&w))
		if err != nil {
			return false
		}
		for i := range sk.cells {
			if got.cells[i] != sk.cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package l0

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/rng"
)

// These tests pin the delete-heavy behavior the dynamic-stream subsystem
// leans on: ℓ₀ sketches are linear, so a lane whose updates cancel to the
// zero vector must be indistinguishable — cell for cell, bit for bit,
// checksum for checksum — from a lane that never saw an update, on both
// the scalar and the columnar path.

// deleteSpec is a small-universe spec shared by the tests below.
func deleteSpec(seed uint64) Spec {
	return NewSpec(1<<12, rng.NewPublicCoins(seed))
}

// mixedOps is a deterministic interleaving of inserts and deletes where
// every index inserted on a lane is eventually deleted the same number of
// times, so each lane nets to zero.
type laneOp struct {
	lane  int
	index uint64
	neg   bool
}

func netZeroOps(lanes int, perLane int, src *rng.Source) []laneOp {
	var ops []laneOp
	for lane := 0; lane < lanes; lane++ {
		idx := make([]uint64, perLane)
		for i := range idx {
			idx[i] = uint64(src.Intn(1 << 12))
		}
		for _, x := range idx {
			ops = append(ops, laneOp{lane: lane, index: x, neg: false})
		}
		for _, x := range idx {
			ops = append(ops, laneOp{lane: lane, index: x, neg: true})
		}
	}
	// Deterministic shuffle of the interleaving: deletes may land before
	// the matching insert — linearity means order must not matter.
	src.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// TestNetZeroLaneDecodesToEmpty drives insert-then-delete-all through the
// scalar path and asserts the sketch returns to the freshly-allocated
// state: IsZero, Sample reports an empty vector, and the serialized bytes
// equal a never-touched sketch's.
func TestNetZeroLaneDecodesToEmpty(t *testing.T) {
	sp := deleteSpec(91)
	src := rng.NewPublicCoins(92).Source()
	sk, fresh := sp.NewSketch(), sp.NewSketch()
	for _, op := range netZeroOps(1, 64, src) {
		delta := int64(1)
		if op.neg {
			delta = -1
		}
		sp.Update(sk, op.index, delta)
	}
	if !sk.IsZero() {
		t.Fatal("net-zero update sequence left a non-zero sketch")
	}
	if _, _, ok := sp.Sample(sk); ok {
		t.Fatal("Sample recovered an index from a net-zero sketch")
	}
	w1, w2 := bitio.NewPooledWriter(), bitio.NewPooledWriter()
	defer bitio.Release(w1)
	defer bitio.Release(w2)
	sk.Write(w1)
	fresh.Write(w2)
	if string(w1.Bytes()) != string(w2.Bytes()) || w1.Len() != w2.Len() {
		t.Fatal("net-zero sketch serializes differently from a fresh sketch")
	}
	if sk.Checksum() != fresh.Checksum() {
		t.Fatal("net-zero sketch checksum differs from a fresh sketch's")
	}
}

// TestBankMatchesScalarUnderInterleavedDeletes replays one interleaved
// ±1 stream through per-lane scalar sketches and through a single Bank
// via UpdateBlock, then asserts LaneChecksum ≡ Checksum and WriteLane ≡
// Write for every lane — including the lanes that net to zero.
func TestBankMatchesScalarUnderInterleavedDeletes(t *testing.T) {
	const lanes = 8
	sp := deleteSpec(93)
	src := rng.NewPublicCoins(94).Source()

	ops := netZeroOps(lanes/2, 48, src)
	// Give the other half of the lanes a surviving residue so the test
	// covers non-zero lanes under the same interleaving.
	for lane := lanes / 2; lane < lanes; lane++ {
		for i := 0; i < 48; i++ {
			ops = append(ops, laneOp{lane: lane, index: uint64(src.Intn(1 << 12)), neg: src.Bool()})
		}
	}

	scalar := make([]*Sketch, lanes)
	for i := range scalar {
		scalar[i] = sp.NewSketch()
	}
	bank := NewBank()
	bank.Reset(sp.Levels(), lanes)
	var upd BlockUpdates

	for start := 0; start < len(ops); start += 37 { // uneven batches
		end := min(start+37, len(ops))
		upd.Reset()
		for _, op := range ops[start:end] {
			delta := int64(1)
			if op.neg {
				delta = -1
			}
			sp.Update(scalar[op.lane], op.index, delta)
			upd.Add(op.lane, op.index, op.neg)
		}
		sp.UpdateBlock(bank, &upd)
	}

	for lane := 0; lane < lanes; lane++ {
		if got, want := bank.LaneChecksum(lane), scalar[lane].Checksum(); got != want {
			t.Fatalf("lane %d: LaneChecksum %08x != scalar Checksum %08x", lane, got, want)
		}
		w1, w2 := bitio.NewPooledWriter(), bitio.NewPooledWriter()
		bank.WriteLane(w1, lane)
		scalar[lane].Write(w2)
		if string(w1.Bytes()) != string(w2.Bytes()) || w1.Len() != w2.Len() {
			t.Fatalf("lane %d: WriteLane bytes differ from scalar Write", lane)
		}
		bitio.Release(w1)
		bitio.Release(w2)
	}
	// The first half of the lanes netted to zero; their bank lanes must
	// match a fresh sketch too, not just the (equally net-zero) scalar.
	fresh := sp.NewSketch()
	for lane := 0; lane < lanes/2; lane++ {
		if bank.LaneChecksum(lane) != fresh.Checksum() {
			t.Fatalf("net-zero lane %d checksum differs from a fresh sketch's", lane)
		}
	}
}

// TestUpdateBlockMatchesScalarOnMixedBlocks pins UpdateBlock ≡ Update on
// blocks that mix lanes, signs and repeated indices — the exact shape the
// dynamic-stream maintainer produces (one block per ops batch, two lane
// touches per edge op).
func TestUpdateBlockMatchesScalarOnMixedBlocks(t *testing.T) {
	const lanes = 5
	sp := deleteSpec(95)
	src := rng.NewPublicCoins(96).Source()

	scalar := make([]*Sketch, lanes)
	for i := range scalar {
		scalar[i] = sp.NewSketch()
	}
	bank := NewBank()
	bank.Reset(sp.Levels(), lanes)
	var upd BlockUpdates

	for block := 0; block < 20; block++ {
		upd.Reset()
		size := 1 + src.Intn(50)
		for i := 0; i < size; i++ {
			lane := src.Intn(lanes)
			index := uint64(src.Intn(64)) // small range forces repeats
			neg := src.Bool()
			delta := int64(1)
			if neg {
				delta = -1
			}
			sp.Update(scalar[lane], index, delta)
			upd.Add(lane, index, neg)
		}
		sp.UpdateBlock(bank, &upd)
		for lane := 0; lane < lanes; lane++ {
			if bank.LaneChecksum(lane) != scalar[lane].Checksum() {
				t.Fatalf("block %d lane %d: bank diverged from scalar", block, lane)
			}
		}
	}
}

package misproto

// Wire registration: the two-round MIS protocol (the upper bound side of
// the paper's MIS story) self-registers for wire execution.

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/protocol"
)

func init() {
	protocol.Register("mis-tworound", func(g *graph.Graph) engine.Protocol[protocol.Outcome] {
		return protocol.Adapt[[]int](NewTwoRound(), protocol.VerticesOutcome(g, graph.IsMaximalIndependentSet))
	})
}

// Package misproto collects maximal-independent-set protocols for the
// distributed sketching model: the bounded-budget one-round candidate
// whose failure Theorem 2 predicts, and the two-round adaptive
// O(√n·polylog n) protocol in the spirit of Ghaffari et al. [35] that the
// paper cites as the matching upper bound with one extra round.
package misproto

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// sampleSketch writes up to `budget` uniformly-sampled distinct neighbors
// preceded by their count (shared with the matching protocols' shape, but
// kept local to avoid a dependency knot).
func sampleSketch(view core.VertexView, budget int, coins *rng.PublicCoins) *bitio.Writer {
	w := bitio.NewPooledWriter()
	idWidth := bitio.UintWidth(view.N)
	k := budget
	if k > view.Degree() {
		k = view.Degree()
	}
	if k < 0 {
		k = 0
	}
	w.WriteUvarint(uint64(k))
	src := coins.Derive("mis-sample").DeriveIndex(view.ID).Source()
	perm := src.Perm(view.Degree())
	for i := 0; i < k; i++ {
		w.WriteUint(uint64(view.Neighbors[perm[i]]), idWidth)
	}
	return w
}

// readSampledGraph rebuilds the reported subgraph.
func readSampledGraph(n int, sketches []*bitio.Reader) (*graph.Graph, error) {
	idWidth := bitio.UintWidth(n)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		k, err := sketches[v].ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("misproto: sketch %d: %w", v, err)
		}
		for i := uint64(0); i < k; i++ {
			u, err := sketches[v].ReadUint(idWidth)
			if err != nil {
				return nil, fmt.Errorf("misproto: sketch %d: %w", v, err)
			}
			if int(u) != v && int(u) < n {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.Build(), nil
}

// readSampledGraphTolerant is readSampledGraph with per-vertex damage
// tolerance for faulted transcripts: empty, truncated, or invalid-entry
// sketches contribute what they can and are counted in badVertices. On an
// undamaged transcript it matches readSampledGraph with badVertices == 0,
// so clean runs are unaffected.
func readSampledGraphTolerant(n int, sketches []*bitio.Reader) (*graph.Graph, int) {
	idWidth := bitio.UintWidth(n)
	b := graph.NewBuilder(n)
	badVertices := 0
	for v := 0; v < n; v++ {
		r := sketches[v]
		bad := false
		if r == nil || r.Remaining() == 0 {
			badVertices++
			continue
		}
		k, err := r.ReadUvarint()
		if err != nil {
			badVertices++
			continue
		}
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				bad = true
				break
			}
			if int(u) != v && int(u) < n {
				b.AddEdge(v, int(u))
			} else {
				bad = true
			}
		}
		if r.Remaining() != 0 {
			bad = true // longer than its own count declared
		}
		if bad {
			badVertices++
		}
	}
	return b.Build(), badVertices
}

// NeighborSample is the bounded-budget one-round candidate: every vertex
// reports NeighborsPerVertex random neighbors and the referee outputs a
// greedy MIS of the reported subgraph. Unreported edges can make the
// output either non-independent or non-maximal in the true graph; both
// error modes are the ones the paper's model explicitly permits and
// Theorem 2 exploits.
type NeighborSample struct {
	// NeighborsPerVertex is the per-player report budget.
	NeighborsPerVertex int
}

var _ core.Protocol[[]int] = (*NeighborSample)(nil)

// Name implements core.Protocol.
func (p *NeighborSample) Name() string {
	return fmt.Sprintf("neighbor-sample-%d", p.NeighborsPerVertex)
}

// Sketch implements core.Protocol.
func (p *NeighborSample) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	return sampleSketch(view, p.NeighborsPerVertex, coins), nil
}

// Decode implements core.Protocol.
func (p *NeighborSample) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) ([]int, error) {
	g, err := readSampledGraph(n, sketches)
	if err != nil {
		return nil, err
	}
	order := coins.Derive("mis-order").Source().Perm(n)
	return graph.GreedyMIS(g, order), nil
}

package misproto

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestLocalMinimaAlwaysIndependent(t *testing.T) {
	src := rng.NewSource(1)
	coins := rng.NewPublicCoins(2)
	for trial := 0; trial < 20; trial++ {
		g := gen.Gnp(60, 0.2, src)
		res, err := core.Run[[]int](LocalMinima{}, g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsIndependentSet(g, res.Output) {
			t.Fatal("local minima produced a dependent set")
		}
		if res.MaxSketchBits != 1 {
			t.Fatalf("sketch = %d bits, want 1", res.MaxSketchBits)
		}
	}
}

func TestLocalMinimaRarelyMaximal(t *testing.T) {
	// On sparse-ish random graphs the local-minima set leaves undominated
	// vertices almost always: independence is 1-bit-cheap, maximality is
	// what Theorem 2 makes expensive.
	src := rng.NewSource(3)
	coins := rng.NewPublicCoins(4)
	maximal := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		g := gen.Gnp(80, 0.1, src)
		res, err := core.Run[[]int](LocalMinima{}, g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if graph.IsMaximalIndependentSet(g, res.Output) {
			maximal++
		}
	}
	if maximal > trials/4 {
		t.Errorf("local minima maximal in %d/%d trials; expected rarity", maximal, trials)
	}
}

func TestLocalMinimaEmptyGraphTakesEverything(t *testing.T) {
	g := graph.NewBuilder(7).Build()
	res, err := core.Run[[]int](LocalMinima{}, g, rng.NewPublicCoins(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 7 {
		t.Errorf("edge-free graph: output size %d, want 7", len(res.Output))
	}
}

func TestLocalMinimaCompleteGraphSingleton(t *testing.T) {
	g := gen.Complete(15)
	res, err := core.Run[[]int](LocalMinima{}, g, rng.NewPublicCoins(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 {
		t.Errorf("K15: output size %d, want exactly 1 (the global min)", len(res.Output))
	}
	// On a complete graph, one vertex IS a maximal IS.
	if !graph.IsMaximalIndependentSet(g, res.Output) {
		t.Error("singleton not maximal on K15")
	}
}

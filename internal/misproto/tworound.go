package misproto

import (
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TwoRound is the adaptive two-round MIS protocol (Ghaffari et al. [35]
// flavor). All parties share a public random rank order π.
//
// Round 1: every vertex broadcasts ~√n random neighbors. The referee
// computes the candidate set S₁ = greedy MIS of the sampled graph in π
// order and broadcasts it back as its feedback message (engine.Adaptive).
// S₁ dominates every vertex in the sampled graph (so every vertex
// outside S₁ has an S₁-neighbor in G), but S₁ can contain adjacent pairs
// whose edge the samples missed.
//
// Round 2: each vertex v, reading S₁ from the sealed feedback and
// consulting its full neighborhood:
//   - if v ∈ S₁ and some true neighbor u ∈ S₁ has smaller rank, v raises
//     a conflict bit and broadcasts its S₁-neighbor list. Every conflict
//     edge inside S₁ has its larger-rank endpoint raising the bit, so the
//     referee learns the *complete* conflict graph on S₁;
//   - if v ∈ S₁ otherwise, v broadcasts a single 0 bit;
//   - if v ∉ S₁, v broadcasts its S₁-neighbor list (domination test) and
//     its non-S₁-neighbor list (extension edges), both capped.
//
// The referee computes a true greedy MIS F of the (fully known) conflict
// graph on S₁, then extends F in rank order with undominated non-S₁
// vertices using the reported edges. Only cap overflows can cost
// correctness; those failures are measured, never silently ignored.
//
// The struct is stateless: the shared round-1 derivation that used to be
// a mutex-guarded memo now travels through the transcript's sealed
// feedback lane (the rank permutation itself is public-coin material
// every party re-derives locally).
type TwoRound struct {
	// SamplesPerVertex is the round-1 budget in neighbors; 0 = ⌈√n⌉.
	SamplesPerVertex int
	// Cap bounds each round-2 list in entries; 0 = ⌈2·√n·log2(n+1)⌉.
	Cap int
}

var (
	_ cclique.Protocol[[]int] = (*TwoRound)(nil)
	_ engine.Adaptive         = (*TwoRound)(nil)
)

// NewTwoRound returns the protocol with default budgets.
func NewTwoRound() *TwoRound { return &TwoRound{} }

// Name implements cclique.Protocol.
func (p *TwoRound) Name() string { return "two-round-mis" }

// Rounds implements cclique.Protocol.
func (p *TwoRound) Rounds() int { return 2 }

func (p *TwoRound) samples(n int) int {
	if p.SamplesPerVertex > 0 {
		return p.SamplesPerVertex
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

func (p *TwoRound) listCap(n int) int {
	if p.Cap > 0 {
		return p.Cap
	}
	return int(math.Ceil(2 * math.Sqrt(float64(n)) * math.Log2(float64(n)+1)))
}

// sharedRank re-derives the public rank permutation and its inverse
// (pos[v] = rank position of v). Pure public-coin material: every party
// and the referee compute the identical permutation locally.
func sharedRank(n int, coins *rng.PublicCoins) (rank, pos []int) {
	rank = coins.Derive("mis-rank").Source().Perm(n)
	pos = make([]int, n)
	for i, v := range rank {
		pos[v] = i
	}
	return rank, pos
}

// candidateSet computes S₁ from the round-1 broadcasts — the referee-side
// derivation behind the feedback message. Parsing is tolerant so a
// faulted round-1 transcript never aborts the run: damaged sketches
// contribute what they can and are counted in r1bad, which
// DecodeResilient folds into its verdict. Clean transcripts are parsed
// identically to the strict reader.
func (p *TwoRound) candidateSet(n int, transcript *cclique.Transcript, rank []int) (s1 []int, r1bad int) {
	sketches := make([]*bitio.Reader, n)
	for v := 0; v < n; v++ {
		sketches[v] = transcript.Message(0, v)
	}
	sampled, r1bad := readSampledGraphTolerant(n, sketches)
	return graph.GreedyMIS(sampled, rank), r1bad
}

// Feedback implements engine.Adaptive: after round 1 seals, the referee
// broadcasts S₁ as a vertex list (count, then ids at id width, in greedy
// rank order). After the final round the referee is silent.
func (p *TwoRound) Feedback(round int, transcript *cclique.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if round != 0 {
		return nil, nil
	}
	n := transcript.Players(0)
	rank, _ := sharedRank(n, coins)
	s1, _ := p.candidateSet(n, transcript, rank)
	w := bitio.NewPooledWriter()
	idWidth := bitio.UintWidth(n)
	w.WriteUvarint(uint64(len(s1)))
	for _, v := range s1 {
		w.WriteUint(uint64(v), idWidth)
	}
	return w, nil
}

// readCandidateFeedback parses the round-1 feedback broadcast back into
// the fed-back candidate list and membership mask. Parsing is tolerant
// (truncation stops, out-of-range or duplicate entries are skipped) so a
// faulted feedback message degrades the run instead of aborting it; ok
// reports whether every declared entry parsed cleanly. On the referee's
// own clean feedback the list round-trips exactly.
func readCandidateFeedback(n int, r *bitio.Reader) (s1 []int, inS1 []bool, ok bool) {
	inS1 = make([]bool, n)
	ok = true
	if r == nil {
		return nil, inS1, false
	}
	k, err := r.ReadUvarint()
	if err != nil {
		return nil, inS1, false
	}
	idWidth := bitio.UintWidth(n)
	for i := uint64(0); i < k; i++ {
		u, err := r.ReadUint(idWidth)
		if err != nil {
			return s1, inS1, false
		}
		if int(u) >= n || inS1[u] {
			ok = false
			continue
		}
		inS1[u] = true
		s1 = append(s1, int(u))
	}
	if r.Remaining() != 0 {
		ok = false
	}
	return s1, inS1, ok
}

// Broadcast implements cclique.Protocol. Round-2 players read S₁ from
// the referee's sealed feedback (Transcript.Feedback) and re-derive the
// public rank order locally, rather than re-deriving S₁ from the full
// round-1 transcript.
func (p *TwoRound) Broadcast(round int, view core.VertexView, transcript *cclique.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	switch round {
	case 0:
		return sampleSketch(view, p.samples(view.N), coins), nil
	case 1:
		_, pos := sharedRank(view.N, coins)
		_, inS1, _ := readCandidateFeedback(view.N, transcript.Feedback(0))
		limit := p.listCap(view.N)
		idWidth := bitio.UintWidth(view.N)
		src := coins.Derive("mis-cap").DeriveIndex(view.ID).Source()
		w := bitio.NewPooledWriter()

		writeCapped := func(lst []int) {
			if len(lst) > limit {
				src.Shuffle(len(lst), func(i, j int) { lst[i], lst[j] = lst[j], lst[i] })
				lst = lst[:limit]
			}
			w.WriteUvarint(uint64(len(lst)))
			for _, u := range lst {
				w.WriteUint(uint64(u), idWidth)
			}
		}

		var dominators, residual []int
		for _, u := range view.Neighbors {
			if inS1[u] {
				dominators = append(dominators, u)
			} else {
				residual = append(residual, u)
			}
		}

		if inS1[view.ID] {
			conflict := false
			for _, u := range dominators {
				if pos[u] < pos[view.ID] {
					conflict = true
					break
				}
			}
			w.WriteBit(conflict)
			if !conflict {
				return w, nil
			}
			// Conflicted member: report the S₁-neighbor list so the
			// referee learns the conflict edges (the larger-rank endpoint
			// of every S₁-conflict edge lands here).
			writeCapped(dominators)
			return w, nil
		}
		// Outside S₁: domination witnesses plus extension edges.
		writeCapped(dominators)
		writeCapped(residual)
		return w, nil
	default:
		return nil, fmt.Errorf("misproto: unexpected round %d", round)
	}
}

// Decode implements cclique.Protocol. The referee interprets round-2
// reports against the S₁ it broadcast as feedback — the sealed feedback
// is what the players actually acted on, so decoding against it keeps
// referee and players consistent even over a damaged feedback channel.
func (p *TwoRound) Decode(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]int, error) {
	rank, _ := sharedRank(n, coins)
	s1, inS1, _ := readCandidateFeedback(n, transcript.Feedback(0))
	idWidth := bitio.UintWidth(n)
	dominators := make([][]int, n)
	residual := make([][]int, n)

	readList := func(r *bitio.Reader, v int) ([]int, error) {
		k, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		var out []int
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				return nil, err
			}
			if int(u) != v && int(u) < n {
				out = append(out, int(u))
			}
		}
		return out, nil
	}

	for v := 0; v < n; v++ {
		r := transcript.Message(1, v)
		var err error
		if inS1[v] {
			var conflict bool
			conflict, err = r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("misproto: round-2 message %d: %w", v, err)
			}
			if !conflict {
				continue
			}
			if dominators[v], err = readList(r, v); err != nil {
				return nil, fmt.Errorf("misproto: round-2 message %d: %w", v, err)
			}
			continue
		}
		if dominators[v], err = readList(r, v); err != nil {
			return nil, fmt.Errorf("misproto: round-2 message %d: %w", v, err)
		}
		if residual[v], err = readList(r, v); err != nil {
			return nil, fmt.Errorf("misproto: round-2 message %d: %w", v, err)
		}
	}

	return assembleMIS(n, rank, s1, inS1, dominators, residual), nil
}

// assembleMIS is the referee's combination step shared by Decode and
// DecodeResilient: a true greedy MIS F of the conflict graph on S₁ (every
// conflict edge was reported by its larger-rank endpoint, so within S₁
// the referee has complete knowledge), extended in rank order with
// undominated non-S₁ vertices using every reported edge.
func assembleMIS(n int, rank, s1 []int, inS1 []bool, dominators, residual [][]int) []int {
	conflictB := graph.NewBuilder(n)
	for _, v := range s1 {
		for _, u := range dominators[v] {
			if inS1[u] {
				conflictB.AddEdge(v, u)
			}
		}
	}
	conflictG := conflictB.Build()
	inSet := make([]bool, n)
	var out []int
	for _, v := range rank {
		if !inS1[v] {
			continue
		}
		free := true
		conflictG.EachNeighbor(v, func(u int) {
			if inSet[u] {
				free = false
			}
		})
		if free {
			inSet[v] = true
			out = append(out, v)
		}
	}

	known := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, u := range residual[v] {
			known.AddEdge(v, u)
		}
		for _, u := range dominators[v] {
			known.AddEdge(v, u)
		}
	}
	kg := known.Build()

	for _, v := range rank {
		if inS1[v] || inSet[v] {
			continue
		}
		free := true
		kg.EachNeighbor(v, func(u int) {
			if inSet[u] {
				free = false
			}
		})
		if free {
			inSet[v] = true
			out = append(out, v)
		}
	}
	return out
}

// DecodeResilient is Decode with graceful degradation over damaged
// transcripts, satisfying faults.ResilientProtocol. Damaged round-1
// sketches shrink the sampled graph (possibly inflating S₁); damaged
// round-2 messages are skipped, costing their conflict reports and
// domination witnesses; a sealed feedback that diverges from the
// referee's own recomputed S₁ is a detected downlink fault. Verdicts
// mirror matchproto.TwoRound:
//
//   - ok: every message of both rounds parsed cleanly, the feedback
//     matched the recomputation, and no list was at the cap — the output
//     carries the protocol's usual guarantee;
//   - degraded: some sketches were missing/garbled, the downlink was
//     damaged, or a list hit the cap (possible truncation), so
//     independence or maximality may be lost;
//   - failed: more than half the vertices were damaged in either round.
//
// In-range bit flips forging plausible IDs are undetectable from message
// contents alone; faults.Run's channel-record folding covers that case.
func (p *TwoRound) DecodeResilient(n int, transcript *cclique.Transcript, coins *rng.PublicCoins) ([]int, core.Resilience, error) {
	rank, _ := sharedRank(n, coins)
	s1, inS1, fbOK := readCandidateFeedback(n, transcript.Feedback(0))
	trueS1, r1bad := p.candidateSet(n, transcript, rank)
	fbDamaged := !fbOK || !intListsEqual(s1, trueS1)
	idWidth := bitio.UintWidth(n)
	limit := p.listCap(n)
	dominators := make([][]int, n)
	residual := make([][]int, n)
	r2bad, capHits := 0, 0

	readListTolerant := func(r *bitio.Reader, v int) ([]int, bool) {
		k, err := r.ReadUvarint()
		if err != nil {
			return nil, false
		}
		if int64(k) >= int64(limit) {
			capHits++ // at (or corrupted past) the cap: possible truncation
		}
		ok := true
		var out []int
		for i := uint64(0); i < k; i++ {
			u, err := r.ReadUint(idWidth)
			if err != nil {
				return out, false
			}
			if int(u) != v && int(u) < n {
				out = append(out, int(u))
			} else {
				ok = false
			}
		}
		return out, ok
	}

	for v := 0; v < n; v++ {
		r := transcript.Message(1, v)
		bad := false
		if r == nil || r.Remaining() == 0 {
			r2bad++
			continue
		}
		if inS1[v] {
			conflict, err := r.ReadBit()
			if err != nil {
				r2bad++
				continue
			}
			if conflict {
				var ok bool
				dominators[v], ok = readListTolerant(r, v)
				bad = bad || !ok
			}
		} else {
			var ok bool
			dominators[v], ok = readListTolerant(r, v)
			if ok {
				residual[v], ok = readListTolerant(r, v)
			}
			bad = bad || !ok
		}
		if r.Remaining() != 0 {
			bad = true // longer than its own lists declared
		}
		if bad {
			r2bad++
		}
	}

	out := assembleMIS(n, rank, s1, inS1, dominators, residual)
	switch {
	case 2*r1bad > n || 2*r2bad > n:
		return out, core.ResilienceFailed, nil
	case r1bad > 0 || r2bad > 0 || capHits > 0 || fbDamaged:
		return out, core.ResilienceDegraded, nil
	default:
		return out, core.ResilienceOK, nil
	}
}

// intListsEqual reports element-wise equality of two int lists.
func intListsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

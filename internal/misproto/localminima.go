package misproto

import (
	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/rng"
)

// LocalMinima is the 1-bit-per-player protocol that pinpoints *where* the
// MIS hardness lives. Using a public random rank π, each vertex sends a
// single bit: "my rank is smaller than all my neighbors' ranks". The
// announced set is always a genuine independent set (two adjacent local
// minima are impossible), with optimal-to-the-bit communication.
//
// What it cannot do — and per Theorem 2 nothing below Ω(√n/e^Θ(√log n))
// can — is certify maximality: the referee has no way to extend the set,
// so on most graphs the output is independent but far from maximal.
// Compare with (Δ+1)-coloring, where symmetric one-bit-style tricks plus
// palette sparsification do reach maximal-type guarantees.
type LocalMinima struct{}

var _ core.Protocol[[]int] = (*LocalMinima)(nil)

// Name implements core.Protocol.
func (LocalMinima) Name() string { return "local-minima" }

// rank returns the public random rank array shared by all parties.
func localMinimaRank(n int, coins *rng.PublicCoins) []int {
	return coins.Derive("local-minima-rank").Source().Perm(n)
}

// Sketch implements core.Protocol: one bit.
func (LocalMinima) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	rank := localMinimaRank(view.N, coins)
	pos := make([]int, view.N)
	for i, v := range rank {
		pos[v] = i
	}
	isMin := true
	for _, u := range view.Neighbors {
		if pos[u] < pos[view.ID] {
			isMin = false
			break
		}
	}
	w := &bitio.Writer{}
	w.WriteBit(isMin)
	return w, nil
}

// Decode implements core.Protocol.
func (LocalMinima) Decode(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) ([]int, error) {
	var out []int
	for v := 0; v < n; v++ {
		b, err := sketches[v].ReadBit()
		if err != nil {
			return nil, err
		}
		if b {
			out = append(out, v)
		}
	}
	return out, nil
}

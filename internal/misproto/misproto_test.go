package misproto

import (
	"math"
	"testing"

	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestNeighborSampleFullBudgetIsCorrect(t *testing.T) {
	coins := rng.NewPublicCoins(1)
	src := rng.NewSource(2)
	p := &NeighborSample{NeighborsPerVertex: 1 << 20}
	for trial := 0; trial < 10; trial++ {
		g := gen.Gnp(40, 0.2, src)
		res, err := core.Run[[]int](p, g, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsMaximalIndependentSet(g, res.Output) {
			t.Fatal("full-budget neighbor sample not a maximal IS")
		}
	}
}

func TestNeighborSampleLowBudgetErrs(t *testing.T) {
	// On a dense graph with 1-neighbor reports, the referee's view is so
	// sparse that its greedy MIS is almost surely dependent in G.
	g := gen.Complete(40)
	coins := rng.NewPublicCoins(3)
	p := &NeighborSample{NeighborsPerVertex: 1}
	failures := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		res, err := core.Run[[]int](p, g, coins.DeriveIndex(i))
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsMaximalIndependentSet(g, res.Output) {
			failures++
		}
	}
	if failures < trials/2 {
		t.Errorf("low-budget MIS failed only %d/%d times on K40", failures, trials)
	}
}

func TestNeighborSampleZeroBudget(t *testing.T) {
	g := gen.Path(6)
	res, err := core.Run[[]int](&NeighborSample{}, g, rng.NewPublicCoins(4))
	if err != nil {
		t.Fatal(err)
	}
	// Referee sees no edges: outputs all vertices (an "independent set"
	// of the empty reported graph) — wrong on any non-empty graph.
	if len(res.Output) != 6 {
		t.Errorf("zero-budget output size %d, want 6", len(res.Output))
	}
	if graph.IsIndependentSet(g, res.Output) {
		t.Error("all-vertices output reported independent on P6")
	}
}

func TestTwoRoundCorrectOnRandomGraphs(t *testing.T) {
	src := rng.NewSource(5)
	coins := rng.NewPublicCoins(6)
	p := NewTwoRound()
	successes := 0
	const trials = 15
	for i := 0; i < trials; i++ {
		g := gen.Gnp(80, 0.15, src)
		res, err := cclique.Run[[]int](p, g, coins.DeriveIndex(i))
		if err != nil {
			t.Fatal(err)
		}
		if graph.IsMaximalIndependentSet(g, res.Output) {
			successes++
		}
	}
	if successes < trials*9/10 {
		t.Errorf("two-round MIS correct in %d/%d trials", successes, trials)
	}
}

func TestTwoRoundOnStructuredGraphs(t *testing.T) {
	coins := rng.NewPublicCoins(7)
	for name, g := range map[string]*graph.Graph{
		"path":     gen.Path(30),
		"cycle":    gen.Cycle(31),
		"star":     gen.Star(20),
		"complete": gen.Complete(25),
		"empty":    graph.NewBuilder(10).Build(),
	} {
		res, err := cclique.Run[[]int](NewTwoRound(), g, coins.Derive(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graph.IsMaximalIndependentSet(g, res.Output) {
			t.Errorf("%s: two-round MIS incorrect", name)
		}
	}
}

func TestTwoRoundMessageSizeEnvelope(t *testing.T) {
	// The adaptive protocol's guarantee is O(√n·log² n) bits per message.
	// (The constant-factor crossover against the n-bit trivial sketch
	// lies beyond unit-test scale; experiment E11 charts the scaling.)
	n := 400
	g := gen.Gnp(n, 0.3, rng.NewSource(8))
	res, err := cclique.Run[[]int](NewTwoRound(), g, rng.NewPublicCoins(9))
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log2(float64(n) + 1)
	envelope := int(6 * math.Sqrt(float64(n)) * logN * logN)
	if res.MaxMessageBits > envelope {
		t.Errorf("two-round MIS message %d bits exceeds %d = O(√n·log²n)", res.MaxMessageBits, envelope)
	}
	// On the complete graph, Δ = n-1 while messages stay within the
	// envelope: dominated vertices send short dominator lists and only
	// the few defectors ship capped residual lists.
	kn := 300
	k := gen.Complete(kn)
	kres, err := cclique.Run[[]int](NewTwoRound(), k, rng.NewPublicCoins(10))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsMaximalIndependentSet(k, kres.Output) {
		t.Error("two-round MIS wrong on K300")
	}
	logK := math.Log2(float64(kn) + 1)
	kEnvelope := int(6 * math.Sqrt(float64(kn)) * logK * logK)
	if kres.RoundMaxBits[1] > kEnvelope {
		t.Errorf("round-2 message on K300 is %d bits, exceeds envelope %d", kres.RoundMaxBits[1], kEnvelope)
	}
}

func TestTwoRoundDeterministicGivenCoins(t *testing.T) {
	g := gen.Gnp(40, 0.2, rng.NewSource(10))
	coins := rng.NewPublicCoins(11)
	a, err1 := cclique.Run[[]int](NewTwoRound(), g, coins)
	b, err2 := cclique.Run[[]int](NewTwoRound(), g, coins)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(a.Output) != len(b.Output) {
		t.Fatal("same coins, different outputs")
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatal("same coins, different outputs")
		}
	}
}

func BenchmarkTwoRoundMISN200(b *testing.B) {
	g := gen.Gnp(200, 0.1, rng.NewSource(1))
	coins := rng.NewPublicCoins(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cclique.Run[[]int](NewTwoRound(), g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

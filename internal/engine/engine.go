// Package engine executes broadcast protocols concurrently while staying
// bit-identical to a sequential run.
//
// The paper's model is n players speaking *simultaneously* each round:
// player v's message depends only on (round, v's view, the sealed
// transcript of earlier rounds, the public coins). Per-round work is
// therefore embarrassingly parallel by construction, and because every
// per-vertex coin stream is derived from labels (rng.PublicCoins), not
// from a shared mutable generator, execution order cannot change any
// transcript bit. The engine exploits that: each round it shards the
// vertex range across a worker pool, waits at a round barrier, seals the
// round into the immutable Transcript, and only then starts the next
// round.
//
// Determinism contract: for a fixed (protocol, graph, coins), the
// transcript, the output, and every bit-accounting field of RunStats are
// identical for every Workers/ShardSize setting. Only wall-time fields
// and PeakInFlight describe the particular execution. The golden test in
// engine_test.go enforces this against an independent sequential
// reference.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Broadcaster is the broadcast-phase half of a protocol: everything the
// engine needs to build a transcript. Any Protocol[O] satisfies it.
type Broadcaster interface {
	// Name identifies the protocol in stats and tables.
	Name() string
	// Rounds is the total number of broadcast rounds.
	Rounds() int
	// Broadcast computes player view.ID's message for the given round;
	// transcript holds every earlier (sealed) round. Broadcast must be
	// safe for concurrent calls within a round and must derive any
	// randomness from coins labels, never from shared mutable state.
	Broadcast(round int, view core.VertexView, transcript *Transcript, coins *rng.PublicCoins) (*bitio.Writer, error)
}

// Protocol is a multi-round broadcast protocol with output type O. It is
// structurally identical to cclique.Protocol, whose Transcript type
// aliases the engine's, so every existing protocol implementation
// satisfies both.
type Protocol[O any] interface {
	Broadcaster
	// Decode computes the output from the complete transcript.
	Decode(n int, transcript *Transcript, coins *rng.PublicCoins) (O, error)
}

// Adaptive is the optional referee-feedback extension of Broadcaster: an
// adaptive protocol's referee broadcasts a feedback message after each
// round barrier, and later Broadcast calls read it from the sealed
// transcript (Transcript.Feedback) instead of each player re-deriving the
// shared referee state privately. This is the model's "extra round of
// adaptivity" (the O(√n·polylog n) two-round MM/MIS upper bounds): the
// downlink is free in the per-player communication measure, but it is
// accounted separately in RunStats (FeedbackBits, RoundBits).
//
// The engine calls Feedback exactly once per round, single-threaded, after
// the round has sealed and before the next round's broadcasts start — so
// Feedback may freely read every sealed round and needs no locking. It
// must be a pure function of (round, transcript, coins) for the
// determinism contract to extend to adaptive protocols. Returning a nil
// (or empty) writer means the referee is silent after that round; a
// protocol that is silent after every round is indistinguishable — in
// transcript bytes and in stats — from a non-adaptive one.
type Adaptive interface {
	Broadcaster
	// Feedback computes the referee's broadcast after the given sealed
	// round. The engine seals the result into the transcript's feedback
	// lane (Transcript.SealFeedback).
	Feedback(round int, transcript *Transcript, coins *rng.PublicCoins) (*bitio.Writer, error)
}

// Engine schedules protocol executions over a worker pool. The zero value
// is ready to use and runs with GOMAXPROCS workers.
type Engine struct {
	// Workers is the number of concurrent broadcast workers; <= 0 selects
	// runtime.GOMAXPROCS(0). Workers never changes results, only speed.
	Workers int
	// ShardSize is the number of consecutive vertices dispatched to a
	// worker as one unit; <= 0 selects a size that yields ~8 shards per
	// worker for load balance. ShardSize never changes results.
	ShardSize int
	// DisableBlock forces the per-vertex Broadcast path even for
	// protocols implementing BlockBroadcaster, overriding the
	// process-wide SetBlockExecution toggle for this engine. Like
	// Workers and ShardSize it never changes results, only speed —
	// the benchmarks use it to measure the scalar path.
	DisableBlock bool
}

// workerCount resolves the effective worker count.
func (e *Engine) workerCount() int {
	if e != nil && e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// shardSizeFor resolves the effective shard size for n vertices.
func (e *Engine) shardSizeFor(n, workers int) int {
	if e != nil && e.ShardSize > 0 {
		return e.ShardSize
	}
	if workers == 1 {
		return max(1, n)
	}
	return max(1, (n+8*workers-1)/(8*workers))
}

// Result reports one execution: the decoded output plus full run metrics.
type Result[O any] struct {
	Output O
	Stats  RunStats
}

// runError carries the first (lowest round, lowest vertex) Broadcast
// failure, so error reporting is deterministic under concurrency.
type runError struct {
	mu     sync.Mutex
	round  int
	vertex int
	err    error
}

func (f *runError) record(round, vertex int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil || round < f.round || (round == f.round && vertex < f.vertex) {
		f.round, f.vertex, f.err = round, vertex, err
	}
}

func (f *runError) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		return nil
	}
	return fmt.Errorf("engine: round %d player %d: %w", f.round, f.vertex, f.err)
}

// Execute runs the broadcast phase only: all rounds of p over g, sharded
// across the pool, returning the sealed transcript and its metrics. On a
// Broadcast error or context cancellation the run stops at the current
// round's barrier and the partial transcript and stats (every fully
// sealed round) are still returned alongside the error.
func (e *Engine) Execute(ctx context.Context, p Broadcaster, g *graph.Graph, coins *rng.PublicCoins) (*Transcript, *RunStats, error) {
	start := time.Now()
	views := core.Views(g)
	n := len(views)
	workers := e.workerCount()
	shardSize := e.shardSizeFor(n, workers)
	shards := 0
	if n > 0 {
		shards = (n + shardSize - 1) / shardSize
	}

	stats := &RunStats{
		Protocol:  p.Name(),
		N:         n,
		Rounds:    p.Rounds(),
		Workers:   workers,
		ShardSize: shardSize,
		Shards:    shards,
	}
	reg := &registry{}
	transcript := NewTranscript()
	adaptive, _ := p.(Adaptive)
	block := e.blockFor(p)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	finish := func(err error) (*Transcript, *RunStats, error) {
		reg.snapshot(stats)
		stats.BroadcastWall = time.Since(start)
		stats.TotalWall = stats.BroadcastWall
		return transcript, stats, err
	}

	for round := 0; round < p.Rounds(); round++ {
		roundStart := time.Now()
		msgs := make([]*bitio.Writer, n)
		firstErr := &runError{}

		type shard struct{ lo, hi int }
		jobs := make(chan shard)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sh := range jobs {
					shardStart := time.Now()
					if block != nil {
						// Columnar fast path: the whole shard in one call.
						// Transcript bytes are identical to the per-vertex
						// loop below by the BlockBroadcaster contract.
						if ctx.Err() != nil {
							reg.shardWall.Record(time.Since(shardStart))
							continue
						}
						reg.inFlight.Enter()
						bad, err := block.BroadcastBlock(round, views[sh.lo:sh.hi], transcript, coins, msgs[sh.lo:sh.hi])
						reg.inFlight.Exit()
						if err != nil {
							firstErr.record(round, sh.lo+bad, err)
							cancel()
						} else {
							reg.broadcasts.Add(int64(sh.hi - sh.lo))
						}
						reg.shardWall.Record(time.Since(shardStart))
						continue
					}
					for v := sh.lo; v < sh.hi; v++ {
						if ctx.Err() != nil {
							break
						}
						reg.inFlight.Enter()
						w, err := p.Broadcast(round, views[v], transcript, coins)
						reg.inFlight.Exit()
						if err != nil {
							firstErr.record(round, v, err)
							cancel()
							break
						}
						msgs[v] = w
						reg.broadcasts.Add(1)
					}
					reg.shardWall.Record(time.Since(shardStart))
				}
			}()
		}
		for lo := 0; lo < n; lo += shardSize {
			jobs <- shard{lo: lo, hi: min(lo+shardSize, n)}
		}
		close(jobs)
		wg.Wait()

		if err := firstErr.get(); err != nil {
			return finish(err)
		}
		if err := ctx.Err(); err != nil {
			return finish(fmt.Errorf("engine: round %d: %w", round, err))
		}

		// Deterministic bit accounting in vertex order, then seal.
		roundMax := 0
		var roundTotal int64
		for _, w := range msgs {
			l := 0
			if w != nil {
				l = w.Len()
			}
			if l == 0 {
				reg.empty.Add(1)
			}
			reg.hist.Observe(l)
			if l > roundMax {
				roundMax = l
			}
			roundTotal += int64(l)
		}
		transcript.SealRound(msgs)
		// Sealing copied every message's bits, so pooled scratch writers
		// can be recycled for the next round's broadcasts. Release is a
		// no-op for plain writers, which protocols may legally retain.
		for _, w := range msgs {
			bitio.Release(w)
		}

		// Referee feedback: computed single-threaded at the round barrier
		// over the freshly sealed round, then sealed into the transcript's
		// feedback lane so the next round's concurrent Broadcast calls can
		// read it. Feedback bits are accounted separately from player bits
		// — MaxMessageBits/TotalBits stay player-only communication.
		feedbackBits := 0
		var feedbackErr error
		if adaptive != nil {
			fb, err := adaptive.Feedback(round, transcript, coins)
			if err != nil {
				feedbackErr = fmt.Errorf("engine: feedback after round %d: %w", round, err)
			} else {
				if fb != nil {
					feedbackBits = fb.Len()
				}
				transcript.SealFeedback(fb)
				bitio.Release(fb)
			}
		}

		stats.CompletedRounds++
		stats.RoundMaxBits = append(stats.RoundMaxBits, roundMax)
		stats.RoundTotalBits = append(stats.RoundTotalBits, roundTotal)
		stats.TotalBits += roundTotal
		if roundMax > stats.MaxMessageBits {
			stats.MaxMessageBits = roundMax
		}
		stats.RoundBits = append(stats.RoundBits, RoundStats{
			PlayerBits:    roundTotal,
			PlayerMaxBits: roundMax,
			FeedbackBits:  feedbackBits,
		})
		stats.FeedbackBits += int64(feedbackBits)
		stats.RoundWall = append(stats.RoundWall, time.Since(roundStart))
		if feedbackErr != nil {
			return finish(feedbackErr)
		}
	}
	return finish(nil)
}

// Run executes p on g end to end: the sharded broadcast phase followed by
// the referee's Decode over the sealed transcript. It is a package
// function rather than a method only because Go methods cannot carry type
// parameters.
func Run[O any](ctx context.Context, e *Engine, p Protocol[O], g *graph.Graph, coins *rng.PublicCoins) (Result[O], error) {
	res, _, err := RunWithTranscript(ctx, e, p, g, coins)
	return res, err
}

// RunWithTranscript is Run, additionally returning the sealed transcript
// the referee decoded. The service layer (internal/wire, internal/server)
// uses it to ship the exact transcript to remote callers; on error the
// partial transcript (every fully sealed round) is still returned.
func RunWithTranscript[O any](ctx context.Context, e *Engine, p Protocol[O], g *graph.Graph, coins *rng.PublicCoins) (Result[O], *Transcript, error) {
	start := time.Now()
	transcript, stats, err := e.Execute(ctx, p, g, coins)
	res := Result[O]{Stats: *stats}
	if err != nil {
		res.Stats.TotalWall = time.Since(start)
		return res, transcript, err
	}
	decodeStart := time.Now()
	out, err := p.Decode(g.N(), transcript, coins)
	res.Stats.DecodeWall = time.Since(decodeStart)
	res.Stats.TotalWall = time.Since(start)
	if err != nil {
		return res, transcript, fmt.Errorf("engine: decode: %w", err)
	}
	res.Output = out
	return res, transcript, nil
}

package engine_test

import (
	"bufio"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/agm"
	"repro/internal/cclique"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// updateFixtures regenerates the committed golden transcripts. The
// fixtures were recorded from the pre-optimization sketch path; they must
// only ever be regenerated for a deliberate, documented format change —
// the whole point of committing them is that hot-path optimizations
// (power tables, spec memoization, buffer pooling) cannot silently move a
// single transcript bit.
var updateFixtures = flag.Bool("update-fixtures", false, "rewrite testdata transcript fixtures")

// fixtureCase pins one protocol execution whose full transcript is
// committed under testdata/.
type fixtureCase struct {
	name string
	run  func(t *testing.T, workers int) *engine.Transcript
	n    int
}

func engineFixtureCases() []fixtureCase {
	exec := func(t *testing.T, p engine.Broadcaster, g *graph.Graph, coins *rng.PublicCoins, workers int) *engine.Transcript {
		t.Helper()
		eng := &engine.Engine{Workers: workers, ShardSize: 3}
		tr, _, err := eng.Execute(context.Background(), p, g, coins)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	agmGraph := gen.Gnp(60, 0.15, rng.NewSource(11))
	agmBackupGraph := gen.Gnp(40, 0.2, rng.NewSource(21))
	mmGraph := gen.Gnp(50, 0.3, rng.NewSource(13))
	misGraph := gen.Gnp(50, 0.25, rng.NewSource(15))
	return []fixtureCase{
		{
			name: "agm-forest",
			n:    agmGraph.N(),
			run: func(t *testing.T, workers int) *engine.Transcript {
				p := &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{})}
				return exec(t, p, agmGraph, rng.NewPublicCoins(12), workers)
			},
		},
		{
			name: "agm-forest-backup",
			n:    agmBackupGraph.N(),
			run: func(t *testing.T, workers int) *engine.Transcript {
				p := &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{BackupReps: 2})}
				return exec(t, p, agmBackupGraph, rng.NewPublicCoins(22), workers)
			},
		},
		{
			name: "agm-skeleton",
			n:    agmBackupGraph.N(),
			run: func(t *testing.T, workers int) *engine.Transcript {
				p := &cclique.OneRound[[]graph.Edge]{P: agm.NewSkeleton(2, agm.Config{})}
				return exec(t, p, agmBackupGraph, rng.NewPublicCoins(23), workers)
			},
		},
		{
			name: "mm-tworound",
			n:    mmGraph.N(),
			run: func(t *testing.T, workers int) *engine.Transcript {
				return exec(t, matchproto.NewTwoRound(), mmGraph, rng.NewPublicCoins(14), workers)
			},
		},
		{
			name: "mis-tworound",
			n:    misGraph.N(),
			run: func(t *testing.T, workers int) *engine.Transcript {
				return exec(t, misproto.NewTwoRound(), misGraph, rng.NewPublicCoins(16), workers)
			},
		},
	}
}

// TestGoldenFixtureTranscripts asserts, for every pinned protocol
// execution and Workers ∈ {1, 2, 8}, byte-for-byte equality of the full
// transcript with the pre-optimization fixture committed under testdata/.
func TestGoldenFixtureTranscripts(t *testing.T) {
	for _, fc := range engineFixtureCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			path := filepath.Join("testdata", fc.name+".golden")
			if *updateFixtures {
				writeTranscriptFixture(t, path, fc.run(t, 1), fc.n)
			}
			want := readTranscriptFixture(t, path)
			for _, workers := range []int{1, 2, 8} {
				got := flattenTranscript(t, fc.run(t, workers), fc.n)
				compareTranscriptLines(t, fmt.Sprintf("%s workers=%d", fc.name, workers), got, want)
			}
		})
	}
}

// flattenTranscript renders a transcript as one canonical line per
// (round, vertex): "round vertex nbit hex" with bits packed LSB-first
// exactly as bitio.Writer lays them out.
func flattenTranscript(t *testing.T, tr *engine.Transcript, n int) []string {
	t.Helper()
	var out []string
	for round := 0; round < tr.Rounds(); round++ {
		for v := 0; v < n; v++ {
			nbit := tr.BitLen(round, v)
			r := tr.Message(round, v)
			buf := make([]byte, (nbit+7)/8)
			for i := 0; i < nbit; i++ {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatalf("round %d vertex %d bit %d: %v", round, v, i, err)
				}
				if b {
					buf[i/8] |= 1 << uint(i%8)
				}
			}
			out = append(out, fmt.Sprintf("%d %d %d %s", round, v, nbit, hex.EncodeToString(buf)))
		}
	}
	return out
}

func writeTranscriptFixture(t *testing.T, path string, tr *engine.Transcript, n int) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, line := range flattenTranscript(t, tr, n) {
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func readTranscriptFixture(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing fixture %s (generate with -update-fixtures ONLY from a known-good tree): %v", path, err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func compareTranscriptLines(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d transcript messages, fixture has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: transcript message %d drifted from committed fixture:\n got %s\nwant %s",
				label, i, got[i], want[i])
		}
	}
}

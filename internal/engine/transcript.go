package engine

import "repro/internal/bitio"

// message is one sealed broadcast: a private copy of the sender's bits.
type message struct {
	buf  []byte
	nbit int
}

// Transcript gives read access to all broadcasts of completed rounds.
//
// Immutability guarantee: a round becomes visible only when it is sealed,
// and sealing copies every message's bits into buffers owned by the
// transcript. After SealRound returns, nothing — not the engine, not a
// protocol that retained the *bitio.Writer it handed back, not a later
// round appending to a recycled writer — can change a single bit of that
// round. Message therefore always returns a reader over a stable snapshot,
// which is what makes concurrent Broadcast calls in the next round safe.
type Transcript struct {
	rounds [][]message
}

// NewTranscript returns an empty transcript with no sealed rounds.
func NewTranscript() *Transcript { return &Transcript{} }

// Rounds returns the number of sealed (completed) rounds.
func (t *Transcript) Rounds() int { return len(t.rounds) }

// Message returns a fresh reader over player v's broadcast in the given
// sealed round. Each call returns an independent reader; readers never
// share position state.
func (t *Transcript) Message(round, v int) *bitio.Reader {
	m := t.rounds[round][v]
	return bitio.NewReader(m.buf, m.nbit)
}

// BitLen returns the length in bits of player v's broadcast in the given
// sealed round.
func (t *Transcript) BitLen(round, v int) int { return t.rounds[round][v].nbit }

// Players returns the number of player slots in the given sealed round.
// Every round of an engine execution has one slot per vertex; the wire
// codec (internal/wire) uses this to serialize rounds without needing the
// graph that produced them.
func (t *Transcript) Players(round int) int { return len(t.rounds[round]) }

// SealRound appends one completed round of broadcasts, copying each
// writer's bits so the sealed round is immune to later writer mutation.
// A nil writer seals as an empty message. The engine calls this exactly
// once per round after the round's barrier; it is exported so reference
// executors (tests, the golden sequential baseline) can build transcripts
// under the same immutability contract.
func (t *Transcript) SealRound(msgs []*bitio.Writer) {
	sealed := make([]message, len(msgs))
	for v, w := range msgs {
		if w == nil || w.Len() == 0 {
			continue
		}
		buf := make([]byte, len(w.Bytes()))
		copy(buf, w.Bytes())
		sealed[v] = message{buf: buf, nbit: w.Len()}
	}
	t.rounds = append(t.rounds, sealed)
}

package engine

import "repro/internal/bitio"

// message is one sealed broadcast: a private copy of the sender's bits.
type message struct {
	buf  []byte
	nbit int
}

// Transcript gives read access to all broadcasts of completed rounds.
//
// Immutability guarantee: a round becomes visible only when it is sealed,
// and sealing copies every message's bits into buffers owned by the
// transcript. After SealRound returns, nothing — not the engine, not a
// protocol that retained the *bitio.Writer it handed back, not a later
// round appending to a recycled writer — can change a single bit of that
// round. Message therefore always returns a reader over a stable snapshot,
// which is what makes concurrent Broadcast calls in the next round safe.
//
// Besides the player lane, every sealed round has one referee feedback
// slot (the adaptive model's downlink): SealRound opens it empty, and
// SealFeedback — called single-threaded at the round barrier, before the
// next round's broadcasts start — fills it. A non-adaptive protocol's
// transcript simply has every feedback slot empty, which encodes
// identically to a transcript recorded before feedback existed modulo
// the wire version byte (see internal/wire).
type Transcript struct {
	rounds   [][]message
	feedback []message // feedback[r] is the referee's broadcast after round r
}

// NewTranscript returns an empty transcript with no sealed rounds.
func NewTranscript() *Transcript { return &Transcript{} }

// Rounds returns the number of sealed (completed) rounds.
func (t *Transcript) Rounds() int { return len(t.rounds) }

// Message returns a fresh reader over player v's broadcast in the given
// sealed round. Each call returns an independent reader; readers never
// share position state.
func (t *Transcript) Message(round, v int) *bitio.Reader {
	m := t.rounds[round][v]
	return bitio.NewReader(m.buf, m.nbit)
}

// BitLen returns the length in bits of player v's broadcast in the given
// sealed round.
func (t *Transcript) BitLen(round, v int) int { return t.rounds[round][v].nbit }

// Players returns the number of player slots in the given sealed round.
// Every round of an engine execution has one slot per vertex; the wire
// codec (internal/wire) uses this to serialize rounds without needing the
// graph that produced them.
func (t *Transcript) Players(round int) int { return len(t.rounds[round]) }

// SealRound appends one completed round of broadcasts, copying each
// writer's bits so the sealed round is immune to later writer mutation.
// A nil writer seals as an empty message. The engine calls this exactly
// once per round after the round's barrier; it is exported so reference
// executors (tests, the golden sequential baseline) can build transcripts
// under the same immutability contract.
func (t *Transcript) SealRound(msgs []*bitio.Writer) {
	sealed := make([]message, len(msgs))
	for v, w := range msgs {
		if w == nil || w.Len() == 0 {
			continue
		}
		if w.Owned() {
			// Ownership-transferring writer (block path): steal the
			// buffer instead of copying. Detach severs the writer from
			// the bits, so the immutability guarantee holds identically.
			buf, nbit := w.Detach()
			sealed[v] = message{buf: buf, nbit: nbit}
			continue
		}
		buf := make([]byte, len(w.Bytes()))
		copy(buf, w.Bytes())
		sealed[v] = message{buf: buf, nbit: w.Len()}
	}
	t.rounds = append(t.rounds, sealed)
	t.feedback = append(t.feedback, message{})
}

// SealFeedback records the referee's feedback broadcast for the most
// recently sealed round, copying the writer's bits under the same
// immutability contract as SealRound. A nil or empty writer leaves the
// slot empty — the transcript of a silent or non-adaptive referee. The
// engine calls this exactly once per round, single-threaded at the round
// barrier; it panics if no round has been sealed or the slot is already
// filled, because feedback written at any other time could race with the
// next round's broadcasts.
func (t *Transcript) SealFeedback(w *bitio.Writer) {
	if len(t.feedback) == 0 {
		panic("engine: SealFeedback before any SealRound")
	}
	last := len(t.feedback) - 1
	if t.feedback[last].nbit != 0 {
		panic("engine: feedback already sealed for the current round")
	}
	if w == nil || w.Len() == 0 {
		return
	}
	if w.Owned() {
		buf, nbit := w.Detach()
		t.feedback[last] = message{buf: buf, nbit: nbit}
		return
	}
	buf := make([]byte, len(w.Bytes()))
	copy(buf, w.Bytes())
	t.feedback[last] = message{buf: buf, nbit: w.Len()}
}

// Feedback returns a fresh reader over the referee's feedback broadcast
// sealed after the given round. An empty slot (non-adaptive protocol, or
// a referee with nothing to say) yields an empty reader.
func (t *Transcript) Feedback(round int) *bitio.Reader {
	m := t.feedback[round]
	return bitio.NewReader(m.buf, m.nbit)
}

// FeedbackBitLen returns the length in bits of the referee's feedback
// broadcast sealed after the given round (0 for an empty slot).
func (t *Transcript) FeedbackBitLen(round int) int { return t.feedback[round].nbit }

package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/agm"
	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/rng"
)

// sequentialTranscript is an independent reference executor: the plain
// one-vertex-at-a-time loop the repo used before the engine existed,
// extended with the referee's feedback step for adaptive protocols. The
// golden tests compare every engine transcript bit against it.
func sequentialTranscript(t *testing.T, p engine.Broadcaster, g *graph.Graph, coins *rng.PublicCoins) *engine.Transcript {
	t.Helper()
	views := core.Views(g)
	adaptive, _ := p.(engine.Adaptive)
	tr := engine.NewTranscript()
	for round := 0; round < p.Rounds(); round++ {
		msgs := make([]*bitio.Writer, len(views))
		for v, view := range views {
			w, err := p.Broadcast(round, view, tr, coins)
			if err != nil {
				t.Fatalf("reference: round %d player %d: %v", round, v, err)
			}
			msgs[v] = w
		}
		tr.SealRound(msgs)
		if adaptive != nil {
			fb, err := adaptive.Feedback(round, tr, coins)
			if err != nil {
				t.Fatalf("reference: feedback after round %d: %v", round, err)
			}
			tr.SealFeedback(fb)
			bitio.Release(fb)
		}
	}
	return tr
}

// transcriptBits flattens a transcript into per-(round,vertex) bit
// strings.
func transcriptBits(t *testing.T, tr *engine.Transcript, n int) [][]string {
	t.Helper()
	out := make([][]string, tr.Rounds())
	for r := 0; r < tr.Rounds(); r++ {
		out[r] = make([]string, n)
		for v := 0; v < n; v++ {
			var sb strings.Builder
			rd := tr.Message(r, v)
			if rd.Remaining() != tr.BitLen(r, v) {
				t.Fatalf("round %d vertex %d: Remaining %d != BitLen %d", r, v, rd.Remaining(), tr.BitLen(r, v))
			}
			for rd.Remaining() > 0 {
				b, err := rd.ReadBit()
				if err != nil {
					t.Fatal(err)
				}
				if b {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			out[r][v] = sb.String()
		}
	}
	return out
}

// goldenCase runs one protocol through the engine at several worker
// counts and asserts every transcript bit equals the sequential
// reference. newProto must return a fresh protocol instance per call
// (protocols may memoize per-run state).
func goldenCase[O any](t *testing.T, name string, newProto func() engine.Protocol[O], g *graph.Graph, coins *rng.PublicCoins) {
	t.Helper()
	ref := sequentialTranscript(t, newProto(), g, coins)
	want := transcriptBits(t, ref, g.N())

	for _, workers := range []int{1, 2, 8} {
		eng := &engine.Engine{Workers: workers, ShardSize: 3}
		tr, stats, err := eng.Execute(context.Background(), newProto(), g, coins)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", name, workers, err)
		}
		if tr.Rounds() != ref.Rounds() {
			t.Fatalf("%s workers=%d: %d rounds, want %d", name, workers, tr.Rounds(), ref.Rounds())
		}
		got := transcriptBits(t, tr, g.N())
		for r := range want {
			for v := range want[r] {
				if got[r][v] != want[r][v] {
					t.Fatalf("%s workers=%d: round %d vertex %d transcript differs:\n got %q\nwant %q",
						name, workers, r, v, got[r][v], want[r][v])
				}
			}
		}
		if int64(stats.Broadcasts) != int64(g.N()*ref.Rounds()) {
			t.Errorf("%s workers=%d: Broadcasts = %d, want %d", name, workers, stats.Broadcasts, g.N()*ref.Rounds())
		}

		// Outputs and bit accounting must match the sequential cclique
		// wrapper too.
		seqRes, err := cclique.Run[O](newProto(), g, coins)
		if err != nil {
			t.Fatal(err)
		}
		engRes, err := engine.Run[O](context.Background(), eng, newProto(), g, coins)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%v", engRes.Output) != fmt.Sprintf("%v", seqRes.Output) {
			t.Errorf("%s workers=%d: outputs differ", name, workers)
		}
		if engRes.Stats.MaxMessageBits != seqRes.MaxMessageBits || int(engRes.Stats.TotalBits) != seqRes.TotalBits {
			t.Errorf("%s workers=%d: bit accounting differs: (%d,%d) vs (%d,%d)", name, workers,
				engRes.Stats.MaxMessageBits, engRes.Stats.TotalBits, seqRes.MaxMessageBits, seqRes.TotalBits)
		}
	}
}

func TestGoldenDeterminismAGMOneRound(t *testing.T) {
	g := gen.Gnp(60, 0.15, rng.NewSource(11))
	coins := rng.NewPublicCoins(12)
	goldenCase[[]graph.Edge](t, "agm-spanning-forest", func() engine.Protocol[[]graph.Edge] {
		return &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{})}
	}, g, coins)
}

func TestGoldenDeterminismMatchprotoTwoRound(t *testing.T) {
	g := gen.Gnp(50, 0.3, rng.NewSource(13))
	coins := rng.NewPublicCoins(14)
	goldenCase[[]graph.Edge](t, "two-round-mm", func() engine.Protocol[[]graph.Edge] {
		return matchproto.NewTwoRound()
	}, g, coins)
}

// failingProtocol errors at one designated (round, vertex).
type failingProtocol struct {
	failRound, failVertex int
}

var errBoom = errors.New("boom")

func (p *failingProtocol) Name() string { return "failing" }
func (p *failingProtocol) Rounds() int  { return 3 }
func (p *failingProtocol) Broadcast(round int, view core.VertexView, _ *engine.Transcript, _ *rng.PublicCoins) (*bitio.Writer, error) {
	if round == p.failRound && view.ID == p.failVertex {
		return nil, errBoom
	}
	w := &bitio.Writer{}
	w.WriteUvarint(uint64(view.ID))
	return w, nil
}
func (p *failingProtocol) Decode(n int, _ *engine.Transcript, _ *rng.PublicCoins) (int, error) {
	return n, nil
}

func TestBroadcastErrorCancelsRun(t *testing.T) {
	g := gen.Path(40)
	for _, workers := range []int{1, 4} {
		eng := &engine.Engine{Workers: workers, ShardSize: 4}
		tr, stats, err := eng.Execute(context.Background(), &failingProtocol{failRound: 1, failVertex: 17}, g, rng.NewPublicCoins(1))
		if err == nil || !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: err = %v, want errBoom", workers, err)
		}
		if !strings.Contains(err.Error(), "round 1 player 17") {
			t.Errorf("workers=%d: error %q does not name round 1 player 17", workers, err)
		}
		// Partial results: round 0 sealed, round 1 not.
		if tr.Rounds() != 1 || stats.CompletedRounds != 1 {
			t.Errorf("workers=%d: sealed %d rounds (stats %d), want 1", workers, tr.Rounds(), stats.CompletedRounds)
		}
		if stats.Broadcasts < int64(g.N()) {
			t.Errorf("workers=%d: Broadcasts = %d, want >= %d (all of round 0)", workers, stats.Broadcasts, g.N())
		}
		if len(stats.RoundMaxBits) != 1 || len(stats.RoundWall) != 1 {
			t.Errorf("workers=%d: partial stats rounds = %d/%d, want 1/1", workers, len(stats.RoundMaxBits), len(stats.RoundWall))
		}
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := &engine.Engine{Workers: 2}
	_, stats, err := eng.Execute(ctx, &failingProtocol{failRound: -1}, gen.Path(10), rng.NewPublicCoins(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.CompletedRounds != 0 {
		t.Errorf("CompletedRounds = %d, want 0", stats.CompletedRounds)
	}
}

// retainingProtocol abuses the API: it keeps the writer it returned in
// round 0 and appends to it in round 1. The sealed transcript must not
// change.
type retainingProtocol struct {
	kept []*bitio.Writer
}

func (p *retainingProtocol) Name() string { return "retaining" }
func (p *retainingProtocol) Rounds() int  { return 2 }
func (p *retainingProtocol) Broadcast(round int, view core.VertexView, _ *engine.Transcript, _ *rng.PublicCoins) (*bitio.Writer, error) {
	if round == 0 {
		w := &bitio.Writer{}
		w.WriteUint(uint64(view.ID), 8)
		p.kept[view.ID] = w
		return w, nil
	}
	// Round 1: mutate the retained round-0 writer, then echo it.
	p.kept[view.ID].WriteUint(0xff, 8)
	return p.kept[view.ID], nil
}
func (p *retainingProtocol) Decode(n int, _ *engine.Transcript, _ *rng.PublicCoins) (int, error) {
	return n, nil
}

func TestSealedRoundsImmuneToWriterMutation(t *testing.T) {
	g := gen.Path(5)
	p := &retainingProtocol{kept: make([]*bitio.Writer, g.N())}
	eng := &engine.Engine{Workers: 1}
	tr, _, err := eng.Execute(context.Background(), p, g, rng.NewPublicCoins(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if got := tr.BitLen(0, v); got != 8 {
			t.Errorf("round 0 vertex %d: BitLen = %d, want 8 (sealed round mutated)", v, got)
		}
		id, err := tr.Message(0, v).ReadUint(8)
		if err != nil || int(id) != v {
			t.Errorf("round 0 vertex %d: payload = %d (err %v), want %d", v, id, err, v)
		}
		if got := tr.BitLen(1, v); got != 16 {
			t.Errorf("round 1 vertex %d: BitLen = %d, want 16", v, got)
		}
	}
}

func TestRunBatchOrderAndIsolation(t *testing.T) {
	coins := rng.NewPublicCoins(21)
	var jobs []engine.Job[[]graph.Edge]
	var graphs []*graph.Graph
	for i := 0; i < 6; i++ {
		g := gen.Gnp(30+5*i, 0.3, rng.NewSource(uint64(100+i)))
		graphs = append(graphs, g)
		jobs = append(jobs, engine.Job[[]graph.Edge]{
			Label:    fmt.Sprintf("mm/%d", i),
			Protocol: matchproto.NewTwoRound(),
			Graph:    g,
			Coins:    coins.DeriveIndex(i),
		})
	}

	want := make([][]graph.Edge, len(jobs))
	for i := range jobs {
		res, err := cclique.Run[[]graph.Edge](matchproto.NewTwoRound(), graphs[i], coins.DeriveIndex(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Output
	}

	for _, workers := range []int{1, 3, 8} {
		eng := &engine.Engine{Workers: workers}
		results, err := engine.RunBatch(context.Background(), eng, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(jobs))
		}
		for i, jr := range results {
			if jr.Label != jobs[i].Label {
				t.Errorf("workers=%d: result %d label %q, want %q", workers, i, jr.Label, jobs[i].Label)
			}
			if jr.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, jr.Err)
			}
			if fmt.Sprintf("%v", jr.Result.Output) != fmt.Sprintf("%v", want[i]) {
				t.Errorf("workers=%d job %d: output differs from sequential run", workers, i)
			}
		}
		sum := engine.Summarize(results)
		if sum.Jobs != len(jobs) || sum.Failed != 0 || sum.Broadcasts == 0 {
			t.Errorf("workers=%d: summary %+v", workers, sum)
		}
	}
}

func TestRunBatchIsolatesPerJobErrors(t *testing.T) {
	jobs := []engine.Job[int]{
		{Label: "ok", Protocol: &failingProtocol{failRound: -1}, Graph: gen.Path(8), Coins: rng.NewPublicCoins(1)},
		{Label: "bad", Protocol: &failingProtocol{failRound: 0, failVertex: 3}, Graph: gen.Path(8), Coins: rng.NewPublicCoins(2)},
		{Label: "ok2", Protocol: &failingProtocol{failRound: -1}, Graph: gen.Path(8), Coins: rng.NewPublicCoins(3)},
	}
	results, err := engine.RunBatch(context.Background(), &engine.Engine{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !errors.Is(results[1].Err, errBoom) {
		t.Errorf("job 1 err = %v, want errBoom", results[1].Err)
	}
	sum := engine.Summarize(results)
	if sum.Failed != 1 {
		t.Errorf("Failed = %d, want 1", sum.Failed)
	}
}

func TestCcliqueRunMatchesEngineRun(t *testing.T) {
	g := gen.Gnp(40, 0.25, rng.NewSource(5))
	coins := rng.NewPublicCoins(6)
	seq, err := cclique.Run[[]graph.Edge](matchproto.NewTwoRound(), g, coins)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.Run[[]graph.Edge](context.Background(), &engine.Engine{Workers: 4}, matchproto.NewTwoRound(), g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", seq.Output) != fmt.Sprintf("%v", eng.Output) {
		t.Error("cclique.Run and engine.Run outputs differ")
	}
	if seq.MaxMessageBits != eng.Stats.MaxMessageBits || seq.TotalBits != int(eng.Stats.TotalBits) {
		t.Error("cclique.Run and engine.Run bit accounting differ")
	}
}

package engine_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/matchproto"
	"repro/internal/rng"
)

func TestHistogramBuckets(t *testing.T) {
	var h engine.Histogram
	h.Observe(0) // empty bucket [0,1)
	h.Observe(1) // [1,2)
	h.Observe(2) // [2,4)
	h.Observe(3) // [2,4)
	h.Observe(17)
	got := h.Buckets()
	want := []engine.HistBucket{
		{Lo: 0, Hi: 1, Count: 1},
		{Lo: 1, Hi: 2, Count: 1},
		{Lo: 2, Hi: 4, Count: 2},
		{Lo: 16, Hi: 32, Count: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPeakGaugeConcurrent(t *testing.T) {
	var g engine.PeakGauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Enter()
				g.Exit()
			}
		}()
	}
	wg.Wait()
	if p := g.Peak(); p < 1 || p > 8 {
		t.Errorf("Peak = %d, want in [1,8]", p)
	}
}

func TestTimerSnapshot(t *testing.T) {
	var tm engine.Timer
	tm.Record(2 * time.Millisecond)
	tm.Record(6 * time.Millisecond)
	s := tm.Snapshot()
	if s.Count != 2 || s.Total != 8*time.Millisecond || s.Max != 6*time.Millisecond {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Avg() != 4*time.Millisecond {
		t.Errorf("Avg = %s, want 4ms", s.Avg())
	}
}

func TestWriteStatsRendersRun(t *testing.T) {
	g := gen.Gnp(40, 0.3, rng.NewSource(31))
	eng := &engine.Engine{Workers: 2, ShardSize: 5}
	res, err := engine.Run(context.Background(), eng, matchproto.NewTwoRound(), g, rng.NewPublicCoins(32))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.N != 40 || s.Rounds != 2 || s.CompletedRounds != 2 {
		t.Errorf("stats shape: %+v", s)
	}
	if s.Workers != 2 || s.ShardSize != 5 || s.Shards != 8 {
		t.Errorf("scheduling fields: workers=%d shard=%d shards=%d", s.Workers, s.ShardSize, s.Shards)
	}
	if s.Broadcasts != 80 {
		t.Errorf("Broadcasts = %d, want 80", s.Broadcasts)
	}
	if s.PeakInFlight < 1 || s.PeakInFlight > 2 {
		t.Errorf("PeakInFlight = %d, want in [1,2]", s.PeakInFlight)
	}
	var total int64
	for _, b := range s.Hist {
		total += b.Count
	}
	if total != s.Broadcasts {
		t.Errorf("histogram counts %d messages, want %d", total, s.Broadcasts)
	}
	if len(s.RoundMaxBits) != 2 || len(s.RoundWall) != 2 {
		t.Errorf("per-round slices: %v / %v", s.RoundMaxBits, s.RoundWall)
	}

	var sb strings.Builder
	if err := engine.WriteStats(&sb, &s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"engine run: two-round-filtering-mm",
		"n=40 rounds=2/2 workers=2 shard-size=5 shards=8",
		"broadcasts=80",
		"round 0:", "round 1:",
		"message bits histogram:",
		"peak-in-flight=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteStats output missing %q:\n%s", want, out)
		}
	}
}

package engine

import (
	"context"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Job is one (protocol, graph, coins) execution in a batch. Each job must
// carry its own protocol instance: protocol values may memoize per-run
// state, so sharing one across concurrent jobs is not allowed.
type Job[O any] struct {
	// Label names the job in results (e.g. "mm/n400/trial3").
	Label    string
	Protocol Protocol[O]
	Graph    *graph.Graph
	Coins    *rng.PublicCoins
}

// JobResult pairs a job's label with its outcome. Err is the job's own
// failure; other jobs in the batch still run.
type JobResult[O any] struct {
	Label  string
	Result Result[O]
	Err    error
}

// BatchStats aggregates a batch run.
type BatchStats struct {
	Jobs           int
	Failed         int
	Broadcasts     int64
	TotalBits      int64
	MaxMessageBits int
	// Wall is the end-to-end batch wall time; Summarize leaves it zero,
	// the caller owns it.
	Wall time.Duration
}

// RunBatch executes jobs across a shared pool of e.Workers job-level
// workers; inside the pool each job runs sequentially, which is the shape
// experiment sweeps need (many independent small runs) and keeps every
// job bit-identical to a standalone sequential execution. Results are
// returned in job order regardless of completion order. Per-job errors
// land in the corresponding JobResult; RunBatch itself returns an error
// only when ctx is cancelled, and then the already-finished results are
// still returned.
func RunBatch[O any](ctx context.Context, e *Engine, jobs []Job[O]) ([]JobResult[O], error) {
	results := make([]JobResult[O], len(jobs))
	for i, job := range jobs {
		results[i].Label = job.Label
	}
	workers := min(e.workerCount(), len(jobs))
	inner := &Engine{Workers: 1, ShardSize: e.ShardSize}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := Run(ctx, inner, jobs[i].Protocol, jobs[i].Graph, jobs[i].Coins)
				results[i].Result, results[i].Err = res, err
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return results, ctx.Err()
}

// Summarize folds per-job stats into one BatchStats (Wall left zero; the
// caller owns end-to-end timing).
func Summarize[O any](results []JobResult[O]) BatchStats {
	var s BatchStats
	s.Jobs = len(results)
	for i := range results {
		if results[i].Err != nil {
			s.Failed++
			continue
		}
		st := &results[i].Result.Stats
		s.Broadcasts += st.Broadcasts
		s.TotalBits += st.TotalBits
		if st.MaxMessageBits > s.MaxMessageBits {
			s.MaxMessageBits = st.MaxMessageBits
		}
	}
	return s
}

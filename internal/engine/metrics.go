package engine

// This file is the engine's metrics registry: lock-free counters, a peak
// gauge, a power-of-two bit-size histogram, and wall-time timers, all
// snapshotted into the typed RunStats that Run and Execute return.

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// PeakGauge tracks a current value and the maximum it ever reached.
// Enter/Exit are safe for concurrent use; the engine uses one to measure
// peak in-flight Broadcast calls.
type PeakGauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Enter increments the gauge and folds the new value into the peak.
func (g *PeakGauge) Enter() {
	v := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Exit decrements the gauge.
func (g *PeakGauge) Exit() { g.cur.Add(-1) }

// Peak returns the maximum concurrent value observed.
func (g *PeakGauge) Peak() int64 { return g.peak.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds empty messages, bucket i holds lengths in [2^(i-1), 2^i).
const histBuckets = 40

// Histogram counts message bit-lengths in power-of-two buckets.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
}

// Observe records one message of the given bit length.
func (h *Histogram) Observe(bitLen int) {
	i := bits.Len64(uint64(bitLen)) // 0 for empty, else floor(log2)+1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// Buckets returns the non-zero buckets as (lo, hi, count) triples where
// counts cover bit lengths in [lo, hi).
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := 0, 1
		if i > 0 {
			lo, hi = 1<<(i-1), 1<<i
		}
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// HistBucket is one rendered histogram bucket: Count messages with bit
// lengths in [Lo, Hi).
type HistBucket struct {
	Lo, Hi int
	Count  int64
}

// Timer aggregates wall-clock durations: count, total, and maximum.
// Record is safe for concurrent use.
type Timer struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds
}

// Record folds one duration into the timer.
func (t *Timer) Record(d time.Duration) {
	t.count.Add(1)
	t.total.Add(int64(d))
	for {
		m := t.max.Load()
		if int64(d) <= m || t.max.CompareAndSwap(m, int64(d)) {
			return
		}
	}
}

// Snapshot returns the timer's aggregates.
func (t *Timer) Snapshot() TimerStats {
	return TimerStats{
		Count: t.count.Load(),
		Total: time.Duration(t.total.Load()),
		Max:   time.Duration(t.max.Load()),
	}
}

// TimerStats is an immutable timer snapshot.
type TimerStats struct {
	Count int64
	Total time.Duration
	Max   time.Duration
}

// Avg returns the mean recorded duration (0 when nothing was recorded).
func (s TimerStats) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// RunStats reports one engine execution. All bit-accounting fields are
// deterministic — identical for every worker count on the same input —
// while the wall-time and peak-in-flight fields describe the particular
// execution.
type RunStats struct {
	// Protocol is the protocol's Name.
	Protocol string
	// N is the number of players (vertices).
	N int
	// Rounds is the number of broadcast rounds the protocol declares.
	Rounds int
	// CompletedRounds counts rounds actually sealed (< Rounds after an
	// error or cancellation).
	CompletedRounds int
	// Workers and ShardSize are the effective scheduling parameters.
	Workers   int
	ShardSize int
	// Shards is the number of vertex shards per round.
	Shards int

	// Broadcasts counts Broadcast calls that completed without error.
	Broadcasts int64
	// EmptyMessages counts zero-bit broadcasts.
	EmptyMessages int64

	// MaxMessageBits is the worst-case single message length over all
	// rounds and players — the model's communication cost measure.
	// Player messages only; referee feedback is accounted separately.
	MaxMessageBits int
	// RoundMaxBits[r] is the worst-case message length within round r.
	RoundMaxBits []int
	// RoundTotalBits[r] is the sum of message lengths within round r.
	RoundTotalBits []int64
	// TotalBits is the sum of all (player) message lengths.
	TotalBits int64
	// RoundBits[r] splits round r's communication between the players'
	// uplink and the referee's feedback downlink. The player fields
	// duplicate RoundMaxBits/RoundTotalBits (which predate adaptivity and
	// stay player-only for compatibility); the testing/quick property in
	// quick_test.go pins the consistency of the two views.
	RoundBits []RoundStats
	// FeedbackBits is the total referee feedback over all rounds — zero
	// for every non-adaptive protocol. Not included in TotalBits or
	// MaxMessageBits: the model's per-player cost measure is the uplink.
	FeedbackBits int64
	// Hist buckets every message's bit length by powers of two.
	Hist []HistBucket

	// RoundWall[r] is the wall time of round r's broadcast phase.
	RoundWall []time.Duration
	// ShardWall aggregates per-shard wall times across all rounds.
	ShardWall TimerStats
	// BroadcastWall is the wall time of all broadcast rounds combined.
	BroadcastWall time.Duration
	// DecodeWall is the referee's decode wall time (zero for Execute).
	DecodeWall time.Duration
	// TotalWall is the end-to-end wall time.
	TotalWall time.Duration

	// PeakInFlight is the maximum number of Broadcast calls observed
	// executing concurrently (1 for a sequential run).
	PeakInFlight int

	// Faults describes injected channel faults and the referee's
	// resilience verdict. The zero value means a clean, unfaulted run.
	Faults FaultStats
}

// RoundStats is one round's bit accounting split by direction: what the
// players sent up versus what the referee broadcast back down after the
// round barrier (engine.Adaptive feedback). All fields are deterministic
// — identical for every Workers setting.
type RoundStats struct {
	// PlayerBits is the sum of the round's player message lengths.
	PlayerBits int64
	// PlayerMaxBits is the round's longest single player message.
	PlayerMaxBits int
	// FeedbackBits is the length of the referee's feedback broadcast
	// sealed after the round (0 when the protocol is non-adaptive or the
	// referee stayed silent).
	FeedbackBits int
}

// FaultStats accounts for channel faults injected by internal/faults and
// the resilience verdict of the decode that ran over them. All fields are
// re-derived from the public fault coins over the sealed transcript, so
// they are deterministic — identical for every Workers setting.
type FaultStats struct {
	// Injected reports whether a fault plan was active at all.
	Injected bool
	// Dropped counts broadcasts replaced by empty messages.
	Dropped int
	// Corrupted counts broadcasts that had bits flipped (drops take
	// precedence: a message is never both).
	Corrupted int
	// FlippedBits is the total number of bit-flip injections applied.
	FlippedBits int
	// Straggled counts broadcasts that were artificially delayed.
	Straggled int
	// FeedbackDropped counts referee feedback broadcasts replaced by
	// empty messages (adaptive protocols under a feedback-faulting plan).
	FeedbackDropped int
	// FeedbackCorrupted counts referee feedback broadcasts that had bits
	// flipped (feedback drops take precedence, as for player messages).
	FeedbackCorrupted int
	// Resilience is the folded referee verdict for the run.
	Resilience core.Resilience
}

// AvgMessageBits returns the mean message length over all broadcasts.
func (s *RunStats) AvgMessageBits() float64 {
	if s.Broadcasts == 0 {
		return 0
	}
	return float64(s.TotalBits) / float64(s.Broadcasts)
}

// registry is the live metric set the engine updates during a run; it is
// snapshotted into RunStats once the run settles.
type registry struct {
	broadcasts Counter
	empty      Counter
	inFlight   PeakGauge
	hist       Histogram
	shardWall  Timer
}

// snapshot folds the registry's live metrics into stats.
func (r *registry) snapshot(stats *RunStats) {
	stats.Broadcasts = r.broadcasts.Value()
	stats.EmptyMessages = r.empty.Value()
	stats.Hist = r.hist.Buckets()
	stats.ShardWall = r.shardWall.Snapshot()
	stats.PeakInFlight = int(r.inFlight.Peak())
}

// WriteStats renders a human-readable report of one run.
func WriteStats(w io.Writer, s *RunStats) error {
	if _, err := fmt.Fprintf(w, "== engine run: %s ==\n", s.Protocol); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "n=%d rounds=%d/%d workers=%d shard-size=%d shards=%d\n",
		s.N, s.CompletedRounds, s.Rounds, s.Workers, s.ShardSize, s.Shards); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "broadcasts=%d empty=%d max=%d bits avg=%.1f bits total=%d bits\n",
		s.Broadcasts, s.EmptyMessages, s.MaxMessageBits, s.AvgMessageBits(), s.TotalBits); err != nil {
		return err
	}
	for r := 0; r < s.CompletedRounds; r++ {
		feedback := 0
		if r < len(s.RoundBits) {
			feedback = s.RoundBits[r].FeedbackBits
		}
		if _, err := fmt.Fprintf(w, "round %d: max=%d bits total=%d bits feedback=%d bits wall=%s\n",
			r, s.RoundMaxBits[r], s.RoundTotalBits[r], feedback, s.RoundWall[r]); err != nil {
			return err
		}
	}
	if s.FeedbackBits > 0 {
		if _, err := fmt.Fprintf(w, "referee feedback: total=%d bits\n", s.FeedbackBits); err != nil {
			return err
		}
	}
	if len(s.Hist) > 0 {
		if _, err := fmt.Fprint(w, "message bits histogram:"); err != nil {
			return err
		}
		for _, b := range s.Hist {
			if _, err := fmt.Fprintf(w, " [%d,%d)=%d", b.Lo, b.Hi, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "shards: %d timed, avg=%s max=%s\n",
		s.ShardWall.Count, s.ShardWall.Avg(), s.ShardWall.Max); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "wall: broadcast=%s decode=%s total=%s peak-in-flight=%d\n",
		s.BroadcastWall, s.DecodeWall, s.TotalWall, s.PeakInFlight); err != nil {
		return err
	}
	if s.Faults.Injected {
		if _, err := fmt.Fprintf(w, "faults: dropped=%d corrupted=%d flipped-bits=%d straggled=%d fb-dropped=%d fb-corrupted=%d resilience=%s\n",
			s.Faults.Dropped, s.Faults.Corrupted, s.Faults.FlippedBits,
			s.Faults.Straggled, s.Faults.FeedbackDropped, s.Faults.FeedbackCorrupted,
			s.Faults.Resilience); err != nil {
			return err
		}
	}
	return nil
}

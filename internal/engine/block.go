package engine

import (
	"sync/atomic"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/rng"
)

// BlockBroadcaster is the optional columnar fast path of a Broadcaster:
// a protocol that can compute a whole shard of per-vertex messages in
// one call, amortizing per-message setup (spec walks, sketch state,
// serialization growth) across the shard. The engine uses it per shard
// when available and enabled, falling back to per-vertex Broadcast
// otherwise.
//
// Contract: BroadcastBlock(round, views, t, coins, out) must fill
// out[i] with exactly the bits Broadcast(round, views[i], t, coins)
// would produce — the block path is a speed lever, never a semantic one,
// so transcripts stay byte-identical across paths and across any
// Workers/ShardSize setting (wire/block_parity_test.go enforces this
// over every registered protocol). On error it returns the index within
// views of the failing vertex so the engine's deterministic
// first-failure rule keeps reporting the lowest (round, vertex).
//
// Writers placed in out may be ownership-transferring
// (bitio.NewOwnedWriter): SealRound then steals their buffers instead of
// copying, which is where the block path's last memmove goes away.
type BlockBroadcaster interface {
	Broadcaster
	BroadcastBlock(round int, views []core.VertexView, transcript *Transcript, coins *rng.PublicCoins, out []*bitio.Writer) (int, error)
}

// blockExecution is the process-wide toggle for the columnar fast path,
// on by default. It is a package global because engines are constructed
// deep inside the service layers (wire.ExecuteSpec, the referee server);
// the CLI -block flags flip it once at startup. Per-engine opt-out is
// Engine.DisableBlock.
var blockExecution atomic.Bool

func init() { blockExecution.Store(true) }

// SetBlockExecution enables or disables the columnar fast path
// process-wide. Transcripts are byte-identical either way; only speed
// changes.
func SetBlockExecution(on bool) { blockExecution.Store(on) }

// BlockExecutionEnabled reports the process-wide toggle.
func BlockExecutionEnabled() bool { return blockExecution.Load() }

// blockFor resolves the block path for p: non-nil only when p implements
// BlockBroadcaster and neither the process-wide toggle nor the engine's
// DisableBlock opts out.
func (e *Engine) blockFor(p Broadcaster) BlockBroadcaster {
	if e != nil && e.DisableBlock {
		return nil
	}
	if !blockExecution.Load() {
		return nil
	}
	block, _ := p.(BlockBroadcaster)
	return block
}

package engine_test

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/agm"
	"repro/internal/cclique"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// checkRoundBits asserts the RoundBits invariants on one run's stats:
// the per-round split is consistent with the aggregate player-only
// measures (RoundMaxBits, RoundTotalBits, TotalBits) and the feedback
// total, and player-only cost fields never absorb referee downlink bits.
func checkRoundBits(t *testing.T, label string, stats *engine.RunStats, wantAdaptive bool) bool {
	t.Helper()
	if len(stats.RoundBits) != stats.CompletedRounds {
		t.Errorf("%s: %d RoundBits entries, %d completed rounds", label, len(stats.RoundBits), stats.CompletedRounds)
		return false
	}
	var playerSum, feedbackSum int64
	for i, rb := range stats.RoundBits {
		playerSum += rb.PlayerBits
		feedbackSum += int64(rb.FeedbackBits)
		if rb.PlayerBits != stats.RoundTotalBits[i] {
			t.Errorf("%s: round %d PlayerBits %d != RoundTotalBits %d", label, i, rb.PlayerBits, stats.RoundTotalBits[i])
			return false
		}
		if rb.PlayerMaxBits != stats.RoundMaxBits[i] {
			t.Errorf("%s: round %d PlayerMaxBits %d != RoundMaxBits %d", label, i, rb.PlayerMaxBits, stats.RoundMaxBits[i])
			return false
		}
		if rb.FeedbackBits < 0 {
			t.Errorf("%s: round %d negative FeedbackBits %d", label, i, rb.FeedbackBits)
			return false
		}
	}
	if playerSum != stats.TotalBits {
		t.Errorf("%s: RoundBits player sum %d != TotalBits %d", label, playerSum, stats.TotalBits)
		return false
	}
	if feedbackSum != stats.FeedbackBits {
		t.Errorf("%s: RoundBits feedback sum %d != FeedbackBits %d", label, feedbackSum, stats.FeedbackBits)
		return false
	}
	if !wantAdaptive && stats.FeedbackBits != 0 {
		t.Errorf("%s: non-adaptive run reports %d feedback bits", label, stats.FeedbackBits)
		return false
	}
	if wantAdaptive && stats.FeedbackBits == 0 {
		t.Errorf("%s: adaptive run reports zero feedback bits", label)
		return false
	}
	return true
}

// TestQuickRoundBitsInvariants drives randomized (graph, coins, workers)
// configurations through an adaptive two-round protocol, a non-adaptive
// one-round protocol, and the MIS two-round protocol, checking the
// RoundBits accounting invariants on every run.
func TestQuickRoundBitsInvariants(t *testing.T) {
	type variant struct {
		name     string
		adaptive bool
		build    func() engine.Broadcaster
	}
	variants := []variant{
		{"mm-tworound", true, func() engine.Broadcaster { return matchproto.NewTwoRound() }},
		{"mis-tworound", true, func() engine.Broadcaster { return misproto.NewTwoRound() }},
		{"agm-forest", false, func() engine.Broadcaster {
			return &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{})}
		}},
	}
	prop := func(seed uint64, nRaw uint8, pRaw uint16, workersRaw uint8) bool {
		n := 8 + int(nRaw)%48                     // 8..55 vertices
		p := 0.05 + float64(pRaw%1000)/1000.0*0.4 // density 0.05..0.45
		workers := 1 + int(workersRaw)%8          // 1..8 workers
		g := gen.Gnp(n, p, rng.NewSource(seed))
		coins := rng.NewPublicCoins(seed ^ 0x9e3779b97f4a7c15)
		for _, v := range variants {
			eng := &engine.Engine{Workers: workers, ShardSize: 3}
			_, stats, err := eng.Execute(context.Background(), v.build(), g, coins)
			if err != nil {
				t.Errorf("%s: %v", v.name, err)
				return false
			}
			if !checkRoundBits(t, v.name, stats, v.adaptive) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

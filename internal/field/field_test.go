package field

import (
	"math/big"
	"testing"
	"testing/quick"
)

func bigP() *big.Int { return new(big.Int).SetUint64(P) }

func TestReduce(t *testing.T) {
	cases := []struct {
		in   uint64
		want Elem
	}{
		{0, 0},
		{1, 1},
		{P - 1, Elem(P - 1)},
		{P, 0},
		{P + 1, 1},
		{2 * P, 0},
		{^uint64(0), Elem((^uint64(0)) % P)},
	}
	for _, c := range cases {
		if got := Reduce(c.in); got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestReduceMatchesBigIntQuick(t *testing.T) {
	f := func(x uint64) bool {
		want := new(big.Int).Mod(new(big.Int).SetUint64(x), bigP()).Uint64()
		return uint64(Reduce(x)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubNeg(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := Reduce(x), Reduce(y)
		s := Add(a, b)
		if Sub(s, b) != a || Sub(s, a) != b {
			return false
		}
		return Add(a, Neg(a)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBigIntQuick(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := Reduce(x), Reduce(y)
		prod := new(big.Int).Mul(new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(uint64(b)))
		want := prod.Mod(prod, bigP()).Uint64()
		return uint64(Mul(a, b)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMulEdgeCases(t *testing.T) {
	max := Elem(P - 1)
	if got := Mul(max, max); got != 1 {
		// (-1)*(-1) = 1
		t.Errorf("Mul(P-1, P-1) = %d, want 1", got)
	}
	if got := Mul(max, 2); got != Elem(P-2) {
		t.Errorf("Mul(P-1, 2) = %d, want %d", got, P-2)
	}
	if got := Mul(0, max); got != 0 {
		t.Errorf("Mul(0, P-1) = %d, want 0", got)
	}
}

func TestPow(t *testing.T) {
	if got := Pow(2, 61); got != 1 {
		// 2^61 = P+1 ≡ 1
		t.Errorf("Pow(2,61) = %d, want 1", got)
	}
	if got := Pow(3, 0); got != 1 {
		t.Errorf("Pow(3,0) = %d, want 1", got)
	}
	if got := Pow(5, 1); got != 5 {
		t.Errorf("Pow(5,1) = %d, want 5", got)
	}
	// Fermat's little theorem: a^(P-1) = 1 for a != 0.
	for _, a := range []Elem{1, 2, 12345, Elem(P - 1)} {
		if got := Pow(a, P-1); got != 1 {
			t.Errorf("Pow(%d, P-1) = %d, want 1", a, got)
		}
	}
}

func TestInv(t *testing.T) {
	if Inv(0) != 0 {
		t.Error("Inv(0) != 0")
	}
	f := func(x uint64) bool {
		a := Reduce(x)
		if a == 0 {
			a = 1
		}
		return Mul(a, Inv(a)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEvalPoly(t *testing.T) {
	// p(x) = 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38.
	coeffs := []Elem{3, 2, 1}
	if got := EvalPoly(coeffs, 5); got != 38 {
		t.Errorf("EvalPoly = %d, want 38", got)
	}
	if got := EvalPoly(nil, 7); got != 0 {
		t.Errorf("EvalPoly(nil) = %d, want 0", got)
	}
	if got := EvalPoly([]Elem{9}, 1000); got != 9 {
		t.Errorf("constant poly = %d, want 9", got)
	}
}

func TestDistributivityQuick(t *testing.T) {
	f := func(x, y, z uint64) bool {
		a, b, c := Reduce(x), Reduce(y), Reduce(z)
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := Reduce(0xdeadbeefcafebabe), Reduce(0x123456789abcdef)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	x := Reduce(0xdeadbeefcafebabe)
	for i := 0; i < b.N; i++ {
		x = Inv(x + Elem(1))
	}
	_ = x
}

// Package field implements arithmetic in GF(p) for the Mersenne prime
// p = 2^61 - 1.
//
// The field underlies the k-wise independent hash families in package
// hashing and the polynomial fingerprints used by one-sparse recovery in
// package l0. A Mersenne modulus admits fast reduction without division.
package field

import "math/bits"

// P is the field modulus, the Mersenne prime 2^61 - 1.
const P uint64 = (1 << 61) - 1

// Elem is an element of GF(P), kept reduced to [0, P).
type Elem uint64

// Reduce maps an arbitrary uint64 into [0, P).
func Reduce(x uint64) Elem {
	// x = hi*2^61 + lo  =>  x ≡ hi + lo (mod 2^61-1)
	v := (x >> 61) + (x & uint64(P))
	if v >= P {
		v -= P
	}
	return Elem(v)
}

// Add returns a + b mod P.
func Add(a, b Elem) Elem {
	v := uint64(a) + uint64(b)
	if v >= P {
		v -= P
	}
	return Elem(v)
}

// Sub returns a - b mod P.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + Elem(P) - b
}

// Neg returns -a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P) - a
}

// Mul returns a * b mod P using 128-bit intermediate products.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo ≡ 8*hi + lo (mod 2^61-1),
	// and lo itself reduces as (lo >> 61) + (lo & P).
	v := hi<<3 | lo>>61 // combined high part, < 2^64-ish but small enough
	w := (lo & uint64(P)) + (v & uint64(P)) + (v >> 61)
	for w >= P {
		w -= P
	}
	return Elem(w)
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a, or 0 when a is 0.
func Inv(a Elem) Elem {
	if a == 0 {
		return 0
	}
	// Fermat: a^(P-2) = a^{-1} in GF(P).
	return Pow(a, P-2)
}

// EvalPoly evaluates the polynomial with the given coefficients
// (coeffs[0] is the constant term) at x, by Horner's rule.
func EvalPoly(coeffs []Elem, x Elem) Elem {
	var acc Elem
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = Add(Mul(acc, x), coeffs[i])
	}
	return acc
}

package field

// Slice kernels for the block sketching path. The scalar ops (Add, Mul,
// PowTable.Pow) are exact, so each kernel is value-identical to calling
// its scalar counterpart per element — the batched forms only amortize
// call overhead, bounds checks, and table-row cache misses across a block
// of lanes. Every kernel is allocation-free.

// AddBlock sets dst[i] = Add(dst[i], src[i]). The slices must have equal
// length.
func AddBlock(dst, src []Elem) {
	if len(dst) != len(src) {
		panic("field: AddBlock length mismatch")
	}
	for i, s := range src {
		v := uint64(dst[i]) + uint64(s)
		if v >= P {
			v -= P
		}
		dst[i] = Elem(v)
	}
}

// AddScalarBlock sets dst[i] = Add(dst[i], c). This is the block update's
// scatter kernel: an ℓ₀ update at level ℓ adds the same term to the cells
// of levels 0..ℓ, which the bank stores contiguously per lane.
func AddScalarBlock(dst []Elem, c Elem) {
	for i, d := range dst {
		v := uint64(d) + uint64(c)
		if v >= P {
			v -= P
		}
		dst[i] = Elem(v)
	}
}

// MulBlock sets dst[i] = Mul(dst[i], src[i]). The slices must have equal
// length.
func MulBlock(dst, src []Elem) {
	if len(dst) != len(src) {
		panic("field: MulBlock length mismatch")
	}
	for i, s := range src {
		dst[i] = Mul(dst[i], s)
	}
}

// ReduceBlock sets dst[i] = Reduce(src[i]). The slices must have equal
// length.
func ReduceBlock(dst []Elem, src []uint64) {
	if len(dst) != len(src) {
		panic("field: ReduceBlock length mismatch")
	}
	for i, x := range src {
		v := (x >> 61) + (x & uint64(P))
		if v >= P {
			v -= P
		}
		dst[i] = Elem(v)
	}
}

// powGatherChunk bounds the stack scratch of PowBlock's window passes.
const powGatherChunk = 64

// PowBlock sets dst[i] = Pow(es[i]) for the table's fixed base. Instead
// of walking all windows per exponent (Pow), it sweeps the block one
// window at a time: window w's 2 KiB table row stays cache-hot across
// the whole block, rows beyond the block's maximum exponent are skipped
// entirely, and the per-window products fold in through MulBlock. Values
// are identical to Pow — a zero window digit selects win[w][0] = 1, the
// multiplicative identity Pow skips.
func (t *PowTable) PowBlock(dst []Elem, es []uint64) {
	if len(dst) != len(es) {
		panic("field: PowBlock length mismatch")
	}
	var maxE uint64
	for i, e := range es {
		dst[i] = t.win[0][e&(powWindowSize-1)]
		maxE |= e
	}
	var tmp [powGatherChunk]Elem
	for w := 1; w < powWindows; w++ {
		shift := uint(w * powWindowBits)
		if maxE>>shift == 0 {
			break
		}
		row := &t.win[w]
		for lo := 0; lo < len(es); lo += powGatherChunk {
			hi := lo + powGatherChunk
			if hi > len(es) {
				hi = len(es)
			}
			gather := tmp[:hi-lo]
			for i := range gather {
				gather[i] = row[(es[lo+i]>>shift)&(powWindowSize-1)]
			}
			MulBlock(dst[lo:hi], gather)
		}
	}
}

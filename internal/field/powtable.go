package field

import "sync"

// This file holds the amortized-exponentiation machinery behind the
// sketch hot path. A OneSparse fingerprint update needs z^{e} for a
// per-update exponent e; the naive square-and-multiply chain in Pow costs
// ~61 squarings plus up to 61 multiplies per call. A PowTable fixes the
// base once and answers any 64-bit exponent with at most powWindows-1
// multiplies by precomputing all window digits — the classic fixed-base
// windowed method. The table is immutable after construction, so it can
// be shared freely across goroutines (the execution engine's workers all
// read the same per-Spec table).

const (
	// powWindowBits is the window width in bits. 8 gives 256-entry
	// windows: 8 windows cover a full 64-bit exponent, each lookup
	// replacing 8 square-and-multiply steps by one table multiply.
	powWindowBits = 8
	powWindowSize = 1 << powWindowBits
	// powWindows covers any uint64 exponent (64 / powWindowBits).
	powWindows = 64 / powWindowBits
)

// PowTable answers a^e for a fixed base a and arbitrary e in at most
// powWindows-1 multiplies. Memory cost: powWindows × powWindowSize
// elements (16 KiB at the current parameters) per base.
type PowTable struct {
	// win[w][b] = base^(b << (powWindowBits*w)).
	win [powWindows][powWindowSize]Elem
}

// NewPowTable builds the windowed table for the given base. Construction
// costs powWindows × powWindowSize multiplies (~2k), amortized by the
// millions of Pow calls a sketch run issues against one base.
func NewPowTable(base Elem) *PowTable {
	t := &PowTable{}
	step := base // base^(2^(powWindowBits*w)) for the current window
	for w := 0; w < powWindows; w++ {
		t.win[w][0] = 1
		for b := 1; b < powWindowSize; b++ {
			t.win[w][b] = Mul(t.win[w][b-1], step)
		}
		// Advance to the next window's generator: step^powWindowSize.
		step = Mul(t.win[w][powWindowSize-1], step)
	}
	return t
}

// Pow returns base^e. The result is bit-identical to Pow(base, e): both
// compute the same product of the same field elements, and GF(p)
// multiplication is exact.
func (t *PowTable) Pow(e uint64) Elem {
	result := Elem(1)
	started := false
	for w := 0; e != 0; w++ {
		b := e & (powWindowSize - 1)
		e >>= powWindowBits
		if b == 0 {
			continue
		}
		if !started {
			result = t.win[w][b]
			started = true
			continue
		}
		result = Mul(result, t.win[w][b])
	}
	return result
}

// invCacheMax bounds the magnitude of cached inverses. Decode paths
// invert OneSparse value sums, which for graph sketches are tiny signed
// edge multiplicities (almost always ±1), so a small table captures
// nearly every referee-side inversion.
const invCacheMax = 256

var (
	invCacheOnce sync.Once
	invCache     [invCacheMax + 1]Elem
)

// CachedInv returns Inv(a), serving small-magnitude arguments (|v| ≤
// invCacheMax for v or -v ≡ a mod P) from a lazily-built table instead of
// the full Pow(a, P-2) Fermat chain. Results are identical to Inv for
// every input; only the cost differs.
func CachedInv(a Elem) Elem {
	if a == 0 {
		return 0
	}
	if uint64(a) <= invCacheMax {
		invCacheOnce.Do(buildInvCache)
		return invCache[a]
	}
	if uint64(a) >= P-invCacheMax {
		// a ≡ -(P-a): Inv(-x) = -Inv(x).
		invCacheOnce.Do(buildInvCache)
		return Neg(invCache[P-uint64(a)])
	}
	return Inv(a)
}

func buildInvCache() {
	for v := uint64(1); v <= invCacheMax; v++ {
		invCache[v] = Inv(Elem(v))
	}
}

package field

import (
	"testing"

	"repro/internal/rng"
)

// TestPowTableMatchesPow: the windowed fixed-base table must agree with
// naive square-and-multiply on edge-case and random exponents — the
// transcript-determinism contract rides on this equality.
func TestPowTableMatchesPow(t *testing.T) {
	src := rng.NewSource(7)
	bases := []Elem{0, 1, 2, 3, Elem(P - 1), Elem(P - 2), Reduce(src.Uint64()), Reduce(src.Uint64())}
	exps := []uint64{0, 1, 2, 3, 61, 63, 64, 255, 256, 257, 1 << 20, P - 2, P - 1, P, ^uint64(0)}
	for _, base := range bases {
		tab := NewPowTable(base)
		for _, e := range exps {
			if got, want := tab.Pow(e), Pow(base, e); got != want {
				t.Fatalf("PowTable(%d).Pow(%d) = %d, want %d", base, e, got, want)
			}
		}
		for i := 0; i < 200; i++ {
			e := src.Uint64()
			if got, want := tab.Pow(e), Pow(base, e); got != want {
				t.Fatalf("PowTable(%d).Pow(%d) = %d, want %d", base, e, got, want)
			}
		}
	}
}

// TestCachedInvMatchesInv: the cached small-magnitude inverse path must
// be indistinguishable from the Fermat chain.
func TestCachedInvMatchesInv(t *testing.T) {
	cases := []Elem{0, 1, 2, 3, invCacheMax - 1, invCacheMax, invCacheMax + 1,
		Elem(P - 1), Elem(P - 2), Elem(P - invCacheMax), Elem(P - invCacheMax - 1)}
	src := rng.NewSource(9)
	for i := 0; i < 100; i++ {
		cases = append(cases, Reduce(src.Uint64()))
	}
	for _, a := range cases {
		if got, want := CachedInv(a), Inv(a); got != want {
			t.Fatalf("CachedInv(%d) = %d, want %d", a, got, want)
		}
		if a != 0 {
			if p := Mul(a, CachedInv(a)); p != 1 {
				t.Fatalf("a * CachedInv(a) = %d for a = %d, want 1", p, a)
			}
		}
	}
}

var benchSink Elem

// BenchmarkFieldPowNaive is the pre-PR per-update exponentiation cost:
// one full square-and-multiply chain over a 61-bit exponent.
func BenchmarkFieldPowNaive(b *testing.B) {
	base := Reduce(0x9e3779b97f4a7c15)
	var acc Elem
	for i := 0; i < b.N; i++ {
		acc ^= Pow(base, uint64(i)|1<<60)
	}
	benchSink = acc
}

// BenchmarkFieldPowWindowed is the same exponentiation served by the
// fixed-base window table (construction cost excluded: one table serves
// millions of updates per Spec).
func BenchmarkFieldPowWindowed(b *testing.B) {
	tab := NewPowTable(Reduce(0x9e3779b97f4a7c15))
	b.ResetTimer()
	var acc Elem
	for i := 0; i < b.N; i++ {
		acc ^= tab.Pow(uint64(i) | 1<<60)
	}
	benchSink = acc
}

// BenchmarkFieldPowTableBuild measures the amortized table construction.
func BenchmarkFieldPowTableBuild(b *testing.B) {
	base := Reduce(0x9e3779b97f4a7c15)
	for i := 0; i < b.N; i++ {
		benchSink = NewPowTable(base).win[0][1]
	}
}

// BenchmarkFieldInv is the full Fermat inversion the decode path used to
// pay per OneSparse recovery.
func BenchmarkFieldInv(b *testing.B) {
	var acc Elem
	for i := 0; i < b.N; i++ {
		acc ^= Inv(Elem(i%invCacheMax + 1))
	}
	benchSink = acc
}

// BenchmarkFieldInvCached is the same small-magnitude inversions served
// from the cache.
func BenchmarkFieldInvCached(b *testing.B) {
	CachedInv(1) // warm the table outside the timed region
	b.ResetTimer()
	var acc Elem
	for i := 0; i < b.N; i++ {
		acc ^= CachedInv(Elem(i%invCacheMax + 1))
	}
	benchSink = acc
}

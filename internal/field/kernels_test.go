package field

import (
	"math/rand"
	"testing"
)

func randElems(r *rand.Rand, n int) []Elem {
	out := make([]Elem, n)
	for i := range out {
		out[i] = Reduce(r.Uint64())
	}
	return out
}

// TestBlockKernelsMatchScalar proves each slice kernel is value-identical
// to its scalar counterpart applied per element.
func TestBlockKernelsMatchScalar(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 64, 65, 300} {
		a, b := randElems(r, n), randElems(r, n)

		sum := append([]Elem(nil), a...)
		AddBlock(sum, b)
		for i := range sum {
			if sum[i] != Add(a[i], b[i]) {
				t.Fatalf("AddBlock[%d] = %d, want %d", i, sum[i], Add(a[i], b[i]))
			}
		}

		c := Reduce(r.Uint64())
		scl := append([]Elem(nil), a...)
		AddScalarBlock(scl, c)
		for i := range scl {
			if scl[i] != Add(a[i], c) {
				t.Fatalf("AddScalarBlock[%d] = %d, want %d", i, scl[i], Add(a[i], c))
			}
		}

		prod := append([]Elem(nil), a...)
		MulBlock(prod, b)
		for i := range prod {
			if prod[i] != Mul(a[i], b[i]) {
				t.Fatalf("MulBlock[%d] = %d, want %d", i, prod[i], Mul(a[i], b[i]))
			}
		}

		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = r.Uint64()
		}
		red := make([]Elem, n)
		ReduceBlock(red, xs)
		for i := range red {
			if red[i] != Reduce(xs[i]) {
				t.Fatalf("ReduceBlock[%d] = %d, want %d", i, red[i], Reduce(xs[i]))
			}
		}
	}
}

// TestPowBlockMatchesPow proves the window-sweeping block exponentiation
// is value-identical to PowTable.Pow (and hence to the naive chain) over
// edge-case and random exponents.
func TestPowBlockMatchesPow(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		base := Reduce(r.Uint64())
		if base == 0 {
			base = 1
		}
		tab := NewPowTable(base)
		es := []uint64{0, 1, 2, 255, 256, 257, 1 << 16, 1<<32 - 1, 1 << 61, ^uint64(0)}
		for i := 0; i < 200; i++ {
			es = append(es, r.Uint64()>>uint(r.Intn(64)))
		}
		dst := make([]Elem, len(es))
		tab.PowBlock(dst, es)
		for i, e := range es {
			if want := tab.Pow(e); dst[i] != want {
				t.Fatalf("base %d: PowBlock(%d) = %d, want %d", base, e, dst[i], want)
			}
			if want := Pow(base, es[i]); dst[i] != want {
				t.Fatalf("base %d: PowBlock(%d) = %d, naive Pow gives %d", base, es[i], dst[i], want)
			}
		}
	}
}

// TestBlockKernelsZeroAlloc pins the kernels at zero allocations.
func TestBlockKernelsZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := randElems(r, 256), randElems(r, 256)
	es := make([]uint64, 256)
	for i := range es {
		es[i] = r.Uint64() >> 20
	}
	dst := make([]Elem, 256)
	tab := NewPowTable(7)
	avg := testing.AllocsPerRun(100, func() {
		AddBlock(a, b)
		AddScalarBlock(a, 12345)
		MulBlock(a, b)
		ReduceBlock(b, es)
		tab.PowBlock(dst, es)
	})
	if avg != 0 {
		t.Fatalf("block kernels allocate %v times per run, want 0", avg)
	}
}

func BenchmarkFieldPowBlock(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	tab := NewPowTable(Reduce(r.Uint64()))
	es := make([]uint64, 256)
	for i := range es {
		// Exponents in the sketch-update range (edge indexes at n = 10⁴).
		es[i] = r.Uint64() % (10000 * 10000)
	}
	dst := make([]Elem, len(es))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.PowBlock(dst, es)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(es)), "ns/pow")
}

// BenchmarkFieldPowBlockScalarLoop is the scalar reference for the guard
// ratio: the same 256 exponentiations through per-element Pow calls.
func BenchmarkFieldPowBlockScalarLoop(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	tab := NewPowTable(Reduce(r.Uint64()))
	es := make([]uint64, 256)
	for i := range es {
		es[i] = r.Uint64() % (10000 * 10000)
	}
	dst := make([]Elem, len(es))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, e := range es {
			dst[j] = tab.Pow(e)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(es)), "ns/pow")
}

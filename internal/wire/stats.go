package wire

// RunStats wire and JSON codecs. The binary form is the canonical frame
// the daemon and client exchange; the JSON form is the human-facing
// encoding shared by the /v1/run Accept: application/json response and
// cmd/sketchlab -json. Both carry every RunStats field, including the
// wall-time fields — callers comparing runs for determinism must compare
// transcripts (or their digests), never stats timings.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// EncodeRunStats serializes run stats as one frame.
func EncodeRunStats(s *engine.RunStats) []byte {
	var e enc
	appendRunStatsPayload(&e, s)
	return appendFrame(kindRunStats, e.b)
}

func appendRunStatsPayload(e *enc, s *engine.RunStats) {
	e.str(s.Protocol)
	e.uint(s.N)
	e.uint(s.Rounds)
	e.uint(s.CompletedRounds)
	e.uint(s.Workers)
	e.uint(s.ShardSize)
	e.uint(s.Shards)
	e.uvarint(uint64(s.Broadcasts))
	e.uvarint(uint64(s.EmptyMessages))
	e.uint(s.MaxMessageBits)
	e.uint(len(s.RoundMaxBits))
	for _, v := range s.RoundMaxBits {
		e.uint(v)
	}
	e.uint(len(s.RoundTotalBits))
	for _, v := range s.RoundTotalBits {
		e.uvarint(uint64(v))
	}
	e.uint(len(s.RoundBits))
	for _, r := range s.RoundBits {
		e.uvarint(uint64(r.PlayerBits))
		e.uint(r.PlayerMaxBits)
		e.uint(r.FeedbackBits)
	}
	e.uvarint(uint64(s.TotalBits))
	e.uvarint(uint64(s.FeedbackBits))
	e.uint(len(s.Hist))
	for _, b := range s.Hist {
		e.uint(b.Lo)
		e.uint(b.Hi)
		e.uvarint(uint64(b.Count))
	}
	e.uint(len(s.RoundWall))
	for _, d := range s.RoundWall {
		e.uvarint(uint64(d))
	}
	e.uvarint(uint64(s.ShardWall.Count))
	e.uvarint(uint64(s.ShardWall.Total))
	e.uvarint(uint64(s.ShardWall.Max))
	e.uvarint(uint64(s.BroadcastWall))
	e.uvarint(uint64(s.DecodeWall))
	e.uvarint(uint64(s.TotalWall))
	e.uint(s.PeakInFlight)
	e.bool(s.Faults.Injected)
	e.uint(s.Faults.Dropped)
	e.uint(s.Faults.Corrupted)
	e.uint(s.Faults.FlippedBits)
	e.uint(s.Faults.Straggled)
	e.uint(s.Faults.FeedbackDropped)
	e.uint(s.Faults.FeedbackCorrupted)
	e.uint(int(s.Faults.Resilience))
}

// DecodeRunStats inverts EncodeRunStats.
func DecodeRunStats(data []byte) (*engine.RunStats, error) {
	payload, err := openFrame(data, kindRunStats)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	s := decodeRunStatsPayload(d)
	if err := d.done(); err != nil {
		return nil, err
	}
	return s, nil
}

func decodeRunStatsPayload(d *dec) *engine.RunStats {
	s := &engine.RunStats{}
	s.Protocol = d.str("protocol name")
	s.N = d.int("n")
	s.Rounds = d.int("rounds")
	s.CompletedRounds = d.int("completed rounds")
	s.Workers = d.int("workers")
	s.ShardSize = d.int("shard size")
	s.Shards = d.int("shards")
	s.Broadcasts = int64(d.uvarint())
	s.EmptyMessages = int64(d.uvarint())
	s.MaxMessageBits = d.int("max message bits")
	if n := d.length("round max bits", 1); n > 0 {
		s.RoundMaxBits = make([]int, n)
		for i := range s.RoundMaxBits {
			s.RoundMaxBits[i] = d.int("round max bits")
		}
	}
	if n := d.length("round total bits", 1); n > 0 {
		s.RoundTotalBits = make([]int64, n)
		for i := range s.RoundTotalBits {
			s.RoundTotalBits[i] = int64(d.uvarint())
		}
	}
	if n := d.length("round bits", 3); n > 0 {
		s.RoundBits = make([]engine.RoundStats, n)
		for i := range s.RoundBits {
			s.RoundBits[i].PlayerBits = int64(d.uvarint())
			s.RoundBits[i].PlayerMaxBits = d.int("round player max bits")
			s.RoundBits[i].FeedbackBits = d.int("round feedback bits")
		}
	}
	s.TotalBits = int64(d.uvarint())
	s.FeedbackBits = int64(d.uvarint())
	if n := d.length("histogram bucket", 3); n > 0 {
		s.Hist = make([]engine.HistBucket, n)
		for i := range s.Hist {
			s.Hist[i].Lo = d.int("bucket lo")
			s.Hist[i].Hi = d.int("bucket hi")
			s.Hist[i].Count = int64(d.uvarint())
		}
	}
	if n := d.length("round wall", 1); n > 0 {
		s.RoundWall = make([]time.Duration, n)
		for i := range s.RoundWall {
			s.RoundWall[i] = time.Duration(d.uvarint())
		}
	}
	s.ShardWall.Count = int64(d.uvarint())
	s.ShardWall.Total = time.Duration(d.uvarint())
	s.ShardWall.Max = time.Duration(d.uvarint())
	s.BroadcastWall = time.Duration(d.uvarint())
	s.DecodeWall = time.Duration(d.uvarint())
	s.TotalWall = time.Duration(d.uvarint())
	s.PeakInFlight = d.int("peak in-flight")
	s.Faults.Injected = d.bool()
	s.Faults.Dropped = d.int("dropped")
	s.Faults.Corrupted = d.int("corrupted")
	s.Faults.FlippedBits = d.int("flipped bits")
	s.Faults.Straggled = d.int("straggled")
	s.Faults.FeedbackDropped = d.int("feedback dropped")
	s.Faults.FeedbackCorrupted = d.int("feedback corrupted")
	s.Faults.Resilience = core.Resilience(d.int("resilience"))
	return s
}

// StatsJSON is the machine-readable JSON form of engine.RunStats. All
// durations are nanoseconds; Resilience is its string form ("ok",
// "degraded", "failed").
type StatsJSON struct {
	Protocol        string           `json:"protocol"`
	N               int              `json:"n"`
	Rounds          int              `json:"rounds"`
	CompletedRounds int              `json:"completed_rounds"`
	Workers         int              `json:"workers"`
	ShardSize       int              `json:"shard_size"`
	Shards          int              `json:"shards"`
	Broadcasts      int64            `json:"broadcasts"`
	EmptyMessages   int64            `json:"empty_messages"`
	MaxMessageBits  int              `json:"max_message_bits"`
	RoundMaxBits    []int            `json:"round_max_bits,omitempty"`
	RoundTotalBits  []int64          `json:"round_total_bits,omitempty"`
	RoundBits       []RoundBitsJSON  `json:"round_bits,omitempty"`
	TotalBits       int64            `json:"total_bits"`
	FeedbackBits    int64            `json:"feedback_bits,omitempty"`
	Hist            []HistBucketJSON `json:"hist,omitempty"`
	RoundWallNS     []int64          `json:"round_wall_ns,omitempty"`
	ShardWall       TimerJSON        `json:"shard_wall"`
	BroadcastWallNS int64            `json:"broadcast_wall_ns"`
	DecodeWallNS    int64            `json:"decode_wall_ns"`
	TotalWallNS     int64            `json:"total_wall_ns"`
	PeakInFlight    int              `json:"peak_in_flight"`
	Faults          FaultStatsJSON   `json:"faults"`
}

// RoundBitsJSON is the JSON form of engine.RoundStats: one round's
// player uplink totals plus the referee's feedback downlink length.
type RoundBitsJSON struct {
	PlayerBits    int64 `json:"player_bits"`
	PlayerMaxBits int   `json:"player_max_bits"`
	FeedbackBits  int   `json:"feedback_bits"`
}

// HistBucketJSON is one message-length histogram bucket: Count messages
// with bit-lengths in [Lo, Hi).
type HistBucketJSON struct {
	Lo    int   `json:"lo"`
	Hi    int   `json:"hi"`
	Count int64 `json:"count"`
}

// TimerJSON is the JSON form of engine.TimerStats.
type TimerJSON struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// FaultStatsJSON is the JSON form of engine.FaultStats.
type FaultStatsJSON struct {
	Injected          bool   `json:"injected"`
	Dropped           int    `json:"dropped"`
	Corrupted         int    `json:"corrupted"`
	FlippedBits       int    `json:"flipped_bits"`
	Straggled         int    `json:"straggled"`
	FeedbackDropped   int    `json:"feedback_dropped,omitempty"`
	FeedbackCorrupted int    `json:"feedback_corrupted,omitempty"`
	Resilience        string `json:"resilience"`
}

// StatsToJSON converts run stats to their JSON form.
func StatsToJSON(s *engine.RunStats) StatsJSON {
	out := StatsJSON{
		Protocol:        s.Protocol,
		N:               s.N,
		Rounds:          s.Rounds,
		CompletedRounds: s.CompletedRounds,
		Workers:         s.Workers,
		ShardSize:       s.ShardSize,
		Shards:          s.Shards,
		Broadcasts:      s.Broadcasts,
		EmptyMessages:   s.EmptyMessages,
		MaxMessageBits:  s.MaxMessageBits,
		RoundMaxBits:    s.RoundMaxBits,
		RoundTotalBits:  s.RoundTotalBits,
		TotalBits:       s.TotalBits,
		FeedbackBits:    s.FeedbackBits,
		ShardWall: TimerJSON{
			Count:   s.ShardWall.Count,
			TotalNS: int64(s.ShardWall.Total),
			MaxNS:   int64(s.ShardWall.Max),
		},
		BroadcastWallNS: int64(s.BroadcastWall),
		DecodeWallNS:    int64(s.DecodeWall),
		TotalWallNS:     int64(s.TotalWall),
		PeakInFlight:    s.PeakInFlight,
		Faults: FaultStatsJSON{
			Injected:          s.Faults.Injected,
			Dropped:           s.Faults.Dropped,
			Corrupted:         s.Faults.Corrupted,
			FlippedBits:       s.Faults.FlippedBits,
			Straggled:         s.Faults.Straggled,
			FeedbackDropped:   s.Faults.FeedbackDropped,
			FeedbackCorrupted: s.Faults.FeedbackCorrupted,
			Resilience:        s.Faults.Resilience.String(),
		},
	}
	for _, r := range s.RoundBits {
		out.RoundBits = append(out.RoundBits, RoundBitsJSON{
			PlayerBits:    r.PlayerBits,
			PlayerMaxBits: r.PlayerMaxBits,
			FeedbackBits:  r.FeedbackBits,
		})
	}
	for _, b := range s.Hist {
		out.Hist = append(out.Hist, HistBucketJSON{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	for _, d := range s.RoundWall {
		out.RoundWallNS = append(out.RoundWallNS, int64(d))
	}
	return out
}

// StatsFromJSON converts the JSON form back to engine.RunStats, so a
// remote client can feed engine.WriteStats and the rest of the local
// tooling with a daemon's response.
func StatsFromJSON(j StatsJSON) (*engine.RunStats, error) {
	s := &engine.RunStats{
		Protocol:        j.Protocol,
		N:               j.N,
		Rounds:          j.Rounds,
		CompletedRounds: j.CompletedRounds,
		Workers:         j.Workers,
		ShardSize:       j.ShardSize,
		Shards:          j.Shards,
		Broadcasts:      j.Broadcasts,
		EmptyMessages:   j.EmptyMessages,
		MaxMessageBits:  j.MaxMessageBits,
		RoundMaxBits:    j.RoundMaxBits,
		RoundTotalBits:  j.RoundTotalBits,
		TotalBits:       j.TotalBits,
		FeedbackBits:    j.FeedbackBits,
		ShardWall: engine.TimerStats{
			Count: j.ShardWall.Count,
			Total: time.Duration(j.ShardWall.TotalNS),
			Max:   time.Duration(j.ShardWall.MaxNS),
		},
		BroadcastWall: time.Duration(j.BroadcastWallNS),
		DecodeWall:    time.Duration(j.DecodeWallNS),
		TotalWall:     time.Duration(j.TotalWallNS),
		PeakInFlight:  j.PeakInFlight,
	}
	for _, rb := range j.RoundBits {
		s.RoundBits = append(s.RoundBits, engine.RoundStats{
			PlayerBits:    rb.PlayerBits,
			PlayerMaxBits: rb.PlayerMaxBits,
			FeedbackBits:  rb.FeedbackBits,
		})
	}
	for _, b := range j.Hist {
		s.Hist = append(s.Hist, engine.HistBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	for _, ns := range j.RoundWallNS {
		s.RoundWall = append(s.RoundWall, time.Duration(ns))
	}
	r, err := parseResilience(j.Faults.Resilience)
	if err != nil {
		return nil, err
	}
	s.Faults = engine.FaultStats{
		Injected:          j.Faults.Injected,
		Dropped:           j.Faults.Dropped,
		Corrupted:         j.Faults.Corrupted,
		FlippedBits:       j.Faults.FlippedBits,
		Straggled:         j.Faults.Straggled,
		FeedbackDropped:   j.Faults.FeedbackDropped,
		FeedbackCorrupted: j.Faults.FeedbackCorrupted,
		Resilience:        r,
	}
	return s, nil
}

// parseResilience inverts core.Resilience.String. The empty string maps
// to ok so that hand-written JSON without a faults block stays valid.
func parseResilience(s string) (core.Resilience, error) {
	switch s {
	case "", "ok":
		return core.ResilienceOK, nil
	case "degraded":
		return core.ResilienceDegraded, nil
	case "failed":
		return core.ResilienceFailed, nil
	default:
		return 0, fmt.Errorf("wire: unknown resilience verdict %q", s)
	}
}

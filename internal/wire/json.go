package wire

// JSON forms of the service exchange. ReportJSON is the encoding shared
// by the daemon's /v1/run response under Accept: application/json and by
// cmd/sketchlab -json, so a sweep's machine-readable output and the
// service's are the same bytes modulo wall-clock fields.

import (
	"encoding/json"
	"fmt"
)

// ReportJSON is the JSON form of RunReport. Transcript is the full
// binary transcript frame (base64 under encoding/json's []byte rules);
// it is omitted where only the digest matters.
type ReportJSON struct {
	Spec       RunSpec   `json:"spec"`
	Stats      StatsJSON `json:"stats"`
	Outcome    Outcome   `json:"outcome"`
	Resilience string    `json:"resilience"`
	Digest     string    `json:"digest"`
	Transcript []byte    `json:"transcript,omitempty"`
}

// ReportToJSON converts a report to its JSON form. withTranscript
// controls whether the full transcript frame rides along or only its
// digest.
func ReportToJSON(r *RunReport, withTranscript bool) ReportJSON {
	j := ReportJSON{
		Spec:       r.Spec,
		Stats:      StatsToJSON(&r.Stats),
		Outcome:    r.Outcome,
		Resilience: r.Stats.Faults.Resilience.String(),
		Digest:     r.Digest(),
	}
	if withTranscript {
		j.Transcript = EncodeTranscript(r.Transcript)
	}
	return j
}

// ReportFromJSON converts the JSON form back to a RunReport. A report
// without a transcript yields Transcript == nil; when a transcript is
// present its digest must match the declared one.
func ReportFromJSON(j ReportJSON) (*RunReport, error) {
	stats, err := StatsFromJSON(j.Stats)
	if err != nil {
		return nil, err
	}
	r := &RunReport{Spec: j.Spec, Stats: *stats, Outcome: j.Outcome}
	if len(j.Transcript) > 0 {
		t, err := DecodeTranscript(j.Transcript)
		if err != nil {
			return nil, err
		}
		if got := TranscriptDigest(t); j.Digest != "" && got != j.Digest {
			return nil, fmt.Errorf("wire: transcript digest %s does not match declared %s", got, j.Digest)
		}
		r.Transcript = t
	}
	return r, nil
}

// BatchItemJSON is the JSON form of BatchItem.
type BatchItemJSON struct {
	Label   string    `json:"label,omitempty"`
	Err     string    `json:"error,omitempty"`
	Stats   StatsJSON `json:"stats"`
	Outcome Outcome   `json:"outcome"`
}

// BatchToJSON converts batch items to their JSON form.
func BatchToJSON(items []BatchItem) []BatchItemJSON {
	out := make([]BatchItemJSON, len(items))
	for i := range items {
		out[i] = BatchItemJSON{
			Label:   items[i].Label,
			Err:     items[i].Err,
			Stats:   StatsToJSON(&items[i].Stats),
			Outcome: items[i].Outcome,
		}
	}
	return out
}

// MarshalReportJSON renders a report as indented JSON.
func MarshalReportJSON(r *RunReport, withTranscript bool) ([]byte, error) {
	return json.MarshalIndent(ReportToJSON(r, withTranscript), "", "  ")
}

package wire

import (
	"context"
	"testing"

	"repro/internal/engine"
)

// TestBlockExecutionParity is the tentpole equivalence gate for columnar
// execution: every smoke spec — all registered protocols, including the
// faulted and feedback-faulted runs — produces the identical transcript
// digest, outcome, and bit accounting with the block path on and off, at
// Workers ∈ {1, 2, 8}. Because the smoke specs are also pinned against
// the committed golden fixtures (smoke parity + fixture round-trip
// tests), passing here means the block path reproduces the committed
// bytes, not merely that the two paths agree on something new.
//
// Subtests share the process-wide block toggle, so none of this runs in
// parallel and the toggle is restored on exit.
func TestBlockExecutionParity(t *testing.T) {
	was := engine.BlockExecutionEnabled()
	defer engine.SetBlockExecution(was)

	for _, workers := range []int{1, 2, 8} {
		for _, spec := range SmokeSpecs(workers) {
			engine.SetBlockExecution(false)
			scalar, err := ExecuteSpec(context.Background(), spec)
			if err != nil {
				t.Fatalf("workers=%d %s: scalar run: %v", workers, spec.Label, err)
			}
			engine.SetBlockExecution(true)
			block, err := ExecuteSpec(context.Background(), spec)
			if err != nil {
				t.Fatalf("workers=%d %s: block run: %v", workers, spec.Label, err)
			}
			if got, want := block.Digest(), scalar.Digest(); got != want {
				t.Errorf("workers=%d %s: block digest %s, scalar %s", workers, spec.Label, got, want)
			}
			if got, want := block.Outcome, scalar.Outcome; got != want {
				t.Errorf("workers=%d %s: block outcome %+v, scalar %+v", workers, spec.Label, got, want)
			}
			if got, want := block.Stats.TotalBits, scalar.Stats.TotalBits; got != want {
				t.Errorf("workers=%d %s: block TotalBits %d, scalar %d", workers, spec.Label, got, want)
			}
			if got, want := block.Stats.MaxMessageBits, scalar.Stats.MaxMessageBits; got != want {
				t.Errorf("workers=%d %s: block MaxMessageBits %d, scalar %d", workers, spec.Label, got, want)
			}
			if got, want := block.Stats.FeedbackBits, scalar.Stats.FeedbackBits; got != want {
				t.Errorf("workers=%d %s: block FeedbackBits %d, scalar %d", workers, spec.Label, got, want)
			}
		}
	}
}

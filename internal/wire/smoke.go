package wire

// SmokeSpecs is the service parity sweep: one RunSpec per committed
// golden fixture, covering every registered protocol. The clean specs
// reproduce the transcripts pinned under internal/engine/testdata and
// internal/protocol/testdata and the three faulted ones those under
// internal/faults/testdata (same graphs, same coin roots, same fault
// plan), so running this sweep through a refereed daemon and diffing the
// digests against a local run checks the whole stack — wire codec, HTTP
// transport, registry, engine, fault injector — against bytes recorded
// before the service existed (and, for the migrated sketch protocols,
// before the migration onto the protocol registry).
//
// workers sets every spec's engine worker count; by the engine's
// determinism contract it cannot change any digest, which is exactly why
// the CI smoke job runs the local side at -workers 1 and the remote side
// at -workers 8 and still diffs clean.
func SmokeSpecs(workers int) []RunSpec {
	const faultSeed = 202
	faulted := FaultSpec{Drop: 0.15, Corrupt: 0.15, Flip: 3, Straggle: 0.2, DelayNS: 100_000, Seed: faultSeed}
	return []RunSpec{
		{Label: "agm-forest", Protocol: "agm-forest",
			Graph: GraphSpec{Kind: "gnp", N: 60, P: 0.15, Seed: 11}, Seed: 12, Workers: workers},
		{Label: "agm-forest-backup", Protocol: "agm-forest-backup",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.2, Seed: 21}, Seed: 22, Workers: workers},
		{Label: "agm-skeleton", Protocol: "agm-skeleton",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.2, Seed: 21}, Seed: 23, Workers: workers},
		{Label: "mm-tworound", Protocol: "mm-tworound",
			Graph: GraphSpec{Kind: "gnp", N: 50, P: 0.3, Seed: 13}, Seed: 14, Workers: workers},
		{Label: "mis-tworound", Protocol: "mis-tworound",
			Graph: GraphSpec{Kind: "gnp", N: 50, P: 0.25, Seed: 15}, Seed: 16, Workers: workers},
		{Label: "faulted-agm-forest-backup", Protocol: "agm-forest-backup",
			Graph: GraphSpec{Kind: "gnp", N: 48, P: 0.2, Seed: 7}, Seed: 101, Workers: workers, Faults: faulted},
		{Label: "faulted-mm-tworound", Protocol: "mm-tworound",
			Graph: GraphSpec{Kind: "gnp", N: 48, P: 0.2, Seed: 7}, Seed: 101, Workers: workers, Faults: faulted},
		{Label: "faulted-mis-tworound", Protocol: "mis-tworound",
			Graph: GraphSpec{Kind: "gnp", N: 48, P: 0.2, Seed: 7}, Seed: 101, Workers: workers, Faults: faulted},
		// The registry-migrated protocols, appended so existing specs keep
		// their indices; fixtures live under internal/protocol/testdata.
		{Label: "palette-sparsification", Protocol: "palette-sparsification",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.2, Seed: 31}, Seed: 32, Workers: workers},
		{Label: "triangle-count", Protocol: "triangle-count-sketch",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.3, Seed: 33}, Seed: 34, Workers: workers},
		{Label: "mst-weight", Protocol: "mst-weight",
			Graph: GraphSpec{Kind: "gnp", N: 24, P: 0.25, Seed: 35}, Seed: 36, Workers: workers},
		{Label: "agm-cut-sparsifier", Protocol: "agm-cut-sparsifier",
			Graph: GraphSpec{Kind: "gnp", N: 30, P: 0.3, Seed: 37}, Seed: 38, Workers: workers},
		{Label: "densest-subgraph-sketch", Protocol: "densest-subgraph-sketch",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.3, Seed: 39}, Seed: 40, Workers: workers},
		{Label: "degeneracy-sketch", Protocol: "degeneracy-sketch",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.3, Seed: 41}, Seed: 42, Workers: workers},
		{Label: "agm-components", Protocol: "agm-components",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.25, Seed: 43}, Seed: 44, Workers: workers},
		{Label: "equality-public-coin", Protocol: "equality-public-coin",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.3, Seed: 45}, Seed: 46, Workers: workers},
		// Adaptive downlink faults: the referee's feedback is damaged while
		// the player uplink stays clean, exercising the engine's feedback
		// lane end to end (fixtures under internal/faults/testdata).
		{Label: "fb-dropped-mm-tworound", Protocol: "mm-tworound",
			Graph: GraphSpec{Kind: "gnp", N: 48, P: 0.2, Seed: 7}, Seed: 101, Workers: workers,
			Faults: FaultSpec{FbDrop: 1, Seed: faultSeed}},
		{Label: "fb-corrupt-mis-tworound", Protocol: "mis-tworound",
			Graph: GraphSpec{Kind: "gnp", N: 48, P: 0.2, Seed: 7}, Seed: 101, Workers: workers,
			Faults: FaultSpec{FbCorrupt: 1, Flip: 3, Seed: faultSeed}},
		// The multi-pass semi-streaming matching protocol (appended, as
		// always, so existing specs keep their indices): once on a
		// static graph, once on a dynamic-stream instance materialized
		// by the dyn-churn graph kind — server, cache, cluster parity
		// and the smoke scripts all exercise the dynamic subsystem
		// through these two.
		{Label: "semistream-matching", Protocol: "semistream-matching",
			Graph: GraphSpec{Kind: "gnp", N: 40, P: 0.25, Seed: 47}, Seed: 48, Workers: workers},
		{Label: "semistream-matching-dyn", Protocol: "semistream-matching",
			Graph: GraphSpec{Kind: "dyn-churn", N: 40, M: 4, R: 50, T: 80, P: 0.3, Seed: 49}, Seed: 50, Workers: workers},
	}
}

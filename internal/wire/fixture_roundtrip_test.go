package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bitio"
	"repro/internal/engine"
)

// goldenFixturePaths returns every committed golden transcript in the
// engine and faults test suites. The wire codec must round-trip all of
// them byte-identically: they are the bytes the service parity sweep
// diffs against.
func goldenFixturePaths(t *testing.T) []string {
	t.Helper()
	var paths []string
	for _, dir := range []string{
		filepath.Join("..", "engine", "testdata"),
		filepath.Join("..", "faults", "testdata"),
		filepath.Join("..", "protocol", "testdata"),
	} {
		matches, err := filepath.Glob(filepath.Join(dir, "*.golden"))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, matches...)
	}
	if len(paths) < 20 {
		t.Fatalf("found only %d golden fixtures, expected the 5 engine + 5 faults + 10 protocol ones", len(paths))
	}
	return paths
}

// readFixtureTranscript rebuilds an engine.Transcript from a golden file
// of "round vertex nbit hex" lines (bits packed LSB-first, exactly
// bitio.Writer's layout). Trailer lines that do not start with a digit
// (the protocol fixtures append an "outcome ..." line) are skipped. When
// a sidecar "<base>.feedback" file exists next to the golden, its
// "round nbit hex" lines are sealed as the rounds' referee feedback; the
// player goldens themselves never carry feedback, preserving their
// pre-migration bytes.
func readFixtureTranscript(t *testing.T, path string) *engine.Transcript {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	feedback := readFixtureFeedback(t, strings.TrimSuffix(path, ".golden")+".feedback")
	tr := engine.NewTranscript()
	var msgs []*bitio.Writer
	current := 0
	flush := func() {
		if msgs != nil {
			tr.SealRound(msgs)
			tr.SealFeedback(feedback[current])
			msgs = nil
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 || line[0] < '0' || line[0] > '9' {
			continue
		}
		var round, vertex, nbit int
		var hexBits string
		n, err := fmt.Sscanf(line, "%d %d %d %s", &round, &vertex, &nbit, &hexBits)
		if err != nil && n < 3 {
			t.Fatalf("%s: malformed line %q: %v", path, line, err)
		}
		if round != current {
			flush()
			current = round
		}
		msgs = append(msgs, fixtureMessage(t, path, line, nbit, hexBits))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	flush()
	return tr
}

// fixtureMessage unpacks one fixture line's hex-packed bits into a
// writer; nil for empty messages.
func fixtureMessage(t *testing.T, path, line string, nbit int, hexBits string) *bitio.Writer {
	t.Helper()
	if nbit == 0 {
		return nil
	}
	buf, err := hex.DecodeString(hexBits)
	if err != nil {
		t.Fatalf("%s: bad hex in %q: %v", path, line, err)
	}
	w := &bitio.Writer{}
	for i, rem := 0, nbit; rem > 0; i, rem = i+1, rem-8 {
		w.WriteUint(uint64(buf[i]), min(rem, 8))
	}
	return w
}

// readFixtureFeedback loads a feedback sidecar ("round nbit hex" lines)
// into a per-round map; an absent sidecar is an empty map (the
// non-adaptive case).
func readFixtureFeedback(t *testing.T, path string) map[int]*bitio.Writer {
	t.Helper()
	out := map[int]*bitio.Writer{}
	f, err := os.Open(path)
	if err != nil {
		return out
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		var round, nbit int
		var hexBits string
		n, err := fmt.Sscanf(sc.Text(), "%d %d %s", &round, &nbit, &hexBits)
		if err != nil && n < 2 {
			t.Fatalf("%s: malformed feedback line %q: %v", path, sc.Text(), err)
		}
		out[round] = fixtureMessage(t, path, sc.Text(), nbit, hexBits)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenFixtureWireRoundTrip asserts decode(encode(t)) is
// byte-identical for every committed golden transcript, and that the
// digest is stable across the round trip.
func TestGoldenFixtureWireRoundTrip(t *testing.T) {
	for _, path := range goldenFixturePaths(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			want := readFixtureTranscript(t, path)
			enc1 := EncodeTranscript(want)
			got, err := DecodeTranscript(enc1)
			if err != nil {
				t.Fatal(err)
			}
			enc2 := EncodeTranscript(got)
			if !bytes.Equal(enc1, enc2) {
				t.Fatal("decode(encode(t)) re-encodes differently")
			}
			if TranscriptDigest(got) != TranscriptDigest(want) {
				t.Fatal("digest drifted across round trip")
			}
		})
	}
}

// TestGoldenFixtureCrossVersionRejected flips the version byte on each
// fixture's encoding and checks for a clear rejection.
func TestGoldenFixtureCrossVersionRejected(t *testing.T) {
	for _, path := range goldenFixturePaths(t) {
		data := EncodeTranscript(readFixtureTranscript(t, path))
		data[4] = Version + 1
		if _, err := DecodeTranscript(data); err == nil {
			t.Fatalf("%s: future-version frame accepted", filepath.Base(path))
		}
	}
}

// TestSmokeSpecsReproduceGoldenFixtures is the local half of the service
// parity invariant: executing each SmokeSpecs entry through the RunSpec
// registry yields exactly the transcript committed as that fixture's
// golden file. The remote half (same specs dispatched through refereed
// over HTTP) lives in internal/server.
func TestSmokeSpecsReproduceGoldenFixtures(t *testing.T) {
	for _, spec := range SmokeSpecs(1) {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			report, err := ExecuteSpec(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			path := smokeFixturePath(t, spec)
			want := readFixtureTranscript(t, path)
			if !bytes.Equal(EncodeTranscript(report.Transcript), EncodeTranscript(want)) {
				t.Fatalf("spec %s does not reproduce committed fixture %s", spec.Label, path)
			}
		})
	}
}

// smokeFixturePath maps a smoke spec to its committed golden file:
// faulted specs pin faults fixtures; clean specs pin either an engine
// fixture (the original five) or a protocol one (the migrated sketch
// protocols).
func smokeFixturePath(t *testing.T, spec RunSpec) string {
	t.Helper()
	if spec.Faults != (FaultSpec{}) {
		return filepath.Join("..", "faults", "testdata", spec.Label+".golden")
	}
	// protocol/testdata takes precedence: for the adaptive two-round
	// protocols it holds the same player bytes as engine/testdata plus
	// the feedback sidecar recorded at the migration.
	for _, dir := range []string{"protocol", "engine"} {
		path := filepath.Join("..", dir, "testdata", spec.Label+".golden")
		if _, err := os.Stat(path); err == nil {
			return path
		}
	}
	t.Fatalf("no committed golden fixture for smoke spec %q", spec.Label)
	return ""
}

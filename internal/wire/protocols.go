package wire

// Every protocol package self-registers in the protocol registry from
// its init() (see the register.go file in each). These blank imports
// link the full set into any binary that uses the wire, which is what
// makes all of them resolvable by name through ExecuteSpec and the
// refereed daemon. The registry-completeness test pins this list against
// the packages that actually implement the Sketch/Decode contract.

import (
	_ "repro/internal/agm"
	_ "repro/internal/coloring"
	_ "repro/internal/degeneracy"
	_ "repro/internal/densest"
	_ "repro/internal/dynstream"
	_ "repro/internal/equality"
	_ "repro/internal/matchproto"
	_ "repro/internal/misproto"
	_ "repro/internal/mst"
	_ "repro/internal/sparsify"
	_ "repro/internal/triangles"
)

package wire

// The protocol registry maps wire names to the in-process protocol
// constructors, and the executor turns a RunSpec into a RunReport. This
// is the single execution path shared by the refereed daemon and by local
// callers (cmd/sketchlab's sweep, tests), which is what makes the
// local-vs-remote byte-parity invariant a property of ONE code path fed
// through two transports rather than two implementations kept in sync.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/agm"
	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/rng"
)

// Outcome summarizes a referee's decoded output in a protocol-agnostic
// shape the wire can carry: the output's kind and size, plus — when the
// registry knows a ground-truth verifier for the protocol — whether the
// output passed verification against the actual input graph. (The
// verifier runs on the daemon, which holds the graph; the model's referee
// of course never sees it. Valid is service-level auditing, not part of
// the sketching model.)
type Outcome struct {
	// Kind names the output shape: "edges", "vertices", or "count".
	Kind string `json:"kind"`
	// Size is the output's cardinality (edge count, vertex count, or the
	// counted value itself for "count").
	Size int `json:"size"`
	// Checked reports whether a ground-truth verifier ran.
	Checked bool `json:"checked"`
	// Valid is the verifier's verdict (false when Checked is false).
	Valid bool `json:"valid"`
}

// adapted lifts a typed protocol to engine.Protocol[Outcome] so that
// heterogeneous protocols (edge outputs, vertex sets, counts) can share
// one executor, one batch, and one wire shape.
type adapted[T any] struct {
	inner   engine.Protocol[T]
	outcome func(T) Outcome
}

var _ faults.ResilientProtocol[Outcome] = (*adapted[int])(nil)

func (a *adapted[T]) Name() string { return a.inner.Name() }
func (a *adapted[T]) Rounds() int  { return a.inner.Rounds() }

func (a *adapted[T]) Broadcast(round int, view core.VertexView, t *engine.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	return a.inner.Broadcast(round, view, t, coins)
}

func (a *adapted[T]) Decode(n int, t *engine.Transcript, coins *rng.PublicCoins) (Outcome, error) {
	out, err := a.inner.Decode(n, t, coins)
	if err != nil {
		return Outcome{}, err
	}
	return a.outcome(out), nil
}

// DecodeResilient forwards to the inner protocol's resilient decode when
// it has one, with the same strict-decode fallback semantics as
// cclique.OneRound: a clean strict decode reports ok (faults.Run's
// channel-record folding still demotes it when faults were injected).
func (a *adapted[T]) DecodeResilient(n int, t *engine.Transcript, coins *rng.PublicCoins) (Outcome, core.Resilience, error) {
	if rp, ok := a.inner.(faults.ResilientProtocol[T]); ok {
		out, verdict, err := rp.DecodeResilient(n, t, coins)
		if err != nil {
			return Outcome{}, verdict, err
		}
		return a.outcome(out), verdict, nil
	}
	out, err := a.inner.Decode(n, t, coins)
	if err != nil {
		return Outcome{}, core.ResilienceFailed, err
	}
	return a.outcome(out), core.ResilienceOK, nil
}

// adaptEdges wraps an edge-output protocol; verify may be nil.
func adaptEdges(p engine.Protocol[[]graph.Edge], g *graph.Graph, verify func(*graph.Graph, []graph.Edge) bool) engine.Protocol[Outcome] {
	return &adapted[[]graph.Edge]{inner: p, outcome: func(out []graph.Edge) Outcome {
		o := Outcome{Kind: "edges", Size: len(out)}
		if verify != nil {
			o.Checked, o.Valid = true, verify(g, out)
		}
		return o
	}}
}

// adaptVertices wraps a vertex-set-output protocol; verify may be nil.
func adaptVertices(p engine.Protocol[[]int], g *graph.Graph, verify func(*graph.Graph, []int) bool) engine.Protocol[Outcome] {
	return &adapted[[]int]{inner: p, outcome: func(out []int) Outcome {
		o := Outcome{Kind: "vertices", Size: len(out)}
		if verify != nil {
			o.Checked, o.Valid = true, verify(g, out)
		}
		return o
	}}
}

// adaptCount wraps a count-output protocol; verify may be nil.
func adaptCount(p engine.Protocol[int], g *graph.Graph, verify func(*graph.Graph, int) bool) engine.Protocol[Outcome] {
	return &adapted[int]{inner: p, outcome: func(out int) Outcome {
		o := Outcome{Kind: "count", Size: out}
		if verify != nil {
			o.Checked, o.Valid = true, verify(g, out)
		}
		return o
	}}
}

// protocolRegistry maps wire protocol names to constructors. Each entry
// builds a FRESH protocol instance per run — protocol values memoize
// per-run state, so instances are never shared across executions.
var protocolRegistry = map[string]func(g *graph.Graph) engine.Protocol[Outcome]{
	"agm-forest": func(g *graph.Graph) engine.Protocol[Outcome] {
		return adaptEdges(&cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{})}, g, graph.IsSpanningForest)
	},
	"agm-forest-backup": func(g *graph.Graph) engine.Protocol[Outcome] {
		return adaptEdges(&cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{BackupReps: 2})}, g, graph.IsSpanningForest)
	},
	"agm-skeleton": func(g *graph.Graph) engine.Protocol[Outcome] {
		return adaptEdges(&cclique.OneRound[[]graph.Edge]{P: agm.NewSkeleton(2, agm.Config{})}, g, nil)
	},
	"agm-components": func(g *graph.Graph) engine.Protocol[Outcome] {
		return adaptCount(&cclique.OneRound[int]{P: agm.NewComponentCount(agm.Config{})}, g, func(g *graph.Graph, out int) bool {
			_, count := g.Components()
			return out == count
		})
	},
	"mm-tworound": func(g *graph.Graph) engine.Protocol[Outcome] {
		return adaptEdges(matchproto.NewTwoRound(), g, graph.IsMaximalMatching)
	},
	"mis-tworound": func(g *graph.Graph) engine.Protocol[Outcome] {
		return adaptVertices(misproto.NewTwoRound(), g, graph.IsMaximalIndependentSet)
	},
}

// lookupProtocol resolves a registry name.
func lookupProtocol(name string) (func(*graph.Graph) engine.Protocol[Outcome], error) {
	build, ok := protocolRegistry[name]
	if !ok {
		return nil, fmt.Errorf("wire: unknown protocol %q (known: %v)", name, Protocols())
	}
	return build, nil
}

// Protocols returns the sorted registry names.
func Protocols() []string {
	names := make([]string, 0, len(protocolRegistry))
	for name := range protocolRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunReport is the full result of executing one RunSpec: the echoed spec,
// the run's metrics (with the resilience verdict under Stats.Faults), the
// summarized output, and the exact sealed transcript.
type RunReport struct {
	Spec       RunSpec
	Stats      engine.RunStats
	Outcome    Outcome
	Transcript *engine.Transcript
}

// Digest returns the content address of the report's transcript.
func (r *RunReport) Digest() string { return TranscriptDigest(r.Transcript) }

// ExecuteSpec runs one spec end to end: materialize the graph, construct
// the protocol, re-derive the coin trees from the spec's seeds, execute
// (through the fault injector when the spec carries an active plan), and
// decode. The transcript in the returned report is byte-identical for
// every Workers value and for every transport that leads here — that is
// the service's core invariant, enforced by the golden parity tests.
func ExecuteSpec(ctx context.Context, spec RunSpec) (*RunReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g, err := BuildGraph(spec.Graph)
	if err != nil {
		return nil, err
	}
	build, err := lookupProtocol(spec.Protocol)
	if err != nil {
		return nil, err
	}
	p := build(g)
	eng := &engine.Engine{Workers: spec.Workers}
	coins := rng.NewPublicCoins(spec.Seed)

	var (
		res        engine.Result[Outcome]
		transcript *engine.Transcript
	)
	if plan := spec.Faults.Plan(); plan.Active() {
		faultCoins := rng.NewPublicCoins(spec.Faults.Seed).Derive("faults")
		res, transcript, err = faults.RunWithTranscript(ctx, eng, p, g, coins, plan, faultCoins)
	} else {
		res, transcript, err = engine.RunWithTranscript(ctx, eng, p, g, coins)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: execute %s: %w", spec.Protocol, err)
	}
	return &RunReport{Spec: spec, Stats: res.Stats, Outcome: res.Output, Transcript: transcript}, nil
}

// BatchItem is one job's result in a batch report. Err is the job's own
// failure rendered as text (empty on success); other jobs still run.
type BatchItem struct {
	Label   string
	Err     string
	Stats   engine.RunStats
	Outcome Outcome
}

// ExecuteBatch runs a batch of specs. Clean specs flow through
// engine.RunBatch over a shared pool of e.Workers job-level workers
// (each job sequential inside, so every job stays bit-identical to a
// standalone run); faulted specs run one by one through the fault
// injector. Results return in spec order. Batch reports carry stats and
// outcomes but no transcripts — batches are for sweeps, where the
// per-job digest workflow of /v1/run does not apply.
func ExecuteBatch(ctx context.Context, e *engine.Engine, specs []RunSpec) []BatchItem {
	items := make([]BatchItem, len(specs))
	var jobs []engine.Job[Outcome]
	var jobIdx []int
	for i, spec := range specs {
		items[i].Label = spec.Label
		if err := spec.Validate(); err != nil {
			items[i].Err = err.Error()
			continue
		}
		g, err := BuildGraph(spec.Graph)
		if err != nil {
			items[i].Err = err.Error()
			continue
		}
		build, _ := lookupProtocol(spec.Protocol)
		p := build(g)
		coins := rng.NewPublicCoins(spec.Seed)
		if plan := spec.Faults.Plan(); plan.Active() {
			faultCoins := rng.NewPublicCoins(spec.Faults.Seed).Derive("faults")
			res, err := faults.Run(ctx, &engine.Engine{Workers: 1}, p, g, coins, plan, faultCoins)
			items[i].Stats = res.Stats
			items[i].Outcome = res.Output
			if err != nil {
				items[i].Err = err.Error()
			}
			continue
		}
		jobs = append(jobs, engine.Job[Outcome]{Label: spec.Label, Protocol: p, Graph: g, Coins: coins})
		jobIdx = append(jobIdx, i)
	}
	results, _ := engine.RunBatch(ctx, e, jobs)
	for j, jr := range results {
		i := jobIdx[j]
		items[i].Stats = jr.Result.Stats
		items[i].Outcome = jr.Result.Output
		if jr.Err != nil {
			items[i].Err = jr.Err.Error()
		}
	}
	return items
}

// EncodeRunReport serializes a report as one frame.
func EncodeRunReport(r *RunReport) []byte {
	var e enc
	appendRunSpecPayload(&e, r.Spec)
	appendRunStatsPayload(&e, &r.Stats)
	appendOutcomePayload(&e, r.Outcome)
	appendTranscriptPayload(&e, r.Transcript)
	return appendFrame(kindRunReport, e.b)
}

// DecodeRunReport inverts EncodeRunReport.
func DecodeRunReport(data []byte) (*RunReport, error) {
	payload, err := openFrame(data, kindRunReport)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	r := &RunReport{}
	r.Spec = decodeRunSpecPayload(d)
	r.Stats = *decodeRunStatsPayload(d)
	r.Outcome = decodeOutcomePayload(d)
	r.Transcript = decodeTranscriptPayload(d)
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}

func appendOutcomePayload(e *enc, o Outcome) {
	e.str(o.Kind)
	e.uint(o.Size)
	e.bool(o.Checked)
	e.bool(o.Valid)
}

func decodeOutcomePayload(d *dec) Outcome {
	var o Outcome
	o.Kind = d.str("outcome kind")
	o.Size = d.int("outcome size")
	o.Checked = d.bool()
	o.Valid = d.bool()
	return o
}

// EncodeBatchReport serializes batch results as one frame.
func EncodeBatchReport(items []BatchItem) []byte {
	var e enc
	e.uint(len(items))
	for i := range items {
		e.str(items[i].Label)
		e.str(items[i].Err)
		appendRunStatsPayload(&e, &items[i].Stats)
		appendOutcomePayload(&e, items[i].Outcome)
	}
	return appendFrame(kindBatchReport, e.b)
}

// DecodeBatchReport inverts EncodeBatchReport.
func DecodeBatchReport(data []byte) ([]BatchItem, error) {
	payload, err := openFrame(data, kindBatchReport)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	n := d.length("batch item", 8)
	items := make([]BatchItem, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var it BatchItem
		it.Label = d.str("label")
		it.Err = d.str("error text")
		it.Stats = *decodeRunStatsPayload(d)
		it.Outcome = decodeOutcomePayload(d)
		items = append(items, it)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return items, nil
}

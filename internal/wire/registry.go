package wire

// The protocol registry maps wire names to the in-process protocol
// constructors, and the executor turns a RunSpec into a RunReport. This
// is the single execution path shared by the refereed daemon and by local
// callers (cmd/sketchlab's sweep, tests), which is what makes the
// local-vs-remote byte-parity invariant a property of ONE code path fed
// through two transports rather than two implementations kept in sync.
//
// The registry itself lives in package protocol: every protocol package
// self-registers from init(), and wire links the full set through the
// blank imports in protocols.go. Adding a protocol to the wire is
// therefore one register.go file in its own package, not an edit here.

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Outcome is the uniform decoded-output summary the wire carries; see
// protocol.Outcome.
type Outcome = protocol.Outcome

// lookupProtocol resolves a registry name.
func lookupProtocol(name string) (protocol.Builder, error) {
	return protocol.Lookup(name)
}

// Protocols returns the sorted names of every registered protocol.
func Protocols() []string { return protocol.Names() }

// RunReport is the full result of executing one RunSpec: the echoed spec,
// the run's metrics (with the resilience verdict under Stats.Faults), the
// summarized output, and the exact sealed transcript.
type RunReport struct {
	Spec       RunSpec
	Stats      engine.RunStats
	Outcome    Outcome
	Transcript *engine.Transcript
}

// Digest returns the content address of the report's transcript.
func (r *RunReport) Digest() string { return TranscriptDigest(r.Transcript) }

// ExecuteSpec runs one spec end to end: materialize the graph, construct
// the protocol, re-derive the coin trees from the spec's seeds, execute
// (through the fault injector when the spec carries an active plan), and
// decode. The transcript in the returned report is byte-identical for
// every Workers value and for every transport that leads here — that is
// the service's core invariant, enforced by the golden parity tests.
func ExecuteSpec(ctx context.Context, spec RunSpec) (*RunReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g, err := BuildGraph(spec.Graph)
	if err != nil {
		return nil, err
	}
	build, err := lookupProtocol(spec.Protocol)
	if err != nil {
		return nil, err
	}
	p := build(g)
	eng := &engine.Engine{Workers: spec.Workers}
	coins := rng.NewPublicCoins(spec.Seed)

	var (
		res        engine.Result[Outcome]
		transcript *engine.Transcript
	)
	if plan := spec.Faults.Plan(); plan.Active() {
		faultCoins := rng.NewPublicCoins(spec.Faults.Seed).Derive("faults")
		res, transcript, err = faults.RunWithTranscript(ctx, eng, p, g, coins, plan, faultCoins)
	} else {
		res, transcript, err = engine.RunWithTranscript(ctx, eng, p, g, coins)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: execute %s: %w", spec.Protocol, err)
	}
	return &RunReport{Spec: spec, Stats: res.Stats, Outcome: res.Output, Transcript: transcript}, nil
}

// BatchItem is one job's result in a batch report. Err is the job's own
// failure rendered as text (empty on success); other jobs still run.
type BatchItem struct {
	Label   string
	Err     string
	Stats   engine.RunStats
	Outcome Outcome
}

// ExecuteBatch runs a batch of specs. Clean specs flow through
// engine.RunBatch over a shared pool of e.Workers job-level workers
// (each job sequential inside, so every job stays bit-identical to a
// standalone run); faulted specs run one by one through the fault
// injector. Results return in spec order. Batch reports carry stats and
// outcomes but no transcripts — batches are for sweeps, where the
// per-job digest workflow of /v1/run does not apply.
func ExecuteBatch(ctx context.Context, e *engine.Engine, specs []RunSpec) []BatchItem {
	items := make([]BatchItem, len(specs))
	var jobs []engine.Job[Outcome]
	var jobIdx []int
	for i, spec := range specs {
		items[i].Label = spec.Label
		if err := spec.Validate(); err != nil {
			items[i].Err = err.Error()
			continue
		}
		g, err := BuildGraph(spec.Graph)
		if err != nil {
			items[i].Err = err.Error()
			continue
		}
		build, _ := lookupProtocol(spec.Protocol)
		p := build(g)
		coins := rng.NewPublicCoins(spec.Seed)
		if plan := spec.Faults.Plan(); plan.Active() {
			faultCoins := rng.NewPublicCoins(spec.Faults.Seed).Derive("faults")
			res, err := faults.Run(ctx, &engine.Engine{Workers: 1}, p, g, coins, plan, faultCoins)
			items[i].Stats = res.Stats
			items[i].Outcome = res.Output
			if err != nil {
				items[i].Err = err.Error()
			}
			continue
		}
		jobs = append(jobs, engine.Job[Outcome]{Label: spec.Label, Protocol: p, Graph: g, Coins: coins})
		jobIdx = append(jobIdx, i)
	}
	results, _ := engine.RunBatch(ctx, e, jobs)
	for j, jr := range results {
		i := jobIdx[j]
		items[i].Stats = jr.Result.Stats
		items[i].Outcome = jr.Result.Output
		if jr.Err != nil {
			items[i].Err = jr.Err.Error()
		}
	}
	return items
}

// EncodeRunReport serializes a report as one frame.
func EncodeRunReport(r *RunReport) []byte {
	var e enc
	appendRunSpecPayload(&e, r.Spec)
	appendRunStatsPayload(&e, &r.Stats)
	appendOutcomePayload(&e, r.Outcome)
	appendTranscriptPayload(&e, r.Transcript)
	return appendFrame(kindRunReport, e.b)
}

// DecodeRunReport inverts EncodeRunReport.
func DecodeRunReport(data []byte) (*RunReport, error) {
	payload, err := openFrame(data, kindRunReport)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	r := &RunReport{}
	r.Spec = decodeRunSpecPayload(d)
	r.Stats = *decodeRunStatsPayload(d)
	r.Outcome = decodeOutcomePayload(d)
	r.Transcript = decodeTranscriptPayload(d)
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}

func appendOutcomePayload(e *enc, o Outcome) {
	e.str(o.Kind)
	e.uint(o.Size)
	e.f64(o.Value)
	e.bool(o.Checked)
	e.bool(o.Valid)
}

func decodeOutcomePayload(d *dec) Outcome {
	var o Outcome
	o.Kind = d.str("outcome kind")
	o.Size = d.int("outcome size")
	o.Value = d.f64()
	o.Checked = d.bool()
	o.Valid = d.bool()
	return o
}

// EncodeBatchReport serializes batch results as one frame.
func EncodeBatchReport(items []BatchItem) []byte {
	var e enc
	e.uint(len(items))
	for i := range items {
		e.str(items[i].Label)
		e.str(items[i].Err)
		appendRunStatsPayload(&e, &items[i].Stats)
		appendOutcomePayload(&e, items[i].Outcome)
	}
	return appendFrame(kindBatchReport, e.b)
}

// DecodeBatchReport inverts EncodeBatchReport.
func DecodeBatchReport(data []byte) ([]BatchItem, error) {
	payload, err := openFrame(data, kindBatchReport)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	n := d.length("batch item", 8)
	items := make([]BatchItem, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var it BatchItem
		it.Label = d.str("label")
		it.Err = d.str("error text")
		it.Stats = *decodeRunStatsPayload(d)
		it.Outcome = decodeOutcomePayload(d)
		items = append(items, it)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return items, nil
}

// Package wire is the referee service's wire format: a versioned,
// length-prefixed binary encoding of the objects that cross the network
// when the paper's referee runs as a daemon (internal/server) instead of
// in-process.
//
// The model is literally a network protocol — every vertex sends one
// simultaneous message to a referee — so the service layer's invariant is
// the same one the execution engine already enforces locally: a fixed
// RunSpec produces a byte-identical transcript whether it is executed
// in-process or dispatched over HTTP. The codecs here are canonical to
// make that checkable: encoding is a pure function of the value (no maps,
// no padding freedom — the final byte of every message must have zero
// padding bits), so two transcripts are equal iff their encodings are
// byte-equal, and TranscriptDigest is a stable content address.
//
// Every encoded object is one frame:
//
//	offset 0: magic "RSKW" (4 bytes)
//	offset 4: format version (1 byte, currently 2)
//	offset 5: payload kind (1 byte: run-spec, transcript, run-stats, ...)
//	offset 6: payload length (uvarint)
//	then exactly that many payload bytes (no trailing data)
//
// Within payloads, integers are uvarints, fixed 64-bit values (seeds,
// float bit patterns) are little-endian, strings and byte strings are
// length-prefixed. Decoders never panic on corrupt input — they return
// errors, enforced by the FuzzWireDecode* targets — and they never
// allocate more than the input length can justify, so a short hostile
// frame cannot balloon memory.
//
// Digest compatibility. Version 2 added the referee feedback lane
// (engine.Adaptive) to the transcript payload: after each round's player
// messages the payload carries the round's feedback bit-length and packed
// bits. TranscriptDigest hashes the canonical encoding, so digests are
// comparable only between builds speaking the same wire version — exactly
// the guarantee the version byte already enforces for the frames
// themselves. Within version 2, a non-adaptive protocol's rounds carry
// zero-length feedback, which the engine seals for every round
// unconditionally; a transcript with all-empty feedback is therefore
// byte-identical (and digest-identical) to the same player messages
// produced by a build that predates the protocol turning adaptive only if
// both speak version 2 — version 1 frames are rejected, never reencoded.
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/engine"
)

// Version is the wire format version this build speaks. Decoders reject
// every other version outright: cross-version negotiation is a
// non-goal — the client and daemon ship from the same tree. Version 2
// extended the transcript payload with the per-round referee feedback
// lane and the run-stats payload with per-round player/feedback bit
// accounting.
const Version = 2

// magic identifies referee-service frames.
var magic = [4]byte{'R', 'S', 'K', 'W'}

// Payload kinds.
const (
	kindRunSpec     byte = 1
	kindTranscript  byte = 2
	kindRunStats    byte = 3
	kindRunReport   byte = 4
	kindBatchSpec   byte = 5
	kindBatchReport byte = 6
)

// kindName renders a payload kind for error messages.
func kindName(k byte) string {
	switch k {
	case kindRunSpec:
		return "run-spec"
	case kindTranscript:
		return "transcript"
	case kindRunStats:
		return "run-stats"
	case kindRunReport:
		return "run-report"
	case kindBatchSpec:
		return "batch-spec"
	case kindBatchReport:
		return "batch-report"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// maxStringLen bounds every decoded string (protocol names, graph kinds,
// labels, error texts); nothing legitimate comes close.
const maxStringLen = 1 << 12

// appendFrame wraps a payload in the versioned frame header.
func appendFrame(kind byte, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+6+binary.MaxVarintLen64)
	out = append(out, magic[:]...)
	out = append(out, Version, kind)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

// openFrame validates the header of data and returns the payload. The
// frame must carry exactly the declared payload — truncated or trailing
// bytes are errors, which keeps encodings canonical.
func openFrame(data []byte, wantKind byte) ([]byte, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("wire: frame too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("wire: bad magic %q (want %q)", data[:4], magic[:])
	}
	if v := data[4]; v != Version {
		return nil, fmt.Errorf("wire: unsupported wire version %d (this build speaks version %d); regenerate the frame with a matching build", v, Version)
	}
	if k := data[5]; k != wantKind {
		return nil, fmt.Errorf("wire: frame holds a %s, want a %s", kindName(k), kindName(wantKind))
	}
	n, used := binary.Uvarint(data[6:])
	if used <= 0 || (used > 1 && data[6+used-1] == 0) {
		return nil, fmt.Errorf("wire: malformed payload length")
	}
	payload := data[6+used:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("wire: frame declares %d payload bytes, carries %d", n, len(payload))
	}
	return payload, nil
}

// enc is an append-only payload encoder.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) uint(v int)       { e.uvarint(uint64(v)) }
func (e *enc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64)    { e.u64(math.Float64bits(v)) }
func (e *enc) raw(p []byte)     { e.b = append(e.b, p...) }
func (e *enc) byte(b byte)      { e.b = append(e.b, b) }
func (e *enc) str(s string)     { e.uint(len(s)); e.b = append(e.b, s...) }

func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// dec is a cursor over a payload. The first failure sticks: every later
// read returns zero values, so decode functions check err once at the end.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// remaining returns the number of unread payload bytes.
func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, used := binary.Uvarint(d.b[d.off:])
	if used <= 0 {
		d.fail("malformed uvarint at offset %d", d.off)
		return 0
	}
	// A minimal varint never ends in an all-zero group; rejecting padded
	// forms keeps every value's encoding unique.
	if used > 1 && d.b[d.off+used-1] == 0 {
		d.fail("non-minimal uvarint at offset %d", d.off)
		return 0
	}
	d.off += used
	return v
}

// length decodes a count that prefixes a sequence whose elements each
// occupy at least minBytes encoded bytes; any count the remaining input
// cannot justify is rejected before allocation.
func (d *dec) length(what string, minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(d.remaining()/minBytes) {
		d.fail("%s count %d exceeds what %d remaining bytes can hold", what, v, d.remaining())
		return 0
	}
	return int(v)
}

// int decodes a uvarint that must fit a non-negative int.
func (d *dec) int(what string) int {
	v := d.uvarint()
	if v > math.MaxInt32 {
		d.fail("%s %d out of range", what, v)
		return 0
	}
	return int(v)
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated fixed64 at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated byte at offset %d", d.off)
		return 0
	}
	b := d.b[d.off]
	d.off++
	return b
}

func (d *dec) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("non-canonical bool at offset %d", d.off-1)
		return false
	}
}

func (d *dec) str(what string) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail("%s length %d exceeds limit %d", what, n, maxStringLen)
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail("truncated %s at offset %d", what, d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) raw(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.remaining() {
		d.fail("truncated %s at offset %d", what, d.off)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// done reports the sticky error, also rejecting unread trailing payload
// bytes so that every decodable payload has exactly one encoding.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing payload bytes", d.remaining())
	}
	return nil
}

// EncodeTranscript serializes a sealed transcript as one canonical frame:
// round count, then per round the player count, per player the bit-length
// plus the packed bits (LSB-first, exactly bitio.Writer's layout, final
// byte zero-padded), and finally the round's referee feedback bit-length
// plus packed bits (empty — a lone zero — for every round of a
// non-adaptive protocol).
func EncodeTranscript(t *engine.Transcript) []byte {
	var e enc
	appendTranscriptPayload(&e, t)
	return appendFrame(kindTranscript, e.b)
}

func appendTranscriptPayload(e *enc, t *engine.Transcript) {
	if t == nil {
		e.uint(0)
		return
	}
	packBits := func(r *bitio.Reader, nbit int) {
		for rem := nbit; rem > 0; rem -= 8 {
			w := min(rem, 8)
			b, _ := r.ReadUint(w)
			e.byte(byte(b))
		}
	}
	e.uint(t.Rounds())
	for round := 0; round < t.Rounds(); round++ {
		players := t.Players(round)
		e.uint(players)
		for v := 0; v < players; v++ {
			nbit := t.BitLen(round, v)
			e.uint(nbit)
			packBits(t.Message(round, v), nbit)
		}
		fbBits := t.FeedbackBitLen(round)
		e.uint(fbBits)
		if fbBits > 0 {
			packBits(t.Feedback(round), fbBits)
		}
	}
}

// DecodeTranscript inverts EncodeTranscript, rebuilding a sealed
// engine.Transcript under the engine's immutability contract. Corrupt
// input yields an error, never a panic; non-zero padding bits in a
// message's final byte are rejected so that decode(encode(t)) re-encodes
// byte-identically.
func DecodeTranscript(data []byte) (*engine.Transcript, error) {
	payload, err := openFrame(data, kindTranscript)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	t := decodeTranscriptPayload(d)
	if err := d.done(); err != nil {
		return nil, err
	}
	return t, nil
}

func decodeTranscriptPayload(d *dec) *engine.Transcript {
	t := engine.NewTranscript()
	readMessage := func(round, v int, what string) *bitio.Writer {
		nbit := d.int(what + " bit-length")
		if d.err != nil {
			return nil
		}
		nb := (nbit + 7) / 8
		buf := d.raw(nb, what+" bits")
		if d.err != nil {
			return nil
		}
		if rem := nbit % 8; rem != 0 && buf[nb-1]>>uint(rem) != 0 {
			d.fail("non-canonical padding bits in round %d %s %d", round, what, v)
			return nil
		}
		if nbit == 0 {
			return nil
		}
		w := &bitio.Writer{}
		for i, rem := 0, nbit; rem > 0; i, rem = i+1, rem-8 {
			w.WriteUint(uint64(buf[i]), min(rem, 8))
		}
		return w
	}
	rounds := d.length("round", 1)
	for round := 0; round < rounds; round++ {
		players := d.length("player", 1)
		msgs := make([]*bitio.Writer, players)
		for v := 0; v < players; v++ {
			msgs[v] = readMessage(round, v, "message")
			if d.err != nil {
				return t
			}
		}
		fb := readMessage(round, 0, "feedback")
		if d.err != nil {
			return t
		}
		t.SealRound(msgs)
		t.SealFeedback(fb)
	}
	return t
}

// TranscriptDigest returns a stable content address of a transcript: the
// hex SHA-256 of its canonical encoding. Because the encoding is
// canonical, two transcripts carry the same digest iff they are
// bit-identical — the check the local-vs-remote parity tests and the CI
// smoke sweep diff.
func TranscriptDigest(t *engine.Transcript) string {
	sum := sha256.Sum256(EncodeTranscript(t))
	return hex.EncodeToString(sum[:])
}

package wire

import (
	"bytes"
	"context"
	"testing"
)

// FuzzWireDecodeRunSpec asserts the RunSpec decoder never panics on
// arbitrary input — corrupt frames must come back as errors — and that
// every successfully decoded spec re-encodes canonically.
func FuzzWireDecodeRunSpec(f *testing.F) {
	for _, spec := range SmokeSpecs(4) {
		f.Add(EncodeRunSpec(spec))
	}
	f.Add([]byte{})
	f.Add([]byte("RSKW"))
	f.Add(appendFrame(kindRunSpec, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeRunSpec(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeRunSpec(spec), data) {
			t.Fatalf("accepted non-canonical run-spec encoding: %x", data)
		}
	})
}

// FuzzWireDecodeTranscript asserts the transcript decoder never panics on
// arbitrary input and that accepted frames are canonical: the rebuilt
// transcript re-encodes to exactly the input bytes.
func FuzzWireDecodeTranscript(f *testing.F) {
	// Seed with the first two specs plus a few registry-migrated
	// protocols whose messages have different shapes (palette lists,
	// float rescaling counts, two speaking players); the heavyweight
	// transcripts (mst-weight, agm-cut-sparsifier) are left out to keep
	// the fuzz iteration fast.
	seeds := SmokeSpecs(2)[:2:2]
	for _, spec := range SmokeSpecs(2) {
		switch spec.Label {
		case "palette-sparsification", "triangle-count", "equality-public-coin":
			seeds = append(seeds, spec)
		}
	}
	for _, spec := range seeds {
		report, err := ExecuteSpec(context.Background(), spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeTranscript(report.Transcript))
	}
	f.Add(EncodeTranscript(nil))
	f.Add(appendFrame(kindTranscript, []byte{1, 1, 3, 0xff}))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTranscript(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeTranscript(tr), data) {
			t.Fatalf("accepted non-canonical transcript encoding: %x", data)
		}
	})
}

package wire

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/engine"
)

// FuzzWireDecodeRunSpec asserts the RunSpec decoder never panics on
// arbitrary input — corrupt frames must come back as errors — and that
// every successfully decoded spec re-encodes canonically.
func FuzzWireDecodeRunSpec(f *testing.F) {
	for _, spec := range SmokeSpecs(4) {
		f.Add(EncodeRunSpec(spec))
	}
	f.Add([]byte{})
	f.Add([]byte("RSKW"))
	f.Add(appendFrame(kindRunSpec, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeRunSpec(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeRunSpec(spec), data) {
			t.Fatalf("accepted non-canonical run-spec encoding: %x", data)
		}
	})
}

// FuzzWireDecodeTranscript asserts the transcript decoder never panics on
// arbitrary input and that accepted frames are canonical: the rebuilt
// transcript re-encodes to exactly the input bytes.
func FuzzWireDecodeTranscript(f *testing.F) {
	// Seed with the first two specs plus a few registry-migrated
	// protocols whose messages have different shapes (palette lists,
	// float rescaling counts, two speaking players); the heavyweight
	// transcripts (mst-weight, agm-cut-sparsifier) are left out to keep
	// the fuzz iteration fast.
	// mm-tworound and fb-corrupt-mis-tworound carry non-empty referee
	// feedback, seeding the decoder's feedback lane (wire version 2).
	seeds := SmokeSpecs(2)[:2:2]
	for _, spec := range SmokeSpecs(2) {
		switch spec.Label {
		case "palette-sparsification", "triangle-count", "equality-public-coin",
			"mm-tworound", "fb-corrupt-mis-tworound":
			seeds = append(seeds, spec)
		}
	}
	for _, spec := range seeds {
		report, err := ExecuteSpec(context.Background(), spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeTranscript(report.Transcript))
	}
	f.Add(EncodeTranscript(nil))
	f.Add(appendFrame(kindTranscript, []byte{1, 1, 3, 0xff}))
	// One round, one empty player message, then a feedback field declaring
	// 3 bits with a non-canonical padding byte: exercises the feedback
	// decoder's rejection paths directly.
	f.Add(appendFrame(kindTranscript, []byte{1, 1, 0, 3, 0xff}))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTranscript(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeTranscript(tr), data) {
			t.Fatalf("accepted non-canonical transcript encoding: %x", data)
		}
	})
}

// FuzzWireDecodeRunStats asserts the run-stats decoder never panics on
// arbitrary input and that accepted frames are canonical, covering the
// version-2 additions (per-round player/feedback bit accounting and the
// feedback fault counters).
func FuzzWireDecodeRunStats(f *testing.F) {
	for _, spec := range []string{"mm-tworound", "agm-forest", "fb-corrupt-mis-tworound"} {
		for _, s := range SmokeSpecs(2) {
			if s.Label != spec {
				continue
			}
			report, err := ExecuteSpec(context.Background(), s)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(EncodeRunStats(&report.Stats))
		}
	}
	f.Add(EncodeRunStats(testStats()))
	f.Add(EncodeRunStats(&engine.RunStats{}))
	f.Add([]byte{})
	f.Add(appendFrame(kindRunStats, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeRunStats(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeRunStats(s), data) {
			t.Fatalf("accepted non-canonical run-stats encoding: %x", data)
		}
	})
}

package wire

import (
	"bytes"
	"context"
	"testing"
)

// TestSpecCacheKeyNormalizesResultNeutralFields: Label and Workers are
// the two fields that cannot change a result; every result-bearing
// field must change the key.
func TestSpecCacheKeyNormalizesResultNeutralFields(t *testing.T) {
	base := SmokeSpecs(1)[0]
	key := SpecCacheKey(base)

	relabeled := base
	relabeled.Label = "some-other-name"
	relabeled.Workers = 8
	if SpecCacheKey(relabeled) != key {
		t.Fatal("Label/Workers changed the cache key; they are result-neutral")
	}

	mutations := map[string]func(*RunSpec){
		"protocol":   func(s *RunSpec) { s.Protocol = "mm-tworound" },
		"graph kind": func(s *RunSpec) { s.Graph.Kind = "path" },
		"graph n":    func(s *RunSpec) { s.Graph.N++ },
		"graph p":    func(s *RunSpec) { s.Graph.P += 0.01 },
		"graph seed": func(s *RunSpec) { s.Graph.Seed++ },
		"coin seed":  func(s *RunSpec) { s.Seed++ },
		"fault drop": func(s *RunSpec) { s.Faults.Drop = 0.5 },
		"fault seed": func(s *RunSpec) { s.Faults.Seed++ },
	}
	for name, mutate := range mutations {
		spec := base
		mutate(&spec)
		if SpecCacheKey(spec) == key {
			t.Errorf("mutating %s left the cache key unchanged", name)
		}
	}
}

// TestCachedReportBytesIdentical is the memoization correctness
// argument in executable form: re-framing a stored result payload under
// the requesting spec's echo yields byte-for-byte the frame a fresh
// encoding would produce.
func TestCachedReportBytesIdentical(t *testing.T) {
	spec := SmokeSpecs(2)[3] // mm-tworound
	report, err := ExecuteSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	stored := EncodeResultPayload(report)
	if got, want := EncodeRunReportForSpec(spec, stored), EncodeRunReport(report); !bytes.Equal(got, want) {
		t.Fatal("cached re-framing diverges from fresh encoding")
	}
	// And the re-framed bytes decode back to the same transcript digest.
	decoded, err := DecodeRunReport(EncodeRunReportForSpec(spec, stored))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Digest() != report.Digest() {
		t.Fatal("digest drifted through the cache round trip")
	}
}

// TestResultSummaryPrefixDecode: a summary decodes from both the
// summary form and as a prefix of the full result payload.
func TestResultSummaryPrefixDecode(t *testing.T) {
	spec := SmokeSpecs(1)[4] // mis-tworound
	report, err := ExecuteSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string][]byte{
		"summary": EncodeResultSummary(&report.Stats, report.Outcome),
		"full":    EncodeResultPayload(report),
	} {
		stats, outcome, err := DecodeResultSummary(payload)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.TotalBits != report.Stats.TotalBits {
			t.Fatalf("%s: TotalBits %d != %d", name, stats.TotalBits, report.Stats.TotalBits)
		}
		if outcome != report.Outcome {
			t.Fatalf("%s: outcome %+v != %+v", name, outcome, report.Outcome)
		}
	}
	if _, _, err := DecodeResultSummary([]byte{0xff}); err == nil {
		t.Fatal("corrupt result payload must error, not panic")
	}
}

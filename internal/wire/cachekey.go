package wire

// Result memoization support. A seed-only RunSpec fully determines its
// transcript — that is the determinism contract the golden fixtures pin
// — so the canonical spec encoding is a content address for the result,
// and a result cache keyed by it can serve stored bytes in place of
// re-execution with no invalidation story at all.
//
// Two spec fields are normalized out of the key because they cannot
// influence the result: Label is a pure echo (it names the run in
// reports and logs), and Workers is a pure throughput knob (the
// engine's determinism contract makes every worker count produce the
// same transcript). Everything else — protocol, graph, seeds, fault
// plan — is result-bearing and stays in the key byte for byte.
//
// The cached value is the result payload: stats, outcome, transcript,
// in exactly the layout EncodeRunReport uses after the spec echo.
// Serving a hit is therefore pure concatenation — re-frame the stored
// bytes under the requesting spec's echo — and the response is
// byte-identical to what a fresh execution would have produced, except
// that the stats' wall-time and scheduling fields describe the
// execution that populated the cache (bit counts, outcome, resilience,
// and the transcript itself are execution-independent).

import "repro/internal/engine"

// SpecCacheKey returns the content address under which a spec's result
// may be memoized: the canonical payload encoding of the spec with the
// two result-neutral fields (Label, Workers) zeroed.
func SpecCacheKey(s RunSpec) string {
	s.Label = ""
	s.Workers = 0
	var e enc
	appendRunSpecPayload(&e, s)
	return string(e.b)
}

// EncodeResultPayload serializes the spec-independent portion of a
// report — stats, outcome, transcript — the value a result cache
// stores under SpecCacheKey.
func EncodeResultPayload(r *RunReport) []byte {
	var e enc
	appendRunStatsPayload(&e, &r.Stats)
	appendOutcomePayload(&e, r.Outcome)
	appendTranscriptPayload(&e, r.Transcript)
	return e.b
}

// EncodeResultSummary serializes only the stats and outcome — the
// portion a batch item carries. A summary is a prefix of the full
// result payload, so DecodeResultSummary reads either form.
func EncodeResultSummary(stats *engine.RunStats, o Outcome) []byte {
	var e enc
	appendRunStatsPayload(&e, stats)
	appendOutcomePayload(&e, o)
	return e.b
}

// DecodeResultSummary decodes the stats and outcome prefix of a cached
// result payload (full or summary form), without materializing a
// transcript.
func DecodeResultSummary(result []byte) (engine.RunStats, Outcome, error) {
	d := &dec{b: result}
	stats := decodeRunStatsPayload(d)
	o := decodeOutcomePayload(d)
	if d.err != nil {
		return engine.RunStats{}, Outcome{}, d.err
	}
	return *stats, o, nil
}

// EncodeRunReportForSpec frames a cached full result payload as a
// complete RunReport response echoing spec — byte-identical to
// EncodeRunReport of a report computed fresh for spec (modulo the
// stats caveat above), because both the spec payload and the stored
// result payload are canonical encodings.
func EncodeRunReportForSpec(spec RunSpec, result []byte) []byte {
	var e enc
	appendRunSpecPayload(&e, spec)
	e.raw(result)
	return appendFrame(kindRunReport, e.b)
}

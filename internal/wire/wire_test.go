package wire

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/engine"
)

// testStats builds a RunStats with every field populated.
func testStats() *engine.RunStats {
	return &engine.RunStats{
		Protocol:        "mm-tworound",
		N:               50,
		Rounds:          2,
		CompletedRounds: 2,
		Workers:         8,
		ShardSize:       3,
		Shards:          17,
		Broadcasts:      100,
		EmptyMessages:   4,
		MaxMessageBits:  1234,
		RoundMaxBits:    []int{1234, 900},
		RoundTotalBits:  []int64{40000, 31000},
		RoundBits: []engine.RoundStats{
			{PlayerBits: 40000, PlayerMaxBits: 1234, FeedbackBits: 297},
			{PlayerBits: 31000, PlayerMaxBits: 900, FeedbackBits: 0},
		},
		TotalBits:     71000,
		FeedbackBits:  297,
		Hist:          []engine.HistBucket{{Lo: 0, Hi: 1, Count: 4}, {Lo: 512, Hi: 1024, Count: 96}},
		RoundWall:     []time.Duration{time.Millisecond, 2 * time.Millisecond},
		ShardWall:     engine.TimerStats{Count: 34, Total: 3 * time.Millisecond, Max: time.Millisecond},
		BroadcastWall: 3 * time.Millisecond,
		DecodeWall:    time.Millisecond,
		TotalWall:     4 * time.Millisecond,
		PeakInFlight:  8,
		Faults: engine.FaultStats{
			Injected: true, Dropped: 3, Corrupted: 2, FlippedBits: 6, Straggled: 5,
			FeedbackDropped: 1, FeedbackCorrupted: 1,
			Resilience: core.ResilienceDegraded,
		},
	}
}

// testTranscript builds a small transcript with empty, byte-aligned, and
// ragged-length messages.
func testTranscript(t *testing.T) *engine.Transcript {
	t.Helper()
	tr := engine.NewTranscript()
	round := func(bits ...[]bool) {
		msgs := make([]*bitio.Writer, len(bits))
		for v, bs := range bits {
			if bs == nil {
				continue
			}
			w := &bitio.Writer{}
			for _, b := range bs {
				w.WriteBit(b)
			}
			msgs[v] = w
		}
		tr.SealRound(msgs)
	}
	round(nil, []bool{true, false, true}, []bool{true, true, true, true, true, true, true, true})
	round([]bool{false}, nil, []bool{true, false, true, false, true, false, true, false, true})
	return tr
}

func TestRunSpecRoundTrip(t *testing.T) {
	spec := RunSpec{
		Label:    "mm/trial3",
		Protocol: "mm-tworound",
		Graph:    GraphSpec{Kind: "gnp", N: 50, M: 2, R: 3, T: 4, P: 0.3, Seed: 13},
		Seed:     14,
		Workers:  8,
		Faults:   FaultSpec{Drop: 0.15, Corrupt: 0.1, Flip: 3, Straggle: 0.2, DelayNS: 100_000, FbDrop: 0.5, FbCorrupt: 0.25, Seed: 202},
	}
	got, err := DecodeRunSpec(EncodeRunSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("round trip changed spec:\n got %+v\nwant %+v", got, spec)
	}
}

func TestBatchSpecRoundTrip(t *testing.T) {
	specs := SmokeSpecs(4)
	got, err := DecodeBatchSpec(EncodeBatchSpec(specs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("got %d specs, want %d", len(got), len(specs))
	}
	for i := range specs {
		if got[i] != specs[i] {
			t.Fatalf("spec %d changed:\n got %+v\nwant %+v", i, got[i], specs[i])
		}
	}
}

func TestRunStatsRoundTrip(t *testing.T) {
	want := testStats()
	enc1 := EncodeRunStats(want)
	got, err := DecodeRunStats(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeRunStats(got), enc1) {
		t.Fatalf("stats round trip not byte-identical:\n got %+v\nwant %+v", got, want)
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	want := testStats()
	got, err := StatsFromJSON(StatsToJSON(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeRunStats(got), EncodeRunStats(want)) {
		t.Fatalf("stats JSON round trip drifted:\n got %+v\nwant %+v", got, want)
	}
}

func TestTranscriptRoundTrip(t *testing.T) {
	want := testTranscript(t)
	enc1 := EncodeTranscript(want)
	got, err := DecodeTranscript(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2 := EncodeTranscript(got)
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("decode(encode(t)) re-encodes differently")
	}
	if got.Rounds() != want.Rounds() {
		t.Fatalf("rounds: got %d want %d", got.Rounds(), want.Rounds())
	}
	for round := 0; round < want.Rounds(); round++ {
		if got.Players(round) != want.Players(round) {
			t.Fatalf("round %d players: got %d want %d", round, got.Players(round), want.Players(round))
		}
		for v := 0; v < want.Players(round); v++ {
			if got.BitLen(round, v) != want.BitLen(round, v) {
				t.Fatalf("round %d player %d bitlen: got %d want %d", round, v, got.BitLen(round, v), want.BitLen(round, v))
			}
		}
	}
}

func TestCrossVersionRejected(t *testing.T) {
	data := EncodeTranscript(testTranscript(t))
	data[4] = Version + 1
	_, err := DecodeTranscript(data)
	if err == nil {
		t.Fatal("future-version frame accepted")
	}
	if !strings.Contains(err.Error(), "unsupported wire version") || !strings.Contains(err.Error(), fmt.Sprintf("speaks version %d", Version)) {
		t.Fatalf("unclear cross-version error: %v", err)
	}
}

func TestFrameValidation(t *testing.T) {
	good := EncodeRunSpec(SmokeSpecs(1)[0])
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"short", func(b []byte) []byte { return b[:3] }, "too short"},
		{"magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"kind", func(b []byte) []byte { b[5] = kindTranscript; return b }, "holds a transcript"},
		{"unknown-kind", func(b []byte) []byte { b[5] = 200; return b }, "kind(200)"},
		{"truncated", func(b []byte) []byte { return b[:len(b)-2] }, "declares"},
		{"trailing", func(b []byte) []byte { return append(b, 0xff) }, "declares"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), good...))
			_, err := DecodeRunSpec(data)
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestNonCanonicalPaddingRejected(t *testing.T) {
	tr := engine.NewTranscript()
	w := &bitio.Writer{}
	w.WriteUint(0b101, 3)
	tr.SealRound([]*bitio.Writer{w})
	data := EncodeTranscript(tr)
	// The single message's packed byte sits just before the round's
	// trailing feedback length (zero, one byte); set one of the message's
	// five padding bits.
	data[len(data)-2] |= 1 << 6
	if _, err := DecodeTranscript(data); err == nil || !strings.Contains(err.Error(), "padding") {
		t.Fatalf("non-canonical padding not rejected: %v", err)
	}
}

func TestRunReportRoundTrip(t *testing.T) {
	report, err := ExecuteSpec(context.Background(), SmokeSpecs(2)[3]) // mm-tworound
	if err != nil {
		t.Fatal(err)
	}
	enc1 := EncodeRunReport(report)
	got, err := DecodeRunReport(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeRunReport(got), enc1) {
		t.Fatal("report round trip not byte-identical")
	}
	if got.Digest() != report.Digest() {
		t.Fatalf("digest drifted: got %s want %s", got.Digest(), report.Digest())
	}
	if !got.Outcome.Checked || !got.Outcome.Valid {
		t.Fatalf("mm outcome should verify maximal matching, got %+v", got.Outcome)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	report, err := ExecuteSpec(context.Background(), SmokeSpecs(1)[5]) // faulted agm backup
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReportFromJSON(ReportToJSON(report, true))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeTranscript(got.Transcript), EncodeTranscript(report.Transcript)) {
		t.Fatal("JSON round trip changed the transcript")
	}
	if got.Stats.Faults.Resilience != report.Stats.Faults.Resilience {
		t.Fatalf("resilience drifted: got %v want %v", got.Stats.Faults.Resilience, report.Stats.Faults.Resilience)
	}
	if !report.Stats.Faults.Injected {
		t.Fatal("faulted spec reported no injection")
	}
}

func TestExecuteSpecDeterministicAcrossWorkers(t *testing.T) {
	for _, spec := range SmokeSpecs(1) {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			r1, err := ExecuteSpec(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			spec.Workers = 8
			r8, err := ExecuteSpec(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Digest() != r8.Digest() {
				t.Fatalf("workers changed the transcript: 1 -> %s, 8 -> %s", r1.Digest(), r8.Digest())
			}
		})
	}
}

func TestExecuteBatchMatchesExecuteSpec(t *testing.T) {
	specs := SmokeSpecs(1)
	items := ExecuteBatch(context.Background(), &engine.Engine{Workers: 4}, specs)
	if len(items) != len(specs) {
		t.Fatalf("got %d items, want %d", len(items), len(specs))
	}
	for i, it := range items {
		if it.Err != "" {
			t.Fatalf("item %d (%s) failed: %s", i, it.Label, it.Err)
		}
		single, err := ExecuteSpec(context.Background(), specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if it.Stats.TotalBits != single.Stats.TotalBits || it.Stats.MaxMessageBits != single.Stats.MaxMessageBits {
			t.Fatalf("item %d (%s): batch stats diverge from single run", i, it.Label)
		}
		if it.Outcome != single.Outcome {
			t.Fatalf("item %d (%s): outcome %+v != %+v", i, it.Label, it.Outcome, single.Outcome)
		}
	}
}

func TestExecuteBatchReportRoundTrip(t *testing.T) {
	specs := []RunSpec{
		SmokeSpecs(1)[0],
		{Label: "bad", Protocol: "no-such-protocol", Graph: GraphSpec{Kind: "gnp", N: 5, P: 0.5}},
	}
	items := ExecuteBatch(context.Background(), &engine.Engine{Workers: 2}, specs)
	if items[1].Err == "" || !strings.Contains(items[1].Err, "unknown protocol") {
		t.Fatalf("bad spec not reported: %+v", items[1])
	}
	enc1 := EncodeBatchReport(items)
	got, err := DecodeBatchReport(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeBatchReport(got), enc1) {
		t.Fatal("batch report round trip not byte-identical")
	}
}

func TestValidateRejects(t *testing.T) {
	base := SmokeSpecs(1)[0]
	cases := []struct {
		name   string
		mutate func(*RunSpec)
	}{
		{"no-protocol", func(s *RunSpec) { s.Protocol = "" }},
		{"unknown-protocol", func(s *RunSpec) { s.Protocol = "nope" }},
		{"no-graph", func(s *RunSpec) { s.Graph.Kind = "" }},
		{"negative-workers", func(s *RunSpec) { s.Workers = -1 }},
		{"bad-drop", func(s *RunSpec) { s.Faults.Drop = 1.5 }},
		{"negative-delay", func(s *RunSpec) { s.Faults.DelayNS = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			if err := spec.Validate(); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestBuildGraphKinds(t *testing.T) {
	cases := []struct {
		spec  GraphSpec
		wantN int
	}{
		{GraphSpec{Kind: "gnp", N: 20, P: 0.5, Seed: 1}, 20},
		{GraphSpec{Kind: "gnp-bipartite", N: 4, M: 6, P: 0.5, Seed: 1}, 10},
		{GraphSpec{Kind: "path", N: 7}, 7},
		{GraphSpec{Kind: "cycle", N: 5}, 5},
		{GraphSpec{Kind: "complete", N: 6}, 6},
		{GraphSpec{Kind: "star", N: 9}, 9},
		{GraphSpec{Kind: "grid", R: 3, T: 4}, 12},
		{GraphSpec{Kind: "matching-union", N: 10, M: 2, Seed: 3}, 10},
		{GraphSpec{Kind: "rs-disjoint", R: 4, T: 8}, 0}, // N checked non-zero below
	}
	for _, tc := range cases {
		g, err := BuildGraph(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Kind, err)
		}
		if tc.wantN > 0 && g.N() != tc.wantN {
			t.Fatalf("%s: n=%d want %d", tc.spec.Kind, g.N(), tc.wantN)
		}
		if tc.wantN == 0 && g.N() == 0 {
			t.Fatalf("%s: empty graph", tc.spec.Kind)
		}
	}
	if _, err := BuildGraph(GraphSpec{Kind: "mystery"}); err == nil {
		t.Fatal("unknown graph kind accepted")
	}
	if _, err := BuildGraph(GraphSpec{Kind: "gnp", N: 10, P: 2}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
}

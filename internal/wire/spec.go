package wire

// RunSpec is the service's unit of work: everything a refereed daemon
// needs to reproduce one protocol execution bit-for-bit. Specs carry
// seeds, never materialized randomness — the daemon re-derives the public
// coin tree from RunSpec.Seed exactly as a local run does, which is what
// makes the local/remote transcript parity invariant possible at all.

import (
	"fmt"
	"time"

	"repro/internal/dynstream"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// GraphSpec names one deterministic input graph. Kind selects the
// generator; the other fields are its parameters (unused ones stay zero).
type GraphSpec struct {
	// Kind is the generator name: gnp, gnp-bipartite, path, cycle,
	// complete, star, grid, matching-union, rs-behrend, rs-disjoint,
	// dyn-churn.
	Kind string `json:"kind"`
	// N is the vertex count (gnp, path, cycle, complete, star,
	// matching-union) or the left side size (gnp-bipartite).
	N int `json:"n,omitempty"`
	// M is the right side size (gnp-bipartite), the Behrend family
	// parameter (rs-behrend), the matching count (matching-union), or
	// the epoch count (dyn-churn).
	M int `json:"m,omitempty"`
	// R and T are rows×cols (grid), matching size×count (rs-disjoint),
	// or ops-per-epoch×target-edges (dyn-churn).
	R int `json:"r,omitempty"`
	T int `json:"t,omitempty"`
	// P is the edge probability of the random families, or the churn
	// rate (dyn-churn).
	P float64 `json:"p,omitempty"`
	// Seed seeds the random families (ignored by deterministic ones).
	Seed uint64 `json:"seed,omitempty"`
}

// BuildGraph materializes a graph spec. The construction is a pure
// function of the spec, so every daemon and every local caller agree on
// the instance down to the adjacency order.
func BuildGraph(s GraphSpec) (*graph.Graph, error) {
	bad := func(format string, args ...any) (*graph.Graph, error) {
		return nil, fmt.Errorf("wire: graph %s: %s", s.Kind, fmt.Sprintf(format, args...))
	}
	needN := func(minimum int) error {
		if s.N < minimum {
			return fmt.Errorf("wire: graph %s: n must be >= %d, got %d", s.Kind, minimum, s.N)
		}
		return nil
	}
	switch s.Kind {
	case "gnp":
		if err := needN(1); err != nil {
			return nil, err
		}
		if s.P < 0 || s.P > 1 {
			return bad("edge probability %g outside [0,1]", s.P)
		}
		return gen.Gnp(s.N, s.P, rng.NewSource(s.Seed)), nil
	case "gnp-bipartite":
		if s.N < 1 || s.M < 1 {
			return bad("sides must be positive, got %d and %d", s.N, s.M)
		}
		if s.P < 0 || s.P > 1 {
			return bad("edge probability %g outside [0,1]", s.P)
		}
		return gen.GnpBipartite(s.N, s.M, s.P, rng.NewSource(s.Seed)), nil
	case "path":
		if err := needN(1); err != nil {
			return nil, err
		}
		return gen.Path(s.N), nil
	case "cycle":
		if err := needN(3); err != nil {
			return nil, err
		}
		return gen.Cycle(s.N), nil
	case "complete":
		if err := needN(1); err != nil {
			return nil, err
		}
		return gen.Complete(s.N), nil
	case "star":
		if err := needN(1); err != nil {
			return nil, err
		}
		return gen.Star(s.N), nil
	case "grid":
		if s.R < 1 || s.T < 1 {
			return bad("rows and cols must be positive, got %d and %d", s.R, s.T)
		}
		return gen.Grid(s.R, s.T), nil
	case "matching-union":
		if s.N < 2 || s.N%2 != 0 || s.M < 1 {
			return bad("need even n >= 2 and m >= 1 matchings, got n=%d m=%d", s.N, s.M)
		}
		return gen.RandomMatchingUnion(s.N, s.M, rng.NewSource(s.Seed)), nil
	case "rs-behrend":
		rs, err := rsgraph.BuildBehrend(s.M)
		if err != nil {
			return bad("%v", err)
		}
		return rs.G, nil
	case "rs-disjoint":
		if s.R < 1 || s.T < 1 {
			return bad("matching size and count must be positive, got r=%d t=%d", s.R, s.T)
		}
		return rsgraph.DisjointMatchings(s.R, s.T).G, nil
	case "dyn-churn":
		// A dynamic-stream instance: generate the seed-derived churn
		// stream (N vertices, M epochs of R ops, T target edges, churn
		// rate P) and materialize its final epoch. Stream generation is
		// a pure function of the spec, so daemons agree on the graph —
		// and on every earlier epoch, which the dynstream checkpoint
		// tests pin against from-scratch rebuilds.
		stream, err := dynstream.Generate(dynstream.Spec{
			N: s.N, Epochs: s.M, OpsPerEpoch: s.R,
			Pattern: dynstream.PatternChurn, TargetEdges: s.T, Churn: s.P,
			Seed: s.Seed,
		})
		if err != nil {
			return bad("%v", err)
		}
		return stream.FinalGraph(), nil
	default:
		return nil, fmt.Errorf("wire: unknown graph kind %q", s.Kind)
	}
}

// FaultSpec is the wire form of a fault plan plus the seed of the fault
// coin tree. The zero value injects nothing. The executor derives fault
// coins as NewPublicCoins(Seed).Derive("faults"), the same convention the
// committed faulted fixtures use, so faulted remote runs reproduce the
// exact damage pattern of their local counterparts.
type FaultSpec struct {
	Drop     float64 `json:"drop,omitempty"`
	Corrupt  float64 `json:"corrupt,omitempty"`
	Flip     int     `json:"flip,omitempty"`
	Straggle float64 `json:"straggle,omitempty"`
	DelayNS  int64   `json:"delay_ns,omitempty"`
	// FbDrop and FbCorrupt damage the referee's feedback downlink of
	// adaptive protocols (engine.Adaptive); both are no-ops on the empty
	// feedback of non-adaptive runs.
	FbDrop    float64 `json:"fb_drop,omitempty"`
	FbCorrupt float64 `json:"fb_corrupt,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
}

// Plan converts the spec to the faults package's plan.
func (f FaultSpec) Plan() faults.Plan {
	return faults.Plan{
		DropProb:            f.Drop,
		CorruptProb:         f.Corrupt,
		FlipBits:            f.Flip,
		StragglerProb:       f.Straggle,
		StragglerDelay:      time.Duration(f.DelayNS),
		FeedbackDropProb:    f.FbDrop,
		FeedbackCorruptProb: f.FbCorrupt,
	}
}

// FaultSpecFor converts a fault plan plus fault-coin seed to wire form.
func FaultSpecFor(p faults.Plan, seed uint64) FaultSpec {
	return FaultSpec{
		Drop:      p.DropProb,
		Corrupt:   p.CorruptProb,
		Flip:      p.FlipBits,
		Straggle:  p.StragglerProb,
		DelayNS:   int64(p.StragglerDelay),
		FbDrop:    p.FeedbackDropProb,
		FbCorrupt: p.FeedbackCorruptProb,
		Seed:      seed,
	}
}

// RunSpec fully determines one protocol execution.
type RunSpec struct {
	// Label names the run in reports and logs (optional).
	Label string `json:"label,omitempty"`
	// Protocol is a registry name — see Protocols().
	Protocol string `json:"protocol"`
	// Graph is the input instance.
	Graph GraphSpec `json:"graph"`
	// Seed roots the protocol's public coin tree: the executor runs with
	// rng.NewPublicCoins(Seed). Derived sub-streams (e.g. a sweep's
	// per-trial coins) are expressed by sending the derived node's Seed().
	Seed uint64 `json:"seed"`
	// Workers is the engine worker count; 0 selects GOMAXPROCS. The
	// engine's determinism contract makes this a pure throughput knob —
	// it can never change a transcript bit.
	Workers int `json:"workers,omitempty"`
	// Faults optionally injects seed-derived channel faults.
	Faults FaultSpec `json:"faults,omitempty"`
}

// Validate rejects specs no executor should attempt.
func (s RunSpec) Validate() error {
	if s.Protocol == "" {
		return fmt.Errorf("wire: spec has no protocol")
	}
	if _, err := lookupProtocol(s.Protocol); err != nil {
		return err
	}
	if s.Graph.Kind == "" {
		return fmt.Errorf("wire: spec has no graph kind")
	}
	if s.Workers < 0 {
		return fmt.Errorf("wire: workers must be >= 1 (or 0 for GOMAXPROCS), got %d", s.Workers)
	}
	p := s.Faults
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"corrupt", p.Corrupt}, {"straggle", p.Straggle},
		{"fb-drop", p.FbDrop}, {"fb-corrupt", p.FbCorrupt}} {
		if pr.v < 0 || pr.v > 1 || pr.v != pr.v {
			return fmt.Errorf("wire: fault %s probability %g outside [0,1]", pr.name, pr.v)
		}
	}
	if p.Flip < 0 {
		return fmt.Errorf("wire: fault flip count must be >= 0, got %d", p.Flip)
	}
	if p.DelayNS < 0 {
		return fmt.Errorf("wire: fault delay must be >= 0, got %dns", p.DelayNS)
	}
	return nil
}

// EncodeRunSpec serializes a spec as one frame.
func EncodeRunSpec(s RunSpec) []byte {
	var e enc
	appendRunSpecPayload(&e, s)
	return appendFrame(kindRunSpec, e.b)
}

func appendRunSpecPayload(e *enc, s RunSpec) {
	e.str(s.Label)
	e.str(s.Protocol)
	e.str(s.Graph.Kind)
	e.uint(s.Graph.N)
	e.uint(s.Graph.M)
	e.uint(s.Graph.R)
	e.uint(s.Graph.T)
	e.f64(s.Graph.P)
	e.u64(s.Graph.Seed)
	e.u64(s.Seed)
	e.uint(s.Workers)
	e.f64(s.Faults.Drop)
	e.f64(s.Faults.Corrupt)
	e.uint(s.Faults.Flip)
	e.f64(s.Faults.Straggle)
	e.uvarint(uint64(s.Faults.DelayNS))
	e.f64(s.Faults.FbDrop)
	e.f64(s.Faults.FbCorrupt)
	e.u64(s.Faults.Seed)
}

// DecodeRunSpec inverts EncodeRunSpec. It validates only the encoding,
// not the semantics — call Validate before executing.
func DecodeRunSpec(data []byte) (RunSpec, error) {
	payload, err := openFrame(data, kindRunSpec)
	if err != nil {
		return RunSpec{}, err
	}
	d := &dec{b: payload}
	s := decodeRunSpecPayload(d)
	if err := d.done(); err != nil {
		return RunSpec{}, err
	}
	return s, nil
}

func decodeRunSpecPayload(d *dec) RunSpec {
	var s RunSpec
	s.Label = d.str("label")
	s.Protocol = d.str("protocol name")
	s.Graph.Kind = d.str("graph kind")
	s.Graph.N = d.int("graph n")
	s.Graph.M = d.int("graph m")
	s.Graph.R = d.int("graph r")
	s.Graph.T = d.int("graph t")
	s.Graph.P = d.f64()
	s.Graph.Seed = d.u64()
	s.Seed = d.u64()
	s.Workers = d.int("workers")
	s.Faults.Drop = d.f64()
	s.Faults.Corrupt = d.f64()
	s.Faults.Flip = d.int("fault flip count")
	s.Faults.Straggle = d.f64()
	s.Faults.DelayNS = int64(d.uvarint())
	if s.Faults.DelayNS < 0 {
		d.fail("fault delay overflows")
	}
	s.Faults.FbDrop = d.f64()
	s.Faults.FbCorrupt = d.f64()
	s.Faults.Seed = d.u64()
	return s
}

// EncodeBatchSpec serializes a batch of specs as one frame.
func EncodeBatchSpec(specs []RunSpec) []byte {
	var e enc
	e.uint(len(specs))
	for _, s := range specs {
		appendRunSpecPayload(&e, s)
	}
	return appendFrame(kindBatchSpec, e.b)
}

// DecodeBatchSpec inverts EncodeBatchSpec.
func DecodeBatchSpec(data []byte) ([]RunSpec, error) {
	payload, err := openFrame(data, kindBatchSpec)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	n := d.length("batch spec", 8)
	specs := make([]RunSpec, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		specs = append(specs, decodeRunSpecPayload(d))
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return specs, nil
}

package wire

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sketchSignature matches a concrete implementation of the core sketching
// contract — a Sketch method taking a vertex view. Interface declarations
// (core.Protocol itself) spell the parameter type without the package
// qualifier, so they do not match.
var sketchSignature = regexp.MustCompile(`Sketch\(view core\.VertexView`)

// broadcastSignature matches a concrete implementation of the multi-round
// coordinator-clique contract — a Broadcast method taking the round and a
// vertex view. This is how the adaptive two-round and multi-pass
// semi-streaming protocols enter the engine, so a package can be a
// protocol package without ever matching sketchSignature.
var broadcastSignature = regexp.MustCompile(`\) Broadcast\(round int, view core\.VertexView`)

// registerCall extracts the names a register.go passes to
// protocol.Register / protocol.RegisterSketcher.
var registerCall = regexp.MustCompile(`protocol\.Register(?:Sketcher)?(?:\[[^\]]*\])?\(\s*"([^"]+)"`)

// protocolInfra lists packages that implement the Sketch or Broadcast
// contract as infrastructure rather than as a protocol: the registry's
// own adapters (internal/protocol) and the fault injector's wrappers
// (internal/faults). They are exempt from the must-register rule.
var protocolInfra = map[string]bool{"protocol": true, "faults": true}

// sketchingPackages walks internal/* and returns, per package directory
// that implements the Sketch contract in non-test code, the protocol
// names it registers (empty slice when it registers nothing).
func sketchingPackages(t *testing.T) map[string][]string {
	t.Helper()
	root := filepath.Join("..")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]string{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		sketches := false
		var names []string
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if sketchSignature.Match(src) {
				sketches = true
			}
			if broadcastSignature.Match(src) && !protocolInfra[e.Name()] {
				sketches = true
			}
			for _, m := range registerCall.FindAllSubmatch(src, -1) {
				names = append(names, string(m[1]))
			}
		}
		if sketches {
			out[e.Name()] = names
		}
	}
	if len(out) < 10 {
		t.Fatalf("found only %d sketching packages under internal/, the walk looks broken: %v", len(out), out)
	}
	return out
}

// TestEverySketchingPackageIsRegistered is the registry-completeness
// invariant: every internal package implementing the core Sketch/Decode
// contract must self-register at least one protocol, and every name it
// registers must resolve through wire.Protocols(). A package that adds a
// new sketching protocol without a register.go — or a registered name
// that the wire's blank-import list in protocols.go fails to link — both
// fail here.
func TestEverySketchingPackageIsRegistered(t *testing.T) {
	known := map[string]bool{}
	for _, name := range Protocols() {
		known[name] = true
	}
	for pkg, names := range sketchingPackages(t) {
		if len(names) == 0 {
			t.Errorf("internal/%s implements Sketch/Decode but registers no protocol (add a register.go)", pkg)
			continue
		}
		for _, name := range names {
			if !known[name] {
				t.Errorf("internal/%s registers %q, which is not resolvable through wire.Protocols() — is the package blank-imported in protocols.go?", pkg, name)
			}
		}
	}
}

// TestEveryProtocolHasSmokeSpec pins service-sweep coverage: every
// registered protocol appears in at least one SmokeSpecs entry, so the
// local-vs-remote parity tests and the committed fixtures exercise all
// of them.
func TestEveryProtocolHasSmokeSpec(t *testing.T) {
	covered := map[string]bool{}
	for _, spec := range SmokeSpecs(1) {
		covered[spec.Protocol] = true
	}
	for _, name := range Protocols() {
		if !covered[name] {
			t.Errorf("registered protocol %q has no SmokeSpecs entry", name)
		}
	}
}

// TestProtocolsSortedAndNonEmpty pins basic registry hygiene the README
// table and sweep labels rely on.
func TestProtocolsSortedAndNonEmpty(t *testing.T) {
	names := Protocols()
	if len(names) == 0 {
		t.Fatal("no protocols registered")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Protocols() not sorted/deduplicated at %q >= %q", names[i-1], names[i])
		}
	}
	if _, err := lookupProtocol(names[0]); err != nil {
		t.Fatalf("lookupProtocol(%q): %v", names[0], err)
	}
}

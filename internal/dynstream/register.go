package dynstream

// Wire registration: the semi-streaming (1+ε) maximum matching — the
// registry's first multi-pass protocol — self-registers for wire
// execution at the default slack. The verifier compares the output
// against the exact blossom optimum of the true input graph: valid means
// a vertex-disjoint edge set of g with |M| ≥ (1−ε)·|M*|.

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/protocol"
)

// IsApproxMaximumMatching reports whether out is a matching of g of size
// at least (1−eps) times the maximum matching size.
func IsApproxMaximumMatching(g *graph.Graph, out []graph.Edge, eps float64) bool {
	if !graph.IsMatching(g, out) {
		return false
	}
	opt := len(graph.MaximumMatching(g))
	return float64(len(out))+1e-9 >= (1-eps)*float64(opt)
}

func init() {
	protocol.Register("semistream-matching", func(g *graph.Graph) engine.Protocol[protocol.Outcome] {
		p := NewSemiStream(DefaultEps)
		return protocol.Adapt[[]graph.Edge](p, protocol.EdgesOutcome(g, func(g *graph.Graph, out []graph.Edge) bool {
			return IsApproxMaximumMatching(g, out, p.EpsOf())
		}))
	})
}

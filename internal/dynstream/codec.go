package dynstream

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/graph"
)

// Canonical stream encoding, in the spirit of the wire codec: equal
// streams encode to equal bytes and DecodeStream accepts exactly the
// encodings EncodeStream produces. The format is a header (vertex count,
// epoch count, ops per epoch as uvarints) followed by one record per op:
// an insert bit plus both endpoints at UintWidth(n) bits. Decoding
// re-validates the simple-graph evolution invariant — inserts of absent
// edges, deletes of present edges, no loops, endpoints in range — so a
// decoded stream is safe to feed to a Maintainer without further checks.

// streamLimit bounds decoded sizes so a hostile header cannot demand a
// huge allocation before the payload check fails.
const streamLimit = 1 << 24

// EncodeStream serializes a stream canonically.
func EncodeStream(s *Stream) []byte {
	w := &bitio.Writer{}
	w.WriteUvarint(uint64(s.n))
	w.WriteUvarint(uint64(s.Epochs()))
	w.WriteUvarint(uint64(s.opsPerEpoch))
	idWidth := bitio.UintWidth(s.n)
	for _, op := range s.ops {
		w.WriteBit(op.Insert)
		w.WriteUint(uint64(op.U), idWidth)
		w.WriteUint(uint64(op.V), idWidth)
	}
	return append([]byte(nil), w.Bytes()...)
}

// DecodeStream inverts EncodeStream, rejecting malformed encodings and
// illegal op sequences. Only trailing padding within the final byte is
// tolerated (and it must be zero, to keep the encoding canonical).
func DecodeStream(data []byte) (*Stream, error) {
	r := bitio.NewReader(data, len(data)*8)
	rdUvarint := func(name string) (uint64, error) {
		v, err := r.ReadUvarint()
		if err != nil {
			return 0, fmt.Errorf("dynstream: decode %s: %w", name, err)
		}
		if v > streamLimit {
			return 0, fmt.Errorf("dynstream: decode %s: %d exceeds limit", name, v)
		}
		return v, nil
	}
	n, err := rdUvarint("n")
	if err != nil {
		return nil, err
	}
	epochs, err := rdUvarint("epochs")
	if err != nil {
		return nil, err
	}
	opsPerEpoch, err := rdUvarint("ops per epoch")
	if err != nil {
		return nil, err
	}
	if n < 2 || epochs < 1 || opsPerEpoch < 1 {
		return nil, errors.New("dynstream: decode: degenerate header")
	}
	total := epochs * opsPerEpoch
	if total > streamLimit {
		return nil, fmt.Errorf("dynstream: decode: %d ops exceed limit", total)
	}
	idWidth := bitio.UintWidth(int(n))
	ops := make([]Op, 0, total)
	present := make(map[graph.Edge]bool)
	for i := uint64(0); i < total; i++ {
		insert, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("dynstream: decode op %d: %w", i, err)
		}
		u, err := r.ReadUint(idWidth)
		if err != nil {
			return nil, fmt.Errorf("dynstream: decode op %d: %w", i, err)
		}
		v, err := r.ReadUint(idWidth)
		if err != nil {
			return nil, fmt.Errorf("dynstream: decode op %d: %w", i, err)
		}
		if u >= n || v >= n || u == v {
			return nil, fmt.Errorf("dynstream: decode op %d: endpoints (%d,%d) invalid for n=%d", i, u, v, n)
		}
		e := graph.NewEdge(int(u), int(v))
		if insert == present[e] {
			verb := "insert of present"
			if !insert {
				verb = "delete of absent"
			}
			return nil, fmt.Errorf("dynstream: decode op %d: %s edge (%d,%d)", i, verb, u, v)
		}
		present[e] = insert
		ops = append(ops, Op{Insert: insert, U: int(u), V: int(v)})
	}
	if rem := r.Remaining(); rem >= 8 {
		return nil, fmt.Errorf("dynstream: decode: %d trailing bits", rem)
	}
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b {
			return nil, errors.New("dynstream: decode: nonzero trailing padding")
		}
	}
	return &Stream{n: int(n), opsPerEpoch: int(opsPerEpoch), ops: ops}, nil
}

package dynstream

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/graph"
	"repro/internal/l0"
	"repro/internal/rng"
)

// EdgeIndex maps edge {u, v} of an n-vertex graph into the n² incidence
// universe — the same min·n+max convention the AGM sketches use, so
// maintained sketches are interchangeable with statically-built ones.
func EdgeIndex(n, u, v int) uint64 {
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	return uint64(lo)*uint64(n) + uint64(hi)
}

// Samplers derives a stack of ℓ₀-sampler specs over the n² edge-incidence
// universe from public coins — the maintenance analogue of a protocol's
// per-repetition sampler derivation. Two parties deriving from the same
// coins obtain interchangeable stacks.
func Samplers(n, count int, coins *rng.PublicCoins) []l0.Spec {
	universe := uint64(n) * uint64(n)
	c := coins.Derive("dynstream-samplers")
	specs := make([]l0.Spec, count)
	for i := range specs {
		specs[i] = l0.NewSpec(universe, c.DeriveIndex(i))
	}
	return specs
}

// Options configures a Maintainer's execution strategy. Like the
// engine's Workers knob, neither field can change a checkpoint bit —
// they are throughput levers only, and maintain_test.go holds them to
// that.
type Options struct {
	// Workers is the number of concurrent apply workers; <= 0 selects 1.
	// Vertices are sharded into contiguous ranges, one per worker, and
	// every worker scans the whole batch applying only its own lanes, so
	// each vertex's update order equals the op order regardless of the
	// worker count.
	Workers int
	// Block routes updates through the columnar Bank/UpdateBlock path
	// instead of scalar per-sketch Spec.Update calls.
	Block bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 1
}

// Maintainer holds the per-vertex ℓ₀ sketch stacks of an evolving
// n-vertex graph and applies insert/delete batches incrementally. The
// incidence convention matches the AGM sketches: edge {u,v} contributes
// +1 at EdgeIndex to the smaller endpoint's vector and −1 to the larger
// endpoint's, so a deletion is the same update with flipped signs and a
// referee summing a component's sketches sees internal edges cancel.
type Maintainer struct {
	n     int
	specs []l0.Spec
	opts  Options

	// Scalar state: perVert[v][i] is vertex v's sketch under specs[i].
	perVert [][]*l0.Sketch
	// Block state: banks[i] holds all n lanes of specs[i]; updates[w] is
	// worker w's reusable gather scratch.
	banks   []*l0.Bank
	updates []*l0.BlockUpdates

	applied int // ops applied so far
}

// NewMaintainer returns the all-zero maintainer state for an n-vertex
// graph under the given sampler stack.
func NewMaintainer(n int, specs []l0.Spec, opts Options) *Maintainer {
	m := &Maintainer{n: n, specs: specs, opts: opts}
	if opts.Block {
		m.banks = make([]*l0.Bank, len(specs))
		for i, sp := range specs {
			m.banks[i] = l0.NewBank()
			m.banks[i].Reset(sp.Levels(), n)
		}
		m.updates = make([]*l0.BlockUpdates, opts.workers())
		for w := range m.updates {
			m.updates[w] = &l0.BlockUpdates{}
		}
		return m
	}
	m.perVert = make([][]*l0.Sketch, n)
	for v := range m.perVert {
		m.perVert[v] = make([]*l0.Sketch, len(specs))
		for i, sp := range specs {
			m.perVert[v][i] = sp.NewSketch()
		}
	}
	return m
}

// N returns the vertex count.
func (m *Maintainer) N() int { return m.n }

// Applied returns the number of ops applied so far.
func (m *Maintainer) Applied() int { return m.applied }

// ApplyBatch applies one batch of ops. Each op touches two lanes (±1 at
// the edge's incidence index, opposite signs at the two endpoints);
// lanes are sharded contiguously across the configured workers. The ops
// must describe a legal evolution of the current graph; Generate and
// DecodeStream both guarantee that, so no per-op validation happens
// here beyond the universe check inside l0.
func (m *Maintainer) ApplyBatch(ops []Op) {
	workers := m.opts.workers()
	if workers > m.n {
		workers = m.n
	}
	if workers <= 1 {
		m.applyRange(0, 0, m.n, ops)
	} else {
		var wg sync.WaitGroup
		per := (m.n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := min(lo+per, m.n)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				m.applyRange(w, lo, hi, ops)
			}(w, lo, hi)
		}
		wg.Wait()
	}
	m.applied += len(ops)
}

// applyRange applies the batch's updates for lanes in [lo, hi). Workers
// write disjoint lane ranges of shared banks (or disjoint per-vertex
// sketches), so concurrent calls never touch the same memory.
func (m *Maintainer) applyRange(worker, lo, hi int, ops []Op) {
	if m.opts.Block {
		upd := m.updates[worker]
		upd.Reset()
		for _, op := range ops {
			idx := EdgeIndex(m.n, op.U, op.V)
			small, large := op.U, op.V
			if small > large {
				small, large = large, small
			}
			if small >= lo && small < hi {
				upd.Add(small, idx, !op.Insert) // smaller endpoint: +1 on insert
			}
			if large >= lo && large < hi {
				upd.Add(large, idx, op.Insert) // larger endpoint: −1 on insert
			}
		}
		if upd.Len() == 0 {
			return
		}
		for i, sp := range m.specs {
			sp.UpdateBlock(m.banks[i], upd)
		}
		return
	}
	for _, op := range ops {
		idx := EdgeIndex(m.n, op.U, op.V)
		dir := int64(-1)
		if op.Insert {
			dir = 1
		}
		small, large := op.U, op.V
		if small > large {
			small, large = large, small
		}
		if small >= lo && small < hi {
			for i, sp := range m.specs {
				sp.Update(m.perVert[small][i], idx, dir)
			}
		}
		if large >= lo && large < hi {
			for i, sp := range m.specs {
				sp.Update(m.perVert[large][i], idx, -dir)
			}
		}
	}
}

// writeVertex serializes vertex v's sketch stack (all specs in order) —
// the same wire layout whichever path maintains the state, by the Bank's
// serialization contract.
func (m *Maintainer) writeVertex(w *bitio.Writer, v int) {
	if m.opts.Block {
		for _, b := range m.banks {
			b.WriteLane(w, v)
		}
		return
	}
	for _, sk := range m.perVert[v] {
		sk.Write(w)
	}
}

// Checkpoint snapshots the current sketch state: one serialized sketch
// stack per vertex plus the matching per-vertex checksums. Checkpoints
// are immutable and independent of later ApplyBatch calls.
type Checkpoint struct {
	// Ops is the stream-prefix length (ops applied) the snapshot covers.
	Ops   int
	bufs  [][]byte
	nbits []int
	sums  []uint32
}

// Checkpoint snapshots the maintainer's current state.
func (m *Maintainer) Checkpoint() *Checkpoint {
	c := &Checkpoint{
		Ops:   m.applied,
		bufs:  make([][]byte, m.n),
		nbits: make([]int, m.n),
		sums:  make([]uint32, m.n),
	}
	for v := 0; v < m.n; v++ {
		w := &bitio.Writer{}
		m.writeVertex(w, v)
		c.bufs[v] = append([]byte(nil), w.Bytes()...)
		c.nbits[v] = w.Len()
		c.sums[v] = m.vertexChecksum(v)
	}
	return c
}

// vertexChecksum folds the per-spec sketch checksums of one vertex into
// a single word (scalar Sketch.Checksum and Bank.LaneChecksum agree by
// construction, so both paths produce identical values).
func (m *Maintainer) vertexChecksum(v int) uint32 {
	var h uint32
	if m.opts.Block {
		for _, b := range m.banks {
			h = h*0x01000193 ^ b.LaneChecksum(v)
		}
		return h
	}
	for _, sk := range m.perVert[v] {
		h = h*0x01000193 ^ sk.Checksum()
	}
	return h
}

// Players returns the number of per-vertex entries.
func (c *Checkpoint) Players() int { return len(c.bufs) }

// Vertex returns a fresh reader over vertex v's serialized sketch stack.
func (c *Checkpoint) Vertex(v int) *bitio.Reader {
	return bitio.NewReader(c.bufs[v], c.nbits[v])
}

// BitLen returns the serialized length of vertex v's stack in bits.
func (c *Checkpoint) BitLen(v int) int { return c.nbits[v] }

// Checksum returns vertex v's folded sketch checksum.
func (c *Checkpoint) Checksum(v int) uint32 { return c.sums[v] }

// Digest content-addresses the checkpoint: SHA-256 over every vertex's
// length-framed sketch bytes. Two checkpoints are byte-identical exactly
// when their digests agree, which is what the epoch-parity tests (and
// E50's parity column) compare.
func (c *Checkpoint) Digest() string {
	h := sha256.New()
	var frame [8]byte
	for v := range c.bufs {
		binary.LittleEndian.PutUint64(frame[:], uint64(c.nbits[v]))
		h.Write(frame[:])
		h.Write(c.bufs[v])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Run is one processed stream: the maintainer's checkpoint at every
// epoch boundary, in order — the epoch/checkpoint API protocols use to
// query sketches at any stream prefix.
type Run struct {
	Stream      *Stream
	Checkpoints []*Checkpoint
}

// At returns the checkpoint after the given epoch.
func (r *Run) At(epoch int) *Checkpoint { return r.Checkpoints[epoch] }

// Process applies the whole stream epoch by epoch, checkpointing at
// every epoch boundary.
func Process(s *Stream, specs []l0.Spec, opts Options) *Run {
	m := NewMaintainer(s.N(), specs, opts)
	run := &Run{Stream: s, Checkpoints: make([]*Checkpoint, 0, s.Epochs())}
	for e := 0; e < s.Epochs(); e++ {
		m.ApplyBatch(s.EpochOps(e))
		run.Checkpoints = append(run.Checkpoints, m.Checkpoint())
	}
	return run
}

// Rebuild sketches a materialized graph from scratch (single worker,
// scalar path, edges in sorted graph order) and returns the resulting
// checkpoint — the independent reference incremental maintenance must
// match byte for byte. Linearity is what makes the comparison fair: the
// sketch of the net graph does not depend on the update order or on
// cancelled edges, so any legal stream prefix with this net graph must
// land on exactly these bytes.
func Rebuild(g *graph.Graph, specs []l0.Spec) *Checkpoint {
	m := NewMaintainer(g.N(), specs, Options{})
	edges := g.Edges()
	ops := make([]Op, len(edges))
	for i, e := range edges {
		ops[i] = Op{Insert: true, U: e.U, V: e.V}
	}
	m.ApplyBatch(ops)
	return m.Checkpoint()
}

// VerifyEpochParity checks a processed run's checkpoints against
// from-scratch rebuilds of the materialized graph at every epoch,
// returning the first divergence as an error.
func VerifyEpochParity(run *Run, specs []l0.Spec) error {
	for e, c := range run.Checkpoints {
		want := Rebuild(run.Stream.GraphAt(e), specs)
		if c.Digest() != want.Digest() {
			return fmt.Errorf("dynstream: epoch %d checkpoint diverges from rebuild (%s != %s)",
				e, c.Digest()[:12], want.Digest()[:12])
		}
	}
	return nil
}

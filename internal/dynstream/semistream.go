package dynstream

import (
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// SemiStream is the repository's first multi-pass protocol: a
// semi-streaming-flavored (1+ε)-approximate maximum matching, run as
// 2k+2 adaptive passes for k = ⌈1/ε⌉ over the engine's referee feedback
// lane (cf. the multi-pass streaming matching line of work the ROADMAP
// cites, arXiv:2412.19057).
//
// The pass structure implements augmenting-path discovery: by Hopcroft–
// Karp, a matching M with no augmenting path shorter than 2k+1 edges
// already has |M| ≥ k/(k+1)·|M*| ≥ (1−ε)·|M*|, so the referee only needs
// to see the edges lying on short augmenting paths. Each pass:
//
//   - every player reports a capped batch of incident edges it has not
//     reported before — pass 0 a uniform seed sample, later passes the
//     edges selected by the referee's last feedback;
//   - the referee pools every reported edge (the pool only grows),
//     recomputes a maximum matching M_r of the pool with the exact
//     blossom algorithm (the model's referee is computationally
//     unbounded; only communication is scarce), and broadcasts as
//     feedback M_r plus the "active set" A_r — every vertex within
//     pool-distance 2k of a vertex left free by M_r, the region where a
//     short augmenting path can live;
//   - on the next pass, active players report their whole (capped)
//     neighborhood and passive players report only their edges into the
//     active set, extending the discovered alternating structure by one
//     hop per pass.
//
// After the final pass the referee outputs a maximum matching of the
// pool. The referee's feedback derivation is a pure function of the
// sealed transcript and the public coins, so the engine's determinism
// contract extends to every pass; the (1−ε) guarantee is enforced
// empirically — the registry verifier and the E50 sweep compare |M|
// against the blossom optimum of the true input graph.
type SemiStream struct {
	// Eps is the approximation slack; 0 selects DefaultEps.
	Eps float64
	// SeedBudget is the pass-0 sample size in edges; 0 selects ⌈√n⌉.
	SeedBudget int
	// Cap bounds any single report in edges; 0 selects
	// ⌈8·√n·log2(n+1)⌉. Reports at the cap surface as a degraded
	// resilience verdict, never as silent truncation.
	Cap int
}

// DefaultEps is the registry builder's approximation slack.
const DefaultEps = 0.25

var (
	_ cclique.Protocol[[]graph.Edge] = (*SemiStream)(nil)
	_ engine.Adaptive                = (*SemiStream)(nil)
)

// NewSemiStream returns the protocol with the given slack (0 selects
// DefaultEps) and default budgets.
func NewSemiStream(eps float64) *SemiStream { return &SemiStream{Eps: eps} }

// EpsOf returns the effective approximation slack.
func (p *SemiStream) EpsOf() float64 {
	if p.Eps > 0 {
		return p.Eps
	}
	return DefaultEps
}

// k is the augmenting-path depth parameter ⌈1/ε⌉.
func (p *SemiStream) k() int { return int(math.Ceil(1 / p.EpsOf())) }

// Name implements cclique.Protocol.
func (p *SemiStream) Name() string { return fmt.Sprintf("semistream-matching(eps=%g)", p.EpsOf()) }

// Rounds implements cclique.Protocol: one seed pass, then one pass per
// discovery hop up to the maximal relevant alternating depth 2k, plus a
// settling pass after the last feedback.
func (p *SemiStream) Rounds() int { return 2*p.k() + 2 }

func (p *SemiStream) seedBudget(n int) int {
	if p.SeedBudget > 0 {
		return p.SeedBudget
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

func (p *SemiStream) capEdges(n int) int {
	if p.Cap > 0 {
		return p.Cap
	}
	return int(math.Ceil(8 * math.Sqrt(float64(n)) * math.Log2(float64(n)+1)))
}

// readReport parses one player's report (uvarint count + neighbor IDs)
// tolerantly: malformed entries are skipped, and ok reports whether the
// message parsed cleanly end to end. count is the declared length, for
// cap accounting.
func readReport(n, v int, r *bitio.Reader) (neighbors []int, count uint64, ok bool) {
	ok = true
	if r == nil || r.Remaining() == 0 {
		return nil, 0, false
	}
	k, err := r.ReadUvarint()
	if err != nil {
		return nil, 0, false
	}
	idWidth := bitio.UintWidth(n)
	for i := uint64(0); i < k; i++ {
		u, err := r.ReadUint(idWidth)
		if err != nil {
			return neighbors, k, false
		}
		if int(u) >= n || int(u) == v {
			ok = false
			continue
		}
		neighbors = append(neighbors, int(u))
	}
	if r.Remaining() != 0 {
		ok = false
	}
	return neighbors, k, ok
}

// pool gathers every edge reported in sealed rounds 0..upto (inclusive),
// plus the count of messages that failed to parse cleanly per round.
func (p *SemiStream) pool(n int, t *cclique.Transcript, upto int) (edges []graph.Edge, bad []int) {
	seen := make(map[graph.Edge]bool)
	bad = make([]int, upto+1)
	for round := 0; round <= upto; round++ {
		for v := 0; v < n; v++ {
			neighbors, _, ok := readReport(n, v, t.Message(round, v))
			if !ok {
				bad[round]++
			}
			for _, u := range neighbors {
				e := graph.NewEdge(v, u)
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
		}
	}
	return edges, bad
}

// refereeState computes the feedback content after the given sealed
// round: the blossom maximum matching of the pooled edges and the active
// set (vertices within pool-distance 2k of a free vertex).
func (p *SemiStream) refereeState(n int, t *cclique.Transcript, round int) (matching []graph.Edge, active []bool) {
	edges, _ := p.pool(n, t, round)
	pooled := graph.FromEdges(n, edges)
	matching = graph.MaximumMatching(pooled)
	matched := make([]bool, n)
	for _, e := range matching {
		matched[e.U], matched[e.V] = true, true
	}
	// BFS to depth 2k from every free vertex, in the pooled graph.
	active = make([]bool, n)
	depth := make([]int, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		depth[v] = -1
		if !matched[v] {
			depth[v] = 0
			active[v] = true
			queue = append(queue, v)
		}
	}
	limit := 2 * p.k()
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if depth[v] >= limit {
			continue
		}
		for _, u := range pooled.Neighbors(v) {
			if depth[u] < 0 {
				depth[u] = depth[v] + 1
				active[u] = true
				queue = append(queue, u)
			}
		}
	}
	return matching, active
}

// Feedback implements engine.Adaptive: after every pass except the last
// the referee broadcasts its current pool matching (uvarint count, then
// both endpoints at id width) followed by the n-bit active-set mask.
// After the final pass the referee is silent.
func (p *SemiStream) Feedback(round int, t *cclique.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if round >= p.Rounds()-1 {
		return nil, nil
	}
	n := t.Players(round)
	matching, active := p.refereeState(n, t, round)
	w := bitio.NewPooledWriter()
	idWidth := bitio.UintWidth(n)
	w.WriteUvarint(uint64(len(matching)))
	for _, e := range matching {
		w.WriteUint(uint64(e.U), idWidth)
		w.WriteUint(uint64(e.V), idWidth)
	}
	for v := 0; v < n; v++ {
		w.WriteBit(active[v])
	}
	return w, nil
}

// readFeedback parses a feedback message into the matched-vertex and
// active-set masks. Tolerant like readReport; ok reports a clean parse.
func readFeedback(n int, r *bitio.Reader) (matched, active []bool, ok bool) {
	matched = make([]bool, n)
	active = make([]bool, n)
	ok = true
	if r == nil || r.Remaining() == 0 {
		return matched, active, false
	}
	k, err := r.ReadUvarint()
	if err != nil {
		return matched, active, false
	}
	idWidth := bitio.UintWidth(n)
	for i := uint64(0); i < k; i++ {
		u, err := r.ReadUint(idWidth)
		if err != nil {
			return matched, active, false
		}
		v, err := r.ReadUint(idWidth)
		if err != nil {
			return matched, active, false
		}
		if int(u) >= n || int(v) >= n || u == v {
			ok = false
			continue
		}
		matched[u], matched[v] = true, true
	}
	for v := 0; v < n; v++ {
		b, err := r.ReadBit()
		if err != nil {
			return matched, active, false
		}
		active[v] = b
	}
	if r.Remaining() != 0 {
		ok = false
	}
	return matched, active, ok
}

// sentBefore replays player v's own earlier reports from the sealed
// transcript — the deduplication state a streaming player would keep
// locally, reconstructed from public information so the protocol stays
// stateless across passes.
func sentBefore(n, v, round int, t *cclique.Transcript) map[int]bool {
	sent := make(map[int]bool)
	for r := 0; r < round; r++ {
		neighbors, _, _ := readReport(n, v, t.Message(r, v))
		for _, u := range neighbors {
			sent[u] = true
		}
	}
	return sent
}

// writeReport encodes a report, applying the cap with a coin-derived
// uniform truncation (never silent: the referee sees count == cap and
// demotes the run's resilience verdict).
func (p *SemiStream) writeReport(view core.VertexView, round int, neighbors []int, coins *rng.PublicCoins) *bitio.Writer {
	capEdges := p.capEdges(view.N)
	if len(neighbors) > capEdges {
		src := coins.Derive("semistream-cap").DeriveIndex(round*view.N + view.ID).Source()
		src.Shuffle(len(neighbors), func(i, j int) { neighbors[i], neighbors[j] = neighbors[j], neighbors[i] })
		neighbors = neighbors[:capEdges]
	}
	w := bitio.NewPooledWriter()
	idWidth := bitio.UintWidth(view.N)
	w.WriteUvarint(uint64(len(neighbors)))
	for _, u := range neighbors {
		w.WriteUint(uint64(u), idWidth)
	}
	return w
}

// Broadcast implements cclique.Protocol. Pass 0 seeds the pool with a
// uniform sample; every later pass reports the not-yet-reported incident
// edges the last feedback selects — all of them for an active vertex,
// only those into the active set for a passive one.
func (p *SemiStream) Broadcast(round int, view core.VertexView, t *cclique.Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	if round >= p.Rounds() {
		return nil, fmt.Errorf("dynstream: unexpected round %d", round)
	}
	if round == 0 {
		budget := p.seedBudget(view.N)
		k := min(budget, view.Degree())
		src := coins.Derive("semistream-seed").DeriveIndex(view.ID).Source()
		perm := src.Perm(view.Degree())
		neighbors := make([]int, k)
		for i := 0; i < k; i++ {
			neighbors[i] = view.Neighbors[perm[i]]
		}
		return p.writeReport(view, round, neighbors, coins), nil
	}
	_, active, _ := readFeedback(view.N, t.Feedback(round-1))
	sent := sentBefore(view.N, view.ID, round, t)
	var neighbors []int
	for _, u := range view.Neighbors {
		if sent[u] {
			continue
		}
		if active[view.ID] || active[u] {
			neighbors = append(neighbors, u)
		}
	}
	return p.writeReport(view, round, neighbors, coins), nil
}

// Decode implements cclique.Protocol: the output is the blossom maximum
// matching of every edge any player ever reported.
func (p *SemiStream) Decode(n int, t *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, error) {
	edges, _ := p.pool(n, t, p.Rounds()-1)
	return graph.MaximumMatching(graph.FromEdges(n, edges)), nil
}

// DecodeResilient is Decode with damage accounting, satisfying
// faults.ResilientProtocol:
//
//   - ok: every report of every pass parsed cleanly, no report was at
//     the cap, and every sealed feedback equals the referee's own
//     recomputation from the sealed uplink;
//   - degraded: some reports were missing/garbled (their parseable
//     prefix still contributes), a report hit the cap (possible
//     truncation), or a sealed feedback diverged from recomputation (a
//     damaged downlink — players acted on feedback the referee never
//     sent);
//   - failed: more than half the players were damaged in some pass.
func (p *SemiStream) DecodeResilient(n int, t *cclique.Transcript, coins *rng.PublicCoins) ([]graph.Edge, core.Resilience, error) {
	out, err := p.Decode(n, t, coins)
	if err != nil {
		return nil, core.ResilienceFailed, err
	}
	_, bad := p.pool(n, t, p.Rounds()-1)
	capEdges := p.capEdges(n)
	capHits := 0
	for round := 0; round < p.Rounds(); round++ {
		for v := 0; v < n; v++ {
			if _, count, _ := readReport(n, v, t.Message(round, v)); count >= uint64(capEdges) {
				capHits++
			}
		}
	}
	fbDamaged := false
	for round := 0; round < p.Rounds()-1; round++ {
		w, err := p.Feedback(round, t, coins)
		if err != nil {
			return out, core.ResilienceFailed, err
		}
		sealed := t.Feedback(round)
		recomputed := bitio.ReaderFor(w)
		if !readersEqual(sealed, recomputed) {
			fbDamaged = true
		}
		bitio.Release(w)
	}
	worst := 0
	for _, b := range bad {
		worst = max(worst, b)
	}
	switch {
	case 2*worst > n:
		return out, core.ResilienceFailed, nil
	case worst > 0 || capHits > 0 || fbDamaged:
		return out, core.ResilienceDegraded, nil
	default:
		return out, core.ResilienceOK, nil
	}
}

// readersEqual compares two bit readers' full contents.
func readersEqual(a, b *bitio.Reader) bool {
	if a.Remaining() != b.Remaining() {
		return false
	}
	for a.Remaining() > 0 {
		x, err1 := a.ReadBit()
		y, err2 := b.ReadBit()
		if err1 != nil || err2 != nil || x != y {
			return false
		}
	}
	return true
}

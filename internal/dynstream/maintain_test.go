package dynstream

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// TestEpochParity is the subsystem's acceptance proof: for every
// generated pattern, the incrementally maintained sketch state is
// byte-identical to a from-scratch sketch of the materialized graph at
// every epoch boundary, at Workers ∈ {1, 2, 8}, on both the scalar and
// the columnar block path.
func TestEpochParity(t *testing.T) {
	coins := rng.NewPublicCoins(91)
	for _, spec := range allSpecs(31) {
		s, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		specs := Samplers(s.N(), 3, coins)
		for _, workers := range []int{1, 2, 8} {
			for _, block := range []bool{false, true} {
				name := fmt.Sprintf("%s/workers=%d/block=%v", spec.Pattern, workers, block)
				t.Run(name, func(t *testing.T) {
					run := Process(s, specs, Options{Workers: workers, Block: block})
					if len(run.Checkpoints) != s.Epochs() {
						t.Fatalf("%d checkpoints, want %d", len(run.Checkpoints), s.Epochs())
					}
					if err := VerifyEpochParity(run, specs); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestCheckpointsAgreeAcrossStrategies pins the stronger cross-strategy
// invariant directly: every (workers, block) combination produces the
// same digest and the same per-vertex checksums at every epoch.
func TestCheckpointsAgreeAcrossStrategies(t *testing.T) {
	coins := rng.NewPublicCoins(92)
	s, err := Generate(churnSpec(37))
	if err != nil {
		t.Fatal(err)
	}
	specs := Samplers(s.N(), 2, coins)
	ref := Process(s, specs, Options{Workers: 1, Block: false})
	for _, workers := range []int{2, 8} {
		for _, block := range []bool{false, true} {
			run := Process(s, specs, Options{Workers: workers, Block: block})
			for e := range ref.Checkpoints {
				want, got := ref.At(e), run.At(e)
				if want.Digest() != got.Digest() {
					t.Fatalf("workers=%d block=%v epoch %d: digest diverges", workers, block, e)
				}
				for v := 0; v < s.N(); v++ {
					if want.Checksum(v) != got.Checksum(v) {
						t.Fatalf("workers=%d block=%v epoch %d vertex %d: checksum diverges", workers, block, e, v)
					}
				}
			}
		}
	}
}

// TestNetZeroCheckpointsAreEmpty pins the delete path end to end: after
// a fill-drain stream every lane has returned to net zero, so the final
// checkpoint must equal the sketch of the empty graph — all-zero cells,
// byte for byte.
func TestNetZeroCheckpointsAreEmpty(t *testing.T) {
	coins := rng.NewPublicCoins(93)
	s, err := Generate(fillDrainSpec(41))
	if err != nil {
		t.Fatal(err)
	}
	specs := Samplers(s.N(), 2, coins)
	for _, block := range []bool{false, true} {
		run := Process(s, specs, Options{Workers: 4, Block: block})
		final := run.At(s.Epochs() - 1)
		empty := NewMaintainer(s.N(), specs, Options{}).Checkpoint()
		if final.Digest() != empty.Digest() {
			t.Fatalf("block=%v: net-zero checkpoint is not the empty-graph sketch", block)
		}
		for v := 0; v < s.N(); v++ {
			r := final.Vertex(v)
			for r.Remaining() > 0 {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatal(err)
				}
				if b {
					t.Fatalf("block=%v: vertex %d has a nonzero bit after net-zero stream", block, v)
				}
			}
		}
	}
}

// TestCheckpointImmutability pins that a checkpoint is a snapshot:
// applying more ops to the maintainer must not change an already-taken
// checkpoint.
func TestCheckpointImmutability(t *testing.T) {
	coins := rng.NewPublicCoins(94)
	s, err := Generate(churnSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	specs := Samplers(s.N(), 2, coins)
	m := NewMaintainer(s.N(), specs, Options{Block: true})
	m.ApplyBatch(s.EpochOps(0))
	c := m.Checkpoint()
	digest := c.Digest()
	if c.Ops != s.OpsPerEpoch() {
		t.Fatalf("checkpoint covers %d ops, want %d", c.Ops, s.OpsPerEpoch())
	}
	m.ApplyBatch(s.EpochOps(1))
	if c.Digest() != digest {
		t.Fatal("checkpoint mutated by later ApplyBatch")
	}
}

// TestDecodedStreamDrivesMaintainer closes the codec→maintainer loop: a
// decoded stream processes to the same checkpoints as the original.
func TestDecodedStreamDrivesMaintainer(t *testing.T) {
	coins := rng.NewPublicCoins(95)
	s, err := Generate(blinkSpec(47))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeStream(EncodeStream(s))
	if err != nil {
		t.Fatal(err)
	}
	specs := Samplers(s.N(), 2, coins)
	a := Process(s, specs, Options{Block: true})
	b := Process(decoded, specs, Options{Block: true})
	for e := range a.Checkpoints {
		if a.At(e).Digest() != b.At(e).Digest() {
			t.Fatalf("epoch %d: decoded stream diverges from original", e)
		}
	}
}

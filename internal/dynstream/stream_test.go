package dynstream

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

func churnSpec(seed uint64) Spec {
	return Spec{N: 40, Epochs: 4, OpsPerEpoch: 50, Pattern: PatternChurn,
		TargetEdges: 80, Churn: 0.3, Seed: seed}
}

func fillDrainSpec(seed uint64) Spec {
	return Spec{N: 40, Epochs: 4, OpsPerEpoch: 50, Pattern: PatternFillDrain, Seed: seed}
}

func blinkSpec(seed uint64) Spec {
	return Spec{N: 40, Epochs: 4, OpsPerEpoch: 50, Pattern: PatternBlink, Seed: seed}
}

func allSpecs(seed uint64) []Spec {
	return []Spec{churnSpec(seed), fillDrainSpec(seed), blinkSpec(seed)}
}

// TestGenerateDeterministic pins the generator as a pure function of its
// spec: two generations agree op for op, and a different seed diverges.
func TestGenerateDeterministic(t *testing.T) {
	for _, spec := range allSpecs(7) {
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Pattern, err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Ops()) != spec.Epochs*spec.OpsPerEpoch {
			t.Fatalf("%s: %d ops, want %d", spec.Pattern, len(a.Ops()), spec.Epochs*spec.OpsPerEpoch)
		}
		for i := range a.Ops() {
			if a.Ops()[i] != b.Ops()[i] {
				t.Fatalf("%s: op %d differs between identical generations", spec.Pattern, i)
			}
		}
		other := spec
		other.Seed++
		c, err := Generate(other)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a.Ops() {
			if a.Ops()[i] != c.Ops()[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seed change left the stream identical", spec.Pattern)
		}
	}
}

// TestStreamLegality replays every generated stream and asserts the
// simple-graph evolution invariant the maintainer relies on.
func TestStreamLegality(t *testing.T) {
	for _, spec := range allSpecs(11) {
		s, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		present := make(map[graph.Edge]bool)
		for i, op := range s.Ops() {
			if op.U == op.V || op.U < 0 || op.V < 0 || op.U >= spec.N || op.V >= spec.N {
				t.Fatalf("%s: op %d endpoints (%d,%d) invalid", spec.Pattern, i, op.U, op.V)
			}
			e := op.Edge()
			if op.Insert == present[e] {
				t.Fatalf("%s: op %d violates evolution invariant", spec.Pattern, i)
			}
			present[e] = op.Insert
		}
	}
}

// TestPatternShapes pins each pattern's defining property.
func TestPatternShapes(t *testing.T) {
	churn, err := Generate(churnSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if m := churn.FinalGraph().M(); m < churnSpec(3).TargetEdges/2 {
		t.Errorf("churn: final graph has %d edges, expected near target %d", m, churnSpec(3).TargetEdges)
	}
	fd, err := Generate(fillDrainSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if m := fd.FinalGraph().M(); m != 0 {
		t.Errorf("fill-drain: final graph has %d edges, want net zero", m)
	}
	if m := fd.GraphAt(1).M(); m != 100 {
		t.Errorf("fill-drain: mid-stream graph has %d edges, want 100", m)
	}
	blink, err := Generate(blinkSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < blink.Epochs(); e++ {
		if m := blink.GraphAt(e).M(); m != 0 {
			t.Errorf("blink: epoch %d graph has %d edges, want net zero", e, m)
		}
	}
}

// TestSpecValidate pins the rejection paths.
func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{N: 1, Epochs: 1, OpsPerEpoch: 1, Pattern: PatternChurn, TargetEdges: 1},
		{N: 10, Epochs: 0, OpsPerEpoch: 1, Pattern: PatternChurn, TargetEdges: 1},
		{N: 10, Epochs: 1, OpsPerEpoch: 1, Pattern: "nope"},
		{N: 10, Epochs: 1, OpsPerEpoch: 1, Pattern: PatternChurn, TargetEdges: 0},
		{N: 10, Epochs: 1, OpsPerEpoch: 1, Pattern: PatternChurn, TargetEdges: 40},
		{N: 10, Epochs: 1, OpsPerEpoch: 1, Pattern: PatternChurn, TargetEdges: 5, Churn: 1.5},
		{N: 10, Epochs: 1, OpsPerEpoch: 3, Pattern: PatternFillDrain},
		{N: 10, Epochs: 1, OpsPerEpoch: 100, Pattern: PatternFillDrain},
		{N: 10, Epochs: 3, OpsPerEpoch: 3, Pattern: PatternBlink},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d: Validate accepted %+v", i, spec)
		}
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %d: Generate accepted %+v", i, spec)
		}
	}
}

// TestCodecRoundTrip pins Encode∘Decode = identity and the canonical
// re-encoding property for every pattern.
func TestCodecRoundTrip(t *testing.T) {
	for _, spec := range allSpecs(19) {
		s, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		data := EncodeStream(s)
		got, err := DecodeStream(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", spec.Pattern, err)
		}
		if got.N() != s.N() || got.OpsPerEpoch() != s.OpsPerEpoch() || got.Len() != s.Len() {
			t.Fatalf("%s: decoded geometry differs", spec.Pattern)
		}
		for i := range s.Ops() {
			if got.Ops()[i] != s.Ops()[i] {
				t.Fatalf("%s: op %d differs after round trip", spec.Pattern, i)
			}
		}
		if !bytes.Equal(EncodeStream(got), data) {
			t.Fatalf("%s: re-encoding is not canonical", spec.Pattern)
		}
	}
}

// TestDecodeRejectsIllegalStreams covers the decoder's validation: the
// codec only accepts legal simple-graph evolutions.
func TestDecodeRejectsIllegalStreams(t *testing.T) {
	s, err := Generate(churnSpec(23))
	if err != nil {
		t.Fatal(err)
	}
	data := EncodeStream(s)
	if _, err := DecodeStream(data[:len(data)-3]); err == nil {
		t.Error("decode accepted a truncated stream")
	}
	if _, err := DecodeStream(nil); err == nil {
		t.Error("decode accepted an empty stream")
	}
	// A delete-before-insert stream is illegal even though it parses.
	illegal := &Stream{n: 10, opsPerEpoch: 1, ops: []Op{{Insert: false, U: 0, V: 1}}}
	if _, err := DecodeStream(EncodeStream(illegal)); err == nil {
		t.Error("decode accepted a delete of an absent edge")
	}
	loop := &Stream{n: 10, opsPerEpoch: 1, ops: []Op{{Insert: true, U: 3, V: 3}}}
	if _, err := DecodeStream(EncodeStream(loop)); err == nil {
		t.Error("decode accepted a self-loop")
	}
	double := &Stream{n: 10, opsPerEpoch: 2, ops: []Op{{Insert: true, U: 0, V: 1}, {Insert: true, U: 1, V: 0}}}
	if _, err := DecodeStream(EncodeStream(double)); err == nil {
		t.Error("decode accepted a double insert")
	}
}

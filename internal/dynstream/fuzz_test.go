package dynstream

import (
	"bytes"
	"testing"
)

// FuzzDynStreamDecode hardens the stream codec against arbitrary bytes:
// DecodeStream must never panic, and whenever it accepts an input the
// decoded stream must re-encode canonically (accept ⇒ exact round trip),
// satisfy the simple-graph evolution invariant (checked by driving a
// maintainer-free replay via GraphAt), and stay within the declared
// geometry.
func FuzzDynStreamDecode(f *testing.F) {
	for _, spec := range []Spec{
		{N: 8, Epochs: 2, OpsPerEpoch: 6, Pattern: PatternChurn, TargetEdges: 6, Churn: 0.3, Seed: 1},
		{N: 8, Epochs: 2, OpsPerEpoch: 6, Pattern: PatternFillDrain, Seed: 2},
		{N: 8, Epochs: 2, OpsPerEpoch: 6, Pattern: PatternBlink, Seed: 3},
	} {
		s, err := Generate(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeStream(s))
	}
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeStream(data)
		if err != nil {
			return
		}
		if got := EncodeStream(s); !bytes.Equal(got, data) {
			t.Fatalf("accepted input is not canonical: %x -> %x", data, got)
		}
		if s.Len() != s.Epochs()*s.OpsPerEpoch() {
			t.Fatalf("decoded geometry inconsistent: %d ops, %d epochs of %d", s.Len(), s.Epochs(), s.OpsPerEpoch())
		}
		// Materialization must succeed on any accepted stream (the
		// decoder already validated the evolution invariant).
		g := s.FinalGraph()
		if g.N() != s.N() {
			t.Fatalf("materialized graph has %d vertices, stream declares %d", g.N(), s.N())
		}
	})
}

package dynstream

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// runSemiStream executes the protocol on g through the engine.
func runSemiStream(t *testing.T, p *SemiStream, g *graph.Graph, coins *rng.PublicCoins, workers int) ([]graph.Edge, *engine.Transcript) {
	t.Helper()
	eng := &engine.Engine{Workers: workers, ShardSize: 3}
	res, tr, err := engine.RunWithTranscript[[]graph.Edge](context.Background(), eng, p, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	return res.Output, tr
}

// TestSemiStreamApproximation is the protocol's guarantee check: across
// graph families, slacks and seeds, the output is a matching of g with
// |M| ≥ (1−ε)·|M*| against the blossom ground truth.
func TestSemiStreamApproximation(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-sparse", gen.Gnp(60, 0.05, rng.NewSource(1))},
		{"gnp-dense", gen.Gnp(60, 0.3, rng.NewSource(2))},
		{"path", gen.Path(50)},
		{"star", gen.Star(40)},
		{"grid", gen.Grid(6, 8)},
		{"empty", gen.Gnp(30, 0, rng.NewSource(3))},
	}
	for _, eps := range []float64{0.5, 0.25, 0.125} {
		p := NewSemiStream(eps)
		for _, tc := range graphs {
			for seed := uint64(0); seed < 3; seed++ {
				out, _ := runSemiStream(t, p, tc.g, rng.NewPublicCoins(100+seed), 4)
				if !IsApproxMaximumMatching(tc.g, out, eps) {
					opt := len(graph.MaximumMatching(tc.g))
					t.Errorf("eps=%g %s seed=%d: |M|=%d below (1-eps)·|M*|=(1-%g)·%d",
						eps, tc.name, seed, len(out), eps, opt)
				}
			}
		}
	}
}

// TestSemiStreamPassCount pins the ε→passes derivation.
func TestSemiStreamPassCount(t *testing.T) {
	cases := []struct {
		eps    float64
		rounds int
	}{
		{0.5, 6},    // k=2
		{0.25, 10},  // k=4
		{0.125, 18}, // k=8
		{0, 10},     // DefaultEps
	}
	for _, tc := range cases {
		p := &SemiStream{Eps: tc.eps}
		if got := p.Rounds(); got != tc.rounds {
			t.Errorf("eps=%g: %d rounds, want %d", tc.eps, got, tc.rounds)
		}
	}
}

// TestSemiStreamDeterministicAcrossWorkers pins the determinism
// contract over the multi-pass feedback path: transcripts (players and
// referee lane) are byte-identical at Workers ∈ {1, 2, 8}.
func TestSemiStreamDeterministicAcrossWorkers(t *testing.T) {
	g := gen.Gnp(50, 0.2, rng.NewSource(5))
	p := NewSemiStream(0.25)
	coins := rng.NewPublicCoins(7)
	_, ref := runSemiStream(t, p, g, coins, 1)
	for _, workers := range []int{2, 8} {
		_, tr := runSemiStream(t, p, g, coins, workers)
		if tr.Rounds() != ref.Rounds() {
			t.Fatalf("workers=%d: %d rounds vs %d", workers, tr.Rounds(), ref.Rounds())
		}
		for round := 0; round < ref.Rounds(); round++ {
			for v := 0; v < g.N(); v++ {
				if !readersEqual(ref.Message(round, v), tr.Message(round, v)) {
					t.Fatalf("workers=%d: round %d vertex %d message diverges", workers, round, v)
				}
			}
			if !readersEqual(ref.Feedback(round), tr.Feedback(round)) {
				t.Fatalf("workers=%d: round %d feedback diverges", workers, round)
			}
		}
	}
}

// TestSemiStreamFeedbackStructure pins the referee's cadence: feedback
// after every pass except the last, silence after the last.
func TestSemiStreamFeedbackStructure(t *testing.T) {
	g := gen.Gnp(40, 0.2, rng.NewSource(9))
	p := NewSemiStream(0.5)
	_, tr := runSemiStream(t, p, g, rng.NewPublicCoins(11), 2)
	for round := 0; round < tr.Rounds()-1; round++ {
		if tr.FeedbackBitLen(round) == 0 {
			t.Errorf("round %d: referee silent, expected feedback", round)
		}
	}
	if tr.FeedbackBitLen(tr.Rounds()-1) != 0 {
		t.Error("referee spoke after the final pass")
	}
}

// TestSemiStreamResilientVerdicts pins DecodeResilient's three-way
// verdict on a clean transcript and on a transcript with a forged
// feedback lane.
func TestSemiStreamResilientVerdicts(t *testing.T) {
	g := gen.Gnp(40, 0.2, rng.NewSource(13))
	p := NewSemiStream(0.5)
	coins := rng.NewPublicCoins(15)
	_, tr := runSemiStream(t, p, g, coins, 2)
	out, verdict, err := p.DecodeResilient(g.N(), tr, coins)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.String() != "ok" {
		t.Fatalf("clean transcript decoded %s, want ok", verdict)
	}
	if !IsApproxMaximumMatching(g, out, p.EpsOf()) {
		t.Fatal("clean resilient decode lost the guarantee")
	}
	// A truncated cap budget forces reports to the cap: still a valid
	// matching, but the verdict must demote to degraded.
	capped := &SemiStream{Eps: 0.5, Cap: 2}
	_, trCap := runSemiStream(t, capped, g, coins, 2)
	_, verdict, err = capped.DecodeResilient(g.N(), trCap, coins)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.String() != "degraded" {
		t.Fatalf("cap-saturated transcript decoded %s, want degraded", verdict)
	}
}

// TestSemiStreamOnDynamicEpochs runs the registered protocol on the
// materialized graph of every epoch of a churn stream — the dynamic
// workload loop E50 sweeps at scale.
func TestSemiStreamOnDynamicEpochs(t *testing.T) {
	s, err := Generate(churnSpec(53))
	if err != nil {
		t.Fatal(err)
	}
	p := NewSemiStream(0.25)
	for e := 0; e < s.Epochs(); e++ {
		g := s.GraphAt(e)
		out, _ := runSemiStream(t, p, g, rng.NewPublicCoins(uint64(60+e)), 4)
		if !IsApproxMaximumMatching(g, out, p.EpsOf()) {
			t.Errorf("epoch %d: approximation guarantee lost (|M|=%d, |M*|=%d)",
				e, len(out), len(graph.MaximumMatching(g)))
		}
	}
}

// TestSemiStreamName pins the registry-facing naming.
func TestSemiStreamName(t *testing.T) {
	if got := NewSemiStream(0.25).Name(); got != fmt.Sprintf("semistream-matching(eps=%g)", 0.25) {
		t.Fatalf("unexpected name %q", got)
	}
}

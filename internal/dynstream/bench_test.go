package dynstream

import (
	"testing"

	"repro/internal/l0"
	"repro/internal/rng"
)

// benchStream is a steady-state churn workload: one epoch-sized batch of
// mixed inserts and deletes over a 1k-vertex graph held at ~4k edges.
func benchStream(b *testing.B) (*Stream, []l0.Spec) {
	b.Helper()
	spec := Spec{N: 1000, Epochs: 1, OpsPerEpoch: 4096, Pattern: PatternChurn,
		TargetEdges: 4000, Churn: 0.4, Seed: 77}
	s, err := Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return s, Samplers(s.N(), 4, rng.NewPublicCoins(78))
}

// benchApply measures incremental maintenance throughput on one path;
// the reported sketch-updates/s counts one update per (op, endpoint,
// spec) triple — the unit both hot paths share.
func benchApply(b *testing.B, block bool) {
	s, specs := benchStream(b)
	ops := s.Ops()
	m := NewMaintainer(s.N(), specs, Options{Workers: 1, Block: block})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplyBatch(ops)
	}
	b.StopTimer()
	updates := float64(len(ops)) * 2 * float64(len(specs))
	b.ReportMetric(updates*float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkDynStreamApplyScalar drives the batch through scalar
// l0.Spec.Update calls.
func BenchmarkDynStreamApplyScalar(b *testing.B) { benchApply(b, false) }

// BenchmarkDynStreamApplyBlock drives the same batch through the
// columnar Bank/UpdateBlock path.
func BenchmarkDynStreamApplyBlock(b *testing.B) { benchApply(b, true) }

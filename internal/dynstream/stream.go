// Package dynstream adds the dynamic-graph workload the linear sketches
// were built for: seed-derived insert/delete edge streams, an incremental
// maintenance driver that pushes ±1 deltas through the existing ℓ₀ hot
// paths (scalar Spec.Update and the columnar Bank/UpdateBlock path), and
// an epoch/checkpoint API so protocols can query sketch state at any
// stream prefix. Linearity makes deletions free — an insertion adds an
// edge's contribution to both endpoint sketches, a deletion subtracts
// it — so after any prefix the maintained sketches are bit-identical to
// sketching the materialized graph from scratch. That byte-level parity,
// at any worker count and on either execution path, is the package's
// determinism contract (maintain_test.go proves it epoch by epoch).
//
// On top of the stream machinery the package registers the repository's
// first multi-pass protocol: a semi-streaming (1+ε)-approximate maximum
// matching (semistream.go) driven by the engine's adaptive referee
// feedback.
package dynstream

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Pattern names for Spec.Pattern.
const (
	// PatternChurn grows the graph to TargetEdges and then holds it
	// there under churn: each op deletes a uniform present edge with
	// probability Churn, otherwise inserts a uniform absent edge.
	PatternChurn = "churn"
	// PatternFillDrain is the adversarial net-zero pattern: the first
	// half of the ops inserts random absent edges, the second half
	// deletes random present edges, so every lane returns to net zero
	// by the final epoch (the materialized graph ends empty).
	PatternFillDrain = "fill-drain"
	// PatternBlink inserts a random absent edge and deletes the same
	// edge on the very next op, so the graph is empty at every even op
	// boundary — the worst case for stale cancelled state.
	PatternBlink = "blink"
)

// Op is one stream event: the insertion or deletion of edge {U, V}.
// Endpoints are not normalized (the generator emits them in random
// order); EdgeIndex and the graph materialization normalize.
type Op struct {
	Insert bool
	U, V   int
}

// Edge returns the op's edge in normalized form.
func (o Op) Edge() graph.Edge { return graph.NewEdge(o.U, o.V) }

// Spec fixes one deterministic dynamic-graph stream: the same spec always
// generates the same ops, the way gen's static generators are pure
// functions of their seed.
type Spec struct {
	// N is the vertex count.
	N int
	// Epochs is the number of checkpoint boundaries; the stream has
	// Epochs*OpsPerEpoch ops and epoch e ends after op (e+1)*OpsPerEpoch.
	Epochs int
	// OpsPerEpoch is the number of ops per epoch.
	OpsPerEpoch int
	// Pattern selects the generator: PatternChurn, PatternFillDrain or
	// PatternBlink.
	Pattern string
	// TargetEdges is the churn pattern's steady-state edge count;
	// ignored by the other patterns. Must leave headroom in the edge
	// universe (at most half of n(n-1)/2) so absent-edge rejection
	// sampling stays fast.
	TargetEdges int
	// Churn is the churn pattern's delete probability once edges exist;
	// ignored by the other patterns.
	Churn float64
	// Seed roots the generator's randomness.
	Seed uint64
}

// Validate rejects specs no generator run should attempt.
func (s Spec) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("dynstream: need n >= 2, got %d", s.N)
	}
	if s.Epochs < 1 || s.OpsPerEpoch < 1 {
		return fmt.Errorf("dynstream: need epochs >= 1 and ops per epoch >= 1, got %d and %d", s.Epochs, s.OpsPerEpoch)
	}
	maxEdges := s.N * (s.N - 1) / 2
	total := s.Epochs * s.OpsPerEpoch
	switch s.Pattern {
	case PatternChurn:
		if s.TargetEdges < 1 || s.TargetEdges > maxEdges/2 {
			return fmt.Errorf("dynstream: churn target %d outside [1, %d] for n=%d", s.TargetEdges, maxEdges/2, s.N)
		}
		if s.Churn < 0 || s.Churn > 1 || s.Churn != s.Churn {
			return fmt.Errorf("dynstream: churn probability %g outside [0,1]", s.Churn)
		}
	case PatternFillDrain:
		if total%2 != 0 {
			return fmt.Errorf("dynstream: fill-drain needs an even op count, got %d", total)
		}
		if total/2 > maxEdges/2 {
			return fmt.Errorf("dynstream: fill-drain fill phase %d exceeds half the edge universe %d", total/2, maxEdges/2)
		}
	case PatternBlink:
		if total%2 != 0 {
			return fmt.Errorf("dynstream: blink needs an even op count, got %d", total)
		}
	default:
		return fmt.Errorf("dynstream: unknown pattern %q", s.Pattern)
	}
	return nil
}

// Stream is a generated (or decoded) op sequence with epoch boundaries.
// Ops always describe a legal simple-graph evolution: inserts of absent
// edges, deletes of present edges, no loops.
type Stream struct {
	n           int
	opsPerEpoch int
	ops         []Op
}

// N returns the stream's vertex count.
func (s *Stream) N() int { return s.n }

// Len returns the total op count.
func (s *Stream) Len() int { return len(s.ops) }

// Epochs returns the number of epochs.
func (s *Stream) Epochs() int { return len(s.ops) / s.opsPerEpoch }

// OpsPerEpoch returns the epoch granularity.
func (s *Stream) OpsPerEpoch() int { return s.opsPerEpoch }

// EpochOps returns the ops of one epoch (a view, not a copy).
func (s *Stream) EpochOps(epoch int) []Op {
	lo, hi := epoch*s.opsPerEpoch, (epoch+1)*s.opsPerEpoch
	return s.ops[lo:hi]
}

// Ops returns all ops (a view, not a copy).
func (s *Stream) Ops() []Op { return s.ops }

// GraphAt materializes the net graph after the given epoch's last op —
// the from-scratch reference every incremental checkpoint must match.
func (s *Stream) GraphAt(epoch int) *graph.Graph {
	present := make(map[graph.Edge]bool)
	for _, op := range s.ops[:(epoch+1)*s.opsPerEpoch] {
		e := op.Edge()
		if op.Insert {
			present[e] = true
		} else {
			delete(present, e)
		}
	}
	edges := make([]graph.Edge, 0, len(present))
	for e := range present {
		edges = append(edges, e)
	}
	return graph.FromEdges(s.n, edges)
}

// FinalGraph materializes the net graph after the whole stream.
func (s *Stream) FinalGraph() *graph.Graph { return s.GraphAt(s.Epochs() - 1) }

// edgeSet tracks the present edges with O(1) uniform sampling and
// deterministic iteration-free updates (Go map iteration order never
// touches the op sequence).
type edgeSet struct {
	edges []graph.Edge
	pos   map[graph.Edge]int
}

func newEdgeSet() *edgeSet { return &edgeSet{pos: make(map[graph.Edge]int)} }

func (es *edgeSet) has(e graph.Edge) bool { _, ok := es.pos[e]; return ok }

func (es *edgeSet) add(e graph.Edge) {
	es.pos[e] = len(es.edges)
	es.edges = append(es.edges, e)
}

func (es *edgeSet) remove(e graph.Edge) {
	i := es.pos[e]
	last := len(es.edges) - 1
	es.edges[i] = es.edges[last]
	es.pos[es.edges[i]] = i
	es.edges = es.edges[:last]
	delete(es.pos, e)
}

func (es *edgeSet) len() int { return len(es.edges) }

// randomAbsent rejection-samples a uniform absent edge with endpoints in
// random order. Validate bounds the live-edge density at half the edge
// universe, so the expected number of rejections is below two.
func randomAbsent(n int, es *edgeSet, src *rng.Source) (int, int) {
	for {
		u, v := src.Intn(n), src.Intn(n)
		if u == v || es.has(graph.NewEdge(u, v)) {
			continue
		}
		return u, v
	}
}

// randomPresent picks a uniform present edge with endpoints in random
// order.
func randomPresent(es *edgeSet, src *rng.Source) (int, int) {
	e := es.edges[src.Intn(es.len())]
	if src.Bool() {
		return e.V, e.U
	}
	return e.U, e.V
}

// Generate derives the spec's op stream. The result is a pure function
// of the spec; every daemon and every local caller agree on the exact op
// sequence.
func Generate(spec Spec) (*Stream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src := rng.NewPublicCoins(spec.Seed).Derive("dynstream-gen").Source()
	total := spec.Epochs * spec.OpsPerEpoch
	ops := make([]Op, 0, total)
	es := newEdgeSet()
	emit := func(insert bool, u, v int) {
		ops = append(ops, Op{Insert: insert, U: u, V: v})
		if insert {
			es.add(graph.NewEdge(u, v))
		} else {
			es.remove(graph.NewEdge(u, v))
		}
	}
	switch spec.Pattern {
	case PatternChurn:
		for len(ops) < total {
			del := es.len() > 0 && (es.len() >= spec.TargetEdges || src.Float64() < spec.Churn)
			if del {
				u, v := randomPresent(es, src)
				emit(false, u, v)
			} else {
				u, v := randomAbsent(spec.N, es, src)
				emit(true, u, v)
			}
		}
	case PatternFillDrain:
		for len(ops) < total/2 {
			u, v := randomAbsent(spec.N, es, src)
			emit(true, u, v)
		}
		for len(ops) < total {
			u, v := randomPresent(es, src)
			emit(false, u, v)
		}
	case PatternBlink:
		for len(ops) < total {
			u, v := randomAbsent(spec.N, es, src)
			emit(true, u, v)
			emit(false, u, v)
		}
	}
	return &Stream{n: spec.N, opsPerEpoch: spec.OpsPerEpoch, ops: ops}, nil
}

package lowerbound_test

// Registry-completeness lint for the lowerbound registry, mirroring the
// source-walking protocol lint in internal/wire: obligations and bounds
// are constructed exclusively through NewObligation/NewBound with
// literal names, so a regexp over non-test sources recovers every
// definition site. The lint fails when (a) a defined obligation or
// bound never registers (dead claim checker), (b) a registered
// obligation is absent from the lbcalc smoke fixture (unexercised
// claim), or (c) a registered distribution has no obligations (a run
// that would check nothing).

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lowerbound"

	_ "repro/internal/bounds"
	_ "repro/internal/connlb"
	_ "repro/internal/harddist"
	_ "repro/internal/misreduce"
	_ "repro/internal/proofcheck"
)

var (
	newObligationRE = regexp.MustCompile(`lowerbound\.NewObligation\(\s*"([^"]+)"`)
	newBoundRE      = regexp.MustCompile(`lowerbound\.NewBound\(\s*"([^"]+)"`)
)

// definedNames scans every non-test Go source in the repository for
// literal-name constructor calls.
func definedNames(t *testing.T, re *regexp.Regexp) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir("../..", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range re.FindAllStringSubmatch(string(blob), -1) {
			out[m[1]] = path
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// registered filters registry names down to real (non test-fixture)
// entries; the in-package runner tests register "test/..." fakes into
// the same process-global registry.
func registered(names []string) []string {
	var out []string
	for _, name := range names {
		if !strings.HasPrefix(name, "test/") && name != "test-fake" {
			out = append(out, name)
		}
	}
	return out
}

func TestEveryDefinedObligationIsRegistered(t *testing.T) {
	defined := definedNames(t, newObligationRE)
	if len(defined) == 0 {
		t.Fatal("source scan found no NewObligation call sites — lint regexp broken?")
	}
	have := map[string]bool{}
	for _, name := range lowerbound.ObligationNames() {
		have[name] = true
	}
	for name, path := range defined {
		if !have[name] {
			t.Errorf("obligation %q defined in %s but never registered — missing RegisterObligation or blank import", name, path)
		}
	}

	definedBounds := definedNames(t, newBoundRE)
	if len(definedBounds) == 0 {
		t.Fatal("source scan found no NewBound call sites — lint regexp broken?")
	}
	haveBound := map[string]bool{}
	for _, name := range lowerbound.BoundNames() {
		haveBound[name] = true
	}
	for name, path := range definedBounds {
		if !haveBound[name] {
			t.Errorf("bound %q defined in %s but never registered", name, path)
		}
	}
}

func TestEveryRegisteredObligationIsSmoked(t *testing.T) {
	smoke, err := os.ReadFile("../../cmd/lbcalc/testdata/smoke.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range registered(lowerbound.ObligationNames()) {
		if !strings.Contains(string(smoke), name) {
			t.Errorf("registered obligation %q is not exercised by the lbcalc smoke fixture — regenerate cmd/lbcalc/testdata/smoke.txt (see scripts/lbcalc-smoke.sh)", name)
		}
	}
	for _, name := range registered(lowerbound.DistributionNames()) {
		if !strings.Contains(string(smoke), name) {
			t.Errorf("registered distribution %q is not exercised by the lbcalc smoke fixture", name)
		}
	}
}

func TestEveryDistributionHasObligations(t *testing.T) {
	dists := registered(lowerbound.DistributionNames())
	if len(dists) < 4 {
		t.Fatalf("expected at least 4 registered distributions, got %v", dists)
	}
	for _, name := range dists {
		obs := lowerbound.ObligationsFor(name)
		if len(obs) == 0 {
			t.Errorf("distribution %q has no registered obligations — a Runner.Run would check nothing", name)
		}
	}
	// Every registered obligation must name a registered distribution.
	have := map[string]bool{}
	for _, name := range lowerbound.DistributionNames() {
		have[name] = true
	}
	for _, name := range registered(lowerbound.ObligationNames()) {
		ob, err := lowerbound.LookupObligation(name)
		if err != nil {
			t.Fatal(err)
		}
		if !have[ob.Distribution()] {
			t.Errorf("obligation %q names unregistered distribution %q", name, ob.Distribution())
		}
	}
}

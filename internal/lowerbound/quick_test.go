package lowerbound

import (
	"bytes"
	"testing"
	"testing/quick"
)

// The Runner's two determinism properties, pinned with testing/quick:
// obligation order never affects the aggregated report, and the same
// (spec, seed) always yields byte-identical JSON.

func TestRunnerObligationOrderIrrelevantQuick(t *testing.T) {
	registerFakes()
	obs := ObligationsFor("test-fake")
	f := func(seed uint64, sizeRaw uint8, swap bool) bool {
		spec := Spec{Size: 1 + int(sizeRaw%7)}
		ordered := append([]Obligation(nil), obs...)
		if swap {
			ordered[0], ordered[1] = ordered[1], ordered[0]
		}
		a, err := (Runner{Trials: 3}).Run("test-fake", spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (Runner{Trials: 3}).RunObligations("test-fake", spec, seed, ordered)
		if err != nil {
			t.Fatal(err)
		}
		aj, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Equal(aj, bj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunnerSameSeedByteIdenticalQuick(t *testing.T) {
	registerFakes()
	f := func(seed uint64, sizeRaw uint8, trialsRaw uint8) bool {
		spec := Spec{Size: 1 + int(sizeRaw%7)}
		trials := 1 + int(trialsRaw%5)
		a, err := (Runner{Trials: trials}).Run("test-fake", spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (Runner{Trials: trials}).Run("test-fake", spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		aj, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Equal(aj, bj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Different seeds must actually change the sampled randomness — the
// byte-identity property would be vacuous if the streams ignored the
// seed.
func TestRunnerSeedMatters(t *testing.T) {
	registerFakes()
	a, err := (Runner{Trials: 2}).Run("test-fake", Spec{Size: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (Runner{Trials: 2}).Run("test-fake", Spec{Size: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if bytes.Equal(aj, bj) {
		t.Error("seed 1 and seed 2 produced identical reports")
	}
}

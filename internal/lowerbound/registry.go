package lowerbound

// Three registries — distributions, obligations, bounds — populated by
// client packages' init() functions (see their register.go files), the
// same way internal/protocol registers sketching protocols. Importing a
// client package anywhere in a binary makes its claims checkable; the
// registry-completeness lint (lint_test.go) fails when a package defines
// an obligation without registering it.

import (
	"fmt"
	"sort"
	"sync"
)

var (
	mu            sync.RWMutex
	distributions = map[string]HardDistribution{}
	obligations   = map[string]Obligation{}
	bounds        = map[string]Bound{}
)

// RegisterDistribution adds a named hard distribution. It is meant to be
// called from init() and panics on empty or duplicate names — both are
// programming errors a test catches immediately.
func RegisterDistribution(d HardDistribution) {
	if d == nil || d.Name() == "" {
		panic("lowerbound: RegisterDistribution with nil or unnamed distribution")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := distributions[d.Name()]; dup {
		panic(fmt.Sprintf("lowerbound: duplicate distribution %q", d.Name()))
	}
	distributions[d.Name()] = d
}

// RegisterObligation adds a named obligation. Panics on duplicates and
// on obligations naming no distribution; the distribution itself may
// register later in init order and is resolved at run time.
func RegisterObligation(o Obligation) {
	if o == nil || o.Name() == "" {
		panic("lowerbound: RegisterObligation with nil or unnamed obligation")
	}
	if o.Distribution() == "" {
		panic(fmt.Sprintf("lowerbound: obligation %q names no distribution", o.Name()))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := obligations[o.Name()]; dup {
		panic(fmt.Sprintf("lowerbound: duplicate obligation %q", o.Name()))
	}
	obligations[o.Name()] = o
}

// RegisterBound adds a named analytic bound calculator.
func RegisterBound(b Bound) {
	if b == nil || b.Name() == "" {
		panic("lowerbound: RegisterBound with nil or unnamed bound")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := bounds[b.Name()]; dup {
		panic(fmt.Sprintf("lowerbound: duplicate bound %q", b.Name()))
	}
	bounds[b.Name()] = b
}

// LookupDistribution resolves a registered distribution name.
func LookupDistribution(name string) (HardDistribution, error) {
	mu.RLock()
	d, ok := distributions[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lowerbound: unknown distribution %q (known: %v)", name, DistributionNames())
	}
	return d, nil
}

// LookupObligation resolves a registered obligation name.
func LookupObligation(name string) (Obligation, error) {
	mu.RLock()
	o, ok := obligations[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lowerbound: unknown obligation %q (known: %v)", name, ObligationNames())
	}
	return o, nil
}

// LookupBound resolves a registered bound name.
func LookupBound(name string) (Bound, error) {
	mu.RLock()
	b, ok := bounds[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lowerbound: unknown bound %q (known: %v)", name, BoundNames())
	}
	return b, nil
}

// DistributionNames returns the sorted registered distribution names.
func DistributionNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(distributions)
}

// ObligationNames returns the sorted registered obligation names.
func ObligationNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(obligations)
}

// BoundNames returns the sorted registered bound names.
func BoundNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(bounds)
}

// ObligationsFor returns the registered obligations checking the named
// distribution, sorted by name.
func ObligationsFor(dist string) []Obligation {
	mu.RLock()
	defer mu.RUnlock()
	var out []Obligation
	for _, o := range obligations {
		if o.Distribution() == dist {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

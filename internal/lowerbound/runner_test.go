package lowerbound

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/rng"
)

// fakeInstance is a minimal Instance for registry/runner tests.
type fakeInstance struct {
	n     int
	coins []float64
}

func (f fakeInstance) N() int { return f.n }

// fakeDist samples fakeInstances: n = Size, coins drawn from src.
type fakeDist struct{ name string }

func (d fakeDist) Name() string  { return d.name }
func (d fakeDist) Paper() string { return "test fixture distribution" }
func (d fakeDist) Validate(spec Spec) error {
	if spec.Size < 1 {
		return fmt.Errorf("fake: size must be positive, got %d", spec.Size)
	}
	return nil
}
func (d fakeDist) SmokeSpec() Spec { return Spec{Size: 3} }
func (d fakeDist) Sample(spec Spec, src *rng.Source) (Instance, error) {
	coins := make([]float64, spec.Size)
	for i := range coins {
		coins[i] = src.Float64()
	}
	return fakeInstance{n: spec.Size, coins: coins}, nil
}

var registerFakesOnce sync.Once

// registerFakes installs the shared test distribution and obligations;
// registries are process-global, so registration happens exactly once.
func registerFakes() {
	registerFakesOnce.Do(func() {
		RegisterDistribution(fakeDist{name: "test-fake"})
		RegisterObligation(NewObligation(
			"test/coins-in-range",
			"test: sampled coins lie in [0,1)",
			"test-fake", SevExact,
			func(inst Instance, src *rng.Source) Report {
				fi, err := Convert[fakeInstance](inst)
				if err != nil {
					return Report{Notes: []string{err.Error()}}
				}
				pass := true
				for _, c := range fi.coins {
					if c < 0 || c >= 1 {
						pass = false
					}
				}
				return Report{Pass: pass, Details: map[string]float64{"n": float64(fi.n)}}
			}))
		RegisterObligation(NewObligation(
			"test/check-stream-private",
			"test: obligation randomness is derived per obligation",
			"test-fake", SevExact,
			func(inst Instance, src *rng.Source) Report {
				// Record the first draw of this obligation's stream; the
				// order-invariance quick test relies on it being a function
				// of (seed, dist, obligation, trial) only.
				return Report{Pass: true, Details: map[string]float64{"draw": src.Float64()}}
			}))
		RegisterBound(NewBound("test/linear", "test fixture bound",
			func(size int) (BoundRow, error) {
				return BoundRow{Bits: float64(size), Formula: "size"}, nil
			}))
	})
}

func TestRunnerAggregates(t *testing.T) {
	registerFakes()
	rep, err := (Runner{Trials: 4}).Run("test-fake", Spec{Size: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 4 || rep.Distribution != "test-fake" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.Obligations) != 2 {
		t.Fatalf("got %d obligations, want 2", len(rep.Obligations))
	}
	for _, s := range rep.Obligations {
		if s.Pass != 4 || s.Fail != 0 || len(s.Reports) != 4 {
			t.Errorf("%s: pass=%d fail=%d reports=%d, want 4/0/4", s.Obligation, s.Pass, s.Fail, len(s.Reports))
		}
		if got := s.PassRate(); got != 1 {
			t.Errorf("%s: pass rate %v, want 1", s.Obligation, got)
		}
	}
	if !rep.AllExactHold() {
		t.Error("AllExactHold should be true")
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test/coins-in-range") {
		t.Errorf("render lacks obligation name:\n%s", buf.String())
	}
}

func TestRunnerRejectsBadInput(t *testing.T) {
	registerFakes()
	if _, err := (Runner{Trials: 1}).Run("no-such-dist", Spec{Size: 1}, 0); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := (Runner{Trials: 1}).Run("test-fake", Spec{Size: 0}, 0); err == nil {
		t.Error("invalid spec accepted")
	}
	wrong := NewObligation("test/wrong-dist", "x", "other-dist", SevInfo,
		func(Instance, *rng.Source) Report { return Report{} })
	if _, err := (Runner{Trials: 1}).RunObligations("test-fake", Spec{Size: 1}, 0, []Obligation{wrong}); err == nil {
		t.Error("obligation for another distribution accepted")
	}
}

func TestRegistryLookupsAndNames(t *testing.T) {
	registerFakes()
	if _, err := LookupDistribution("test-fake"); err != nil {
		t.Fatal(err)
	}
	ob, err := LookupObligation("test/coins-in-range")
	if err != nil {
		t.Fatal(err)
	}
	if ob.Distribution() != "test-fake" || ob.Severity() != SevExact {
		t.Errorf("obligation metadata wrong: %v %v", ob.Distribution(), ob.Severity())
	}
	b, err := LookupBound("test/linear")
	if err != nil {
		t.Fatal(err)
	}
	row, err := b.Evaluate(9)
	if err != nil {
		t.Fatal(err)
	}
	if row.Bits != 9 || row.Name != "test/linear" || row.Size != 9 {
		t.Errorf("bound row not auto-filled: %+v", row)
	}
	for _, names := range [][]string{DistributionNames(), ObligationNames(), BoundNames()} {
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Errorf("names not sorted: %v", names)
			}
		}
	}
	obs := ObligationsFor("test-fake")
	if len(obs) != 2 || obs[0].Name() != "test/check-stream-private" {
		t.Errorf("ObligationsFor wrong: %v", obs)
	}
}

func TestSeverityStrings(t *testing.T) {
	cases := map[Severity]string{SevExact: "exact", SevWHP: "whp", SevInfo: "info"}
	for sev, want := range cases {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", sev, got, want)
		}
	}
}

func TestConvertMismatchErrors(t *testing.T) {
	type otherInstance struct{ Instance }
	if _, err := Convert[otherInstance](fakeInstance{}); err == nil {
		t.Error("Convert accepted mismatched instance type")
	}
}

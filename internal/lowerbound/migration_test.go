package lowerbound_test

// Migration-fidelity gate: the JSON fixtures under testdata/ were
// generated BEFORE harddist/proofcheck/misreduce were migrated onto the
// lowerbound registry, by driving the pre-refactor APIs through the same
// rng label scheme the Runner now uses. This test replays each fixture's
// obligations through the registry and demands byte-identical output —
// the proof that the refactor moved code without changing a single
// number. Regenerate (only after an intentional change) with:
//
//	go test ./internal/lowerbound -run TestMigrationFidelity -update-fixtures

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lowerbound"

	_ "repro/internal/bounds"
	_ "repro/internal/harddist"
	_ "repro/internal/misreduce"
	_ "repro/internal/proofcheck"
)

var updateFixtures = flag.Bool("update-fixtures", false, "rewrite the migration fixtures from current code")

func TestMigrationFidelity(t *testing.T) {
	files, err := filepath.Glob("testdata/*_seed42.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("expected 3 pinned fixtures, found %v", files)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var pinned lowerbound.RunReport
			if err := json.Unmarshal(want, &pinned); err != nil {
				t.Fatal(err)
			}
			// Replay exactly the obligations the fixture pinned: newer
			// obligations of the same distribution (e.g. the Fact 2.2
			// instrument) are additive and checked elsewhere.
			var obs []lowerbound.Obligation
			for _, s := range pinned.Obligations {
				ob, err := lowerbound.LookupObligation(s.Obligation)
				if err != nil {
					t.Fatalf("fixture obligation no longer registered: %v", err)
				}
				obs = append(obs, ob)
			}
			got, err := lowerbound.Runner{Trials: pinned.Trials}.RunObligations(
				pinned.Distribution, pinned.Spec, pinned.Seed, obs)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := got.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if *updateFixtures {
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			if !bytes.Equal(blob, want) {
				t.Errorf("migrated pipeline diverges from pre-refactor fixture %s\n--- got ---\n%s\n--- want ---\n%s",
					path, blob, want)
			}
		})
	}
}

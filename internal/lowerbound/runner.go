package lowerbound

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Runner samples instances from a registered distribution and checks
// every registered obligation of that distribution against each sample.
//
// Determinism contract: the aggregated report is a pure function of
// (distribution, spec, seed, trials, registered obligation set). Each
// trial's instance is sampled from a stream derived from (seed, dist,
// trial) alone, and each obligation draws its check randomness from a
// stream derived from (seed, dist, obligation, trial) alone — so the
// order in which obligations registered, or run, can never change a
// single byte of the output.
type Runner struct {
	// Trials is the number of instances sampled per run (min 1).
	Trials int
}

// ObligationSummary aggregates one obligation's reports over all trials.
type ObligationSummary struct {
	Obligation string   `json:"obligation"`
	Claim      string   `json:"claim"`
	Severity   string   `json:"severity"`
	Pass       int      `json:"pass"`
	Fail       int      `json:"fail"`
	Reports    []Report `json:"reports"`
}

// PassRate returns the fraction of trials that passed.
func (s ObligationSummary) PassRate() float64 {
	total := s.Pass + s.Fail
	if total == 0 {
		return 0
	}
	return float64(s.Pass) / float64(total)
}

// RunReport is the machine-readable aggregate of one Runner.Run.
type RunReport struct {
	Distribution string              `json:"distribution"`
	Paper        string              `json:"paper"`
	Spec         Spec                `json:"spec"`
	Seed         uint64              `json:"seed"`
	Trials       int                 `json:"trials"`
	Obligations  []ObligationSummary `json:"obligations"`
}

// AllExactHold reports whether every exact-severity obligation passed on
// every trial.
func (r *RunReport) AllExactHold() bool {
	for _, s := range r.Obligations {
		if s.Severity == SevExact.String() && s.Fail > 0 {
			return false
		}
	}
	return true
}

// JSON renders the canonical byte representation: indented JSON with a
// trailing newline. Same seed and spec ⇒ byte-identical output.
func (r *RunReport) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Render writes a human-readable summary.
func (r *RunReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== lowerbound: %s (%s) size=%d aux=%d seed=%d trials=%d ==\n",
		r.Distribution, r.Paper, r.Spec.Size, r.Spec.Aux, r.Seed, r.Trials); err != nil {
		return err
	}
	for _, s := range r.Obligations {
		if _, err := fmt.Fprintf(w, "  %-34s %-5s pass %d/%d\n",
			s.Obligation, s.Severity, s.Pass, s.Pass+s.Fail); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Run executes the pipeline for one registered distribution: sample
// Trials instances, check every registered obligation of the
// distribution on each, aggregate. It fails when the distribution is
// unknown, the spec invalid, or no obligation is registered for the
// distribution — a run that checks nothing is a configuration error,
// not a success.
func (r Runner) Run(dist string, spec Spec, seed uint64) (*RunReport, error) {
	d, err := LookupDistribution(dist)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(spec); err != nil {
		return nil, err
	}
	obs := ObligationsFor(dist)
	if len(obs) == 0 {
		return nil, fmt.Errorf("lowerbound: no obligations registered for distribution %q", dist)
	}
	return r.RunObligations(dist, spec, seed, obs)
}

// RunObligations is Run with an explicit obligation list, in any order:
// the aggregated report is sorted by obligation name and each check
// draws from its own derived stream, so permuting obs cannot change the
// output (a property pinned by quick tests). All obligations must check
// the named distribution.
func (r Runner) RunObligations(dist string, spec Spec, seed uint64, obs []Obligation) (*RunReport, error) {
	d, err := LookupDistribution(dist)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(spec); err != nil {
		return nil, err
	}
	for _, o := range obs {
		if o.Distribution() != dist {
			return nil, fmt.Errorf("lowerbound: obligation %q checks distribution %q, not %q",
				o.Name(), o.Distribution(), dist)
		}
	}
	trials := r.Trials
	if trials < 1 {
		trials = 1
	}

	rep := &RunReport{
		Distribution: dist,
		Paper:        d.Paper(),
		Spec:         spec,
		Seed:         seed,
		Trials:       trials,
	}
	sums := make([]ObligationSummary, len(obs))
	for i, o := range obs {
		sums[i] = ObligationSummary{
			Obligation: o.Name(),
			Claim:      o.Claim(),
			Severity:   o.Severity().String(),
			Reports:    []Report{},
		}
	}
	for trial := 0; trial < trials; trial++ {
		inst, err := d.Sample(spec, sampleSource(seed, dist, trial))
		if err != nil {
			return nil, fmt.Errorf("lowerbound: %s trial %d: %w", dist, trial, err)
		}
		for i, o := range obs {
			out := o.Check(inst, checkSource(seed, dist, o.Name(), trial))
			if out.Pass {
				sums[i].Pass++
			} else {
				sums[i].Fail++
			}
			sums[i].Reports = append(sums[i].Reports, out)
		}
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].Obligation < sums[j].Obligation })
	rep.Obligations = sums
	return rep, nil
}

// RunAll executes Run for every registered distribution at its smoke
// spec, in name order — the sweep behind `lbcalc -obligations` and the
// smoke fixture.
func (r Runner) RunAll(seed uint64) ([]*RunReport, error) {
	var out []*RunReport
	for _, name := range DistributionNames() {
		d, err := LookupDistribution(name)
		if err != nil {
			return nil, err
		}
		rep, err := r.Run(name, d.SmokeSpec(), seed)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

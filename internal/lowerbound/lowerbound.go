// Package lowerbound is the problem-agnostic lower-bound verification
// pipeline: hard distributions sample instances, obligations check paper
// claims against them, bounds evaluate analytic formulas — all behind a
// self-registration registry (modeled on internal/protocol) and driven
// by a uniform Runner that aggregates machine-readable reports.
//
// The package itself knows nothing about matchings, independent sets or
// connectivity; problem packages (harddist, proofcheck, misreduce,
// bounds, connlb) register their distributions, obligations and bound
// calculators from init(), so the set of verifiable claims is exactly
// the set of imported packages — there is no central list to keep in
// sync, mirroring what internal/protocol did for sketching protocols.
package lowerbound

import (
	"fmt"

	"repro/internal/rng"
)

// Spec parameterizes one sample request: Size is the distribution's
// primary size knob (Behrend m for D_MM, block size for the connectivity
// family), Aux an optional secondary knob (0 selects the distribution's
// default).
type Spec struct {
	Size int `json:"size"`
	Aux  int `json:"aux,omitempty"`
}

// Instance is one sampled object from a hard distribution. Distributions
// wrap their concrete instance types (graph plus ground-truth metadata);
// obligations type-assert back to the concrete type they were registered
// against.
type Instance interface {
	// N is the vertex count of the sampled object.
	N() int
}

// HardDistribution is a seed-deterministic instance sampler together
// with the ground-truth structure its obligations reason about.
type HardDistribution interface {
	// Name is the registry key, e.g. "mm-dmm".
	Name() string
	// Paper cites the source of the distribution.
	Paper() string
	// Validate reports whether the spec is admissible before sampling.
	Validate(spec Spec) error
	// SmokeSpec returns a small spec suitable for smoke runs and lints.
	SmokeSpec() Spec
	// Sample draws one instance; all randomness comes from src.
	Sample(spec Spec, src *rng.Source) (Instance, error)
}

// Severity classifies how an obligation's claim is allowed to fail.
type Severity int

// Severity values.
const (
	// SevExact marks claims that must hold on every sampled instance;
	// any failure is a bug in the construction or the checker.
	SevExact Severity = iota
	// SevWHP marks claims that hold with high probability; isolated
	// failures at small sizes are the measured phenomenon, not a bug.
	SevWHP
	// SevInfo marks purely informational measurements.
	SevInfo
)

// String renders the severity for reports.
func (s Severity) String() string {
	switch s {
	case SevExact:
		return "exact"
	case SevWHP:
		return "whp"
	default:
		return "info"
	}
}

// Report is the machine-readable outcome of one obligation check on one
// instance.
type Report struct {
	Pass    bool               `json:"pass"`
	Details map[string]float64 `json:"details,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
}

// Obligation is a named paper claim with a check contract: given an
// instance of its distribution and a private randomness stream, produce
// a Report. Checks must be deterministic functions of (instance, src).
type Obligation interface {
	// Name is the registry key, e.g. "mm/claim-3.1-threshold".
	Name() string
	// Claim cites and states the paper claim being checked.
	Claim() string
	// Distribution names the registered distribution this obligation
	// checks instances of.
	Distribution() string
	// Severity classifies allowed failures.
	Severity() Severity
	// Check verifies the claim on one instance.
	Check(inst Instance, src *rng.Source) Report
}

// obligationFunc is the concrete Obligation every client registers
// through NewObligation; keeping construction funnelled through one
// literal-name call site is what makes the registry lint checkable.
type obligationFunc struct {
	name, claim, dist string
	sev               Severity
	check             func(Instance, *rng.Source) Report
}

func (o obligationFunc) Name() string         { return o.name }
func (o obligationFunc) Claim() string        { return o.claim }
func (o obligationFunc) Distribution() string { return o.dist }
func (o obligationFunc) Severity() Severity   { return o.sev }
func (o obligationFunc) Check(inst Instance, src *rng.Source) Report {
	return o.check(inst, src)
}

// NewObligation builds an Obligation from its parts. Call it with the
// name as a string literal — the registry-completeness lint reads names
// from NewObligation call sites.
func NewObligation(name, claim, dist string, sev Severity, check func(Instance, *rng.Source) Report) Obligation {
	if name == "" || claim == "" || dist == "" || check == nil {
		panic("lowerbound: NewObligation with empty name/claim/dist or nil check")
	}
	return obligationFunc{name: name, claim: claim, dist: dist, sev: sev, check: check}
}

// BoundRow is one evaluated analytic bound.
type BoundRow struct {
	// Name echoes the bound's registry key.
	Name string `json:"name"`
	// Size echoes the evaluation parameter.
	Size int `json:"size"`
	// Bits is the per-player sketch-size lower bound in bits.
	Bits float64 `json:"bits"`
	// Formula states the evaluated expression.
	Formula string `json:"formula"`
	// Params carries the instantiated parameters (N, r, t, n, ...).
	Params map[string]float64 `json:"params,omitempty"`
}

// Bound is an analytic lower-bound calculator.
type Bound interface {
	// Name is the registry key, e.g. "mm/theorem-1".
	Name() string
	// Paper cites the theorem the formula comes from.
	Paper() string
	// Evaluate computes the bound at the given size parameter.
	Evaluate(size int) (BoundRow, error)
}

// boundFunc mirrors obligationFunc for Bound.
type boundFunc struct {
	name, paper string
	eval        func(int) (BoundRow, error)
}

func (b boundFunc) Name() string  { return b.name }
func (b boundFunc) Paper() string { return b.paper }
func (b boundFunc) Evaluate(size int) (BoundRow, error) {
	row, err := b.eval(size)
	if err != nil {
		return BoundRow{}, err
	}
	row.Name = b.name
	row.Size = size
	return row, nil
}

// NewBound builds a Bound from a formula evaluator; Name and Size of the
// returned rows are filled in automatically.
func NewBound(name, paper string, eval func(size int) (BoundRow, error)) Bound {
	if name == "" || paper == "" || eval == nil {
		panic("lowerbound: NewBound with empty name/paper or nil evaluator")
	}
	return boundFunc{name: name, paper: paper, eval: eval}
}

// sampleSource derives the instance-sampling stream for one trial: a
// function of (seed, distribution, trial) only, so the sampled instances
// are independent of which obligations run and in what order.
func sampleSource(seed uint64, dist string, trial int) *rng.Source {
	return rng.NewPublicCoins(seed).Derive("lowerbound/" + dist + "/sample").DeriveIndex(trial).Source()
}

// checkSource derives an obligation's private stream for one trial: a
// function of (seed, distribution, obligation, trial) only, so no
// obligation's randomness can leak into another's.
func checkSource(seed uint64, dist, ob string, trial int) *rng.Source {
	return rng.NewPublicCoins(seed).Derive("lowerbound/" + dist + "/check/" + ob).DeriveIndex(trial).Source()
}

// Convert reports a typed instance from an Instance, with a uniform
// error when a mismatched obligation/distribution pairing slips through.
func Convert[T Instance](inst Instance) (T, error) {
	t, ok := inst.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("lowerbound: instance type %T does not match obligation's expected %T", inst, zero)
	}
	return t, nil
}

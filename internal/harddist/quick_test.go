package harddist

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// Property: label classification is a partition — every G-label is
// either public or owned by exactly one copy, and counts match.
func TestLabelPartitionQuick(t *testing.T) {
	f := func(seed uint64, mSeed, kSeed uint8) bool {
		m := 4 + int(mSeed%10)
		k := 1 + int(kSeed%5)
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			return false
		}
		p := Params{RS: rs, K: k, DropProb: 0.5}
		inst, err := Sample(p, rng.NewSource(seed))
		if err != nil {
			return false
		}
		publicCount, uniqueCount := 0, 0
		for v := 0; v < inst.G.N(); v++ {
			if inst.IsPublic(v) {
				if inst.CopyOf(v) != -1 {
					return false
				}
				publicCount++
			} else {
				c := inst.CopyOf(v)
				if c < 0 || c >= k {
					return false
				}
				uniqueCount++
			}
		}
		return publicCount == rs.N()-2*rs.R() && uniqueCount == 2*rs.R()*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: unique vertices never have edges to other copies' unique
// vertices — copies only overlap on public vertices.
func TestNoCrossCopyEdgesQuick(t *testing.T) {
	f := func(seed uint64, mSeed uint8) bool {
		m := 4 + int(mSeed%8)
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			return false
		}
		inst, err := Sample(Params{RS: rs, K: 3, DropProb: 0.5}, rng.NewSource(seed))
		if err != nil {
			return false
		}
		ok := true
		for _, e := range inst.G.Edges() {
			cu, cv := inst.CopyOf(e.U), inst.CopyOf(e.V)
			if cu != -1 && cv != -1 && cu != cv {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the exact Claim 3.1 bound holds for every greedy maximal
// matching under random orders and any drop probability.
func TestClaim31ExactQuick(t *testing.T) {
	f := func(seed uint64, dropSeed uint8) bool {
		rs, err := rsgraph.BuildBehrend(8)
		if err != nil {
			return false
		}
		drop := float64(dropSeed%11) / 10
		inst, err := Sample(Params{RS: rs, K: rs.T(), DropProb: drop}, rng.NewSource(seed))
		if err != nil {
			return false
		}
		src := rng.NewSource(seed ^ 0x55)
		bound := inst.SurvivedSpecialCount() - (rs.N() - 2*rs.R())
		for trial := 0; trial < 5; trial++ {
			mm := graph.GreedyMaximalMatching(inst.G, src.Perm(inst.G.N()))
			if inst.UniqueUniqueEdges(mm) < bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Build is deterministic — identical inputs give identical
// graphs and metadata.
func TestBuildDeterministicQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rs, err := rsgraph.BuildBehrend(6)
		if err != nil {
			return false
		}
		p := Params{RS: rs, K: 2, DropProb: 0.5}
		src := rng.NewSource(seed)
		jStar := src.Intn(rs.T())
		sigma := src.Perm(p.N())
		survive := make([][][]bool, p.K)
		for i := range survive {
			survive[i] = make([][]bool, rs.T())
			for j := range survive[i] {
				survive[i][j] = make([]bool, rs.R())
				for x := range survive[i][j] {
					survive[i][j][x] = src.Bool()
				}
			}
		}
		a, err1 := Build(p, jStar, sigma, survive)
		b, err2 := Build(p, jStar, sigma, survive)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.G.M() != b.G.M() || a.G.N() != b.G.N() {
			return false
		}
		ae, be := a.G.Edges(), b.G.Edges()
		for i := range ae {
			if ae[i] != be[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

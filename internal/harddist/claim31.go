package harddist

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Claim 3.1 of the paper: with probability 1 - 2^{-kr/10} over G ~ D_MM,
// every maximal matching of G has at least k·r/4 edges with both
// endpoints unique.
//
// The proof actually establishes something exact and non-asymptotic that
// we can verify directly: every surviving special edge (all of which are
// unique–unique, since the special matchings live on V⋆) is *forced* into
// any maximal matching unless one of its endpoints is matched to a public
// vertex, and there are only N_RS - 2r public vertices to go around.
// Hence, deterministically,
//
//	UU(M) >= C - (N_RS - 2r)   for every maximal matching M,
//
// where C is the number of surviving special edges. The paper's k·r/4
// threshold follows once C >= k·r/3 (Chernoff) and k·r/12 >= N_RS - 2r
// (parameter choice). CheckClaim31 validates both the exact bound and the
// paper's threshold empirically against adversarially-sampled maximal
// matchings.

// Claim31Report summarizes one instance's Claim 3.1 check.
type Claim31Report struct {
	// Survived is C = |∪_i M_i|, the number of surviving special edges.
	Survived int
	// ChernoffFloor is k·r/3; the paper's concentration event is
	// Survived >= ChernoffFloor.
	ChernoffFloor float64
	// ExactBound is max(0, C - (N_RS - 2r)): the structural minimum of
	// unique–unique edges in any maximal matching.
	ExactBound int
	// PaperBound is k·r/4.
	PaperBound float64
	// MatchingsTried is the number of maximal matchings sampled.
	MatchingsTried int
	// MinUniqueUnique is the minimum UU count observed over all sampled
	// maximal matchings.
	MinUniqueUnique int
	// ExactHolds reports MinUniqueUnique >= ExactBound.
	ExactHolds bool
	// PaperHolds reports MinUniqueUnique >= PaperBound; meaningful only
	// when the instance is large enough that k·r/12 >= N_RS - 2r.
	PaperHolds bool
}

// CheckClaim31 samples `matchings` maximal matchings of the instance —
// random greedy orders plus an adversarial public-vertices-first order
// that maximizes blocking of special edges — and reports the observed
// minimum of unique–unique edges against both bounds.
func CheckClaim31(inst *Instance, matchings int, src *rng.Source) Claim31Report {
	rep := Claim31Report{
		Survived:      inst.SurvivedSpecialCount(),
		ChernoffFloor: float64(inst.Params.K) * float64(inst.Params.RS.R()) / 3,
		PaperBound:    inst.Claim31Threshold(),
	}
	publicBudget := inst.Params.RS.N() - 2*inst.Params.RS.R()
	rep.ExactBound = rep.Survived - publicBudget
	if rep.ExactBound < 0 {
		rep.ExactBound = 0
	}

	n := inst.G.N()
	minUU := -1
	try := func(order []int) {
		m := graph.GreedyMaximalMatching(inst.G, order)
		uu := inst.UniqueUniqueEdges(m)
		if minUU == -1 || uu < minUU {
			minUU = uu
		}
		rep.MatchingsTried++
	}

	// Adversarial order: public vertices first, so they grab unique
	// partners and block as many special edges as possible.
	adversarial := make([]int, 0, n)
	adversarial = append(adversarial, inst.publicLabel...)
	for v := 0; v < n; v++ {
		if !inst.IsPublic(v) {
			adversarial = append(adversarial, v)
		}
	}
	try(adversarial)
	for i := 1; i < matchings; i++ {
		try(src.Perm(n))
	}

	rep.MinUniqueUnique = minUU
	rep.ExactHolds = minUU >= rep.ExactBound
	rep.PaperHolds = float64(minUU) >= rep.PaperBound
	return rep
}

// CheckClaim31Exhaustive enumerates every maximal matching of a tiny
// instance (via graph.AllMaximalMatchings with the given step cap) and
// verifies the exact bound on each. It returns the minimum UU count and
// whether the enumeration completed; callers must only pass micro
// instances.
func CheckClaim31Exhaustive(inst *Instance, maxSteps int) (minUU int, complete bool) {
	all := graph.AllMaximalMatchings(inst.G, maxSteps)
	if all == nil {
		return 0, false
	}
	minUU = -1
	for _, m := range all {
		uu := inst.UniqueUniqueEdges(m)
		if minUU == -1 || uu < minUU {
			minUU = uu
		}
	}
	return minUU, true
}

// SampleStats aggregates Claim 3.1 over repeated draws from D_MM.
type SampleStats struct {
	Trials          int
	ExactViolations int
	PaperViolations int
	MeanSurvived    float64
	MeanMinUU       float64
}

// EstimateClaim31 draws `trials` instances and checks each with
// `matchingsPerTrial` sampled maximal matchings.
func EstimateClaim31(p Params, trials, matchingsPerTrial int, src *rng.Source) (SampleStats, error) {
	var stats SampleStats
	stats.Trials = trials
	for i := 0; i < trials; i++ {
		inst, err := Sample(p, src)
		if err != nil {
			return stats, err
		}
		rep := CheckClaim31(inst, matchingsPerTrial, src)
		if !rep.ExactHolds {
			stats.ExactViolations++
		}
		if !rep.PaperHolds {
			stats.PaperViolations++
		}
		stats.MeanSurvived += float64(rep.Survived)
		stats.MeanMinUU += float64(rep.MinUniqueUnique)
	}
	if trials > 0 {
		stats.MeanSurvived /= float64(trials)
		stats.MeanMinUU /= float64(trials)
	}
	return stats, nil
}

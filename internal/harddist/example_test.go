package harddist_test

import (
	"fmt"

	"repro/internal/harddist"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// Example samples the paper's hard distribution and inspects its
// ground-truth structure.
func Example() {
	rs, err := rsgraph.BuildBehrend(10) // (r=5, t=10)-RS graph on 47 vertices
	if err != nil {
		panic(err)
	}
	params := harddist.Params{RS: rs, K: 4, DropProb: 0.5}
	inst, err := harddist.Sample(params, rng.NewSource(7))
	if err != nil {
		panic(err)
	}
	fmt.Println("n:", inst.G.N())
	fmt.Println("public vertices:", len(inst.PublicVertices()))
	fmt.Println("unique vertices per copy:", len(inst.UniqueVertices(0)))
	fmt.Println("special matching size (per copy, before drop):", len(inst.SpecialMatchingFull(0)))
	// Output:
	// n: 77
	// public vertices: 37
	// unique vertices per copy: 10
	// special matching size (per copy, before drop): 5
}

package harddist

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

func mustRS(t testing.TB, m int) *rsgraph.RSGraph {
	t.Helper()
	rs, err := rsgraph.BuildBehrend(m)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func mustSample(t testing.TB, p Params, seed uint64) *Instance {
	t.Helper()
	inst, err := Sample(p, rng.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestParamsValidate(t *testing.T) {
	rs := mustRS(t, 10)
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"paper", NewParams(rs), true},
		{"small k", Params{RS: rs, K: 1, DropProb: 0.5}, true},
		{"nil rs", Params{K: 2, DropProb: 0.5}, false},
		{"zero k", Params{RS: rs, K: 0, DropProb: 0.5}, false},
		{"bad drop", Params{RS: rs, K: 2, DropProb: 1.5}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); (err == nil) != c.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestSampleVertexCount(t *testing.T) {
	rs := mustRS(t, 12)
	p := NewParams(rs)
	inst := mustSample(t, p, 1)
	if inst.G.N() != p.N() {
		t.Errorf("G has %d vertices, want %d", inst.G.N(), p.N())
	}
	wantN := rs.N() - 2*rs.R() + 2*rs.R()*p.K
	if p.N() != wantN {
		t.Errorf("Params.N() = %d, want %d", p.N(), wantN)
	}
}

func TestVertexClassification(t *testing.T) {
	rs := mustRS(t, 10)
	p := Params{RS: rs, K: 4, DropProb: 0.5}
	inst := mustSample(t, p, 2)

	pub := inst.PublicVertices()
	if len(pub) != rs.N()-2*rs.R() {
		t.Errorf("|public| = %d, want %d", len(pub), rs.N()-2*rs.R())
	}
	seen := make(map[int]bool)
	for _, v := range pub {
		if !inst.IsPublic(v) || inst.CopyOf(v) != -1 {
			t.Errorf("public vertex %d misclassified", v)
		}
		if seen[v] {
			t.Errorf("duplicate label %d", v)
		}
		seen[v] = true
	}
	for i := 0; i < p.K; i++ {
		uniq := inst.UniqueVertices(i)
		if len(uniq) != 2*rs.R() {
			t.Errorf("copy %d: |unique| = %d, want %d", i, len(uniq), 2*rs.R())
		}
		for _, v := range uniq {
			if inst.IsPublic(v) || inst.CopyOf(v) != i {
				t.Errorf("unique vertex %d of copy %d misclassified", v, i)
			}
			if seen[v] {
				t.Errorf("duplicate label %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != p.N() {
		t.Errorf("labels cover %d vertices, want %d", len(seen), p.N())
	}
}

func TestEveryGraphEdgeHasASurvivingPreimage(t *testing.T) {
	rs := mustRS(t, 8)
	p := Params{RS: rs, K: 3, DropProb: 0.5}
	inst := mustSample(t, p, 3)
	// Rebuild the expected edge set from the survival indicators.
	want := make(map[graph.Edge]bool)
	for i := 0; i < p.K; i++ {
		for j, m := range rs.Matchings {
			for x, e := range m {
				if inst.Survived(i, j, x) {
					want[inst.MapEdge(i, e)] = true
				}
			}
		}
	}
	got := inst.G.Edges()
	if len(got) != len(want) {
		t.Fatalf("G has %d edges, indicators imply %d", len(got), len(want))
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("edge %v in G without surviving preimage", e)
		}
	}
}

func TestDropProbExtremes(t *testing.T) {
	rs := mustRS(t, 8)
	all := mustSample(t, Params{RS: rs, K: 2, DropProb: 0}, 4)
	// No drops: every copy is complete. Public-public edges coincide
	// across copies, so count unique mapped edges.
	want := make(map[graph.Edge]bool)
	for i := 0; i < 2; i++ {
		for _, m := range rs.Matchings {
			for _, e := range m {
				want[all.MapEdge(i, e)] = true
			}
		}
	}
	if all.G.M() != len(want) {
		t.Errorf("DropProb=0: %d edges, want %d", all.G.M(), len(want))
	}
	none := mustSample(t, Params{RS: rs, K: 2, DropProb: 1}, 5)
	if none.G.M() != 0 {
		t.Errorf("DropProb=1: %d edges, want 0", none.G.M())
	}
}

func TestSurvivalRateConcentrates(t *testing.T) {
	rs := mustRS(t, 15)
	p := NewParams(rs)
	inst := mustSample(t, p, 6)
	total := 0
	for i := 0; i < p.K; i++ {
		for j := range rs.Matchings {
			for x := range rs.Matchings[j] {
				if inst.Survived(i, j, x) {
					total++
				}
			}
		}
	}
	expected := float64(p.K*rs.T()*rs.R()) * 0.5
	if f := float64(total); f < 0.9*expected || f > 1.1*expected {
		t.Errorf("survived %d of %d edge slots, expected ~%.0f", total, p.K*rs.T()*rs.R(), expected)
	}
}

func TestSpecialMatchingsAreUniqueUnique(t *testing.T) {
	rs := mustRS(t, 10)
	p := Params{RS: rs, K: 5, DropProb: 0.5}
	inst := mustSample(t, p, 7)
	for i := 0; i < p.K; i++ {
		full := inst.SpecialMatchingFull(i)
		if len(full) != rs.R() {
			t.Fatalf("copy %d: full special matching has %d edges, want %d", i, len(full), rs.R())
		}
		for _, e := range full {
			if inst.IsPublic(e.U) || inst.IsPublic(e.V) {
				t.Fatalf("copy %d: special edge %v touches a public vertex", i, e)
			}
			if inst.CopyOf(e.U) != i || inst.CopyOf(e.V) != i {
				t.Fatalf("copy %d: special edge %v crosses copies", i, e)
			}
		}
		survived := inst.SpecialMatchingSurvived(i)
		for _, e := range survived {
			if !inst.G.HasEdge(e.U, e.V) {
				t.Fatalf("surviving special edge %v missing from G", e)
			}
		}
	}
}

func TestSurvivedSpecialCountMatchesPerCopySum(t *testing.T) {
	rs := mustRS(t, 10)
	inst := mustSample(t, NewParams(rs), 8)
	sum := 0
	for i := 0; i < inst.Params.K; i++ {
		sum += len(inst.SpecialMatchingSurvived(i))
	}
	if got := inst.SurvivedSpecialCount(); got != sum {
		t.Errorf("SurvivedSpecialCount = %d, per-copy sum %d", got, sum)
	}
}

func TestUniquePlayerEdges(t *testing.T) {
	rs := mustRS(t, 8)
	p := Params{RS: rs, K: 3, DropProb: 0.3}
	inst := mustSample(t, p, 9)
	// Every unique player's edges must exist in G and be incident on the
	// mapped vertex.
	for i := 0; i < p.K; i++ {
		for v := 0; v < rs.N(); v++ {
			lbl := inst.Label(i, v)
			for _, e := range inst.UniquePlayerEdges(i, v) {
				if !inst.G.HasEdge(e.U, e.V) {
					t.Fatalf("player (%d,%d) edge %v not in G", i, v, e)
				}
				if e.U != lbl && e.V != lbl {
					t.Fatalf("player (%d,%d) edge %v not incident on label %d", i, v, e, lbl)
				}
			}
		}
	}
}

func TestUniquePlayersOfUniqueVertexSeeWholeNeighborhood(t *testing.T) {
	// For a unique vertex u of copy i, the unique player (i, rs(u)) sees
	// all of u's G-edges (paper: "a unique player corresponding to a
	// unique vertex u in G sees all the edges incident on vertex u in G").
	rs := mustRS(t, 8)
	p := Params{RS: rs, K: 3, DropProb: 0.5}
	inst := mustSample(t, p, 10)
	for rsV := 0; rsV < rs.N(); rsV++ {
		if inst.rsUniquePos[rsV] == -1 {
			continue
		}
		for i := 0; i < p.K; i++ {
			lbl := inst.Label(i, rsV)
			if got, want := len(inst.UniquePlayerEdges(i, rsV)), inst.G.Degree(lbl); got != want {
				t.Fatalf("unique player (%d,%d): sees %d edges, G-degree is %d", i, rsV, got, want)
			}
		}
	}
}

func TestPublicPlayerEdges(t *testing.T) {
	rs := mustRS(t, 8)
	inst := mustSample(t, Params{RS: rs, K: 2, DropProb: 0.5}, 11)
	for pIdx, v := range inst.PublicVertices() {
		edges := inst.PublicPlayerEdges(pIdx)
		if len(edges) != inst.G.Degree(v) {
			t.Fatalf("public player %d sees %d edges, degree is %d", pIdx, len(edges), inst.G.Degree(v))
		}
	}
}

func TestClaim31ExactBoundHolds(t *testing.T) {
	src := rng.NewSource(12)
	for _, m := range []int{8, 15} {
		rs := mustRS(t, m)
		p := NewParams(rs)
		inst, err := Sample(p, src)
		if err != nil {
			t.Fatal(err)
		}
		rep := CheckClaim31(inst, 20, src)
		if !rep.ExactHolds {
			t.Errorf("m=%d: exact bound violated: minUU=%d < bound=%d",
				m, rep.MinUniqueUnique, rep.ExactBound)
		}
		if rep.MatchingsTried != 20 {
			t.Errorf("tried %d matchings, want 20", rep.MatchingsTried)
		}
	}
}

func TestClaim31DisjointFamilyForcesAllSpecialEdges(t *testing.T) {
	// With disjoint matchings, unique vertices have no public neighbors,
	// so every surviving special edge is forced: minUU == Survived.
	rs := rsgraph.DisjointMatchings(6, 5)
	p := Params{RS: rs, K: 5, DropProb: 0.5}
	src := rng.NewSource(13)
	inst, err := Sample(p, src)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckClaim31(inst, 30, src)
	if rep.MinUniqueUnique != rep.Survived {
		t.Errorf("disjoint family: minUU=%d, want all %d surviving special edges forced",
			rep.MinUniqueUnique, rep.Survived)
	}
}

func TestClaim31Exhaustive(t *testing.T) {
	// Micro instance small enough to enumerate every maximal matching.
	rs := rsgraph.DisjointMatchings(2, 2)
	p := Params{RS: rs, K: 2, DropProb: 0.5}
	src := rng.NewSource(14)
	inst, err := Sample(p, src)
	if err != nil {
		t.Fatal(err)
	}
	minUU, complete := CheckClaim31Exhaustive(inst, 1<<20)
	if !complete {
		t.Fatal("exhaustive enumeration capped out on micro instance")
	}
	if minUU < inst.SurvivedSpecialCount()-(rs.N()-2*rs.R()) {
		t.Errorf("exhaustive minUU %d below exact bound", minUU)
	}
}

func TestEstimateClaim31(t *testing.T) {
	rs := mustRS(t, 10)
	p := NewParams(rs)
	stats, err := EstimateClaim31(p, 5, 10, rng.NewSource(15))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExactViolations != 0 {
		t.Errorf("%d exact violations over %d trials", stats.ExactViolations, stats.Trials)
	}
	if stats.MeanSurvived <= 0 {
		t.Error("mean survived not positive")
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	rs := mustRS(t, 8)
	p := Params{RS: rs, K: 3, DropProb: 0.5}
	a := mustSample(t, p, 42)
	b := mustSample(t, p, 42)
	if a.JStar != b.JStar || a.G.M() != b.G.M() {
		t.Error("same seed produced different instances")
	}
}

func BenchmarkSamplePaperM25(b *testing.B) {
	rs, err := rsgraph.BuildBehrend(25)
	if err != nil {
		b.Fatal(err)
	}
	p := NewParams(rs)
	src := rng.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(p, src); err != nil {
			b.Fatal(err)
		}
	}
}

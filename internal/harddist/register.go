package harddist

// Registration of D_MM with the lowerbound pipeline: the distribution
// samples instances over the constructive Behrend RS family, and the
// Claim 3.1 obligations check the unique–unique edge guarantee that
// powers the whole Section 3 chain. Names, claims and detail keys are
// pinned by internal/lowerbound/testdata/mm-dmm_seed42.json, recorded
// before this package was migrated onto the registry.

import (
	"fmt"

	"repro/internal/infotheory"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// N implements lowerbound.Instance: the vertex count of the union graph.
func (inst *Instance) N() int { return inst.G.N() }

// claim31Tries is the number of random maximal matchings probed per
// Claim 3.1 check.
const claim31Tries = 15

// dMM is D_MM over the Behrend family: Spec.Size is the Behrend
// parameter m, Spec.Aux optionally overrides the copy count k (default
// k = t, the paper's choice).
type dMM struct{}

func (dMM) Name() string  { return "mm-dmm" }
func (dMM) Paper() string { return "AKO20 §3.1 (D_MM)" }

func (dMM) Validate(spec lowerbound.Spec) error {
	if spec.Size < 2 {
		return fmt.Errorf("mm-dmm: Behrend parameter m must be ≥ 2, got %d", spec.Size)
	}
	if spec.Aux < 0 {
		return fmt.Errorf("mm-dmm: copy-count override k must be ≥ 0, got %d", spec.Aux)
	}
	return nil
}

func (dMM) SmokeSpec() lowerbound.Spec { return lowerbound.Spec{Size: 8} }

func (dMM) Sample(spec lowerbound.Spec, src *rng.Source) (lowerbound.Instance, error) {
	rs, err := rsgraph.BuildBehrend(spec.Size)
	if err != nil {
		return nil, err
	}
	p := NewParams(rs)
	if spec.Aux > 0 {
		p.K = spec.Aux
	}
	return Sample(p, src)
}

func errReport(err error) lowerbound.Report {
	return lowerbound.Report{Notes: []string{err.Error()}}
}

func init() {
	lowerbound.RegisterDistribution(dMM{})

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mm/claim-3.1-exact-floor",
		"AKO20 Claim 3.1 (exact floor): every maximal matching has ≥ C − (N_RS − 2r) unique–unique edges",
		"mm-dmm", lowerbound.SevExact,
		func(inst lowerbound.Instance, src *rng.Source) lowerbound.Report {
			hi, err := lowerbound.Convert[*Instance](inst)
			if err != nil {
				return errReport(err)
			}
			rep := CheckClaim31(hi, claim31Tries, src)
			return lowerbound.Report{Pass: rep.ExactHolds, Details: map[string]float64{
				"exact_bound":     float64(rep.ExactBound),
				"matchings_tried": float64(rep.MatchingsTried),
				"min_uu":          float64(rep.MinUniqueUnique),
				"survived":        float64(rep.Survived),
			}}
		}))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mm/claim-3.1-threshold",
		"AKO20 Claim 3.1: every maximal matching has ≥ kr/4 unique–unique edges",
		"mm-dmm", lowerbound.SevWHP,
		func(inst lowerbound.Instance, src *rng.Source) lowerbound.Report {
			hi, err := lowerbound.Convert[*Instance](inst)
			if err != nil {
				return errReport(err)
			}
			rep := CheckClaim31(hi, claim31Tries, src)
			return lowerbound.Report{Pass: rep.PaperHolds, Details: map[string]float64{
				"min_uu":      float64(rep.MinUniqueUnique),
				"paper_bound": rep.PaperBound,
				"survived":    float64(rep.Survived),
			}}
		}))

	lowerbound.RegisterObligation(lowerbound.NewObligation(
		"mm/survival-concentration",
		"AKO20 Claim 3.1 proof: C ≥ kr/3 except with probability 2^{−Ω(kr)}",
		"mm-dmm", lowerbound.SevWHP,
		func(inst lowerbound.Instance, _ *rng.Source) lowerbound.Report {
			hi, err := lowerbound.Convert[*Instance](inst)
			if err != nil {
				return errReport(err)
			}
			kr := float64(hi.Params.K) * float64(hi.Params.RS.R())
			c := hi.SurvivedSpecialCount()
			mu := kr * (1 - hi.Params.DropProb)
			return lowerbound.Report{Pass: float64(c) >= kr/3, Details: map[string]float64{
				"chernoff_floor": kr / 3,
				"survived":       float64(c),
				"tail_bound":     infotheory.ChernoffLowerTail(mu, 1.0/3),
			}}
		}))
}
